(* REST benchmark client: drives a running bamboo_server with concurrent
   closed-loop workers, each keeping one committed-waiting request
   outstanding — the paper's "concurrency" load model (Table I). Reports
   throughput and client-observed commit latency.

   Usage: bamboo_bench_client [--port 8080] [--concurrency 10]
          [--duration 10] [--psize 16] *)

module Http = Bamboo_network.Http

let () =
  let port = ref 8080 in
  let concurrency = ref 10 in
  let duration = ref 10.0 in
  let psize = ref 16 in
  Arg.parse
    [
      ("--port", Arg.Set_int port, "server port (default 8080)");
      ("--concurrency", Arg.Set_int concurrency, "concurrent clients (default 10)");
      ("--duration", Arg.Set_float duration, "seconds (default 10)");
      ("--psize", Arg.Set_int psize, "value size in bytes (default 16)");
    ]
    (fun _ -> ())
    "bamboo_bench_client";
  (* Snapshot the option cells: the workers see plain values, not the
     refs Arg.parse wrote. *)
  let port = !port in
  let psize = !psize in
  let stop = Atomic.make false in
  let mutex = Mutex.create () in
  let completed = ref 0 in
  let failed = ref 0 in
  let latency_total = ref 0.0 in
  let worker wid =
    let i = ref 0 in
    while not (Atomic.get stop) do
      incr i;
      let key = Printf.sprintf "w%d-k%d" wid (!i mod 100) in
      let value = String.make psize 'v' in
      let body =
        Bamboo.Kvstore.encode_command (Bamboo.Kvstore.Put { key; value })
      in
      let t0 = Unix.gettimeofday () in
      match
        Http.request ~body ~host:"127.0.0.1" ~port ~meth:"POST"
          ~path:"/tx?wait=true" ()
      with
      | Ok { status = 200; body = resp } ->
          let latency = Unix.gettimeofday () -. t0 in
          let committed =
            (* cheap check without a JSON dependency on the hot path *)
            let marker = {|"committed": true|} in
            let rec contains i =
              i + String.length marker <= String.length resp
              && (String.sub resp i (String.length marker) = marker
                 || contains (i + 1))
            in
            contains 0
          in
          Mutex.lock mutex;
          if committed then begin
            incr completed;
            latency_total := !latency_total +. latency
          end
          else incr failed;
          Mutex.unlock mutex
      | Ok _ | Error _ ->
          Mutex.lock mutex;
          incr failed;
          Mutex.unlock mutex;
          Thread.delay 0.05
    done
  in
  (match
     Http.request ~host:"127.0.0.1" ~port ~meth:"GET" ~path:"/health" ()
   with
  | Ok { status = 200; _ } -> ()
  | Ok _ | Error _ ->
      Printf.eprintf "no bamboo_server on port %d\n" port;
      exit 1);
  let t0 = Unix.gettimeofday () in
  let threads = List.init !concurrency (fun wid -> Thread.create worker wid) in
  Thread.delay !duration;
  Atomic.set stop true;
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf
    "concurrency %d: %d committed in %.1fs (%.1f tx/s), mean commit latency \
     %.1f ms, %d failed\n"
    !concurrency !completed elapsed
    (float_of_int !completed /. elapsed)
    (if !completed = 0 then 0.0
     else 1000.0 *. !latency_total /. float_of_int !completed)
    !failed
