(* Bamboo command-line interface.

   Subcommands:
     run         - simulate one configuration and print its metrics
     model       - print the analytic model's building blocks and curve
     experiment  - regenerate one paper table/figure (or "all")
     config      - print the default configuration as JSON
     check       - invariant fuzzer: "check fuzz" and "check replay"
     metrics     - simulate one configuration and export its aggregate
                   perf counters/histograms (Prometheus text or JSON)
     lint        - AST-level determinism linter over the OCaml sources
   A JSON configuration file (--config) seeds any subcommand's settings;
   individual flags override it.

   Exit codes are uniform across subcommands: 0 = success and all
   invariants held; 1 = an invariant was violated (safety violation or
   inconsistent prefixes in "run", a failing scenario in "check",
   diverged rows in the bench harness, an error-severity lint finding);
   2 = usage or configuration error. *)

open Cmdliner

let protocol_conv =
  let parse s =
    match Bamboo.Config.protocol_of_name s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Bamboo.Config.protocol_name p))

let strategy_conv =
  let parse = function
    | "honest" -> Ok Bamboo.Config.Honest
    | "silence" -> Ok Bamboo.Config.Silence
    | "fork" -> Ok Bamboo.Config.Fork
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print fmt s =
    Format.pp_print_string fmt
      (match s with
      | Bamboo.Config.Honest -> "honest"
      | Bamboo.Config.Silence -> "silence"
      | Bamboo.Config.Fork -> "fork")
  in
  Arg.conv (parse, print)

let config_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "config" ] ~docv:"FILE" ~doc:"JSON configuration file (Table I parameters).")

let read_file path =
  match open_in path with
  | exception Sys_error e ->
      Printf.eprintf "bamboo: %s\n" e;
      exit 2
  | ic ->
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      close_in ic;
      raw

let parse_json ~path raw =
  try Bamboo_util.Json.of_string raw
  with Bamboo_util.Json.Parse_error e ->
    Printf.eprintf "error in %s: invalid JSON: %s\n" path e;
    exit 2

let load_config = function
  | None -> Bamboo.Config.default
  | Some path -> (
      match Bamboo.Config.of_json (parse_json ~path (read_file path)) with
      | Ok c -> c
      | Error e ->
          Printf.eprintf "error in %s: %s\n" path e;
          exit 2)

(* Flags shared by run/model; each is optional and overrides the file. *)
let protocol_t = Arg.(value & opt (some protocol_conv) None & info [ "protocol"; "p" ] ~docv:"NAME")
let n_t = Arg.(value & opt (some int) None & info [ "n" ] ~docv:"REPLICAS")
let byz_t = Arg.(value & opt (some int) None & info [ "byz" ] ~docv:"COUNT" ~doc:"Number of Byzantine replicas.")
let strategy_t = Arg.(value & opt (some strategy_conv) None & info [ "strategy" ] ~docv:"NAME" ~doc:"honest, silence or fork.")
let bsize_t = Arg.(value & opt (some int) None & info [ "bsize" ] ~docv:"TXS")
let psize_t = Arg.(value & opt (some int) None & info [ "psize" ] ~docv:"BYTES")
let delay_t = Arg.(value & opt (some float) None & info [ "delay" ] ~docv:"MS" ~doc:"Added network delay, milliseconds.")
let timeout_t = Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"MS" ~doc:"View timeout, milliseconds.")
let backoff_t = Arg.(value & opt (some float) None & info [ "backoff" ] ~docv:"FACTOR" ~doc:"Geometric view-timer backoff (>= 1).")
let runtime_t = Arg.(value & opt (some float) None & info [ "runtime" ] ~docv:"SECONDS")
let seed_t = Arg.(value & opt (some int) None & info [ "seed" ])

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for independent simulation cells (default: the \
           configuration's $(b,jobs) key, itself defaulting to the \
           machine's recommended domain count). Changes wall-clock time \
           only; experiment output is identical at any value.")

let trace_format_conv =
  let parse s =
    match Bamboo.Config.trace_format_of_name s with
    | Ok f -> Ok f
    | Error e -> Error (`Msg e)
  in
  Arg.conv
    ( parse,
      fun fmt f ->
        Format.pp_print_string fmt (Bamboo.Config.trace_format_name f) )

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a structured event trace to $(docv).")

let trace_format_t =
  Arg.(
    value
    & opt (some trace_format_conv) None
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Trace format: $(b,jsonl) (one JSON event per line) or \
           $(b,chrome) (trace_event JSON, opens in chrome://tracing or \
           Perfetto).")

let probe_interval_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "probe-interval" ] ~docv:"MS"
        ~doc:
          "Sample CPU/NIC queue depths and utilization every $(docv) \
           virtual milliseconds (0 disables probing).")

let faults_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "faults" ] ~docv:"FILE"
        ~doc:
          "JSON fault schedule (a list of fault entries, the same shape as \
           the configuration's $(b,faults) section); replaces any schedule \
           from --config. See README \"Fault injection\".")

let load_faults path =
  match Bamboo_faults.Schedule.of_json (parse_json ~path (read_file path)) with
  | Ok s -> s
  | Error e ->
      Printf.eprintf "error in %s: %s\n" path e;
      exit 2

let override config protocol n byz strategy bsize psize delay timeout backoff
    runtime seed jobs trace trace_format probe_interval faults =
  let set v f config = match v with None -> config | Some v -> f config v in
  config
  |> set protocol (fun c protocol -> { c with Bamboo.Config.protocol })
  |> set n (fun c n -> { c with Bamboo.Config.n })
  |> set byz (fun c byz_no -> { c with Bamboo.Config.byz_no })
  |> set strategy (fun c strategy -> { c with Bamboo.Config.strategy })
  |> set bsize (fun c bsize -> { c with Bamboo.Config.bsize })
  |> set psize (fun c psize -> { c with Bamboo.Config.psize })
  |> set delay (fun c d -> { c with Bamboo.Config.extra_delay_mu = d /. 1000.0 })
  |> set timeout (fun c t -> { c with Bamboo.Config.timeout = t /. 1000.0 })
  |> set backoff (fun c backoff -> { c with Bamboo.Config.backoff })
  |> set runtime (fun c runtime -> { c with Bamboo.Config.runtime })
  |> set seed (fun c seed -> { c with Bamboo.Config.seed })
  |> set jobs (fun c jobs -> { c with Bamboo.Config.jobs })
  |> set trace (fun c f -> { c with Bamboo.Config.trace_file = Some f })
  |> set trace_format (fun c trace_format -> { c with Bamboo.Config.trace_format })
  |> set probe_interval (fun c p ->
         { c with Bamboo.Config.probe_interval = p /. 1000.0 })
  |> set faults (fun c path ->
         { c with Bamboo.Config.faults = load_faults path })

let common_t =
  Term.(
    const override $ Term.(const load_config $ config_file) $ protocol_t $ n_t
    $ byz_t $ strategy_t $ bsize_t $ psize_t $ delay_t $ timeout_t $ backoff_t
    $ runtime_t $ seed_t $ jobs_t $ trace_t $ trace_format_t $ probe_interval_t
    $ faults_t)

(* --- run --- *)

let rate_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "rate" ] ~docv:"TX/S"
        ~doc:"Open-loop arrival rate; defaults to 50% of the model's saturation point.")

let clients_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop concurrency (overrides --rate).")

let series_t =
  Arg.(value & flag & info [ "series" ] ~doc:"Also print the committed-throughput time series.")

let verify_jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "verify-jobs" ] ~docv:"N"
        ~doc:
          "Run the intra-cell parallel signature audit on $(docv) domains: \
           every fresh delivered message's certificates are fully verified \
           on the domain pool, batched per delivery window. Observe-only — \
           simulation output is byte-identical with or without it and at \
           any $(docv).")

let run_cmd =
  let run config rate clients series verify_jobs =
    match Bamboo.Config.validate config with
    | Error e ->
        Printf.eprintf "invalid configuration: %s\n" e;
        exit 2
    | Ok config ->
        let workload =
          match clients with
          | Some clients -> Bamboo.Workload.closed_loop ~clients
          | None ->
              let rate =
                match rate with
                | Some r -> r
                | None ->
                    let m = Bamboo.Model.build ~config in
                    0.5 *. m.Bamboo.Model.saturation_rate
              in
              Bamboo.Workload.open_loop ~rate ()
        in
        Format.printf "config: %a@.workload: %s@." Bamboo.Config.pp config
          (Bamboo.Workload.describe workload);
        let trace_oc, trace =
          match config.Bamboo.Config.trace_file with
          | None -> (None, Bamboo_obs.Trace.null)
          | Some path ->
              let oc =
                try open_out path
                with Sys_error e ->
                  Printf.eprintf "cannot open trace file: %s\n" e;
                  exit 2
              in
              let t =
                match config.Bamboo.Config.trace_format with
                | Bamboo.Config.Jsonl -> Bamboo_obs.Trace.jsonl oc
                | Bamboo.Config.Chrome -> Bamboo_obs.Trace.chrome oc
              in
              (Some (path, oc), t)
        in
        let r = Bamboo.Runtime.run ~config ~workload ~trace ?verify_jobs () in
        (match trace_oc with
        | None -> ()
        | Some (path, oc) ->
            Bamboo_obs.Trace.close trace;
            close_out oc;
            Format.printf "trace written to %s (%s)@." path
              (Bamboo.Config.trace_format_name
                 config.Bamboo.Config.trace_format));
        let s = r.Bamboo.Runtime.summary in
        Format.printf "%a@." Bamboo.Metrics.pp_summary s;
        Format.printf
          "p50/p95/p99 latency: %.2f / %.2f / %.2f ms; views: %d; rejected: %d@."
          (s.latency_p50 *. 1000.0) (s.latency_p95 *. 1000.0)
          (s.latency_p99 *. 1000.0) s.views s.rejected_txs;
        Format.printf "consistent prefixes: %b; safety violations: %b@."
          r.consistent r.any_violation;
        Format.printf "cpu utilization per replica: %s@."
          (String.concat ", "
             (Array.to_list
                (Array.map
                   (fun u -> Printf.sprintf "%.0f%%" (100.0 *. u))
                   r.cpu_utilization)));
        Format.printf "simulator events: %d@." r.sim_events;
        let d = r.Bamboo.Runtime.decomposition in
        if d.Bamboo_obs.Latency.samples > 0 then
          Format.printf "latency decomposition: %a@."
            Bamboo_obs.Latency.pp_summary d;
        (match r.Bamboo.Runtime.probe with
        | [] -> ()
        | probes ->
            Format.printf "probe gauges (mean / max):@.";
            List.iter
              (fun p -> Format.printf "  %a@." Bamboo_obs.Probe.pp_summary p)
              probes);
        if series then
          List.iter
            (fun (t, thr) -> Format.printf "  t=%5.1fs  %8.0f tx/s@." t thr)
            r.series;
        if r.any_violation || not r.consistent then exit 1
  in
  Cmd.v (Cmd.info "run" ~doc:"Simulate one configuration and print metrics.")
    Term.(const run $ common_t $ rate_t $ clients_t $ series_t $ verify_jobs_t)

(* --- metrics --- *)

let metrics_format_t =
  Arg.(
    value
    & opt (enum [ ("prometheus", `Prometheus); ("json", `Json) ]) `Prometheus
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:
          "Export format: $(b,prometheus) (text exposition, one sample per \
           line) or $(b,json) (the same snapshot as a JSON object).")

let metrics_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write the export to $(docv) instead of stdout.")

let metrics_cmd =
  let run config rate clients format out verify_jobs =
    match Bamboo.Config.validate config with
    | Error e ->
        Printf.eprintf "invalid configuration: %s\n" e;
        exit 2
    | Ok config ->
        let workload =
          match clients with
          | Some clients -> Bamboo.Workload.closed_loop ~clients
          | None ->
              let rate =
                match rate with
                | Some r -> r
                | None ->
                    let m = Bamboo.Model.build ~config in
                    0.5 *. m.Bamboo.Model.saturation_rate
              in
              Bamboo.Workload.open_loop ~rate ()
        in
        let registry = Bamboo_metrics.Registry.create () in
        let r =
          Bamboo.Runtime.run ~config ~workload ~metrics:registry ?verify_jobs ()
        in
        let snapshot = r.Bamboo.Runtime.metrics in
        let rendered =
          match format with
          | `Prometheus -> Bamboo_metrics.Snapshot.to_prometheus snapshot
          | `Json ->
              Bamboo_util.Json.to_string ~indent:true
                (Bamboo_metrics.Snapshot.to_json snapshot)
              ^ "\n"
        in
        (match out with
        | None -> print_string rendered
        | Some path ->
            let oc =
              try open_out path
              with Sys_error e ->
                Printf.eprintf "bamboo: cannot open output file: %s\n" e;
                exit 2
            in
            output_string oc rendered;
            close_out oc;
            Printf.eprintf "metrics written to %s\n" path);
        if r.Bamboo.Runtime.any_violation || not r.Bamboo.Runtime.consistent
        then exit 1
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Simulate one configuration and export the aggregate metrics \
          snapshot (counters, gauges, latency histograms).")
    Term.(
      const run $ common_t $ rate_t $ clients_t $ metrics_format_t
      $ metrics_out_t $ verify_jobs_t)

(* --- model --- *)

let model_cmd =
  let run config =
    let m = Bamboo.Model.build ~config in
    Format.printf "protocol: %s, n=%d, bsize=%d, psize=%d@."
      (Bamboo.Config.protocol_name config.Bamboo.Config.protocol)
      config.Bamboo.Config.n config.Bamboo.Config.bsize
      config.Bamboo.Config.psize;
    Format.printf
      "t_L=%.3fms t_CPU=%.3fms t_NIC=%.3fms t_Q=%.3fms t_s=%.3fms t_commit=%.3fms@."
      (m.t_l *. 1e3) (m.t_cpu *. 1e3) (m.t_nic *. 1e3) (m.t_q *. 1e3)
      (m.t_s *. 1e3) (m.t_commit *. 1e3);
    Format.printf "saturation: %.0f tx/s@." m.saturation_rate;
    List.iter
      (fun f ->
        let rate = f *. m.saturation_rate in
        match Bamboo.Model.latency m ~rate with
        | Some l -> Format.printf "  rate %8.0f tx/s -> latency %7.2f ms@." rate (l *. 1e3)
        | None -> ())
      [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99 ]
  in
  Cmd.v
    (Cmd.info "model" ~doc:"Print the Section V analytic model predictions.")
    Term.(const run $ common_t)

(* --- experiment --- *)

let experiment_cmd =
  let name_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "Experiment name (table2, fig8..fig15, ablation_*, or 'all'). \
             See DESIGN.md for the index.")
  in
  let full_t =
    Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale run durations.")
  in
  let run name full config_path jobs =
    let scale =
      if full then Bamboo.Experiments.Full else Bamboo.Experiments.Quick
    in
    (* Flag beats the configuration file's [jobs] key beats the default. *)
    let jobs =
      match jobs with
      | Some j -> j
      | None -> (load_config config_path).Bamboo.Config.jobs
    in
    if jobs < 1 then begin
      Printf.eprintf
        "bamboo: --jobs must be >= 1 (got %d); it counts worker domains\n"
        jobs;
      exit 2
    end;
    Bamboo.Experiments.set_jobs jobs;
    if name = "all" then Bamboo.Experiments.run_all ~scale ()
    else
      match Bamboo.Experiments.run_one ~scale name with
      | Ok () -> ()
      | Error e ->
          prerr_endline e;
          exit 2
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a paper table or figure.")
    Term.(const run $ name_t $ full_t $ config_file $ jobs_t)

(* --- config --- *)

let config_cmd =
  let run config =
    print_endline
      (Bamboo_util.Json.to_string ~indent:true (Bamboo.Config.to_json config))
  in
  Cmd.v
    (Cmd.info "config" ~doc:"Print the effective configuration as JSON.")
    Term.(const run $ common_t)

(* --- check --- *)

let protocols_t =
  let all =
    [
      Bamboo.Config.Hotstuff;
      Bamboo.Config.Twochain;
      Bamboo.Config.Streamlet;
      Bamboo.Config.Fasthotstuff;
    ]
  in
  Arg.(
    value
    & opt (list protocol_conv) all
    & info [ "protocols" ] ~docv:"NAMES"
        ~doc:"Comma-separated protocols to sample scenarios from.")

let recover_views_t =
  Arg.(
    value
    & opt int Bamboo_check.Monitor.default_opts.Bamboo_check.Monitor.recover_views
    & info [ "recover-views" ] ~docv:"VIEWS"
        ~doc:
          "Bounded-liveness budget: after the last fault heals, a commit \
           must land within $(docv) view timeouts.")

let break_voting_t =
  Arg.(
    value & flag
    & info [ "plant-broken-voting" ]
        ~doc:
          "Self-test of the oracle: plant a deliberately unsafe voting \
           rule (ignores the lock) in every replica so the agreement \
           monitor has a real violation to catch. Never use for \
           protocol measurements.")

let check_wrap break_voting =
  if break_voting then Some Bamboo_check.Fuzz.broken_voting_rule else None

let check_opts recover_views =
  if recover_views < 1 then begin
    Printf.eprintf "bamboo: --recover-views must be >= 1 (got %d)\n"
      recover_views;
    exit 2
  end;
  { Bamboo_check.Monitor.recover_views }

let print_report label (r : Bamboo_check.Monitor.report) =
  List.iter
    (fun ((inv : Bamboo_check.Monitor.invariant), reason) ->
      Printf.printf "  skip %s: %s\n"
        (Bamboo_check.Monitor.invariant_name inv)
        reason)
    r.Bamboo_check.Monitor.skipped;
  List.iter
    (fun (v : Bamboo_check.Monitor.violation) ->
      Printf.printf "  FAIL %s: %s\n"
        (Bamboo_check.Monitor.invariant_name v.Bamboo_check.Monitor.invariant)
        v.Bamboo_check.Monitor.detail)
    r.Bamboo_check.Monitor.violations;
  if Bamboo_check.Monitor.pass r then Printf.printf "  pass %s\n" label

let fuzz_cmd =
  let seed_t =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Root seed.")
  in
  let budget_t =
    Arg.(
      value & opt int 50
      & info [ "budget" ] ~docv:"N" ~doc:"Number of scenarios to run.")
  in
  let out_t =
    Arg.(
      value
      & opt string "bamboo-reproducer.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the shrunk reproducer on failure.")
  in
  let run seed budget jobs protocols recover_views break_voting out =
    if budget < 0 then begin
      Printf.eprintf "bamboo: --budget must be >= 0 (got %d)\n" budget;
      exit 2
    end;
    let jobs = match jobs with Some j -> j | None -> 1 in
    if jobs < 1 then begin
      Printf.eprintf "bamboo: --jobs must be >= 1 (got %d)\n" jobs;
      exit 2
    end;
    if protocols = [] then begin
      Printf.eprintf "bamboo: --protocols must name at least one protocol\n";
      exit 2
    end;
    let opts = check_opts recover_views in
    let wrap = check_wrap break_voting in
    let verdicts =
      Bamboo_check.Fuzz.fuzz ?wrap ~opts ~root_seed:seed ~budget ~jobs
        ~protocols ()
    in
    let failures = List.filter Bamboo_check.Fuzz.failed verdicts in
    List.iter
      (fun (v : Bamboo_check.Fuzz.verdict) ->
        let s = v.Bamboo_check.Fuzz.scenario in
        Printf.printf "%s\n" (Bamboo_check.Scenario.describe s);
        print_report s.Bamboo_check.Scenario.label v.Bamboo_check.Fuzz.report)
      verdicts;
    Printf.printf
      "fuzz: root_seed=%d budget=%d protocols=%s \
       strategies=sampled(honest,silence,fork) -> %d passed, %d failed\n"
      seed budget
      (String.concat "," (List.map Bamboo.Config.protocol_name protocols))
      (List.length verdicts - List.length failures)
      (List.length failures);
    match failures with
    | [] -> ()
    | first :: _ ->
        let m = Bamboo_check.Fuzz.shrink ?wrap ~opts first in
        let s = m.Bamboo_check.Fuzz.scenario in
        Printf.printf
          "shrunk %s to %d fault event(s), n=%d, runtime=%.2fs (%d runs): %s\n"
          s.Bamboo_check.Scenario.label
          (List.length
             s.Bamboo_check.Scenario.config.Bamboo.Config.faults)
          s.Bamboo_check.Scenario.config.Bamboo.Config.n
          s.Bamboo_check.Scenario.config.Bamboo.Config.runtime
          m.Bamboo_check.Fuzz.runs m.Bamboo_check.Fuzz.detail;
        let oc =
          try open_out out
          with Sys_error e ->
            Printf.eprintf "bamboo: cannot write reproducer: %s\n" e;
            exit 2
        in
        output_string oc
          (Bamboo_util.Json.to_string ~indent:true
             (Bamboo_check.Fuzz.artifact_to_json m));
        output_char oc '\n';
        close_out oc;
        Printf.printf "reproducer written to %s\n" out;
        exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Sample chaos scenarios deterministically from a root seed, run \
          them against the invariant oracle, shrink any failure to a \
          minimal reproducer. Output is byte-identical for the same seed, \
          budget and protocols at any --jobs value.")
    Term.(
      const run $ seed_t $ budget_t $ jobs_t $ protocols_t $ recover_views_t
      $ break_voting_t $ out_t)

let replay_cmd =
  let file_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Reproducer JSON written by check fuzz.")
  in
  let run file recover_views break_voting =
    let opts = check_opts recover_views in
    let wrap = check_wrap break_voting in
    let json = parse_json ~path:file (read_file file) in
    let scenario, invariant =
      match Bamboo_check.Fuzz.artifact_of_json json with
      | Ok v -> v
      | Error e ->
          Printf.eprintf "error in %s: %s\n" file e;
          exit 2
    in
    let schedule =
      match Bamboo_explore.Strategy.schedule_of_json json with
      | Ok s -> s
      | Error e ->
          Printf.eprintf "error in %s: %s\n" file e;
          exit 2
    in
    Printf.printf "%s\n" (Bamboo_check.Scenario.describe scenario);
    let report =
      match schedule with
      | None ->
          (Bamboo_check.Fuzz.run_scenario ?wrap ~opts scenario)
            .Bamboo_check.Fuzz.report
      | Some sched ->
          let { Bamboo_explore.Strategy.window; explore_after; choices } =
            sched
          in
          Printf.printf
            "schedule: %d choice(s), window=%g, explore_after=%g\n"
            (List.length choices) window explore_after;
          let outcome =
            Bamboo_explore.Scheduler.replay ?wrap ~opts ~explore_after
              ~window ~choices scenario
          in
          outcome.Bamboo_explore.Scheduler.o_verdict.Bamboo_check.Fuzz.report
    in
    print_report scenario.Bamboo_check.Scenario.label report;
    let reproduced =
      List.exists
        (fun (viol : Bamboo_check.Monitor.violation) ->
          viol.Bamboo_check.Monitor.invariant = invariant)
        report.Bamboo_check.Monitor.violations
    in
    if reproduced then begin
      Printf.printf "reproduced: %s violation confirmed\n"
        (Bamboo_check.Monitor.invariant_name invariant);
      exit 1
    end
    else begin
      Printf.printf "did not reproduce the recorded %s violation\n"
        (Bamboo_check.Monitor.invariant_name invariant);
      if not (Bamboo_check.Monitor.pass report) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-run a shrunk reproducer — a fuzzer artifact or an explore \
          counterexample with a recorded delivery schedule — and report \
          whether the recorded invariant violation occurs again (exit 1 \
          if it does).")
    Term.(const run $ file_t $ recover_views_t $ break_voting_t)

let trace_cmd =
  let file_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Merged JSONL trace (e.g. bamboo cluster run's merged.jsonl).")
  in
  let byz_no_t =
    Arg.(
      value & opt int 0
      & info [ "byz-no" ] ~docv:"N"
          ~doc:"Byzantine replica count; ids below N skip vote-safety checks.")
  in
  let commit_after_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "commit-after" ] ~docv:"SECONDS"
          ~doc:
            "Require at least one commit after this (epoch-relative) \
             timestamp.")
  in
  let run file byz_no commit_after =
    let events, skipped = Bamboo_cluster.Harness.read_trace_file file in
    if skipped > 0 then
      Printf.printf "skipped %d unparseable line(s)\n" skipped;
    Printf.printf "%d events\n" (List.length events);
    let report =
      Bamboo_check.Monitor.check_trace ~byz_no ?expect_commit_after:commit_after
        events
    in
    print_report (Filename.basename file) report;
    if not (Bamboo_check.Monitor.pass report) then exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the hash-keyed deployment-trace monitors (agreement, \
          certification uniqueness, vote safety, optional liveness) over a \
          JSONL trace file; exit 1 on any violation.")
    Term.(const run $ file_t $ byz_no_t $ commit_after_t)

let check_cmd =
  let info =
    Cmd.info "check"
      ~doc:
        "Invariant oracle, deterministic chaos fuzzer and bounded model \
         checker (agreement, certification uniqueness, vote safety, \
         bounded liveness)."
  in
  Cmd.group info [ fuzz_cmd; replay_cmd; trace_cmd; Bamboo_explore.Explore_cli.cmd ]

let () =
  let doc = "Bamboo: prototyping and evaluation of chained-BFT protocols" in
  let info = Cmd.info "bamboo" ~version:"1.0.0" ~doc in
  match
    Cmd.eval_value
      (Cmd.group info
         [ run_cmd; model_cmd; experiment_cmd; config_cmd; check_cmd;
           metrics_cmd; Bamboo_cluster.Cluster_cli.cmd; Lint_cli.cmd ])
  with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error _ -> exit 2
