(* Standalone linter driver: [bamboo_lint [PATH...]]. The same
   functionality is reachable as [bamboo lint]; this binary exists so CI
   and editors can run the linter without linking the full node. *)

let () = exit (Lint_cli.main ())
