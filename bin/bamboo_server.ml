(* REST front end to a Bamboo cluster (paper §III-D: "The Bamboo client
   library uses a RESTful API to interact with server nodes").

   Hosts an n-replica cluster (in-process channel transport, real crypto
   and wall-clock pacemakers) behind one HTTP endpoint:

     POST /tx?replica=I[&wait=true]   body = key-value command or raw bytes
                                      (503 {"error":"overloaded"} when the
                                      replica's mempool sheds the tx)
     GET  /kv/KEY?replica=I           read the executed store
     GET  /metrics                    committed transaction count etc.
     GET  /health

   Key-value commands use the Kvstore encoding ("P<klen>:<key><value>",
   "G...", "D..."); any other body rides along as opaque payload.

   Usage: bamboo_server [--n 4] [--protocol hotstuff] [--port 8080]
          [--duration 60] *)

module Config = Bamboo.Config
module Chan = Bamboo_network.Chan_transport
module Http = Bamboo_network.Http
module Runtime = Bamboo.Threaded_runtime.Make (Bamboo_network.Chan_transport)
open Bamboo_types

let query_params path =
  match String.index_opt path '?' with
  | None -> (path, [])
  | Some i ->
      let base = String.sub path 0 i in
      let query = String.sub path (i + 1) (String.length path - i - 1) in
      let params =
        String.split_on_char '&' query
        |> List.filter_map (fun kv ->
               match String.index_opt kv '=' with
               | Some j ->
                   Some
                     ( String.sub kv 0 j,
                       String.sub kv (j + 1) (String.length kv - j - 1) )
               | None -> Some (kv, ""))
      in
      (base, params)

let () =
  let n = ref 4 in
  let protocol = ref "hotstuff" in
  let port = ref 8080 in
  let duration = ref 60.0 in
  let args =
    [
      ("--n", Arg.Set_int n, "cluster size (default 4)");
      ("--protocol", Arg.Set_string protocol, "hotstuff|twochain|streamlet|fasthotstuff");
      ("--port", Arg.Set_int port, "HTTP port (default 8080)");
      ("--duration", Arg.Set_float duration, "seconds to serve (default 60)");
    ]
  in
  Arg.parse args (fun _ -> ()) "bamboo_server";
  let protocol =
    match Config.protocol_of_name !protocol with
    | Ok p -> p
    | Error e ->
        prerr_endline e;
        exit 2
  in
  (* Snapshot the option cells: handler threads see plain values. *)
  let n = !n in
  let port = !port in
  let duration = !duration in
  let config =
    { Config.default with protocol; n; bsize = 100; memsize = 100_000 }
  in
  let cluster_transport = Chan.create_cluster ~n in
  let endpoints = Array.init n (Chan.endpoint cluster_transport) in
  let cluster = Runtime.start ~config ~endpoints () in
  let seq_mutex = Mutex.create () in
  let[@guarded_by "seq_mutex"] seq = ref 0 in
  (* The PRNG state is mutated by every handler thread that picks a
     random replica, so it shares the sequence lock. *)
  let[@guarded_by "seq_mutex"] rng = Bamboo_util.Rng.create ~seed:99 in
  let started = Unix.gettimeofday () in
  let handler (req : Http.request) =
    let path, params = query_params req.path in
    let replica =
      match List.assoc_opt "replica" params with
      | Some v -> ( match int_of_string_opt v with Some i -> i mod n | None -> 0)
      | None ->
          Mutex.lock seq_mutex;
          let r = Bamboo_util.Rng.int rng n in
          Mutex.unlock seq_mutex;
          r
    in
    match (req.meth, path) with
    | "POST", "/tx" ->
        let id =
          Mutex.lock seq_mutex;
          incr seq;
          let s = !seq in
          Mutex.unlock seq_mutex;
          s
        in
        let tx = Tx.make_with_data ~client:9 ~seq:id ~data:req.body in
        if Runtime.submit_admission cluster ~replica [ tx ] = 0 then
          {
            Http.status = 503;
            body =
              Printf.sprintf
                {|{"error": "overloaded", "replica": %d, "rejected_txs": %d}|}
                replica
                (Runtime.rejected_txs cluster);
          }
        else
        let committed =
          if List.assoc_opt "wait" params = Some "true" then begin
            let deadline = Unix.gettimeofday () +. 5.0 in
            let rec wait () =
              if Runtime.tx_committed cluster tx.Tx.id then true
              else if Unix.gettimeofday () > deadline then false
              else begin
                Thread.delay 0.002;
                wait ()
              end
            in
            wait ()
          end
          else false
        in
        {
          Http.status = 200;
          body =
            Printf.sprintf
              {|{"client": 9, "seq": %d, "replica": %d, "committed": %b}|} id
              replica committed;
        }
    | "GET", path when String.length path > 4 && String.sub path 0 4 = "/kv/" ->
        let key = String.sub path 4 (String.length path - 4) in
        (match Runtime.kv_get cluster ~replica key with
        | Some value -> { Http.status = 200; body = value }
        | None -> { Http.status = 404; body = "key not found" })
    | "GET", "/metrics" ->
        let committed = Runtime.committed_txs cluster in
        let elapsed = Unix.gettimeofday () -. started in
        {
          Http.status = 200;
          body =
            Printf.sprintf
              {|{"committed_txs": %d, "rejected_txs": %d, "elapsed_s": %.1f, "throughput": %.1f}|}
              committed
              (Runtime.rejected_txs cluster)
              elapsed
              (float_of_int committed /. elapsed);
        }
    | "GET", "/health" -> { Http.status = 200; body = {|{"status": "up"}|} }
    | _ -> { Http.status = 404; body = "unknown route" }
  in
  let server = Http.start ~port ~handler in
  Printf.printf
    "bamboo_server: %d-replica %s cluster behind http://127.0.0.1:%d (%.0fs)\n%!"
    n
    (Config.protocol_name protocol)
    (Http.port server) duration;
  Thread.delay duration;
  Http.stop server;
  let report = Runtime.stop cluster in
  Printf.printf
    "served %.1fs: %d txs committed, consistent=%b kv_consistent=%b\n" report.duration
    report.committed_txs report.consistent report.kv_consistent
