(* End-to-end simulator runs: protocol progress, metric sanity, Byzantine
   behaviour, fault injection, determinism, and the cross-replica safety
   property under every protocol. *)

module Runtime = Bamboo.Runtime
module Workload = Bamboo.Workload
module Config = Bamboo.Config
module Schedule = Bamboo_faults.Schedule

let base =
  { Config.default with runtime = 1.5; warmup = 0.3; seed = 5 }

let run config rate =
  Runtime.run ~config ~workload:(Workload.open_loop ~rate ()) ()

let check_healthy name (r : Runtime.result) =
  Alcotest.(check bool) (name ^ ": consistent") true r.consistent;
  Alcotest.(check bool) (name ^ ": no violation") false r.any_violation

let test_happy_path_all_protocols () =
  List.iter
    (fun protocol ->
      let name = Config.protocol_name protocol in
      let r = run { base with protocol } 5000.0 in
      check_healthy name r;
      let s = r.summary in
      Alcotest.(check bool) (name ^ ": throughput tracks arrivals") true
        (Float.abs (s.throughput -. 5000.0) < 500.0);
      Alcotest.(check bool) (name ^ ": latency sane") true
        (s.latency_mean > 0.001 && s.latency_mean < 0.2);
      Alcotest.(check bool) (name ^ ": CGR ~ 1") true (s.cgr > 0.98);
      Alcotest.(check int) (name ^ ": no forks") 0 s.forked_blocks)
    [ Config.Hotstuff; Config.Twochain; Config.Streamlet; Config.Fasthotstuff ]

let test_block_interval_constants () =
  let bi protocol = (run { base with protocol } 5000.0).summary.block_interval in
  Alcotest.(check (float 0.05)) "HS BI = 3" 3.0 (bi Config.Hotstuff);
  Alcotest.(check (float 0.05)) "2CHS BI = 2" 2.0 (bi Config.Twochain);
  Alcotest.(check (float 0.05)) "SL BI = 2" 2.0 (bi Config.Streamlet)

let test_twochain_latency_below_hotstuff () =
  let lat protocol = (run { base with protocol } 5000.0).summary.latency_mean in
  Alcotest.(check bool) "one voting round cheaper" true
    (lat Config.Twochain < lat Config.Hotstuff)

let test_determinism () =
  let r1 = run base 8000.0 and r2 = run base 8000.0 in
  Alcotest.(check int) "txs identical" r1.summary.committed_txs
    r2.summary.committed_txs;
  Alcotest.(check (float 1e-12)) "latency identical" r1.summary.latency_mean
    r2.summary.latency_mean;
  let r3 = run { base with seed = 6 } 8000.0 in
  Alcotest.(check bool) "seed changes trajectory" true
    (r3.summary.committed_txs <> r1.summary.committed_txs
    || r3.summary.latency_mean <> r1.summary.latency_mean)

let test_closed_loop () =
  let r =
    Runtime.run ~config:base ~workload:(Workload.closed_loop ~clients:20) ()
  in
  check_healthy "closed loop" r;
  Alcotest.(check bool) "commits" true (r.summary.committed_txs > 0);
  Alcotest.(check bool) "latency measured" true (r.summary.latency_samples > 0)

let test_broadcast_workload () =
  let r =
    Runtime.run ~config:base
      ~workload:(Workload.open_loop ~broadcast:true ~rate:2000.0 ())
      ()
  in
  check_healthy "broadcast" r;
  (* Deduplication must prevent double commits: committed distinct txs
     cannot exceed arrivals. *)
  Alcotest.(check bool) "no duplication inflation" true
    (r.summary.throughput < 2500.0);
  Alcotest.(check bool) "commits" true (r.summary.committed_txs > 0)

let byz_base =
  {
    base with
    n = 8;
    byz_no = 2;
    runtime = 2.5;
    timeout = 0.05;
    seed = 17;
  }

let test_forking_attack_hotstuff () =
  let r = run { byz_base with strategy = Config.Fork } 4000.0 in
  check_healthy "HS fork" r;
  let s = r.summary in
  Alcotest.(check bool) "forks observed" true (s.forked_blocks > 0);
  Alcotest.(check bool) "CGR degraded" true (s.cgr < 0.9);
  Alcotest.(check bool) "BI above happy-path 3" true (s.block_interval > 3.0)

let test_forking_attack_depth_ordering () =
  let cgr protocol =
    (run { byz_base with protocol; strategy = Config.Fork } 4000.0).summary.cgr
  in
  let hs = cgr Config.Hotstuff and tchs = cgr Config.Twochain in
  Alcotest.(check bool) "2CHS more fork-resilient than HS" true (tchs > hs)

let test_forking_attack_streamlet_immune () =
  let r =
    run { byz_base with protocol = Config.Streamlet; strategy = Config.Fork }
      4000.0
  in
  check_healthy "SL fork" r;
  Alcotest.(check bool) "CGR stays 1" true (r.summary.cgr > 0.99)

let test_silence_attack () =
  let r = run { byz_base with strategy = Config.Silence } 4000.0 in
  check_healthy "HS silence" r;
  let s = r.summary in
  Alcotest.(check bool) "overwrites happen" true (s.forked_blocks > 0);
  Alcotest.(check bool) "CGR degraded" true (s.cgr < 1.0);
  Alcotest.(check bool) "BI grows" true (s.block_interval > 3.0)

let test_silence_attack_streamlet_no_forks () =
  let r =
    run { byz_base with protocol = Config.Streamlet; strategy = Config.Silence }
      4000.0
  in
  check_healthy "SL silence" r;
  Alcotest.(check int) "no forks" 0 r.summary.forked_blocks;
  Alcotest.(check bool) "CGR stays 1" true (r.summary.cgr > 0.99)

let test_crash_fault () =
  let config =
    {
      base with
      runtime = 2.0;
      faults =
        [ { Schedule.at = 1.0; until = None; spec = Schedule.Crash { node = 3 } } ];
    }
  in
  let r = run config 4000.0 in
  check_healthy "crash" r;
  (* One crashed replica of four: liveness retained via timeouts. *)
  Alcotest.(check bool) "still commits after crash" true
    (r.summary.committed_txs > 0);
  (* The crashed node's view falls behind the others. *)
  let crashed_view = r.final_views.(3) in
  Alcotest.(check bool) "crashed node lags" true
    (Array.exists (fun v -> v > crashed_view) r.final_views)

let test_fluctuation_recovers () =
  let config =
    {
      base with
      runtime = 3.0;
      seed = 23;
      faults =
        [
          {
            Schedule.at = 1.0;
            until = Some 1.5;
            spec = Schedule.Fluctuation { lo = 0.01; hi = 0.05 };
          };
        ];
    }
  in
  let r = run config 3000.0 in
  check_healthy "fluctuation" r;
  (* Throughput in the last second must recover to arrival rate. *)
  let tail =
    List.filter (fun (t, _) -> t >= 2.0 && t < 3.0) r.series
    |> List.map snd
  in
  let mean = List.fold_left ( +. ) 0.0 tail /. float_of_int (List.length tail) in
  Alcotest.(check bool) "recovered" true (mean > 1500.0)

let test_series_covers_run () =
  let r = run base 3000.0 in
  Alcotest.(check bool) "has buckets" true (List.length r.series >= 2);
  List.iter
    (fun (t, thr) ->
      if t < 0.0 || thr < 0.0 then Alcotest.fail "bad series point")
    r.series

let test_static_leader () =
  let r = run { base with election = Config.Static 0 } 4000.0 in
  check_healthy "static" r;
  Alcotest.(check bool) "commits" true (r.summary.committed_txs > 0)

let test_hashed_election () =
  let r = run { base with election = Config.Hashed } 4000.0 in
  check_healthy "hashed" r;
  Alcotest.(check bool) "commits" true (r.summary.committed_txs > 0)

let test_mempool_backpressure () =
  (* Tiny mempool at a high rate: rejections must be reported and the run
     stays healthy. *)
  let r = run { base with memsize = 50 } 200_000.0 in
  check_healthy "backpressure" r;
  Alcotest.(check bool) "rejections counted" true (r.summary.rejected_txs > 0)

let test_lossy_network () =
  (* 5% independent message loss: block synchronization and timeout
     re-broadcast keep the cluster live and consistent. *)
  let config = { base with timeout = 0.05; loss = 0.05; runtime = 2.5 } in
  let r = run config 4000.0 in
  check_healthy "lossy" r;
  Alcotest.(check bool) "still commits most traffic" true
    (r.summary.throughput > 2500.0);
  (* Heavier loss: slower, but never inconsistent. *)
  let r = run { config with loss = 0.2 } 2000.0 in
  check_healthy "very lossy" r;
  Alcotest.(check bool) "progress under 20% loss" true
    (r.summary.committed_txs > 0)

let test_backoff_restores_liveness () =
  (* View timer below the real round trip: fixed timers expire before any
     proposal can arrive and the cluster starves; geometric backoff
     stretches them until progress resumes (paper §VI-D discusses timeout
     settings; the backoff pacemaker is this repo's extension). *)
  let config =
    {
      base with
      timeout = 0.010;
      extra_delay_mu = 0.010;
      extra_delay_sigma = 0.0;
      runtime = 2.0;
    }
  in
  let starved = run config 2000.0 in
  Alcotest.(check int) "fixed timers starve" 0
    starved.summary.committed_txs;
  let recovered = run { config with backoff = 2.0 } 2000.0 in
  Alcotest.(check bool) "backoff restores throughput" true
    (recovered.summary.throughput > 1000.0);
  check_healthy "backoff" recovered

let test_cpu_utilization_reported () =
  let r = run base 20_000.0 in
  Alcotest.(check int) "one entry per replica" base.n
    (Array.length r.cpu_utilization);
  Array.iter
    (fun u ->
      if u <= 0.0 || u > 1.0 then
        Alcotest.failf "utilization out of range: %f" u)
    r.cpu_utilization;
  (* Higher load must consume more CPU. *)
  let light = run base 2_000.0 in
  Alcotest.(check bool) "monotone in load" true
    (r.cpu_utilization.(0) > light.cpu_utilization.(0))

let test_invalid_config_rejected () =
  match run { base with n = 0 } 100.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid config accepted"

(* Safety property: across random seeds, protocols and faults, no two
   replicas ever commit conflicting blocks and no local violation occurs. *)
let safety_prop =
  let open QCheck in
  let gen =
    Gen.quad (Gen.int_range 0 3) (Gen.int_range 0 2) (Gen.int_range 0 1000)
      (Gen.oneofl [ 0.005; 0.02; 0.1 ])
  in
  Test.make ~name:"no conflicting commits under random runs" ~count:12
    (make
       ~print:(fun (p, s, seed, t) ->
         Printf.sprintf "proto=%d strat=%d seed=%d timeout=%g" p s seed t)
       gen)
    (fun (p, s, seed, timeout) ->
      let protocol =
        List.nth
          [ Config.Hotstuff; Config.Twochain; Config.Streamlet; Config.Fasthotstuff ]
          p
      in
      let strategy = List.nth [ Config.Honest; Config.Silence; Config.Fork ] s in
      let config =
        {
          base with
          protocol;
          strategy;
          n = 7;
          byz_no = (if strategy = Config.Honest then 0 else 2);
          timeout;
          runtime = 1.0;
          warmup = 0.2;
          seed;
        }
      in
      let r = run config 3000.0 in
      r.consistent && not r.any_violation)

let suite =
  [
    Alcotest.test_case "happy path, all protocols" `Quick
      test_happy_path_all_protocols;
    Alcotest.test_case "block interval constants" `Quick
      test_block_interval_constants;
    Alcotest.test_case "2CHS latency < HS" `Quick
      test_twochain_latency_below_hotstuff;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "closed loop" `Quick test_closed_loop;
    Alcotest.test_case "broadcast workload" `Quick test_broadcast_workload;
    Alcotest.test_case "forking attack (HS)" `Quick test_forking_attack_hotstuff;
    Alcotest.test_case "fork depth ordering" `Quick
      test_forking_attack_depth_ordering;
    Alcotest.test_case "streamlet fork immunity" `Quick
      test_forking_attack_streamlet_immune;
    Alcotest.test_case "silence attack" `Quick test_silence_attack;
    Alcotest.test_case "streamlet silence: no forks" `Quick
      test_silence_attack_streamlet_no_forks;
    Alcotest.test_case "crash fault" `Quick test_crash_fault;
    Alcotest.test_case "fluctuation recovery" `Quick test_fluctuation_recovers;
    Alcotest.test_case "series sanity" `Quick test_series_covers_run;
    Alcotest.test_case "static leader" `Quick test_static_leader;
    Alcotest.test_case "hashed election" `Quick test_hashed_election;
    Alcotest.test_case "mempool backpressure" `Quick test_mempool_backpressure;
    Alcotest.test_case "lossy network" `Quick test_lossy_network;
    Alcotest.test_case "backoff restores liveness" `Quick
      test_backoff_restores_liveness;
    Alcotest.test_case "cpu utilization" `Quick test_cpu_utilization_reported;
    Alcotest.test_case "invalid config" `Quick test_invalid_config_rejected;
    QCheck_alcotest.to_alcotest safety_prop;
  ]
