module Ring = Bamboo_util.Ring

(* --- single-threaded semantics --- *)

let test_capacity_rounding () =
  Alcotest.(check int) "rounds up to pow2" 8 (Ring.capacity (Ring.create ~capacity:5 ()));
  Alcotest.(check int) "minimum 2" 2 (Ring.capacity (Ring.create ~capacity:1 ()));
  Alcotest.(check int) "exact pow2 kept" 64 (Ring.capacity (Ring.create ~capacity:64 ()));
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create ~capacity:0 () : int Ring.t))

let test_spsc_wraparound () =
  (* Far more elements than slots: every slot's generation counter must
     wrap correctly many times while FIFO order is preserved. *)
  let r = Ring.create ~capacity:8 () in
  let next = ref 0 in
  for i = 0 to 999 do
    (match Ring.push r i with
    | Ring.Pushed -> ()
    | Ring.Full | Ring.Closed -> Alcotest.fail "unexpected push failure");
    (* keep ~6 elements in flight so head and tail wrap out of phase *)
    if i >= 5 then
      match Ring.pop r with
      | Some v ->
          Alcotest.(check int) "FIFO across wraps" !next v;
          incr next
      | None -> Alcotest.fail "expected element in flight"
  done;
  let rec drain () =
    match Ring.pop r with
    | Some v ->
        Alcotest.(check int) "FIFO tail" !next v;
        incr next;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "nothing lost" 1000 !next;
  Alcotest.(check bool) "empty" true (Ring.is_empty r)

let test_full_backpressure () =
  let r = Ring.create ~capacity:4 () in
  for i = 0 to 3 do
    Alcotest.(check bool) "fits" true (Ring.push r i = Ring.Pushed)
  done;
  Alcotest.(check bool) "full reported" true (Ring.push r 99 = Ring.Full);
  Alcotest.(check int) "length at capacity" 4 (Ring.length r);
  (* push_all accepts exactly the free prefix *)
  ignore (Ring.pop r : int option);
  ignore (Ring.pop r : int option);
  Alcotest.(check int) "partial batch accepted" 2
    (Ring.push_all r [ 10; 11; 12; 13 ]);
  Alcotest.(check int) "full again" 4 (Ring.length r)

let test_push_all_drain () =
  let r = Ring.create ~capacity:16 () in
  Alcotest.(check int) "batch accepted" 5 (Ring.push_all r [ 1; 2; 3; 4; 5 ]);
  let got = ref [] in
  Alcotest.(check int) "drain max" 3
    (Ring.drain r ~max:3 (fun v -> got := v :: !got));
  Alcotest.(check (list int)) "drain order" [ 1; 2; 3 ] (List.rev !got);
  Alcotest.(check int) "drain rest" 2 (Ring.drain r (fun _ -> ()));
  Alcotest.(check int) "empty batch" 0 (Ring.push_all r [])

let test_close_semantics () =
  let r = Ring.create ~capacity:4 () in
  Alcotest.(check bool) "push before close" true (Ring.push r 1 = Ring.Pushed);
  Alcotest.(check bool) "first close transitions" true (Ring.close r);
  Alcotest.(check bool) "second close does not" false (Ring.close r);
  Alcotest.(check bool) "push after close" true (Ring.push r 2 = Ring.Closed);
  Alcotest.(check int) "push_all after close" 0 (Ring.push_all r [ 3; 4 ]);
  (* published elements remain poppable after close *)
  Alcotest.(check (option int)) "drainable after close" (Some 1) (Ring.pop r);
  Alcotest.(check (option int)) "then empty" None (Ring.pop r)

(* --- multi-producer stress across real domains ---

   Values encode (producer, seq); the consumer checks per-producer FIFO
   (the MPSC contract: global order is unspecified, each producer's
   stream arrives in order) and that nothing is lost or duplicated.
   Producers spin on Full — the consumer is concurrently draining, so
   every element eventually fits; the test exercises claim contention,
   wraparound under load and cross-domain publication. *)
let test_mpsc_domains () =
  let producers = 3 and per_producer = 5000 in
  let r = Ring.create ~capacity:64 () in
  let encode p seq = (p * 1_000_000) + seq in
  let spawn p =
    Domain.spawn (fun () ->
        for seq = 0 to per_producer - 1 do
          let rec go () =
            match Ring.push r (encode p seq) with
            | Ring.Pushed -> ()
            | Ring.Full ->
                Domain.cpu_relax ();
                go ()
            | Ring.Closed -> Alcotest.fail "ring closed during stress"
          in
          go ()
        done)
  in
  let doms = List.init producers spawn in
  let expected = producers * per_producer in
  let last_seq = Array.make producers (-1) in
  let received = ref 0 in
  while !received < expected do
    match Ring.pop r with
    | None -> Domain.cpu_relax ()
    | Some v ->
        let p = v / 1_000_000 and seq = v mod 1_000_000 in
        if seq <= last_seq.(p) then
          Alcotest.failf "producer %d out of order: %d after %d" p seq
            last_seq.(p);
        last_seq.(p) <- seq;
        incr received
  done;
  List.iter Domain.join doms;
  Alcotest.(check (option int)) "nothing extra" None (Ring.pop r);
  Array.iteri
    (fun p last ->
      Alcotest.(check int)
        (Printf.sprintf "producer %d complete" p)
        (per_producer - 1) last)
    last_seq

(* push_all under concurrent drain: batches from one producer must land
   contiguously (claim_run takes consecutive slots), so the consumer sees
   each batch's elements adjacent and in order. *)
let test_batch_contiguity () =
  let r = Ring.create ~capacity:32 () in
  let batches = 2000 and batch_len = 4 in
  let producer =
    Domain.spawn (fun () ->
        for b = 0 to batches - 1 do
          let base = b * batch_len in
          let batch = List.init batch_len (fun i -> base + i) in
          let rec send xs =
            match xs with
            | [] -> ()
            | _ ->
                let accepted = Ring.push_all r xs in
                let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l) in
                let rest = drop accepted xs in
                if rest <> [] then Domain.cpu_relax ();
                send rest
          in
          send batch
        done)
  in
  let expected = batches * batch_len in
  let next = ref 0 in
  while !next < expected do
    match Ring.pop r with
    | None -> Domain.cpu_relax ()
    | Some v ->
        Alcotest.(check int) "single-producer batches stay ordered" !next v;
        incr next
  done;
  Domain.join producer

let suite =
  [
    Alcotest.test_case "capacity rounding" `Quick test_capacity_rounding;
    Alcotest.test_case "SPSC wraparound FIFO" `Quick test_spsc_wraparound;
    Alcotest.test_case "full-ring backpressure" `Quick test_full_backpressure;
    Alcotest.test_case "push_all/drain" `Quick test_push_all_drain;
    Alcotest.test_case "close semantics" `Quick test_close_semantics;
    Alcotest.test_case "MPSC stress across domains" `Quick test_mpsc_domains;
    Alcotest.test_case "batch contiguity under drain" `Quick
      test_batch_contiguity;
  ]
