module Config = Bamboo.Config
module Json = Bamboo_util.Json

let test_defaults () =
  let d = Config.default in
  Alcotest.(check int) "n" 4 d.n;
  Alcotest.(check int) "bsize" 400 d.bsize;
  Alcotest.(check int) "psize" 0 d.psize;
  Alcotest.(check (float 0.0)) "timeout 100ms" 0.1 d.timeout;
  Alcotest.(check int) "byzNo" 0 d.byz_no;
  Alcotest.(check bool) "rotating" true (d.election = Config.Rotation);
  Alcotest.(check bool) "validates" true (Config.validate d = Ok d)

let test_quorum_size () =
  Alcotest.(check int) "n=4" 3 (Config.quorum_size Config.default);
  Alcotest.(check int) "n=32" 21
    (Config.quorum_size { Config.default with n = 32 })

let test_protocol_names () =
  List.iter
    (fun p ->
      match Config.protocol_of_name (Config.protocol_name p) with
      | Ok p' -> Alcotest.(check bool) "round trip" true (p = p')
      | Error e -> Alcotest.fail e)
    [ Config.Hotstuff; Config.Twochain; Config.Streamlet; Config.Fasthotstuff ];
  Alcotest.(check bool) "aliases" true
    (Config.protocol_of_name "hs" = Ok Config.Hotstuff
    && Config.protocol_of_name "2chs" = Ok Config.Twochain
    && Config.protocol_of_name "sl" = Ok Config.Streamlet);
  Alcotest.(check bool) "unknown" true
    (match Config.protocol_of_name "pbft" with Error _ -> true | Ok _ -> false)

let test_validation_errors () =
  let expect_error c =
    match Config.validate c with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected validation error"
  in
  expect_error { Config.default with n = 0 };
  expect_error { Config.default with byz_no = 2 } (* f(4) = 1 *);
  expect_error { Config.default with bsize = 0 };
  expect_error { Config.default with psize = -1 };
  expect_error { Config.default with timeout = 0.0 };
  expect_error { Config.default with backoff = 0.9 };
  expect_error { Config.default with runtime = 0.0 };
  expect_error { Config.default with bandwidth = 0.0 };
  expect_error { Config.default with election = Config.Static 9 }

let test_byz_bound_scales () =
  let c = { Config.default with n = 32; byz_no = 10 } in
  Alcotest.(check bool) "f(32)=10 ok" true (Config.validate c = Ok c);
  match Config.validate { c with byz_no = 11 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "byz 11 of 32 accepted"

let test_json_round_trip () =
  let c =
    {
      Config.default with
      protocol = Config.Streamlet;
      n = 8;
      byz_no = 2;
      strategy = Config.Fork;
      election = Config.Static 3;
      bsize = 100;
      psize = 128;
      timeout = 0.05;
      backoff = 1.5;
      propose_policy = Config.Wait_timeout;
      tc_adopt_qc = true;
      echo = Some false;
      extra_delay_mu = 0.005;
      seed = 99;
    }
  in
  match Config.of_json (Config.to_json c) with
  | Ok c' -> Alcotest.(check bool) "round trip" true (c = c')
  | Error e -> Alcotest.fail e

let test_json_defaults_fill_in () =
  match Config.of_json (Json.of_string {|{"n": 7, "bsize": 50}|}) with
  | Ok c ->
      Alcotest.(check int) "n" 7 c.n;
      Alcotest.(check int) "bsize" 50 c.bsize;
      Alcotest.(check int) "psize default" Config.default.psize c.psize;
      Alcotest.(check bool) "protocol default" true
        (c.protocol = Config.default.protocol)
  | Error e -> Alcotest.fail e

let test_json_master_semantics () =
  (* Table I: master = 0 means rotating, otherwise a static leader id. *)
  (match Config.of_json (Json.of_string {|{"master": 0}|}) with
  | Ok c -> Alcotest.(check bool) "0 = rotation" true (c.election = Config.Rotation)
  | Error e -> Alcotest.fail e);
  match Config.of_json (Json.of_string {|{"master": 2}|}) with
  | Ok c -> Alcotest.(check bool) "2 = static 1" true (c.election = Config.Static 1)
  | Error e -> Alcotest.fail e

let test_json_unknown_field_rejected () =
  match Config.of_json (Json.of_string {|{"nn": 4}|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown field accepted"

let test_json_invalid_values () =
  (match Config.of_json (Json.of_string {|{"protocol": "pbft"}|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad protocol accepted");
  (match Config.of_json (Json.of_string {|{"n": 0}|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid n accepted");
  match Config.of_json (Json.of_string {|[1]|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object accepted"

let test_json_ms_units () =
  (* timeout/mu/delay are expressed in milliseconds in the JSON form. *)
  match Config.of_json (Json.of_string {|{"timeout": 50, "delay": 5}|}) with
  | Ok c ->
      Alcotest.(check (float 1e-9)) "timeout s" 0.05 c.timeout;
      Alcotest.(check (float 1e-9)) "delay s" 0.005 c.extra_delay_mu
  | Error e -> Alcotest.fail e

let test_jobs_field () =
  (match Config.validate { Config.default with jobs = 0 } with
  | Error e ->
      Alcotest.(check bool) "mentions jobs" true
        (String.length e >= 4 && String.sub e 0 4 = "jobs")
  | Ok _ -> Alcotest.fail "jobs = 0 accepted");
  Alcotest.(check bool) "default >= 1" true (Config.default.jobs >= 1);
  let c = { Config.default with jobs = 3 } in
  (match Config.of_json (Config.to_json c) with
  | Ok c' -> Alcotest.(check int) "round trip" 3 c'.Config.jobs
  | Error e -> Alcotest.fail e);
  match Config.of_json (Json.of_string {|{"jobs": 0}|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "jobs = 0 from JSON accepted"

let suite =
  [
    Alcotest.test_case "defaults" `Quick test_defaults;
    Alcotest.test_case "jobs field" `Quick test_jobs_field;
    Alcotest.test_case "quorum size" `Quick test_quorum_size;
    Alcotest.test_case "protocol names" `Quick test_protocol_names;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    Alcotest.test_case "byz bound scales" `Quick test_byz_bound_scales;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "json defaults" `Quick test_json_defaults_fill_in;
    Alcotest.test_case "json master semantics" `Quick test_json_master_semantics;
    Alcotest.test_case "json unknown field" `Quick test_json_unknown_field_rejected;
    Alcotest.test_case "json invalid values" `Quick test_json_invalid_values;
    Alcotest.test_case "json ms units" `Quick test_json_ms_units;
  ]
