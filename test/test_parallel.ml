(* The parallel experiment driver's determinism contract: the formatted
   rows of an experiment are identical at any job count, because every
   simulation cell is self-contained and Bamboo_util.Pool returns results
   in submission order. A reduced base configuration keeps the cells
   cheap; the rows compared are the final formatted strings, so any
   divergence — float rounding, ordering, dropped cells — fails loudly. *)

module E = Bamboo.Experiments
module Config = Bamboo.Config

let rows_at jobs f =
  E.set_jobs jobs;
  Fun.protect ~finally:(fun () -> E.set_jobs 1) f

let test_table2_rows_identical () =
  let base = { Config.default with runtime = 0.5; warmup = 0.1 } in
  let seq = rows_at 1 (fun () -> E.table2_rows ~base E.Quick) in
  let par = rows_at 4 (fun () -> E.table2_rows ~base E.Quick) in
  Alcotest.(check (list (list string))) "jobs=4 equals jobs=1" seq par

let test_fig8_panel_identical () =
  let base = { Config.default with runtime = 0.25; warmup = 0.05 } in
  let panel jobs =
    rows_at jobs (fun () -> E.fig8_panel_rows ~base ~n:4 ~bsize:100 E.Quick)
  in
  let seq = panel 1 and par = panel 4 in
  Alcotest.(check (list (pair string (list (list string)))))
    "jobs=4 equals jobs=1" seq par

let test_sweep_on_pool_matches_rates () =
  (* sweep pairs each requested rate with its own cell's summary, in
     order. *)
  let config = { Config.default with runtime = 0.3; warmup = 0.05 } in
  let rates = [ 10_000.0; 20_000.0; 30_000.0 ] in
  let pairs = rows_at 3 (fun () -> E.sweep ~config ~rates) in
  Alcotest.(check (list (float 0.0))) "rates in order" rates (List.map fst pairs);
  List.iter
    (fun (rate, (s : Bamboo.Metrics.summary)) ->
      Alcotest.(check bool)
        (Printf.sprintf "throughput at %.0f positive" rate)
        true
        (s.Bamboo.Metrics.throughput > 0.0))
    pairs

let test_set_jobs_validates () =
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Experiments.set_jobs: jobs must be >= 1") (fun () ->
      E.set_jobs 0);
  E.set_jobs 2;
  Alcotest.(check int) "accessor" 2 (E.jobs ());
  E.set_jobs 1

(* --- intra-cell parallel signature audit --- *)

module Runtime = Bamboo.Runtime
module Workload = Bamboo.Workload
module Snapshot = Bamboo_metrics.Snapshot

let audit_config = { Config.default with runtime = 1.0; warmup = 0.2; seed = 7 }

let run_audit ?verify_jobs () =
  let metrics = Bamboo_metrics.Registry.create () in
  let r =
    Runtime.run ~config:audit_config
      ~workload:(Workload.open_loop ~rate:2000.0 ())
      ~metrics ?verify_jobs ()
  in
  (r, Snapshot.of_registry metrics)

let fingerprint (r : Runtime.result) =
  (r.sim_events, r.final_views, r.committed_heights, Array.map Array.to_list r.ledgers)

let test_verify_audit_byte_identical () =
  (* The audit is observe-only: the simulation's event schedule and every
     replica's ledger must be identical with it off, serial, and fanned
     over 4 Pool domains. *)
  let off, _ = run_audit () in
  let serial, _ = run_audit ~verify_jobs:1 () in
  let par, _ = run_audit ~verify_jobs:4 () in
  Alcotest.(check bool) "jobs=1 identical to audit off" true
    (fingerprint off = fingerprint serial);
  Alcotest.(check bool) "jobs=4 identical to audit off" true
    (fingerprint off = fingerprint par);
  Alcotest.(check bool) "committed something" true
    (Array.exists (fun h -> h > 0) off.committed_heights)

let test_verify_audit_metrics () =
  let _, snap1 = run_audit ~verify_jobs:1 () in
  let _, snap4 = run_audit ~verify_jobs:4 () in
  let c name snap = Snapshot.counter_value snap name in
  Alcotest.(check bool) "audited messages" true
    (c "parallel_verify_msgs" snap1 > 0);
  Alcotest.(check int) "no failures" 0 (c "parallel_verify_failures" snap1);
  Alcotest.(check int) "msgs independent of jobs"
    (c "parallel_verify_msgs" snap1)
    (c "parallel_verify_msgs" snap4);
  Alcotest.(check int) "batches independent of jobs"
    (c "parallel_verify_batches" snap1)
    (c "parallel_verify_batches" snap4);
  Alcotest.(check bool) "batching happened" true
    (c "parallel_verify_batches" snap1 > 0)

let test_message_verify_tamper () =
  let module Message = Bamboo_types.Message in
  let reg = Helpers.registry ()
  and quorum = Config.quorum_size { Config.default with n = 4 } in
  let block = Helpers.child ~reg ~view:1 Bamboo_types.Block.genesis in
  let vote = Helpers.vote_for reg ~voter:2 block in
  Alcotest.(check bool) "honest vote verifies" true
    (Message.verify reg ~quorum (Message.Vote vote));
  let forged = { vote with signature = { vote.signature with tag = "bogus" } } in
  Alcotest.(check bool) "forged signature rejected" false
    (Message.verify reg ~quorum (Message.Vote forged));
  let wrong_signer = { vote with voter = 3 } in
  Alcotest.(check bool) "signer mismatch rejected" false
    (Message.verify reg ~quorum (Message.Vote wrong_signer))

let suite =
  [
    Alcotest.test_case "table2 rows identical across job counts" `Quick
      test_table2_rows_identical;
    Alcotest.test_case "fig8 panel identical across job counts" `Quick
      test_fig8_panel_identical;
    Alcotest.test_case "sweep keeps rate order on the pool" `Quick
      test_sweep_on_pool_matches_rates;
    Alcotest.test_case "set_jobs validates" `Quick test_set_jobs_validates;
    Alcotest.test_case "verify audit byte-identical at any jobs" `Slow
      test_verify_audit_byte_identical;
    Alcotest.test_case "verify audit metrics" `Slow test_verify_audit_metrics;
    Alcotest.test_case "message verify rejects tampering" `Quick
      test_message_verify_tamper;
  ]
