(* The parallel experiment driver's determinism contract: the formatted
   rows of an experiment are identical at any job count, because every
   simulation cell is self-contained and Bamboo_util.Pool returns results
   in submission order. A reduced base configuration keeps the cells
   cheap; the rows compared are the final formatted strings, so any
   divergence — float rounding, ordering, dropped cells — fails loudly. *)

module E = Bamboo.Experiments
module Config = Bamboo.Config

let rows_at jobs f =
  E.set_jobs jobs;
  Fun.protect ~finally:(fun () -> E.set_jobs 1) f

let test_table2_rows_identical () =
  let base = { Config.default with runtime = 0.5; warmup = 0.1 } in
  let seq = rows_at 1 (fun () -> E.table2_rows ~base E.Quick) in
  let par = rows_at 4 (fun () -> E.table2_rows ~base E.Quick) in
  Alcotest.(check (list (list string))) "jobs=4 equals jobs=1" seq par

let test_fig8_panel_identical () =
  let base = { Config.default with runtime = 0.25; warmup = 0.05 } in
  let panel jobs =
    rows_at jobs (fun () -> E.fig8_panel_rows ~base ~n:4 ~bsize:100 E.Quick)
  in
  let seq = panel 1 and par = panel 4 in
  Alcotest.(check (list (pair string (list (list string)))))
    "jobs=4 equals jobs=1" seq par

let test_sweep_on_pool_matches_rates () =
  (* sweep pairs each requested rate with its own cell's summary, in
     order. *)
  let config = { Config.default with runtime = 0.3; warmup = 0.05 } in
  let rates = [ 10_000.0; 20_000.0; 30_000.0 ] in
  let pairs = rows_at 3 (fun () -> E.sweep ~config ~rates) in
  Alcotest.(check (list (float 0.0))) "rates in order" rates (List.map fst pairs);
  List.iter
    (fun (rate, (s : Bamboo.Metrics.summary)) ->
      Alcotest.(check bool)
        (Printf.sprintf "throughput at %.0f positive" rate)
        true
        (s.Bamboo.Metrics.throughput > 0.0))
    pairs

let test_set_jobs_validates () =
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Experiments.set_jobs: jobs must be >= 1") (fun () ->
      E.set_jobs 0);
  E.set_jobs 2;
  Alcotest.(check int) "accessor" 2 (E.jobs ());
  E.set_jobs 1

let suite =
  [
    Alcotest.test_case "table2 rows identical across job counts" `Quick
      test_table2_rows_identical;
    Alcotest.test_case "fig8 panel identical across job counts" `Quick
      test_fig8_panel_identical;
    Alcotest.test_case "sweep keeps rate order on the pool" `Quick
      test_sweep_on_pool_matches_rates;
    Alcotest.test_case "set_jobs validates" `Quick test_set_jobs_validates;
  ]
