module Sim = Bamboo_sim.Sim
module Config = Bamboo.Config
module Monitor = Bamboo_check.Monitor
module Scenario = Bamboo_check.Scenario
module Fuzz = Bamboo_check.Fuzz
module Schedule = Bamboo_faults.Schedule
module Json = Bamboo_util.Json
module Registry = Bamboo_metrics.Registry
module Scheduler = Bamboo_explore.Scheduler
module Strategy = Bamboo_explore.Strategy

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* --- sim controller semantics --- *)

(* A choose-0 controller must reproduce the uncontrolled delivery order:
   candidates are sorted by (timestamp, sequence), so index 0 is exactly
   what the plain heap would fire next. *)
let test_neutral_controller_order () =
  let order ctl =
    let sim = Sim.create () in
    let log = ref [] in
    Sim.set_controller sim ctl;
    List.iteri
      (fun i d ->
        Sim.schedule_delivery sim ~delay:d ~src:0 ~dst:(i mod 3)
          ~note:(Printf.sprintf "m%d" i) (fun () -> log := i :: !log))
      [ 1.0; 1.0005; 1.001; 2.0 ];
    Sim.schedule sim ~delay:1.5 (fun () -> log := 99 :: !log);
    (* Only [run_until] consults the controller. *)
    Sim.run_until sim 10.0;
    (List.rev !log, Sim.decisions sim)
  in
  let free, d0 = order None in
  let controlled, d1 =
    order (Some { Sim.window = 0.01; choose = (fun ~now:_ _ -> 0) })
  in
  Alcotest.(check (list int)) "same firing order" free controlled;
  Alcotest.(check int) "no decisions uncontrolled" 0 d0;
  Alcotest.(check bool) "decisions offered" true (d1 > 0)

let test_controller_accelerates_choice () =
  let sim = Sim.create () in
  let fired = ref [] in
  Sim.set_controller sim
    (Some
       {
         Sim.window = 0.01;
         choose = (fun ~now:_ arr -> Array.length arr - 1);
       });
  List.iteri
    (fun i d ->
      Sim.schedule_delivery sim ~delay:d ~src:0 ~dst:i
        ~note:(Printf.sprintf "m%d" i) (fun () ->
          fired := (i, Sim.now sim) :: !fired))
    [ 1.0; 1.0005 ];
  Sim.run_until sim 10.0;
  match List.rev !fired with
  | [ (first, t_first); (second, _) ] ->
      Alcotest.(check int) "later candidate fires first" 1 first;
      Alcotest.(check int) "earlier candidate fires second" 0 second;
      (* The chosen delivery is pulled forward to the window base. *)
      Alcotest.(check (float 1e-12)) "fires at window base" 1.0 t_first
  | other ->
      Alcotest.failf "expected two firings, got %d" (List.length other)

let test_peek_and_drain_window () =
  let sim = Sim.create () in
  Alcotest.(check (option (float 0.0))) "peek empty" None (Sim.peek_at sim);
  let log = ref [] in
  List.iter
    (fun d -> Sim.schedule sim ~delay:d (fun () -> log := d :: !log))
    [ 1.0; 1.2; 5.0 ];
  Alcotest.(check (option (float 1e-12)))
    "peek earliest" (Some 1.0) (Sim.peek_at sim);
  let n = Sim.drain_window sim ~width:0.5 in
  Alcotest.(check int) "fired inside window" 2 n;
  Alcotest.(check (list (float 0.0))) "window events" [ 1.0; 1.2 ]
    (List.rev !log);
  Alcotest.(check int) "one left" 1 (Sim.pending sim);
  (match Sim.drain_window sim ~width:(-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative width must raise");
  (* Nested scheduling inside the window is drained too. *)
  let sim2 = Sim.create () in
  let count = ref 0 in
  Sim.schedule sim2 ~delay:1.0 (fun () ->
      incr count;
      Sim.schedule sim2 ~delay:0.1 (fun () -> incr count));
  Alcotest.(check int) "nested drained" 2 (Sim.drain_window sim2 ~width:0.2);
  Alcotest.(check int) "both fired" 2 !count

let test_pending_deliveries_sorted () =
  let sim = Sim.create () in
  Alcotest.(check int)
    "empty without controller" 0
    (List.length (Sim.pending_deliveries sim));
  Sim.set_controller sim
    (Some { Sim.window = 0.01; choose = (fun ~now:_ _ -> 0) });
  List.iter
    (fun (d, dst) ->
      Sim.schedule_delivery sim ~delay:d ~src:0 ~dst ~note:"m" (fun () -> ()))
    [ (2.0, 2); (1.0, 1); (3.0, 3) ];
  let ats = List.map (fun (at, _, _, _) -> at) (Sim.pending_deliveries sim) in
  Alcotest.(check (list (float 1e-12)))
    "sorted by timestamp" [ 1.0; 2.0; 3.0 ] ats

(* --- scheduler cells and controlled runs --- *)

let cell ?faults ?(protocol = Config.Hotstuff) ?(byz_no = 0)
    ?(strategy = Config.Honest) ?(horizon = 0.6) () =
  Scheduler.scenario ?faults ~protocol ~n:4 ~byz_no ~strategy ~horizon
    ~timeout:0.05 ()

let test_scenario_validates () =
  let s = cell () in
  Alcotest.(check (float 0.0)) "no client load" 0.0 s.Scenario.rate;
  Alcotest.(check int) "n" 4 s.Scenario.config.Config.n;
  Alcotest.(check (float 0.0)) "sigma 0" 0.0 s.Scenario.config.Config.sigma;
  match cell ~byz_no:3 () with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the bound" true (contains msg "fault bound")
  | _ -> Alcotest.fail "byz_no over the fault bound must be rejected"

let test_run_replay_determinism () =
  let s = cell () in
  let window = 1e-4 in
  let o =
    Scheduler.run ~window ~max_decisions:4 ~prefix:[]
      ~pick:(fun v -> Array.length v.Scheduler.v_candidates - 1)
      s
  in
  Alcotest.(check bool) "recorded decisions" true (o.Scheduler.o_decisions <> []);
  Alcotest.(check bool) "honest cell passes" true
    (Monitor.pass o.Scheduler.o_verdict.Fuzz.report);
  let choices = Scheduler.choices_of ~prefix:[] o in
  let r = Scheduler.replay ~window ~choices s in
  Alcotest.(check int) "same decision points" o.Scheduler.o_sim_decisions
    r.Scheduler.o_sim_decisions;
  Alcotest.(check bool) "replay passes too" true
    (Monitor.pass r.Scheduler.o_verdict.Fuzz.report);
  (* Same run twice is structurally identical. *)
  let o2 =
    Scheduler.run ~window ~max_decisions:4 ~prefix:[]
      ~pick:(fun v -> Array.length v.Scheduler.v_candidates - 1)
      s
  in
  Alcotest.(check (list int)) "deterministic choices" choices
    (Scheduler.choices_of ~prefix:[] o2)

let test_explore_after_scopes_budget () =
  let s = cell () in
  let o =
    Scheduler.run ~explore_after:999.0 ~window:1e-4 ~max_decisions:4
      ~prefix:[] ~pick:(fun _ -> 1) s
  in
  Alcotest.(check int) "nothing recorded past the horizon" 0
    (List.length o.Scheduler.o_decisions);
  Alcotest.(check (list int)) "no tail either" [] o.Scheduler.o_tail

let test_depth_budget_counts_prefix () =
  let s = cell () in
  let prefix =
    [
      { Scheduler.f_choice = 0; f_sleep = [] };
      { Scheduler.f_choice = 0; f_sleep = [] };
    ]
  in
  let o =
    Scheduler.run ~window:1e-4 ~max_decisions:2 ~prefix ~pick:(fun _ -> 0) s
  in
  (* The absolute tree depth is [max_decisions]: two forced entries already
     spend the whole budget, so nothing further is recorded. *)
  Alcotest.(check int) "nothing recorded" 0
    (List.length o.Scheduler.o_decisions);
  Alcotest.(check bool) "stopped at depth" true
    (o.Scheduler.o_stop = Scheduler.Depth)

let test_fingerprints_stable () =
  let s = cell () in
  let fingerprints () =
    let o =
      Scheduler.run ~window:1e-4 ~max_decisions:3 ~prefix:[]
        ~pick:(fun _ -> 0) s
    in
    List.map (fun d -> d.Scheduler.d_fingerprint) o.Scheduler.o_decisions
  in
  let a = fingerprints () in
  Alcotest.(check bool) "some decisions" true (a <> []);
  List.iter
    (fun fp ->
      Alcotest.(check int) "hex digest length" 64 (String.length fp);
      Alcotest.(check bool) "hex digest charset" true
        (String.for_all
           (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
           fp))
    a;
  Alcotest.(check (list string)) "identical run, identical hashes" a
    (fingerprints ())

(* --- DFS: exhaustion, jobs-independence, POR reduction --- *)

let check_stats_equal name (a : Strategy.stats) (b : Strategy.stats) =
  Alcotest.(check int) (name ^ " runs") a.Strategy.runs b.Strategy.runs;
  Alcotest.(check int) (name ^ " states") a.Strategy.states b.Strategy.states;
  Alcotest.(check int)
    (name ^ " decisions")
    a.Strategy.decisions b.Strategy.decisions;
  Alcotest.(check int)
    (name ^ " pruned_sleep")
    a.Strategy.pruned_sleep b.Strategy.pruned_sleep;
  Alcotest.(check int)
    (name ^ " pruned_visited")
    a.Strategy.pruned_visited b.Strategy.pruned_visited;
  Alcotest.(check int)
    (name ^ " frontier_peak")
    a.Strategy.frontier_peak b.Strategy.frontier_peak;
  Alcotest.(check bool) (name ^ " exhausted") a.Strategy.exhausted
    b.Strategy.exhausted

let test_dfs_exhausts_jobs_independent () =
  let s = cell () in
  let run jobs =
    Strategy.dfs ~window:1e-4 ~max_decisions:4 ~max_runs:500 ~jobs s
  in
  let s1, c1 = run 1 in
  let s4, c4 = run 4 in
  Alcotest.(check bool) "exhausted" true s1.Strategy.exhausted;
  Alcotest.(check bool) "several runs" true (s1.Strategy.runs > 1);
  Alcotest.(check bool) "states counted" true (s1.Strategy.states > 0);
  Alcotest.(check bool) "no violation at jobs=1" true (c1 = None);
  Alcotest.(check bool) "no violation at jobs=4" true (c4 = None);
  check_stats_equal "jobs 1 = jobs 4" s1 s4

let test_por_reduction () =
  let s = cell () in
  let on, _ =
    Strategy.dfs ~por:true ~window:1e-4 ~max_decisions:4 ~max_runs:500
      ~jobs:2 s
  in
  let off, _ =
    Strategy.dfs ~por:false ~window:1e-4 ~max_decisions:4 ~max_runs:500
      ~jobs:2 s
  in
  Alcotest.(check bool) "both exhausted" true
    (on.Strategy.exhausted && off.Strategy.exhausted);
  Alcotest.(check bool)
    (Printf.sprintf "POR halves the state count at least (%d vs %d)"
       on.Strategy.states off.Strategy.states)
    true
    (off.Strategy.states >= 2 * on.Strategy.states);
  Alcotest.(check bool) "POR reduces runs too" true
    (off.Strategy.runs > on.Strategy.runs)

(* --- planted bug: the knife-edge cell ---

   Acceleration-only scheduling cannot delay a message, so in a fault-free
   cell the broken voting rule never manifests. Isolating replica 1 across
   the partition onset at 0.162 s puts the default schedule exactly on the
   safe side; accelerating deliveries shifts the later phases against the
   fixed partition window and flips the run into an agreement violation. *)

let knife_edge () =
  cell
    ~faults:
      [
        {
          Schedule.at = 0.162;
          until = Some 0.312;
          spec = Schedule.Partition { a = [ 1 ]; b = [] };
        };
      ]
    ~protocol:Config.Twochain ~byz_no:1 ~strategy:Config.Silence ~horizon:1.2
    ()

let kw = 0.002 (* knife-edge cell window *)

let test_planted_bug_default_passes () =
  let s = knife_edge () in
  let o =
    Scheduler.run ~wrap:Fuzz.broken_voting_rule ~window:kw ~max_decisions:0
      ~prefix:[] ~pick:(fun _ -> 0) s
  in
  Alcotest.(check bool) "default schedule passes" true
    (Monitor.pass o.Scheduler.o_verdict.Fuzz.report)

let test_planted_bug_dfs () =
  let s = knife_edge () in
  let _, cex =
    Strategy.dfs ~wrap:Fuzz.broken_voting_rule ~window:kw ~max_decisions:6
      ~max_runs:120 ~jobs:2 s
  in
  match cex with
  | None -> Alcotest.fail "DFS must find the planted voting bug"
  | Some c ->
      Alcotest.(check string) "strategy tag" "dfs" c.Strategy.c_strategy;
      Alcotest.(check string) "agreement violation" "agreement"
        (Monitor.invariant_name c.Strategy.c_minimized.Fuzz.invariant);
      Alcotest.(check bool) "schedule shrunk" true
        (List.length c.Strategy.c_choices <= 6);
      (* The minimized schedule replays to the same violation... *)
      let r =
        Scheduler.replay ~wrap:Fuzz.broken_voting_rule ~window:kw
          ~choices:c.Strategy.c_choices c.Strategy.c_minimized.Fuzz.scenario
      in
      Alcotest.(check bool) "replay reproduces" false
        (Monitor.pass r.Scheduler.o_verdict.Fuzz.report);
      (* ...and without the planted rule the same schedule is safe. *)
      let honest =
        Scheduler.replay ~window:kw ~choices:c.Strategy.c_choices
          c.Strategy.c_minimized.Fuzz.scenario
      in
      Alcotest.(check bool) "honest rule survives the schedule" true
        (Monitor.pass honest.Scheduler.o_verdict.Fuzz.report);
      (* Round-trip through the replayable artifact. *)
      let json = Strategy.counterexample_to_json c in
      (match Strategy.schedule_of_json json with
      | Ok (Some sched) ->
          Alcotest.(check (float 0.0)) "window survives" kw
            sched.Strategy.window;
          Alcotest.(check (float 0.0)) "explore_after survives" 0.0
            sched.Strategy.explore_after;
          Alcotest.(check (list int)) "choices survive" c.Strategy.c_choices
            sched.Strategy.choices
      | Ok None -> Alcotest.fail "schedule member missing from artifact"
      | Error e -> Alcotest.fail e);
      (* The artifact still parses as a plain fuzzer reproducer. *)
      (match Fuzz.artifact_of_json json with
      | Ok (_, invariant) ->
          Alcotest.(check string) "fuzzer parses the artifact" "agreement"
            (Monitor.invariant_name invariant)
      | Error e -> Alcotest.fail e)

let test_planted_bug_pct () =
  let s = knife_edge () in
  let stats, cex =
    Strategy.pct ~wrap:Fuzz.broken_voting_rule ~window:kw ~max_decisions:6
      ~max_runs:64 ~d:3 ~root_seed:1 ~jobs:2 s
  in
  Alcotest.(check bool) "PCT never exhausts" false stats.Strategy.exhausted;
  match cex with
  | None -> Alcotest.fail "PCT must find the planted voting bug"
  | Some c ->
      Alcotest.(check string) "strategy tag" "pct" c.Strategy.c_strategy;
      Alcotest.(check string) "agreement violation" "agreement"
        (Monitor.invariant_name c.Strategy.c_minimized.Fuzz.invariant);
      let r =
        Scheduler.replay ~wrap:Fuzz.broken_voting_rule ~window:kw
          ~choices:c.Strategy.c_choices c.Strategy.c_minimized.Fuzz.scenario
      in
      Alcotest.(check bool) "replay reproduces" false
        (Monitor.pass r.Scheduler.o_verdict.Fuzz.report)

let test_honest_knife_edge_passes () =
  (* The identical exploration with the real voting rule: the violation is
     the planted bug's, not an artifact of controlled scheduling. *)
  let stats, cex =
    Strategy.dfs ~window:kw ~max_decisions:6 ~max_runs:120 ~jobs:2
      (knife_edge ())
  in
  Alcotest.(check bool) "no violation" true (cex = None);
  Alcotest.(check bool) "space exhausted" true stats.Strategy.exhausted

let test_pct_deterministic () =
  let s = cell () in
  let run jobs =
    Strategy.pct ~window:1e-4 ~max_decisions:3 ~max_runs:6 ~d:2 ~root_seed:7
      ~jobs s
  in
  let s1, c1 = run 1 in
  let s2, c2 = run 2 in
  Alcotest.(check bool) "honest cell passes" true (c1 = None && c2 = None);
  Alcotest.(check bool) "decisions recorded" true (s1.Strategy.decisions > 0);
  Alcotest.(check int) "PCT never counts states" 0 s1.Strategy.states;
  check_stats_equal "pct jobs 1 = jobs 2" s1 s2

(* --- schedule JSON --- *)

let test_schedule_of_json_errors () =
  let check_err name json needle =
    match Strategy.schedule_of_json json with
    | Error e -> Alcotest.(check bool) (name ^ ": " ^ e) true (contains e needle)
    | Ok _ -> Alcotest.fail (name ^ ": expected an error")
  in
  (match Strategy.schedule_of_json (Json.Obj [ ("label", Json.String "x") ]) with
  | Ok None -> ()
  | _ -> Alcotest.fail "no schedule member must parse as Ok None");
  check_err "non-object schedule"
    (Json.Obj [ ("schedule", Json.Int 3) ])
    "schedule";
  check_err "missing window"
    (Json.Obj
       [ ("schedule", Json.Obj [ ("choices", Json.List [ Json.Int 0 ]) ]) ])
    "window";
  check_err "missing choices"
    (Json.Obj [ ("schedule", Json.Obj [ ("window", Json.Float 0.002) ]) ])
    "choices";
  check_err "non-integer choice"
    (Json.Obj
       [
         ("schedule",
          Json.Obj
            [
              ("window", Json.Float 0.002);
              ("choices", Json.List [ Json.String "x" ]);
            ]);
       ])
    "choices";
  match
    Strategy.schedule_of_json
      (Json.Obj
         [
           ("schedule",
            Json.Obj
              [
                ("window", Json.Float 0.002);
                ("choices", Json.List [ Json.Int 1; Json.Int 0 ]);
              ]);
         ])
  with
  | Ok (Some sched) ->
      Alcotest.(check (float 0.0)) "exploreAfter defaults to 0" 0.0
        sched.Strategy.explore_after;
      Alcotest.(check (list int)) "choices" [ 1; 0 ] sched.Strategy.choices
  | Ok None -> Alcotest.fail "schedule member present but not parsed"
  | Error e -> Alcotest.fail e

(* --- scenario JSON error paths (the replay entry point) --- *)

let mutate_member key value = function
  | Json.Obj members ->
      Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if k <> key then Some (k, v)
             else match value with None -> None | Some v' -> Some (k, v'))
           members)
  | j -> j

let mutate_config key value = function
  | Json.Obj members ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "config" then (k, mutate_member key value v) else (k, v))
           members)
  | j -> j

let test_scenario_of_json_errors () =
  let base = Scenario.to_json (knife_edge ()) in
  (match Scenario.of_json base with
  | Ok s ->
      Alcotest.(check string) "round-trips" "explore" s.Scenario.label;
      Alcotest.(check int) "faults survive" 1
        (List.length s.Scenario.config.Config.faults)
  | Error e -> Alcotest.fail e);
  let expect name json needle =
    match Scenario.of_json json with
    | Error e ->
        Alcotest.(check bool) (name ^ ": " ^ e) true (contains e needle)
    | Ok _ -> Alcotest.fail (name ^ ": expected an error")
  in
  expect "missing rate" (mutate_member "rate" None base) "missing \"rate\"";
  expect "non-numeric rate"
    (mutate_member "rate" (Some (Json.String "fast")) base)
    "\"rate\" must be a number";
  expect "malformed faults"
    (mutate_config "faults" (Some (Json.Int 3)) base)
    "faults";
  expect "fault id out of range"
    (mutate_config "faults"
       (Some
          (Schedule.to_json
             [
               {
                 Schedule.at = 0.1;
                 until = None;
                 spec = Schedule.Partition { a = [ 9 ]; b = [] };
               };
             ]))
       base)
    "out of range";
  expect "non-validating cluster"
    (mutate_config "byzNo" (Some (Json.Int 2)) base)
    "fault bound";
  expect "not an object" (Json.String "nope") "must be a JSON object"

(* --- metrics --- *)

let explore_metric_names =
  [
    "explore_runs";
    "explore_states";
    "explore_decisions";
    "explore_pruned_sleep";
    "explore_pruned_visited";
    "explore_frontier_peak";
  ]

let test_metrics_published () =
  let reg = Registry.create () in
  let stats, _ =
    Strategy.dfs ~metrics:reg ~window:1e-4 ~max_decisions:2 ~max_runs:50
      ~jobs:1 (cell ())
  in
  let read = Registry.read reg in
  let names = List.map (fun (name, _, _) -> name) read in
  List.iter
    (fun n ->
      Alcotest.(check bool) ("registered " ^ n) true (List.mem n names))
    explore_metric_names;
  List.iter
    (fun (name, _, merged) ->
      match (name, merged) with
      | "explore_runs", Registry.M_counter v ->
          Alcotest.(check int) "runs counter" stats.Strategy.runs v
      | "explore_states", Registry.M_counter v ->
          Alcotest.(check int) "states counter" stats.Strategy.states v
      | _ -> ())
    read

let suite =
  [
    Alcotest.test_case "sim: neutral controller keeps heap order" `Quick
      test_neutral_controller_order;
    Alcotest.test_case "sim: chosen candidate fires at window base" `Quick
      test_controller_accelerates_choice;
    Alcotest.test_case "sim: peek_at and drain_window" `Quick
      test_peek_and_drain_window;
    Alcotest.test_case "sim: pending_deliveries sorted" `Quick
      test_pending_deliveries_sorted;
    Alcotest.test_case "scheduler: cell validates" `Quick
      test_scenario_validates;
    Alcotest.test_case "scheduler: run/replay determinism" `Quick
      test_run_replay_determinism;
    Alcotest.test_case "scheduler: explore_after scopes the budget" `Quick
      test_explore_after_scopes_budget;
    Alcotest.test_case "scheduler: depth budget counts the prefix" `Quick
      test_depth_budget_counts_prefix;
    Alcotest.test_case "scheduler: fingerprints are stable digests" `Quick
      test_fingerprints_stable;
    Alcotest.test_case "dfs: exhausts, jobs-independent" `Slow
      test_dfs_exhausts_jobs_independent;
    Alcotest.test_case "dfs: POR >= 2x state reduction" `Slow
      test_por_reduction;
    Alcotest.test_case "planted bug: default schedule passes" `Quick
      test_planted_bug_default_passes;
    Alcotest.test_case "planted bug: DFS finds, shrinks, replays" `Slow
      test_planted_bug_dfs;
    Alcotest.test_case "planted bug: PCT finds it too" `Slow
      test_planted_bug_pct;
    Alcotest.test_case "planted bug: honest rule explores clean" `Slow
      test_honest_knife_edge_passes;
    Alcotest.test_case "pct: deterministic for a fixed root seed" `Quick
      test_pct_deterministic;
    Alcotest.test_case "schedule JSON: errors and defaults" `Quick
      test_schedule_of_json_errors;
    Alcotest.test_case "scenario JSON: error paths" `Quick
      test_scenario_of_json_errors;
    Alcotest.test_case "metrics: explore names published" `Quick
      test_metrics_published;
  ]
