open Bamboo_types
module Chan = Bamboo_network.Chan_transport
module Ring_t = Bamboo_network.Ring_transport
module Tcp = Bamboo_network.Tcp_transport

let reg = Helpers.registry ()

let sample_msg ?(voter = 0) () =
  Message.Vote (Helpers.vote_for reg ~voter (Helpers.child ~reg ~view:1 Bamboo_types.Block.genesis))

(* --- in-process transport conformance ---

   The same behavioural contract, run against every in-process backend:
   the mutex/condvar channel transport and the lock-free ring transport
   must be interchangeable under Threaded_runtime. *)

module type CLUSTERED = sig
  type cluster
  type t

  val create_cluster : n:int -> cluster
  val endpoint : cluster -> int -> t

  include Bamboo_network.Transport.S with type t := t
end

module Conformance (T : CLUSTERED) = struct
  let test_send_recv () =
    let cluster = T.create_cluster ~n:3 in
    let a = T.endpoint cluster 0 and b = T.endpoint cluster 1 in
    Alcotest.(check int) "self" 0 (T.self a);
    Alcotest.(check int) "n" 3 (T.n a);
    let msg = sample_msg () in
    T.send a ~dst:1 msg;
    (match T.recv b ~timeout_s:1.0 with
    | Some got -> Alcotest.(check string) "delivered" (Message.key msg) (Message.key got)
    | None -> Alcotest.fail "timeout");
    Alcotest.(check bool) "empty now" true (T.recv b ~timeout_s:0.01 = None)

  let test_fifo () =
    let cluster = T.create_cluster ~n:2 in
    let a = T.endpoint cluster 0 and b = T.endpoint cluster 1 in
    let msgs = List.init 4 (fun voter -> sample_msg ~voter ()) in
    List.iter (T.send a ~dst:1) msgs;
    List.iter
      (fun expected ->
        match T.recv b ~timeout_s:1.0 with
        | Some got ->
            Alcotest.(check string) "order" (Message.key expected) (Message.key got)
        | None -> Alcotest.fail "timeout")
      msgs

  let test_broadcast () =
    let cluster = T.create_cluster ~n:4 in
    let eps = Array.init 4 (T.endpoint cluster) in
    T.broadcast eps.(2) (sample_msg ());
    Array.iteri
      (fun i ep ->
        (* Generous timeout on the delivery side so the TCP backend's
           connect-on-first-send path fits; the sender's own (empty)
           queue needs only a short poll. *)
        let got = T.recv ep ~timeout_s:(if i = 2 then 0.05 else 1.0) in
        if i = 2 then Alcotest.(check bool) "not to self" true (got = None)
        else Alcotest.(check bool) "delivered" true (got <> None))
      eps

  let test_close () =
    let cluster = T.create_cluster ~n:2 in
    let a = T.endpoint cluster 0 and b = T.endpoint cluster 1 in
    T.close b;
    T.send a ~dst:1 (sample_msg ());
    Alcotest.(check bool) "closed drops" true (T.recv b ~timeout_s:0.02 = None)

  let test_cross_thread () =
    let cluster = T.create_cluster ~n:2 in
    let a = T.endpoint cluster 0 and b = T.endpoint cluster 1 in
    let sender =
      Thread.create
        (fun () ->
          Thread.delay 0.02;
          T.send a ~dst:1 (sample_msg ()))
        ()
    in
    let got = T.recv b ~timeout_s:1.0 in
    Thread.join sender;
    Alcotest.(check bool) "received across threads" true (got <> None)

  let tests prefix =
    [
      Alcotest.test_case (prefix ^ " send/recv") `Quick test_send_recv;
      Alcotest.test_case (prefix ^ " FIFO") `Quick test_fifo;
      Alcotest.test_case (prefix ^ " broadcast") `Quick test_broadcast;
      Alcotest.test_case (prefix ^ " close") `Quick test_close;
      Alcotest.test_case (prefix ^ " cross-thread") `Quick test_cross_thread;
    ]
end

module Chan_conformance = Conformance (struct
  include Chan
end)

module Ring_conformance = Conformance (struct
  include Ring_t

  let create_cluster ~n = Ring_t.create_cluster ~n ()
end)

(* --- ring-transport extensions beyond the common contract --- *)

let test_ring_recv_batch () =
  let cluster = Ring_t.create_cluster ~n:2 () in
  let a = Ring_t.endpoint cluster 0 and b = Ring_t.endpoint cluster 1 in
  let msgs = List.init 5 (fun i -> sample_msg ~voter:(i mod 4) ()) in
  List.iter (Ring_t.send a ~dst:1) msgs;
  let first = Ring_t.recv_batch b ~timeout_s:1.0 ~max:3 in
  Alcotest.(check int) "capped at max" 3 (List.length first);
  let rest = Ring_t.recv_batch b ~timeout_s:1.0 ~max:10 in
  Alcotest.(check int) "remainder" 2 (List.length rest);
  Alcotest.(check (list string))
    "batched order matches send order"
    (List.map Message.key msgs)
    (List.map Message.key (first @ rest))

let test_ring_backpressure_drops () =
  (* Tiny inbox, no consumer: the sender must hit the bounded-retry drop
     path instead of blocking or growing a queue. *)
  let cluster = Ring_t.create_cluster ~capacity:4 ~n:2 () in
  let a = Ring_t.endpoint cluster 0 and b = Ring_t.endpoint cluster 1 in
  for _ = 1 to 32 do
    Ring_t.send a ~dst:1 (sample_msg ())
  done;
  let got = Ring_t.recv_batch b ~timeout_s:0.1 ~max:64 in
  Alcotest.(check int) "only the ring capacity was delivered" 4
    (List.length got)

let test_ring_close_while_blocked () =
  let cluster = Ring_t.create_cluster ~n:2 () in
  let b = Ring_t.endpoint cluster 1 in
  let t0 = Unix.gettimeofday () in
  let closer =
    Thread.create
      (fun () ->
        Thread.delay 0.05;
        Ring_t.close b)
      ()
  in
  let got = Ring_t.recv b ~timeout_s:10.0 in
  let elapsed = Unix.gettimeofday () -. t0 in
  Thread.join closer;
  Alcotest.(check bool) "close returns None" true (got = None);
  Alcotest.(check bool)
    (Printf.sprintf "woken promptly (%.3fs)" elapsed)
    true (elapsed < 2.0)

(* --- TCP transport --- *)

let base_port = ref 29460

let fresh_ports n =
  let p = !base_port in
  base_port := p + n;
  Tcp.loopback_addresses ~n ~base_port:p

let test_tcp_round_trip () =
  let addresses = fresh_ports 2 in
  let a = Tcp.create ~self:0 ~addresses () in
  let b = Tcp.create ~self:1 ~addresses () in
  let msg = sample_msg () in
  Tcp.send a ~dst:1 msg;
  (match Tcp.recv b ~timeout_s:2.0 with
  | Some got ->
      Alcotest.(check string) "payload intact" (Codec.encode msg) (Codec.encode got)
  | None -> Alcotest.fail "timeout");
  Tcp.close a;
  Tcp.close b

let test_tcp_broadcast () =
  let addresses = fresh_ports 3 in
  let eps = List.map (fun (self, _) -> Tcp.create ~self ~addresses ()) addresses in
  (match eps with
  | [ a; b; c ] ->
      Tcp.broadcast a (sample_msg ());
      Alcotest.(check bool) "b got it" true (Tcp.recv b ~timeout_s:2.0 <> None);
      Alcotest.(check bool) "c got it" true (Tcp.recv c ~timeout_s:2.0 <> None);
      Alcotest.(check bool) "a did not" true (Tcp.recv a ~timeout_s:0.05 = None)
  | _ -> assert false);
  List.iter Tcp.close eps

let test_tcp_send_to_self () =
  let addresses = fresh_ports 1 in
  let a = Tcp.create ~self:0 ~addresses () in
  Tcp.send a ~dst:0 (sample_msg ());
  Alcotest.(check bool) "loop delivery" true (Tcp.recv a ~timeout_s:0.5 <> None);
  Tcp.close a

let test_tcp_unreachable_peer_is_silent () =
  let addresses = fresh_ports 2 in
  let a = Tcp.create ~self:0 ~addresses () in
  (* Peer 1 never started: sends must be dropped without raising. *)
  Tcp.send a ~dst:1 (sample_msg ());
  Alcotest.(check bool) "no crash" true true;
  Tcp.close a

module Tcp_conformance = Conformance (struct
  type cluster = Tcp.t array
  type t = Tcp.t

  let create_cluster ~n =
    let addresses = fresh_ports n in
    Array.init n (fun self -> Tcp.create ~self ~addresses ())

  let endpoint cluster i = cluster.(i)

  include (Tcp : Bamboo_network.Transport.S with type t := Tcp.t)
end)

let test_tcp_kill_reconnect () =
  let addresses = fresh_ports 2 in
  let a = Tcp.create ~self:0 ~addresses () in
  let b = Tcp.create ~self:1 ~addresses () in
  Tcp.send a ~dst:1 (sample_msg ());
  Alcotest.(check bool)
    "delivered before kill" true
    (Tcp.recv b ~timeout_s:2.0 <> None);
  (* Kill peer 1 and bring a fresh endpoint up on the same port: the
     writer in [a] must notice the broken connection, back off, redial
     and deliver again — the cluster harness's survivor path. *)
  Tcp.close b;
  Tcp.send a ~dst:1 (sample_msg ());
  Thread.delay 0.1;
  let b2 = Tcp.create ~self:1 ~addresses () in
  let rec pump tries =
    if tries > 100 then None
    else begin
      Tcp.send a ~dst:1 (sample_msg ());
      match Tcp.recv b2 ~timeout_s:0.1 with
      | Some m -> Some m
      | None -> pump (tries + 1)
    end
  in
  Alcotest.(check bool) "delivered after restart" true (pump 0 <> None);
  Alcotest.(check bool)
    "reconnects counted" true
    ((Tcp.stats a).Tcp.reconnects >= 1);
  Tcp.close a;
  Tcp.close b2

let test_tcp_queue_full_drops () =
  let addresses = fresh_ports 2 in
  let a = Tcp.create ~outbox_capacity:4 ~self:0 ~addresses () in
  (* Peer 1 never starts, so the writer cannot drain: pushes past the
     tiny ring capacity must be counted drops, never blocking sends. *)
  for _ = 1 to 64 do
    Tcp.send a ~dst:1 (sample_msg ())
  done;
  let st = Tcp.stats a in
  Alcotest.(check bool) "drops counted" true (st.Tcp.dropped_full > 0);
  Alcotest.(check bool)
    "accepted + dropped = attempted" true
    (st.Tcp.sends + st.Tcp.dropped_full = 64);
  Tcp.close a

let test_tcp_large_message () =
  let addresses = fresh_ports 2 in
  let a = Tcp.create ~self:0 ~addresses () in
  let b = Tcp.create ~self:1 ~addresses () in
  let block =
    Helpers.child ~reg ~view:1 ~txs:(Helpers.txs 2000) Bamboo_types.Block.genesis
  in
  let msg = Message.Proposal { block; tc = None } in
  Tcp.send a ~dst:1 msg;
  (match Tcp.recv b ~timeout_s:3.0 with
  | Some (Message.Proposal { block = got; _ }) ->
      Alcotest.(check int) "txs intact" 2000 (List.length got.Block.txs);
      Alcotest.(check string) "hash intact" block.Block.hash got.Block.hash
  | Some _ | None -> Alcotest.fail "bad delivery");
  Tcp.close a;
  Tcp.close b

let suite =
  Chan_conformance.tests "chan"
  @ Ring_conformance.tests "ring"
  @ Tcp_conformance.tests "tcp"
  @ [
      Alcotest.test_case "ring recv_batch" `Quick test_ring_recv_batch;
      Alcotest.test_case "ring backpressure drops" `Quick
        test_ring_backpressure_drops;
      Alcotest.test_case "ring close while blocked" `Quick
        test_ring_close_while_blocked;
      Alcotest.test_case "tcp round trip" `Quick test_tcp_round_trip;
      Alcotest.test_case "tcp broadcast" `Quick test_tcp_broadcast;
      Alcotest.test_case "tcp self send" `Quick test_tcp_send_to_self;
      Alcotest.test_case "tcp unreachable peer" `Quick
        test_tcp_unreachable_peer_is_silent;
      Alcotest.test_case "tcp large message" `Quick test_tcp_large_message;
      Alcotest.test_case "tcp kill and reconnect" `Quick
        test_tcp_kill_reconnect;
      Alcotest.test_case "tcp queue-full drops" `Quick
        test_tcp_queue_full_drops;
    ]
