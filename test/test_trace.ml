(* Observability layer: trace sinks (ring / JSONL / Chrome), probes, the
   latency decomposition, and the zero-perturbation guarantee of tracing. *)

module Trace = Bamboo_obs.Trace
module Probe = Bamboo_obs.Probe
module Latency = Bamboo_obs.Latency
module Json = Bamboo_util.Json
module Runtime = Bamboo.Runtime
module Workload = Bamboo.Workload
module Config = Bamboo.Config

let base = { Config.default with runtime = 1.5; warmup = 0.3; seed = 11 }

let run ?trace ?(config = base) rate =
  Runtime.run ~config ~workload:(Workload.open_loop ~rate ()) ?trace ()

let with_temp_file f =
  let path = Filename.temp_file "bamboo_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* --- sinks --- *)

let test_null_disabled () =
  let t = Trace.null in
  Alcotest.(check bool) "null disabled" false (Trace.enabled t);
  Trace.emit t ~ts:1.0 ~node:0 Trace.Commit;
  Alcotest.(check (list reject)) "null buffers nothing" [] (Trace.events t)

let test_ring_order_and_wraparound () =
  let t = Trace.ring ~capacity:4 in
  Alcotest.(check bool) "ring enabled" true (Trace.enabled t);
  for i = 0 to 9 do
    Trace.emit t ~ts:(float_of_int i) ~node:(i mod 3) ~view:i Trace.Vote_sent
  done;
  let evs = Trace.events t in
  Alcotest.(check int) "capacity bounds retention" 4 (List.length evs);
  let seqs = List.map (fun (e : Trace.event) -> e.seq) evs in
  Alcotest.(check (list int)) "oldest-first, latest kept" [ 6; 7; 8; 9 ] seqs;
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check (float 1e-9)) "ts preserved" (float_of_int e.seq) e.ts;
      Alcotest.(check int) "view preserved" e.seq e.view)
    evs

let test_event_json_schema () =
  let t = Trace.ring ~capacity:8 in
  Trace.emit t ~ts:0.5 ~node:2 ~view:7 ~span:3
    ~args:[ ("hash", Json.String "deadbeef") ]
    Trace.Proposal_sent;
  match Trace.events t with
  | [ e ] ->
      let j = Json.of_string (Json.to_string (Trace.event_to_json e)) in
      Alcotest.(check string) "kind" "proposal_sent"
        (Json.get_string (Json.member "kind" j));
      Alcotest.(check int) "node" 2 (Json.to_int (Json.member "node" j));
      Alcotest.(check int) "view" 7 (Json.to_int (Json.member "view" j));
      Alcotest.(check int) "span" 3 (Json.to_int (Json.member "span" j));
      Alcotest.(check string) "args survive" "deadbeef"
        (Json.get_string (Json.member "hash" (Json.member "args" j)))
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_event_json_round_trip () =
  let t = Trace.ring ~capacity:8 in
  Trace.emit t ~ts:1.25 ~node:3 ~view:9 ~span:4
    ~args:[ ("hash", Json.String "cafe"); ("height", Json.Int 12) ]
    Trace.Commit;
  Trace.emit t ~ts:1.5 ~node:0 Trace.Timeout_fired;
  List.iter
    (fun e ->
      match Trace.event_of_json (Trace.event_to_json e) with
      | Ok got ->
          Alcotest.(check int) "seq" e.Trace.seq got.Trace.seq;
          Alcotest.(check int) "node" e.Trace.node got.Trace.node;
          Alcotest.(check int) "view" e.Trace.view got.Trace.view;
          Alcotest.(check int) "span" e.Trace.span got.Trace.span;
          Alcotest.(check string) "kind" (Trace.kind_name e.Trace.kind)
            (Trace.kind_name got.Trace.kind);
          Alcotest.(check int) "args" (List.length e.Trace.args)
            (List.length got.Trace.args)
      | Error err -> Alcotest.failf "round trip failed: %s" err)
    (Trace.events t);
  (match Trace.event_of_json (Json.Obj [ ("seq", Json.Int 0) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing members must be an error");
  match Trace.kind_of_name "no_such_kind" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind must be an error"

let test_jsonl_sink () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let t = Trace.jsonl oc in
      Trace.emit t ~ts:0.1 ~node:0 ~view:1 Trace.Proposal_sent;
      Trace.emit t ~ts:0.2 ~node:1 ~view:1 Trace.Vote_sent;
      Trace.service t ~node:0 ~queue:`Cpu ~start:0.15 ~duration:0.01;
      Trace.gauge t ~ts:0.3 ~node:1 ~name:"cpu_queue_depth" 2.0;
      Trace.close t;
      close_out oc;
      let lines =
        String.split_on_char '\n' (read_file path)
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "one line per event" 4 (List.length lines);
      let kinds =
        List.map
          (fun l -> Json.get_string (Json.member "kind" (Json.of_string l)))
          lines
      in
      Alcotest.(check (list string)) "kinds in emission order"
        [ "proposal_sent"; "vote_sent"; "service"; "gauge" ]
        kinds)

let chrome_names json =
  Json.member "traceEvents" json
  |> Json.to_list
  |> List.filter_map (fun e ->
         match Json.member "name" e with
         | Json.String s -> Some s
         | _ -> None)

let test_chrome_sink_valid_json () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let t = Trace.chrome oc in
      Trace.emit t ~ts:0.001 ~node:0 ~view:1 ~span:1 Trace.Proposal_sent;
      Trace.service t ~node:0 ~queue:`Nic_out ~start:0.001 ~duration:0.0005;
      Trace.gauge t ~ts:0.002 ~node:0 ~name:"cpu_utilization" 0.5;
      Trace.close t;
      close_out oc;
      (* Round-tripping through the parser is the validity check. *)
      let j = Json.of_string (read_file path) in
      let names = chrome_names j in
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " present") true (List.mem n names))
        [ "proposal_sent"; "nic_out"; "cpu_utilization"; "process_name" ])

(* --- a real traced run --- *)

let test_chrome_trace_of_run () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let t = Trace.chrome oc in
      let r = run ~trace:t 20000.0 in
      Trace.close t;
      close_out oc;
      Alcotest.(check bool) "run healthy" true
        (r.consistent && not r.any_violation);
      let names = chrome_names (Json.of_string (read_file path)) in
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " traced") true (List.mem n names))
        [
          "proposal_sent"; "proposal_received"; "vote_sent"; "vote_received";
          "qc_formed"; "commit"; "view_change"; "tx_enqueue"; "tx_dequeue";
          "cpu";
        ])

let test_spans_correlate_block_lifecycle () =
  let t = Trace.ring ~capacity:200_000 in
  let (_ : Runtime.result) = run ~trace:t 20000.0 in
  let evs = Trace.events t in
  (* Pick any commit and require the same span to carry a proposal and at
     least one vote: the span id is the cross-replica correlation key. *)
  let commit =
    List.find (fun (e : Trace.event) -> e.kind = Trace.Commit) evs
  in
  let of_kind k =
    List.exists
      (fun (e : Trace.event) -> e.kind = k && e.span = commit.span)
      evs
  in
  Alcotest.(check bool) "span has proposal" true (of_kind Trace.Proposal_sent);
  Alcotest.(check bool) "span has vote" true (of_kind Trace.Vote_sent);
  Alcotest.(check bool) "span nonzero" true (commit.span <> 0)

(* --- determinism / zero perturbation --- *)

let test_tracing_does_not_perturb () =
  let plain = run 20000.0 in
  let t = Trace.ring ~capacity:1024 in
  let traced = run ~trace:t 20000.0 in
  Alcotest.(check int) "same event count" plain.sim_events traced.sim_events;
  Alcotest.(check int) "same committed txs" plain.summary.committed_txs
    traced.summary.committed_txs;
  Alcotest.(check (float 1e-12)) "same latency" plain.summary.latency_mean
    traced.summary.latency_mean;
  Alcotest.(check (float 1e-12)) "same throughput" plain.summary.throughput
    traced.summary.throughput

(* --- probe --- *)

let test_probe_gauges () =
  let g = ref 1.0 in
  let p = Probe.create ~interval:0.01 () in
  Probe.add_gauge p ~node:0 ~name:"g" (fun () -> !g);
  Probe.sample p ~now:0.01;
  g := 3.0;
  Probe.sample p ~now:0.02;
  match Probe.find p ~node:0 ~name:"g" with
  | None -> Alcotest.fail "gauge not found"
  | Some s ->
      Alcotest.(check int) "two samples" 2 s.samples;
      Alcotest.(check (float 1e-9)) "mean" 2.0 s.mean;
      Alcotest.(check (float 1e-9)) "max" 3.0 s.max

let test_probe_saturated_run () =
  (* Drive 4-node HotStuff near saturation and require the probes to see a
     busy CPU: mean utilization well above zero on every replica. *)
  let config = { base with probe_interval = 0.01 } in
  let r = run ~config 60000.0 in
  Alcotest.(check bool) "probe summaries present" true (r.probe <> []);
  for node = 0 to config.n - 1 do
    match Probe.find_summary r.probe ~node ~name:"cpu_utilization" with
    | None -> Alcotest.failf "no cpu_utilization gauge for node %d" node
    | Some s ->
        Alcotest.(check bool)
          (Printf.sprintf "node %d cpu busy (%.3f)" node s.mean)
          true (s.mean > 0.05)
  done;
  match Probe.find_summary r.probe ~node:(-1) ~name:"event_heap" with
  | None -> Alcotest.fail "no event_heap gauge"
  | Some s -> Alcotest.(check bool) "heap nonempty" true (s.mean > 0.0)

(* --- latency decomposition --- *)

let test_decomposition_sums_to_latency () =
  let r = run 20000.0 in
  let d = r.decomposition in
  Alcotest.(check bool) "txs decomposed" true (d.samples > 1000);
  let sum = Latency.components_sum d in
  Alcotest.(check bool) "components sum to total" true
    (Float.abs (sum -. d.total) < 1e-9 *. Float.max 1.0 d.total);
  (* The decomposed population is the measured population (same window),
     so its mean must track the reported client latency within 5%. *)
  let mean = r.summary.latency_mean in
  Alcotest.(check bool)
    (Printf.sprintf "decomposition total %.4f ~ latency mean %.4f" d.total mean)
    true
    (Float.abs (d.total -. mean) /. mean < 0.05);
  Alcotest.(check bool) "all components non-negative" true
    (d.client_wire >= 0.0 && d.cpu_queue >= 0.0 && d.cpu_service >= 0.0
    && d.mempool_wait >= 0.0 && d.nic_serialization >= 0.0
    && d.consensus_wait >= 0.0)

let suite =
  [
    Alcotest.test_case "null sink disabled" `Quick test_null_disabled;
    Alcotest.test_case "ring order + wraparound" `Quick
      test_ring_order_and_wraparound;
    Alcotest.test_case "event JSON schema" `Quick test_event_json_schema;
    Alcotest.test_case "event JSON round trip" `Quick
      test_event_json_round_trip;
    Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
    Alcotest.test_case "chrome sink valid JSON" `Quick
      test_chrome_sink_valid_json;
    Alcotest.test_case "chrome trace of a run" `Slow test_chrome_trace_of_run;
    Alcotest.test_case "spans correlate block lifecycle" `Slow
      test_spans_correlate_block_lifecycle;
    Alcotest.test_case "tracing does not perturb the run" `Slow
      test_tracing_does_not_perturb;
    Alcotest.test_case "probe gauges" `Quick test_probe_gauges;
    Alcotest.test_case "probe sees saturated CPUs" `Slow
      test_probe_saturated_run;
    Alcotest.test_case "decomposition sums to latency" `Slow
      test_decomposition_sums_to_latency;
  ]
