(* The bamboo_faults subsystem: schedule JSON contract, engine behaviour
   under partitions / crash-recovery / slowdown / skew, and the
   determinism guarantee (an inert schedule changes nothing). *)

module Runtime = Bamboo.Runtime
module Workload = Bamboo.Workload
module Config = Bamboo.Config
module Schedule = Bamboo_faults.Schedule
module Trace = Bamboo_obs.Trace
module Json = Bamboo_util.Json

let base = { Config.default with runtime = 1.5; warmup = 0.3; seed = 5 }

let run ?bucket config rate =
  Runtime.run ~config ~workload:(Workload.open_loop ~rate ()) ?bucket ()

let check_healthy name (r : Runtime.result) =
  Alcotest.(check bool) (name ^ ": consistent") true r.consistent;
  Alcotest.(check bool) (name ^ ": no violation") false r.any_violation

(* --- schedule JSON contract --- *)

let test_schedule_json_round_trip () =
  let schedule =
    [
      {
        Schedule.at = 1.0;
        until = Some 2.0;
        spec = Schedule.Partition { a = [ 0; 1 ]; b = [ 2; 3 ] };
      };
      { Schedule.at = 0.5; until = None; spec = Schedule.Crash { node = 2 } };
      {
        Schedule.at = 0.25;
        until = Some 0.75;
        spec =
          Schedule.Link_loss
            { src = Schedule.Nodes [ 0 ]; dst = Schedule.All; rate = 0.25 };
      };
      {
        Schedule.at = 0.0;
        until = Some 1.0;
        spec = Schedule.Cpu_slow { node = 1; factor = 4.0 };
      };
    ]
  in
  match Schedule.of_json (Schedule.to_json schedule) with
  | Ok parsed ->
      Alcotest.(check bool) "round trips" true (parsed = schedule)
  | Error e -> Alcotest.failf "round trip failed: %s" e

let test_schedule_json_units () =
  (* Delay parameters are milliseconds in JSON, seconds in OCaml. *)
  let json =
    Json.of_string
      {|[{"kind":"delay","at":2,"until":3,"src":[0],"dst":"all","mu":20,"sigma":2}]|}
  in
  match Schedule.of_json json with
  | Ok [ { at; until; spec = Schedule.Link_delay { mu; sigma; src; dst } } ] ->
      Alcotest.(check (float 1e-12)) "at in seconds" 2.0 at;
      Alcotest.(check (option (float 1e-12))) "until" (Some 3.0) until;
      Alcotest.(check (float 1e-12)) "mu ms->s" 0.020 mu;
      Alcotest.(check (float 1e-12)) "sigma ms->s" 0.002 sigma;
      Alcotest.(check bool) "src parsed" true (src = Schedule.Nodes [ 0 ]);
      Alcotest.(check bool) "dst parsed" true (dst = Schedule.All)
  | Ok _ -> Alcotest.fail "wrong parse shape"
  | Error e -> Alcotest.failf "parse failed: %s" e

let expect_error name json =
  match Schedule.of_json (Json.of_string json) with
  | Ok _ -> Alcotest.failf "%s: accepted" name
  | Error _ -> ()

let test_schedule_json_strict () =
  expect_error "unknown kind" {|[{"kind":"meteor","at":1}]|};
  (* A typo'd key must not silently disable part of a fault. *)
  expect_error "unknown key" {|[{"kind":"crash","at":1,"node":0,"nodee":1}]|};
  expect_error "key from another kind" {|[{"kind":"crash","at":1,"node":0,"rate":0.5}]|};
  expect_error "missing kind" {|[{"at":1,"node":0}]|};
  expect_error "not a list" {|{"kind":"crash","node":0}|}

(* Rejections must say where in the document and what value offended, so a
   user can fix a hand-written schedule without bisecting it. *)
let expect_message name json fragments =
  match Schedule.of_json (Json.of_string json) with
  | Ok _ -> Alcotest.failf "%s: accepted" name
  | Error msg ->
      List.iter
        (fun fragment ->
          let contains =
            let ml = String.length msg and fl = String.length fragment in
            let rec go i =
              i + fl <= ml && (String.sub msg i fl = fragment || go (i + 1))
            in
            go 0
          in
          if not contains then
            Alcotest.failf "%s: error %S does not mention %S" name msg fragment)
        fragments

let test_schedule_json_error_messages () =
  expect_message "entry path"
    {|[{"kind":"crash","node":0},{"kind":"crash"}]|}
    [ "faults[1]"; "node" ];
  expect_message "non-numeric field shows value"
    {|[{"kind":"delay","mu":"fast"}]|}
    [ "faults[0].mu"; "number"; "milliseconds"; {|"fast"|} ];
  expect_message "unknown kind lists valid kinds"
    {|[{"kind":"dealy","at":1}]|}
    [ "faults[0].kind"; {|"dealy"|}; "delay"; "partition" ];
  expect_message "unknown key shows key, value and valid keys"
    {|[{"kind":"crash","at":1,"nod":2}]|}
    [ "faults[0]"; {|"nod"|}; "2"; {|"crash"|}; "until" ];
  expect_message "bad node set shows value"
    {|[{"kind":"delay","mu":3,"src":"leader"}]|}
    [ "faults[0].src"; {|"leader"|}; "all" ];
  expect_message "bad partition ids show value"
    {|[{"kind":"partition","a":[0,"x"]}]|}
    [ "faults[0].a"; {|"x"|} ];
  expect_message "non-object entry shows value"
    {|[17]|}
    [ "faults[0]"; "object"; "17" ];
  expect_message "non-list schedule shows value"
    {|{"kind":"crash","node":0}|}
    [ "list"; "crash" ];
  expect_message "bad at shows units"
    {|[{"kind":"crash","node":0,"at":"soon"}]|}
    [ "faults[0].at"; "seconds"; {|"soon"|} ]

let test_schedule_validate () =
  let entry spec = { Schedule.at = 1.0; until = None; spec } in
  let bad name schedule =
    match Schedule.validate ~n:4 schedule with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error _ -> ()
  in
  bad "node out of range" [ entry (Schedule.Crash { node = 7 }) ];
  bad "rate out of range"
    [
      entry
        (Schedule.Link_loss
           { src = Schedule.All; dst = Schedule.All; rate = 1.5 });
    ];
  bad "overlapping partition"
    [ entry (Schedule.Partition { a = [ 0; 1 ]; b = [ 1; 2 ] }) ];
  bad "non-positive factor" [ entry (Schedule.Cpu_slow { node = 0; factor = 0.0 }) ];
  bad "heal before inject"
    [ { Schedule.at = 2.0; until = Some 1.0; spec = Schedule.Crash { node = 0 } } ];
  match
    Schedule.validate ~n:4
      [ entry (Schedule.Partition { a = [ 0 ]; b = [] }) ]
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "complement partition rejected: %s" e

let test_config_faults_section () =
  let json =
    Json.of_string
      {|{"n": 4, "faults": [{"kind":"partition","at":0.5,"until":1.0,"a":[0,1],"b":[2,3]}]}|}
  in
  (match Config.of_json json with
  | Ok c -> Alcotest.(check int) "one entry" 1 (List.length c.Config.faults)
  | Error e -> Alcotest.failf "rejected: %s" e);
  (* Config validation covers the schedule: replica 9 does not exist. *)
  match
    Config.of_json
      (Json.of_string {|{"n": 4, "faults": [{"kind":"crash","at":1,"node":9}]}|})
  with
  | Ok _ -> Alcotest.fail "out-of-range fault accepted"
  | Error _ -> ()

(* --- determinism --- *)

let test_inert_schedule_bit_identical () =
  (* An empty schedule and one whose only fault lies beyond the horizon
     must both be bit-identical to each other: the engine schedules no
     observable work and fault RNG streams never touch the base ones. *)
  let r0 = run { base with faults = [] } 8000.0 in
  let beyond =
    [
      {
        Schedule.at = base.Config.runtime +. 10.0;
        until = None;
        spec = Schedule.Crash { node = 0 };
      };
    ]
  in
  let r1 = run { base with faults = beyond } 8000.0 in
  Alcotest.(check bool) "summaries bit-identical" true
    (r0.Runtime.summary = r1.Runtime.summary);
  Alcotest.(check bool) "series bit-identical" true
    (r0.Runtime.series = r1.Runtime.series);
  Alcotest.(check bool) "views bit-identical" true
    (r0.Runtime.final_views = r1.Runtime.final_views);
  Alcotest.(check int) "same event count" r0.Runtime.sim_events
    r1.Runtime.sim_events

(* --- scenarios --- *)

let test_partition_heal_liveness () =
  List.iter
    (fun protocol ->
      let name = Config.protocol_name protocol in
      let config =
        {
          base with
          protocol;
          runtime = 4.0;
          faults =
            [
              {
                Schedule.at = 1.5;
                until = Some 2.5;
                spec = Schedule.Partition { a = [ 0; 1 ]; b = [] };
              };
            ];
        }
      in
      let r = run ~bucket:0.25 config 4000.0 in
      check_healthy name r;
      (* No quorum of 3 exists on either side. Allow the first bucket for
         commits still in flight at the cut. *)
      let during =
        List.filter (fun (t, thr) -> t >= 1.75 && t < 2.5 && thr > 0.0)
          r.Runtime.series
      in
      Alcotest.(check (list (pair (float 0.0) (float 0.0))))
        (name ^ ": no commits during partition") [] during;
      let after =
        List.exists (fun (t, thr) -> t >= 2.5 && thr > 0.0) r.Runtime.series
      in
      Alcotest.(check bool) (name ^ ": commits resume after heal") true after)
    [ Config.Hotstuff; Config.Twochain; Config.Streamlet ]

let test_crash_recovery_catches_up () =
  let config =
    {
      base with
      runtime = 3.0;
      faults =
        [
          { Schedule.at = 0.5; until = Some 1.5; spec = Schedule.Crash { node = 3 } };
        ];
    }
  in
  let r = run config 4000.0 in
  check_healthy "crash-recovery" r;
  Alcotest.(check bool) "cluster kept committing" true
    (r.Runtime.summary.Bamboo.Metrics.committed_txs > 0);
  (* The recovered replica must rejoin consensus: its view returns to the
     cluster's and chain-sync brings its committed chain near the tip. *)
  let max_view = Array.fold_left max 0 r.Runtime.final_views in
  Alcotest.(check bool) "recovered view caught up" true
    (max_view - r.Runtime.final_views.(3) <= 1);
  let max_height = Array.fold_left max 0 r.Runtime.committed_heights in
  Alcotest.(check bool) "recovered chain caught up" true
    (max_height - r.Runtime.committed_heights.(3) <= 3)

let test_cpu_slow_fault () =
  let slowed =
    {
      base with
      faults =
        [
          {
            Schedule.at = 0.0;
            until = None;
            spec = Schedule.Cpu_slow { node = 0; factor = 5.0 };
          };
        ];
    }
  in
  let r_slow = run slowed 4000.0 and r_base = run base 4000.0 in
  check_healthy "cpu slow" r_slow;
  Alcotest.(check bool) "commits" true
    (r_slow.Runtime.summary.Bamboo.Metrics.committed_txs > 0);
  (* 5x slower CPU work shows up as higher modelled utilization. *)
  Alcotest.(check bool) "slowed node burns more cpu" true
    (r_slow.Runtime.cpu_utilization.(0) > 2.0 *. r_base.Runtime.cpu_utilization.(0))

let test_clock_skew_fault () =
  let config =
    {
      base with
      faults =
        [
          {
            Schedule.at = 0.0;
            until = Some 1.0;
            spec = Schedule.Clock_skew { node = 1; factor = 2.0 };
          };
        ];
    }
  in
  let r = run config 4000.0 in
  check_healthy "clock skew" r;
  Alcotest.(check bool) "commits" true
    (r.Runtime.summary.Bamboo.Metrics.committed_txs > 0)

let test_leader_delay_degrades () =
  let delayed =
    {
      base with
      faults =
        [
          {
            Schedule.at = 0.0;
            until = None;
            spec =
              Schedule.Link_delay
                {
                  src = Schedule.Nodes [ 0 ];
                  dst = Schedule.All;
                  mu = 0.150;
                  sigma = 0.0;
                };
          };
        ];
    }
  in
  let r_del = run delayed 4000.0 and r_base = run base 4000.0 in
  check_healthy "leader delay" r_del;
  (* 150 ms > the 100 ms view timeout: whenever the slow replica must act
     (lead, or relay the votes it aggregated), the view expires. View
     progress collapses to the timeout cadence and latency balloons,
     while consistency holds throughout. *)
  Alcotest.(check bool) "latency degrades" true
    (r_del.Runtime.summary.Bamboo.Metrics.latency_mean
    > 3.0 *. r_base.Runtime.summary.Bamboo.Metrics.latency_mean);
  Alcotest.(check bool) "view rate collapses" true
    (r_del.Runtime.summary.Bamboo.Metrics.views * 3
    < r_base.Runtime.summary.Bamboo.Metrics.views);
  Alcotest.(check bool) "still live" true
    (r_del.Runtime.summary.Bamboo.Metrics.committed_txs > 0)

let test_fault_trace_events () =
  (* Large enough that a full run cannot evict the two fault events. *)
  let trace = Trace.ring ~capacity:1_000_000 in
  let config =
    {
      base with
      faults =
        [
          {
            Schedule.at = 0.5;
            until = Some 1.0;
            spec = Schedule.Partition { a = [ 0; 1 ]; b = [ 2; 3 ] };
          };
        ];
    }
  in
  let _r =
    Runtime.run ~config ~workload:(Workload.open_loop ~rate:2000.0 ()) ~trace ()
  in
  let events = Trace.events trace in
  let find kind =
    List.find_opt (fun (e : Trace.event) -> e.kind = kind) events
  in
  (match find Trace.Fault_inject with
  | Some e ->
      Alcotest.(check (float 1e-9)) "inject at 0.5" 0.5 e.ts;
      Alcotest.(check int) "cluster-level" (-1) e.node;
      Alcotest.(check bool) "kind tagged" true
        (List.assoc_opt "fault" e.args = Some (Json.String "partition"))
  | None -> Alcotest.fail "no Fault_inject event");
  match find Trace.Fault_heal with
  | Some e -> Alcotest.(check (float 1e-9)) "heal at 1.0" 1.0 e.ts
  | None -> Alcotest.fail "no Fault_heal event"

let suite =
  [
    Alcotest.test_case "schedule JSON round trip" `Quick
      test_schedule_json_round_trip;
    Alcotest.test_case "schedule JSON units" `Quick test_schedule_json_units;
    Alcotest.test_case "schedule JSON strictness" `Quick
      test_schedule_json_strict;
    Alcotest.test_case "schedule JSON error messages" `Quick
      test_schedule_json_error_messages;
    Alcotest.test_case "schedule validation" `Quick test_schedule_validate;
    Alcotest.test_case "config faults section" `Quick test_config_faults_section;
    Alcotest.test_case "inert schedule bit-identical" `Quick
      test_inert_schedule_bit_identical;
    Alcotest.test_case "partition heal liveness" `Quick
      test_partition_heal_liveness;
    Alcotest.test_case "crash recovery catches up" `Quick
      test_crash_recovery_catches_up;
    Alcotest.test_case "cpu slowdown" `Quick test_cpu_slow_fault;
    Alcotest.test_case "clock skew" `Quick test_clock_skew_fault;
    Alcotest.test_case "targeted leader delay" `Quick test_leader_delay_degrades;
    Alcotest.test_case "fault trace events" `Quick test_fault_trace_events;
  ]
