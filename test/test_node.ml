(* Node engine plumbing, driven over a synchronous in-memory network: every
   Send/Broadcast is delivered immediately in FIFO order, timers are held
   in a list and fired manually. This pins down the engine's protocol
   behaviour deterministically, independent of the simulator. *)

open Bamboo_types
module Node = Bamboo.Node
module Config = Bamboo.Config

type net = {
  nodes : Node.t array;
  queue : (int * Message.t) Queue.t; (* (destination, message) *)
  mutable timers : (int * Node.timer * float) list; (* (node, timer, after) *)
  mutable committed : (int * Block.t) list; (* (node, block) *)
  mutable forked : (int * Block.t) list;
  mutable proposed : Block.t list;
}

let make_net ?(config = Config.default) () =
  let registry = Bamboo_crypto.Sig.setup ~n:config.Config.n ~master:"t" in
  {
    nodes =
      Array.init config.Config.n (fun self ->
          Node.create ~config ~self ~registry ());
    queue = Queue.create ();
    timers = [];
    committed = [];
    forked = [];
    proposed = [];
  }

let absorb net src outs =
  let n = Array.length net.nodes in
  List.iter
    (fun out ->
      match out with
      | Node.Send { dst; msg } -> Queue.push (dst, msg) net.queue
      | Node.Broadcast msg ->
          for dst = 0 to n - 1 do
            if dst <> src then Queue.push (dst, msg) net.queue
          done
      | Node.Set_timer { timer; after } ->
          net.timers <- (src, timer, after) :: net.timers
      | Node.Committed { blocks; _ } ->
          net.committed <- net.committed @ List.map (fun b -> (src, b)) blocks
      | Node.Forked blocks ->
          net.forked <- net.forked @ List.map (fun b -> (src, b)) blocks
      | Node.Proposed b -> net.proposed <- net.proposed @ [ b ]
      | Node.Voted _ -> ()
      | Node.Qc_formed _ | Node.Entered_view _ -> ())
    outs

let start net =
  Array.iteri (fun i node -> absorb net i (Node.start node)) net.nodes

(* Deliver queued messages in FIFO order. With instant delivery an idle
   chained-BFT cluster self-perpetuates (each QC triggers the next
   proposal), so delivery is bounded rather than run to quiescence. *)
let settle ?(budget = 20_000) net =
  let budget = ref budget in
  while (not (Queue.is_empty net.queue)) && !budget > 0 do
    decr budget;
    let dst, msg = Queue.pop net.queue in
    absorb net dst (Node.handle net.nodes.(dst) (Receive msg))
  done

(* Fire all pending view timers once (simulating every timer expiring). *)
let fire_timers net =
  let pending = List.rev net.timers in
  net.timers <- [];
  List.iter
    (fun (src, timer, _) ->
      absorb net src (Node.handle net.nodes.(src) (Timer timer)))
    pending;
  settle net

let submit net ~replica txs =
  absorb net replica (Node.handle net.nodes.(replica) (Submit txs));
  settle net

let committed_of net i =
  List.filter_map (fun (n, b) -> if n = i then Some b else None) net.committed

(* --- tests --- *)

let test_start_leader_proposes () =
  let net = make_net () in
  start net;
  settle net;
  (* Leader of view 1 is replica 1 (rotation); one proposal expected, and
     with instant delivery the pipeline races ahead: every node ends in
     the same view. *)
  Alcotest.(check bool) "someone proposed" true (List.length net.proposed >= 1);
  (* Delivery was cut mid-cascade, so nodes may straddle a view boundary,
     but never more. *)
  let views = Array.map Node.current_view net.nodes in
  let lo = Array.fold_left min max_int views in
  let hi = Array.fold_left max 0 views in
  Alcotest.(check bool) "views within one of each other" true (hi - lo <= 1);
  Alcotest.(check bool) "made progress" true (lo > 10)

let test_empty_blocks_commit () =
  let net = make_net () in
  start net;
  settle net;
  (* With no load the chain still grows (empty blocks) and commits: drive a
     few rounds by settling — instant delivery means proposals cascade
     until... they self-perpetuate, so commits appear without timers. *)
  Alcotest.(check bool) "commits happened" true (List.length net.committed > 0)

let test_committed_prefix_consistency () =
  let net = make_net () in
  start net;
  settle net;
  submit net ~replica:0 (Helpers.txs 10);
  settle net;
  let f0 = Node.forest net.nodes.(0) in
  let h0 = Bamboo_forest.Forest.committed_height f0 in
  Array.iteri
    (fun _ node ->
      let f = Node.forest node in
      let h = min h0 (Bamboo_forest.Forest.committed_height f) in
      for height = 0 to h do
        match
          ( Bamboo_forest.Forest.committed_at f0 height,
            Bamboo_forest.Forest.committed_at f height )
        with
        | Some a, Some b ->
            Alcotest.(check bool) "same block at height" true (Block.equal a b)
        | _ -> Alcotest.fail "missing committed block"
      done)
    net.nodes

let test_txs_flow_into_blocks () =
  let net = make_net () in
  start net;
  settle net;
  let txs = Helpers.txs ~client:5 7 in
  submit net ~replica:2 txs;
  (* Keep the pipeline moving until the txs commit. *)
  let rec drive n =
    if n = 0 then Alcotest.fail "txs never committed"
    else begin
      settle net;
      let all_committed_txs =
        List.concat_map (fun (_, (b : Block.t)) -> b.txs) net.committed
      in
      if
        List.for_all
          (fun (t : Tx.t) -> List.exists (Tx.equal t) all_committed_txs)
          txs
      then ()
      else begin
        fire_timers net;
        drive (n - 1)
      end
    end
  in
  drive 20

let test_no_safety_violation () =
  let net = make_net () in
  start net;
  settle net;
  submit net ~replica:1 (Helpers.txs 5);
  fire_timers net;
  settle net;
  Array.iter
    (fun node ->
      Alcotest.(check bool) "no violation" false (Node.safety_violation node))
    net.nodes

let test_hotstuff_bi_is_three_views () =
  (* In the happy path a block commits exactly when the QC two views later
     forms: trigger_view - view + 1 = 3. Checked via commit order: block
     at height h commits when height h+2 certifies. *)
  let net = make_net () in
  start net;
  settle net;
  let c0 = committed_of net 0 in
  Alcotest.(check bool) "some commits" true (List.length c0 > 2);
  List.iteri
    (fun i (b : Block.t) ->
      Alcotest.(check int) "committed in height order" (i + 1) b.height)
    c0

let test_silent_leader_stalls_until_timeout () =
  let config = { Config.default with byz_no = 1; strategy = Config.Silence } in
  (* Static leader 0 is Byzantine-silent: nothing can ever be proposed. *)
  let config = { config with election = Config.Static 0 } in
  let net = make_net ~config () in
  start net;
  settle net;
  Alcotest.(check int) "no proposals" 0 (List.length net.proposed);
  (* All nodes time out of view 1; the TC advances everyone to view 2. *)
  fire_timers net;
  Array.iter
    (fun node -> Alcotest.(check int) "advanced via TC" 2 (Node.current_view node))
    net.nodes

let test_rejoin_after_timeout_rotation () =
  let config =
    { Config.default with byz_no = 1; strategy = Config.Silence }
  in
  let net = make_net ~config () in
  start net;
  settle net;
  (* Rotation: view 1 leader is replica 1 (honest) so progress happens
     immediately; replica 0's silent views only delay, never halt. *)
  fire_timers net;
  settle net;
  fire_timers net;
  settle net;
  Alcotest.(check bool) "chain grows despite silent replica" true
    (List.length net.committed > 0);
  Array.iter
    (fun node ->
      Alcotest.(check bool) "no violation" false (Node.safety_violation node))
    net.nodes

let test_out_of_order_proposal_buffered () =
  let config = Config.default in
  let registry = Bamboo_crypto.Sig.setup ~n:4 ~master:"t" in
  let node = Node.create ~config ~self:3 ~registry () in
  ignore (Node.start node);
  let reg = registry in
  let b1 = Helpers.child ~reg ~view:1 ~proposer:1 Block.genesis in
  let b2 = Helpers.child ~reg ~view:2 ~proposer:2 b1 in
  (* Deliver the child first: parent missing, must be buffered not lost. *)
  ignore (Node.handle node (Receive (Message.Proposal { block = b2; tc = None })));
  Alcotest.(check bool) "b2 not yet known" false
    (Bamboo_forest.Forest.mem (Node.forest node) b2.hash);
  let outs =
    Node.handle node (Receive (Message.Proposal { block = b1; tc = None }))
  in
  Alcotest.(check bool) "b1 known" true
    (Bamboo_forest.Forest.mem (Node.forest node) b1.hash);
  Alcotest.(check bool) "b2 unblocked" true
    (Bamboo_forest.Forest.mem (Node.forest node) b2.hash);
  (* The node voted for both blocks as they became valid: b1's vote goes to
     the leader of view 2, b2's vote targets this node itself (leader of
     view 3) and is absorbed internally. *)
  let voted =
    List.filter (function Node.Voted _ -> true | _ -> false) outs
  in
  Alcotest.(check int) "two votes cast" 2 (List.length voted);
  let sent =
    List.filter
      (function Node.Send { msg = Message.Vote _; _ } -> true | _ -> false)
      outs
  in
  Alcotest.(check int) "one vote on the wire" 1 (List.length sent)

let test_wrong_leader_proposal_rejected () =
  let config = Config.default in
  let registry = Bamboo_crypto.Sig.setup ~n:4 ~master:"t" in
  let node = Node.create ~config ~self:3 ~registry () in
  ignore (Node.start node);
  (* view 1's leader under rotation is replica 1; proposer 2 is invalid. *)
  let bad = Helpers.child ~reg:registry ~view:1 ~proposer:2 Block.genesis in
  ignore (Node.handle node (Receive (Message.Proposal { block = bad; tc = None })));
  Alcotest.(check bool) "rejected" false
    (Bamboo_forest.Forest.mem (Node.forest node) bad.hash)

let test_submit_and_rejection_accounting () =
  let config = { Config.default with memsize = 5 } in
  let registry = Bamboo_crypto.Sig.setup ~n:4 ~master:"t" in
  let node = Node.create ~config ~self:0 ~registry () in
  ignore (Node.start node);
  ignore (Node.handle node (Submit (Helpers.txs 8)));
  Alcotest.(check int) "pool capped" 5 (Node.mempool_size node);
  Alcotest.(check int) "rejections counted" 3 (Node.rejected_txs node)

let test_introspection () =
  let config = { Config.default with byz_no = 1; strategy = Config.Silence } in
  let registry = Bamboo_crypto.Sig.setup ~n:4 ~master:"t" in
  let byz = Node.create ~config ~self:0 ~registry () in
  let honest = Node.create ~config ~self:1 ~registry () in
  Alcotest.(check bool) "byzantine flag" true (Node.is_byzantine byz);
  Alcotest.(check bool) "honest flag" false (Node.is_byzantine honest);
  Alcotest.(check string) "name" "hotstuff+silence" (Node.protocol_name byz);
  Alcotest.(check int) "self" 1 (Node.self honest);
  Alcotest.(check int) "view" 1 (Node.current_view honest);
  Alcotest.(check int) "committed" 0 (Node.committed_count honest);
  Alcotest.(check int) "initial hQC" 0 (Node.high_qc honest).Qc.view;
  Alcotest.(check bool) "no lock" true (Node.locked honest = None)

let test_streamlet_cluster_progress () =
  let config = { Config.default with protocol = Config.Streamlet } in
  let net = make_net ~config () in
  start net;
  settle net;
  submit net ~replica:0 (Helpers.txs 5);
  settle net;
  Alcotest.(check bool) "streamlet commits" true (List.length net.committed > 0);
  Array.iter
    (fun node ->
      Alcotest.(check bool) "no violation" false (Node.safety_violation node))
    net.nodes

let test_block_sync_request_and_reply () =
  let registry = Bamboo_crypto.Sig.setup ~n:4 ~master:"t" in
  let node = Node.create ~config:Config.default ~self:3 ~registry () in
  ignore (Node.start node);
  let b1 = Helpers.child ~reg:registry ~view:1 ~proposer:1 Block.genesis in
  let b2 = Helpers.child ~reg:registry ~view:2 ~proposer:2 b1 in
  (* Deliver only the child: the node must ask b2's proposer for b1. *)
  let outs =
    Node.handle node (Receive (Message.Proposal { block = b2; tc = None }))
  in
  let requests =
    List.filter_map
      (function
        | Node.Send { dst; msg = Message.Request_block { hash; requester } } ->
            Some (dst, hash, requester)
        | _ -> None)
      outs
  in
  Alcotest.(check int) "one request" 1 (List.length requests);
  (match requests with
  | [ (dst, hash, requester) ] ->
      (* The justify QC names b1 before the forest sees the missing
         parent, so the fetch targets one of the QC's voters. *)
      Alcotest.(check int) "asks a certifying voter" 0 dst;
      Alcotest.(check string) "for the missing parent" b1.hash hash;
      Alcotest.(check int) "identifies itself" 3 requester
  | _ -> assert false);
  (* Re-delivering another child of the same parent must not re-request. *)
  let b2' = Helpers.child ~reg:registry ~view:3 ~proposer:3 b1 in
  let outs =
    Node.handle node (Receive (Message.Proposal { block = b2'; tc = None }))
  in
  Alcotest.(check int) "no duplicate request" 0
    (List.length
       (List.filter
          (function
            | Node.Send { msg = Message.Request_block _; _ } -> true
            | _ -> false)
          outs));
  (* A node holding the block answers a request with the proposal. *)
  let holder = Node.create ~config:Config.default ~self:1 ~registry () in
  ignore (Node.start holder);
  ignore (Node.handle holder (Receive (Message.Proposal { block = b1; tc = None })));
  let outs =
    Node.handle holder
      (Receive (Message.Request_block { hash = b1.hash; requester = 3 }))
  in
  (match outs with
  | [ Node.Send { dst = 3; msg = Message.Proposal { block; _ } } ] ->
      Alcotest.(check string) "re-sends the block" b1.hash block.Block.hash
  | _ -> Alcotest.fail "expected a proposal reply");
  (* Unknown hashes and bogus requesters are ignored silently. *)
  Alcotest.(check int) "unknown hash ignored" 0
    (List.length
       (Node.handle holder
          (Receive
             (Message.Request_block { hash = String.make 32 'z'; requester = 3 }))));
  Alcotest.(check int) "bad requester ignored" 0
    (List.length
       (Node.handle holder
          (Receive (Message.Request_block { hash = b1.hash; requester = 9 }))))

let test_blind_qc_defers_proposal () =
  (* Votes are small and can overtake the block broadcast: if the next
     leader assembles a QC for a block it has not received, it must defer
     its proposal until the block arrives instead of forking from a stale
     parent. *)
  let registry = Bamboo_crypto.Sig.setup ~n:4 ~master:"t" in
  let node = Node.create ~config:Config.default ~self:2 ~registry () in
  ignore (Node.start node);
  (* replica 2 leads view 2; feed it a vote quorum for an unseen view-1
     block. *)
  let b1 = Helpers.child ~reg:registry ~view:1 ~proposer:1 Block.genesis in
  let outs =
    List.concat_map
      (fun voter ->
        Node.handle node
          (Receive (Message.Vote (Helpers.vote_for registry ~voter b1))))
      [ 0; 1; 3 ]
  in
  Alcotest.(check int) "advanced to view 2 on the QC" 2 (Node.current_view node);
  let proposals =
    List.filter (function Node.Broadcast (Message.Proposal _) -> true | _ -> false) outs
  in
  Alcotest.(check int) "no blind proposal" 0 (List.length proposals);
  (* The block arrives late: now the proposal fires, extending it. *)
  let outs =
    Node.handle node (Receive (Message.Proposal { block = b1; tc = None }))
  in
  let proposal_parent =
    List.find_map
      (function
        | Node.Broadcast (Message.Proposal { block; _ }) -> Some block.Block.parent
        | _ -> None)
      outs
  in
  Alcotest.(check (option string)) "proposes on the certified block"
    (Some b1.hash) proposal_parent

let test_invalid_create () =
  let registry = Bamboo_crypto.Sig.setup ~n:4 ~master:"t" in
  (match Node.create ~config:Config.default ~self:4 ~registry () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self out of range accepted");
  let bad = { Config.default with n = 0 } in
  match Node.create ~config:bad ~self:0 ~registry () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid config accepted"

(* The QC-verification cache must key on the certificate's full content:
   a verified QC is a cache hit, while any tampered variant — same view,
   different block or borrowed signatures — misses the cache and is
   verified (and rejected) from scratch. *)
let test_qc_cache_rejects_tampered () =
  let registry = Helpers.registry () in
  let node = Node.create ~config:Config.default ~self:0 ~registry () in
  let b = Helpers.child ~reg:registry ~view:1 Block.genesis in
  let qc = Helpers.qc_for registry b in
  Alcotest.(check bool) "valid QC verifies" true (Node.verify_qc node qc);
  Alcotest.(check bool) "cached QC verifies" true (Node.verify_qc node qc);
  let other = Helpers.child ~reg:registry ~proposer:1 ~view:1 Block.genesis in
  let forged = { qc with Bamboo_types.Qc.block = other.Block.hash } in
  Alcotest.(check bool) "same view, swapped block rejected" false
    (Node.verify_qc node forged);
  let borrowed =
    { (Helpers.qc_for registry other) with Bamboo_types.Qc.sigs = qc.sigs }
  in
  Alcotest.(check bool) "borrowed signatures rejected" false
    (Node.verify_qc node borrowed);
  Alcotest.(check bool) "original still verifies" true (Node.verify_qc node qc);
  Alcotest.(check bool) "genesis always verifies" true
    (Node.verify_qc node (Qc.genesis ~block:Block.genesis_hash));
  let unchecked =
    Node.create ~config:Config.default ~self:1 ~registry ~verify_sigs:false ()
  in
  Alcotest.(check bool) "verification disabled accepts" true
    (Node.verify_qc unchecked forged)

let suite =
  [
    Alcotest.test_case "start: leader proposes" `Quick test_start_leader_proposes;
    Alcotest.test_case "empty blocks commit" `Quick test_empty_blocks_commit;
    Alcotest.test_case "committed prefix consistency" `Quick
      test_committed_prefix_consistency;
    Alcotest.test_case "txs flow into blocks" `Quick test_txs_flow_into_blocks;
    Alcotest.test_case "no safety violation" `Quick test_no_safety_violation;
    Alcotest.test_case "commit order by height" `Quick test_hotstuff_bi_is_three_views;
    Alcotest.test_case "silent static leader stalls" `Quick
      test_silent_leader_stalls_until_timeout;
    Alcotest.test_case "progress despite silent replica" `Quick
      test_rejoin_after_timeout_rotation;
    Alcotest.test_case "out-of-order proposals buffered" `Quick
      test_out_of_order_proposal_buffered;
    Alcotest.test_case "wrong leader rejected" `Quick
      test_wrong_leader_proposal_rejected;
    Alcotest.test_case "mempool rejection accounting" `Quick
      test_submit_and_rejection_accounting;
    Alcotest.test_case "introspection" `Quick test_introspection;
    Alcotest.test_case "streamlet cluster" `Quick test_streamlet_cluster_progress;
    Alcotest.test_case "block sync request/reply" `Quick
      test_block_sync_request_and_reply;
    Alcotest.test_case "blind QC defers proposal" `Quick
      test_blind_qc_defers_proposal;
    Alcotest.test_case "invalid create" `Quick test_invalid_create;
    Alcotest.test_case "QC cache rejects tampered certificates" `Quick
      test_qc_cache_rejects_tampered;
  ]
