module Sim = Bamboo_sim.Sim
module Machine = Bamboo_sim.Machine
module Netmodel = Bamboo_sim.Netmodel
module Rng = Bamboo_util.Rng

let test_event_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:3.0 (fun () -> log := "c" :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := "a" :: !log);
  Sim.schedule sim ~delay:2.0 (fun () -> log := "b" :: !log);
  Sim.run_to_completion sim;
  Alcotest.(check (list string)) "timestamp order" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.schedule sim ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Sim.run_to_completion sim;
  Alcotest.(check (list int)) "FIFO at equal timestamps" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_clock_advances () =
  let sim = Sim.create () in
  let seen = ref 0.0 in
  Sim.schedule sim ~delay:2.5 (fun () -> seen := Sim.now sim);
  Sim.run_to_completion sim;
  Alcotest.(check (float 1e-12)) "clock at event" 2.5 !seen

let test_nested_scheduling () =
  let sim = Sim.create () in
  let times = ref [] in
  Sim.schedule sim ~delay:1.0 (fun () ->
      times := Sim.now sim :: !times;
      Sim.schedule sim ~delay:1.0 (fun () -> times := Sim.now sim :: !times));
  Sim.run_to_completion sim;
  Alcotest.(check (list (float 1e-12))) "chained" [ 1.0; 2.0 ] (List.rev !times)

let test_run_until_horizon () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Sim.schedule sim ~delay:d (fun () -> fired := d :: !fired))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Sim.run_until sim 2.5;
  Alcotest.(check (list (float 0.0))) "only before horizon" [ 1.0; 2.0 ]
    (List.rev !fired);
  Alcotest.(check (float 1e-12)) "clock at horizon" 2.5 (Sim.now sim);
  Alcotest.(check int) "pending" 2 (Sim.pending sim);
  Sim.run_until sim 10.0;
  Alcotest.(check int) "drained" 0 (Sim.pending sim)

let test_negative_delay_clamped () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:1.0 (fun () ->
      Sim.schedule sim ~delay:(-5.0) (fun () ->
          Alcotest.(check (float 1e-12)) "clamped to now" 1.0 (Sim.now sim)));
  Sim.run_to_completion sim

let test_event_budget () =
  let sim = Sim.create () in
  let rec forever () = Sim.schedule sim ~delay:0.001 forever in
  forever ();
  match Sim.run_to_completion ~max_events:100 sim with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected budget failure"

(* --- machine model --- *)

let test_cpu_fifo_queueing () =
  let sim = Sim.create () in
  let m = Machine.create ~sim ~bandwidth:1e9 in
  let finish = ref [] in
  Machine.cpu m ~duration:1.0 (fun () -> finish := ("a", Sim.now sim) :: !finish);
  Machine.cpu m ~duration:2.0 (fun () -> finish := ("b", Sim.now sim) :: !finish);
  Sim.run_to_completion sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "serialized service"
    [ ("a", 1.0); ("b", 3.0) ]
    (List.rev !finish);
  Alcotest.(check (float 1e-9)) "busy seconds" 3.0 (Machine.cpu_busy_seconds m)

let test_cpu_idle_gap () =
  let sim = Sim.create () in
  let m = Machine.create ~sim ~bandwidth:1e9 in
  let t = ref 0.0 in
  Machine.cpu m ~duration:1.0 (fun () -> ());
  Sim.schedule sim ~delay:5.0 (fun () ->
      Machine.cpu m ~duration:1.0 (fun () -> t := Sim.now sim));
  Sim.run_to_completion sim;
  Alcotest.(check (float 1e-9)) "restarts after idle" 6.0 !t

let test_nic_bandwidth () =
  let sim = Sim.create () in
  let m = Machine.create ~sim ~bandwidth:1000.0 in
  let t = ref 0.0 in
  Machine.nic_out m ~bytes:500 (fun () -> t := Sim.now sim);
  Sim.run_to_completion sim;
  Alcotest.(check (float 1e-9)) "bytes/bandwidth" 0.5 !t

let test_nic_in_out_independent () =
  let sim = Sim.create () in
  let m = Machine.create ~sim ~bandwidth:1000.0 in
  let finish = ref [] in
  Machine.nic_out m ~bytes:1000 (fun () -> finish := ("out", Sim.now sim) :: !finish);
  Machine.nic_in m ~bytes:1000 (fun () -> finish := ("in", Sim.now sim) :: !finish);
  Sim.run_to_completion sim;
  (* Full duplex: both complete at 1.0, not serialized to 2.0. *)
  List.iter
    (fun (_, t) -> Alcotest.(check (float 1e-9)) "parallel duplex" 1.0 t)
    !finish

let test_zero_duration_work () =
  let sim = Sim.create () in
  let m = Machine.create ~sim ~bandwidth:1e9 in
  let ran = ref false in
  Machine.cpu m ~duration:0.0 (fun () -> ran := true);
  Sim.run_to_completion sim;
  Alcotest.(check bool) "zero work completes" true !ran

let test_machine_invalid () =
  let sim = Sim.create () in
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Machine.create: bandwidth must be positive") (fun () ->
      ignore (Machine.create ~sim ~bandwidth:0.0));
  let m = Machine.create ~sim ~bandwidth:1.0 in
  Alcotest.check_raises "negative cpu"
    (Invalid_argument "Machine.cpu: negative duration") (fun () ->
      Machine.cpu m ~duration:(-1.0) (fun () -> ()))

(* --- network model --- *)

let test_netmodel_statistics () =
  let rng = Rng.create ~seed:3 in
  let net = Netmodel.create ~rng ~mu:0.005 ~sigma:0.001 () in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let d = Netmodel.one_way net ~now:0.0 ~src:0 ~dst:1 in
    if d < 0.0 then Alcotest.fail "negative delay";
    sum := !sum +. d
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near mu" true (Float.abs (mean -. 0.005) < 0.0002)

let test_netmodel_extra_delay () =
  let rng = Rng.create ~seed:4 in
  let net = Netmodel.create ~rng ~mu:0.001 ~sigma:0.0 () in
  Netmodel.set_extra_delay net ~mu:0.010 ~sigma:0.0;
  let d = Netmodel.one_way net ~now:0.0 ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "base + extra" 0.011 d;
  Alcotest.(check (float 1e-9)) "mean accessor" 0.011 (Netmodel.mean_one_way net)

let test_netmodel_fluctuation_window () =
  let rng = Rng.create ~seed:5 in
  let net = Netmodel.create ~rng ~mu:0.001 ~sigma:0.0 () in
  Netmodel.set_fluctuation net ~from_t:10.0 ~until_t:20.0 ~lo:0.05 ~hi:0.1;
  let inside = Netmodel.one_way net ~now:15.0 ~src:0 ~dst:1 in
  Alcotest.(check bool) "inside window" true (inside >= 0.05 && inside < 0.1);
  let before = Netmodel.one_way net ~now:5.0 ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "before window" 0.001 before;
  let after = Netmodel.one_way net ~now:25.0 ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "after window" 0.001 after;
  Netmodel.clear_fluctuation net;
  let cleared = Netmodel.one_way net ~now:15.0 ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "cleared" 0.001 cleared

let test_client_rtt () =
  let rng = Rng.create ~seed:6 in
  let net = Netmodel.create ~rng ~mu:0.002 ~sigma:0.0 () in
  Alcotest.(check (float 1e-9)) "2x one-way" 0.004 (Netmodel.client_rtt net ~now:0.0)

(* Satellite regression: the fluctuation window replaces only the *base*
   draw; the configured extra delay must still add on top. *)
let test_netmodel_fluctuation_composes_with_extra () =
  let rng = Rng.create ~seed:7 in
  let net = Netmodel.create ~rng ~mu:0.001 ~sigma:0.0 () in
  Netmodel.set_extra_delay net ~mu:0.010 ~sigma:0.0;
  Netmodel.set_fluctuation net ~from_t:0.0 ~until_t:10.0 ~lo:0.05 ~hi:0.05;
  (* lo = hi pins the uniform draw: window 50 ms + extra 10 ms. *)
  let d = Netmodel.one_way net ~now:5.0 ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "window + extra" 0.060 d;
  let outside = Netmodel.one_way net ~now:15.0 ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "base + extra outside" 0.011 outside

let test_netmodel_per_link_effects () =
  let rng = Rng.create ~seed:8 in
  let net = Netmodel.create ~rng ~mu:0.001 ~sigma:0.0 () in
  let erng = Rng.create ~seed:9 in
  let eff =
    Netmodel.effect ~rng:erng
      (Netmodel.Extra_delay { mu = 0.020; sigma = 0.0 })
  in
  Netmodel.attach net ~src:0 ~dst:1 eff;
  (* Only the ordered pair (0,1) is affected. *)
  Alcotest.(check (float 1e-9)) "faulted link" 0.021
    (Netmodel.one_way net ~now:0.0 ~src:0 ~dst:1);
  Alcotest.(check (float 1e-9)) "reverse direction clean" 0.001
    (Netmodel.one_way net ~now:0.0 ~src:1 ~dst:0);
  Alcotest.(check (float 1e-9)) "other link clean" 0.001
    (Netmodel.one_way net ~now:0.0 ~src:2 ~dst:3);
  Netmodel.detach net ~src:0 ~dst:1 eff;
  Alcotest.(check (float 1e-9)) "detached" 0.001
    (Netmodel.one_way net ~now:0.0 ~src:0 ~dst:1)

let test_netmodel_block_counted () =
  let rng = Rng.create ~seed:10 in
  let net = Netmodel.create ~rng ~mu:0.001 ~sigma:0.0 () in
  Alcotest.(check bool) "initially open" false (Netmodel.blocked net ~src:0 ~dst:1);
  Netmodel.block net ~src:0 ~dst:1;
  Netmodel.block net ~src:0 ~dst:1;
  Alcotest.(check bool) "blocked" true (Netmodel.blocked net ~src:0 ~dst:1);
  Netmodel.unblock net ~src:0 ~dst:1;
  Alcotest.(check bool) "still blocked under overlap" true
    (Netmodel.blocked net ~src:0 ~dst:1);
  Netmodel.unblock net ~src:0 ~dst:1;
  Alcotest.(check bool) "healed" false (Netmodel.blocked net ~src:0 ~dst:1);
  (* One-directional: the reverse link was never blocked. *)
  Netmodel.block net ~src:2 ~dst:3;
  Alcotest.(check bool) "reverse open" false (Netmodel.blocked net ~src:3 ~dst:2)

let test_netmodel_drop_and_duplicate () =
  let rng = Rng.create ~seed:11 in
  let net = Netmodel.create ~rng ~mu:0.001 ~sigma:0.0 () in
  let drop = Netmodel.effect ~rng:(Rng.create ~seed:12) (Netmodel.Drop 0.5) in
  Netmodel.attach net ~src:0 ~dst:1 drop;
  let drops = ref 0 in
  for _ = 1 to 1000 do
    if Netmodel.link_drops net ~src:0 ~dst:1 then incr drops
  done;
  Alcotest.(check bool) "drop rate near 0.5" true
    (!drops > 400 && !drops < 600);
  Alcotest.(check bool) "other links lossless" false
    (Netmodel.link_drops net ~src:1 ~dst:0);
  let dup =
    Netmodel.effect ~rng:(Rng.create ~seed:13) (Netmodel.Duplicate 0.5)
  in
  Netmodel.attach net ~src:2 ~dst:3 dup;
  let copies = ref 0 in
  for _ = 1 to 1000 do
    copies := !copies + List.length (Netmodel.link_copies net ~src:2 ~dst:3)
  done;
  Alcotest.(check bool) "duplicate rate near 0.5" true
    (!copies > 400 && !copies < 600)

(* Effects carry their own RNG stream: sampling them must not advance the
   model's base stream. *)
let test_netmodel_effects_preserve_base_stream () =
  let sample ~faulted =
    let rng = Rng.create ~seed:14 in
    let net = Netmodel.create ~rng ~mu:0.005 ~sigma:0.001 () in
    if faulted then begin
      let eff =
        Netmodel.effect ~rng:(Rng.create ~seed:15)
          (Netmodel.Spike { lo = 0.001; hi = 0.002 })
      in
      Netmodel.attach net ~src:0 ~dst:1 eff
    end;
    (* Draw on a *different* link, then on the faulted one. *)
    let clean = Netmodel.one_way net ~now:0.0 ~src:2 ~dst:3 in
    let faulted_draw = Netmodel.one_way net ~now:0.0 ~src:0 ~dst:1 in
    let clean2 = Netmodel.one_way net ~now:0.0 ~src:3 ~dst:2 in
    (clean, faulted_draw, clean2)
  in
  let c1, f1, c1' = sample ~faulted:false in
  let c2, f2, c2' = sample ~faulted:true in
  Alcotest.(check (float 0.0)) "clean link identical" c1 c2;
  Alcotest.(check (float 0.0)) "clean link after faulted draw identical" c1' c2';
  Alcotest.(check bool) "faulted link delayed" true (f2 > f1)

(* The monomorphic event queue against a sorted-list oracle: random delays
   drawn from a coarse grid (so equal timestamps are common) must fire in
   (time, insertion order), i.e. a stable sort by time. *)
let firing_order_prop =
  let open QCheck in
  Test.make ~name:"events fire in stable (time, insertion) order" ~count:300
    (list_of_size (Gen.int_range 0 120) (int_range 0 15))
    (fun grid ->
      let delays = List.map (fun g -> float_of_int g /. 4.0) grid in
      let sim = Sim.create () in
      let fired = ref [] in
      List.iteri
        (fun i d -> Sim.schedule sim ~delay:d (fun () -> fired := i :: !fired))
        delays;
      Sim.run_to_completion sim;
      let oracle =
        List.mapi (fun i d -> (i, d)) delays
        |> List.stable_sort (fun (_, a) (_, b) -> Float.compare a b)
        |> List.map fst
      in
      List.rev !fired = oracle)

let suite =
  [
    Alcotest.test_case "event ordering" `Quick test_event_ordering;
    QCheck_alcotest.to_alcotest firing_order_prop;
    Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "run_until horizon" `Quick test_run_until_horizon;
    Alcotest.test_case "negative delay clamped" `Quick test_negative_delay_clamped;
    Alcotest.test_case "event budget" `Quick test_event_budget;
    Alcotest.test_case "cpu FIFO" `Quick test_cpu_fifo_queueing;
    Alcotest.test_case "cpu idle gap" `Quick test_cpu_idle_gap;
    Alcotest.test_case "nic bandwidth" `Quick test_nic_bandwidth;
    Alcotest.test_case "nic duplex" `Quick test_nic_in_out_independent;
    Alcotest.test_case "zero-duration work" `Quick test_zero_duration_work;
    Alcotest.test_case "machine invalid args" `Quick test_machine_invalid;
    Alcotest.test_case "netmodel statistics" `Quick test_netmodel_statistics;
    Alcotest.test_case "netmodel extra delay" `Quick test_netmodel_extra_delay;
    Alcotest.test_case "netmodel fluctuation" `Quick test_netmodel_fluctuation_window;
    Alcotest.test_case "client rtt" `Quick test_client_rtt;
    Alcotest.test_case "fluctuation composes with extra delay" `Quick
      test_netmodel_fluctuation_composes_with_extra;
    Alcotest.test_case "per-link effects" `Quick test_netmodel_per_link_effects;
    Alcotest.test_case "counted blocking" `Quick test_netmodel_block_counted;
    Alcotest.test_case "link drop/duplicate" `Quick
      test_netmodel_drop_and_duplicate;
    Alcotest.test_case "effects preserve base stream" `Quick
      test_netmodel_effects_preserve_base_stream;
  ]
