(* The bamboo_check subsystem: invariant monitors over synthetic traces,
   the end-to-end oracle on healthy and combined-adversary runs, and the
   acceptance story for the fuzzer — a planted unsafe voting rule must be
   caught by the agreement monitor, shrunk to a tiny reproducer and
   confirmed by replay, deterministically at any job count. *)

module Config = Bamboo.Config
module Runtime = Bamboo.Runtime
module Workload = Bamboo.Workload
module Trace = Bamboo_obs.Trace
module Schedule = Bamboo_faults.Schedule
module Monitor = Bamboo_check.Monitor
module Scenario = Bamboo_check.Scenario
module Fuzz = Bamboo_check.Fuzz

let all_protocols =
  [ Config.Hotstuff; Config.Twochain; Config.Streamlet; Config.Fasthotstuff ]

let ev ?(node = 0) ?(view = 0) ?(span = 0) ?(ts = 0.0) kind =
  { Trace.seq = 0; ts; node; view; kind; span; args = [] }

let names vs =
  List.map
    (fun (v : Monitor.violation) -> Monitor.invariant_name v.Monitor.invariant)
    vs

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- certification uniqueness on synthetic traces --- *)

let test_cert_unique () =
  let ok =
    Monitor.check_certification
      [
        ev ~view:1 ~span:7 Trace.Qc_formed;
        ev ~view:1 ~span:7 Trace.Qc_formed;
        (* duplicate QC observations of the same block are fine *)
        ev ~view:2 ~span:9 Trace.Qc_formed;
        ev ~view:3 ~span:0 Trace.Qc_formed;
        (* span 0 = unknown block; ignored *)
        ev ~view:3 ~span:0 Trace.Qc_formed;
      ]
  in
  Alcotest.(check (list string)) "unique certs pass" [] (names ok);
  let bad =
    Monitor.check_certification
      [
        ev ~view:4 ~span:7 Trace.Qc_formed;
        ev ~view:4 ~span:8 Trace.Qc_formed;
      ]
  in
  Alcotest.(check (list string)) "conflicting certs flagged" [ "cert_unique" ]
    (names bad)

(* --- vote safety on synthetic traces --- *)

let test_vote_safety () =
  let ok =
    Monitor.check_vote_safety ~byz_no:1
      [
        ev ~node:1 ~view:1 Trace.Vote_sent;
        ev ~node:1 ~view:2 Trace.Vote_sent;
        ev ~node:1 ~view:3 Trace.Timeout_fired;
        ev ~node:1 ~view:4 Trace.Vote_sent;
        (* the Byzantine replica (id < byz_no) may double-vote freely *)
        ev ~node:0 ~view:5 Trace.Vote_sent;
        ev ~node:0 ~view:5 Trace.Vote_sent;
      ]
  in
  Alcotest.(check (list string)) "clean votes pass" [] (names ok);
  let double =
    Monitor.check_vote_safety ~byz_no:0
      [ ev ~node:2 ~view:7 Trace.Vote_sent; ev ~node:2 ~view:7 Trace.Vote_sent ]
  in
  Alcotest.(check (list string)) "double vote flagged" [ "vote_safety" ]
    (names double);
  let abandoned =
    Monitor.check_vote_safety ~byz_no:0
      [ ev ~node:2 ~view:7 Trace.Timeout_fired; ev ~node:2 ~view:7 Trace.Vote_sent ]
  in
  Alcotest.(check (list string)) "vote in abandoned view flagged"
    [ "vote_safety" ] (names abandoned)

(* --- agreement on synthetic ledgers --- *)

let block ?(txs = []) h hash =
  { Runtime.l_height = h; l_hash = hash; l_view = h; l_txs = txs }

let test_agreement () =
  let a = [| block 1 "aa"; block 2 "bb" |] in
  let matching = [| a; [| block 1 "aa" |] |] in
  Alcotest.(check (list string)) "prefix-compatible ledgers pass" []
    (names
       (Monitor.check_agreement ~ledgers:matching
          ~local_conflicts:[| false; false |]));
  let diverged = [| a; [| block 1 "aa"; block 2 "cc" |] |] in
  (match
     Monitor.check_agreement ~ledgers:diverged
       ~local_conflicts:[| false; false |]
   with
  | [ { Monitor.invariant = Monitor.Agreement; detail } ] ->
      Alcotest.(check bool) "detail names the height" true
        (contains detail "height 2")
  | vs -> Alcotest.failf "expected one agreement violation, got %d" (List.length vs));
  (* Same hashes but diverging committed tx order is still a violation. *)
  let t c s = { Bamboo_types.Tx.client = c; seq = s } in
  let diverging_txs =
    [| [| block ~txs:[ t 1 1; t 1 2 ] 1 "aa" |];
       [| block ~txs:[ t 1 2; t 1 1 ] 1 "aa" |] |]
  in
  Alcotest.(check (list string)) "tx order divergence flagged" [ "agreement" ]
    (names
       (Monitor.check_agreement ~ledgers:diverging_txs
          ~local_conflicts:[| false; false |]));
  (* A replica-local commit conflict is a violation on its own. *)
  Alcotest.(check (list string)) "local conflict flagged" [ "agreement" ]
    (names
       (Monitor.check_agreement
          ~ledgers:[| a; a |]
          ~local_conflicts:[| false; true |]))

(* --- bounded liveness gating and verdicts --- *)

let crash_recovery = { Schedule.at = 0.3; until = Some 0.5; spec = Schedule.Crash { node = 2 } }

let live_config faults =
  { Config.default with n = 4; timeout = 0.05; runtime = 2.0; faults }

let test_liveness () =
  let config = live_config [ crash_recovery ] in
  (match
     Monitor.check_liveness ~config [ ev ~ts:0.7 Trace.Commit ]
   with
  | Ok [] -> ()
  | Ok vs -> Alcotest.failf "expected pass, got %d violations" (List.length vs)
  | Error e -> Alcotest.failf "expected applicable, skipped: %s" e);
  (match Monitor.check_liveness ~config [ ev ~ts:0.2 Trace.Commit ] with
  | Ok [ { Monitor.invariant = Monitor.Liveness; _ } ] -> ()
  | Ok _ -> Alcotest.fail "commit before the heal must not satisfy liveness"
  | Error e -> Alcotest.failf "expected applicable, skipped: %s" e);
  (* A permanent partition makes the bound vacuous: skip, don't flag. *)
  let partitioned =
    live_config
      [ { Schedule.at = 0.3; until = None; spec = Schedule.Partition { a = [ 0 ]; b = [] } } ]
  in
  (match Monitor.check_liveness ~config:partitioned [] with
  | Error reason ->
      Alcotest.(check bool) "reason mentions the partition" true
        (contains reason "partition")
  | Ok _ -> Alcotest.fail "permanent partition must disable the bound");
  (* More than f permanently faulty likewise. *)
  let overloaded =
    {
      (live_config [ { crash_recovery with until = None } ]) with
      Config.byz_no = 1;
      strategy = Config.Silence;
    }
  in
  (match Monitor.check_liveness ~config:overloaded [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "byz + permanent crash > f must disable the bound")

(* --- combined adversaries stay safe and live --- *)

let run_combined name protocol ~strategy ~faults =
  let timeout = 0.05 in
  let config =
    {
      Config.default with
      protocol;
      n = 4;
      byz_no = 1;
      strategy;
      timeout;
      tc_adopt_qc = false;
      runtime = 1.8;
      warmup = 0.2;
      seed = 42;
      faults;
    }
  in
  (match Config.validate config with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: invalid config: %s" name e);
  let v =
    Fuzz.run_scenario { Scenario.label = name; rate = 800.0; config }
  in
  Alcotest.(check (list string)) (name ^ ": no violations") []
    (names v.Fuzz.report.Monitor.violations);
  Alcotest.(check bool) (name ^ ": liveness bound applied") true
    (not
       (List.exists
          (fun (i, _) -> i = Monitor.Liveness)
          v.Fuzz.report.Monitor.skipped))

(* Fork attacker while its own outbound links lag: the leader's forked
   proposals arrive late and honest locks must still prevent divergence. *)
let fork_with_leader_delay protocol =
  run_combined
    (Config.protocol_name protocol ^ "+fork+delay")
    protocol ~strategy:Config.Fork
    ~faults:
      [
        {
          Schedule.at = 0.3;
          until = Some 0.8;
          spec =
            Schedule.Link_delay
              { src = Schedule.Nodes [ 0 ]; dst = Schedule.All; mu = 0.02; sigma = 0.004 };
        };
      ]

(* Silent Byzantine leader plus an honest replica crash-recovering: during
   the overlap only 2 of 4 replicas are up, so progress stalls, but after
   the heal commits must resume within the view budget. *)
let silence_with_crash_recovery protocol =
  run_combined
    (Config.protocol_name protocol ^ "+silence+crash")
    protocol ~strategy:Config.Silence
    ~faults:[ { Schedule.at = 0.4; until = Some 0.8; spec = Schedule.Crash { node = 2 } } ]

let test_combined_adversaries () =
  List.iter
    (fun p ->
      fork_with_leader_delay p;
      silence_with_crash_recovery p)
    [ Config.Hotstuff; Config.Twochain; Config.Streamlet ]

(* --- the oracle sees nothing on a healthy generated scenario --- *)

let test_generated_scenarios_healthy () =
  List.iter
    (fun index ->
      let s = Scenario.generate ~root_seed:1 ~index ~protocols:all_protocols in
      let v = Fuzz.run_scenario s in
      Alcotest.(check (list string))
        (Scenario.describe s ^ ": clean")
        []
        (names v.Fuzz.report.Monitor.violations))
    [ 0; 5 ]

(* Attaching the monitoring trace must not perturb the simulation: the
   summary with a ring sink is identical to the one with the null trace. *)
let test_monitoring_is_inert () =
  let s = Scenario.generate ~root_seed:1 ~index:2 ~protocols:all_protocols in
  let run trace =
    Runtime.run ~config:s.Scenario.config
      ~workload:(Workload.open_loop ~rate:s.Scenario.rate ())
      ~trace ()
  in
  let observed = run (Trace.ring ~capacity:(1 lsl 20)) in
  let blind = run Trace.null in
  Alcotest.(check bool) "summaries identical" true
    (observed.Runtime.summary = blind.Runtime.summary);
  Alcotest.(check bool) "ledgers identical" true
    (observed.Runtime.ledgers = blind.Runtime.ledgers)

(* --- acceptance: planted unsafe voting rule caught, shrunk, replayed --- *)

(* (root_seed, index) pairs where the fuzzer catches the planted rule;
   found by scanning seeds with `check fuzz --plant-broken-voting`. *)
let known_failures = [ (5, 17); (7, 7); (11, 1); (12, 25) ]

let broken_verdict ~root_seed ~index =
  let s = Scenario.generate ~root_seed ~index ~protocols:all_protocols in
  Fuzz.run_scenario ~wrap:Fuzz.broken_voting_rule s

let test_broken_voting_caught_and_shrunk () =
  let v = broken_verdict ~root_seed:5 ~index:17 in
  Alcotest.(check bool) "planted rule violates agreement" true
    (List.exists
       (fun (viol : Monitor.violation) -> viol.Monitor.invariant = Monitor.Agreement)
       v.Fuzz.report.Monitor.violations);
  let m = Fuzz.shrink ~wrap:Fuzz.broken_voting_rule v in
  Alcotest.(check bool) "shrunk invariant is agreement" true
    (m.Fuzz.invariant = Monitor.Agreement);
  let shrunk_faults = List.length m.Fuzz.scenario.Scenario.config.Config.faults in
  Alcotest.(check bool)
    (Printf.sprintf "reproducer has <= 5 fault events (%d)" shrunk_faults)
    true (shrunk_faults <= 5);
  (* Replay: the minimized scenario re-runs to the same verdict, twice. *)
  let r1 = Fuzz.run_scenario ~wrap:Fuzz.broken_voting_rule m.Fuzz.scenario in
  let r2 = Fuzz.run_scenario ~wrap:Fuzz.broken_voting_rule m.Fuzz.scenario in
  Alcotest.(check bool) "replay verdict stable" true
    (r1.Fuzz.report = r2.Fuzz.report);
  Alcotest.(check bool) "replay still violates agreement" true
    (List.exists
       (fun (viol : Monitor.violation) -> viol.Monitor.invariant = Monitor.Agreement)
       r1.Fuzz.report.Monitor.violations);
  (* Without the planted rule the same scenario is safe. *)
  let honest = Fuzz.run_scenario m.Fuzz.scenario in
  Alcotest.(check bool) "honest replay has no agreement violation" true
    (not
       (List.exists
          (fun (viol : Monitor.violation) -> viol.Monitor.invariant = Monitor.Agreement)
          honest.Fuzz.report.Monitor.violations));
  (* The reproducer artifact round-trips. *)
  match Fuzz.artifact_of_json (Fuzz.artifact_to_json m) with
  | Ok (s, inv) ->
      Alcotest.(check bool) "artifact scenario round-trips" true
        (s = m.Fuzz.scenario);
      Alcotest.(check bool) "artifact invariant round-trips" true
        (inv = Monitor.Agreement)
  | Error e -> Alcotest.failf "artifact does not round-trip: %s" e

(* --- properties --- *)

(* Shrinking preserves the violated invariant and never grows the fault
   schedule, whatever failure the fuzzer starts from. *)
let shrink_preserves_invariant =
  QCheck.Test.make ~count:2 ~name:"shrink preserves the failing invariant"
    (QCheck.make (QCheck.Gen.oneofl known_failures))
    (fun (root_seed, index) ->
      let v = broken_verdict ~root_seed ~index in
      if not (Fuzz.failed v) then
        QCheck.Test.fail_reportf "seed %d index %d no longer fails" root_seed
          index;
      let target =
        (List.hd v.Fuzz.report.Monitor.violations).Monitor.invariant
      in
      let m = Fuzz.shrink ~wrap:Fuzz.broken_voting_rule v in
      let replay =
        Fuzz.run_scenario ~wrap:Fuzz.broken_voting_rule m.Fuzz.scenario
      in
      m.Fuzz.invariant = target
      && List.exists
           (fun (viol : Monitor.violation) -> viol.Monitor.invariant = target)
           replay.Fuzz.report.Monitor.violations
      && List.length m.Fuzz.scenario.Scenario.config.Config.faults
         <= List.length v.Fuzz.scenario.Scenario.config.Config.faults)

(* The fuzz verdict list is a pure function of (root_seed, budget,
   protocols): the job count must not leak into the results. *)
let fuzz_jobs_invariant =
  QCheck.Test.make ~count:2 ~name:"fuzz verdicts identical at jobs=1 and jobs=4"
    QCheck.(make Gen.(int_range 1 1000))
    (fun root_seed ->
      let run jobs =
        Fuzz.fuzz ~root_seed ~budget:3 ~jobs ~protocols:all_protocols ()
      in
      run 1 = run 4)

(* --- deployment-trace monitors (merged multi-process JSONL) --- *)

let dev ?(node = 0) ?(view = 0) ?(ts = 0.0) ?(args = []) kind =
  { Trace.seq = 0; ts; node; view; kind; span = 0; args }

let harg h = [ ("hash", Bamboo_util.Json.String h) ]

let test_check_trace_agreement () =
  let height h hash =
    ("height", Bamboo_util.Json.Int h) :: harg hash
  in
  (* two nodes agree at height 1 → clean *)
  let ok =
    [
      dev ~node:0 ~ts:1.0 ~args:(height 1 "aa") Trace.Commit;
      dev ~node:1 ~ts:1.1 ~args:(height 1 "aa") Trace.Commit;
    ]
  in
  Alcotest.(check bool) "agreeing commits pass" true
    (Monitor.pass (Monitor.check_trace ok));
  (* conflicting hashes at one height → agreement violation *)
  let bad =
    [
      dev ~node:0 ~ts:1.0 ~args:(height 1 "aa") Trace.Commit;
      dev ~node:1 ~ts:1.1 ~args:(height 1 "bb") Trace.Commit;
    ]
  in
  Alcotest.(check (list string))
    "conflict caught" [ "agreement" ]
    (names (Monitor.check_trace bad).Monitor.violations)

let test_check_trace_vote_safety_and_heal () =
  (* a vote for two different blocks in one view is a violation *)
  let double =
    [
      dev ~node:1 ~view:3 ~ts:1.0 ~args:(harg "aa") Trace.Vote_sent;
      dev ~node:1 ~view:3 ~ts:1.1 ~args:(harg "bb") Trace.Vote_sent;
    ]
  in
  Alcotest.(check (list string))
    "double vote caught" [ "vote_safety" ]
    (names (Monitor.check_trace double).Monitor.violations);
  (* re-sending the same vote is benign *)
  let resend =
    [
      dev ~node:1 ~view:3 ~ts:1.0 ~args:(harg "aa") Trace.Vote_sent;
      dev ~node:1 ~view:3 ~ts:1.1 ~args:(harg "aa") Trace.Vote_sent;
    ]
  in
  Alcotest.(check bool) "resend benign" true
    (Monitor.pass (Monitor.check_trace resend));
  (* a Fault_heal (process restart) resets the node's vote state: the
     recovered replica may re-vote across the restart boundary *)
  let healed =
    [
      dev ~node:1 ~view:3 ~ts:1.0 ~args:(harg "aa") Trace.Vote_sent;
      dev ~node:1 ~ts:2.0 Trace.Fault_heal;
      dev ~node:1 ~view:3 ~ts:3.0 ~args:(harg "bb") Trace.Vote_sent;
    ]
  in
  Alcotest.(check bool) "heal resets vote state" true
    (Monitor.pass (Monitor.check_trace healed))

let test_check_trace_liveness () =
  let commit ts =
    dev ~node:0 ~ts
      ~args:(("height", Bamboo_util.Json.Int 1) :: harg "aa")
      Trace.Commit
  in
  Alcotest.(check bool) "commit after deadline passes" true
    (Monitor.pass
       (Monitor.check_trace ~expect_commit_after:5.0 [ commit 6.0 ]));
  Alcotest.(check (list string))
    "no commit after deadline fails" [ "liveness" ]
    (names
       (Monitor.check_trace ~expect_commit_after:5.0 [ commit 4.0 ])
         .Monitor.violations)

let suite =
  [
    Alcotest.test_case "cert-unique monitor" `Quick test_cert_unique;
    Alcotest.test_case "vote-safety monitor" `Quick test_vote_safety;
    Alcotest.test_case "agreement monitor" `Quick test_agreement;
    Alcotest.test_case "liveness monitor" `Quick test_liveness;
    Alcotest.test_case "deployment trace agreement" `Quick
      test_check_trace_agreement;
    Alcotest.test_case "deployment trace vote safety + heal" `Quick
      test_check_trace_vote_safety_and_heal;
    Alcotest.test_case "deployment trace liveness" `Quick
      test_check_trace_liveness;
    Alcotest.test_case "combined adversaries" `Slow test_combined_adversaries;
    Alcotest.test_case "generated scenarios healthy" `Slow
      test_generated_scenarios_healthy;
    Alcotest.test_case "monitoring is inert" `Slow test_monitoring_is_inert;
    Alcotest.test_case "broken voting rule caught, shrunk, replayed" `Slow
      test_broken_voting_caught_and_shrunk;
    QCheck_alcotest.to_alcotest shrink_preserves_invariant;
    QCheck_alcotest.to_alcotest fuzz_jobs_invariant;
  ]
