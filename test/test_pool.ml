module Pool = Bamboo_util.Pool

let test_matches_list_map () =
  let xs = List.init 250 (fun i -> i) in
  let f x = (x * 7) mod 13 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d equals List.map" jobs)
        (List.map f xs)
        (Pool.map ~jobs f xs))
    [ 1; 2; 4; 8 ]

let test_order_preserved_under_skew () =
  (* Make late submissions finish first: results must still come back in
     submission order. *)
  let xs = List.init 40 (fun i -> i) in
  let f x =
    if x < 4 then begin
      (* Busy-work so the first items are the slowest. *)
      let acc = ref 0 in
      for i = 0 to 2_000_000 do
        acc := !acc + (i mod 7)
      done;
      ignore !acc
    end;
    x * 2
  in
  Alcotest.(check (list int))
    "submission order" (List.map (fun x -> x * 2) xs)
    (Pool.map ~jobs:4 f xs)

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ]
    (Pool.map ~jobs:4 (fun x -> x + 2) [ 7 ])

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match
        Pool.map ~jobs (fun x -> if x = 5 then raise (Boom x) else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "expected exception"
      | exception Boom 5 -> ())
    [ 1; 4 ]

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Pool.map: jobs must be >= 1") (fun () ->
      ignore (Pool.map ~jobs:0 (fun x -> x) [ 1 ]))

let test_recommended_positive () =
  Alcotest.(check bool) ">= 1" true (Pool.recommended_jobs () >= 1)

let suite =
  [
    Alcotest.test_case "matches List.map at any job count" `Quick
      test_matches_list_map;
    Alcotest.test_case "order preserved under skew" `Quick
      test_order_preserved_under_skew;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "invalid jobs rejected" `Quick test_invalid_jobs;
    Alcotest.test_case "recommended_jobs positive" `Quick
      test_recommended_positive;
  ]
