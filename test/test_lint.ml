(* The linter's own test suite: per-rule positive / negative / suppressed
   fixtures (in-memory sources, so scope-sensitive paths are easy to
   fake), the suppression bookkeeping (orphans, unknown ids, malformed
   payloads), exit codes, trace-kind extraction, and a self-check that
   the repository's lib/ tree lints clean. *)

module E = Lint_engine
module R = Lint_rules

let lint ?(path = "lib/sim/fx.ml") src =
  E.lint_sources ~rules:R.all [ (path, src) ]

let has rule fs =
  List.exists (fun (f : E.finding) -> String.equal f.E.rule rule) fs

let count rule fs =
  List.length
    (List.filter (fun (f : E.finding) -> String.equal f.E.rule rule) fs)

let check_fires name rule fs = Alcotest.(check bool) name true (has rule fs)

let check_silent name rule fs =
  Alcotest.(check bool) name false (has rule fs)

(* --- rule 1: no-ambient-nondeterminism --- *)

let test_ambient_pos () =
  let fs = lint ~path:"lib/core/fx.ml" "let now () = Unix.gettimeofday ()" in
  check_fires "gettimeofday" "no-ambient-nondeterminism" fs;
  let fs = lint ~path:"lib/core/fx.ml" "let () = Random.self_init ()" in
  check_fires "self_init" "no-ambient-nondeterminism" fs;
  let fs = lint ~path:"lib/core/fx.ml" "let r () = Random.int 6" in
  check_fires "global Random" "no-ambient-nondeterminism" fs;
  let fs = lint ~path:"lib/core/fx.ml" "let t () = Sys.time ()" in
  check_fires "Sys.time" "no-ambient-nondeterminism" fs

let test_ambient_neg () =
  (* Explicit-state Random is the sanctioned API. *)
  let fs = lint ~path:"lib/core/fx.ml" "let r st = Random.State.int st 6" in
  check_silent "Random.State" "no-ambient-nondeterminism" fs;
  (* Outside lib/ the rule does not apply. *)
  let fs = lint ~path:"bin/fx.ml" "let now () = Unix.gettimeofday ()" in
  check_silent "out of scope" "no-ambient-nondeterminism" fs

let test_ambient_suppressed () =
  let fs =
    lint ~path:"lib/core/fx.ml"
      "[@@@lint.allow \"no-ambient-nondeterminism\"]\n\
       let now () = Unix.gettimeofday ()"
  in
  check_silent "file-level allow" "no-ambient-nondeterminism" fs;
  check_silent "allow is used, not orphaned" "orphan-suppression" fs

(* --- rule 2: no-polymorphic-compare --- *)

let test_polycmp_pos () =
  let fs = lint "let f a b = compare a b" in
  check_fires "bare compare" "no-polymorphic-compare" fs;
  let fs = lint "let h x = Hashtbl.hash x" in
  check_fires "Hashtbl.hash" "no-polymorphic-compare" fs;
  let fs = lint "let e a = a = (1, 2)" in
  check_fires "(=) on tuple literal" "no-polymorphic-compare" fs;
  let fs = lint "type t = { links : (int * int, string) Hashtbl.t }" in
  check_fires "tuple-keyed table type" "no-polymorphic-compare" fs;
  let fs = lint "let g tbl k v = Hashtbl.replace tbl (k, v) ()" in
  check_fires "composite literal key" "no-polymorphic-compare" fs

let test_polycmp_neg () =
  let fs = lint "let f a b = Int.compare a b" in
  check_silent "Int.compare" "no-polymorphic-compare" fs;
  let fs = lint "let e a = a = 1" in
  check_silent "(=) at immediate literal" "no-polymorphic-compare" fs;
  (* Only hot-path directories are in scope. *)
  let fs = lint ~path:"lib/obs/fx.ml" "let f a b = compare a b" in
  check_silent "out of hot path" "no-polymorphic-compare" fs

let test_polycmp_suppressed () =
  let fs =
    lint
      "let f a b = (compare [@lint.allow \"no-polymorphic-compare\"]) a b"
  in
  check_silent "expression allow" "no-polymorphic-compare" fs;
  check_silent "no orphan" "orphan-suppression" fs

(* --- rule 3: no-poly-minmax (warn severity) --- *)

let test_minmax_pos () =
  let fs = lint "let f x = min x 1.0" in
  check_fires "poly min at float" "no-poly-minmax" fs;
  let sev =
    List.find_map
      (fun (f : E.finding) ->
        if String.equal f.E.rule "no-poly-minmax" then Some f.E.severity
        else None)
      fs
  in
  Alcotest.(check bool) "warn severity" true (sev = Some E.Warn);
  (* Warnings alone do not fail the run. *)
  Alcotest.(check int) "warn-only exit code" 0 (E.exit_code fs)

let test_minmax_neg () =
  let fs = lint "let f x = Float.min x 1.0" in
  check_silent "Float.min" "no-poly-minmax" fs;
  let fs = lint "let f x y = min x y" in
  check_silent "no float literal evidence" "no-poly-minmax" fs

(* --- rule 4: no-order-leak --- *)

let test_orderleak_pos () =
  let fs = lint ~path:"lib/core/fx.ml" "let f t = Hashtbl.iter (fun _ _ -> ()) t" in
  check_fires "Hashtbl.iter" "no-order-leak" fs;
  let fs =
    lint ~path:"lib/core/fx.ml"
      "let g t = Id_tbl.fold (fun k _ acc -> k :: acc) t []"
  in
  check_fires "functorial table fold" "no-order-leak" fs

let test_orderleak_neg () =
  let fs = lint ~path:"lib/core/fx.ml" "let f t k = Hashtbl.find_opt t k" in
  check_silent "point lookup" "no-order-leak" fs;
  let fs = lint ~path:"lib/core/fx.ml" "let f l = List.fold_left (+) 0 l" in
  check_silent "list fold" "no-order-leak" fs

let test_orderleak_suppressed () =
  let fs =
    lint ~path:"lib/core/fx.ml"
      "let[@lint.allow \"no-order-leak\"] keys t =\n\
      \  Hashtbl.fold (fun k _ acc -> k :: acc) t []"
  in
  check_silent "binding allow" "no-order-leak" fs;
  check_silent "no orphan" "orphan-suppression" fs

(* --- rule 5: domain-safety --- *)

let test_domain_pos () =
  let fs = lint ~path:"lib/core/fx.ml" "let cache = Hashtbl.create 16" in
  check_fires "top-level table" "domain-safety" fs;
  let fs = lint ~path:"lib/core/fx.ml" "let hits = ref 0" in
  check_fires "top-level ref" "domain-safety" fs;
  let fs = lint ~path:"lib/core/fx.ml" "let buf = Buffer.create 80" in
  check_fires "top-level buffer" "domain-safety" fs

let test_domain_neg () =
  (* Creation inside a function is per-call state, not shared. *)
  let fs = lint ~path:"lib/core/fx.ml" "let fresh () = Hashtbl.create 16" in
  check_silent "local creation" "domain-safety" fs;
  (* lib/network runs system threads, never Pool domains. *)
  let fs = lint ~path:"lib/network/fx.ml" "let cache = Hashtbl.create 16" in
  check_silent "network out of scope" "domain-safety" fs

let test_domain_suppressed () =
  let fs =
    lint ~path:"lib/core/fx.ml"
      "let[@lint.allow \"domain-safety\"] jobs = ref 4"
  in
  check_silent "binding allow" "domain-safety" fs;
  check_silent "no orphan" "orphan-suppression" fs

(* --- rule 6: exhaustive-trace-match --- *)

let trace_match = "let f k = match k with Trace.Commit -> 1 | _ -> 0"

let test_trace_pos () =
  let fs = lint ~path:"lib/check/fx.ml" trace_match in
  check_fires "catch-all over Trace.kind" "exhaustive-trace-match" fs

let test_trace_neg () =
  (* Out of scope: the rule only polices the invariant monitors. *)
  let fs = lint ~path:"lib/core/fx.ml" trace_match in
  check_silent "outside lib/check" "exhaustive-trace-match" fs;
  (* A catch-all over non-trace constructors is fine. *)
  let fs =
    lint ~path:"lib/check/fx.ml"
      "let f k = match k with Some_other -> 1 | _ -> 0"
  in
  check_silent "non-trace match" "exhaustive-trace-match" fs;
  (* Guarded wildcards still force a decision, so they are allowed. *)
  let fs =
    lint ~path:"lib/check/fx.ml"
      "let f k = match k with Trace.Commit -> 1 | x when (ignore x; true) -> 0"
  in
  check_silent "guarded wildcard" "exhaustive-trace-match" fs

let test_trace_suppressed () =
  let fs =
    lint ~path:"lib/check/fx.ml"
      "let f k =\n\
      \  (match k with Trace.Commit -> 1 | _ -> 0)\n\
      \  [@lint.allow \"exhaustive-trace-match\"]"
  in
  check_silent "expression allow" "exhaustive-trace-match" fs;
  check_silent "no orphan" "orphan-suppression" fs

let test_trace_kind_extraction () =
  (* When lib/obs/trace.mli is among the linted sources, its constructor
     list replaces the built-in fallback: a catch-all over a kind that
     only exists in the provided interface must still fire. *)
  let sources =
    [
      ("lib/obs/trace.mli", "type kind = Novel_kind | Other_kind");
      ( "lib/check/fx.ml",
        "let f k = match k with Novel_kind -> 1 | _ -> 0" );
    ]
  in
  let fs = E.lint_sources ~rules:R.all sources in
  check_fires "extracted kind" "exhaustive-trace-match" fs;
  (* And the fallback list no longer applies. *)
  let fs =
    E.lint_sources ~rules:R.all
      (("lib/check/fx2.ml", trace_match) :: sources)
  in
  Alcotest.(check int) "Commit no longer a kind" 1
    (count "exhaustive-trace-match" fs)

(* --- rule 7: exhaustive-metric-names --- *)

let test_metric_names_pos () =
  let fs =
    lint ~path:"lib/core/fx.ml"
      "let c reg = Registry.counter reg \"BadName\""
  in
  check_fires "non-snake-case name" "exhaustive-metric-names" fs;
  let fs =
    lint ~path:"lib/core/fx.ml"
      "let c reg = Registry.histogram reg \"has-dash\""
  in
  check_fires "dash in name" "exhaustive-metric-names" fs;
  (* duplicate registration across lib/ files: both sites flagged *)
  let fs =
    E.lint_sources ~rules:R.all
      [
        ("lib/core/fx.ml", "let a reg = Registry.counter reg \"dup_name\"");
        ("lib/sim/fy.ml", "let b reg = Registry.counter reg \"dup_name\"");
      ]
  in
  Alcotest.(check int) "both duplicate sites" 2
    (count "exhaustive-metric-names" fs);
  (* the full module path form is recognized too *)
  let fs =
    lint ~path:"lib/core/fx.ml"
      "let c reg = Bamboo_metrics.Registry.gauge reg \"Mixed\""
  in
  check_fires "qualified path" "exhaustive-metric-names" fs

let test_metric_names_neg () =
  let fs =
    lint ~path:"lib/core/fx.ml"
      "let c reg = Registry.counter reg \"net_sends_total\""
  in
  check_silent "unique snake_case" "exhaustive-metric-names" fs;
  (* computed names are out of the rule's (syntactic) reach *)
  let fs =
    lint ~path:"lib/core/fx.ml"
      "let c reg name = Registry.counter reg name"
  in
  check_silent "non-literal name" "exhaustive-metric-names" fs;
  (* outside lib/ the namespace is the caller's own business *)
  let fs =
    lint ~path:"bench/fx.ml"
      "let c reg = Registry.counter reg \"BadName\""
  in
  check_silent "out of scope" "exhaustive-metric-names" fs;
  (* same name twice in a *labelled* family still registers at one site *)
  let fs =
    lint ~path:"lib/core/fx.ml"
      "let c reg i = Registry.counter reg ~labels:[ (\"node\", string_of_int \
       i) ] \"replica_things\""
  in
  check_silent "one labelled site" "exhaustive-metric-names" fs

let test_metric_names_suppressed () =
  let fs =
    lint ~path:"lib/core/fx.ml"
      "let[@lint.allow \"exhaustive-metric-names\"] c reg =\n\
      \  Registry.counter reg \"LegacyName\""
  in
  check_silent "binding allow" "exhaustive-metric-names" fs;
  check_silent "no orphan" "orphan-suppression" fs

(* --- rules 8-11: the concurrency pass ---

   Fixtures use lib/network paths: the concurrency rules apply
   everywhere, and that scope keeps the older domain-safety rule (which
   excludes lib/network) from firing on the same top-level state. *)

let conc ?(path = "lib/network/fx.ml") src = lint ~path src

let guarded_decl =
  "type t = { m : Mutex.t; mutable count : int; [@guarded_by \"m\"] }\n"

let test_guarded_pos () =
  (* Unlocked access in a function with no in-file caller: the
     requirement cannot be discharged, so it is reported. *)
  let fs = conc (guarded_decl ^ "let bump t = t.count <- t.count + 1") in
  check_fires "unlocked write" "guarded-by" fs;
  (* A lock held on only one side of a branch does not survive the join. *)
  let fs =
    conc
      (guarded_decl
     ^ "let bump t b =\n\
       \  (if b then Mutex.lock t.m);\n\
       \  t.count <- t.count + 1")
  in
  check_fires "one-sided lock at join" "guarded-by" fs;
  (* Module-initialization code runs unlocked on the loading thread. *)
  let fs =
    conc
      (guarded_decl
     ^ "let t0 = { m = Mutex.create (); count = 0 }\n\
        let () = t0.count <- 1")
  in
  check_fires "module-init access" "guarded-by" fs;
  (* A spawned thread cannot rely on locks its spawner holds. *)
  let fs =
    conc
      (guarded_decl
     ^ "let start t =\n\
       \  Mutex.lock t.m;\n\
       \  let th = Thread.create (fun () -> t.count <- 0) () in\n\
       \  Mutex.unlock t.m;\n\
       \  th")
  in
  check_fires "spawner's lock does not transfer" "guarded-by" fs

let test_guarded_neg () =
  (* Lock/unlock region covers the access. *)
  let fs =
    conc
      (guarded_decl
     ^ "let bump t =\n\
       \  Mutex.lock t.m;\n\
       \  t.count <- t.count + 1;\n\
       \  Mutex.unlock t.m")
  in
  check_silent "lock region" "guarded-by" fs;
  (* Mutex.protect thunks run with the lock held. *)
  let fs =
    conc
      (guarded_decl
     ^ "let bump t = Mutex.protect t.m (fun () -> t.count <- t.count + 1)")
  in
  check_silent "Mutex.protect" "guarded-by" fs;
  (* Both branches take the lock, so it survives the join. *)
  let fs =
    conc
      (guarded_decl
     ^ "let bump t b =\n\
       \  (if b then Mutex.lock t.m else Mutex.lock t.m);\n\
       \  t.count <- t.count + 1;\n\
       \  Mutex.unlock t.m")
  in
  check_silent "lock on both sides of join" "guarded-by" fs

let test_guarded_summary_propagation () =
  (* A helper's lock requirement is discharged by a caller that holds
     the lock around the call. *)
  let fs =
    conc
      (guarded_decl
     ^ "let incr_unlocked t = t.count <- t.count + 1\n\
        let bump t =\n\
       \  Mutex.lock t.m;\n\
       \  incr_unlocked t;\n\
       \  Mutex.unlock t.m")
  in
  check_silent "helper under caller's lock" "guarded-by" fs;
  (* The same helper called without the lock keeps the requirement. *)
  let fs =
    conc
      (guarded_decl
     ^ "let incr_unlocked t = t.count <- t.count + 1\n\
        let bump t = incr_unlocked t")
  in
  check_fires "helper without the lock" "guarded-by" fs

let test_guarded_binding_level () =
  (* [let[@guarded_by "m"] r = ref ...] guards a value binding. *)
  let src_ok =
    "let m = Mutex.create ()\n\
     let[@guarded_by \"m\"] total = ref 0\n\
     let bump () =\n\
    \  Mutex.lock m;\n\
    \  total := !total + 1;\n\
    \  Mutex.unlock m"
  in
  check_silent "guarded ref under lock" "guarded-by" (conc src_ok);
  let src_bad =
    "let m = Mutex.create ()\n\
     let[@guarded_by \"m\"] total = ref 0\n\
     let sneak () = incr total"
  in
  check_fires "guarded ref without lock" "guarded-by" (conc src_bad)

let test_guarded_completeness () =
  (* A record carrying a Mutex.t must give every mutable sibling a
     locking story. *)
  let fs = conc "type t = { m : Mutex.t; mutable n : int; }" in
  check_fires "unannotated mutable sibling" "guarded-by" fs;
  let fs = conc "type t = { m : Mutex.t; n : int Atomic.t; }" in
  check_silent "atomic sibling" "guarded-by" fs;
  let fs =
    conc "type t = { m : Mutex.t; mutable n : int; [@lint.allow \"guarded-by\"] }"
  in
  check_silent "label-level exemption" "guarded-by" fs;
  (* Without a mutex the record declares no locking story to complete. *)
  let fs = conc "type t = { mutable n : int; }" in
  check_silent "no mutex, no completeness claim" "guarded-by" fs

let test_guarded_suppressed () =
  let fs =
    conc
      (guarded_decl
     ^ "let[@lint.allow \"guarded-by\"] peek t = t.count")
  in
  check_silent "binding allow" "guarded-by" fs;
  check_silent "no orphan" "orphan-suppression" fs

let test_escape_pos () =
  (* A spawned closure reading a ref of the enclosing scope. *)
  let fs =
    conc
      "let spawn () =\n\
      \  let hits = ref 0 in\n\
      \  let th = Thread.create (fun () -> incr hits) () in\n\
      \  Thread.join th;\n\
      \  !hits"
  in
  check_fires "captured ref" "domain-escape" fs;
  (* Escape via partial application: the closure built by [bump counter]
     carries the ref into the thread. *)
  let fs =
    conc
      "let spawn () =\n\
      \  let counter = ref 0 in\n\
      \  let bump r () = incr r in\n\
      \  let th = Thread.create (bump counter) () in\n\
      \  Thread.join th;\n\
      \  !counter"
  in
  check_fires "partial application" "domain-escape" fs;
  (* Parallel combinators are spawn sites too. *)
  let fs =
    conc
      "let tally xs =\n\
      \  let seen = Hashtbl.create 8 in\n\
      \  Pool.map ~jobs:4 (fun x -> Hashtbl.replace seen x (); x) xs"
  in
  check_fires "Pool.map worker" "domain-escape" fs

let test_escape_neg () =
  (* Atomic state crosses threads by design. *)
  let fs =
    conc
      "let spawn () =\n\
      \  let hits = Atomic.make 0 in\n\
      \  let th = Thread.create (fun () -> Atomic.incr hits) () in\n\
      \  Thread.join th;\n\
      \  Atomic.get hits"
  in
  check_silent "atomic capture" "domain-escape" fs;
  (* State created inside the spawned closure is thread-local. *)
  let fs =
    conc
      "let spawn () =\n\
       \  Thread.create (fun () -> let n = ref 0 in incr n; ignore !n) ()"
  in
  check_silent "thread-local ref" "domain-escape" fs;
  (* A spawned function's own frame stays thread-local even when inner
     helper closures capture it. *)
  let fs =
    conc
      "let worker () =\n\
      \  let pending = ref [] in\n\
      \  let push x = pending := x :: !pending in\n\
      \  push 1;\n\
      \  List.length !pending\n\
       let spawn () = Thread.create worker ()"
  in
  check_silent "spawned function's own frame" "domain-escape" fs;
  (* [!r] as a spawn argument passes a snapshot, not the ref. *)
  let fs =
    conc
      "let go port = ignore port\n\
       let spawn () =\n\
      \  let port = ref 8080 in\n\
      \  Thread.create go !port"
  in
  check_silent "deref argument" "domain-escape" fs

let test_escape_suppressed () =
  let fs =
    conc
      "let spawn () =\n\
      \  let hits = ref 0 in\n\
      \  let[@lint.allow \"domain-escape\"] th =\n\
      \    Thread.create (fun () -> incr hits) ()\n\
      \  in\n\
      \  Thread.join th;\n\
      \  !hits"
  in
  check_silent "binding allow" "domain-escape" fs;
  check_silent "no orphan" "orphan-suppression" fs

let test_atomic_rmw () =
  let fs =
    conc "let bump c = let v = Atomic.get c in Atomic.set c (v + 1)"
  in
  check_fires "get-then-set" "atomic-rmw" fs;
  let fs = conc "let bump c = ignore (Atomic.fetch_and_add c 1)" in
  check_silent "fetch_and_add" "atomic-rmw" fs;
  (* A get/set pair serialized under a mutex has no lost-update window. *)
  let fs =
    conc
      "let bump m c =\n\
      \  Mutex.lock m;\n\
      \  let v = Atomic.get c in\n\
      \  Atomic.set c (v + 1);\n\
      \  Mutex.unlock m"
  in
  check_silent "serialized under lock" "atomic-rmw" fs;
  (* Sets of a cell this function never read are stores, not RMWs. *)
  let fs = conc "let reset c = Atomic.set c 0" in
  check_silent "plain store" "atomic-rmw" fs;
  let fs =
    conc
      "(* single-consumer cursor *)\n\
       let[@lint.allow \"atomic-rmw\"] bump c =\n\
      \  let v = Atomic.get c in\n\
      \  Atomic.set c (v + 1)"
  in
  check_silent "suppressed" "atomic-rmw" fs;
  check_silent "no orphan" "orphan-suppression" fs

let test_condvar_recheck () =
  let fs =
    conc
      "let await c m =\n\
      \  Mutex.lock m;\n\
      \  Condition.wait c m;\n\
      \  Mutex.unlock m"
  in
  check_fires "bare wait" "condvar-recheck" fs;
  let fs =
    conc
      "let await c m ready =\n\
      \  Mutex.lock m;\n\
      \  while not !ready do\n\
      \    Condition.wait c m\n\
      \  done;\n\
      \  Mutex.unlock m"
  in
  check_silent "wait in while loop" "condvar-recheck" fs;
  let fs =
    conc
      "let await c m ready =\n\
      \  let rec loop () = if not !ready then begin Condition.wait c m; loop () end in\n\
      \  Mutex.lock m;\n\
      \  loop ();\n\
      \  Mutex.unlock m"
  in
  check_silent "wait in recursive loop" "condvar-recheck" fs;
  let fs =
    conc
      "let await c m =\n\
      \  Mutex.lock m;\n\
      \  (Condition.wait c m [@lint.allow \"condvar-recheck\"]);\n\
      \  Mutex.unlock m"
  in
  check_silent "suppressed" "condvar-recheck" fs;
  check_silent "no orphan" "orphan-suppression" fs

(* A realistic planted race the pass must catch: a flusher thread
   mutating aggregator state that nothing protects. *)
let test_planted_race () =
  let fs =
    conc
      "type agg = { name : string; mutable total : int }\n\
       let start a =\n\
      \  Thread.create\n\
      \    (fun () ->\n\
      \       for i = 1 to 100 do\n\
      \         a.total <- a.total + i\n\
      \       done)\n\
      \    ()"
  in
  check_fires "planted race caught" "domain-escape" fs

(* --- incremental mode: the ?only filter behind `bamboo lint --since` --- *)

let test_only_filter () =
  let sources =
    [
      ("lib/network/one.ml", "type t = { m : Mutex.t; mutable n : int; }");
      ("lib/sim/two.ml", "let f a b = compare a b");
    ]
  in
  (* Unfiltered: both files report. *)
  let fs = E.lint_sources ~rules:R.all sources in
  check_fires "full run sees one.ml" "guarded-by" fs;
  check_fires "full run sees two.ml" "no-polymorphic-compare" fs;
  (* Filtered to two.ml: one.ml's finding is gone, two.ml's stays. *)
  let fs =
    E.lint_sources ~rules:R.all
      ~only:(fun p -> String.equal p "lib/sim/two.ml")
      sources
  in
  check_silent "filtered file not reported" "guarded-by" fs;
  check_fires "kept file still reported" "no-polymorphic-compare" fs;
  (* Cross-file pre-passes still read everything: a [@guarded_by]
     annotation declared in a file outside the filter is enforced inside
     it. *)
  let sources =
    [
      ( "lib/network/decl.ml",
        "type t = { m : Mutex.t; mutable count : int; [@guarded_by \"m\"] }"
      );
      ("lib/network/use.ml", "let bump (t : t) = t.count <- t.count + 1");
    ]
  in
  let fs =
    E.lint_sources ~rules:R.all
      ~only:(fun p -> String.equal p "lib/network/use.ml")
      sources
  in
  check_fires "field table crosses the filter" "guarded-by" fs

(* --- suppression bookkeeping --- *)

let test_orphan_suppression () =
  let fs =
    lint ~path:"lib/core/fx.ml"
      "let[@lint.allow \"no-order-leak\"] x = 1"
  in
  check_fires "unused allow is an error" "orphan-suppression" fs;
  Alcotest.(check int) "orphan fails the run" 1 (E.exit_code fs)

let test_unknown_rule_id () =
  let fs =
    lint ~path:"lib/core/fx.ml" "let[@lint.allow \"no-such-rule\"] x = 1"
  in
  check_fires "unknown rule id" "orphan-suppression" fs

let test_malformed_payload () =
  let fs = lint ~path:"lib/core/fx.ml" "let[@lint.allow] x = 1" in
  check_fires "missing payload" "orphan-suppression" fs

(* --- engine plumbing --- *)

let test_parse_error () =
  let fs = lint "let let let" in
  check_fires "unparseable source" "parse-error" fs;
  Alcotest.(check int) "parse error fails the run" 1 (E.exit_code fs)

let test_exit_codes () =
  Alcotest.(check int) "clean" 0 (E.exit_code (lint "let x = 1"));
  Alcotest.(check int) "error finding" 1
    (E.exit_code (lint "let f a b = compare a b"))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

let test_render () =
  match lint "let f a b = compare a b" with
  | [ f ] ->
      let s = E.render f in
      Alcotest.(check bool) "has rule id" true
        (contains s "[no-polymorphic-compare]");
      Alcotest.(check bool) "has location" true (contains s "lib/sim/fx.ml:1:")
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* --- self-check: the repository's own sources lint clean --- *)

let test_self_check () =
  let rec locate dir n =
    if n = 0 then None
    else if Sys.file_exists dir && Sys.is_directory dir then Some dir
    else locate (Filename.concat ".." dir) (n - 1)
  in
  (* bin/ and examples/ ride along when present (the test binary only
     declares lib/ as a dune dependency, so the wider tree is linted
     when running from a source checkout). *)
  match locate "lib" 4 with
  | None -> Alcotest.fail "could not locate lib/ from the test's cwd"
  | Some dir -> (
      let sibling name =
        let d = Filename.concat (Filename.dirname dir) name in
        if Sys.file_exists d && Sys.is_directory d then [ d ] else []
      in
      let paths = (dir :: sibling "bin") @ sibling "examples" in
      match E.lint_paths ~rules:R.all paths with
      | Error msg -> Alcotest.fail msg
      | Ok (files, findings) ->
          Alcotest.(check bool) "scanned a real tree" true (files > 50);
          List.iter (fun f -> print_endline (E.render f)) findings;
          Alcotest.(check int) "zero errors over the tree" 0
            (E.errors findings);
          Alcotest.(check int) "zero warnings over the tree" 0
            (E.warnings findings))

let suite =
  [
    Alcotest.test_case "ambient: fires" `Quick test_ambient_pos;
    Alcotest.test_case "ambient: silent" `Quick test_ambient_neg;
    Alcotest.test_case "ambient: suppressed" `Quick test_ambient_suppressed;
    Alcotest.test_case "polycmp: fires" `Quick test_polycmp_pos;
    Alcotest.test_case "polycmp: silent" `Quick test_polycmp_neg;
    Alcotest.test_case "polycmp: suppressed" `Quick test_polycmp_suppressed;
    Alcotest.test_case "minmax: fires as warn" `Quick test_minmax_pos;
    Alcotest.test_case "minmax: silent" `Quick test_minmax_neg;
    Alcotest.test_case "order-leak: fires" `Quick test_orderleak_pos;
    Alcotest.test_case "order-leak: silent" `Quick test_orderleak_neg;
    Alcotest.test_case "order-leak: suppressed" `Quick test_orderleak_suppressed;
    Alcotest.test_case "domain: fires" `Quick test_domain_pos;
    Alcotest.test_case "domain: silent" `Quick test_domain_neg;
    Alcotest.test_case "domain: suppressed" `Quick test_domain_suppressed;
    Alcotest.test_case "trace-match: fires" `Quick test_trace_pos;
    Alcotest.test_case "trace-match: silent" `Quick test_trace_neg;
    Alcotest.test_case "trace-match: suppressed" `Quick test_trace_suppressed;
    Alcotest.test_case "trace-match: kinds from trace.mli" `Quick
      test_trace_kind_extraction;
    Alcotest.test_case "metric-names: fires" `Quick test_metric_names_pos;
    Alcotest.test_case "metric-names: silent" `Quick test_metric_names_neg;
    Alcotest.test_case "metric-names: suppressed" `Quick
      test_metric_names_suppressed;
    Alcotest.test_case "guarded-by: fires" `Quick test_guarded_pos;
    Alcotest.test_case "guarded-by: silent" `Quick test_guarded_neg;
    Alcotest.test_case "guarded-by: summary propagation" `Quick
      test_guarded_summary_propagation;
    Alcotest.test_case "guarded-by: binding-level guard" `Quick
      test_guarded_binding_level;
    Alcotest.test_case "guarded-by: completeness" `Quick
      test_guarded_completeness;
    Alcotest.test_case "guarded-by: suppressed" `Quick test_guarded_suppressed;
    Alcotest.test_case "domain-escape: fires" `Quick test_escape_pos;
    Alcotest.test_case "domain-escape: silent" `Quick test_escape_neg;
    Alcotest.test_case "domain-escape: suppressed" `Quick
      test_escape_suppressed;
    Alcotest.test_case "atomic-rmw: cases" `Quick test_atomic_rmw;
    Alcotest.test_case "condvar-recheck: cases" `Quick test_condvar_recheck;
    Alcotest.test_case "planted race: caught" `Quick test_planted_race;
    Alcotest.test_case "incremental: only filter" `Quick test_only_filter;
    Alcotest.test_case "suppression: orphan" `Quick test_orphan_suppression;
    Alcotest.test_case "suppression: unknown id" `Quick test_unknown_rule_id;
    Alcotest.test_case "suppression: malformed" `Quick test_malformed_payload;
    Alcotest.test_case "engine: parse error" `Quick test_parse_error;
    Alcotest.test_case "engine: exit codes" `Quick test_exit_codes;
    Alcotest.test_case "engine: render" `Quick test_render;
    Alcotest.test_case "self-check: repo tree lints clean" `Quick
      test_self_check;
  ]
