(* Integration: real OS threads + real crypto over the channel and TCP
   transports, via the wall-clock runtime. Short real-time runs. *)

module Config = Bamboo.Config
module Chan = Bamboo_network.Chan_transport
module Tcp = Bamboo_network.Tcp_transport
module Ring = Bamboo_network.Ring_transport
module Chan_runtime = Bamboo.Threaded_runtime.Make (Bamboo_network.Chan_transport)
module Tcp_runtime = Bamboo.Threaded_runtime.Make_batched (Bamboo_network.Tcp_transport)

(* The ring transport is batched natively: Make_batched drains a whole
   wakeup's worth of messages per lock-free pass instead of one recv per
   handler dispatch. *)
module Ring_runtime = Bamboo.Threaded_runtime.Make_batched (Bamboo_network.Ring_transport)

let config =
  { Config.default with n = 4; bsize = 50; timeout = 0.2; memsize = 10_000 }

let test_chan_cluster_progress () =
  let cluster = Chan.create_cluster ~n:4 in
  let endpoints = Array.init 4 (Chan.endpoint cluster) in
  let report =
    Chan_runtime.run ~config ~endpoints ~duration:1.5 ~rate:300.0 ()
  in
  Alcotest.(check bool) "committed txs" true (report.committed_txs > 0);
  Alcotest.(check bool) "all replicas commit blocks" true
    (Array.for_all (fun c -> c > 0) report.committed_blocks);
  Alcotest.(check bool) "consistent" true report.consistent;
  Alcotest.(check bool) "no violation" false report.any_violation;
  Alcotest.(check bool) "latency measured" true (report.latency_count > 0);
  Alcotest.(check bool) "latency sane" true
    (report.latency_mean > 0.0 && report.latency_mean < 1.0)

let test_chan_streamlet () =
  let cluster = Chan.create_cluster ~n:4 in
  let endpoints = Array.init 4 (Chan.endpoint cluster) in
  let config = { config with protocol = Config.Streamlet } in
  let report =
    Chan_runtime.run ~config ~endpoints ~duration:1.5 ~rate:200.0 ()
  in
  Alcotest.(check bool) "streamlet commits" true (report.committed_txs > 0);
  Alcotest.(check bool) "consistent" true report.consistent

let test_chan_with_silent_byzantine () =
  let cluster = Chan.create_cluster ~n:4 in
  let endpoints = Array.init 4 (Chan.endpoint cluster) in
  let config =
    { config with byz_no = 1; strategy = Config.Silence; timeout = 0.1 }
  in
  let report =
    Chan_runtime.run ~config ~endpoints ~duration:2.0 ~rate:200.0 ()
  in
  Alcotest.(check bool) "liveness with f silent" true (report.committed_txs > 0);
  Alcotest.(check bool) "consistent" true report.consistent;
  Alcotest.(check bool) "no violation" false report.any_violation

let test_kv_execution () =
  (* Submit real key-value commands through start/submit/stop and check
     that every replica executed the same state. *)
  let cluster = Chan.create_cluster ~n:4 in
  let endpoints = Array.init 4 (Chan.endpoint cluster) in
  let c = Chan_runtime.start ~config ~endpoints () in
  let kv_tx seq key value =
    Bamboo_types.Tx.make_with_data ~client:2 ~seq
      ~data:(Bamboo.Kvstore.encode_command (Bamboo.Kvstore.Put { key; value }))
  in
  Chan_runtime.submit c ~replica:0 [ kv_tx 1 "alpha" "1"; kv_tx 2 "beta" "2" ];
  Chan_runtime.submit c ~replica:3 [ kv_tx 3 "alpha" "override" ];
  Alcotest.(check bool) "commits within deadline" true
    (Chan_runtime.wait_committed c ~count:3 ~timeout_s:5.0);
  Alcotest.(check bool) "tx_committed" true
    (Chan_runtime.tx_committed c { Bamboo_types.Tx.client = 2; seq = 1 });
  (* Let stragglers apply the blocks, then compare executed state. *)
  Thread.delay 0.3;
  let v = Chan_runtime.kv_get c ~replica:1 "beta" in
  Alcotest.(check (option string)) "replica 1 executed" (Some "2") v;
  let report = Chan_runtime.stop c in
  Alcotest.(check bool) "kv consistent" true report.kv_consistent;
  Alcotest.(check bool) "chain consistent" true report.consistent

let test_ring_cluster_progress () =
  let cluster = Ring.create_cluster ~n:4 () in
  let endpoints = Array.init 4 (Ring.endpoint cluster) in
  let report =
    Ring_runtime.run ~config ~endpoints ~duration:1.5 ~rate:300.0 ()
  in
  Alcotest.(check bool) "committed over ring" true (report.committed_txs > 0);
  Alcotest.(check bool) "all replicas commit blocks" true
    (Array.for_all (fun c -> c > 0) report.committed_blocks);
  Alcotest.(check bool) "consistent" true report.consistent;
  Alcotest.(check bool) "no violation" false report.any_violation

let test_tcp_cluster_progress () =
  let addresses = Tcp.loopback_addresses ~n:4 ~base_port:29600 in
  let endpoints =
    Array.of_list (List.map (fun (self, _) -> Tcp.create ~self ~addresses ()) addresses)
  in
  let report =
    Tcp_runtime.run ~config ~endpoints ~duration:2.0 ~rate:200.0 ()
  in
  Alcotest.(check bool) "committed over TCP" true (report.committed_txs > 0);
  Alcotest.(check bool) "consistent" true report.consistent;
  Alcotest.(check bool) "no violation" false report.any_violation

let suite =
  [
    Alcotest.test_case "channel cluster" `Slow test_chan_cluster_progress;
    Alcotest.test_case "channel streamlet" `Slow test_chan_streamlet;
    Alcotest.test_case "channel + silent byzantine" `Slow
      test_chan_with_silent_byzantine;
    Alcotest.test_case "kv execution layer" `Slow test_kv_execution;
    Alcotest.test_case "ring cluster" `Slow test_ring_cluster_progress;
    Alcotest.test_case "tcp cluster" `Slow test_tcp_cluster_progress;
  ]
