let () =
  Alcotest.run "bamboo"
    [
      ("util.deque", Test_deque.suite);
      ("util.heap", Test_heap.suite);
      ("util.pool", Test_pool.suite);
      ("util.rng", Test_rng.suite);
      ("util.dist", Test_dist.suite);
      ("util.stats", Test_stats.suite);
      ("util.json", Test_json.suite);
      ("util.table", Test_table.suite);
      ("crypto.sha256", Test_sha256.suite);
      ("crypto.hmac", Test_hmac.suite);
      ("crypto.sig", Test_sig.suite);
      ("types", Test_types.suite);
      ("types.codec", Test_codec.suite);
      ("forest", Test_forest.suite);
      ("mempool", Test_mempool.suite);
      ("quorum", Test_quorum.suite);
      ("sim", Test_sim.suite);
      ("election", Test_election.suite);
      ("pacemaker", Test_pacemaker.suite);
      ("safety-rules", Test_safety_rules.suite);
      ("byzantine", Test_byzantine.suite);
      ("config", Test_config.suite);
      ("metrics", Test_metrics.suite);
      ("model", Test_model.suite);
      ("node", Test_node.suite);
      ("runtime", Test_runtime.suite);
      ("experiments.parallel", Test_parallel.suite);
      ("faults", Test_faults.suite);
      ("check", Test_check.suite);
      ("obs.trace", Test_trace.suite);
      ("kvstore", Test_kvstore.suite);
      ("transport", Test_transport.suite);
      ("http", Test_http.suite);
      ("threaded", Test_threaded.suite);
    ]
