(* The aggregate metrics registry (Bamboo_metrics): counters, gauges,
   log-bucketed histograms, the per-domain sharded merge, the two export
   formats, and the observe-only contract against the runtime. *)

module Registry = Bamboo_metrics.Registry
module Snapshot = Bamboo_metrics.Snapshot
module Pool = Bamboo_util.Pool
module Json = Bamboo_util.Json

(* --- counters --- *)

let test_counter_basics () =
  let reg = Registry.create () in
  let c = Registry.counter reg "reqs_total" in
  Alcotest.(check int) "fresh" 0 (Registry.Counter.value c);
  Registry.Counter.incr c;
  Registry.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Registry.Counter.value c);
  (* idempotent registration: same handle target *)
  let c' = Registry.counter reg "reqs_total" in
  Registry.Counter.incr c';
  Alcotest.(check int) "second handle, same cell" 43 (Registry.Counter.value c)

let test_counter_labels_distinct () =
  let reg = Registry.create () in
  let a = Registry.counter reg ~labels:[ ("node", "0") ] "commits" in
  let b = Registry.counter reg ~labels:[ ("node", "1") ] "commits" in
  Registry.Counter.add a 5;
  Registry.Counter.add b 7;
  Alcotest.(check int) "a" 5 (Registry.Counter.value a);
  Alcotest.(check int) "b" 7 (Registry.Counter.value b);
  (* label order is canonicalised *)
  let a' =
    Registry.counter reg ~labels:[ ("node", "0") ] "commits"
  in
  Registry.Counter.incr a';
  Alcotest.(check int) "canonical labels alias" 6 (Registry.Counter.value a)

let test_disabled_registry_inert () =
  let c = Registry.counter Registry.null "inert_counter" in
  Registry.Counter.incr c;
  Registry.Counter.add c 100;
  Alcotest.(check int) "no-op counter" 0 (Registry.Counter.value c);
  Alcotest.(check bool) "null disabled" false (Registry.enabled Registry.null);
  Alcotest.(check bool) "read empty" true (Registry.read Registry.null = [])

(* --- registration validation --- *)

let test_name_validation () =
  let reg = Registry.create () in
  let bad name =
    match Registry.counter reg name with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "accepted bad name %S" name
  in
  bad "";
  bad "CamelCase";
  bad "9starts_with_digit";
  bad "has-dash";
  bad "_leading_underscore";
  (* even disabled registries validate, so bugs surface in default runs *)
  (match Registry.counter Registry.null "Bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "null registry skipped validation");
  ignore (Registry.counter reg "ok_name_2" : Registry.Counter.t)

let test_kind_mismatch () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "mixed_kind" : Registry.Counter.t);
  match Registry.gauge reg "mixed_kind" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "re-registered a counter as a gauge"

(* --- gauges --- *)

let test_gauge_stats () =
  let reg = Registry.create () in
  let g = Registry.gauge reg "depth" in
  List.iter (Registry.Gauge.set g) [ 2.0; 8.0; 4.0 ];
  Alcotest.(check int) "samples" 3 (Registry.Gauge.samples g);
  match Registry.read reg with
  | [ ("depth", [], Registry.M_gauge { last; min_v; max_v; sum; samples }) ]
    ->
      Alcotest.(check (float 0.0)) "last" 4.0 last;
      Alcotest.(check (float 0.0)) "min" 2.0 min_v;
      Alcotest.(check (float 0.0)) "max" 8.0 max_v;
      Alcotest.(check (float 0.0)) "sum" 14.0 sum;
      Alcotest.(check int) "samples" 3 samples
  | _ -> Alcotest.fail "unexpected read shape"

(* --- histogram bucket maths --- *)

let test_bucket_exact_below_32 () =
  for v = 0 to 31 do
    Alcotest.(check int)
      (Printf.sprintf "index of %d" v)
      v (Registry.bucket_index v);
    Alcotest.(check int)
      (Printf.sprintf "lower of %d" v)
      v
      (Registry.bucket_lower (Registry.bucket_index v))
  done

let test_bucket_boundaries () =
  let probes =
    [ 0; 1; 15; 16; 31; 32; 33; 47; 48; 63; 64; 65; 100; 127; 128; 1000;
      65_535; 65_536; 1_000_000; 1_000_000_000; max_int / 2 ]
  in
  List.iter
    (fun v ->
      let idx = Registry.bucket_index v in
      let lower = Registry.bucket_lower idx in
      let next = Registry.bucket_lower (idx + 1) in
      if not (lower <= v) then
        Alcotest.failf "bucket_lower %d = %d > value %d" idx lower v;
      if not (v < next) then
        Alcotest.failf "value %d >= next bucket lower %d" v next)
    probes;
  (* first sub-bucketed octave starts exactly where exactness ends *)
  Alcotest.(check int) "index of 32" 32 (Registry.bucket_index 32);
  Alcotest.(check int) "lower of 48" 64 (Registry.bucket_lower 48)

let test_bucket_monotone () =
  let last = ref (-1) in
  for v = 0 to 100_000 do
    let idx = Registry.bucket_index v in
    if idx < !last then Alcotest.failf "bucket_index not monotone at %d" v;
    last := idx
  done;
  let prev = ref (-1) in
  for idx = 0 to 200 do
    let l = Registry.bucket_lower idx in
    if l <= !prev then Alcotest.failf "bucket_lower not increasing at %d" idx;
    prev := l
  done

let test_histogram_observe () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "lat_ns" in
  Registry.Histogram.observe h 10;
  Registry.Histogram.observe h 10;
  Registry.Histogram.observe h 100;
  Registry.Histogram.observe h (-5) (* clamps to 0 *);
  Alcotest.(check int) "count" 4 (Registry.Histogram.count h);
  match Registry.read reg with
  | [ ("lat_ns", [], Registry.M_hist { count; sum; max_v; buckets }) ] ->
      Alcotest.(check int) "count" 4 count;
      Alcotest.(check int) "sum" 120 sum;
      Alcotest.(check int) "max" 100 max_v;
      Alcotest.(check (list (pair int int)))
        "buckets" [ (0, 1); (10, 2); (100, 1) ] buckets
  | _ -> Alcotest.fail "unexpected read shape"

let test_histogram_observe_s () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "lat_s_ns" in
  Registry.Histogram.observe_s h 1e-6 (* 1000 ns *);
  match Registry.read reg with
  | [ ("lat_s_ns", [], Registry.M_hist { count = 1; max_v; _ }) ] ->
      Alcotest.(check int) "nanoseconds" 1000 max_v
  | _ -> Alcotest.fail "unexpected read shape"

(* --- percentiles --- *)

let test_percentile () =
  Alcotest.(check int) "empty" 0
    (Snapshot.percentile ~buckets:[] ~count:0 ~max_v:0 50.0);
  let buckets = [ (10, 50); (100, 49); (1000, 1) ] in
  let p = Snapshot.percentile ~buckets ~count:100 ~max_v:1234 in
  Alcotest.(check int) "p50 in first bucket" 10 (p 50.0);
  Alcotest.(check int) "p95 in second bucket" 100 (p 95.0);
  Alcotest.(check int) "p100 exact max" 1234 (p 100.0)

(* --- sharded merge determinism --- *)

let shard_read ~jobs =
  let reg = Registry.create () in
  let c = Registry.counter reg "tasks_done" in
  let h = Registry.histogram reg "task_cost_ns" in
  let results =
    Pool.map ~jobs
      (fun i ->
        Registry.Counter.incr c;
        Registry.Histogram.observe h (i * 37);
        i)
      (List.init 64 Fun.id)
  in
  Alcotest.(check (list int)) "pool order" (List.init 64 Fun.id) results;
  Registry.read reg

let test_shard_merge_determinism () =
  (* counters and histograms merge commutatively, so the merged read is
     identical whether 1 or 4 worker domains did the recording *)
  let r1 = shard_read ~jobs:1 and r4 = shard_read ~jobs:4 in
  Alcotest.(check bool) "jobs 1 == jobs 4" true (r1 = r4);
  match r1 with
  | [
   ("task_cost_ns", [], Registry.M_hist { count = 64; _ });
   ("tasks_done", [], Registry.M_counter 64);
  ] ->
      ()
  | _ -> Alcotest.fail "unexpected merged shape"

(* --- export goldens --- *)

let golden_snapshot () =
  let reg = Registry.create () in
  let c = Registry.counter reg "requests_total" in
  Registry.Counter.add c 3;
  let g = Registry.gauge reg ~labels:[ ("node", "0") ] "queue_depth" in
  Registry.Gauge.set g 2.0;
  Registry.Gauge.set g 4.0;
  let h = Registry.histogram reg "latency_ns" in
  Registry.Histogram.observe h 10;
  Registry.Histogram.observe h 100;
  Snapshot.of_registry reg

let test_prometheus_golden () =
  let expected =
    "# TYPE latency_ns histogram\n\
     latency_ns_bucket{le=\"10\"} 1\n\
     latency_ns_bucket{le=\"103\"} 2\n\
     latency_ns_bucket{le=\"+Inf\"} 2\n\
     latency_ns_sum 110\n\
     latency_ns_count 2\n\
     # TYPE queue_depth gauge\n\
     queue_depth{node=\"0\"} 4\n\
     # TYPE requests_total counter\n\
     requests_total 3\n"
  in
  Alcotest.(check string)
    "prometheus text" expected
    (Snapshot.to_prometheus (golden_snapshot ()))

let test_json_golden () =
  let expected =
    Json.Obj
      [
        ( "metrics",
          Json.List
            [
              Json.Obj
                [
                  ("name", Json.String "latency_ns");
                  ("type", Json.String "histogram");
                  ("count", Json.Int 2);
                  ("sum", Json.Int 110);
                  ("max", Json.Int 100);
                  ("p50", Json.Int 10);
                  ("p95", Json.Int 100);
                  ("p99", Json.Int 100);
                  ( "buckets",
                    Json.List
                      [
                        Json.List [ Json.Int 10; Json.Int 1 ];
                        Json.List [ Json.Int 100; Json.Int 1 ];
                      ] );
                ];
              Json.Obj
                [
                  ("name", Json.String "queue_depth");
                  ("labels", Json.Obj [ ("node", Json.String "0") ]);
                  ("type", Json.String "gauge");
                  ("last", Json.Float 4.0);
                  ("min", Json.Float 2.0);
                  ("max", Json.Float 4.0);
                  ("mean", Json.Float 3.0);
                  ("samples", Json.Int 2);
                ];
              Json.Obj
                [
                  ("name", Json.String "requests_total");
                  ("type", Json.String "counter");
                  ("value", Json.Int 3);
                ];
            ] );
      ]
  in
  Alcotest.(check string)
    "json export"
    (Json.to_string expected)
    (Json.to_string (Snapshot.to_json (golden_snapshot ())))

let test_snapshot_lookups () =
  let s = golden_snapshot () in
  Alcotest.(check int) "counter_value" 3 (Snapshot.counter_value s "requests_total");
  Alcotest.(check int) "counter_value absent" 0 (Snapshot.counter_value s "nope");
  Alcotest.(check bool) "find labelled" true
    (Snapshot.find s ~labels:[ ("node", "0") ] "queue_depth" <> None);
  Alcotest.(check bool) "find wrong labels" true
    (Snapshot.find s "queue_depth" = None);
  Alcotest.(check bool) "empty snapshot" true (Snapshot.is_empty Snapshot.empty)

(* --- allocation smoke --- *)

let alloc_delta f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_disabled_zero_alloc () =
  let c = Registry.counter Registry.null "noop_c" in
  let h = Registry.histogram Registry.null "noop_h" in
  let g = Registry.gauge Registry.null "noop_g" in
  let v = 1.5 in
  let delta =
    alloc_delta (fun () ->
        for i = 0 to 99_999 do
          Registry.Counter.incr c;
          Registry.Counter.add c i;
          Registry.Histogram.observe h i;
          Registry.Gauge.set g v
        done)
  in
  if delta > 1000.0 then
    Alcotest.failf "disabled record path allocated %.0f minor words" delta

let test_enabled_steady_state_alloc () =
  let reg = Registry.create () in
  let c = Registry.counter reg "hot_c" in
  let h = Registry.histogram reg "hot_h" in
  let g = Registry.gauge reg "hot_g" in
  (* warm up: create this domain's shard and the lazy cells *)
  Registry.Counter.incr c;
  Registry.Histogram.observe h 1;
  Registry.Gauge.set g 0.0;
  let v = 2.5 in
  let delta =
    alloc_delta (fun () ->
        for i = 0 to 99_999 do
          Registry.Counter.incr c;
          Registry.Histogram.observe h i;
          Registry.Gauge.set g v
        done)
  in
  if delta > 1000.0 then
    Alcotest.failf "enabled record path allocated %.0f minor words" delta

(* --- runtime integration --- *)

let run_config = { Bamboo.Config.default with runtime = 2.0 }
let run_workload = Bamboo.Workload.open_loop ~rate:2000.0 ()

let test_runtime_identity () =
  (* the headline contract: attaching a registry must not change one byte
     of simulation output *)
  let r_off = Bamboo.Runtime.run ~config:run_config ~workload:run_workload () in
  let reg = Registry.create () in
  let r_on =
    Bamboo.Runtime.run ~config:run_config ~workload:run_workload ~metrics:reg ()
  in
  Alcotest.(check bool) "summary identical" true
    (r_off.Bamboo.Runtime.summary = r_on.Bamboo.Runtime.summary);
  Alcotest.(check bool) "ledgers identical" true
    (r_off.Bamboo.Runtime.ledgers = r_on.Bamboo.Runtime.ledgers);
  Alcotest.(check int) "sim_events identical" r_off.Bamboo.Runtime.sim_events
    r_on.Bamboo.Runtime.sim_events;
  Alcotest.(check bool) "final views identical" true
    (r_off.Bamboo.Runtime.final_views = r_on.Bamboo.Runtime.final_views);
  Alcotest.(check bool) "disabled run has empty snapshot" true
    (Snapshot.is_empty r_off.Bamboo.Runtime.metrics);
  (* and the published counters agree with the runtime's own numbers *)
  let snap = r_on.Bamboo.Runtime.metrics in
  Alcotest.(check int) "sim_events_fired"
    r_on.Bamboo.Runtime.sim_events
    (Snapshot.counter_value snap "sim_events_fired");
  let commits = Snapshot.counter_value snap "replica_commits" in
  Alcotest.(check bool) "replica commits recorded" true (commits > 0);
  Alcotest.(check bool) "network sends recorded" true
    (Snapshot.counter_value snap "net_sends" > 0)

let test_probe_registry_consistency () =
  (* the probe routes sampled gauges through the registry: the probe
     summary and the metrics export must report one consistent number *)
  let config = { run_config with probe_interval = 0.05 } in
  let reg = Registry.create () in
  let r = Bamboo.Runtime.run ~config ~workload:run_workload ~metrics:reg () in
  let p =
    match
      Bamboo_obs.Probe.find_summary r.Bamboo.Runtime.probe ~node:(-1)
        ~name:"event_heap"
    with
    | Some p -> p
    | None -> Alcotest.fail "no event_heap probe summary"
  in
  match Snapshot.find r.Bamboo.Runtime.metrics "event_heap" with
  | Some { Snapshot.value = Snapshot.Gauge { mean; max_v; samples; _ }; _ } ->
      Alcotest.(check int) "samples agree" p.Bamboo_obs.Probe.samples samples;
      Alcotest.(check (float 1e-9)) "mean agrees" p.Bamboo_obs.Probe.mean mean;
      Alcotest.(check (float 1e-9)) "max agrees" p.Bamboo_obs.Probe.max max_v
  | _ -> Alcotest.fail "event_heap gauge missing from metrics export"

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "counter labels" `Quick test_counter_labels_distinct;
    Alcotest.test_case "disabled registry inert" `Quick
      test_disabled_registry_inert;
    Alcotest.test_case "name validation" `Quick test_name_validation;
    Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
    Alcotest.test_case "gauge stats" `Quick test_gauge_stats;
    Alcotest.test_case "buckets exact below 32" `Quick
      test_bucket_exact_below_32;
    Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "bucket monotone" `Quick test_bucket_monotone;
    Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
    Alcotest.test_case "histogram observe_s" `Quick test_histogram_observe_s;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "shard merge determinism" `Quick
      test_shard_merge_determinism;
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "json golden" `Quick test_json_golden;
    Alcotest.test_case "snapshot lookups" `Quick test_snapshot_lookups;
    Alcotest.test_case "disabled zero-alloc" `Quick test_disabled_zero_alloc;
    Alcotest.test_case "enabled steady-state alloc" `Quick
      test_enabled_steady_state_alloc;
    Alcotest.test_case "runtime identity on/off" `Quick test_runtime_identity;
    Alcotest.test_case "probe/registry consistency" `Quick
      test_probe_registry_consistency;
  ]
