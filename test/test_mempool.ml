module Mempool = Bamboo_mempool.Mempool
open Bamboo_types

let tx = Helpers.tx

let test_add_and_batch_fifo () =
  let p = Mempool.create () in
  let txs = Helpers.txs 5 in
  List.iter (fun t -> ignore (Mempool.add p t)) txs;
  Alcotest.(check int) "length" 5 (Mempool.length p);
  let batch = Mempool.batch p ~max:3 in
  Alcotest.(check int) "batch size" 3 (List.length batch);
  Alcotest.(check bool) "FIFO order" true
    (List.for_all2 Tx.equal batch (List.filteri (fun i _ -> i < 3) txs));
  Alcotest.(check int) "remaining" 2 (Mempool.length p)

let test_batch_more_than_available () =
  let p = Mempool.create () in
  ignore (Mempool.add p (tx 1));
  let batch = Mempool.batch p ~max:10 in
  Alcotest.(check int) "takes what exists" 1 (List.length batch)

let test_dedup () =
  let p = Mempool.create () in
  Alcotest.(check bool) "first add" true (Mempool.add p (tx 1));
  Alcotest.(check bool) "duplicate rejected" false (Mempool.add p (tx 1));
  Alcotest.(check int) "length" 1 (Mempool.length p)

let test_inflight_dedup () =
  let p = Mempool.create () in
  ignore (Mempool.add p (tx 1));
  ignore (Mempool.batch p ~max:1);
  Alcotest.(check bool) "in-flight still rejected" false (Mempool.add p (tx 1));
  Alcotest.(check bool) "contains in-flight" true
    (Mempool.contains p (tx 1).Tx.id)

let test_capacity () =
  let p = Mempool.create ~capacity:2 () in
  Alcotest.(check bool) "1" true (Mempool.add p (tx 1));
  Alcotest.(check bool) "2" true (Mempool.add p (tx 2));
  Alcotest.(check bool) "3 rejected" false (Mempool.add p (tx 3));
  ignore (Mempool.batch p ~max:1);
  Alcotest.(check bool) "space after batch" true (Mempool.add p (tx 3))

let test_rejection_stats_split () =
  let p = Mempool.create ~capacity:2 () in
  ignore (Mempool.add p (tx 1));
  ignore (Mempool.add p (tx 1));
  (* duplicate *)
  ignore (Mempool.add p (tx 2));
  ignore (Mempool.add p (tx 3));
  (* full *)
  ignore (Mempool.add p (tx 4));
  (* full *)
  let s = Mempool.stats p in
  Alcotest.(check int) "rejected_full" 2 s.Mempool.rejected_full;
  Alcotest.(check int) "rejected_dup" 1 s.Mempool.rejected_dup;
  (* capacity is checked before dedup: a duplicate hitting a full pool
     is tallied as backpressure, not as a duplicate *)
  ignore (Mempool.add p (tx 2));
  let s = Mempool.stats p in
  Alcotest.(check int) "full takes precedence" 3 s.Mempool.rejected_full;
  Alcotest.(check int) "dup unchanged" 1 s.Mempool.rejected_dup

let test_requeue_front_order () =
  let p = Mempool.create () in
  List.iter (fun t -> ignore (Mempool.add p t)) [ tx 1; tx 2; tx 3; tx 4 ];
  let batch = Mempool.batch p ~max:2 in
  (* queue: [3;4], forked batch [1;2] goes back to the FRONT in order. *)
  let n = Mempool.requeue_front p batch in
  Alcotest.(check int) "requeued" 2 n;
  let next = Mempool.batch p ~max:4 in
  Alcotest.(check (list int)) "front order preserved"
    [ 1; 2; 3; 4 ]
    (List.map (fun (t : Tx.t) -> t.id.seq) next)

let test_requeue_skips_committed () =
  let p = Mempool.create () in
  ignore (Mempool.add p (tx 1));
  let batch = Mempool.batch p ~max:1 in
  Mempool.forget p batch;
  Alcotest.(check int) "committed not requeued" 0 (Mempool.requeue_front p batch)

let test_requeue_skips_foreign () =
  let p = Mempool.create () in
  (* A forked block proposed by another replica contains txs this pool has
     never seen: they must not be adopted. *)
  Alcotest.(check int) "foreign skipped" 0
    (Mempool.requeue_front p [ tx 42 ]);
  Alcotest.(check int) "still empty" 0 (Mempool.length p)

let test_requeue_skips_queued () =
  let p = Mempool.create () in
  ignore (Mempool.add p (tx 1));
  Alcotest.(check int) "already queued" 0 (Mempool.requeue_front p [ tx 1 ])

let test_forget_blocks_readds () =
  let p = Mempool.create () in
  ignore (Mempool.add p (tx 1));
  let batch = Mempool.batch p ~max:1 in
  Mempool.forget p batch;
  Alcotest.(check bool) "committed never re-added" false (Mempool.add p (tx 1));
  Alcotest.(check bool) "not contained" false (Mempool.contains p (tx 1).Tx.id)

let test_batch_skips_committed_in_queue () =
  (* Client-broadcast mode: a tx committed through another replica's block
     while still queued here must be dropped by batch, not proposed again. *)
  let p = Mempool.create () in
  ignore (Mempool.add p (tx 1));
  ignore (Mempool.add p (tx 2));
  Mempool.forget p [ tx 1 ];
  let batch = Mempool.batch p ~max:2 in
  Alcotest.(check (list int)) "only live tx"
    [ 2 ]
    (List.map (fun (t : Tx.t) -> t.id.seq) batch)

let test_requeue_respects_capacity () =
  let p = Mempool.create ~capacity:3 () in
  List.iter (fun t -> ignore (Mempool.add p t)) [ tx 1; tx 2; tx 3 ];
  let batch = Mempool.batch p ~max:2 in
  ignore (Mempool.add p (tx 4));
  ignore (Mempool.add p (tx 5));
  (* queue full again: [3;4;5]; requeueing 2 can only fit 0. *)
  Alcotest.(check int) "capacity respected" 0 (Mempool.requeue_front p batch)

let no_duplicate_batches_prop =
  let open QCheck in
  let gen = Gen.list_size (Gen.int_range 0 120) (Gen.int_range 0 30) in
  Test.make ~name:"a tx is never batched twice unless requeued" ~count:200
    (make ~print:(fun l -> string_of_int (List.length l)) gen)
    (fun seqs ->
      let p = Mempool.create ~capacity:1000 () in
      List.iter (fun s -> ignore (Mempool.add p (tx s))) seqs;
      let b1 = Mempool.batch p ~max:10 in
      let b2 = Mempool.batch p ~max:10 in
      let ids b = List.map (fun (t : Tx.t) -> t.Tx.id) b in
      List.for_all (fun i -> not (List.mem i (ids b2))) (ids b1))

let suite =
  [
    Alcotest.test_case "add/batch FIFO" `Quick test_add_and_batch_fifo;
    Alcotest.test_case "batch underflow" `Quick test_batch_more_than_available;
    Alcotest.test_case "dedup" `Quick test_dedup;
    Alcotest.test_case "in-flight dedup" `Quick test_inflight_dedup;
    Alcotest.test_case "capacity" `Quick test_capacity;
    Alcotest.test_case "rejection stats split" `Quick
      test_rejection_stats_split;
    Alcotest.test_case "requeue front order" `Quick test_requeue_front_order;
    Alcotest.test_case "requeue skips committed" `Quick test_requeue_skips_committed;
    Alcotest.test_case "requeue skips foreign" `Quick test_requeue_skips_foreign;
    Alcotest.test_case "requeue skips queued" `Quick test_requeue_skips_queued;
    Alcotest.test_case "forget blocks re-adds" `Quick test_forget_blocks_readds;
    Alcotest.test_case "batch skips committed" `Quick
      test_batch_skips_committed_in_queue;
    Alcotest.test_case "requeue capacity" `Quick test_requeue_respects_capacity;
    QCheck_alcotest.to_alcotest no_duplicate_batches_prop;
  ]
