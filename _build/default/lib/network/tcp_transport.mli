(** TCP socket transport: length-prefixed {!Bamboo_types.Codec} frames over
    persistent connections, one listener per replica. This is the
    "large-scale deployment" transport of the paper's network module; in
    this repo it is exercised on loopback by the integration tests and the
    deployment example. *)

type t

val create : self:int -> addresses:(int * Unix.sockaddr) list -> t
(** [create ~self ~addresses] binds the listener for [self] and lazily
    connects to peers on first send. [addresses] maps every replica id
    (including [self]) to its address. Raises [Unix.Unix_error] if the
    listen address is unavailable. *)

val loopback_addresses : n:int -> base_port:int -> (int * Unix.sockaddr) list
(** Convenience: [127.0.0.1:base_port+i] for each replica. *)

include Transport.S with type t := t
