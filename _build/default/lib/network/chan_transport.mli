(** In-process channel transport: every replica endpoint is a thread-safe
    queue, so a whole cluster runs inside one process with real OS threads.
    This is the analogue of Bamboo's Go-channel transport for
    "single-machine simulation" (paper §III-E). *)

type cluster

type t

val create_cluster : n:int -> cluster
(** Endpoints for replicas [0 .. n-1]. *)

val endpoint : cluster -> int -> t

include Transport.S with type t := t
