lib/network/tcp_transport.mli: Transport Unix
