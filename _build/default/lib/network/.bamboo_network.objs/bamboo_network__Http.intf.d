lib/network/http.mli:
