lib/network/chan_transport.mli: Transport
