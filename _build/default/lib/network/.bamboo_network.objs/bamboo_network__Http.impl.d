lib/network/http.ml: Bytes List Printexc Printf String Thread Unix
