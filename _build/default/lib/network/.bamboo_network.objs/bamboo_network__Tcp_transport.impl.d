lib/network/tcp_transport.ml: Bamboo_types Bytes Codec Float Int32 List Message Mutex Queue String Thread Unix
