lib/network/chan_transport.ml: Array Bamboo_types Condition Float Mutex Queue Thread Unix
