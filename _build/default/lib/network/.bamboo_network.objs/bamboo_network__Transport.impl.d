lib/network/transport.ml: Bamboo_types
