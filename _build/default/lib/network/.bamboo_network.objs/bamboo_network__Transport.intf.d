lib/network/transport.mli: Bamboo_types
