(** Minimal HTTP/1.1 server and client.

    Backs the RESTful client API of the paper's benchmark facilities
    (§III-D: "The Bamboo client library uses a RESTful API to interact with
    server nodes"). Supports exactly what a benchmark driver needs: request
    line, headers, Content-Length bodies, one request per connection. *)

type request = {
  meth : string;  (** Uppercased: GET, POST, ... *)
  path : string;  (** Raw path with query string. *)
  headers : (string * string) list;  (** Lowercased names. *)
  body : string;
}

type response = { status : int; body : string }

type server

val start :
  port:int -> handler:(request -> response) -> server
(** Binds 127.0.0.1:[port] and serves each connection on its own thread.
    Handler exceptions turn into 500 responses. Raises [Unix.Unix_error]
    when the port is unavailable. *)

val port : server -> int

val stop : server -> unit
(** Closes the listener; in-flight requests finish. *)

val request :
  ?body:string ->
  ?timeout_s:float ->
  host:string ->
  port:int ->
  meth:string ->
  path:string ->
  unit ->
  (response, string) result
(** One-shot client request; [Error] on connection failure, timeout or a
    malformed response. *)
