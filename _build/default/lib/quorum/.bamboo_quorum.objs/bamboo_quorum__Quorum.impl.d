lib/quorum/quorum.ml: Bamboo_types Hashtbl Ids List Qc Tcert Timeout_msg Vote
