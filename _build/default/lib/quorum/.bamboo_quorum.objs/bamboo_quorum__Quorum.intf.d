lib/quorum/quorum.mli: Bamboo_types Ids Qc Tcert Timeout_msg Vote
