(** Probability distributions and order statistics over {!Rng}.

    These are the stochastic primitives of both the simulator (link latency,
    Poisson arrivals) and the analytic model of Section V of the paper
    (expected order statistics of normal samples for quorum delay [t_Q]). *)

val uniform : Rng.t -> lo:float -> hi:float -> float

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Box-Muller transform. *)

val normal_pos : Rng.t -> mu:float -> sigma:float -> float
(** [normal] truncated below at 0; used for physical delays. *)

val exponential : Rng.t -> rate:float -> float
(** Inverse-CDF sampling; [rate] must be positive. *)

val poisson : Rng.t -> mean:float -> int
(** Knuth's method for small means, normal approximation above 60. *)

val order_statistic_mean :
  Rng.t -> n:int -> k:int -> mu:float -> sigma:float -> trials:int -> float
(** [order_statistic_mean ~n ~k ~mu ~sigma ~trials] estimates by Monte Carlo
    the expected value of the [k]-th smallest (1-based) of [n] i.i.d.
    normal(mu, sigma) samples. This is the quorum-collection delay [t_Q] of
    the paper's Section V-B2 with [n = N-1] and [k = 2N/3 - 1]. *)

val normal_cdf : float -> float
(** Standard normal CDF via the Abramowitz-Stegun erf approximation
    (absolute error < 1.5e-7). *)

val order_statistic_mean_numeric :
  n:int -> k:int -> mu:float -> sigma:float -> float
(** Same expectation as {!order_statistic_mean} but by numerical
    integration of [E X_(k) = integral of x f_(k)(x) dx]; deterministic and
    used to cross-check the Monte Carlo estimate. *)
