type 'a t = {
  mutable buf : 'a option array;
  mutable head : int; (* index of front element *)
  mutable len : int;
}

let create ?(capacity = 16) () =
  if capacity <= 0 then invalid_arg "Deque.create: capacity must be positive";
  { buf = Array.make capacity None; head = 0; len = 0 }

let length d = d.len
let is_empty d = d.len = 0

let grow d =
  let cap = Array.length d.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to d.len - 1 do
    buf.(i) <- d.buf.((d.head + i) mod cap)
  done;
  d.buf <- buf;
  d.head <- 0

let push_back d x =
  if d.len = Array.length d.buf then grow d;
  let cap = Array.length d.buf in
  d.buf.((d.head + d.len) mod cap) <- Some x;
  d.len <- d.len + 1

let push_front d x =
  if d.len = Array.length d.buf then grow d;
  let cap = Array.length d.buf in
  d.head <- (d.head + cap - 1) mod cap;
  d.buf.(d.head) <- Some x;
  d.len <- d.len + 1

let pop_front d =
  if d.len = 0 then None
  else begin
    let x = d.buf.(d.head) in
    d.buf.(d.head) <- None;
    d.head <- (d.head + 1) mod Array.length d.buf;
    d.len <- d.len - 1;
    x
  end

let pop_back d =
  if d.len = 0 then None
  else begin
    let cap = Array.length d.buf in
    let i = (d.head + d.len - 1) mod cap in
    let x = d.buf.(i) in
    d.buf.(i) <- None;
    d.len <- d.len - 1;
    x
  end

let peek_front d = if d.len = 0 then None else d.buf.(d.head)

let peek_back d =
  if d.len = 0 then None
  else d.buf.((d.head + d.len - 1) mod Array.length d.buf)

let clear d =
  Array.fill d.buf 0 (Array.length d.buf) None;
  d.head <- 0;
  d.len <- 0

let iter f d =
  let cap = Array.length d.buf in
  for i = 0 to d.len - 1 do
    match d.buf.((d.head + i) mod cap) with
    | Some x -> f x
    | None -> assert false
  done

let exists p d =
  let cap = Array.length d.buf in
  let rec loop i =
    if i >= d.len then false
    else
      match d.buf.((d.head + i) mod cap) with
      | Some x -> p x || loop (i + 1)
      | None -> assert false
  in
  loop 0

let to_list d =
  let acc = ref [] in
  let cap = Array.length d.buf in
  for i = d.len - 1 downto 0 do
    match d.buf.((d.head + i) mod cap) with
    | Some x -> acc := x :: !acc
    | None -> assert false
  done;
  !acc

let of_list l =
  let d = create ~capacity:(max 16 (List.length l)) () in
  List.iter (push_back d) l;
  d
