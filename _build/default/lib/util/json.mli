(** Minimal JSON implementation for configuration files (Table I of the
    paper: "a configuration ... managed via a JSON file distributed to every
    node"). Supports the full JSON grammar except surrogate-pair unicode
    escapes, which are preserved verbatim. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a message that includes the offset. *)

val of_string : string -> t

val to_string : ?indent:bool -> t -> string

(** Accessors raise [Invalid_argument] with the member name on shape
    mismatch, so configuration errors carry context. *)

val member : string -> t -> t
(** [member key obj] is the value bound to [key], or [Null] if absent. *)

val to_int : t -> int
(** Accepts [Int] and integral [Float]. *)

val to_float : t -> float

val to_bool : t -> bool

val get_string : t -> string

val to_list : t -> t list
