(* Entries carry an insertion sequence number so that equal keys pop in FIFO
   order: the simulator depends on this for deterministic replay. *)
type 'a entry = { value : 'a; seq : int }

type 'a t = {
  mutable buf : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
  cmp : 'a -> 'a -> int;
}

let create ?(capacity = 64) ~cmp () =
  if capacity <= 0 then invalid_arg "Heap.create: capacity must be positive";
  { buf = Array.make capacity None; len = 0; next_seq = 0; cmp }

let length h = h.len
let is_empty h = h.len = 0

let entry_cmp h a b =
  let c = h.cmp a.value b.value in
  if c <> 0 then c else compare a.seq b.seq

let get h i =
  match h.buf.(i) with Some e -> e | None -> assert false

let swap h i j =
  let tmp = h.buf.(i) in
  h.buf.(i) <- h.buf.(j);
  h.buf.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp h (get h i) (get h parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && entry_cmp h (get h l) (get h !smallest) < 0 then smallest := l;
  if r < h.len && entry_cmp h (get h r) (get h !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  if h.len = Array.length h.buf then begin
    let buf = Array.make (2 * h.len) None in
    Array.blit h.buf 0 buf 0 h.len;
    h.buf <- buf
  end;
  h.buf.(h.len) <- Some { value = x; seq = h.next_seq };
  h.next_seq <- h.next_seq + 1;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = get h 0 in
    h.len <- h.len - 1;
    h.buf.(0) <- h.buf.(h.len);
    h.buf.(h.len) <- None;
    if h.len > 0 then sift_down h 0;
    Some top.value
  end

let peek h = if h.len = 0 then None else Some (get h 0).value

let clear h =
  Array.fill h.buf 0 (Array.length h.buf) None;
  h.len <- 0
