(** Plain-text table rendering for the benchmark harness: every reproduced
    paper table/figure is printed as an aligned ASCII table or series. *)

val render : header:string list -> rows:string list list -> string
(** [render ~header ~rows] is an aligned table with a separator under the
    header. Rows shorter than the header are padded with empty cells. *)

val print : header:string list -> rows:string list list -> unit

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting, default 2 decimals. *)

val fmt_si : float -> string
(** Human-readable magnitude: [fmt_si 131_000.0 = "131.0k"]. *)
