let pad_row width_count row =
  let len = List.length row in
  if len >= width_count then row
  else row @ List.init (width_count - len) (fun _ -> "")

let render ~header ~rows =
  let cols = List.length header in
  let rows = List.map (pad_row cols) rows in
  let widths = Array.make cols 0 in
  let account row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  account header;
  List.iter account rows;
  let buf = Buffer.create 1024 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Array.iter
    (fun w -> Buffer.add_string buf (String.make w '-' ^ "  "))
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ~header ~rows = print_string (render ~header ~rows)

let fmt_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let fmt_si f =
  let abs = Float.abs f in
  if abs >= 1e9 then Printf.sprintf "%.1fG" (f /. 1e9)
  else if abs >= 1e6 then Printf.sprintf "%.1fM" (f /. 1e6)
  else if abs >= 1e3 then Printf.sprintf "%.1fk" (f /. 1e3)
  else Printf.sprintf "%.1f" f
