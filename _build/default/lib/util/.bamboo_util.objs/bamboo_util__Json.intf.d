lib/util/json.mli:
