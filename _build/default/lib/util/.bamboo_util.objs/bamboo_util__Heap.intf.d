lib/util/heap.mli:
