lib/util/rng.mli:
