lib/util/deque.mli:
