lib/util/stats.mli:
