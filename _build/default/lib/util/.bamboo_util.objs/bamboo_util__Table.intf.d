lib/util/table.mli:
