lib/util/rng.ml: Array Int32 Int64
