(** Deterministic pseudo-random number generator (PCG-XSH-RR 64/32).

    Every stochastic component of the simulator draws from an explicit [t]
    so that experiments are reproducible from a single seed and independent
    streams can be split off for clients, links and leaders without
    cross-contamination. *)

type t

val create : seed:int -> t
(** [create ~seed] is a generator determined entirely by [seed]. *)

val split : t -> t
(** [split t] derives an independent stream from [t], advancing [t]. *)

val copy : t -> t

val bits32 : t -> int32
(** Next raw 32 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int64 : t -> int64 -> int64
(** [int64 t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
