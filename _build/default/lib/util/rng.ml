(* PCG-XSH-RR 64/32 (O'Neill 2014): 64-bit LCG state, 32-bit output with a
   random rotation. Small, fast, and passes statistical test batteries far
   beyond what the simulator demands. *)

type t = { mutable state : int64; incr : int64 }

let multiplier = 6364136223846793005L

let step t = t.state <- Int64.add (Int64.mul t.state multiplier) t.incr

let output state =
  let xorshifted =
    Int64.to_int32
      (Int64.shift_right_logical
         (Int64.logxor (Int64.shift_right_logical state 18) state)
         27)
  in
  let rot = Int64.to_int (Int64.shift_right_logical state 59) land 31 in
  Int32.logor
    (Int32.shift_right_logical xorshifted rot)
    (Int32.shift_left xorshifted ((-rot) land 31))

let make ~state ~incr =
  (* The increment must be odd for the LCG to have full period. *)
  let incr = Int64.logor (Int64.shift_left incr 1) 1L in
  let t = { state = 0L; incr } in
  step t;
  t.state <- Int64.add t.state state;
  step t;
  t

let create ~seed =
  make ~state:(Int64.of_int seed) ~incr:0xda3e39cb94b95bdbL

let bits32 t =
  let s = t.state in
  step t;
  output s

let copy t = { state = t.state; incr = t.incr }

let split t =
  let hi = Int64.of_int32 (bits32 t) in
  let lo = Int64.of_int32 (bits32 t) in
  let mix a = Int64.logand a 0xffffffffL in
  make
    ~state:(Int64.logor (Int64.shift_left (mix hi) 32) (mix lo))
    ~incr:(Int64.add (Int64.mul (mix lo) 2654435769L) (mix hi))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let limit = Int64.sub 4294967296L (Int64.rem 4294967296L b) in
  let rec loop () =
    let r = Int64.logand (Int64.of_int32 (bits32 t)) 0xffffffffL in
    if r < limit then Int64.to_int (Int64.rem r b) else loop ()
  in
  loop ()

let int64 t bound =
  if bound <= 0L then invalid_arg "Rng.int64: bound must be positive";
  let rec loop () =
    let hi = Int64.logand (Int64.of_int32 (bits32 t)) 0xffffffffL in
    let lo = Int64.logand (Int64.of_int32 (bits32 t)) 0xffffffffL in
    let r =
      Int64.logand (Int64.logor (Int64.shift_left hi 32) lo) Int64.max_int
    in
    (* Accept the low bits unless we land in the biased tail. *)
    let m = Int64.rem r bound in
    if Int64.sub r m <= Int64.sub Int64.max_int (Int64.sub bound 1L) then m
    else loop ()
  in
  loop ()

let float t x =
  let r = Int64.logand (Int64.of_int32 (bits32 t)) 0xffffffffL in
  Int64.to_float r /. 4294967296.0 *. x

let bool t = Int32.logand (bits32 t) 1l = 1l

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
