(** Mutable double-ended queue backed by a growable ring buffer.

    Used by the mempool (Section III-E of the paper): new transactions are
    pushed at the back while transactions recovered from forked blocks are
    pushed at the front. All operations are amortized O(1) except [to_list],
    [iter] and [exists], which are O(n). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty deque. [capacity] is the initial ring size
    (grown on demand); it must be positive. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit

val push_front : 'a t -> 'a -> unit

val pop_front : 'a t -> 'a option

val pop_back : 'a t -> 'a option

val peek_front : 'a t -> 'a option

val peek_back : 'a t -> 'a option

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f d] applies [f] front-to-back. *)

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list
(** [to_list d] is the elements front-to-back. *)

val of_list : 'a list -> 'a t
