(** Mutable binary min-heap, ordered by a user-supplied comparison.

    Backs the discrete-event simulator's event queue. Ties are broken by
    insertion order (FIFO among equal keys), which the simulator relies on
    for deterministic replay. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap whose minimum is with respect to
    [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. Among elements that
    compare equal, the one pushed first is returned first. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit
