lib/mempool/mempool.mli: Bamboo_types Tx
