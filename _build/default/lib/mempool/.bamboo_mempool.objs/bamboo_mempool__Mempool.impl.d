lib/mempool/mempool.ml: Bamboo_types Bamboo_util Hashtbl List Tx
