let make ctx chain =
  Chained_common.make ~name:"hotstuff" ~lock_chain:2 ~commit_chain:3
    ~tc_responsive:false ctx chain
