(** The Safety-module API (paper §III-C): "the safety module defines all
    the interfaces needed to implement the consensus core. It consists of
    the voting rule, commit rule, state updating rule, and the proposing
    rule."

    A protocol is a value of type {!t} built against a {!ctx} (static
    cluster facts) and a {!chain} (read access to the node's block forest
    and certification map). The node engine owns message plumbing, the
    forest, the mempool, quorums and the pacemaker; prototyping a protocol
    means providing the four rules — exactly the shaded boxes of the
    paper's Figure 4. Byzantine strategies are implemented by wrapping the
    Proposing rule ({!Byzantine}). *)

open Bamboo_types

type ctx = {
  n : int;  (** Cluster size. *)
  self : Ids.replica;
  registry : Bamboo_crypto.Sig.registry;
  quorum : int;  (** Quorum threshold (2f+1). *)
}

type chain = {
  forest : Bamboo_forest.Forest.t;
  qc_of : Ids.hash -> Qc.t option;
      (** Certification map maintained by the node: the QC for a block if
          any QC for it has been seen ("a block with a valid QC is
          considered certified"). *)
}

type target = { parent : Block.t; justify : Qc.t }
(** What the Proposing rule decides: which block to extend and which QC to
    embed. The node engine supplies the transaction batch and assembles the
    actual block. *)

type t = {
  name : string;
  propose : view:Ids.view -> tc:Tcert.t option -> target option;
      (** Proposing rule. [tc] is present when the view was entered through
          a timeout certificate. [None] means abstain from proposing (the
          silence strategy). *)
  should_vote : block:Block.t -> tc:Tcert.t option -> bool;
      (** Voting rule for a structurally valid block of the current view
          whose parent is present in the forest. *)
  on_vote_sent : Block.t -> unit;
      (** State-updating hook: called right after the node casts a vote
          (advances the last-voted view). *)
  on_qc : Qc.t -> Ids.hash option;
      (** State-updating + commit rule: called exactly once per newly
          certified block (QCs arrive via vote aggregation, embedded
          [justify] pointers, or timeout certificates). Returns the hash of
          a block that the commit rule now finalizes, if any. *)
  note_view_abandoned : Ids.view -> unit;
      (** Called when the pacemaker abandons a view after a local timeout;
          the protocol must never vote in that view afterwards. *)
  high_qc : unit -> Qc.t;
      (** Highest QC known (the [hQC] state variable). *)
  timeout_high_qc : unit -> Qc.t;
      (** The QC advertised in pacemaker TIMEOUT messages. Honest protocols
          return {!high_qc}; Byzantine wrappers return only the highest
          {e publicly embedded} QC so that a withheld certificate is not
          leaked through the pacemaker. *)
  locked : unit -> (Ids.hash * Ids.view) option;
      (** The locked block, for tests and tracing; [None] when the protocol
          has no lock concept (Streamlet). *)
  last_voted_view : unit -> Ids.view;
  vote_broadcast : bool;
      (** Votes go to everyone (Streamlet) instead of the next leader. *)
  echo : bool;
      (** Re-broadcast first receipt of proposals and votes (Streamlet's
          O(n^3) echoing). *)
}

val genesis_qc : Qc.t
(** The QC certifying the genesis block. *)
