open Bamboo_types

type ctx = {
  n : int;
  self : Ids.replica;
  registry : Bamboo_crypto.Sig.registry;
  quorum : int;
}

type chain = {
  forest : Bamboo_forest.Forest.t;
  qc_of : Ids.hash -> Qc.t option;
}

type target = { parent : Block.t; justify : Qc.t }

type t = {
  name : string;
  propose : view:Ids.view -> tc:Tcert.t option -> target option;
  should_vote : block:Block.t -> tc:Tcert.t option -> bool;
  on_vote_sent : Block.t -> unit;
  on_qc : Qc.t -> Ids.hash option;
  note_view_abandoned : Ids.view -> unit;
  high_qc : unit -> Qc.t;
  timeout_high_qc : unit -> Qc.t;
  locked : unit -> (Ids.hash * Ids.view) option;
  last_voted_view : unit -> Ids.view;
  vote_broadcast : bool;
  echo : bool;
}

let genesis_qc = Qc.genesis ~block:Block.genesis_hash
