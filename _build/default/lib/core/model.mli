(** The queuing-theoretic performance model of paper Section V.

    Estimates happy-path latency and saturation throughput of a cBFT
    protocol from machine and network parameters:

    - [t_L]: client-replica round trip (= mu).
    - [t_NIC = 2m/b]: block serialization through sender and receiver NICs.
    - [t_Q]: quorum-collection delay — the expected [(2N/3 - 1)]-th order
      statistic of [N-1] i.i.d. normal one-way delays (Section V-B2).
    - [t_s = 3 t_CPU + 2 t_NIC + t_Q] (Eq. 4): block service time.
    - [t_commit]: [2 t_s] for HotStuff's three-chain rule, [t_s] for
      two-chain HotStuff and Streamlet (Section V-D).
    - [w_Q]: M/D/1 waiting time (Eq. 5) with effective service rate
      [1/(N t_s)] per replica and block arrival rate [lambda/(n N)].
    - [latency = t_L + t_s + t_commit + w_Q] (Eq. 3).

    Parameters are drawn from a {!Config.t} so that model and simulator are
    driven by the same numbers, as in the paper's Fig. 8 comparison. *)

type t = {
  n : int;  (** Cluster size. *)
  t_l : float;
  t_cpu : float;
  t_nic : float;
  t_q : float;
  t_s : float;
  t_commit : float;
  saturation_rate : float;
      (** Transaction arrival rate at which utilization reaches 1. *)
}

val build : config:Config.t -> t
(** Derives all building blocks for [config]'s protocol. [t_Q] is computed
    by deterministic numerical integration
    ({!Bamboo_util.Dist.order_statistic_mean_numeric}). *)

val t_q_monte_carlo : config:Config.t -> trials:int -> float
(** The same [t_Q] by Monte Carlo simulation (the paper's alternative);
    used by tests to cross-validate the numerical integral. *)

val sim_saturation_rate : config:Config.t -> float
(** Saturation estimate for the {e implementation} rather than the paper's
    Eq. 4: additionally accounts for the leader serializing [n-1] block
    copies through its single NIC, per-vote signature verification at the
    aggregating leader, and (for echoing protocols) the O(n) per-replica
    echo traffic. The paper's model deliberately omits these (§V-E notes
    such differences are "captured by the measurements of system
    parameters"); experiments use this estimate to place workloads below
    true capacity. *)

val latency : t -> rate:float -> float option
(** [latency m ~rate] is Eq. 3 at transaction arrival rate [rate] (tx/s);
    [None] when the system is beyond saturation (utilization >= 1). *)

val curve : t -> rates:float list -> (float * float) list
(** [(rate, latency)] points for all pre-saturation rates — the model
    lines of Fig. 8. *)
