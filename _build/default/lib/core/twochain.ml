let make ctx chain =
  Chained_common.make ~name:"twochain" ~lock_chain:1 ~commit_chain:2
    ~tc_responsive:false ctx chain
