(** Leader election. cBFT protocols are "driven by leader nodes and operate
    in a view-by-view manner"; each view has one designated leader, known
    to every replica.

    Three schemes are provided, matching the design choices the paper's
    Section V-E calls out: round-robin rotation (Bamboo's default when
    [master = 0]), a static leader, and a hash-based choice. *)

type t

val create : Config.election -> n:int -> t

val leader : t -> view:Bamboo_types.Ids.view -> Bamboo_types.Ids.replica
(** Deterministic: all replicas agree on the leader of any view. *)

val is_leader : t -> view:Bamboo_types.Ids.view -> self:Bamboo_types.Ids.replica -> bool
