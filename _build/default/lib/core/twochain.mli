(** Two-chain HotStuff (2CHS, paper §II-C): HotStuff with the lock on the
    head of the highest one-chain and a two-chain commit rule, like
    Tendermint and Casper. One round of voting cheaper than HotStuff but
    not responsive: after a view change a leader should wait out the
    maximal network delay (the [Wait_timeout] propose policy) to guarantee
    progress. *)

val make : Safety.ctx -> Safety.chain -> Safety.t
