open Bamboo_types
module Forest = Bamboo_forest.Forest

(* The highest QC that has been made public: the maximum over the justify
   pointers embedded in broadcast blocks (plus, at propose time, a TC's
   aggregated QC). QCs an attacker assembled from votes but never embedded
   are invisible to honest replicas; forking and silence both exploit
   exactly that gap. *)
let public_high (chain : Safety.chain) ?tc () =
  let head = Forest.last_committed chain.Safety.forest in
  let base =
    match chain.Safety.qc_of head.Block.hash with
    | Some qc -> Qc.max_by_view head.Block.justify qc
    | None -> head.Block.justify
  in
  let embedded =
    Forest.fold_uncommitted chain.Safety.forest
      (fun acc (b : Block.t) -> Qc.max_by_view acc b.justify)
      base
  in
  match tc with
  | Some (tc : Tcert.t) -> Qc.max_by_view embedded tc.high_qc
  | None -> embedded

let silence ~(chain : Safety.chain) (base : Safety.t) =
  {
    base with
    Safety.name = base.Safety.name ^ "+silence";
    propose = (fun ~view:_ ~tc:_ -> None);
    (* Withholding the proposal must also withhold the QC assembled from
       the previous view's votes — including through pacemaker timeouts —
       or the attack loses nothing (Fig. 6's "loss of QC3"). *)
    timeout_high_qc = (fun () -> public_high chain ());
  }

let fork ~(chain : Safety.chain) ~fork_depth (base : Safety.t) =
  if fork_depth < 1 then invalid_arg "Byzantine.fork: depth must be >= 1";
  let propose ~view ~tc =
    match base.Safety.propose ~view ~tc with
    | None -> None
    | Some honest ->
        (* Target the deepest ancestor that honest replicas will still vote
           for: their lock trails the highest *public* QC by
           [fork_depth - 1] certified links, so build on the ancestor that
           many links below the publicly certified tip. *)
        let high = public_high chain ?tc:(Option.map Fun.id tc) () in
        let rec descend (b : Block.t) depth =
          if depth = 0 then Some b
          else
            match Forest.find chain.Safety.forest b.parent with
            | Some p -> descend p (depth - 1)
            | None -> None
        in
        let committed = Forest.last_committed chain.Safety.forest in
        let viable (b : Block.t) =
          b.height > committed.height || String.equal b.hash committed.hash
        in
        let forked =
          match Forest.find chain.Safety.forest high.block with
          | None -> None
          | Some public_tip -> (
              match descend public_tip (fork_depth - 1) with
              | Some ancestor when viable ancestor -> (
                  match chain.Safety.qc_of ancestor.hash with
                  | Some justify -> Some Safety.{ parent = ancestor; justify }
                  | None -> None)
              | Some _ | None -> None)
        in
        (match forked with Some t -> Some t | None -> Some honest)
  in
  {
    base with
    Safety.name = base.Safety.name ^ "+fork";
    propose;
    timeout_high_qc = (fun () -> public_high chain ());
  }

let fork_depth_for = function
  | Config.Hotstuff -> 2
  | Config.Twochain | Config.Fasthotstuff -> 1
  | Config.Streamlet -> 1

let apply strategy protocol ~chain base =
  match (strategy, protocol) with
  | Config.Honest, _ -> base
  | Config.Silence, _ -> silence ~chain base
  | Config.Fork, Config.Streamlet ->
      (* Forking is futile against the longest-notarized-chain voting rule:
         honest replicas refuse any proposal that does not extend the
         longest chain, so the best the attacker can do is behave (Fig. 13's
         flat Streamlet line). *)
      base
  | Config.Fork, (Config.Hotstuff | Config.Twochain | Config.Fasthotstuff) ->
      fork ~chain ~fork_depth:(fork_depth_for protocol) base
