(** Shared rule machinery for the HotStuff protocol family.

    HotStuff, two-chain HotStuff and Fast-HotStuff differ only in the chain
    length their locks and commits require (paper §II-B/C, Figure 3) and in
    how view changes regain responsiveness; everything else — the state
    variables [lvView], [lBlock], [hQC], the proposing rule "build on hQC",
    and the voting rule — is common and implemented once here. *)

open Bamboo_types

val make :
  name:string ->
  lock_chain:int ->
  commit_chain:int ->
  tc_responsive:bool ->
  Safety.ctx ->
  Safety.chain ->
  Safety.t
(** [make ~name ~lock_chain ~commit_chain ~tc_responsive ctx chain]:
    lock on the head of the highest [lock_chain]-chain (2 for HotStuff, 1
    for the two-chain variants); commit the head of any
    [commit_chain]-chain (3 for HotStuff, 2 for the two-chain variants).
    With [tc_responsive], accept a proposal that conflicts with the lock
    when it carries a TC for the previous view whose aggregated high-QC
    justifies it (Fast-HotStuff's responsive view change). *)

val certified_chain_head :
  Safety.chain -> tip:Block.t -> length:int -> Block.t option
(** [certified_chain_head chain ~tip ~length] walks parent links down from
    [tip]: if [tip] and its [length - 1] immediate ancestors are all
    certified, the deepest of them (the chain head) is returned. Exposed
    for tests. *)
