open Bamboo_types
module Forest = Bamboo_forest.Forest

type state = {
  mutable lv_view : Ids.view;
  mutable high_qc : Qc.t;
  mutable best_tip : Ids.hash; (* tip of the longest notarized chain *)
  mutable best_height : Ids.height;
}

let make (_ctx : Safety.ctx) (chain : Safety.chain) : Safety.t =
  let st =
    {
      lv_view = 0;
      high_qc = Safety.genesis_qc;
      best_tip = Block.genesis_hash;
      best_height = 0;
    }
  in
  let propose ~view:_ ~tc:_ =
    match Forest.find chain.forest st.best_tip with
    | None -> None
    | Some parent -> (
        match chain.qc_of parent.hash with
        | Some justify -> Some Safety.{ parent; justify }
        | None -> None)
  in
  let should_vote ~(block : Block.t) ~tc:_ =
    (* First proposal of the view, extending a longest notarized chain:
       the parent must be notarized and of maximal notarized height. *)
    block.view > st.lv_view
    && chain.qc_of block.parent <> None
    && block.height > st.best_height
  in
  let on_vote_sent (block : Block.t) = st.lv_view <- max st.lv_view block.view in
  let on_qc (qc : Qc.t) =
    st.high_qc <- Qc.max_by_view st.high_qc qc;
    if qc.height > st.best_height then begin
      st.best_height <- qc.height;
      st.best_tip <- qc.block
    end;
    (* Commit rule: three notarized blocks in consecutive views, directly
       linked, finalize the middle one (and thus the first two of the
       three plus their prefix). QCs can be assembled out of order, so the
       newly notarized block is tried both as the tip and as the middle of
       a triple. *)
    let notarized (b : Block.t) = chain.qc_of b.hash <> None in
    let as_tip (b : Block.t) =
      match Forest.parent chain.forest b with
      | None -> None
      | Some p -> (
          match Forest.parent chain.forest p with
          | None -> None
          | Some g ->
              if
                notarized p && notarized g
                && p.view = b.view - 1
                && g.view = p.view - 1
                && p.height > 0
              then Some p.hash
              else None)
    in
    let as_middle (b : Block.t) =
      match Forest.parent chain.forest b with
      | None -> None
      | Some g ->
          if notarized g && g.view = b.view - 1 && b.height > 0 then
            List.find_map
              (fun (c : Block.t) ->
                if notarized c && c.view = b.view + 1 then Some b.hash else None)
              (Forest.children chain.forest b.hash)
          else None
    in
    match Forest.find chain.forest qc.block with
    | None -> None
    | Some b -> ( match as_tip b with Some h -> Some h | None -> as_middle b)
  in
  let note_view_abandoned view = st.lv_view <- max st.lv_view view in
  Safety.
    {
      name = "streamlet";
      propose;
      should_vote;
      on_vote_sent;
      on_qc;
      note_view_abandoned;
      high_qc = (fun () -> st.high_qc);
      timeout_high_qc = (fun () -> st.high_qc);
      locked = (fun () -> None);
      last_voted_view = (fun () -> st.lv_view);
      vote_broadcast = true;
      echo = true;
    }
