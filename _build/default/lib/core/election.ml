type scheme = Config.election

type t = { scheme : scheme; n : int }

let create scheme ~n =
  if n <= 0 then invalid_arg "Election.create: n must be positive";
  (match scheme with
  | Config.Static i when i < 0 || i >= n ->
      invalid_arg "Election.create: static leader out of range"
  | Config.Static _ | Config.Rotation | Config.Hashed -> ());
  { scheme; n }

let leader t ~view =
  match t.scheme with
  | Config.Rotation -> view mod t.n
  | Config.Static i -> i
  | Config.Hashed ->
      (* Derive the leader from a hash of the view so that the sequence is
         unpredictable but agreed upon by every replica. *)
      let digest = Bamboo_crypto.Sha256.digest (Printf.sprintf "leader|%d" view) in
      let v =
        (Char.code digest.[0] lsl 24)
        lor (Char.code digest.[1] lsl 16)
        lor (Char.code digest.[2] lsl 8)
        lor Char.code digest.[3]
      in
      v mod t.n

let is_leader t ~view ~self = leader t ~view = self
