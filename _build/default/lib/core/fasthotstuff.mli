(** Fast-HotStuff (Jalalzai, Niu, Feng 2020): a two-chain commit rule made
    responsive. After a timeout, the new leader's proposal carries the
    timeout certificate, whose aggregated high-QC proves that no higher QC
    can exist at any correct replica; replicas therefore accept a proposal
    built on it even when it conflicts with their lock, without waiting the
    maximal network delay.

    Built with the framework to demonstrate prototyping beyond the paper's
    evaluated trio; see DESIGN.md §5. *)

val make : Safety.ctx -> Safety.chain -> Safety.t
