module Stats = Bamboo_util.Stats

type t = {
  warmup : float;
  horizon : float;
  bucket : float;
  latencies : Stats.t;
  intervals : Stats.t;
  mutable committed_txs : int;
  mutable committed_blocks : int;
  mutable forked_blocks : int;
  appended : (string, unit) Hashtbl.t;
      (* hashes of blocks the observer accepted inside the window *)
  mutable matched_commits : int;
      (* committed blocks that were appended inside the window *)
  mutable matched_forks : int;
      (* overwritten blocks that were appended inside the window *)
  mutable first_view : int;
  mutable last_view : int;
  buckets : (int, int) Hashtbl.t; (* bucket index -> committed txs *)
  mutable max_bucket : int;
}

type summary = {
  protocol : string;
  duration : float;
  committed_txs : int;
  committed_blocks : int;
  forked_blocks : int;
  throughput : float;
  latency_mean : float;
  latency_p50 : float;
  latency_p95 : float;
  latency_p99 : float;
  latency_samples : int;
  views : int;
  cgr : float;
  block_interval : float;
  rejected_txs : int;
  safety_violation : bool;
}

let create ~warmup ~horizon ~bucket =
  if horizon <= warmup then invalid_arg "Metrics.create: horizon before warmup";
  if bucket <= 0.0 then invalid_arg "Metrics.create: bucket must be positive";
  {
    warmup;
    horizon;
    bucket;
    latencies = Stats.create ();
    intervals = Stats.create ();
    committed_txs = 0;
    committed_blocks = 0;
    forked_blocks = 0;
    appended = Hashtbl.create 1024;
    matched_commits = 0;
    matched_forks = 0;
    first_view = 0;
    last_view = 0;
    buckets = Hashtbl.create 64;
    max_bucket = 0;
  }

let in_window t ~now = now >= t.warmup && now < t.horizon

let record_latency t ~now ~issued_at ~latency =
  if issued_at >= t.warmup && now < t.horizon then
    Stats.add t.latencies latency

let record_commit t ~now ~ntxs ~nblocks ~hashes =
  (* The time series spans the whole run; aggregate counters only the
     measurement window. *)
  let idx = int_of_float (now /. t.bucket) in
  let prev = match Hashtbl.find_opt t.buckets idx with None -> 0 | Some v -> v in
  Hashtbl.replace t.buckets idx (prev + ntxs);
  if idx > t.max_bucket then t.max_bucket <- idx;
  if in_window t ~now then begin
    t.committed_txs <- t.committed_txs + ntxs;
    t.committed_blocks <- t.committed_blocks + nblocks;
    List.iter
      (fun h -> if Hashtbl.mem t.appended h then t.matched_commits <- t.matched_commits + 1)
      hashes
  end

let record_block_interval t ~now ~views =
  if in_window t ~now then Stats.add t.intervals (float_of_int views)

let record_fork t ~now ~nblocks ~hashes =
  if in_window t ~now then begin
    t.forked_blocks <- t.forked_blocks + nblocks;
    List.iter
      (fun h ->
        if Hashtbl.mem t.appended h then
          t.matched_forks <- t.matched_forks + 1)
      hashes
  end

let record_append t ~now ~hash =
  if in_window t ~now then Hashtbl.replace t.appended hash ()

let set_view_span t ~first ~last =
  t.first_view <- first;
  t.last_view <- last

let summarize t ~protocol ~rejected_txs ~safety_violation =
  let duration = t.horizon -. t.warmup in
  let views = max 0 (t.last_view - t.first_view) in
  {
    protocol;
    duration;
    committed_txs = t.committed_txs;
    committed_blocks = t.committed_blocks;
    forked_blocks = t.forked_blocks;
    throughput = float_of_int t.committed_txs /. duration;
    latency_mean = Stats.mean t.latencies;
    latency_p50 = Stats.percentile t.latencies 50.0;
    latency_p95 = Stats.percentile t.latencies 95.0;
    latency_p99 = Stats.percentile t.latencies 99.0;
    latency_samples = Stats.count t.latencies;
    views;
    cgr =
      (* Of the blocks the observer accepted inside the window, the
         fraction that survived to commitment: exactly 1.0 when nothing is
         overwritten. Blocks accepted near the horizon that have not yet
         had time to commit are excluded from the denominator (their
         commit-or-overwrite outcome is unknown). *)
      (let resolved = t.matched_commits + t.matched_forks in
       if resolved = 0 then 0.0
       else float_of_int t.matched_commits /. float_of_int resolved);
    block_interval = Stats.mean t.intervals;
    rejected_txs;
    safety_violation;
  }

let throughput_series t =
  List.init (t.max_bucket + 1) (fun i ->
      let txs = match Hashtbl.find_opt t.buckets i with None -> 0 | Some v -> v in
      (float_of_int i *. t.bucket, float_of_int txs /. t.bucket))

let pp_summary fmt s =
  Format.fprintf fmt
    "%s: %.0f tx/s, latency %.2f ms (p95 %.2f), CGR %.3f, BI %.2f, %d forked%s"
    s.protocol s.throughput
    (s.latency_mean *. 1000.0)
    (s.latency_p95 *. 1000.0)
    s.cgr s.block_interval s.forked_blocks
    (if s.safety_violation then " [SAFETY VIOLATION]" else "")
