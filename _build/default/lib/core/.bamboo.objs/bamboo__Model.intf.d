lib/core/model.mli: Config
