lib/core/election.mli: Bamboo_types Config
