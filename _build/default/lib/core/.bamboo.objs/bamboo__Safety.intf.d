lib/core/safety.mli: Bamboo_crypto Bamboo_forest Bamboo_types Block Ids Qc Tcert
