lib/core/pacemaker.ml: Bamboo_types Ids Qc Tcert
