lib/core/runtime.mli: Config Metrics Workload
