lib/core/safety.ml: Bamboo_crypto Bamboo_forest Bamboo_types Block Ids Qc Tcert
