lib/core/streamlet.ml: Bamboo_forest Bamboo_types Block Ids List Qc Safety
