lib/core/runtime.ml: Array Bamboo_crypto Bamboo_forest Bamboo_sim Bamboo_types Bamboo_util Block Config Hashtbl List Message Metrics Node String Timeout_msg Tx Vote Workload
