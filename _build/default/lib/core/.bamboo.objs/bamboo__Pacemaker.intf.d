lib/core/pacemaker.mli: Bamboo_types Ids Qc Tcert
