lib/core/kvstore.ml: Bamboo_crypto Bamboo_types Hashtbl List Printf String
