lib/core/hotstuff.ml: Chained_common
