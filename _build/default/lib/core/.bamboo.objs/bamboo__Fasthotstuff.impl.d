lib/core/fasthotstuff.ml: Chained_common
