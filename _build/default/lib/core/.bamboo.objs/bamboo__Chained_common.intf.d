lib/core/chained_common.mli: Bamboo_types Block Safety
