lib/core/threaded_runtime.ml: Array Bamboo_crypto Bamboo_forest Bamboo_network Bamboo_types Bamboo_util Block Config Float Hashtbl Kvstore List Mutex Node String Thread Tx Unix
