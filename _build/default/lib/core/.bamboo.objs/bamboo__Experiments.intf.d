lib/core/experiments.mli: Config Metrics
