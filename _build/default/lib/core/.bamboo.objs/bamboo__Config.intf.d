lib/core/config.mli: Bamboo_util Format
