lib/core/experiments.ml: Bamboo_util Config Float List Metrics Model Printf Runtime String Workload
