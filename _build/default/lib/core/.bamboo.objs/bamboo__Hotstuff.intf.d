lib/core/hotstuff.mli: Safety
