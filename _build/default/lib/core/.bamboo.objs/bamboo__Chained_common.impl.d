lib/core/chained_common.ml: Bamboo_forest Bamboo_types Block Ids Qc Safety Tcert
