lib/core/byzantine.ml: Bamboo_forest Bamboo_types Block Config Fun Option Qc Safety String Tcert
