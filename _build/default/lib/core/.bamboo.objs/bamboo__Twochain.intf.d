lib/core/twochain.mli: Safety
