lib/core/byzantine.mli: Bamboo_types Config Safety
