lib/core/config.ml: Bamboo_util Format List Printf
