lib/core/workload.mli:
