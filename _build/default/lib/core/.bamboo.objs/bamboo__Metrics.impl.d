lib/core/metrics.ml: Bamboo_util Format Hashtbl List
