lib/core/workload.ml: Printf
