lib/core/node.mli: Bamboo_crypto Bamboo_forest Bamboo_types Block Config Ids Message Qc Tx
