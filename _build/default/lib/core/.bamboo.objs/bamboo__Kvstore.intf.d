lib/core/kvstore.mli: Bamboo_types
