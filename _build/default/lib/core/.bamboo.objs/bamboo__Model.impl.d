lib/core/model.ml: Bamboo_util Config List
