lib/core/threaded_runtime.mli: Bamboo_network Bamboo_types Config
