lib/core/twochain.ml: Chained_common
