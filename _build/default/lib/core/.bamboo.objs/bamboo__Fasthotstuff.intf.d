lib/core/fasthotstuff.mli: Safety
