lib/core/streamlet.mli: Safety
