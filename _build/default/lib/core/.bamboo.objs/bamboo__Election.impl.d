lib/core/election.ml: Bamboo_crypto Char Config Printf String
