open Bamboo_types
module Forest = Bamboo_forest.Forest

type state = {
  mutable lv_view : Ids.view; (* last voted (or abandoned) view *)
  mutable high_qc : Qc.t;
  mutable lock : (Ids.hash * Ids.view) option; (* lBlock *)
}

let certified_chain_head (chain : Safety.chain) ~(tip : Block.t) ~length =
  let rec walk (b : Block.t) remaining =
    if chain.qc_of b.hash = None then None
    else if remaining = 1 then Some b
    else
      match Forest.find chain.forest b.parent with
      | Some p -> walk p (remaining - 1)
      | None -> None
  in
  if length <= 0 then invalid_arg "certified_chain_head: length must be positive";
  walk tip length

let lock_view st = match st.lock with None -> 0 | Some (_, v) -> v

let extends_lock (chain : Safety.chain) st (block : Block.t) =
  match st.lock with
  | None -> true (* still locked on genesis *)
  | Some (lock_hash, _) ->
      Forest.extends chain.forest ~descendant:block.hash ~ancestor:lock_hash

let make ~name ~lock_chain ~commit_chain ~tc_responsive (_ctx : Safety.ctx)
    (chain : Safety.chain) : Safety.t =
  let st = { lv_view = 0; high_qc = Safety.genesis_qc; lock = None } in
  let propose ~view:_ ~tc:_ =
    (* Proposing rule: build on the highest QC. The block it certifies is
       always present locally — hQC only advances for known blocks. *)
    match Forest.find chain.forest st.high_qc.block with
    | Some parent -> Some Safety.{ parent; justify = st.high_qc }
    | None -> None
  in
  let should_vote ~(block : Block.t) ~tc =
    (* Voting rule (paper §II-B): the view must be beyond the last voted
       one, and the block must extend the locked block or carry a justify
       QC from a higher view than the lock ("its parent block has a higher
       view than that of lBlock"). *)
    block.view > st.lv_view
    && (extends_lock chain st block
       || block.justify.view > lock_view st
       ||
       match tc with
       | Some (tc : Tcert.t) when tc_responsive ->
           (* Fast-HotStuff: a TC for the previous view proves that the
              aggregated high QC is the highest the quorum saw, so building
              on it is safe even across the lock. *)
           tc.view = block.view - 1 && block.justify.view >= tc.high_qc.view
       | Some _ | None -> false)
  in
  let on_vote_sent (block : Block.t) =
    st.lv_view <- max st.lv_view block.view
  in
  let on_qc (qc : Qc.t) =
    st.high_qc <- Qc.max_by_view st.high_qc qc;
    match Forest.find chain.forest qc.block with
    | None -> None
    | Some tip ->
        (* State updating: lock on the head of the highest lock_chain-chain
           ending at the newly certified block. *)
        (match certified_chain_head chain ~tip ~length:lock_chain with
        | Some head when head.view > lock_view st ->
            st.lock <- Some (head.hash, head.view)
        | Some _ | None -> ());
        (* Commit rule: a commit_chain-chain ending here finalizes its
           head and, by prefix finalization, all its ancestors. *)
        (match certified_chain_head chain ~tip ~length:commit_chain with
        | Some head when head.height > 0 -> Some head.hash
        | Some _ | None -> None)
  in
  let note_view_abandoned view = st.lv_view <- max st.lv_view view in
  Safety.
    {
      name;
      propose;
      should_vote;
      on_vote_sent;
      on_qc;
      note_view_abandoned;
      high_qc = (fun () -> st.high_qc);
      timeout_high_qc = (fun () -> st.high_qc);
      locked = (fun () -> st.lock);
      last_voted_view = (fun () -> st.lv_view);
      vote_broadcast = false;
      echo = false;
    }
