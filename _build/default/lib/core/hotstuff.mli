(** Chained HotStuff (paper §II-B).

    - State: [lBlock] = head of the highest two-chain, [lvView], [hQC].
    - Proposing: build on [hQC].
    - Voting: view beyond [lvView], and the block extends [lBlock] or its
      justify comes from a view above the lock's.
    - Commit: three-chain — when a block heads a chain of three directly
      linked certified blocks, it and its prefix are final.

    HotStuff is optimistically responsive: a correct leader makes progress
    at network speed without waiting for the maximum network delay. *)

val make : Safety.ctx -> Safety.chain -> Safety.t
