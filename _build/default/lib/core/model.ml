module Dist = Bamboo_util.Dist
module Rng = Bamboo_util.Rng

type t = {
  n : int;
  t_l : float;
  t_cpu : float;
  t_nic : float;
  t_q : float;
  t_s : float;
  t_commit : float;
  saturation_rate : float;
}

(* Wire size of a full block, mirroring Bamboo_types.Block.wire_size:
   120-byte header, a QC carrying a quorum of 64-byte signatures, and the
   transaction batch. *)
let block_bytes (cfg : Config.t) =
  let quorum = Config.quorum_size cfg in
  120 + (44 + (quorum * 64)) + (cfg.bsize * (16 + cfg.psize))

let vote_bytes = 120

(* The order-statistic parameters of Section V-B2: a quorum needs 2f votes
   beyond the leader's own, drawn from N-1 replicas; each vote arrives
   after one proposal-plus-vote round trip ~ Normal(2 mu, sqrt 2 sigma),
   plus any configured extra delay in both directions. *)
let order_stat_params (cfg : Config.t) =
  let n = cfg.n - 1 in
  let k = Config.quorum_size cfg - 1 in
  let mu = 2.0 *. (cfg.mu +. cfg.extra_delay_mu) in
  let sigma =
    sqrt 2.0 *. sqrt ((cfg.sigma ** 2.0) +. (cfg.extra_delay_sigma ** 2.0))
  in
  (n, k, mu, sigma)

let t_q_monte_carlo ~config ~trials =
  let n, k, mu, sigma = order_stat_params config in
  if k <= 0 then mu
  else
    let rng = Rng.create ~seed:(config.Config.seed + 7919) in
    Dist.order_statistic_mean rng ~n ~k ~mu ~sigma ~trials

let service_time (cfg : Config.t) ~t_q =
  let batch_cpu = float_of_int cfg.bsize *. cfg.cpu_per_tx in
  let propose_cpu = cfg.cpu_op +. batch_cpu in
  let replica_cpu = (2.0 *. cfg.cpu_op) +. batch_cpu in
  let quorum_cpu = float_of_int (Config.quorum_size cfg) *. cfg.cpu_op in
  let t_nic_block = 2.0 *. float_of_int (block_bytes cfg) /. cfg.bandwidth in
  let t_nic_vote = 2.0 *. float_of_int vote_bytes /. cfg.bandwidth in
  (* Eq. 4, with the three t_CPU terms made explicit about batching costs
     and the vote-path NIC term sized for votes rather than blocks. *)
  propose_cpu +. t_nic_block +. replica_cpu +. t_q +. t_nic_vote +. quorum_cpu

let commit_multiplier = function
  | Config.Hotstuff -> 2.0 (* three-chain: wait for two more certifications *)
  | Config.Twochain | Config.Fasthotstuff | Config.Streamlet -> 1.0

let build ~config =
  let n, k, mu, sigma = order_stat_params config in
  let t_q =
    if k <= 0 then mu
    else Dist.order_statistic_mean_numeric ~n ~k ~mu ~sigma
  in
  let t_s = service_time config ~t_q in
  let t_commit = commit_multiplier config.Config.protocol *. t_s in
  {
    n = config.Config.n;
    t_l = 2.0 *. config.Config.mu;
    t_cpu = config.Config.cpu_op;
    t_nic = 2.0 *. float_of_int (block_bytes config) /. config.Config.bandwidth;
    t_q;
    t_s;
    t_commit;
    saturation_rate = float_of_int config.Config.bsize /. t_s;
  }

let sim_saturation_rate ~config =
  let cfg : Config.t = config in
  let n = float_of_int cfg.n in
  let quorum = float_of_int (Config.quorum_size cfg) in
  let m = float_of_int (block_bytes cfg) in
  let batch_cpu = float_of_int cfg.bsize *. cfg.cpu_per_tx in
  let echo =
    match cfg.echo with
    | Some e -> e
    | None -> cfg.protocol = Config.Streamlet
  in
  let fanout_nic = (n -. 1.0) *. m /. cfg.bandwidth in
  (* Echoing floods every NIC with n-1 block copies in both directions and
     queues votes behind those bursts; the compounding grows with n
     (empirically ~ (2 + n/6) serializations on the critical path). *)
  let echo_nic =
    if echo then (2.0 +. (n /. 6.0)) *. (n -. 1.0) *. m /. cfg.bandwidth
    else 0.0
  in
  let t_view =
    (cfg.cpu_op +. batch_cpu) (* propose *)
    +. fanout_nic (* leader serializes n-1 copies *)
    +. (m /. cfg.bandwidth) (* receiver NIC *)
    +. echo_nic (* echo relays through every NIC *)
    +. cfg.mu +. cfg.extra_delay_mu (* proposal link *)
    +. (2.0 *. cfg.cpu_op) +. batch_cpu (* verify + vote *)
    +. cfg.mu +. cfg.extra_delay_mu (* vote link *)
    +. (quorum *. cfg.cpu_op) (* per-vote verification at the leader *)
  in
  float_of_int cfg.bsize /. t_view

let latency m ~rate =
  if rate <= 0.0 then invalid_arg "Model.latency: rate must be positive";
  (* M/D/1 (Eq. 5): blocks arrive at each replica at gamma = lambda/(B N);
     a replica leads every N views on average, so its effective service
     rate is u = 1/(N t_s). Then rho = gamma/u = lambda t_s / B and
     w_Q = rho / (2 u (1 - rho)) = rho N t_s / (2 (1 - rho)). *)
  let rho = rate /. m.saturation_rate in
  if rho >= 1.0 then None
  else
    let w_q =
      rho *. float_of_int m.n *. m.t_s /. (2.0 *. (1.0 -. rho))
    in
    Some (m.t_l +. m.t_s +. m.t_commit +. w_q)

let curve m ~rates =
  List.filter_map
    (fun rate ->
      match latency m ~rate with
      | Some l -> Some (rate, l)
      | None -> None)
    rates
