(** In-memory key-value execution layer.

    The paper's Bamboo "adopt[s] an in-memory key-value data store for
    simplicity" as the state machine behind consensus. Commands are encoded
    into transaction payloads; every replica applies the committed
    transactions of the finalized chain in order, so replica states are
    identical — checkable via the deterministic {!state_hash}. *)

type command =
  | Put of { key : string; value : string }
  | Get of string
  | Delete of string

type outcome =
  | Stored  (** A [Put] or [Delete] was applied. *)
  | Found of string
  | Missing

type t

val create : unit -> t

val encode_command : command -> string
(** Serialize a command into transaction payload bytes. *)

val decode_command : string -> (command, string) result

val apply : t -> command -> outcome
(** Executes one command. *)

val apply_tx : t -> Bamboo_types.Tx.t -> outcome option
(** Decodes the transaction's payload and applies it; [None] when the
    payload is empty or not a valid command (benchmark filler traffic). *)

val size : t -> int
(** Number of live keys. *)

val get : t -> string -> string option

val state_hash : t -> string
(** SHA-256 over the sorted key/value pairs: equal across replicas iff the
    stores are equal. *)
