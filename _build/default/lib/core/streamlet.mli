(** Streamlet (paper §II-D), adapted — as the paper does — to Bamboo's
    pacemaker in place of the original synchronized 2-Delta clocks.

    - State: the notarized chains (blocks with QCs) and the tip of the
      longest one.
    - Proposing: build on the tip of the longest notarized chain.
    - Voting: vote for the first proposal of the view, only if it extends a
      longest notarized chain; votes are {e broadcast}.
    - Commit: three notarized blocks in {e consecutive} views finalize the
      first two and their prefix.

    All proposals and votes are echoed by every replica (O(n^3) messages),
    which buys immunity to forking: honest replicas only ever vote on the
    longest notarized chain, so an attacker cannot displace it in a
    synchronous network. *)

val make : Safety.ctx -> Safety.chain -> Safety.t
