(** The two Byzantine attack strategies of paper §IV-A, implemented — as in
    Bamboo — purely by modifying the Proposing rule of an underlying
    protocol. Neither strategy violates the protocol from an outside view;
    both degrade performance by causing forks or breaking the commit rule.

    Both wrappers leave voting, state updating and committing honest. *)

val silence : chain:Safety.chain -> Safety.t -> Safety.t
(** Silence attack: the attacker "simply remains silent when it is selected
    as the leader". Withholding the proposal also withholds the QC the
    attacker aggregated from the previous view's votes — including through
    pacemaker timeout messages, which advertise only the highest publicly
    embedded QC — so that QC is lost and the next honest leader must build
    on an older block, overwriting the last one (Fig. 6). *)

val public_high : Safety.chain -> ?tc:Bamboo_types.Tcert.t -> unit -> Bamboo_types.Qc.t
(** The highest QC visible to honest replicas: the maximum justify pointer
    embedded in any broadcast block (and a TC's aggregated QC when given).
    Exposed for the attack implementations and tests. *)

val fork : chain:Safety.chain -> fork_depth:int -> Safety.t -> Safety.t
(** Forking attack: the attacker proposes a block extending the ancestor
    [fork_depth - 1] links below the publicly certified tip, justified by
    that ancestor's own QC — overwriting up to [fork_depth] uncommitted
    blocks while still passing the honest voting rule (Fig. 5), whose lock
    trails the public tip by exactly that much. When no viable fork target
    exists the attacker proposes honestly.

    The deepest fork the honest voting rule allows is 2 for HotStuff and 1
    for two-chain HotStuff; use {!fork_depth_for}. Streamlet's
    longest-chain voting makes any fork futile — honest replicas simply
    refuse to vote for it — so {!apply} leaves Streamlet attackers
    honest. *)

val fork_depth_for : Config.protocol -> int

val apply :
  Config.strategy -> Config.protocol -> chain:Safety.chain -> Safety.t -> Safety.t
(** Wraps according to the configured strategy ([Honest] is the
    identity). *)
