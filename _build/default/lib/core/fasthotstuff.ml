let make ctx chain =
  Chained_common.make ~name:"fasthotstuff" ~lock_chain:1 ~commit_chain:2
    ~tc_responsive:true ctx chain
