(** Benchmark metrics (paper §IV-B): throughput, client latency, and the
    two micro-metrics — chain growth rate (CGR, Eq. 1: committed blocks per
    view over the long run) and block interval (BI, Eq. 2: average number
    of views from a block's production to its commitment).

    A collector is fed by the runtime; samples inside the warmup window are
    discarded. Time-series buckets (committed tx/s per interval) back the
    responsiveness experiment of Fig. 15. *)

type t

type summary = {
  protocol : string;
  duration : float;  (** Measured window, virtual seconds. *)
  committed_txs : int;
  committed_blocks : int;
  forked_blocks : int;
  throughput : float;  (** Committed tx/s. *)
  latency_mean : float;  (** Seconds (client-observed). *)
  latency_p50 : float;
  latency_p95 : float;
  latency_p99 : float;
  latency_samples : int;
  views : int;  (** Views entered during the window. *)
  cgr : float;
      (** Of the blocks the observer accepted and whose fate resolved
          inside the measurement window, the fraction that committed
          rather than being overwritten (Eq. 1's chain growth rate).
          Exactly 1.0 in fork-free runs. *)
  block_interval : float;  (** Mean views from production to commit. *)
  rejected_txs : int;
  safety_violation : bool;
}

val create : warmup:float -> horizon:float -> bucket:float -> t
(** Samples with timestamps in [\[warmup, horizon)] are recorded;
    [bucket] is the time-series granularity in seconds. *)

val in_window : t -> now:float -> bool

val record_latency : t -> now:float -> issued_at:float -> latency:float -> unit
(** Counted when the transaction was issued after warmup and completed
    before the horizon. *)

val record_commit :
  t -> now:float -> ntxs:int -> nblocks:int -> hashes:string list -> unit
(** [hashes] are the committed blocks' hashes, matched against the appended
    set for the CGR numerator. *)

val record_block_interval : t -> now:float -> views:int -> unit

val record_fork :
  t -> now:float -> nblocks:int -> hashes:string list -> unit
(** Overwritten (pruned) blocks; those in the appended set count against
    the CGR. *)

val record_append : t -> now:float -> hash:string -> unit
(** A block the observing replica accepted (voted for). *)

val set_view_span : t -> first:int -> last:int -> unit
(** Views held by the observing replica at window start and end. *)

val summarize :
  t ->
  protocol:string ->
  rejected_txs:int ->
  safety_violation:bool ->
  summary

val throughput_series : t -> (float * float) list
(** [(bucket_start_time, committed tx/s in bucket)] over the whole run,
    including warmup (Fig. 15 plots the transient). *)

val pp_summary : Format.formatter -> summary -> unit
