(** Per-node machine model (paper §V-B1): each machine is a single CPU plus
    a NIC, each modelled as a FIFO single-server queue.

    CPU work (signing, verifying, batching) and NIC serialization
    (bytes / bandwidth, charged once outbound at the sender and once
    inbound at the receiver — the paper's [t_NIC = 2m/b]) are scheduled on
    the owning queue; completion times account for queueing behind earlier
    work. *)

type t

val create : sim:Sim.t -> bandwidth:float -> t
(** [bandwidth] in bytes/second. *)

val bandwidth : t -> float

val cpu : t -> duration:float -> (unit -> unit) -> unit
(** [cpu m ~duration k] enqueues [duration] seconds of CPU work and calls
    [k] when it completes. Zero-duration work still respects FIFO order. *)

val nic_out : t -> bytes:int -> (unit -> unit) -> unit
(** Serializes [bytes] through the outbound NIC, then calls [k]. *)

val nic_in : t -> bytes:int -> (unit -> unit) -> unit
(** Same for the inbound NIC. *)

val cpu_busy_until : t -> float
(** Absolute virtual time at which the CPU queue drains; used by tests and
    utilization metrics. *)

val cpu_busy_seconds : t -> float
(** Total CPU seconds consumed so far. *)
