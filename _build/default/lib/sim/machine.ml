type t = {
  sim : Sim.t;
  bandwidth : float;
  mutable cpu_free : float;
  mutable nic_out_free : float;
  mutable nic_in_free : float;
  mutable cpu_used : float;
}

let create ~sim ~bandwidth =
  if bandwidth <= 0.0 then invalid_arg "Machine.create: bandwidth must be positive";
  {
    sim;
    bandwidth;
    cpu_free = 0.0;
    nic_out_free = 0.0;
    nic_in_free = 0.0;
    cpu_used = 0.0;
  }

let bandwidth t = t.bandwidth

let serve ~sim ~free ~duration k =
  let start = Float.max (Sim.now sim) !free in
  let finish = start +. duration in
  free := finish;
  Sim.schedule_at sim ~at:finish k

let cpu t ~duration k =
  if duration < 0.0 then invalid_arg "Machine.cpu: negative duration";
  t.cpu_used <- t.cpu_used +. duration;
  let free = ref t.cpu_free in
  serve ~sim:t.sim ~free ~duration k;
  t.cpu_free <- !free

let nic_out t ~bytes k =
  if bytes < 0 then invalid_arg "Machine.nic_out: negative bytes";
  let duration = float_of_int bytes /. t.bandwidth in
  let free = ref t.nic_out_free in
  serve ~sim:t.sim ~free ~duration k;
  t.nic_out_free <- !free

let nic_in t ~bytes k =
  if bytes < 0 then invalid_arg "Machine.nic_in: negative bytes";
  let duration = float_of_int bytes /. t.bandwidth in
  let free = ref t.nic_in_free in
  serve ~sim:t.sim ~free ~duration k;
  t.nic_in_free <- !free

let cpu_busy_until t = t.cpu_free
let cpu_busy_seconds t = t.cpu_used
