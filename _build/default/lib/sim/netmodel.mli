(** Network latency model.

    Per the paper's Section V assumptions, the one-way delay between any two
    machines is normally distributed (mean [mu] = RTT/2 per direction as the
    model treats RTT ~ Normal(mu, sigma); we expose one-way sampling with
    the configured mean). On top of the base distribution the model
    supports:

    - a configurable *additional* delay (the [delay] parameter of Table I,
      itself normally distributed, e.g. "5ms +- 1ms" in Fig. 11), and
    - a run-time *fluctuation window* during which delays are drawn
      uniformly from a given range (the responsiveness experiment of
      Fig. 15 injects 10-100 ms fluctuation for 10 s).

    Client-to-replica round trips use {!client_rtt}. *)

type t

val create :
  rng:Bamboo_util.Rng.t ->
  mu:float ->
  sigma:float ->
  ?extra_mu:float ->
  ?extra_sigma:float ->
  unit ->
  t
(** [mu]/[sigma] in seconds; [extra_mu]/[extra_sigma] default to 0. *)

val set_extra_delay : t -> mu:float -> sigma:float -> unit
(** Changes the additional-delay distribution at run time (the paper's
    "slow" command). *)

val set_fluctuation : t -> from_t:float -> until_t:float -> lo:float -> hi:float -> unit
(** During virtual-time window [from_t, until_t), one-way delays are drawn
    uniformly from [lo, hi), overriding the base distribution. *)

val clear_fluctuation : t -> unit

val set_loss : t -> rate:float -> unit
(** Independent per-message drop probability in [0, 1). Default 0. *)

val drops : t -> now:float -> bool
(** Samples whether one transmission is lost. *)

val one_way : t -> now:float -> src:int -> dst:int -> float
(** Sampled one-way delay for a message sent at virtual time [now].
    Always non-negative. [src]/[dst] are accepted for future topology
    extensions; the base model is homogeneous. *)

val client_rtt : t -> now:float -> float
(** Sampled client-replica round-trip time. *)

val mean_one_way : t -> float
(** Expected one-way delay under the base + extra distribution (ignoring
    fluctuation windows); used by the analytic model. *)
