lib/sim/netmodel.ml: Bamboo_util
