lib/sim/sim.ml: Bamboo_util Float
