lib/sim/sim.mli:
