lib/sim/machine.mli: Sim
