lib/sim/machine.ml: Float Sim
