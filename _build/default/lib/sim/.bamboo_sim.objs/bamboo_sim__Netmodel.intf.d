lib/sim/netmodel.mli: Bamboo_util
