module Rng = Bamboo_util.Rng
module Dist = Bamboo_util.Dist

type fluctuation = { from_t : float; until_t : float; lo : float; hi : float }

type t = {
  rng : Rng.t;
  mu : float;
  sigma : float;
  mutable extra_mu : float;
  mutable extra_sigma : float;
  mutable fluctuation : fluctuation option;
  mutable loss : float;
}

let create ~rng ~mu ~sigma ?(extra_mu = 0.0) ?(extra_sigma = 0.0) () =
  if mu < 0.0 || sigma < 0.0 then invalid_arg "Netmodel.create: negative parameter";
  { rng; mu; sigma; extra_mu; extra_sigma; fluctuation = None; loss = 0.0 }

let set_loss t ~rate =
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Netmodel.set_loss: rate must be in [0, 1)";
  t.loss <- rate

let drops t ~now:_ = t.loss > 0.0 && Rng.float t.rng 1.0 < t.loss

let set_extra_delay t ~mu ~sigma =
  t.extra_mu <- mu;
  t.extra_sigma <- sigma

let set_fluctuation t ~from_t ~until_t ~lo ~hi =
  t.fluctuation <- Some { from_t; until_t; lo; hi }

let clear_fluctuation t = t.fluctuation <- None

let base_sample t =
  let d = Dist.normal_pos t.rng ~mu:t.mu ~sigma:t.sigma in
  if t.extra_mu > 0.0 || t.extra_sigma > 0.0 then
    d +. Dist.normal_pos t.rng ~mu:t.extra_mu ~sigma:t.extra_sigma
  else d

let one_way t ~now ~src:_ ~dst:_ =
  match t.fluctuation with
  | Some f when now >= f.from_t && now < f.until_t ->
      Dist.uniform t.rng ~lo:f.lo ~hi:f.hi
  | Some _ | None -> base_sample t

let client_rtt t ~now =
  match t.fluctuation with
  | Some f when now >= f.from_t && now < f.until_t ->
      2.0 *. Dist.uniform t.rng ~lo:f.lo ~hi:f.hi
  | Some _ | None -> 2.0 *. base_sample t

let mean_one_way t = t.mu +. t.extra_mu
