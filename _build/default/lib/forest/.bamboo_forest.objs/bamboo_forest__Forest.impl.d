lib/forest/forest.ml: Bamboo_types Block Hashtbl Ids List String
