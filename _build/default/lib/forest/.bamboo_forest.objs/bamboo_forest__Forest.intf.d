lib/forest/forest.mli: Bamboo_types Block Ids
