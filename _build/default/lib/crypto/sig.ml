type registry = { keys : string array }

type t = { signer : int; tag : string }

let wire_size = 64

let setup ~n ~master =
  if n <= 0 then invalid_arg "Sig.setup: n must be positive";
  let derive i = Hmac.mac ~key:master (Printf.sprintf "bamboo-replica-key-%d" i) in
  { keys = Array.init n derive }

let size reg = Array.length reg.keys

let sign reg ~signer msg =
  if signer < 0 || signer >= Array.length reg.keys then
    invalid_arg "Sig.sign: signer out of range";
  { signer; tag = Hmac.mac ~key:reg.keys.(signer) msg }

let verify reg s msg =
  if s.signer < 0 || s.signer >= Array.length reg.keys then false
  else Hmac.verify ~key:reg.keys.(s.signer) ~tag:s.tag msg
