(** HMAC-SHA256 (RFC 2104). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key]. *)

val mac_hex : key:string -> string -> string

val verify : key:string -> tag:string -> string -> bool
(** Constant-time comparison of [tag] against the recomputed MAC. *)
