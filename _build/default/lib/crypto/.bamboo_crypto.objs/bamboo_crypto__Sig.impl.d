lib/crypto/sig.ml: Array Hmac Printf
