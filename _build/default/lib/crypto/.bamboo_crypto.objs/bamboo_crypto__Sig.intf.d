lib/crypto/sig.mli:
