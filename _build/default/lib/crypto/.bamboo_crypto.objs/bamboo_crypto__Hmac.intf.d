lib/crypto/hmac.mli:
