(** SHA-256 (FIPS 180-4), implemented from scratch on int32 words.

    Blocks are content-addressed by this hash (the paper's chains are
    "cryptographically linked together by hashes"). Both one-shot and
    incremental interfaces are provided; the incremental form is used by the
    wire codec to hash streamed fields without concatenation. *)

type ctx

val init : unit -> ctx

val feed : ctx -> string -> unit
(** [feed ctx s] absorbs all of [s]. May be called repeatedly. *)

val feed_sub : ctx -> string -> pos:int -> len:int -> unit

val finalize : ctx -> string
(** [finalize ctx] is the 32-byte raw digest. The context must not be used
    afterwards. *)

val digest : string -> string
(** One-shot 32-byte raw digest. *)

val hex : string -> string
(** Lowercase hex rendering of a raw digest (or any string). *)

val digest_hex : string -> string
(** [digest_hex s = hex (digest s)]. *)
