let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\x00'

let xor_pad key byte =
  String.init block_size (fun i -> Char.chr (Char.code key.[i] lxor byte))

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed inner (xor_pad key 0x36);
  Sha256.feed inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.feed outer (xor_pad key 0x5c);
  Sha256.feed outer inner_digest;
  Sha256.finalize outer

let mac_hex ~key msg = Sha256.hex (mac ~key msg)

let verify ~key ~tag msg =
  let expected = mac ~key msg in
  if String.length expected <> String.length tag then false
  else begin
    let diff = ref 0 in
    String.iteri
      (fun i c -> diff := !diff lor (Char.code c lxor Char.code tag.[i]))
      expected;
    !diff = 0
  end
