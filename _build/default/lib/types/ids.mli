(** Identifier types shared across the protocol stack. *)

type replica = int
(** Replica identifier in [\[0, n)]. *)

type view = int
(** Protocol view number; views start at 1, the genesis block has view 0. *)

type height = int
(** Block height; the genesis block has height 0. *)

type hash = string
(** 32-byte SHA-256 digest addressing a block. *)

val pp_hash : Format.formatter -> hash -> unit
(** Prints an 8-hex-character prefix, enough to identify blocks in logs. *)

val short : hash -> string
(** 8-character hex prefix of a hash. *)
