type t = { view : Ids.view; high_qc : Qc.t; sigs : Bamboo_crypto.Sig.t list }

let of_timeouts ts =
  match ts with
  | [] -> invalid_arg "Tcert.of_timeouts: empty timeout list"
  | first :: _ ->
      let view = first.Timeout_msg.view in
      let seen = Hashtbl.create 8 in
      let high_qc = ref first.Timeout_msg.high_qc in
      let sigs =
        List.map
          (fun (tm : Timeout_msg.t) ->
            if tm.view <> view then
              invalid_arg "Tcert.of_timeouts: mixed views";
            if Hashtbl.mem seen tm.sender then
              invalid_arg "Tcert.of_timeouts: duplicate sender";
            Hashtbl.add seen tm.sender ();
            high_qc := Qc.max_by_view !high_qc tm.high_qc;
            tm.signature)
          ts
      in
      { view; high_qc = !high_qc; sigs }

let verify reg ~quorum tc =
  let payload = Timeout_msg.signed_payload ~view:tc.view in
  let distinct_valid =
    List.fold_left
      (fun acc (s : Bamboo_crypto.Sig.t) ->
        if List.mem s.signer acc then acc
        else if Bamboo_crypto.Sig.verify reg s payload then s.signer :: acc
        else acc)
      [] tc.sigs
  in
  List.length distinct_valid >= quorum

let wire_size tc =
  8 + Qc.wire_size tc.high_qc
  + (List.length tc.sigs * Bamboo_crypto.Sig.wire_size)

let pp fmt tc =
  Format.fprintf fmt "TC<v%d,%d sigs>" tc.view (List.length tc.sigs)
