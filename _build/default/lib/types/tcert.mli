(** Timeout certificates: a quorum of TIMEOUT messages for the same view.
    Receiving (or assembling) a TC for view [v] entitles a replica to enter
    view [v+1]; the TC also carries the highest QC among the contributing
    timeouts so the next leader can build on it. *)

type t = {
  view : Ids.view;  (** The abandoned view. *)
  high_qc : Qc.t;  (** Highest QC among the quorum's timeout messages. *)
  sigs : Bamboo_crypto.Sig.t list;
}

val of_timeouts : Timeout_msg.t list -> t
(** [of_timeouts ts] assembles a TC. All timeouts must share one view and
    come from distinct senders; raises [Invalid_argument] otherwise. *)

val verify : Bamboo_crypto.Sig.registry -> quorum:int -> t -> bool

val wire_size : t -> int

val pp : Format.formatter -> t -> unit
