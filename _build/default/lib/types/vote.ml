type t = {
  block : Ids.hash;
  view : Ids.view;
  height : Ids.height;
  voter : Ids.replica;
  signature : Bamboo_crypto.Sig.t;
}

let create reg ~voter ~block ~view ~height =
  let signature =
    Bamboo_crypto.Sig.sign reg ~signer:voter (Qc.signed_payload ~block ~view)
  in
  { block; view; height; voter; signature }

let verify reg v =
  v.signature.Bamboo_crypto.Sig.signer = v.voter
  && Bamboo_crypto.Sig.verify reg v.signature
       (Qc.signed_payload ~block:v.block ~view:v.view)

let wire_size = 32 + 8 + 8 + 8 + Bamboo_crypto.Sig.wire_size

let pp fmt v =
  Format.fprintf fmt "vote<v%d,%a,by %d>" v.view Ids.pp_hash v.block v.voter
