type t = {
  view : Ids.view;
  high_qc : Qc.t;
  sender : Ids.replica;
  signature : Bamboo_crypto.Sig.t;
}

let signed_payload ~view = Printf.sprintf "timeout|%d" view

let create reg ~sender ~view ~high_qc =
  let signature = Bamboo_crypto.Sig.sign reg ~signer:sender (signed_payload ~view) in
  { view; high_qc; sender; signature }

let verify reg t =
  t.signature.Bamboo_crypto.Sig.signer = t.sender
  && Bamboo_crypto.Sig.verify reg t.signature (signed_payload ~view:t.view)

let wire_size t = 8 + 8 + Bamboo_crypto.Sig.wire_size + Qc.wire_size t.high_qc

let pp fmt t = Format.fprintf fmt "timeout<v%d,from %d>" t.view t.sender
