(** Binary wire codec for protocol messages.

    Length-delimited, big-endian encoding used by the TCP transport and by
    round-trip tests. Decoding is total: malformed input raises
    {!Decode_error} rather than producing garbage. *)

exception Decode_error of string

val encode : Message.t -> string

val decode : string -> Message.t
(** Inverse of {!encode}. Raises {!Decode_error} on malformed input. *)

(** Lower-level entry points, exposed for tests. *)

val encode_block : Buffer.t -> Block.t -> unit

val encode_qc : Buffer.t -> Qc.t -> unit

val decode_block : string -> pos:int ref -> Block.t

val decode_qc : string -> pos:int ref -> Qc.t
