(** Pacemaker TIMEOUT messages (paper §III-B): when a replica times out in
    view [v] it broadcasts <TIMEOUT, v> carrying its highest QC, and
    advances to [v+1] once a quorum of matching timeouts — a
    TimeoutCertificate — is assembled. *)

type t = {
  view : Ids.view;  (** The view being abandoned. *)
  high_qc : Qc.t;  (** Sender's highest QC, for the next leader to adopt. *)
  sender : Ids.replica;
  signature : Bamboo_crypto.Sig.t;
}

val signed_payload : view:Ids.view -> string

val create :
  Bamboo_crypto.Sig.registry -> sender:Ids.replica -> view:Ids.view -> high_qc:Qc.t -> t

val verify : Bamboo_crypto.Sig.registry -> t -> bool

val wire_size : t -> int

val pp : Format.formatter -> t -> unit
