(** Blocks: a batch of transactions plus chain metadata, content-addressed
    by SHA-256 over the header.

    Each block carries the hash of its parent and a [justify] QC — the
    highest QC known to the proposer — which is how QCs are "recorded on the
    blockchain along with the relevant block for bookkeeping" (paper §I). *)

type t = {
  hash : Ids.hash;
  view : Ids.view;
  height : Ids.height;
  parent : Ids.hash;
  justify : Qc.t;  (** QC embedded by the proposer. *)
  proposer : Ids.replica;
  txs : Tx.t list;
  tx_root : Ids.hash;  (** Merkle root over transaction ids. *)
}

val genesis : t
(** The unique genesis block: view 0, height 0, no transactions, justified
    by itself. Shared by all replicas of every protocol. *)

val genesis_hash : Ids.hash

val create :
  ?root:[ `Merkle | `Flat ] ->
  view:Ids.view ->
  parent:t ->
  justify:Qc.t ->
  proposer:Ids.replica ->
  txs:Tx.t list ->
  unit ->
  t
(** [create] computes height as [parent.height + 1] and the content hash.
    [justify] normally certifies [parent], but under a forking attack it may
    certify an ancestor further back. [root] selects the transaction-root
    construction: [`Merkle] (default) is the full tree; [`Flat] hashes the
    concatenated ids in one pass — collision-resistant but without
    membership proofs — and is used by the simulator, where per-tx hashing
    cost is charged virtually instead (all replicas of a run must agree on
    the mode). *)

val merkle_root : Tx.t list -> Ids.hash
(** Merkle root over transaction ids (duplicate-last strategy for odd
    levels); the root of an empty list is the hash of the empty string. *)

val header_bytes : t -> string
(** The byte string the content hash commits to. *)

val signed_payload : t -> string
(** What the proposer signs when broadcasting the block. *)

val wire_size : t -> int
(** Bytes on the wire: header + justify QC + transactions. *)

val equal : t -> t -> bool
(** Hash equality. *)

val pp : Format.formatter -> t -> unit
