type replica = int
type view = int
type height = int
type hash = string

let short h =
  let hex = Bamboo_crypto.Sha256.hex h in
  if String.length hex >= 8 then String.sub hex 0 8 else hex

let pp_hash fmt h = Format.pp_print_string fmt (short h)
