(** Votes cast on proposed blocks. In HotStuff-style protocols a vote is
    sent to the leader of the next view; in Streamlet votes are broadcast
    to everyone. *)

type t = {
  block : Ids.hash;
  view : Ids.view;
  height : Ids.height;
  voter : Ids.replica;
  signature : Bamboo_crypto.Sig.t;
}

val create :
  Bamboo_crypto.Sig.registry ->
  voter:Ids.replica ->
  block:Ids.hash ->
  view:Ids.view ->
  height:Ids.height ->
  t
(** Signs {!Qc.signed_payload} so the vote can be folded into a QC. *)

val verify : Bamboo_crypto.Sig.registry -> t -> bool

val wire_size : int
(** Fixed size: hash + view + height + voter + signature. *)

val pp : Format.formatter -> t -> unit
