exception Decode_error of string

(* --- primitive writers --- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_i64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let put_bytes buf s =
  put_i64 buf (String.length s);
  Buffer.add_string buf s

(* --- primitive readers --- *)

let need s pos n =
  if !pos + n > String.length s then
    raise (Decode_error (Printf.sprintf "truncated input at %d (need %d)" !pos n))

let get_u8 s pos =
  need s pos 1;
  let v = Char.code s.[!pos] in
  incr pos;
  v

let get_i64 s pos =
  need s pos 8;
  let v = Int64.to_int (String.get_int64_be s !pos) in
  pos := !pos + 8;
  v

let get_bytes s pos =
  let len = get_i64 s pos in
  if len < 0 then raise (Decode_error "negative length");
  need s pos len;
  let v = String.sub s !pos len in
  pos := !pos + len;
  v

(* --- signatures --- *)

let encode_sig buf (s : Bamboo_crypto.Sig.t) =
  put_i64 buf s.signer;
  put_bytes buf s.tag

let decode_sig s pos : Bamboo_crypto.Sig.t =
  let signer = get_i64 s pos in
  let tag = get_bytes s pos in
  { signer; tag }

let encode_sig_list buf sigs =
  put_i64 buf (List.length sigs);
  List.iter (encode_sig buf) sigs

let decode_sig_list s pos =
  let n = get_i64 s pos in
  if n < 0 || n > 1_000_000 then raise (Decode_error "bad signature count");
  List.init n (fun _ -> decode_sig s pos)

(* --- QC --- *)

let encode_qc buf (qc : Qc.t) =
  put_bytes buf qc.block;
  put_i64 buf qc.view;
  put_i64 buf qc.height;
  encode_sig_list buf qc.sigs

let decode_qc s ~pos : Qc.t =
  let block = get_bytes s pos in
  let view = get_i64 s pos in
  let height = get_i64 s pos in
  let sigs = decode_sig_list s pos in
  { block; view; height; sigs }

(* --- transactions --- *)

let encode_tx buf (tx : Tx.t) =
  put_i64 buf tx.id.client;
  put_i64 buf tx.id.seq;
  put_i64 buf tx.payload_len;
  put_bytes buf tx.data

let decode_tx s pos : Tx.t =
  let client = get_i64 s pos in
  let seq = get_i64 s pos in
  let payload_len = get_i64 s pos in
  if payload_len < 0 then raise (Decode_error "negative payload length");
  let data = get_bytes s pos in
  { Tx.id = { Tx.client; seq }; payload_len; data }

(* --- blocks --- *)

let encode_block buf (b : Block.t) =
  put_bytes buf b.hash;
  put_i64 buf b.view;
  put_i64 buf b.height;
  put_bytes buf b.parent;
  encode_qc buf b.justify;
  put_i64 buf b.proposer;
  put_bytes buf b.tx_root;
  put_i64 buf (List.length b.txs);
  List.iter (encode_tx buf) b.txs

let decode_block s ~pos : Block.t =
  let hash = get_bytes s pos in
  let view = get_i64 s pos in
  let height = get_i64 s pos in
  let parent = get_bytes s pos in
  let justify = decode_qc s ~pos in
  let proposer = get_i64 s pos in
  let tx_root = get_bytes s pos in
  let n = get_i64 s pos in
  if n < 0 || n > 10_000_000 then raise (Decode_error "bad tx count");
  let txs = List.init n (fun _ -> decode_tx s pos) in
  { hash; view; height; parent; justify; proposer; txs; tx_root }

(* --- votes, timeouts, TCs --- *)

let encode_vote buf (v : Vote.t) =
  put_bytes buf v.block;
  put_i64 buf v.view;
  put_i64 buf v.height;
  put_i64 buf v.voter;
  encode_sig buf v.signature

let decode_vote s pos : Vote.t =
  let block = get_bytes s pos in
  let view = get_i64 s pos in
  let height = get_i64 s pos in
  let voter = get_i64 s pos in
  let signature = decode_sig s pos in
  { block; view; height; voter; signature }

let encode_timeout buf (t : Timeout_msg.t) =
  put_i64 buf t.view;
  encode_qc buf t.high_qc;
  put_i64 buf t.sender;
  encode_sig buf t.signature

let decode_timeout s pos : Timeout_msg.t =
  let view = get_i64 s pos in
  let high_qc = decode_qc s ~pos in
  let sender = get_i64 s pos in
  let signature = decode_sig s pos in
  { view; high_qc; sender; signature }

let encode_tc buf (tc : Tcert.t) =
  put_i64 buf tc.view;
  encode_qc buf tc.high_qc;
  encode_sig_list buf tc.sigs

let decode_tc s pos : Tcert.t =
  let view = get_i64 s pos in
  let high_qc = decode_qc s ~pos in
  let sigs = decode_sig_list s pos in
  { view; high_qc; sigs }

(* --- top-level messages --- *)

let encode msg =
  let buf = Buffer.create 256 in
  (match msg with
  | Message.Proposal { block; tc } ->
      put_u8 buf 1;
      encode_block buf block;
      (match tc with
      | None -> put_u8 buf 0
      | Some tc ->
          put_u8 buf 1;
          encode_tc buf tc)
  | Message.Vote v ->
      put_u8 buf 2;
      encode_vote buf v
  | Message.Timeout t ->
      put_u8 buf 3;
      encode_timeout buf t
  | Message.Request_block { hash; requester } ->
      put_u8 buf 4;
      put_bytes buf hash;
      put_i64 buf requester);
  Buffer.contents buf

let decode s =
  let pos = ref 0 in
  let msg =
    match get_u8 s pos with
    | 1 ->
        let block = decode_block s ~pos in
        let tc =
          match get_u8 s pos with
          | 0 -> None
          | 1 -> Some (decode_tc s pos)
          | n -> raise (Decode_error (Printf.sprintf "bad TC flag %d" n))
        in
        Message.Proposal { block; tc }
    | 2 -> Message.Vote (decode_vote s pos)
    | 3 -> Message.Timeout (decode_timeout s pos)
    | 4 ->
        let hash = get_bytes s pos in
        let requester = get_i64 s pos in
        Message.Request_block { hash; requester }
    | n -> raise (Decode_error (Printf.sprintf "unknown message tag %d" n))
  in
  if !pos <> String.length s then raise (Decode_error "trailing bytes");
  msg
