lib/types/codec.ml: Bamboo_crypto Block Buffer Bytes Char Int64 List Message Printf Qc String Tcert Timeout_msg Tx Vote
