lib/types/vote.mli: Bamboo_crypto Format Ids
