lib/types/block.mli: Format Ids Qc Tx
