lib/types/message.ml: Block Format Ids Printf Tcert Timeout_msg Vote
