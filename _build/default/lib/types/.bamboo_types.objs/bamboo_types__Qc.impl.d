lib/types/qc.ml: Bamboo_crypto Format Ids List Printf
