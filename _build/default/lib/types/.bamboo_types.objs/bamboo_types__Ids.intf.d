lib/types/ids.mli: Format
