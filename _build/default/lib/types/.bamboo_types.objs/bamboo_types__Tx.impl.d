lib/types/tx.ml: Format Map Printf Set String
