lib/types/codec.mli: Block Buffer Message Qc
