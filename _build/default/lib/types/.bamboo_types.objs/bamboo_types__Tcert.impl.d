lib/types/tcert.ml: Bamboo_crypto Format Hashtbl Ids List Qc Timeout_msg
