lib/types/timeout_msg.mli: Bamboo_crypto Format Ids Qc
