lib/types/ids.ml: Bamboo_crypto Format String
