lib/types/qc.mli: Bamboo_crypto Format Ids
