lib/types/message.mli: Block Format Ids Tcert Timeout_msg Vote
