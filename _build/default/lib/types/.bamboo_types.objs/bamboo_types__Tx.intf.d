lib/types/tx.mli: Format Map Set
