lib/types/vote.ml: Bamboo_crypto Format Ids Qc
