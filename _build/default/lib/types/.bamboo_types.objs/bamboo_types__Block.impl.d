lib/types/block.ml: Bamboo_crypto Buffer Format Ids List Printf Qc String Tx
