lib/types/tcert.mli: Bamboo_crypto Format Ids Qc Timeout_msg
