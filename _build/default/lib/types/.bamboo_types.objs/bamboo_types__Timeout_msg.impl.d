lib/types/timeout_msg.ml: Bamboo_crypto Format Ids Printf Qc
