type t = {
  hash : Ids.hash;
  view : Ids.view;
  height : Ids.height;
  parent : Ids.hash;
  justify : Qc.t;
  proposer : Ids.replica;
  txs : Tx.t list;
  tx_root : Ids.hash;
}

(* Leaves commit to both the id and the payload bytes so that an executed
   command cannot be substituted after certification. *)
let leaf_preimage (tx : Tx.t) = Tx.id_to_string tx.id ^ "|" ^ tx.data

let merkle_root txs =
  match txs with
  | [] -> Bamboo_crypto.Sha256.digest ""
  | _ ->
      let leaves =
        List.map (fun tx -> Bamboo_crypto.Sha256.digest (leaf_preimage tx)) txs
      in
      let rec level nodes =
        match nodes with
        | [ root ] -> root
        | _ ->
            let rec pair acc = function
              | [] -> List.rev acc
              | [ last ] ->
                  (* Odd node: pair with itself (Bitcoin-style). *)
                  List.rev (Bamboo_crypto.Sha256.digest (last ^ last) :: acc)
              | a :: b :: rest ->
                  pair (Bamboo_crypto.Sha256.digest (a ^ b) :: acc) rest
            in
            level (pair [] nodes)
      in
      level leaves

let header_preimage ~view ~height ~parent ~(justify : Qc.t) ~proposer ~tx_root =
  Printf.sprintf "block|%d|%d|%s|%d|%s|%d|%s" view height parent justify.view
    justify.block proposer tx_root

let genesis =
  let tx_root = merkle_root [] in
  let parent = String.make 32 '\x00' in
  let justify = Qc.genesis ~block:parent in
  let preimage =
    header_preimage ~view:0 ~height:0 ~parent ~justify ~proposer:(-1) ~tx_root
  in
  let hash = Bamboo_crypto.Sha256.digest preimage in
  {
    hash;
    view = 0;
    height = 0;
    parent;
    justify = Qc.genesis ~block:hash;
    proposer = -1;
    txs = [];
    tx_root;
  }

let genesis_hash = genesis.hash

let flat_root txs =
  let buf = Buffer.create 256 in
  List.iter
    (fun (tx : Tx.t) ->
      Buffer.add_string buf (leaf_preimage tx);
      Buffer.add_char buf ',')
    txs;
  Bamboo_crypto.Sha256.digest (Buffer.contents buf)

let create ?(root = `Merkle) ~view ~parent ~justify ~proposer ~txs () =
  let height = parent.height + 1 in
  let tx_root =
    match root with `Merkle -> merkle_root txs | `Flat -> flat_root txs
  in
  let preimage =
    header_preimage ~view ~height ~parent:parent.hash ~justify ~proposer ~tx_root
  in
  {
    hash = Bamboo_crypto.Sha256.digest preimage;
    view;
    height;
    parent = parent.hash;
    justify;
    proposer;
    txs;
    tx_root;
  }

let header_bytes b =
  header_preimage ~view:b.view ~height:b.height ~parent:b.parent
    ~justify:b.justify ~proposer:b.proposer ~tx_root:b.tx_root

let signed_payload b = "propose|" ^ b.hash

let header_wire_size = 32 + 8 + 8 + 32 + 8 + 32 (* hash,view,height,parent,proposer,root *)

let wire_size b =
  header_wire_size + Qc.wire_size b.justify
  + List.fold_left (fun acc tx -> acc + Tx.wire_size tx) 0 b.txs

let equal a b = String.equal a.hash b.hash

let pp fmt b =
  Format.fprintf fmt "B<v%d,h%d,%a,parent=%a,%d txs>" b.view b.height
    Ids.pp_hash b.hash Ids.pp_hash b.parent (List.length b.txs)
