(* Benchmark harness.

   Two parts:
   1. Bechamel microbenchmarks of the hot data-structure and crypto paths
      (SHA-256 hashing, HMAC signing, block construction, forest insertion,
      mempool batching, QC aggregation, event-queue throughput, codec).
   2. The paper-reproduction experiments: one per table/figure (Table II,
      Figs. 8-15) plus the Section V-E ablations, printed as the same
      rows/series the paper reports.

   Usage:
     dune exec bench/main.exe                 -- micro + all experiments, quick scale
     dune exec bench/main.exe -- micro        -- microbenchmarks only
     dune exec bench/main.exe -- fig13 fig14  -- selected experiments
     dune exec bench/main.exe -- --full all   -- paper-scale everything *)

open Bechamel
open Bamboo_types

let reg = Bamboo_crypto.Sig.setup ~n:4 ~master:"bench"

let sample_txs = List.init 400 (fun seq -> Tx.make ~client:0 ~seq ~payload_len:128)

let sample_block =
  Block.create ~view:1 ~parent:Block.genesis
    ~justify:(Qc.genesis ~block:Block.genesis_hash)
    ~proposer:0 ~txs:sample_txs ()

let sample_payload = String.make 1024 'x'

let micro_tests =
  [
    Test.make ~name:"sha256_1KiB" (Staged.stage (fun () ->
        ignore (Bamboo_crypto.Sha256.digest sample_payload)));
    Test.make ~name:"hmac_sign_64B" (Staged.stage (fun () ->
        ignore (Bamboo_crypto.Hmac.mac ~key:"benchkey" "payload-to-authenticate")));
    Test.make ~name:"block_create_400tx_merkle" (Staged.stage (fun () ->
        ignore
          (Block.create ~view:1 ~parent:Block.genesis
             ~justify:(Qc.genesis ~block:Block.genesis_hash)
             ~proposer:0 ~txs:sample_txs ())));
    Test.make ~name:"block_create_400tx_flat" (Staged.stage (fun () ->
        ignore
          (Block.create ~root:`Flat ~view:1 ~parent:Block.genesis
             ~justify:(Qc.genesis ~block:Block.genesis_hash)
             ~proposer:0 ~txs:sample_txs ())));
    Test.make ~name:"codec_encode_block" (Staged.stage (fun () ->
        ignore (Codec.encode (Message.Proposal { block = sample_block; tc = None }))));
    Test.make ~name:"forest_insert_100" (Staged.stage (fun () ->
        let f = Bamboo_forest.Forest.create () in
        let parent = ref Block.genesis in
        for view = 1 to 100 do
          let b =
            Block.create ~root:`Flat ~view ~parent:!parent
              ~justify:(Qc.genesis ~block:!parent.Block.hash)
              ~proposer:0 ~txs:[] ()
          in
          ignore (Bamboo_forest.Forest.add f b);
          parent := b
        done));
    Test.make ~name:"mempool_add_batch_1000" (Staged.stage (fun () ->
        let p = Bamboo_mempool.Mempool.create ~capacity:2000 () in
        for seq = 0 to 999 do
          ignore (Bamboo_mempool.Mempool.add p (Tx.make ~client:0 ~seq ~payload_len:0))
        done;
        ignore (Bamboo_mempool.Mempool.batch p ~max:1000)));
    Test.make ~name:"quorum_aggregate_qc" (Staged.stage (fun () ->
        let q = Bamboo_quorum.Quorum.create ~n:4 in
        for voter = 0 to 2 do
          ignore
            (Bamboo_quorum.Quorum.voted q
               (Vote.create reg ~voter ~block:sample_block.Block.hash ~view:1
                  ~height:1))
        done));
    Test.make ~name:"eventq_push_pop_1000" (Staged.stage (fun () ->
        let sim = Bamboo_sim.Sim.create () in
        for i = 1 to 1000 do
          Bamboo_sim.Sim.schedule sim ~delay:(float_of_int i) (fun () -> ())
        done;
        Bamboo_sim.Sim.run_to_completion sim));
    Test.make ~name:"sim_hotstuff_100ms_virtual" (Staged.stage (fun () ->
        let config =
          { Bamboo.Config.default with runtime = 0.1; warmup = 0.01 }
        in
        ignore
          (Bamboo.Runtime.run ~config
             ~workload:(Bamboo.Workload.open_loop ~rate:10_000.0 ())
             ())));
  ]

let run_micro () =
  print_endline "=== Microbenchmarks (Bechamel) ===";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some (ns :: _) ->
              if ns >= 1_000_000.0 then
                Printf.printf "  %-32s %10.2f ms/op\n%!" name (ns /. 1e6)
              else if ns >= 1_000.0 then
                Printf.printf "  %-32s %10.2f us/op\n%!" name (ns /. 1e3)
              else Printf.printf "  %-32s %10.1f ns/op\n%!" name ns
          | Some [] | None ->
              Printf.printf "  %-32s (no estimate)\n%!" name)
        analyzed)
    micro_tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let scale =
    if full then Bamboo.Experiments.Full else Bamboo.Experiments.Quick
  in
  let names = List.filter (fun a -> a <> "--full") args in
  match names with
  | [] ->
      run_micro ();
      Bamboo.Experiments.run_all ~scale
  | [ "micro" ] -> run_micro ()
  | [ "all" ] -> Bamboo.Experiments.run_all ~scale
  | names ->
      List.iter
        (fun name ->
          if name = "micro" then run_micro ()
          else
            match Bamboo.Experiments.run_one ~scale name with
            | Ok () -> ()
            | Error e ->
                prerr_endline e;
                exit 2)
        names
