module Hmac = Bamboo_crypto.Hmac

(* RFC 4231 test vectors for HMAC-SHA256. *)
let test_rfc4231_case1 () =
  let key = String.make 20 '\x0b' in
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_hex ~key "Hi There")

let test_rfc4231_case2 () =
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?")

let test_rfc4231_case3 () =
  let key = String.make 20 '\xaa' in
  let data = String.make 50 '\xdd' in
  Alcotest.(check string) "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.mac_hex ~key data)

let test_rfc4231_case6_long_key () =
  (* Key longer than the block size must be hashed first. *)
  let key = String.make 131 '\xaa' in
  Alcotest.(check string) "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac_hex ~key "Test Using Larger Than Block-Size Key - Hash Key First")

let test_verify_roundtrip () =
  let key = "secret" in
  let tag = Hmac.mac ~key "message" in
  Alcotest.(check bool) "valid" true (Hmac.verify ~key ~tag "message");
  Alcotest.(check bool) "wrong message" false (Hmac.verify ~key ~tag "messagE");
  Alcotest.(check bool) "wrong key" false
    (Hmac.verify ~key:"other" ~tag "message");
  Alcotest.(check bool) "truncated tag" false
    (Hmac.verify ~key ~tag:(String.sub tag 0 16) "message")

let test_distinct_keys_distinct_macs () =
  let m = "same message" in
  Alcotest.(check bool) "tags differ" true
    (Hmac.mac ~key:"k1" m <> Hmac.mac ~key:"k2" m)

let test_tag_length () =
  Alcotest.(check int) "32 bytes" 32 (String.length (Hmac.mac ~key:"k" "m"))

let test_block_sized_key () =
  (* A key exactly 64 bytes long takes the no-padding path. *)
  let key = String.make 64 'k' in
  let tag = Hmac.mac ~key "m" in
  Alcotest.(check bool) "verifies" true (Hmac.verify ~key ~tag "m")

let verify_prop =
  let open QCheck in
  let gen =
    Gen.pair
      (Gen.string_size ~gen:Gen.char (Gen.int_range 0 100))
      (Gen.string_size ~gen:Gen.char (Gen.int_range 0 200))
  in
  Test.make ~name:"mac/verify round trip" ~count:300
    (make ~print:(fun (k, m) -> Printf.sprintf "key %d, msg %d" (String.length k) (String.length m)) gen)
    (fun (key, msg) -> Hmac.verify ~key ~tag:(Hmac.mac ~key msg) msg)

let suite =
  [
    Alcotest.test_case "RFC 4231 case 1" `Quick test_rfc4231_case1;
    Alcotest.test_case "RFC 4231 case 2" `Quick test_rfc4231_case2;
    Alcotest.test_case "RFC 4231 case 3" `Quick test_rfc4231_case3;
    Alcotest.test_case "RFC 4231 case 6 (long key)" `Quick test_rfc4231_case6_long_key;
    Alcotest.test_case "verify round trip" `Quick test_verify_roundtrip;
    Alcotest.test_case "distinct keys" `Quick test_distinct_keys_distinct_macs;
    Alcotest.test_case "tag length" `Quick test_tag_length;
    Alcotest.test_case "block-sized key" `Quick test_block_sized_key;
    QCheck_alcotest.to_alcotest verify_prop;
  ]
