open Bamboo_types
module Chan = Bamboo_network.Chan_transport
module Tcp = Bamboo_network.Tcp_transport

let reg = Helpers.registry ()

let sample_msg ?(voter = 0) () =
  Message.Vote (Helpers.vote_for reg ~voter (Helpers.child ~reg ~view:1 Bamboo_types.Block.genesis))

(* --- channel transport --- *)

let test_chan_send_recv () =
  let cluster = Chan.create_cluster ~n:3 in
  let a = Chan.endpoint cluster 0 and b = Chan.endpoint cluster 1 in
  Alcotest.(check int) "self" 0 (Chan.self a);
  Alcotest.(check int) "n" 3 (Chan.n a);
  let msg = sample_msg () in
  Chan.send a ~dst:1 msg;
  (match Chan.recv b ~timeout_s:1.0 with
  | Some got -> Alcotest.(check string) "delivered" (Message.key msg) (Message.key got)
  | None -> Alcotest.fail "timeout");
  Alcotest.(check bool) "empty now" true (Chan.recv b ~timeout_s:0.01 = None)

let test_chan_fifo () =
  let cluster = Chan.create_cluster ~n:2 in
  let a = Chan.endpoint cluster 0 and b = Chan.endpoint cluster 1 in
  let msgs = List.init 4 (fun voter -> sample_msg ~voter ()) in
  List.iter (Chan.send a ~dst:1) msgs;
  List.iter
    (fun expected ->
      match Chan.recv b ~timeout_s:1.0 with
      | Some got ->
          Alcotest.(check string) "order" (Message.key expected) (Message.key got)
      | None -> Alcotest.fail "timeout")
    msgs

let test_chan_broadcast () =
  let cluster = Chan.create_cluster ~n:4 in
  let eps = Array.init 4 (Chan.endpoint cluster) in
  Chan.broadcast eps.(2) (sample_msg ());
  Array.iteri
    (fun i ep ->
      let got = Chan.recv ep ~timeout_s:0.05 in
      if i = 2 then Alcotest.(check bool) "not to self" true (got = None)
      else Alcotest.(check bool) "delivered" true (got <> None))
    eps

let test_chan_close () =
  let cluster = Chan.create_cluster ~n:2 in
  let a = Chan.endpoint cluster 0 and b = Chan.endpoint cluster 1 in
  Chan.close b;
  Chan.send a ~dst:1 (sample_msg ());
  Alcotest.(check bool) "closed drops" true (Chan.recv b ~timeout_s:0.02 = None)

let test_chan_cross_thread () =
  let cluster = Chan.create_cluster ~n:2 in
  let a = Chan.endpoint cluster 0 and b = Chan.endpoint cluster 1 in
  let sender =
    Thread.create
      (fun () ->
        Thread.delay 0.02;
        Chan.send a ~dst:1 (sample_msg ()))
      ()
  in
  let got = Chan.recv b ~timeout_s:1.0 in
  Thread.join sender;
  Alcotest.(check bool) "received across threads" true (got <> None)

(* --- TCP transport --- *)

let base_port = ref 29460

let fresh_ports n =
  let p = !base_port in
  base_port := p + n;
  Tcp.loopback_addresses ~n ~base_port:p

let test_tcp_round_trip () =
  let addresses = fresh_ports 2 in
  let a = Tcp.create ~self:0 ~addresses in
  let b = Tcp.create ~self:1 ~addresses in
  let msg = sample_msg () in
  Tcp.send a ~dst:1 msg;
  (match Tcp.recv b ~timeout_s:2.0 with
  | Some got ->
      Alcotest.(check string) "payload intact" (Codec.encode msg) (Codec.encode got)
  | None -> Alcotest.fail "timeout");
  Tcp.close a;
  Tcp.close b

let test_tcp_broadcast () =
  let addresses = fresh_ports 3 in
  let eps = List.map (fun (self, _) -> Tcp.create ~self ~addresses) addresses in
  (match eps with
  | [ a; b; c ] ->
      Tcp.broadcast a (sample_msg ());
      Alcotest.(check bool) "b got it" true (Tcp.recv b ~timeout_s:2.0 <> None);
      Alcotest.(check bool) "c got it" true (Tcp.recv c ~timeout_s:2.0 <> None);
      Alcotest.(check bool) "a did not" true (Tcp.recv a ~timeout_s:0.05 = None)
  | _ -> assert false);
  List.iter Tcp.close eps

let test_tcp_send_to_self () =
  let addresses = fresh_ports 1 in
  let a = Tcp.create ~self:0 ~addresses in
  Tcp.send a ~dst:0 (sample_msg ());
  Alcotest.(check bool) "loop delivery" true (Tcp.recv a ~timeout_s:0.5 <> None);
  Tcp.close a

let test_tcp_unreachable_peer_is_silent () =
  let addresses = fresh_ports 2 in
  let a = Tcp.create ~self:0 ~addresses in
  (* Peer 1 never started: sends must be dropped without raising. *)
  Tcp.send a ~dst:1 (sample_msg ());
  Alcotest.(check bool) "no crash" true true;
  Tcp.close a

let test_tcp_large_message () =
  let addresses = fresh_ports 2 in
  let a = Tcp.create ~self:0 ~addresses in
  let b = Tcp.create ~self:1 ~addresses in
  let block =
    Helpers.child ~reg ~view:1 ~txs:(Helpers.txs 2000) Bamboo_types.Block.genesis
  in
  let msg = Message.Proposal { block; tc = None } in
  Tcp.send a ~dst:1 msg;
  (match Tcp.recv b ~timeout_s:3.0 with
  | Some (Message.Proposal { block = got; _ }) ->
      Alcotest.(check int) "txs intact" 2000 (List.length got.Block.txs);
      Alcotest.(check string) "hash intact" block.Block.hash got.Block.hash
  | Some _ | None -> Alcotest.fail "bad delivery");
  Tcp.close a;
  Tcp.close b

let suite =
  [
    Alcotest.test_case "chan send/recv" `Quick test_chan_send_recv;
    Alcotest.test_case "chan FIFO" `Quick test_chan_fifo;
    Alcotest.test_case "chan broadcast" `Quick test_chan_broadcast;
    Alcotest.test_case "chan close" `Quick test_chan_close;
    Alcotest.test_case "chan cross-thread" `Quick test_chan_cross_thread;
    Alcotest.test_case "tcp round trip" `Quick test_tcp_round_trip;
    Alcotest.test_case "tcp broadcast" `Quick test_tcp_broadcast;
    Alcotest.test_case "tcp self send" `Quick test_tcp_send_to_self;
    Alcotest.test_case "tcp unreachable peer" `Quick
      test_tcp_unreachable_peer_is_silent;
    Alcotest.test_case "tcp large message" `Quick test_tcp_large_message;
  ]
