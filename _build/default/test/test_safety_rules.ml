(* Direct tests of the four rules per protocol, on hand-built chains. *)

open Bamboo_types
module Forest = Bamboo_forest.Forest
module Safety = Bamboo.Safety

let reg = Helpers.registry ()

type env = {
  forest : Forest.t;
  certified : (Ids.hash, Qc.t) Hashtbl.t;
  p : Safety.t;
}

let make_env maker =
  let forest = Forest.create () in
  let certified = Hashtbl.create 16 in
  Hashtbl.add certified Block.genesis_hash Safety.genesis_qc;
  let chain =
    Safety.{ forest; qc_of = (fun h -> Hashtbl.find_opt certified h) }
  in
  let ctx = Safety.{ n = 4; self = 0; registry = reg; quorum = 3 } in
  { forest; certified; p = maker ctx chain }

(* Add a block to the forest (must succeed). *)
let grow env b =
  match Forest.add env.forest b with
  | Forest.Added -> ()
  | _ -> Alcotest.fail "fixture: add failed"

(* Certify a block: register its QC and run the state-updating/commit
   rule; returns the commit target if any. *)
let certify env (b : Block.t) =
  let qc = Helpers.qc_for reg b in
  Hashtbl.add env.certified b.hash qc;
  env.p.Safety.on_qc qc

let commit_target = Alcotest.(option string)

(* --- chained family shared helper --- *)

let test_certified_chain_head () =
  let env = make_env Bamboo.Hotstuff.make in
  let chain =
    Safety.
      {
        forest = env.forest;
        qc_of = (fun h -> Hashtbl.find_opt env.certified h);
      }
  in
  let blocks = Helpers.chain ~reg 3 in
  List.iter (grow env) blocks;
  match blocks with
  | [ b1; b2; b3 ] ->
      List.iter (fun b -> ignore (certify env b)) [ b1; b2; b3 ];
      (match Bamboo.Chained_common.certified_chain_head chain ~tip:b3 ~length:3 with
      | Some head -> Alcotest.(check bool) "3-chain head" true (Block.equal head b1)
      | None -> Alcotest.fail "expected 3-chain");
      (match Bamboo.Chained_common.certified_chain_head chain ~tip:b3 ~length:1 with
      | Some head -> Alcotest.(check bool) "1-chain head" true (Block.equal head b3)
      | None -> Alcotest.fail "expected 1-chain")
  | _ -> assert false

let test_chain_head_requires_certification () =
  let env = make_env Bamboo.Hotstuff.make in
  let chain =
    Safety.
      {
        forest = env.forest;
        qc_of = (fun h -> Hashtbl.find_opt env.certified h);
      }
  in
  match Helpers.chain ~reg 2 with
  | [ b1; b2 ] ->
      List.iter (grow env) [ b1; b2 ];
      ignore (certify env b2);
      (* b1 not certified: no 2-chain ending at b2. *)
      Alcotest.(check bool) "no chain through uncertified" true
        (Bamboo.Chained_common.certified_chain_head chain ~tip:b2 ~length:2 = None)
  | _ -> assert false

(* --- HotStuff --- *)

let test_hotstuff_three_chain_commit () =
  let env = make_env Bamboo.Hotstuff.make in
  let blocks = Helpers.chain ~reg 4 in
  List.iter (grow env) blocks;
  match blocks with
  | [ b1; b2; b3; b4 ] ->
      Alcotest.check commit_target "b1: no commit" None (certify env b1);
      Alcotest.check commit_target "b2: no commit" None (certify env b2);
      Alcotest.check commit_target "b3 completes 3-chain of b1"
        (Some b1.Block.hash) (certify env b3);
      Alcotest.check commit_target "b4 commits b2" (Some b2.Block.hash)
        (certify env b4)
  | _ -> assert false

let test_hotstuff_lock_is_two_chain_head () =
  let env = make_env Bamboo.Hotstuff.make in
  let blocks = Helpers.chain ~reg 3 in
  List.iter (grow env) blocks;
  match blocks with
  | [ b1; b2; b3 ] ->
      Alcotest.(check (option (pair string int))) "no lock initially" None
        (env.p.Safety.locked ());
      ignore (certify env b1);
      Alcotest.(check (option (pair string int))) "one QC: still none" None
        (env.p.Safety.locked ());
      ignore (certify env b2);
      Alcotest.(check (option (pair string int))) "lock on b1"
        (Some (b1.Block.hash, b1.Block.view))
        (env.p.Safety.locked ());
      ignore (certify env b3);
      Alcotest.(check (option (pair string int))) "lock advances to b2"
        (Some (b2.Block.hash, b2.Block.view))
        (env.p.Safety.locked ())
  | _ -> assert false

let test_hotstuff_voting_rule () =
  let env = make_env Bamboo.Hotstuff.make in
  let blocks = Helpers.chain ~reg 3 in
  List.iter (grow env) blocks;
  List.iter (fun b -> ignore (certify env b)) blocks;
  (* lock is now on b2 (head of highest 2-chain). *)
  match blocks with
  | [ b1; _b2; b3 ] ->
      let b4 = Helpers.child ~reg ~view:4 b3 in
      Alcotest.(check bool) "extends lock: vote" true
        (env.p.Safety.should_vote ~block:b4 ~tc:None);
      env.p.Safety.on_vote_sent b4;
      Alcotest.(check int) "lvView" 4 (env.p.Safety.last_voted_view ());
      Alcotest.(check bool) "same view again: no vote" false
        (env.p.Safety.should_vote ~block:b4 ~tc:None);
      (* A conflicting block on b1 with an old justify: violates the lock. *)
      let fork = Helpers.child ~reg ~view:5 b1 in
      let fork =
        { fork with Block.justify = { fork.Block.justify with Qc.view = 1 } }
      in
      grow env fork;
      Alcotest.(check bool) "conflicts with lock: no vote" false
        (env.p.Safety.should_vote ~block:fork ~tc:None)
  | _ -> assert false

let test_hotstuff_unlock_by_higher_justify () =
  let env = make_env Bamboo.Hotstuff.make in
  let blocks = Helpers.chain ~reg 3 in
  List.iter (grow env) blocks;
  List.iter (fun b -> ignore (certify env b)) blocks;
  (* lock on b2 (view 2). A block conflicting with the lock but justified
     by a QC from view 3 (> 2) must be votable. *)
  match blocks with
  | [ b1; _b2; _b3 ] ->
      let b1_qc = Hashtbl.find env.certified b1.Block.hash in
      let fork =
        Block.create ~view:9
          ~parent:b1 (* conflicts with locked b2 *)
          ~justify:{ b1_qc with Qc.view = 3 } (* pretend higher view *)
          ~proposer:0 ~txs:[] ()
      in
      grow env fork;
      Alcotest.(check bool) "higher justify unlocks" true
        (env.p.Safety.should_vote ~block:fork ~tc:None)
  | _ -> assert false

let test_hotstuff_propose_on_high_qc () =
  let env = make_env Bamboo.Hotstuff.make in
  let blocks = Helpers.chain ~reg 2 in
  List.iter (grow env) blocks;
  List.iter (fun b -> ignore (certify env b)) blocks;
  match blocks with
  | [ _b1; b2 ] -> (
      Alcotest.(check int) "hQC view" 2 (env.p.Safety.high_qc ()).Qc.view;
      match env.p.Safety.propose ~view:3 ~tc:None with
      | Some Safety.{ parent; justify } ->
          Alcotest.(check bool) "parent is hQC block" true (Block.equal parent b2);
          Alcotest.(check int) "justify view" 2 justify.Qc.view
      | None -> Alcotest.fail "expected proposal")
  | _ -> assert false

let test_hotstuff_abandon_blocks_vote () =
  let env = make_env Bamboo.Hotstuff.make in
  let b1 = Helpers.child ~reg ~view:1 Block.genesis in
  grow env b1;
  env.p.Safety.note_view_abandoned 1;
  Alcotest.(check bool) "no vote in abandoned view" false
    (env.p.Safety.should_vote ~block:b1 ~tc:None)

(* Commits must require direct parent links, not just any certified
   ancestors: a 3-chain with a gap does not commit in HotStuff. *)
let test_hotstuff_no_commit_across_fork_gap () =
  let env = make_env Bamboo.Hotstuff.make in
  let b1 = Helpers.child ~reg ~view:1 Block.genesis in
  grow env b1;
  ignore (certify env b1);
  let b2 = Helpers.child ~reg ~view:2 b1 in
  grow env b2;
  ignore (certify env b2);
  (* fork: b3' skips b2 and builds on b1. *)
  let b1_qc = Hashtbl.find env.certified b1.Block.hash in
  let b3' = Helpers.child ~reg ~justify:b1_qc ~view:3 b1 in
  grow env b3';
  Alcotest.check commit_target "no 3-chain through fork" None (certify env b3')

(* --- two-chain HotStuff --- *)

let test_twochain_commit () =
  let env = make_env Bamboo.Twochain.make in
  let blocks = Helpers.chain ~reg 3 in
  List.iter (grow env) blocks;
  match blocks with
  | [ b1; b2; _b3 ] ->
      Alcotest.check commit_target "b1: none" None (certify env b1);
      Alcotest.check commit_target "b2 commits b1" (Some b1.Block.hash)
        (certify env b2);
      Alcotest.check commit_target "b3 commits b2" (Some b2.Block.hash)
        (certify env (List.nth blocks 2))
  | _ -> assert false

let test_twochain_lock_is_one_chain_head () =
  let env = make_env Bamboo.Twochain.make in
  let blocks = Helpers.chain ~reg 2 in
  List.iter (grow env) blocks;
  match blocks with
  | [ b1; b2 ] ->
      ignore (certify env b1);
      Alcotest.(check (option (pair string int))) "lock on first certified"
        (Some (b1.Block.hash, 1))
        (env.p.Safety.locked ());
      ignore (certify env b2);
      Alcotest.(check (option (pair string int))) "lock tracks highest QC"
        (Some (b2.Block.hash, 2))
        (env.p.Safety.locked ())
  | _ -> assert false

(* --- Streamlet --- *)

let test_streamlet_vote_longest_chain_only () =
  let env = make_env Bamboo.Streamlet.make in
  let b1 = Helpers.child ~reg ~view:1 Block.genesis in
  grow env b1;
  ignore (certify env b1);
  let b2 = Helpers.child ~reg ~view:2 b1 in
  Alcotest.(check bool) "extends longest notarized: vote" true
    (env.p.Safety.should_vote ~block:b2 ~tc:None);
  (* A block at the same height as the notarized tip does not extend the
     longest chain. *)
  let short = Helpers.child ~reg ~view:3 Block.genesis in
  grow env short;
  Alcotest.(check bool) "short chain: no vote" false
    (env.p.Safety.should_vote ~block:short ~tc:None)

let test_streamlet_vote_requires_notarized_parent () =
  let env = make_env Bamboo.Streamlet.make in
  let b1 = Helpers.child ~reg ~view:1 Block.genesis in
  grow env b1;
  (* b1 exists but has no QC: a child of b1 must not attract votes. *)
  let b2 = Helpers.child ~reg ~view:2 b1 in
  Alcotest.(check bool) "unnotarized parent" false
    (env.p.Safety.should_vote ~block:b2 ~tc:None)

let test_streamlet_commit_three_consecutive () =
  let env = make_env Bamboo.Streamlet.make in
  let blocks = Helpers.chain ~reg 3 in
  List.iter (grow env) blocks;
  match blocks with
  | [ b1; b2; b3 ] ->
      Alcotest.check commit_target "b1: none" None (certify env b1);
      (* Genesis counts as notarized at view 0, so views 0,1,2 already form
         a consecutive triple: certifying b2 finalizes b1. *)
      Alcotest.check commit_target "b2 commits b1" (Some b1.Block.hash)
        (certify env b2);
      Alcotest.check commit_target "b3 commits middle (b2)"
        (Some b2.Block.hash) (certify env b3)
  | _ -> assert false

let test_streamlet_no_commit_with_view_gap () =
  let env = make_env Bamboo.Streamlet.make in
  let b1 = Helpers.child ~reg ~view:1 Block.genesis in
  grow env b1;
  ignore (certify env b1);
  let b2 = Helpers.child ~reg ~view:2 b1 in
  grow env b2;
  ignore (certify env b2);
  (* view gap: 2 -> 4 (a silent view in between). *)
  let b4 = Helpers.child ~reg ~view:4 b2 in
  grow env b4;
  Alcotest.check commit_target "gap blocks commit" None (certify env b4)

let test_streamlet_propose_on_longest () =
  let env = make_env Bamboo.Streamlet.make in
  let blocks = Helpers.chain ~reg 2 in
  List.iter (grow env) blocks;
  List.iter (fun b -> ignore (certify env b)) blocks;
  match (blocks, env.p.Safety.propose ~view:3 ~tc:None) with
  | [ _; b2 ], Some Safety.{ parent; _ } ->
      Alcotest.(check bool) "tip of longest notarized" true
        (Block.equal parent b2)
  | _, None -> Alcotest.fail "expected proposal"
  | _ -> assert false

let test_streamlet_flags () =
  let env = make_env Bamboo.Streamlet.make in
  Alcotest.(check bool) "votes broadcast" true env.p.Safety.vote_broadcast;
  Alcotest.(check bool) "echo on" true env.p.Safety.echo;
  let hs = make_env Bamboo.Hotstuff.make in
  Alcotest.(check bool) "HS votes to leader" false hs.p.Safety.vote_broadcast;
  Alcotest.(check bool) "HS no echo" false hs.p.Safety.echo

(* --- Fast-HotStuff --- *)

let test_fasthotstuff_tc_override () =
  let env = make_env Bamboo.Fasthotstuff.make in
  let blocks = Helpers.chain ~reg 2 in
  List.iter (grow env) blocks;
  List.iter (fun b -> ignore (certify env b)) blocks;
  (* Lock is on b2 (one-chain head). A proposal on b1 (conflicting, justify
     view 1 not above lock 2) is only votable with a TC for the previous
     view whose aggregated high-QC matches. *)
  match blocks with
  | [ b1; _b2 ] ->
      let b1_qc = Hashtbl.find env.certified b1.Block.hash in
      let fork = Helpers.child ~reg ~justify:b1_qc ~view:4 b1 in
      grow env fork;
      Alcotest.(check bool) "without TC: no vote" false
        (env.p.Safety.should_vote ~block:fork ~tc:None);
      let tms =
        List.init 3 (fun sender ->
            Timeout_msg.create reg ~sender ~view:3 ~high_qc:b1_qc)
      in
      let tc = Tcert.of_timeouts tms in
      Alcotest.(check bool) "with TC: vote" true
        (env.p.Safety.should_vote ~block:fork ~tc:(Some tc))
  | _ -> assert false

let suite =
  [
    Alcotest.test_case "certified_chain_head" `Quick test_certified_chain_head;
    Alcotest.test_case "chain head needs certification" `Quick
      test_chain_head_requires_certification;
    Alcotest.test_case "HS: three-chain commit" `Quick
      test_hotstuff_three_chain_commit;
    Alcotest.test_case "HS: lock = two-chain head" `Quick
      test_hotstuff_lock_is_two_chain_head;
    Alcotest.test_case "HS: voting rule" `Quick test_hotstuff_voting_rule;
    Alcotest.test_case "HS: unlock by higher justify" `Quick
      test_hotstuff_unlock_by_higher_justify;
    Alcotest.test_case "HS: propose on hQC" `Quick test_hotstuff_propose_on_high_qc;
    Alcotest.test_case "HS: abandoned view" `Quick test_hotstuff_abandon_blocks_vote;
    Alcotest.test_case "HS: no commit across fork gap" `Quick
      test_hotstuff_no_commit_across_fork_gap;
    Alcotest.test_case "2CHS: two-chain commit" `Quick test_twochain_commit;
    Alcotest.test_case "2CHS: lock = one-chain head" `Quick
      test_twochain_lock_is_one_chain_head;
    Alcotest.test_case "SL: longest-chain voting" `Quick
      test_streamlet_vote_longest_chain_only;
    Alcotest.test_case "SL: notarized parent required" `Quick
      test_streamlet_vote_requires_notarized_parent;
    Alcotest.test_case "SL: consecutive-view commit" `Quick
      test_streamlet_commit_three_consecutive;
    Alcotest.test_case "SL: view gap blocks commit" `Quick
      test_streamlet_no_commit_with_view_gap;
    Alcotest.test_case "SL: propose on longest" `Quick test_streamlet_propose_on_longest;
    Alcotest.test_case "SL: flags" `Quick test_streamlet_flags;
    Alcotest.test_case "FHS: TC-responsive voting" `Quick test_fasthotstuff_tc_override;
  ]
