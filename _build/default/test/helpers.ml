(* Shared test fixtures: quick construction of registries, transactions,
   blocks, votes and certified chains. *)

open Bamboo_types
module Sig = Bamboo_crypto.Sig

let registry ?(n = 4) () = Sig.setup ~n ~master:"test-master"

let tx ?(client = 0) ?(payload_len = 0) seq = Tx.make ~client ~seq ~payload_len

let txs ?(client = 0) count = List.init count (fun i -> tx ~client i)

(* A full QC for [block] signed by the first [quorum] replicas. *)
let qc_for ?(n = 4) reg (block : Block.t) =
  let f = (n - 1) / 3 in
  let quorum = (2 * f) + 1 in
  let sigs =
    List.init quorum (fun voter ->
        Sig.sign reg ~signer:voter
          (Qc.signed_payload ~block:block.hash ~view:block.view))
  in
  Qc.{ block = block.hash; view = block.view; height = block.height; sigs }

(* Extend [parent] with a certified-parent block at [view], justified by
   [justify] (defaults to a fresh full QC for the parent). *)
let child ?justify ?(proposer = 0) ?(txs = []) ~reg ~view parent =
  let justify = match justify with Some j -> j | None -> qc_for reg parent in
  Block.create ~view ~parent ~justify ~proposer ~txs ()

(* A linear certified chain of [len] blocks on top of genesis, one view per
   block starting at view 1. Returns blocks lowest-first. *)
let chain ~reg len =
  let rec build acc parent view remaining =
    if remaining = 0 then List.rev acc
    else
      let b = child ~reg ~view parent in
      build (b :: acc) b (view + 1) (remaining - 1)
  in
  build [] Block.genesis 1 len

let vote_for reg ~voter (b : Block.t) =
  Vote.create reg ~voter ~block:b.hash ~view:b.view ~height:b.height

let default_config = Bamboo.Config.default

(* Insert a list of blocks into a forest, asserting success. *)
let add_all forest blocks =
  List.iter
    (fun b ->
      match Bamboo_forest.Forest.add forest b with
      | Bamboo_forest.Forest.Added -> ()
      | Duplicate -> Alcotest.fail "unexpected duplicate"
      | Missing_parent -> Alcotest.fail "unexpected missing parent"
      | Below_prune_horizon -> Alcotest.fail "unexpected pruned add")
    blocks
