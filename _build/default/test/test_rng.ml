module Rng = Bamboo_util.Rng

let test_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int32) "same stream" (Rng.bits32 a) (Rng.bits32 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits32 a = Rng.bits32 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_int_bounds () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done

let test_int_uniformity () =
  let rng = Rng.create ~seed:9 in
  let counts = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = trials / 8 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d skewed: %d vs %d" i c expected)
    counts

let test_float_range () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "float out of range"
  done

let test_int64_bounds () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 1_000 do
    let v = Rng.int64 rng 1_000_000_000_000L in
    if v < 0L || v >= 1_000_000_000_000L then Alcotest.fail "int64 out of bounds"
  done

let test_split_independence () =
  let parent = Rng.create ~seed:21 in
  let a = Rng.split parent in
  let b = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits32 a = Rng.bits32 b then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_copy () =
  let a = Rng.create ~seed:31 in
  ignore (Rng.bits32 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int32) "copy tracks original" (Rng.bits32 a) (Rng.bits32 b)
  done

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:41 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_invalid_bound () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "int64 bounds" `Quick test_int64_bounds;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "invalid bound" `Quick test_invalid_bound;
  ]
