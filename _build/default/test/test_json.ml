module Json = Bamboo_util.Json

let json = Alcotest.testable (fun fmt v -> Format.pp_print_string fmt (Json.to_string v)) ( = )

let test_scalars () =
  Alcotest.check json "null" Json.Null (Json.of_string "null");
  Alcotest.check json "true" (Json.Bool true) (Json.of_string "true");
  Alcotest.check json "false" (Json.Bool false) (Json.of_string " false ");
  Alcotest.check json "int" (Json.Int 42) (Json.of_string "42");
  Alcotest.check json "negative" (Json.Int (-17)) (Json.of_string "-17");
  Alcotest.check json "float" (Json.Float 3.5) (Json.of_string "3.5");
  Alcotest.check json "exponent" (Json.Float 1200.0) (Json.of_string "1.2e3");
  Alcotest.check json "string" (Json.String "hi") (Json.of_string "\"hi\"")

let test_collections () =
  Alcotest.check json "empty list" (Json.List []) (Json.of_string "[]");
  Alcotest.check json "list" (Json.List [ Json.Int 1; Json.Int 2 ])
    (Json.of_string "[1, 2]");
  Alcotest.check json "empty obj" (Json.Obj []) (Json.of_string "{}");
  Alcotest.check json "obj"
    (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true ]) ])
    (Json.of_string {|{"a": 1, "b": [true]}|})

let test_nesting () =
  let src = {|{"x": {"y": {"z": [1, {"w": null}]}}}|} in
  let v = Json.of_string src in
  let z = Json.(member "z" (member "y" (member "x" v))) in
  match z with
  | Json.List [ Json.Int 1; Json.Obj [ ("w", Json.Null) ] ] -> ()
  | _ -> Alcotest.fail "wrong nested structure"

let test_escapes () =
  Alcotest.check json "newline" (Json.String "a\nb") (Json.of_string {|"a\nb"|});
  Alcotest.check json "quote" (Json.String {|say "hi"|})
    (Json.of_string {|"say \"hi\""|});
  Alcotest.check json "backslash" (Json.String {|a\b|}) (Json.of_string {|"a\\b"|});
  Alcotest.check json "unicode" (Json.String "A") (Json.of_string {|"A"|});
  Alcotest.check json "two-byte utf8" (Json.String "\xc3\xa9")
    (Json.of_string {|"é"|})

let test_parse_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  fails "";
  fails "{";
  fails "[1,";
  fails "tru";
  fails {|{"a" 1}|};
  fails {|{"a": 1,}|};
  fails "[1] trailing";
  fails {|"unterminated|};
  fails {|"bad \q escape"|}

let test_round_trip () =
  let v =
    Json.Obj
      [
        ("name", Json.String "bamboo");
        ("n", Json.Int 4);
        ("timeout", Json.Float 0.25);
        ("flags", Json.List [ Json.Bool true; Json.Null ]);
        ("nested", Json.Obj [ ("k", Json.String "v\n\"q\"") ]);
      ]
  in
  Alcotest.check json "compact" v (Json.of_string (Json.to_string v));
  Alcotest.check json "indented" v (Json.of_string (Json.to_string ~indent:true v))

let test_accessors () =
  let v = Json.of_string {|{"i": 3, "f": 2.5, "b": true, "s": "x", "l": [1]}|} in
  Alcotest.(check int) "to_int" 3 Json.(to_int (member "i" v));
  Alcotest.(check (float 0.0)) "to_float of int" 3.0 Json.(to_float (member "i" v));
  Alcotest.(check (float 0.0)) "to_float" 2.5 Json.(to_float (member "f" v));
  Alcotest.(check bool) "to_bool" true Json.(to_bool (member "b" v));
  Alcotest.(check string) "get_string" "x" Json.(get_string (member "s" v));
  Alcotest.(check int) "to_list" 1 (List.length Json.(to_list (member "l" v)));
  Alcotest.check json "missing member" Json.Null (Json.member "zzz" v)

let test_accessor_errors () =
  let v = Json.of_string {|{"s": "x"}|} in
  (match Json.to_int (Json.member "s" v) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  match Json.member "k" (Json.Int 3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "member of non-object"

let test_integral_float_to_int () =
  Alcotest.(check int) "3.0 as int" 3 (Json.to_int (Json.Float 3.0))

let round_trip_prop =
  let open QCheck in
  let rec gen_value depth =
    let open Gen in
    if depth = 0 then
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.Int i) small_signed_int;
          map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 10));
        ]
    else
      oneof
        [
          map (fun i -> Json.Int i) small_signed_int;
          map (fun l -> Json.List l) (list_size (int_range 0 4) (gen_value (depth - 1)));
          map
            (fun kvs -> Json.Obj kvs)
            (list_size (int_range 0 4)
               (pair (string_size ~gen:printable (int_range 1 6)) (gen_value (depth - 1))));
        ]
  in
  Test.make ~name:"to_string/of_string round trip" ~count:300
    (make ~print:Json.to_string (gen_value 3))
    (fun v -> Json.of_string (Json.to_string v) = v)

let suite =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "collections" `Quick test_collections;
    Alcotest.test_case "nesting" `Quick test_nesting;
    Alcotest.test_case "escapes" `Quick test_escapes;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "round trip" `Quick test_round_trip;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "accessor errors" `Quick test_accessor_errors;
    Alcotest.test_case "integral float to int" `Quick test_integral_float_to_int;
    QCheck_alcotest.to_alcotest round_trip_prop;
  ]
