module Http = Bamboo_network.Http

let with_server handler f =
  let server = Http.start ~port:0 ~handler in
  Fun.protect ~finally:(fun () -> Http.stop server) (fun () -> f (Http.port server))

let echo_handler (req : Http.request) =
  {
    Http.status = 200;
    body = Printf.sprintf "%s %s %s" req.meth req.path req.body;
  }

let test_get () =
  with_server echo_handler (fun port ->
      match Http.request ~host:"127.0.0.1" ~port ~meth:"GET" ~path:"/hello" () with
      | Ok { status; body } ->
          Alcotest.(check int) "status" 200 status;
          Alcotest.(check string) "echo" "GET /hello " body
      | Error e -> Alcotest.fail e)

let test_post_body () =
  with_server echo_handler (fun port ->
      match
        Http.request ~body:"payload bytes" ~host:"127.0.0.1" ~port ~meth:"post"
          ~path:"/tx?wait=true" ()
      with
      | Ok { status; body } ->
          Alcotest.(check int) "status" 200 status;
          Alcotest.(check string) "method upcased, body through"
            "POST /tx?wait=true payload bytes" body
      | Error e -> Alcotest.fail e)

let test_status_codes () =
  let handler (req : Http.request) =
    if req.path = "/missing" then { Http.status = 404; body = "nope" }
    else { Http.status = 200; body = "ok" }
  in
  with_server handler (fun port ->
      match Http.request ~host:"127.0.0.1" ~port ~meth:"GET" ~path:"/missing" () with
      | Ok { status; body } ->
          Alcotest.(check int) "404" 404 status;
          Alcotest.(check string) "body" "nope" body
      | Error e -> Alcotest.fail e)

let test_handler_exception_is_500 () =
  let handler _ = failwith "boom" in
  with_server handler (fun port ->
      match Http.request ~host:"127.0.0.1" ~port ~meth:"GET" ~path:"/" () with
      | Ok { status; _ } -> Alcotest.(check int) "500" 500 status
      | Error e -> Alcotest.fail e)

let test_binary_body () =
  let blob = String.init 512 (fun i -> Char.chr (i mod 256)) in
  let handler (req : Http.request) = { Http.status = 200; body = req.body } in
  with_server handler (fun port ->
      match
        Http.request ~body:blob ~host:"127.0.0.1" ~port ~meth:"POST" ~path:"/b" ()
      with
      | Ok { body; _ } -> Alcotest.(check string) "binary intact" blob body
      | Error e -> Alcotest.fail e)

let test_concurrent_requests () =
  let handler (req : Http.request) =
    Thread.delay 0.01;
    { Http.status = 200; body = req.path }
  in
  with_server handler (fun port ->
      let results = Array.make 8 false in
      let threads =
        List.init 8 (fun i ->
            Thread.create
              (fun () ->
                match
                  Http.request ~host:"127.0.0.1" ~port ~meth:"GET"
                    ~path:(Printf.sprintf "/%d" i) ()
                with
                | Ok { body; _ } when body = Printf.sprintf "/%d" i ->
                    results.(i) <- true
                | Ok _ | Error _ -> ())
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i ok -> Alcotest.(check bool) (Printf.sprintf "req %d" i) true ok)
        results)

let test_connection_refused () =
  match
    Http.request ~timeout_s:0.5 ~host:"127.0.0.1" ~port:1 ~meth:"GET" ~path:"/" ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected connection failure"

let suite =
  [
    Alcotest.test_case "GET" `Quick test_get;
    Alcotest.test_case "POST body" `Quick test_post_body;
    Alcotest.test_case "status codes" `Quick test_status_codes;
    Alcotest.test_case "handler exception = 500" `Quick test_handler_exception_is_500;
    Alcotest.test_case "binary body" `Quick test_binary_body;
    Alcotest.test_case "concurrent requests" `Quick test_concurrent_requests;
    Alcotest.test_case "connection refused" `Quick test_connection_refused;
  ]
