(* Transactions, blocks, Merkle roots, QCs, votes, timeouts and TCs. *)

open Bamboo_types
module Sig = Bamboo_crypto.Sig
module Sha256 = Bamboo_crypto.Sha256

let reg = Helpers.registry ()

(* --- transactions --- *)

let test_tx_basics () =
  let t = Tx.make ~client:3 ~seq:7 ~payload_len:128 in
  Alcotest.(check string) "id" "3:7" (Tx.id_to_string t.id);
  Alcotest.(check int) "wire size" (16 + 128) (Tx.wire_size t);
  Alcotest.(check bool) "equal" true (Tx.equal t t);
  Alcotest.(check int) "compare same" 0 (Tx.compare_id t.id t.id);
  Alcotest.(check bool) "ordering" true
    (Tx.compare_id { client = 1; seq = 9 } { client = 2; seq = 0 } < 0)

let test_tx_negative_payload () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Tx.make: negative payload length") (fun () ->
      ignore (Tx.make ~client:0 ~seq:0 ~payload_len:(-1)))

let test_tx_with_data () =
  let t = Tx.make_with_data ~client:1 ~seq:2 ~data:"P1:kv" in
  Alcotest.(check int) "payload length = data length" 5 t.payload_len;
  Alcotest.(check int) "wire size includes data" (16 + 5) (Tx.wire_size t);
  let plain = Tx.make ~client:1 ~seq:2 ~payload_len:5 in
  Alcotest.(check bool) "data distinguishes txs" false (Tx.equal t plain)

let test_merkle_commits_to_data () =
  let a = [ Tx.make_with_data ~client:0 ~seq:0 ~data:"aaaa" ] in
  let b = [ Tx.make_with_data ~client:0 ~seq:0 ~data:"bbbb" ] in
  Alcotest.(check bool) "same id, different data, different root" true
    (Block.merkle_root a <> Block.merkle_root b)

(* --- merkle root --- *)

let test_merkle_empty () =
  Alcotest.(check string) "empty = H(\"\")" (Sha256.digest "")
    (Block.merkle_root [])

let leaf (t : Tx.t) = Sha256.digest (Tx.id_to_string t.id ^ "|" ^ t.data)

let test_merkle_single () =
  let t = Helpers.tx 1 in
  Alcotest.(check string) "single leaf" (leaf t) (Block.merkle_root [ t ])

let test_merkle_pair () =
  let a = Helpers.tx 1 and b = Helpers.tx 2 in
  Alcotest.(check string) "pair"
    (Sha256.digest (leaf a ^ leaf b))
    (Block.merkle_root [ a; b ])

let test_merkle_odd_duplicates_last () =
  let l = List.map leaf in
  match l (Helpers.txs 3) with
  | [ la; lb; lc ] ->
      let expected =
        Sha256.digest (Sha256.digest (la ^ lb) ^ Sha256.digest (lc ^ lc))
      in
      Alcotest.(check string) "odd level" expected
        (Block.merkle_root (Helpers.txs 3))
  | _ -> assert false

let test_merkle_order_sensitive () =
  let a = Helpers.txs 4 in
  let b = List.rev a in
  Alcotest.(check bool) "order matters" true
    (Block.merkle_root a <> Block.merkle_root b)

(* --- blocks --- *)

let test_genesis () =
  let g = Block.genesis in
  Alcotest.(check int) "view" 0 g.view;
  Alcotest.(check int) "height" 0 g.height;
  Alcotest.(check bool) "justify is genesis QC" true (Qc.is_genesis g.justify);
  Alcotest.(check string) "hash stable" Block.genesis_hash g.hash

let test_block_create () =
  let b = Helpers.child ~reg ~view:1 Block.genesis in
  Alcotest.(check int) "height" 1 b.height;
  Alcotest.(check string) "parent" Block.genesis_hash b.parent;
  Alcotest.(check int) "justify view" 0 b.justify.view;
  Alcotest.(check int) "hash length" 32 (String.length b.hash)

let test_block_hash_commits_to_fields () =
  let b1 = Helpers.child ~reg ~view:1 Block.genesis in
  let b2 = Helpers.child ~reg ~view:2 Block.genesis in
  Alcotest.(check bool) "view changes hash" true (not (Block.equal b1 b2));
  let with_tx =
    Helpers.child ~reg ~view:1 ~txs:(Helpers.txs 1) Block.genesis
  in
  Alcotest.(check bool) "txs change hash" true (not (Block.equal b1 with_tx));
  let other_proposer = Helpers.child ~reg ~view:1 ~proposer:2 Block.genesis in
  Alcotest.(check bool) "proposer changes hash" true
    (not (Block.equal b1 other_proposer))

let test_flat_vs_merkle_root () =
  let txs = Helpers.txs 5 in
  let m =
    Block.create ~root:`Merkle ~view:1 ~parent:Block.genesis
      ~justify:(Helpers.qc_for reg Block.genesis) ~proposer:0 ~txs ()
  in
  let f =
    Block.create ~root:`Flat ~view:1 ~parent:Block.genesis
      ~justify:(Helpers.qc_for reg Block.genesis) ~proposer:0 ~txs ()
  in
  Alcotest.(check bool) "roots differ" true (m.tx_root <> f.tx_root);
  Alcotest.(check bool) "hashes differ" true (not (Block.equal m f))

let test_block_wire_size_grows () =
  let small = Helpers.child ~reg ~view:1 ~txs:(Helpers.txs 1) Block.genesis in
  let large = Helpers.child ~reg ~view:1 ~txs:(Helpers.txs 100) Block.genesis in
  Alcotest.(check bool) "monotone" true
    (Block.wire_size large > Block.wire_size small)

(* --- QCs --- *)

let test_qc_verify () =
  let b = Helpers.child ~reg ~view:1 Block.genesis in
  let qc = Helpers.qc_for reg b in
  Alcotest.(check bool) "valid" true (Qc.verify reg ~quorum:3 qc);
  Alcotest.(check bool) "higher quorum fails" false (Qc.verify reg ~quorum:4 qc)

let test_qc_duplicate_sigs_dont_count () =
  let b = Helpers.child ~reg ~view:1 Block.genesis in
  let s =
    Sig.sign reg ~signer:0 (Qc.signed_payload ~block:b.hash ~view:b.view)
  in
  let qc = Qc.{ block = b.hash; view = b.view; height = b.height; sigs = [ s; s; s ] } in
  Alcotest.(check bool) "duplicates rejected" false (Qc.verify reg ~quorum:3 qc)

let test_qc_bad_sig () =
  let b = Helpers.child ~reg ~view:1 Block.genesis in
  let good = Helpers.qc_for reg b in
  let bad_sig = Sig.sign reg ~signer:3 "unrelated" in
  let qc = { good with Qc.sigs = bad_sig :: List.tl good.Qc.sigs } in
  Alcotest.(check bool) "invalid share rejected" false (Qc.verify reg ~quorum:3 qc)

let test_qc_genesis () =
  let qc = Qc.genesis ~block:Block.genesis_hash in
  Alcotest.(check bool) "is_genesis" true (Qc.is_genesis qc);
  Alcotest.(check bool) "always verifies" true (Qc.verify reg ~quorum:3 qc)

let test_qc_max_by_view () =
  let a = Qc.genesis ~block:Block.genesis_hash in
  let b = { a with Qc.view = 5 } in
  Alcotest.(check int) "max" 5 (Qc.max_by_view a b).Qc.view;
  Alcotest.(check int) "max sym" 5 (Qc.max_by_view b a).Qc.view

(* --- votes --- *)

let test_vote_verify () =
  let b = Helpers.child ~reg ~view:3 Block.genesis in
  let v = Helpers.vote_for reg ~voter:2 b in
  Alcotest.(check bool) "valid" true (Vote.verify reg v);
  Alcotest.(check bool) "tampered view" false
    (Vote.verify reg { v with Vote.view = 4 });
  Alcotest.(check bool) "tampered voter" false
    (Vote.verify reg { v with Vote.voter = 1 })

(* --- timeouts and TCs --- *)

let test_timeout_verify () =
  let high_qc = Qc.genesis ~block:Block.genesis_hash in
  let tm = Timeout_msg.create reg ~sender:1 ~view:4 ~high_qc in
  Alcotest.(check bool) "valid" true (Timeout_msg.verify reg tm);
  Alcotest.(check bool) "tampered" false
    (Timeout_msg.verify reg { tm with Timeout_msg.view = 5 })

let test_tc_assembly () =
  let qc_low = Qc.genesis ~block:Block.genesis_hash in
  let b = Helpers.child ~reg ~view:2 Block.genesis in
  let qc_high = Helpers.qc_for reg b in
  let tms =
    [
      Timeout_msg.create reg ~sender:0 ~view:4 ~high_qc:qc_low;
      Timeout_msg.create reg ~sender:1 ~view:4 ~high_qc:qc_high;
      Timeout_msg.create reg ~sender:2 ~view:4 ~high_qc:qc_low;
    ]
  in
  let tc = Tcert.of_timeouts tms in
  Alcotest.(check int) "view" 4 tc.Tcert.view;
  Alcotest.(check int) "keeps max high_qc" 2 tc.Tcert.high_qc.Qc.view;
  Alcotest.(check bool) "verifies" true (Tcert.verify reg ~quorum:3 tc);
  Alcotest.(check bool) "quorum 4 fails" false (Tcert.verify reg ~quorum:4 tc)

let test_tc_rejects_mixed_views () =
  let high_qc = Qc.genesis ~block:Block.genesis_hash in
  let tms =
    [
      Timeout_msg.create reg ~sender:0 ~view:4 ~high_qc;
      Timeout_msg.create reg ~sender:1 ~view:5 ~high_qc;
    ]
  in
  Alcotest.check_raises "mixed views"
    (Invalid_argument "Tcert.of_timeouts: mixed views") (fun () ->
      ignore (Tcert.of_timeouts tms))

let test_tc_rejects_duplicates () =
  let high_qc = Qc.genesis ~block:Block.genesis_hash in
  let tm = Timeout_msg.create reg ~sender:0 ~view:4 ~high_qc in
  Alcotest.check_raises "duplicate sender"
    (Invalid_argument "Tcert.of_timeouts: duplicate sender") (fun () ->
      ignore (Tcert.of_timeouts [ tm; tm ]))

let test_tc_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Tcert.of_timeouts: empty timeout list") (fun () ->
      ignore (Tcert.of_timeouts []))

(* --- messages --- *)

let test_message_keys_distinct () =
  let b = Helpers.child ~reg ~view:1 Block.genesis in
  let p = Message.Proposal { block = b; tc = None } in
  let v = Message.Vote (Helpers.vote_for reg ~voter:0 b) in
  let v2 = Message.Vote (Helpers.vote_for reg ~voter:1 b) in
  let tm =
    Message.Timeout
      (Timeout_msg.create reg ~sender:0 ~view:1
         ~high_qc:(Qc.genesis ~block:Block.genesis_hash))
  in
  let keys = [ Message.key p; Message.key v; Message.key v2; Message.key tm ] in
  Alcotest.(check int) "all distinct" 4
    (List.length (List.sort_uniq compare keys))

let test_message_view_and_label () =
  let b = Helpers.child ~reg ~view:6 Block.genesis in
  Alcotest.(check int) "proposal view" 6
    (Message.view (Message.Proposal { block = b; tc = None }));
  Alcotest.(check string) "label" "proposal"
    (Message.type_label (Message.Proposal { block = b; tc = None }))

let suite =
  [
    Alcotest.test_case "tx basics" `Quick test_tx_basics;
    Alcotest.test_case "tx negative payload" `Quick test_tx_negative_payload;
    Alcotest.test_case "tx with data" `Quick test_tx_with_data;
    Alcotest.test_case "merkle commits to data" `Quick test_merkle_commits_to_data;
    Alcotest.test_case "merkle empty" `Quick test_merkle_empty;
    Alcotest.test_case "merkle single" `Quick test_merkle_single;
    Alcotest.test_case "merkle pair" `Quick test_merkle_pair;
    Alcotest.test_case "merkle odd" `Quick test_merkle_odd_duplicates_last;
    Alcotest.test_case "merkle order-sensitive" `Quick test_merkle_order_sensitive;
    Alcotest.test_case "genesis" `Quick test_genesis;
    Alcotest.test_case "block create" `Quick test_block_create;
    Alcotest.test_case "hash commits to fields" `Quick test_block_hash_commits_to_fields;
    Alcotest.test_case "flat vs merkle root" `Quick test_flat_vs_merkle_root;
    Alcotest.test_case "wire size monotone" `Quick test_block_wire_size_grows;
    Alcotest.test_case "qc verify" `Quick test_qc_verify;
    Alcotest.test_case "qc duplicate sigs" `Quick test_qc_duplicate_sigs_dont_count;
    Alcotest.test_case "qc bad share" `Quick test_qc_bad_sig;
    Alcotest.test_case "qc genesis" `Quick test_qc_genesis;
    Alcotest.test_case "qc max_by_view" `Quick test_qc_max_by_view;
    Alcotest.test_case "vote verify" `Quick test_vote_verify;
    Alcotest.test_case "timeout verify" `Quick test_timeout_verify;
    Alcotest.test_case "tc assembly" `Quick test_tc_assembly;
    Alcotest.test_case "tc mixed views" `Quick test_tc_rejects_mixed_views;
    Alcotest.test_case "tc duplicate senders" `Quick test_tc_rejects_duplicates;
    Alcotest.test_case "tc empty" `Quick test_tc_empty;
    Alcotest.test_case "message keys" `Quick test_message_keys_distinct;
    Alcotest.test_case "message view/label" `Quick test_message_view_and_label;
  ]
