module Sha256 = Bamboo_crypto.Sha256

(* NIST / well-known vectors. *)
let vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "The quick brown fox jumps over the lazy dog",
      "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
    ( String.make 1000000 'a',
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" );
  ]

let test_vectors () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "digest of %d bytes" (String.length input))
        expected (Sha256.digest_hex input))
    vectors

let test_incremental_equals_oneshot () =
  let msg = "hello, chained BFT world! " ^ String.make 200 'x' in
  let ctx = Sha256.init () in
  Sha256.feed ctx (String.sub msg 0 10);
  Sha256.feed ctx (String.sub msg 10 1);
  Sha256.feed ctx (String.sub msg 11 (String.length msg - 11));
  Alcotest.(check string) "same digest" (Sha256.digest msg) (Sha256.finalize ctx)

let test_feed_sub () =
  let msg = "0123456789" in
  let ctx = Sha256.init () in
  Sha256.feed_sub ctx msg ~pos:2 ~len:5;
  Alcotest.(check string) "substring digest" (Sha256.digest "23456")
    (Sha256.finalize ctx)

let test_feed_sub_bounds () =
  let ctx = Sha256.init () in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Sha256.feed_sub: range out of bounds") (fun () ->
      Sha256.feed_sub ctx "abc" ~pos:1 ~len:5)

let test_block_boundaries () =
  (* Lengths around the 64-byte block and 56-byte padding boundaries. *)
  List.iter
    (fun len ->
      let msg = String.init len (fun i -> Char.chr (i mod 256)) in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.feed ctx (String.make 1 c)) msg;
      Alcotest.(check string)
        (Printf.sprintf "len %d byte-by-byte" len)
        (Sha256.digest_hex msg)
        (Sha256.hex (Sha256.finalize ctx)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128; 129 ]

let test_digest_size () =
  Alcotest.(check int) "32 bytes" 32 (String.length (Sha256.digest "x"))

let test_hex () =
  Alcotest.(check string) "hex" "00ff10" (Sha256.hex "\x00\xff\x10")

let incremental_prop =
  let open QCheck in
  let gen =
    Gen.pair
      (Gen.string_size ~gen:Gen.char (Gen.int_range 0 300))
      (Gen.int_range 0 300)
  in
  Test.make ~name:"random split incremental = one-shot" ~count:200
    (make ~print:(fun (s, i) -> Printf.sprintf "%d bytes, split %d" (String.length s) i) gen)
    (fun (s, split) ->
      let split = if String.length s = 0 then 0 else split mod (String.length s + 1) in
      let ctx = Sha256.init () in
      Sha256.feed ctx (String.sub s 0 split);
      Sha256.feed ctx (String.sub s split (String.length s - split));
      Sha256.finalize ctx = Sha256.digest s)

let collision_resistance_smoke =
  let open QCheck in
  let gen = Gen.pair (Gen.string_size ~gen:Gen.char (Gen.int_range 0 64))
      (Gen.string_size ~gen:Gen.char (Gen.int_range 0 64)) in
  Test.make ~name:"distinct inputs hash differently (smoke)" ~count:300
    (make ~print:(fun (a, b) -> Printf.sprintf "%S vs %S" a b) gen)
    (fun (a, b) -> a = b || Sha256.digest a <> Sha256.digest b)

let suite =
  [
    Alcotest.test_case "NIST vectors" `Quick test_vectors;
    Alcotest.test_case "incremental = one-shot" `Quick test_incremental_equals_oneshot;
    Alcotest.test_case "feed_sub" `Quick test_feed_sub;
    Alcotest.test_case "feed_sub bounds" `Quick test_feed_sub_bounds;
    Alcotest.test_case "block boundaries" `Quick test_block_boundaries;
    Alcotest.test_case "digest size" `Quick test_digest_size;
    Alcotest.test_case "hex" `Quick test_hex;
    QCheck_alcotest.to_alcotest incremental_prop;
    QCheck_alcotest.to_alcotest collision_resistance_smoke;
  ]
