(* Deque: unit behaviour plus a model-based comparison against a plain
   list implementation under random operation sequences. *)

module Deque = Bamboo_util.Deque

let test_empty () =
  let d = Deque.create () in
  Alcotest.(check int) "length" 0 (Deque.length d);
  Alcotest.(check bool) "is_empty" true (Deque.is_empty d);
  Alcotest.(check (option int)) "pop_front" None (Deque.pop_front d);
  Alcotest.(check (option int)) "pop_back" None (Deque.pop_back d);
  Alcotest.(check (option int)) "peek_front" None (Deque.peek_front d);
  Alcotest.(check (option int)) "peek_back" None (Deque.peek_back d)

let test_fifo () =
  let d = Deque.create () in
  List.iter (Deque.push_back d) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3; 4; 5 ] (Deque.to_list d);
  Alcotest.(check (option int)) "pop" (Some 1) (Deque.pop_front d);
  Alcotest.(check (option int)) "pop" (Some 2) (Deque.pop_front d);
  Alcotest.(check int) "length" 3 (Deque.length d)

let test_push_front () =
  let d = Deque.of_list [ 3; 4 ] in
  Deque.push_front d 2;
  Deque.push_front d 1;
  Alcotest.(check (list int)) "order" [ 1; 2; 3; 4 ] (Deque.to_list d);
  Alcotest.(check (option int)) "back" (Some 4) (Deque.pop_back d);
  Alcotest.(check (option int)) "front" (Some 1) (Deque.pop_front d)

let test_growth () =
  let d = Deque.create ~capacity:2 () in
  for i = 1 to 100 do
    Deque.push_back d i
  done;
  Alcotest.(check int) "length" 100 (Deque.length d);
  Alcotest.(check (option int)) "front" (Some 1) (Deque.peek_front d);
  Alcotest.(check (option int)) "back" (Some 100) (Deque.peek_back d)

let test_wraparound () =
  (* Exercise head wrapping past the ring boundary in both directions. *)
  let d = Deque.create ~capacity:4 () in
  List.iter (Deque.push_back d) [ 1; 2; 3 ];
  ignore (Deque.pop_front d);
  ignore (Deque.pop_front d);
  List.iter (Deque.push_back d) [ 4; 5; 6 ];
  Deque.push_front d 0;
  Alcotest.(check (list int)) "order" [ 0; 3; 4; 5; 6 ] (Deque.to_list d)

let test_clear () =
  let d = Deque.of_list [ 1; 2; 3 ] in
  Deque.clear d;
  Alcotest.(check int) "length" 0 (Deque.length d);
  Deque.push_back d 9;
  Alcotest.(check (list int)) "reusable" [ 9 ] (Deque.to_list d)

let test_iter_exists () =
  let d = Deque.of_list [ 1; 2; 3 ] in
  let sum = ref 0 in
  Deque.iter (fun x -> sum := !sum + x) d;
  Alcotest.(check int) "iter sum" 6 !sum;
  Alcotest.(check bool) "exists" true (Deque.exists (fun x -> x = 2) d);
  Alcotest.(check bool) "not exists" false (Deque.exists (fun x -> x = 7) d)

let test_invalid_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Deque.create: capacity must be positive") (fun () ->
      ignore (Deque.create ~capacity:0 ()))

(* Model-based property: a random sequence of operations behaves like the
   same sequence applied to a list. *)
let model_prop =
  let open QCheck in
  let op =
    Gen.oneof
      [
        Gen.map (fun x -> `Push_back x) Gen.small_int;
        Gen.map (fun x -> `Push_front x) Gen.small_int;
        Gen.return `Pop_front;
        Gen.return `Pop_back;
      ]
  in
  Test.make ~name:"deque behaves like a list model" ~count:300
    (make ~print:(fun ops -> string_of_int (List.length ops)) (Gen.list_size (Gen.int_range 0 60) op))
    (fun ops ->
      let d = Deque.create ~capacity:2 () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | `Push_back x ->
              Deque.push_back d x;
              model := !model @ [ x ];
              Deque.to_list d = !model
          | `Push_front x ->
              Deque.push_front d x;
              model := x :: !model;
              Deque.to_list d = !model
          | `Pop_front -> (
              let got = Deque.pop_front d in
              match !model with
              | [] -> got = None
              | x :: rest ->
                  model := rest;
                  got = Some x)
          | `Pop_back -> (
              let got = Deque.pop_back d in
              match List.rev !model with
              | [] -> got = None
              | x :: rest ->
                  model := List.rev rest;
                  got = Some x))
        ops)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "fifo" `Quick test_fifo;
    Alcotest.test_case "push_front" `Quick test_push_front;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "wraparound" `Quick test_wraparound;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "iter and exists" `Quick test_iter_exists;
    Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
    QCheck_alcotest.to_alcotest model_prop;
  ]
