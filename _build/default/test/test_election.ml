module Election = Bamboo.Election
module Config = Bamboo.Config

let test_rotation () =
  let e = Election.create Config.Rotation ~n:4 in
  Alcotest.(check int) "view 1" 1 (Election.leader e ~view:1);
  Alcotest.(check int) "view 4 wraps" 0 (Election.leader e ~view:4);
  Alcotest.(check int) "view 7" 3 (Election.leader e ~view:7);
  Alcotest.(check bool) "is_leader" true
    (Election.is_leader e ~view:2 ~self:2);
  Alcotest.(check bool) "not leader" false
    (Election.is_leader e ~view:2 ~self:3)

let test_rotation_fairness () =
  let e = Election.create Config.Rotation ~n:5 in
  let counts = Array.make 5 0 in
  for v = 1 to 100 do
    let l = Election.leader e ~view:v in
    counts.(l) <- counts.(l) + 1
  done;
  Array.iter (fun c -> Alcotest.(check int) "even rotation" 20 c) counts

let test_static () =
  let e = Election.create (Config.Static 2) ~n:4 in
  for v = 1 to 10 do
    Alcotest.(check int) "always 2" 2 (Election.leader e ~view:v)
  done

let test_hashed_deterministic_and_in_range () =
  let e1 = Election.create Config.Hashed ~n:7 in
  let e2 = Election.create Config.Hashed ~n:7 in
  for v = 1 to 200 do
    let l = Election.leader e1 ~view:v in
    Alcotest.(check int) "deterministic" l (Election.leader e2 ~view:v);
    if l < 0 || l >= 7 then Alcotest.fail "out of range"
  done

let test_hashed_covers_all () =
  let e = Election.create Config.Hashed ~n:4 in
  let seen = Array.make 4 false in
  for v = 1 to 100 do
    seen.(Election.leader e ~view:v) <- true
  done;
  Array.iter (fun s -> Alcotest.(check bool) "every replica leads" true s) seen

let test_invalid () =
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Election.create: n must be positive") (fun () ->
      ignore (Election.create Config.Rotation ~n:0));
  Alcotest.check_raises "static out of range"
    (Invalid_argument "Election.create: static leader out of range") (fun () ->
      ignore (Election.create (Config.Static 4) ~n:4))

let suite =
  [
    Alcotest.test_case "rotation" `Quick test_rotation;
    Alcotest.test_case "rotation fairness" `Quick test_rotation_fairness;
    Alcotest.test_case "static" `Quick test_static;
    Alcotest.test_case "hashed deterministic" `Quick
      test_hashed_deterministic_and_in_range;
    Alcotest.test_case "hashed coverage" `Quick test_hashed_covers_all;
    Alcotest.test_case "invalid" `Quick test_invalid;
  ]
