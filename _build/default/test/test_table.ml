module Table = Bamboo_util.Table

let test_alignment () =
  let out =
    Table.render ~header:[ "name"; "value" ]
      ~rows:[ [ "a"; "1" ]; [ "longer-name"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: _sep :: row1 :: row2 :: _ ->
      (* All cells of one column start at the same offset. *)
      let idx s = String.index s 'v' in
      ignore (idx header);
      Alcotest.(check bool) "header contains name" true
        (String.length header >= String.length "name         value");
      Alcotest.(check bool) "row1 padded to column" true
        (String.length row1 >= String.index header 'v');
      Alcotest.(check bool) "row2 full width" true
        (String.length row2 >= String.index header 'v')
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check bool) "separator present" true
    (String.length out > 0 && String.contains out '-')

let test_short_rows_padded () =
  let out = Table.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "1" ] ] in
  Alcotest.(check bool) "renders without exception" true (String.length out > 0)

let test_fmt_float () =
  Alcotest.(check string) "default decimals" "3.14" (Table.fmt_float 3.14159);
  Alcotest.(check string) "custom decimals" "3.1416"
    (Table.fmt_float ~decimals:4 3.14159)

let test_fmt_si () =
  Alcotest.(check string) "plain" "12.0" (Table.fmt_si 12.0);
  Alcotest.(check string) "kilo" "131.2k" (Table.fmt_si 131_200.0);
  Alcotest.(check string) "mega" "2.5M" (Table.fmt_si 2_500_000.0);
  Alcotest.(check string) "giga" "1.2G" (Table.fmt_si 1_200_000_000.0)

let test_experiment_registry () =
  (* Every documented experiment is runnable by name; unknown names fail. *)
  let names = Bamboo.Experiments.names in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected names))
    [
      "table2"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14";
      "fig15"; "ablation_broadcast"; "ablation_election"; "ablation_echo";
      "ablation_fhs"; "ablation_backoff";
    ];
  match Bamboo.Experiments.run_one ~scale:Bamboo.Experiments.Quick "nonsense" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown experiment accepted"

let test_sweep_rates_sensible () =
  let config = Bamboo.Config.default in
  let rates =
    Bamboo.Experiments.saturation_sweep_rates ~config
      ~scale:Bamboo.Experiments.Quick
  in
  Alcotest.(check bool) "non-empty" true (List.length rates >= 3);
  let sorted = List.sort compare rates in
  Alcotest.(check bool) "increasing" true (rates = sorted);
  List.iter
    (fun r -> if r <= 0.0 then Alcotest.fail "non-positive rate")
    rates

let suite =
  [
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "short rows" `Quick test_short_rows_padded;
    Alcotest.test_case "fmt_float" `Quick test_fmt_float;
    Alcotest.test_case "fmt_si" `Quick test_fmt_si;
    Alcotest.test_case "experiment registry" `Quick test_experiment_registry;
    Alcotest.test_case "sweep rates" `Quick test_sweep_rates_sensible;
  ]
