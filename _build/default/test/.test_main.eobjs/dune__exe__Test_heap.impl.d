test/test_heap.ml: Alcotest Bamboo_util Gen List Option QCheck QCheck_alcotest Test
