test/test_http.ml: Alcotest Array Bamboo_network Char Fun List Printf String Thread
