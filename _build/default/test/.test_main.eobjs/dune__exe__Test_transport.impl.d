test/test_transport.ml: Alcotest Array Bamboo_network Bamboo_types Block Codec Helpers List Message Thread
