test/helpers.ml: Alcotest Bamboo Bamboo_crypto Bamboo_forest Bamboo_types Block List Qc Tx Vote
