test/test_config.ml: Alcotest Bamboo Bamboo_util List
