test/test_model.ml: Alcotest Bamboo Float List Option
