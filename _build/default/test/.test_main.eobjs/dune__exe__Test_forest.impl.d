test/test_forest.ml: Alcotest Bamboo_forest Bamboo_types Block Gen Helpers List QCheck QCheck_alcotest String Test
