test/test_quorum.ml: Alcotest Bamboo_quorum Bamboo_types Block Gen Helpers List Printf QCheck QCheck_alcotest Qc Tcert Test Timeout_msg
