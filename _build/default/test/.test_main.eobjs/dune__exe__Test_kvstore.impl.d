test/test_kvstore.ml: Alcotest Bamboo Bamboo_types Gen List Printf QCheck QCheck_alcotest String Test Tx
