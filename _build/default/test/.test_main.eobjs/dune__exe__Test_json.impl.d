test/test_json.ml: Alcotest Bamboo_util Format Gen List QCheck QCheck_alcotest Test
