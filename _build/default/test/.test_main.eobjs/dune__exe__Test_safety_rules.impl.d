test/test_safety_rules.ml: Alcotest Bamboo Bamboo_forest Bamboo_types Block Hashtbl Helpers Ids List Qc Tcert Timeout_msg
