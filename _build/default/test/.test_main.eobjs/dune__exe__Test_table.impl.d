test/test_table.ml: Alcotest Bamboo Bamboo_util List String
