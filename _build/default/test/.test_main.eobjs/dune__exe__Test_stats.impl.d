test/test_stats.ml: Alcotest Bamboo_util Float Gen List Printf QCheck QCheck_alcotest Test
