test/test_dist.ml: Alcotest Bamboo_util Float
