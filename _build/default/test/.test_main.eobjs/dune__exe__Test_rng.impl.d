test/test_rng.ml: Alcotest Array Bamboo_util Fun
