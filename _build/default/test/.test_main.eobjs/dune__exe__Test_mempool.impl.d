test/test_mempool.ml: Alcotest Bamboo_mempool Bamboo_types Gen Helpers List QCheck QCheck_alcotest Test Tx
