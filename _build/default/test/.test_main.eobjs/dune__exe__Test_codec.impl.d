test/test_codec.ml: Alcotest Bamboo_types Block Bytes Codec Gen Helpers List Message Printf QCheck QCheck_alcotest Qc String Tcert Test Timeout_msg Tx
