test/test_deque.ml: Alcotest Bamboo_util Gen List QCheck QCheck_alcotest Test
