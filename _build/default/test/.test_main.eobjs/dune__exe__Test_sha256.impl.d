test/test_sha256.ml: Alcotest Bamboo_crypto Char Gen List Printf QCheck QCheck_alcotest String Test
