test/test_hmac.ml: Alcotest Bamboo_crypto Gen Printf QCheck QCheck_alcotest String Test
