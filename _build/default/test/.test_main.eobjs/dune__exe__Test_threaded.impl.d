test/test_threaded.ml: Alcotest Array Bamboo Bamboo_network Bamboo_types List Thread
