test/test_node.ml: Alcotest Array Bamboo Bamboo_crypto Bamboo_forest Bamboo_types Block Helpers List Message Qc Queue String Tx
