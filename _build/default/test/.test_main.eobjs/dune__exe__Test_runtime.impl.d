test/test_runtime.ml: Alcotest Array Bamboo Float Gen List Printf QCheck QCheck_alcotest Test
