test/test_metrics.ml: Alcotest Bamboo List
