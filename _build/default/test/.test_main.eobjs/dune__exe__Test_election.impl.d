test/test_election.ml: Alcotest Array Bamboo
