test/test_sig.ml: Alcotest Bamboo_crypto
