test/test_pacemaker.ml: Alcotest Bamboo Bamboo_types Qc Tcert
