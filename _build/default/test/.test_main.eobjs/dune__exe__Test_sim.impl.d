test/test_sim.ml: Alcotest Bamboo_sim Bamboo_util Float List
