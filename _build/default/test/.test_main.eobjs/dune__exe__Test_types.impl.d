test/test_types.ml: Alcotest Bamboo_crypto Bamboo_types Block Helpers List Message Qc String Tcert Timeout_msg Tx Vote
