open Bamboo_types
module Forest = Bamboo_forest.Forest

let reg = Helpers.registry ()

let test_initial_state () =
  let f = Forest.create () in
  Alcotest.(check int) "committed height" 0 (Forest.committed_height f);
  Alcotest.(check int) "committed count" 1 (Forest.committed_count f);
  Alcotest.(check int) "size" 0 (Forest.size f);
  Alcotest.(check bool) "genesis present" true (Forest.mem f Block.genesis_hash)

let test_add_chain () =
  let f = Forest.create () in
  let blocks = Helpers.chain ~reg 3 in
  Helpers.add_all f blocks;
  Alcotest.(check int) "size" 3 (Forest.size f);
  List.iter
    (fun (b : Block.t) ->
      Alcotest.(check bool) "findable" true (Forest.find f b.hash <> None))
    blocks

let test_add_duplicate () =
  let f = Forest.create () in
  let b = Helpers.child ~reg ~view:1 Block.genesis in
  Alcotest.(check bool) "added" true (Forest.add f b = Forest.Added);
  Alcotest.(check bool) "duplicate" true (Forest.add f b = Forest.Duplicate)

let test_add_missing_parent () =
  let f = Forest.create () in
  match Helpers.chain ~reg 2 with
  | [ _b1; b2 ] ->
      Alcotest.(check bool) "missing parent" true
        (Forest.add f b2 = Forest.Missing_parent)
  | _ -> assert false

let test_children_and_parent () =
  let f = Forest.create () in
  let b1 = Helpers.child ~reg ~view:1 Block.genesis in
  let b2a = Helpers.child ~reg ~view:2 b1 in
  let b2b = Helpers.child ~reg ~view:3 b1 in
  Helpers.add_all f [ b1; b2a; b2b ];
  Alcotest.(check int) "two children" 2 (List.length (Forest.children f b1.hash));
  (match Forest.parent f b2a with
  | Some p -> Alcotest.(check bool) "parent" true (Block.equal p b1)
  | None -> Alcotest.fail "no parent");
  Alcotest.(check int) "genesis children" 1
    (List.length (Forest.children f Block.genesis_hash))

let test_extends () =
  let f = Forest.create () in
  let blocks = Helpers.chain ~reg 4 in
  Helpers.add_all f blocks;
  match blocks with
  | [ b1; _b2; _b3; b4 ] ->
      Alcotest.(check bool) "deep extends" true
        (Forest.extends f ~descendant:b4.hash ~ancestor:b1.hash);
      Alcotest.(check bool) "extends genesis" true
        (Forest.extends f ~descendant:b4.hash ~ancestor:Block.genesis_hash);
      Alcotest.(check bool) "reflexive" true
        (Forest.extends f ~descendant:b4.hash ~ancestor:b4.hash);
      Alcotest.(check bool) "not reversed" false
        (Forest.extends f ~descendant:b1.hash ~ancestor:b4.hash)
  | _ -> assert false

let test_commit_prefix () =
  let f = Forest.create () in
  let blocks = Helpers.chain ~reg 3 in
  Helpers.add_all f blocks;
  match blocks with
  | [ b1; b2; b3 ] -> (
      match Forest.commit f b2.hash with
      | Ok (newly, forked) ->
          Alcotest.(check int) "two newly committed" 2 (List.length newly);
          Alcotest.(check bool) "order low to high" true
            (match newly with
            | [ x; y ] -> Block.equal x b1 && Block.equal y b2
            | _ -> false);
          Alcotest.(check int) "no forks" 0 (List.length forked);
          Alcotest.(check int) "committed height" 2 (Forest.committed_height f);
          Alcotest.(check bool) "b3 survives" true (Forest.mem f b3.hash);
          Alcotest.(check int) "size" 1 (Forest.size f)
      | Error _ -> Alcotest.fail "commit failed")
  | _ -> assert false

let test_commit_prunes_conflicting_branch () =
  let f = Forest.create () in
  let b1 = Helpers.child ~reg ~view:1 Block.genesis in
  let b2 = Helpers.child ~reg ~view:2 b1 in
  let b2' = Helpers.child ~reg ~view:3 b1 in
  let b3' = Helpers.child ~reg ~view:4 b2' in
  Helpers.add_all f [ b1; b2; b2'; b3' ];
  match Forest.commit f b2.hash with
  | Ok (newly, forked) ->
      Alcotest.(check int) "committed" 2 (List.length newly);
      Alcotest.(check int) "forked branch pruned" 2 (List.length forked);
      Alcotest.(check bool) "forked sorted by height" true
        (match forked with
        | [ x; y ] -> x.Block.height <= y.Block.height
        | _ -> false);
      Alcotest.(check bool) "b2' gone" false (Forest.mem f b2'.hash);
      Alcotest.(check bool) "b3' gone" false (Forest.mem f b3'.hash)
  | Error _ -> Alcotest.fail "commit failed"

let test_commit_already_committed () =
  let f = Forest.create () in
  let blocks = Helpers.chain ~reg 2 in
  Helpers.add_all f blocks;
  match blocks with
  | [ b1; _ ] ->
      (match Forest.commit f b1.hash with Ok _ -> () | Error _ -> Alcotest.fail "first");
      Alcotest.(check bool) "already" true
        (Forest.commit f b1.hash = Error Forest.Already_committed)
  | _ -> assert false

let test_commit_unknown () =
  let f = Forest.create () in
  Alcotest.(check bool) "unknown" true
    (Forest.commit f (String.make 32 'q') = Error Forest.Unknown_block)

let test_add_below_horizon () =
  let f = Forest.create () in
  let b1 = Helpers.child ~reg ~view:1 Block.genesis in
  let b2 = Helpers.child ~reg ~view:2 b1 in
  Helpers.add_all f [ b1; b2 ];
  (match Forest.commit f b2.hash with Ok _ -> () | Error _ -> Alcotest.fail "commit");
  (* A late block whose parent is genesis (now below the horizon). *)
  let late = Helpers.child ~reg ~view:5 Block.genesis in
  Alcotest.(check bool) "late conflicting add dropped" true
    (Forest.add f late = Forest.Below_prune_horizon);
  (* A block extending the committed head is fine. *)
  let ok = Helpers.child ~reg ~view:6 b2 in
  Alcotest.(check bool) "extending head ok" true (Forest.add f ok = Forest.Added)

let test_committed_at () =
  let f = Forest.create () in
  let blocks = Helpers.chain ~reg 3 in
  Helpers.add_all f blocks;
  (match Forest.commit f (List.nth blocks 2).Block.hash with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "commit");
  List.iteri
    (fun i (b : Block.t) ->
      match Forest.committed_at f (i + 1) with
      | Some got -> Alcotest.(check bool) "height index" true (Block.equal got b)
      | None -> Alcotest.fail "missing committed block")
    blocks;
  Alcotest.(check bool) "beyond head" true (Forest.committed_at f 9 = None)

let test_commit_conflicting_is_error () =
  let f = Forest.create () in
  let b1 = Helpers.child ~reg ~view:1 Block.genesis in
  let b1' = Helpers.child ~reg ~view:2 Block.genesis in
  Helpers.add_all f [ b1; b1' ];
  (match Forest.commit f b1.hash with Ok _ -> () | Error _ -> Alcotest.fail "commit");
  (* b1' was pruned by the commit; committing it must fail, not fork. *)
  Alcotest.(check bool) "conflict detected" true
    (match Forest.commit f b1'.hash with
    | Error Forest.Unknown_block | Error Forest.Conflicts_with_committed -> true
    | Ok _ | Error _ -> false)

let test_tip_candidates () =
  let f = Forest.create () in
  let b1 = Helpers.child ~reg ~view:1 Block.genesis in
  let b2 = Helpers.child ~reg ~view:2 b1 in
  let b2' = Helpers.child ~reg ~view:3 b1 in
  Helpers.add_all f [ b1; b2; b2' ];
  let tips = Forest.tip_candidates f in
  Alcotest.(check int) "two leaves" 2 (List.length tips);
  Alcotest.(check int) "highest first" 2 (List.hd tips).Block.height

let test_fold_uncommitted () =
  let f = Forest.create () in
  Helpers.add_all f (Helpers.chain ~reg 5);
  let count = Forest.fold_uncommitted f (fun acc _ -> acc + 1) 0 in
  Alcotest.(check int) "folds all" 5 count

(* Property: random insert/commit sequences keep invariants: committed
   chain is linear and hash-linked; uncommitted blocks all descend from
   the committed head. *)
let random_ops_prop =
  let open QCheck in
  let gen = Gen.list_size (Gen.int_range 1 40) (Gen.int_range 0 9) in
  Test.make ~name:"random grow/commit keeps forest invariants" ~count:100
    (make ~print:(fun l -> string_of_int (List.length l)) gen)
    (fun choices ->
      let f = Forest.create () in
      let tips = ref [ Block.genesis ] in
      let view = ref 0 in
      let ok = ref true in
      List.iter
        (fun c ->
          incr view;
          if c < 7 then begin
            (* grow a random tip *)
            let parent = List.nth !tips (c mod List.length !tips) in
            let b = Helpers.child ~reg ~view:!view parent in
            match Forest.add f b with
            | Forest.Added -> tips := b :: !tips
            | Forest.Below_prune_horizon -> ()
            | Forest.Duplicate | Forest.Missing_parent -> ok := false
          end
          else begin
            (* commit a random live tip *)
            let candidates = Forest.tip_candidates f in
            match candidates with
            | [] -> ()
            | b :: _ -> (
                match Forest.commit f b.Block.hash with
                | Ok _ ->
                    tips :=
                      List.filter (fun t -> Forest.mem f t.Block.hash) !tips;
                    tips := Forest.last_committed f :: !tips
                | Error Forest.Already_committed -> ()
                | Error _ -> ())
          end)
        choices;
      (* Invariant 1: committed chain hash-linked. *)
      let head = Forest.last_committed f in
      let rec walk (b : Block.t) =
        if b.height = 0 then true
        else
          match Forest.committed_at f (b.height - 1) with
          | Some p -> String.equal b.parent p.hash && walk p
          | None -> false
      in
      (* Invariant 2: all uncommitted blocks descend from the head. *)
      let all_descend =
        Forest.fold_uncommitted f
          (fun acc b ->
            acc && Forest.extends f ~descendant:b.Block.hash ~ancestor:head.hash)
          true
      in
      !ok && walk head && all_descend)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "add chain" `Quick test_add_chain;
    Alcotest.test_case "duplicate" `Quick test_add_duplicate;
    Alcotest.test_case "missing parent" `Quick test_add_missing_parent;
    Alcotest.test_case "children/parent" `Quick test_children_and_parent;
    Alcotest.test_case "extends" `Quick test_extends;
    Alcotest.test_case "commit prefix" `Quick test_commit_prefix;
    Alcotest.test_case "commit prunes conflicts" `Quick
      test_commit_prunes_conflicting_branch;
    Alcotest.test_case "already committed" `Quick test_commit_already_committed;
    Alcotest.test_case "unknown commit" `Quick test_commit_unknown;
    Alcotest.test_case "below horizon" `Quick test_add_below_horizon;
    Alcotest.test_case "committed_at" `Quick test_committed_at;
    Alcotest.test_case "conflicting commit is error" `Quick
      test_commit_conflicting_is_error;
    Alcotest.test_case "tip candidates" `Quick test_tip_candidates;
    Alcotest.test_case "fold_uncommitted" `Quick test_fold_uncommitted;
    QCheck_alcotest.to_alcotest random_ops_prop;
  ]
