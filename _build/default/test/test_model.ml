module Model = Bamboo.Model
module Config = Bamboo.Config

let cfg = Config.default

let test_building_blocks_positive () =
  let m = Model.build ~config:cfg in
  Alcotest.(check bool) "t_l > 0" true (m.t_l > 0.0);
  Alcotest.(check bool) "t_nic > 0" true (m.t_nic > 0.0);
  Alcotest.(check bool) "t_q > 0" true (m.t_q > 0.0);
  Alcotest.(check bool) "t_s > sum of parts" true (m.t_s > m.t_nic +. m.t_q);
  Alcotest.(check bool) "saturation sensible" true
    (m.saturation_rate > 1000.0 && m.saturation_rate < 1e7)

let test_commit_multipliers () =
  let t_commit p =
    let m = Model.build ~config:{ cfg with protocol = p } in
    (m.t_s, m.t_commit)
  in
  let hs_s, hs_c = t_commit Config.Hotstuff in
  Alcotest.(check (float 1e-12)) "HS: 2 t_s" (2.0 *. hs_s) hs_c;
  let tc_s, tc_c = t_commit Config.Twochain in
  Alcotest.(check (float 1e-12)) "2CHS: t_s" tc_s tc_c;
  let sl_s, sl_c = t_commit Config.Streamlet in
  Alcotest.(check (float 1e-12)) "SL: t_s" sl_s sl_c

let test_hotstuff_slower_than_twochain () =
  let lat p rate =
    let m = Model.build ~config:{ cfg with protocol = p } in
    Option.get (Model.latency m ~rate)
  in
  Alcotest.(check bool) "HS latency above 2CHS" true
    (lat Config.Hotstuff 10_000.0 > lat Config.Twochain 10_000.0)

let test_latency_monotone_in_rate () =
  let m = Model.build ~config:cfg in
  let rec check prev = function
    | [] -> ()
    | f :: rest -> (
        match Model.latency m ~rate:(f *. m.saturation_rate) with
        | Some l ->
            if l <= prev then Alcotest.fail "latency not increasing";
            check l rest
        | None -> Alcotest.fail "unexpected saturation")
  in
  check 0.0 [ 0.1; 0.3; 0.5; 0.7; 0.9; 0.99 ]

let test_saturation_returns_none () =
  let m = Model.build ~config:cfg in
  Alcotest.(check bool) "at saturation" true
    (Model.latency m ~rate:m.saturation_rate = None);
  Alcotest.(check bool) "beyond" true
    (Model.latency m ~rate:(1.5 *. m.saturation_rate) = None)

let test_low_load_floor () =
  (* At vanishing load, latency approaches t_L + t_s + t_commit. *)
  let m = Model.build ~config:cfg in
  match Model.latency m ~rate:1.0 with
  | Some l ->
      let floor = m.t_l +. m.t_s +. m.t_commit in
      Alcotest.(check bool) "close to floor" true
        (l >= floor && l < floor *. 1.01)
  | None -> Alcotest.fail "saturated at rate 1"

let test_bigger_blocks_raise_saturation () =
  let sat bsize =
    (Model.build ~config:{ cfg with bsize }).Model.saturation_rate
  in
  Alcotest.(check bool) "b400 > b100" true (sat 400 > sat 100);
  Alcotest.(check bool) "b800 > b400" true (sat 800 > sat 400)

let test_payload_lowers_saturation () =
  let sat psize =
    (Model.build ~config:{ cfg with psize }).Model.saturation_rate
  in
  Alcotest.(check bool) "payload costs NIC time" true (sat 0 > sat 1024)

let test_network_delay_raises_t_q () =
  let t_q d =
    (Model.build ~config:{ cfg with extra_delay_mu = d }).Model.t_q
  in
  Alcotest.(check bool) "added delay" true (t_q 0.005 > t_q 0.0 +. 0.009)

let test_scale_raises_t_q () =
  let t_q n = (Model.build ~config:{ cfg with n }).Model.t_q in
  Alcotest.(check bool) "order statistic grows with n" true (t_q 32 > t_q 4)

let test_mc_matches_numeric () =
  let m = Model.build ~config:{ cfg with n = 8 } in
  let mc = Model.t_q_monte_carlo ~config:{ cfg with n = 8 } ~trials:200_000 in
  Alcotest.(check bool) "t_Q MC vs numeric" true
    (Float.abs (mc -. m.t_q) < 0.05 *. m.t_q +. 1e-5)

let test_curve_prunes_saturated () =
  let m = Model.build ~config:cfg in
  let rates = [ 0.5 *. m.saturation_rate; 2.0 *. m.saturation_rate ] in
  Alcotest.(check int) "only feasible points" 1
    (List.length (Model.curve m ~rates))

let test_invalid_rate () =
  let m = Model.build ~config:cfg in
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Model.latency: rate must be positive") (fun () ->
      ignore (Model.latency m ~rate:0.0))

let suite =
  [
    Alcotest.test_case "building blocks" `Quick test_building_blocks_positive;
    Alcotest.test_case "commit multipliers" `Quick test_commit_multipliers;
    Alcotest.test_case "HS slower than 2CHS" `Quick
      test_hotstuff_slower_than_twochain;
    Alcotest.test_case "latency monotone" `Quick test_latency_monotone_in_rate;
    Alcotest.test_case "saturation None" `Quick test_saturation_returns_none;
    Alcotest.test_case "low-load floor" `Quick test_low_load_floor;
    Alcotest.test_case "block size vs saturation" `Quick
      test_bigger_blocks_raise_saturation;
    Alcotest.test_case "payload vs saturation" `Quick test_payload_lowers_saturation;
    Alcotest.test_case "delay raises t_Q" `Quick test_network_delay_raises_t_q;
    Alcotest.test_case "scale raises t_Q" `Quick test_scale_raises_t_q;
    Alcotest.test_case "MC vs numeric t_Q" `Quick test_mc_matches_numeric;
    Alcotest.test_case "curve prunes saturated" `Quick test_curve_prunes_saturated;
    Alcotest.test_case "invalid rate" `Quick test_invalid_rate;
  ]
