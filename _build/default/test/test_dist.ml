module Rng = Bamboo_util.Rng
module Dist = Bamboo_util.Dist

let sample_stats n f =
  let rec loop i sum sumsq =
    if i = n then (sum /. float_of_int n, sumsq)
    else
      let x = f () in
      loop (i + 1) (sum +. x) (sumsq +. (x *. x))
  in
  let mean, sumsq = loop 0 0.0 0.0 in
  let var = (sumsq /. float_of_int n) -. (mean *. mean) in
  (mean, sqrt var)

let test_normal_moments () =
  let rng = Rng.create ~seed:5 in
  let mean, std =
    sample_stats 50_000 (fun () -> Dist.normal rng ~mu:10.0 ~sigma:2.0)
  in
  Alcotest.(check bool) "mean" true (Float.abs (mean -. 10.0) < 0.05);
  Alcotest.(check bool) "stddev" true (Float.abs (std -. 2.0) < 0.05)

let test_normal_pos () =
  let rng = Rng.create ~seed:6 in
  for _ = 1 to 10_000 do
    if Dist.normal_pos rng ~mu:0.001 ~sigma:0.01 < 0.0 then
      Alcotest.fail "negative sample"
  done

let test_exponential_mean () =
  let rng = Rng.create ~seed:7 in
  let mean, _ = sample_stats 50_000 (fun () -> Dist.exponential rng ~rate:4.0) in
  Alcotest.(check bool) "mean 1/rate" true (Float.abs (mean -. 0.25) < 0.01)

let test_poisson_moments () =
  let rng = Rng.create ~seed:8 in
  let mean, std =
    sample_stats 50_000 (fun () ->
        float_of_int (Dist.poisson rng ~mean:7.0))
  in
  Alcotest.(check bool) "mean" true (Float.abs (mean -. 7.0) < 0.1);
  Alcotest.(check bool) "var=mean" true (Float.abs (std -. sqrt 7.0) < 0.1)

let test_poisson_large_mean () =
  (* Above 60 the implementation switches to a normal approximation. *)
  let rng = Rng.create ~seed:9 in
  let mean, _ =
    sample_stats 20_000 (fun () -> float_of_int (Dist.poisson rng ~mean:200.0))
  in
  Alcotest.(check bool) "mean" true (Float.abs (mean -. 200.0) < 2.0)

let test_poisson_zero () =
  let rng = Rng.create ~seed:10 in
  Alcotest.(check int) "zero mean" 0 (Dist.poisson rng ~mean:0.0)

let test_normal_cdf_values () =
  let check x expected =
    let got = Dist.normal_cdf x in
    if Float.abs (got -. expected) > 1e-4 then
      Alcotest.failf "Phi(%g) = %g, expected %g" x got expected
  in
  check 0.0 0.5;
  check 1.0 0.841345;
  check (-1.0) 0.158655;
  check 1.959964 0.975;
  check (-2.575829) 0.005

let test_order_statistic_known () =
  (* For two standard normals, E[max] = 1/sqrt(pi) ~ 0.5642. *)
  let expected = 1.0 /. sqrt Float.pi in
  let numeric = Dist.order_statistic_mean_numeric ~n:2 ~k:2 ~mu:0.0 ~sigma:1.0 in
  Alcotest.(check bool) "numeric E[max of 2]" true
    (Float.abs (numeric -. expected) < 1e-3);
  let rng = Rng.create ~seed:11 in
  let mc =
    Dist.order_statistic_mean rng ~n:2 ~k:2 ~mu:0.0 ~sigma:1.0 ~trials:200_000
  in
  Alcotest.(check bool) "Monte Carlo E[max of 2]" true
    (Float.abs (mc -. expected) < 0.01)

let test_order_statistic_median () =
  (* The middle order statistic of an odd sample of symmetric variables has
     expectation mu. *)
  let v = Dist.order_statistic_mean_numeric ~n:7 ~k:4 ~mu:3.0 ~sigma:0.5 in
  Alcotest.(check bool) "median expectation" true (Float.abs (v -. 3.0) < 1e-3)

let test_order_statistic_mc_vs_numeric () =
  (* The paper's quorum case: 5th order statistic of 7 (n=8, quorum 6). *)
  let rng = Rng.create ~seed:12 in
  let mc =
    Dist.order_statistic_mean rng ~n:7 ~k:5 ~mu:1.0 ~sigma:0.2 ~trials:100_000
  in
  let numeric = Dist.order_statistic_mean_numeric ~n:7 ~k:5 ~mu:1.0 ~sigma:0.2 in
  Alcotest.(check bool) "agreement" true (Float.abs (mc -. numeric) < 0.005)

let test_order_statistic_monotone_in_k () =
  let v k = Dist.order_statistic_mean_numeric ~n:10 ~k ~mu:0.0 ~sigma:1.0 in
  let prev = ref neg_infinity in
  for k = 1 to 10 do
    let x = v k in
    if x <= !prev then Alcotest.fail "not increasing in k";
    prev := x
  done

let test_invalid_args () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "bad k"
    (Invalid_argument "Dist.order_statistic_mean: k out of range") (fun () ->
      ignore (Dist.order_statistic_mean rng ~n:3 ~k:4 ~mu:0.0 ~sigma:1.0 ~trials:10));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Dist.exponential: rate must be positive") (fun () ->
      ignore (Dist.exponential rng ~rate:0.0))

let suite =
  [
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "normal_pos non-negative" `Quick test_normal_pos;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "poisson moments" `Quick test_poisson_moments;
    Alcotest.test_case "poisson large mean" `Quick test_poisson_large_mean;
    Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
    Alcotest.test_case "normal cdf values" `Quick test_normal_cdf_values;
    Alcotest.test_case "order stat: known value" `Quick test_order_statistic_known;
    Alcotest.test_case "order stat: median" `Quick test_order_statistic_median;
    Alcotest.test_case "order stat: MC vs numeric" `Quick
      test_order_statistic_mc_vs_numeric;
    Alcotest.test_case "order stat: monotone in k" `Quick
      test_order_statistic_monotone_in_k;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
  ]
