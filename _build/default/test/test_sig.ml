module Sig = Bamboo_crypto.Sig

let test_sign_verify () =
  let reg = Sig.setup ~n:4 ~master:"m" in
  let s = Sig.sign reg ~signer:2 "payload" in
  Alcotest.(check int) "signer recorded" 2 s.Sig.signer;
  Alcotest.(check bool) "verifies" true (Sig.verify reg s "payload");
  Alcotest.(check bool) "wrong payload" false (Sig.verify reg s "other")

let test_signer_binding () =
  let reg = Sig.setup ~n:4 ~master:"m" in
  let s = Sig.sign reg ~signer:1 "p" in
  let forged = { s with Sig.signer = 2 } in
  Alcotest.(check bool) "tag bound to signer" false (Sig.verify reg forged "p")

let test_out_of_range () =
  let reg = Sig.setup ~n:4 ~master:"m" in
  Alcotest.check_raises "sign out of range"
    (Invalid_argument "Sig.sign: signer out of range") (fun () ->
      ignore (Sig.sign reg ~signer:4 "p"));
  let s = Sig.sign reg ~signer:0 "p" in
  Alcotest.(check bool) "verify out of range is false" false
    (Sig.verify reg { s with Sig.signer = -1 } "p")

let test_distinct_masters () =
  let a = Sig.setup ~n:4 ~master:"alpha" in
  let b = Sig.setup ~n:4 ~master:"beta" in
  let s = Sig.sign a ~signer:0 "p" in
  Alcotest.(check bool) "cross-registry fails" false (Sig.verify b s "p")

let test_size () =
  let reg = Sig.setup ~n:7 ~master:"m" in
  Alcotest.(check int) "size" 7 (Sig.size reg);
  Alcotest.(check int) "wire size" 64 Sig.wire_size

let test_deterministic () =
  let a = Sig.setup ~n:4 ~master:"m" in
  let b = Sig.setup ~n:4 ~master:"m" in
  let sa = Sig.sign a ~signer:3 "p" and sb = Sig.sign b ~signer:3 "p" in
  Alcotest.(check string) "same tag from same master" sa.Sig.tag sb.Sig.tag

let test_invalid_setup () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Sig.setup: n must be positive")
    (fun () -> ignore (Sig.setup ~n:0 ~master:"m"))

let suite =
  [
    Alcotest.test_case "sign/verify" `Quick test_sign_verify;
    Alcotest.test_case "signer binding" `Quick test_signer_binding;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "distinct masters" `Quick test_distinct_masters;
    Alcotest.test_case "sizes" `Quick test_size;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "invalid setup" `Quick test_invalid_setup;
  ]
