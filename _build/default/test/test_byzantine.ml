open Bamboo_types
module Forest = Bamboo_forest.Forest
module Safety = Bamboo.Safety
module Byzantine = Bamboo.Byzantine

let reg = Helpers.registry ()

type env = {
  forest : Forest.t;
  certified : (Ids.hash, Qc.t) Hashtbl.t;
  chain : Safety.chain;
  base : Safety.t;
}

let make_env maker =
  let forest = Forest.create () in
  let certified = Hashtbl.create 16 in
  Hashtbl.add certified Block.genesis_hash Safety.genesis_qc;
  let chain =
    Safety.{ forest; qc_of = (fun h -> Hashtbl.find_opt certified h) }
  in
  let ctx = Safety.{ n = 4; self = 0; registry = reg; quorum = 3 } in
  { forest; certified; chain; base = maker ctx chain }

let grow env b =
  match Forest.add env.forest b with
  | Forest.Added -> ()
  | _ -> Alcotest.fail "fixture add failed"

let certify env (b : Block.t) =
  let qc = Helpers.qc_for reg b in
  Hashtbl.add env.certified b.hash qc;
  ignore (env.base.Safety.on_qc qc)

(* Build a 3-block certified chain where the newest QC (for b3) is known
   only to the attacker (not embedded in any block), mirroring the
   leader-holds-votes situation of Fig. 5. *)
let attack_setup maker =
  let env = make_env maker in
  let blocks = Helpers.chain ~reg 3 in
  List.iter (grow env) blocks;
  List.iter (certify env) blocks;
  (env, blocks)

let test_silence_never_proposes () =
  let env, _ = attack_setup Bamboo.Hotstuff.make in
  let p = Byzantine.silence ~chain:env.chain env.base in
  Alcotest.(check bool) "abstains" true (p.Safety.propose ~view:4 ~tc:None = None);
  Alcotest.(check string) "name tagged" "hotstuff+silence" p.Safety.name

let test_silence_votes_honestly () =
  let env, blocks = attack_setup Bamboo.Hotstuff.make in
  let p = Byzantine.silence ~chain:env.chain env.base in
  let tip = List.nth blocks 2 in
  let b4 = Helpers.child ~reg ~view:4 tip in
  Alcotest.(check bool) "still votes" true (p.Safety.should_vote ~block:b4 ~tc:None)

let test_silence_withholds_qc_in_timeouts () =
  let env, _ = attack_setup Bamboo.Hotstuff.make in
  let p = Byzantine.silence ~chain:env.chain env.base in
  (* The attacker's own hQC is the (private) QC for b3 (view 3), but the
     highest publicly embedded QC is b3's justify (view 2). *)
  Alcotest.(check int) "private hQC" 3 (p.Safety.high_qc ()).Qc.view;
  Alcotest.(check int) "timeout advertises public only" 2
    (p.Safety.timeout_high_qc ()).Qc.view

let test_public_high () =
  let env, _ = attack_setup Bamboo.Hotstuff.make in
  Alcotest.(check int) "max embedded justify" 2
    (Byzantine.public_high env.chain ()).Qc.view

let test_public_high_includes_tc () =
  let env, blocks = attack_setup Bamboo.Hotstuff.make in
  let b3 = List.nth blocks 2 in
  let qc3 = Hashtbl.find env.certified b3.Block.hash in
  let tms =
    List.init 3 (fun sender ->
        Timeout_msg.create reg ~sender ~view:5 ~high_qc:qc3)
  in
  let tc = Tcert.of_timeouts tms in
  Alcotest.(check int) "TC QC counts as public" 3
    (Byzantine.public_high env.chain ~tc ()).Qc.view

let test_fork_depth_constants () =
  Alcotest.(check int) "HS" 2 (Byzantine.fork_depth_for Bamboo.Config.Hotstuff);
  Alcotest.(check int) "2CHS" 1 (Byzantine.fork_depth_for Bamboo.Config.Twochain);
  Alcotest.(check int) "FHS" 1
    (Byzantine.fork_depth_for Bamboo.Config.Fasthotstuff)

let test_hotstuff_fork_targets_two_back () =
  let env, blocks = attack_setup Bamboo.Hotstuff.make in
  let p = Byzantine.fork ~chain:env.chain ~fork_depth:2 env.base in
  match (blocks, p.Safety.propose ~view:4 ~tc:None) with
  | [ b1; _b2; _b3 ], Some Safety.{ parent; justify } ->
      (* Public tip is b2 (highest embedded QC certifies it); depth-2 fork
         builds on b2's parent b1 with b1's own QC. *)
      Alcotest.(check bool) "parent is b1" true (Block.equal parent b1);
      Alcotest.(check int) "justify is b1's QC" 1 justify.Qc.view
  | _, None -> Alcotest.fail "expected proposal"
  | _ -> assert false

let test_twochain_fork_targets_one_back () =
  let env, blocks = attack_setup Bamboo.Twochain.make in
  let p = Byzantine.fork ~chain:env.chain ~fork_depth:1 env.base in
  match (blocks, p.Safety.propose ~view:4 ~tc:None) with
  | [ _b1; b2; _b3 ], Some Safety.{ parent; justify } ->
      Alcotest.(check bool) "parent is public tip b2" true (Block.equal parent b2);
      Alcotest.(check int) "justify view" 2 justify.Qc.view
  | _, None -> Alcotest.fail "expected proposal"
  | _ -> assert false

let test_fork_passes_honest_voting_rule () =
  (* The forked proposal must be votable by an honest replica that has
     seen everything public: this is the crux of the attack. *)
  let env, _blocks = attack_setup Bamboo.Hotstuff.make in
  let honest = make_env Bamboo.Hotstuff.make in
  (* Honest replica knows only public information: blocks + embedded QCs
     (b1's and b2's QCs), not the attacker-held QC for b3. *)
  let blocks = Helpers.chain ~reg 3 in
  List.iter (grow honest) blocks;
  (match blocks with
  | [ b1; b2; _b3 ] ->
      certify honest b1;
      certify honest b2
  | _ -> assert false);
  let attacker = Byzantine.fork ~chain:env.chain ~fork_depth:2 env.base in
  match attacker.Safety.propose ~view:4 ~tc:None with
  | Some Safety.{ parent; justify } ->
      (* Rebuild the same chain objects in the honest env (hashes equal). *)
      let fork_block =
        Block.create ~view:4 ~parent ~justify ~proposer:0 ~txs:[] ()
      in
      grow honest fork_block;
      Alcotest.(check bool) "honest votes for the fork" true
        (honest.base.Safety.should_vote ~block:fork_block ~tc:None)
  | None -> Alcotest.fail "expected proposal"

let test_fork_falls_back_when_no_target () =
  (* Right after genesis there is nothing to fork from: the attacker
     proposes honestly. *)
  let env = make_env Bamboo.Hotstuff.make in
  let p = Byzantine.fork ~chain:env.chain ~fork_depth:2 env.base in
  match p.Safety.propose ~view:1 ~tc:None with
  | Some Safety.{ parent; _ } ->
      Alcotest.(check bool) "builds on genesis" true
        (Block.equal parent Block.genesis)
  | None -> Alcotest.fail "expected honest fallback"

let test_apply_honest_is_identity () =
  let env = make_env Bamboo.Hotstuff.make in
  let p =
    Byzantine.apply Bamboo.Config.Honest Bamboo.Config.Hotstuff ~chain:env.chain
      env.base
  in
  Alcotest.(check string) "unwrapped" "hotstuff" p.Safety.name

let test_apply_streamlet_fork_is_honest () =
  let env = make_env Bamboo.Streamlet.make in
  let p =
    Byzantine.apply Bamboo.Config.Fork Bamboo.Config.Streamlet ~chain:env.chain
      env.base
  in
  Alcotest.(check string) "forking futile: stays honest" "streamlet"
    p.Safety.name

let test_invalid_fork_depth () =
  let env = make_env Bamboo.Hotstuff.make in
  Alcotest.check_raises "depth 0"
    (Invalid_argument "Byzantine.fork: depth must be >= 1") (fun () ->
      ignore (Byzantine.fork ~chain:env.chain ~fork_depth:0 env.base))

let suite =
  [
    Alcotest.test_case "silence never proposes" `Quick test_silence_never_proposes;
    Alcotest.test_case "silence votes honestly" `Quick test_silence_votes_honestly;
    Alcotest.test_case "silence withholds QC in timeouts" `Quick
      test_silence_withholds_qc_in_timeouts;
    Alcotest.test_case "public_high" `Quick test_public_high;
    Alcotest.test_case "public_high includes TC" `Quick test_public_high_includes_tc;
    Alcotest.test_case "fork depth constants" `Quick test_fork_depth_constants;
    Alcotest.test_case "HS fork targets 2 back" `Quick
      test_hotstuff_fork_targets_two_back;
    Alcotest.test_case "2CHS fork targets 1 back" `Quick
      test_twochain_fork_targets_one_back;
    Alcotest.test_case "fork passes honest voting rule" `Quick
      test_fork_passes_honest_voting_rule;
    Alcotest.test_case "fork fallback" `Quick test_fork_falls_back_when_no_target;
    Alcotest.test_case "apply honest" `Quick test_apply_honest_is_identity;
    Alcotest.test_case "apply streamlet fork" `Quick
      test_apply_streamlet_fork_is_honest;
    Alcotest.test_case "invalid fork depth" `Quick test_invalid_fork_depth;
  ]
