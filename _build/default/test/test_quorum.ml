module Quorum = Bamboo_quorum.Quorum
open Bamboo_types

let reg = Helpers.registry ()

let test_sizes () =
  let q4 = Quorum.create ~n:4 in
  Alcotest.(check int) "n" 4 (Quorum.n q4);
  Alcotest.(check int) "quorum(4)" 3 (Quorum.quorum_size q4);
  Alcotest.(check int) "f(4)" 1 (Quorum.fault_bound q4);
  let q7 = Quorum.create ~n:7 in
  Alcotest.(check int) "quorum(7)" 5 (Quorum.quorum_size q7);
  let q32 = Quorum.create ~n:32 in
  Alcotest.(check int) "quorum(32)" 21 (Quorum.quorum_size q32);
  Alcotest.(check int) "f(32)" 10 (Quorum.fault_bound q32)

let test_vote_threshold () =
  let q = Quorum.create ~n:4 in
  let b = Helpers.child ~reg ~view:1 Block.genesis in
  Alcotest.(check bool) "1 vote" true
    (Quorum.voted q (Helpers.vote_for reg ~voter:0 b) = None);
  Alcotest.(check bool) "2 votes" true
    (Quorum.voted q (Helpers.vote_for reg ~voter:1 b) = None);
  (match Quorum.voted q (Helpers.vote_for reg ~voter:2 b) with
  | Some qc ->
      Alcotest.(check string) "block" b.Block.hash qc.Qc.block;
      Alcotest.(check int) "view" 1 qc.Qc.view;
      Alcotest.(check int) "height" 1 qc.Qc.height;
      Alcotest.(check int) "sigs" 3 (List.length qc.Qc.sigs);
      Alcotest.(check bool) "verifies" true (Qc.verify reg ~quorum:3 qc)
  | None -> Alcotest.fail "no QC at threshold");
  (* Fourth vote must not produce a second QC. *)
  Alcotest.(check bool) "4th vote" true
    (Quorum.voted q (Helpers.vote_for reg ~voter:3 b) = None)

let test_duplicate_votes_ignored () =
  let q = Quorum.create ~n:4 in
  let b = Helpers.child ~reg ~view:1 Block.genesis in
  ignore (Quorum.voted q (Helpers.vote_for reg ~voter:0 b));
  ignore (Quorum.voted q (Helpers.vote_for reg ~voter:0 b));
  ignore (Quorum.voted q (Helpers.vote_for reg ~voter:0 b));
  Alcotest.(check int) "still one voter" 1
    (Quorum.vote_count q ~block:b.Block.hash ~view:1)

let test_certified_lookup () =
  let q = Quorum.create ~n:4 in
  let b = Helpers.child ~reg ~view:1 Block.genesis in
  Alcotest.(check bool) "not yet" true
    (Quorum.certified q ~block:b.Block.hash ~view:1 = None);
  List.iter
    (fun voter -> ignore (Quorum.voted q (Helpers.vote_for reg ~voter b)))
    [ 0; 1; 2 ];
  Alcotest.(check bool) "certified" true
    (Quorum.certified q ~block:b.Block.hash ~view:1 <> None)

let test_distinct_blocks_separate () =
  let q = Quorum.create ~n:4 in
  let b1 = Helpers.child ~reg ~view:1 Block.genesis in
  let b2 = Helpers.child ~reg ~view:2 Block.genesis in
  ignore (Quorum.voted q (Helpers.vote_for reg ~voter:0 b1));
  ignore (Quorum.voted q (Helpers.vote_for reg ~voter:1 b2));
  Alcotest.(check int) "b1 count" 1 (Quorum.vote_count q ~block:b1.Block.hash ~view:1);
  Alcotest.(check int) "b2 count" 1 (Quorum.vote_count q ~block:b2.Block.hash ~view:2)

let test_timeout_threshold () =
  let q = Quorum.create ~n:4 in
  let high_qc = Qc.genesis ~block:Block.genesis_hash in
  let tm sender = Timeout_msg.create reg ~sender ~view:5 ~high_qc in
  Alcotest.(check bool) "1" true (Quorum.timed_out q (tm 0) = None);
  Alcotest.(check bool) "2" true (Quorum.timed_out q (tm 1) = None);
  (match Quorum.timed_out q (tm 2) with
  | Some tc ->
      Alcotest.(check int) "view" 5 tc.Tcert.view;
      Alcotest.(check bool) "verifies" true (Tcert.verify reg ~quorum:3 tc);
      Alcotest.(check bool) "lookup" true (Quorum.tc_for q ~view:5 <> None)
  | None -> Alcotest.fail "no TC at threshold");
  Alcotest.(check bool) "4th timeout no second TC" true
    (Quorum.timed_out q (tm 3) = None)

let test_timeout_duplicates () =
  let q = Quorum.create ~n:4 in
  let high_qc = Qc.genesis ~block:Block.genesis_hash in
  let tm = Timeout_msg.create reg ~sender:0 ~view:5 ~high_qc in
  ignore (Quorum.timed_out q tm);
  ignore (Quorum.timed_out q tm);
  ignore (Quorum.timed_out q tm);
  Alcotest.(check bool) "no TC from one sender" true
    (Quorum.tc_for q ~view:5 = None)

let test_tc_carries_max_high_qc () =
  let q = Quorum.create ~n:4 in
  let b = Helpers.child ~reg ~view:3 Block.genesis in
  let low = Qc.genesis ~block:Block.genesis_hash in
  let high = Helpers.qc_for reg b in
  ignore (Quorum.timed_out q (Timeout_msg.create reg ~sender:0 ~view:7 ~high_qc:low));
  ignore (Quorum.timed_out q (Timeout_msg.create reg ~sender:1 ~view:7 ~high_qc:high));
  match Quorum.timed_out q (Timeout_msg.create reg ~sender:2 ~view:7 ~high_qc:low) with
  | Some tc -> Alcotest.(check int) "max qc" 3 tc.Tcert.high_qc.Qc.view
  | None -> Alcotest.fail "no TC"

let test_gc () =
  let q = Quorum.create ~n:4 in
  let b = Helpers.child ~reg ~view:1 Block.genesis in
  List.iter
    (fun voter -> ignore (Quorum.voted q (Helpers.vote_for reg ~voter b)))
    [ 0; 1; 2 ];
  let high_qc = Qc.genesis ~block:Block.genesis_hash in
  ignore (Quorum.timed_out q (Timeout_msg.create reg ~sender:0 ~view:1 ~high_qc));
  Quorum.gc q ~below_view:2;
  Alcotest.(check bool) "vote slot gone" true
    (Quorum.certified q ~block:b.Block.hash ~view:1 = None);
  Alcotest.(check bool) "timeout slot gone" true (Quorum.tc_for q ~view:1 = None)

let threshold_prop =
  let open QCheck in
  let gen = Gen.pair (Gen.int_range 1 10) (Gen.int_range 0 40) in
  Test.make ~name:"QC appears exactly at 2f+1 distinct votes" ~count:100
    (make ~print:(fun (f, extra) -> Printf.sprintf "f=%d extra=%d" f extra) gen)
    (fun (f, extra_votes) ->
      let n = (3 * f) + 1 in
      let reg = Helpers.registry ~n () in
      let q = Quorum.create ~n in
      let b = Helpers.child ~reg ~view:1 Block.genesis in
      let quorum = (2 * f) + 1 in
      let produced = ref 0 in
      for voter = 0 to min (n - 1) (quorum + extra_votes) - 1 do
        match Quorum.voted q (Helpers.vote_for reg ~voter b) with
        | Some _ ->
            incr produced;
            if voter + 1 <> quorum then raise Exit
        | None -> ()
      done;
      !produced <= 1)

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "vote threshold" `Quick test_vote_threshold;
    Alcotest.test_case "duplicate votes" `Quick test_duplicate_votes_ignored;
    Alcotest.test_case "certified lookup" `Quick test_certified_lookup;
    Alcotest.test_case "distinct blocks" `Quick test_distinct_blocks_separate;
    Alcotest.test_case "timeout threshold" `Quick test_timeout_threshold;
    Alcotest.test_case "timeout duplicates" `Quick test_timeout_duplicates;
    Alcotest.test_case "TC max high_qc" `Quick test_tc_carries_max_high_qc;
    Alcotest.test_case "gc" `Quick test_gc;
    QCheck_alcotest.to_alcotest threshold_prop;
  ]
