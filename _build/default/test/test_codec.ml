open Bamboo_types

let reg = Helpers.registry ()

let roundtrip msg =
  let encoded = Codec.encode msg in
  Codec.decode encoded

let check_roundtrip name msg =
  let back = roundtrip msg in
  Alcotest.(check string) name (Message.key msg) (Message.key back);
  (* Structural equality beyond the key: compare re-encoded bytes. *)
  Alcotest.(check string) (name ^ " bytes") (Codec.encode msg) (Codec.encode back)

let test_proposal_roundtrip () =
  let b =
    Helpers.child ~reg ~view:3 ~txs:(Helpers.txs ~client:9 17) Block.genesis
  in
  check_roundtrip "proposal" (Message.Proposal { block = b; tc = None })

let test_proposal_with_tc () =
  let high_qc = Qc.genesis ~block:Block.genesis_hash in
  let tms =
    List.init 3 (fun sender -> Timeout_msg.create reg ~sender ~view:2 ~high_qc)
  in
  let tc = Tcert.of_timeouts tms in
  let b = Helpers.child ~reg ~view:3 Block.genesis in
  check_roundtrip "proposal+tc" (Message.Proposal { block = b; tc = Some tc })

let test_tx_data_roundtrip () =
  let txs =
    [
      Tx.make_with_data ~client:1 ~seq:1 ~data:"P3:key-value";
      Tx.make_with_data ~client:1 ~seq:2 ~data:(String.make 300 '\x00');
    ]
  in
  let b = Helpers.child ~reg ~view:2 ~txs Block.genesis in
  match roundtrip (Message.Proposal { block = b; tc = None }) with
  | Message.Proposal { block = b'; _ } ->
      Alcotest.(check bool) "data survives the wire" true
        (List.for_all2 Tx.equal b.txs b'.txs)
  | _ -> Alcotest.fail "wrong shape"

let test_vote_roundtrip () =
  let b = Helpers.child ~reg ~view:5 Block.genesis in
  check_roundtrip "vote" (Message.Vote (Helpers.vote_for reg ~voter:3 b))

let test_timeout_roundtrip () =
  let b = Helpers.child ~reg ~view:2 Block.genesis in
  let tm = Timeout_msg.create reg ~sender:1 ~view:7 ~high_qc:(Helpers.qc_for reg b) in
  check_roundtrip "timeout" (Message.Timeout tm)

let test_decoded_block_fields () =
  let txs = Helpers.txs ~client:4 3 in
  let b = Helpers.child ~reg ~view:9 ~proposer:2 ~txs Block.genesis in
  match roundtrip (Message.Proposal { block = b; tc = None }) with
  | Message.Proposal { block = b'; tc = None } ->
      Alcotest.(check int) "view" b.view b'.view;
      Alcotest.(check int) "height" b.height b'.height;
      Alcotest.(check int) "proposer" b.proposer b'.proposer;
      Alcotest.(check string) "hash" b.hash b'.hash;
      Alcotest.(check string) "parent" b.parent b'.parent;
      Alcotest.(check string) "tx_root" b.tx_root b'.tx_root;
      Alcotest.(check int) "tx count" 3 (List.length b'.txs);
      Alcotest.(check bool) "txs preserved" true
        (List.for_all2 Tx.equal b.txs b'.txs);
      Alcotest.(check int) "justify view" b.justify.Qc.view b'.justify.Qc.view
  | _ -> Alcotest.fail "wrong shape"

let test_decoded_qc_still_verifies () =
  let b = Helpers.child ~reg ~view:2 Block.genesis in
  let tm = Timeout_msg.create reg ~sender:0 ~view:3 ~high_qc:(Helpers.qc_for reg b) in
  match roundtrip (Message.Timeout tm) with
  | Message.Timeout tm' ->
      Alcotest.(check bool) "sig survives" true (Timeout_msg.verify reg tm');
      Alcotest.(check bool) "qc survives" true
        (Qc.verify reg ~quorum:3 tm'.Timeout_msg.high_qc)
  | _ -> Alcotest.fail "wrong shape"

let expect_decode_error name s =
  match Codec.decode s with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.failf "%s: expected Decode_error" name

let test_malformed () =
  expect_decode_error "empty" "";
  expect_decode_error "unknown tag" "\x09rest";
  let b = Helpers.child ~reg ~view:1 Block.genesis in
  let good = Codec.encode (Message.Proposal { block = b; tc = None }) in
  expect_decode_error "truncated" (String.sub good 0 (String.length good / 2));
  expect_decode_error "trailing bytes" (good ^ "x");
  (* Corrupt a length field deep inside. *)
  let corrupted = Bytes.of_string good in
  Bytes.set corrupted 4 '\xff';
  expect_decode_error "corrupt length" (Bytes.to_string corrupted)

let fuzz_decode_total =
  let open QCheck in
  Test.make ~name:"decode never crashes on random bytes" ~count:500
    (string_gen_of_size (Gen.int_range 0 200) Gen.char)
    (fun s ->
      match Codec.decode s with
      | _ -> true
      | exception Codec.Decode_error _ -> true)

let roundtrip_random_blocks =
  let open QCheck in
  let gen =
    Gen.map2
      (fun view ntxs -> (1 + view, ntxs))
      (Gen.int_range 0 50) (Gen.int_range 0 30)
  in
  Test.make ~name:"random proposals round trip" ~count:100
    (make ~print:(fun (v, n) -> Printf.sprintf "view %d, %d txs" v n) gen)
    (fun (view, ntxs) ->
      let b = Helpers.child ~reg ~view ~txs:(Helpers.txs ntxs) Block.genesis in
      let msg = Message.Proposal { block = b; tc = None } in
      Codec.encode (Codec.decode (Codec.encode msg)) = Codec.encode msg)

let suite =
  [
    Alcotest.test_case "proposal round trip" `Quick test_proposal_roundtrip;
    Alcotest.test_case "proposal with TC" `Quick test_proposal_with_tc;
    Alcotest.test_case "tx data round trip" `Quick test_tx_data_roundtrip;
    Alcotest.test_case "vote round trip" `Quick test_vote_roundtrip;
    Alcotest.test_case "timeout round trip" `Quick test_timeout_roundtrip;
    Alcotest.test_case "decoded block fields" `Quick test_decoded_block_fields;
    Alcotest.test_case "decoded QC verifies" `Quick test_decoded_qc_still_verifies;
    Alcotest.test_case "malformed input" `Quick test_malformed;
    QCheck_alcotest.to_alcotest fuzz_decode_total;
    QCheck_alcotest.to_alcotest roundtrip_random_blocks;
  ]
