module Heap = Bamboo_util.Heap

let int_heap () = Heap.create ~cmp:compare ()

let test_empty () =
  let h = int_heap () in
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h)

let test_ordering () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  let drained = List.init 6 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 8; 9 ] drained

let test_fifo_ties () =
  (* Equal keys must pop in insertion order: the simulator's determinism
     depends on it. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) () in
  List.iter (Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let order = List.init 4 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "tie order" [ "z"; "a"; "b"; "c" ] order

let test_peek_stable () =
  let h = int_heap () in
  Heap.push h 4;
  Heap.push h 2;
  Alcotest.(check (option int)) "peek" (Some 2) (Heap.peek h);
  Alcotest.(check int) "peek does not remove" 2 (Heap.length h)

let test_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h 7;
  Alcotest.(check (option int)) "reusable" (Some 7) (Heap.pop h)

let test_growth () =
  let h = Heap.create ~capacity:1 ~cmp:compare () in
  for i = 1000 downto 1 do
    Heap.push h i
  done;
  Alcotest.(check int) "length" 1000 (Heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Heap.pop h)

let sorted_prop =
  let open QCheck in
  Test.make ~name:"heap pops in sorted order" ~count:300
    (list_of_size (Gen.int_range 0 100) small_int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let interleaved_prop =
  let open QCheck in
  Test.make ~name:"interleaved push/pop maintains min-heap invariant"
    ~count:200
    (list_of_size (Gen.int_range 0 80) (option small_int))
    (fun ops ->
      (* Some x = push x, None = pop; compare against a sorted-list model. *)
      let h = int_heap () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              Heap.push h x;
              model := List.sort compare (x :: !model);
              true
          | None -> (
              let got = Heap.pop h in
              match !model with
              | [] -> got = None
              | m :: rest ->
                  model := rest;
                  got = Some m))
        ops)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
    Alcotest.test_case "peek" `Quick test_peek_stable;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "growth" `Quick test_growth;
    QCheck_alcotest.to_alcotest sorted_prop;
    QCheck_alcotest.to_alcotest interleaved_prop;
  ]
