module Metrics = Bamboo.Metrics

let mk () = Metrics.create ~warmup:1.0 ~horizon:11.0 ~bucket:1.0

let summarize t =
  Metrics.summarize t ~protocol:"test" ~rejected_txs:0 ~safety_violation:false

let test_window () =
  let t = mk () in
  Alcotest.(check bool) "before warmup" false (Metrics.in_window t ~now:0.5);
  Alcotest.(check bool) "inside" true (Metrics.in_window t ~now:5.0);
  Alcotest.(check bool) "after horizon" false (Metrics.in_window t ~now:11.5)

let test_throughput () =
  let t = mk () in
  Metrics.record_commit t ~now:2.0 ~ntxs:500 ~nblocks:2 ~hashes:[];
  Metrics.record_commit t ~now:3.0 ~ntxs:500 ~nblocks:2 ~hashes:[];
  (* outside the window: ignored by aggregates *)
  Metrics.record_commit t ~now:0.5 ~ntxs:999 ~nblocks:1 ~hashes:[];
  Metrics.record_commit t ~now:11.5 ~ntxs:999 ~nblocks:1 ~hashes:[];
  let s = summarize t in
  Alcotest.(check int) "txs" 1000 s.committed_txs;
  Alcotest.(check int) "blocks" 4 s.committed_blocks;
  Alcotest.(check (float 1e-9)) "throughput over 10s" 100.0 s.throughput

let test_latency_window_rules () =
  let t = mk () in
  (* issued before warmup: excluded even though completion is inside. *)
  Metrics.record_latency t ~now:2.0 ~issued_at:0.5 ~latency:1.5;
  (* issued inside, completes inside: counted. *)
  Metrics.record_latency t ~now:3.0 ~issued_at:2.0 ~latency:1.0;
  Metrics.record_latency t ~now:4.0 ~issued_at:2.0 ~latency:2.0;
  (* completes after horizon: excluded. *)
  Metrics.record_latency t ~now:12.0 ~issued_at:10.0 ~latency:2.0;
  let s = summarize t in
  Alcotest.(check int) "samples" 2 s.latency_samples;
  Alcotest.(check (float 1e-9)) "mean" 1.5 s.latency_mean

let test_percentiles_in_summary () =
  let t = mk () in
  List.iter
    (fun l -> Metrics.record_latency t ~now:5.0 ~issued_at:4.0 ~latency:l)
    (List.init 100 (fun i -> float_of_int (i + 1)));
  let s = summarize t in
  Alcotest.(check bool) "p50 < p95 < p99" true
    (s.latency_p50 < s.latency_p95 && s.latency_p95 < s.latency_p99)

let test_cgr_and_bi () =
  let t = mk () in
  (* Four accepted blocks: three commit, one is overwritten. *)
  List.iter
    (fun h -> Metrics.record_append t ~now:2.0 ~hash:h)
    [ "b1"; "b2"; "b3"; "b4" ];
  Metrics.record_commit t ~now:2.5 ~ntxs:10 ~nblocks:3
    ~hashes:[ "b1"; "b2"; "b3" ];
  Metrics.record_fork t ~now:2.6 ~nblocks:1 ~hashes:[ "b4" ];
  Metrics.record_block_interval t ~now:2.5 ~views:3;
  Metrics.record_block_interval t ~now:2.5 ~views:3;
  Metrics.record_block_interval t ~now:2.5 ~views:4;
  let s = summarize t in
  Alcotest.(check (float 1e-9)) "CGR = committed/(committed+overwritten)" 0.75
    s.cgr;
  Alcotest.(check (float 1e-6)) "BI mean" (10.0 /. 3.0) s.block_interval

let test_cgr_ignores_unaccepted_junk () =
  let t = mk () in
  List.iter (fun h -> Metrics.record_append t ~now:2.0 ~hash:h) [ "b1"; "b2" ];
  Metrics.record_commit t ~now:2.5 ~ntxs:5 ~nblocks:2 ~hashes:[ "b1"; "b2" ];
  (* A pruned block the observer never voted for (e.g. a futile Streamlet
     fork) must not lower the CGR. *)
  Metrics.record_fork t ~now:2.6 ~nblocks:1 ~hashes:[ "junk" ];
  Alcotest.(check (float 1e-9)) "CGR stays 1" 1.0 (summarize t).cgr

let test_forked_counter () =
  let t = mk () in
  Metrics.record_fork t ~now:3.0 ~nblocks:2 ~hashes:[];
  Metrics.record_fork t ~now:0.2 ~nblocks:5 ~hashes:[] (* warmup: ignored *);
  let s = summarize t in
  Alcotest.(check int) "forked" 2 s.forked_blocks

let test_views_span () =
  let t = mk () in
  Metrics.set_view_span t ~first:100 ~last:350;
  Alcotest.(check int) "views" 250 (summarize t).views

let test_series_includes_warmup () =
  let t = mk () in
  Metrics.record_commit t ~now:0.5 ~ntxs:100 ~nblocks:1 ~hashes:[];
  Metrics.record_commit t ~now:2.5 ~ntxs:300 ~nblocks:1 ~hashes:[];
  Metrics.record_commit t ~now:2.7 ~ntxs:200 ~nblocks:1 ~hashes:[];
  let series = Metrics.throughput_series t in
  Alcotest.(check int) "bucket count" 3 (List.length series);
  Alcotest.(check (float 1e-9)) "warmup bucket present" 100.0
    (List.assoc 0.0 series);
  Alcotest.(check (float 1e-9)) "bucket 2 aggregates" 500.0
    (List.assoc 2.0 series);
  Alcotest.(check (float 1e-9)) "empty bucket zero" 0.0 (List.assoc 1.0 series)

let test_empty_summary () =
  let s = summarize (mk ()) in
  Alcotest.(check (float 0.0)) "throughput" 0.0 s.throughput;
  Alcotest.(check (float 0.0)) "cgr" 0.0 s.cgr;
  Alcotest.(check int) "samples" 0 s.latency_samples

let test_invalid_create () =
  (match Metrics.create ~warmup:5.0 ~horizon:5.0 ~bucket:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "horizon = warmup accepted");
  match Metrics.create ~warmup:0.0 ~horizon:1.0 ~bucket:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bucket accepted"

let suite =
  [
    Alcotest.test_case "window" `Quick test_window;
    Alcotest.test_case "throughput" `Quick test_throughput;
    Alcotest.test_case "latency window rules" `Quick test_latency_window_rules;
    Alcotest.test_case "percentiles" `Quick test_percentiles_in_summary;
    Alcotest.test_case "CGR and BI" `Quick test_cgr_and_bi;
    Alcotest.test_case "CGR ignores unaccepted junk" `Quick
      test_cgr_ignores_unaccepted_junk;
    Alcotest.test_case "forked counter" `Quick test_forked_counter;
    Alcotest.test_case "views span" `Quick test_views_span;
    Alcotest.test_case "series" `Quick test_series_includes_warmup;
    Alcotest.test_case "empty summary" `Quick test_empty_summary;
    Alcotest.test_case "invalid create" `Quick test_invalid_create;
  ]
