module Stats = Bamboo_util.Stats

let feed xs =
  let t = Stats.create () in
  List.iter (Stats.add t) xs;
  t

let test_empty () =
  let t = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count t);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stats.mean t);
  Alcotest.(check (float 0.0)) "stddev" 0.0 (Stats.stddev t);
  Alcotest.(check (float 0.0)) "percentile" 0.0 (Stats.percentile t 50.0)

let test_basic_moments () =
  let t = feed [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean t);
  Alcotest.(check (float 1e-9)) "total" 40.0 (Stats.total t);
  (* Sample variance with n-1 denominator: 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance t);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min_value t);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max_value t)

let test_percentiles () =
  let t = feed (List.init 101 float_of_int) in
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile t 0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile t 50.0);
  Alcotest.(check (float 1e-9)) "p95" 95.0 (Stats.percentile t 95.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile t 100.0);
  Alcotest.(check (float 1e-9)) "median" 50.0 (Stats.median t)

let test_percentile_interpolation () =
  let t = feed [ 10.0; 20.0 ] in
  Alcotest.(check (float 1e-9)) "p50 interpolates" 15.0 (Stats.percentile t 50.0);
  Alcotest.(check (float 1e-9)) "p25" 12.5 (Stats.percentile t 25.0)

let test_percentile_after_more_adds () =
  (* Adding after a percentile query must re-sort correctly. *)
  let t = feed [ 3.0; 1.0 ] in
  ignore (Stats.median t);
  Stats.add t 2.0;
  Alcotest.(check (float 1e-9)) "median" 2.0 (Stats.median t)

let test_merge () =
  let a = feed [ 1.0; 2.0 ] and b = feed [ 3.0; 4.0 ] in
  let m = Stats.merge a b in
  Alcotest.(check int) "count" 4 (Stats.count m);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean m)

let test_single_sample () =
  let t = feed [ 42.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 42.0 (Stats.mean t);
  Alcotest.(check (float 1e-9)) "variance" 0.0 (Stats.variance t);
  Alcotest.(check (float 1e-9)) "median" 42.0 (Stats.median t)

let test_list_helpers () =
  Alcotest.(check (float 1e-9)) "mean_of" 2.0 (Stats.mean_of [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean_of empty" 0.0 (Stats.mean_of []);
  Alcotest.(check (float 1e-9)) "stddev_of" 1.0 (Stats.stddev_of [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev_of single" 0.0 (Stats.stddev_of [ 5.0 ])

let test_invalid_percentile () =
  let t = feed [ 1.0 ] in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile t 101.0))

let welford_matches_naive =
  let open QCheck in
  let gen = Gen.list_size (Gen.int_range 2 50) (Gen.float_range (-100.) 100.) in
  Test.make ~name:"streaming variance matches naive computation" ~count:300
    (make ~print:(fun xs -> string_of_int (List.length xs)) gen)
    (fun xs ->
      let t = feed xs in
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let naive =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
        /. (n -. 1.0)
      in
      Float.abs (Stats.variance t -. naive) < 1e-6 *. (1.0 +. naive))

let percentile_bounds =
  let open QCheck in
  let gen =
    Gen.pair
      (Gen.list_size (Gen.int_range 1 50) (Gen.float_range (-1000.) 1000.))
      (Gen.float_range 0.0 100.0)
  in
  Test.make ~name:"percentiles lie within [min, max]" ~count:300
    (make ~print:(fun (xs, p) -> Printf.sprintf "%d samples, p=%g" (List.length xs) p) gen)
    (fun (xs, p) ->
      let t = feed xs in
      let v = Stats.percentile t p in
      v >= Stats.min_value t -. 1e-9 && v <= Stats.max_value t +. 1e-9)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "moments" `Quick test_basic_moments;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "interpolation" `Quick test_percentile_interpolation;
    Alcotest.test_case "re-sort after add" `Quick test_percentile_after_more_adds;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "single sample" `Quick test_single_sample;
    Alcotest.test_case "list helpers" `Quick test_list_helpers;
    Alcotest.test_case "invalid percentile" `Quick test_invalid_percentile;
    QCheck_alcotest.to_alcotest welford_matches_naive;
    QCheck_alcotest.to_alcotest percentile_bounds;
  ]
