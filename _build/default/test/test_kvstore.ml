module Kv = Bamboo.Kvstore
open Bamboo_types

let test_put_get_delete () =
  let s = Kv.create () in
  Alcotest.(check bool) "put" true (Kv.apply s (Kv.Put { key = "a"; value = "1" }) = Kv.Stored);
  Alcotest.(check bool) "get" true (Kv.apply s (Kv.Get "a") = Kv.Found "1");
  Alcotest.(check bool) "overwrite" true
    (Kv.apply s (Kv.Put { key = "a"; value = "2" }) = Kv.Stored);
  Alcotest.(check (option string)) "read" (Some "2") (Kv.get s "a");
  Alcotest.(check bool) "delete" true (Kv.apply s (Kv.Delete "a") = Kv.Stored);
  Alcotest.(check bool) "gone" true (Kv.apply s (Kv.Get "a") = Kv.Missing);
  Alcotest.(check bool) "delete missing" true (Kv.apply s (Kv.Delete "a") = Kv.Missing);
  Alcotest.(check int) "size" 0 (Kv.size s)

let test_command_round_trip () =
  List.iter
    (fun cmd ->
      match Kv.decode_command (Kv.encode_command cmd) with
      | Ok back -> Alcotest.(check bool) "round trip" true (cmd = back)
      | Error e -> Alcotest.fail e)
    [
      Kv.Put { key = "k"; value = "v" };
      Kv.Put { key = ""; value = "" };
      Kv.Put { key = "has:colon"; value = "x:y:z" };
      Kv.Put { key = "bin\x00key"; value = String.make 100 '\xff' };
      Kv.Get "some-key";
      Kv.Delete "other";
    ]

let test_decode_errors () =
  List.iter
    (fun s ->
      match Kv.decode_command s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ ""; "P"; "X3:abc"; "P9:ab"; "Pxx:a"; "G1:ab"; "D2:abX" ]

let test_apply_tx () =
  let s = Kv.create () in
  let tx =
    Tx.make_with_data ~client:1 ~seq:1
      ~data:(Kv.encode_command (Kv.Put { key = "k"; value = "v" }))
  in
  Alcotest.(check bool) "applied" true (Kv.apply_tx s tx = Some Kv.Stored);
  Alcotest.(check (option string)) "stored" (Some "v") (Kv.get s "k");
  let filler = Tx.make ~client:1 ~seq:2 ~payload_len:64 in
  Alcotest.(check bool) "filler ignored" true (Kv.apply_tx s filler = None);
  let junk = Tx.make_with_data ~client:1 ~seq:3 ~data:"not-a-command" in
  Alcotest.(check bool) "junk ignored" true (Kv.apply_tx s junk = None)

let test_state_hash () =
  let a = Kv.create () and b = Kv.create () in
  Alcotest.(check string) "empty equal" (Kv.state_hash a) (Kv.state_hash b);
  ignore (Kv.apply a (Kv.Put { key = "x"; value = "1" }));
  ignore (Kv.apply a (Kv.Put { key = "y"; value = "2" }));
  (* insertion order must not matter *)
  ignore (Kv.apply b (Kv.Put { key = "y"; value = "2" }));
  ignore (Kv.apply b (Kv.Put { key = "x"; value = "1" }));
  Alcotest.(check string) "order independent" (Kv.state_hash a) (Kv.state_hash b);
  ignore (Kv.apply b (Kv.Put { key = "x"; value = "9" }));
  Alcotest.(check bool) "divergence detected" true
    (Kv.state_hash a <> Kv.state_hash b)

let command_round_trip_prop =
  let open QCheck in
  let gen =
    Gen.pair (Gen.string_size ~gen:Gen.char (Gen.int_range 0 30))
      (Gen.string_size ~gen:Gen.char (Gen.int_range 0 60))
  in
  Test.make ~name:"arbitrary put commands round trip" ~count:300
    (make ~print:(fun (k, v) -> Printf.sprintf "%S=%S" k v) gen)
    (fun (key, value) ->
      Kv.decode_command (Kv.encode_command (Kv.Put { key; value }))
      = Ok (Kv.Put { key; value }))

let suite =
  [
    Alcotest.test_case "put/get/delete" `Quick test_put_get_delete;
    Alcotest.test_case "command round trip" `Quick test_command_round_trip;
    Alcotest.test_case "decode errors" `Quick test_decode_errors;
    Alcotest.test_case "apply_tx" `Quick test_apply_tx;
    Alcotest.test_case "state hash" `Quick test_state_hash;
    QCheck_alcotest.to_alcotest command_round_trip_prop;
  ]
