module Pacemaker = Bamboo.Pacemaker
open Bamboo_types

let genesis_qc = Bamboo.Safety.genesis_qc

let test_initial () =
  let p = Pacemaker.create ~timeout:0.1 () in
  Alcotest.(check int) "starts in view 1" 1 (Pacemaker.current_view p);
  Alcotest.(check (float 0.0)) "duration" 0.1 (Pacemaker.timer_duration p);
  Alcotest.(check bool) "startup reason" true
    (Pacemaker.entry_reason p = Pacemaker.Startup)

let test_advance_via_qc () =
  let p = Pacemaker.create ~timeout:0.1 () in
  let qc = { genesis_qc with Qc.view = 1 } in
  Alcotest.(check bool) "advance" true
    (Pacemaker.advance p ~to_view:2 ~reason:(Pacemaker.Via_qc qc));
  Alcotest.(check int) "view 2" 2 (Pacemaker.current_view p);
  Alcotest.(check bool) "reason recorded" true
    (match Pacemaker.entry_reason p with Pacemaker.Via_qc _ -> true | _ -> false)

let test_no_backwards_advance () =
  let p = Pacemaker.create ~timeout:0.1 () in
  ignore (Pacemaker.advance p ~to_view:5 ~reason:Pacemaker.Startup);
  Alcotest.(check bool) "same view refused" false
    (Pacemaker.advance p ~to_view:5 ~reason:Pacemaker.Startup);
  Alcotest.(check bool) "lower view refused" false
    (Pacemaker.advance p ~to_view:3 ~reason:Pacemaker.Startup);
  Alcotest.(check int) "still 5" 5 (Pacemaker.current_view p)

let test_view_jump () =
  let p = Pacemaker.create ~timeout:0.1 () in
  Alcotest.(check bool) "jump to 10" true
    (Pacemaker.advance p ~to_view:10 ~reason:Pacemaker.Startup);
  Alcotest.(check int) "view 10" 10 (Pacemaker.current_view p)

let test_timer_fired_once_per_view () =
  let p = Pacemaker.create ~timeout:0.1 () in
  Alcotest.(check bool) "first expiry broadcasts" true
    (Pacemaker.note_timer_fired p 1 = `Broadcast_timeout);
  (* While still stuck in the view, every expiry re-broadcasts so that a
     lost timeout message cannot starve TC formation. *)
  Alcotest.(check bool) "second expiry re-broadcasts" true
    (Pacemaker.note_timer_fired p 1 = `Broadcast_timeout);
  Alcotest.(check bool) "timed_out" true (Pacemaker.timed_out p 1);
  Alcotest.(check bool) "future not timed out" false (Pacemaker.timed_out p 2)

let test_stale_timer_ignored () =
  let p = Pacemaker.create ~timeout:0.1 () in
  ignore (Pacemaker.advance p ~to_view:3 ~reason:Pacemaker.Startup);
  Alcotest.(check bool) "old view timer stale" true
    (Pacemaker.note_timer_fired p 1 = `Stale);
  Alcotest.(check bool) "current fires" true
    (Pacemaker.note_timer_fired p 3 = `Broadcast_timeout)

let test_timeout_then_advance () =
  let p = Pacemaker.create ~timeout:0.1 () in
  ignore (Pacemaker.note_timer_fired p 1);
  ignore (Pacemaker.advance p ~to_view:2 ~reason:Pacemaker.Startup);
  Alcotest.(check bool) "view 1 stays timed out" true (Pacemaker.timed_out p 1);
  Alcotest.(check bool) "new view timer can fire" true
    (Pacemaker.note_timer_fired p 2 = `Broadcast_timeout)

let test_invalid_timeout () =
  Alcotest.check_raises "non-positive timeout"
    (Invalid_argument "Pacemaker.create: timeout must be positive") (fun () ->
      ignore (Pacemaker.create ~timeout:0.0 ()))

let suite =
  [
    Alcotest.test_case "initial" `Quick test_initial;
    Alcotest.test_case "advance via QC" `Quick test_advance_via_qc;
    Alcotest.test_case "no backwards advance" `Quick test_no_backwards_advance;
    Alcotest.test_case "view jump" `Quick test_view_jump;
    Alcotest.test_case "timer fires once per view" `Quick
      test_timer_fired_once_per_view;
    Alcotest.test_case "stale timer" `Quick test_stale_timer_ignored;
    Alcotest.test_case "timeout then advance" `Quick test_timeout_then_advance;
    Alcotest.test_case "invalid timeout" `Quick test_invalid_timeout;
  ]

let test_backoff_growth_and_reset () =
  let p = Pacemaker.create ~backoff:2.0 ~timeout:0.1 () in
  Alcotest.(check (float 1e-9)) "base" 0.1 (Pacemaker.timer_duration p);
  let tc view = Bamboo.Pacemaker.Via_tc { Tcert.view; high_qc = genesis_qc; sigs = [] } in
  ignore (Pacemaker.advance p ~to_view:2 ~reason:(tc 1));
  Alcotest.(check (float 1e-9)) "doubled" 0.2 (Pacemaker.timer_duration p);
  ignore (Pacemaker.advance p ~to_view:3 ~reason:(tc 2));
  Alcotest.(check (float 1e-9)) "quadrupled" 0.4 (Pacemaker.timer_duration p);
  Alcotest.(check int) "counter" 2 (Pacemaker.consecutive_timeouts p);
  ignore
    (Pacemaker.advance p ~to_view:4
       ~reason:(Bamboo.Pacemaker.Via_qc { genesis_qc with Qc.view = 3 }));
  Alcotest.(check (float 1e-9)) "reset on progress" 0.1
    (Pacemaker.timer_duration p);
  Alcotest.(check int) "counter reset" 0 (Pacemaker.consecutive_timeouts p)

let test_backoff_validation () =
  match Pacemaker.create ~backoff:0.5 ~timeout:0.1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "backoff < 1 accepted"

let suite =
  suite
  @ [
      Alcotest.test_case "backoff growth and reset" `Quick
        test_backoff_growth_and_reset;
      Alcotest.test_case "backoff validation" `Quick test_backoff_validation;
    ]
