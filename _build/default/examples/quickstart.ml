(* Quickstart: run a 4-replica HotStuff cluster in the simulator, push an
   open-loop workload through it, and print the committed chain and the
   headline metrics. This is the smallest end-to-end use of the public API:
   build a Config, pick a Workload, call Runtime.run. *)

let () =
  let config =
    {
      Bamboo.Config.default with
      protocol = Bamboo.Config.Hotstuff;
      n = 4;
      runtime = 3.0;
      warmup = 0.5;
      seed = 7;
    }
  in
  let workload = Bamboo.Workload.open_loop ~rate:20_000.0 () in
  Format.printf "Running %a with %s for %.1f virtual seconds...@."
    Bamboo.Config.pp config
    (Bamboo.Workload.describe workload)
    config.runtime;
  let result = Bamboo.Runtime.run ~config ~workload () in
  let s = result.summary in
  Format.printf "@[<v>%a@,@]" Bamboo.Metrics.pp_summary s;
  Format.printf "views entered: %d, committed blocks: %d, consistent: %b@."
    s.views s.committed_blocks result.consistent;
  Format.printf "final views per replica: %s@."
    (String.concat ", "
       (Array.to_list (Array.map string_of_int result.final_views)));
  Format.printf "committed heights:       %s@."
    (String.concat ", "
       (Array.to_list (Array.map string_of_int result.committed_heights)))
