(* Prototype new chained-BFT protocols against the Safety API — the core
   use-case of the Bamboo framework (paper Fig. 4: developers fill in the
   proposing / voting / state-updating / commit rules).

   Two prototypes:
   - "one-chain commit": commits a block the moment it is certified. It is
     live and fast but NOT safe under forks; the cross-replica consistency
     check catches exactly that once Byzantine forking is enabled.
   - "four-chain HotStuff": an extra-conservative rule (commit needs a
     4-chain), trivially safe, with one more view of commit latency. *)

module Config = Bamboo.Config
module Safety = Bamboo.Safety

let one_chain ctx chain =
  Bamboo.Chained_common.make ~name:"one-chain-demo" ~lock_chain:1
    ~commit_chain:1 ~tc_responsive:false ctx chain

let four_chain ctx chain =
  Bamboo.Chained_common.make ~name:"four-chain" ~lock_chain:3 ~commit_chain:4
    ~tc_responsive:false ctx chain

let () =
  (* The Node engine resolves protocols from Config; custom Safety values
     plug in at the library level. Here we exercise the rules directly on a
     shared forest, mirroring how the test suite drives them, and then show
     the built-in engine running the nearest configured equivalents. *)
  let forest = Bamboo_forest.Forest.create () in
  let certified = Hashtbl.create 16 in
  Hashtbl.add certified Bamboo_types.Block.genesis_hash Safety.genesis_qc;
  let chain =
    Safety.{ forest; qc_of = (fun h -> Hashtbl.find_opt certified h) }
  in
  let registry = Bamboo_crypto.Sig.setup ~n:4 ~master:"custom" in
  let ctx = Safety.{ n = 4; self = 0; registry; quorum = 3 } in
  let protos = [ one_chain ctx chain; four_chain ctx chain ] in
  (* Grow a five-block certified chain and watch each prototype's commit
     rule fire at a different depth. *)
  let parent = ref Bamboo_types.Block.genesis in
  Printf.printf "%-16s %s\n" "protocol" "commit trigger per certified block";
  let commits = Hashtbl.create 8 in
  for view = 1 to 5 do
    let justify =
      match chain.Safety.qc_of !parent.Bamboo_types.Block.hash with
      | Some qc -> qc
      | None -> assert false
    in
    let b =
      Bamboo_types.Block.create ~view ~parent:!parent ~justify ~proposer:0
        ~txs:[] ()
    in
    (match Bamboo_forest.Forest.add forest b with
    | Bamboo_forest.Forest.Added -> ()
    | _ -> failwith "add failed");
    (* Certify it: a full quorum of votes. *)
    let sigs =
      List.init 3 (fun signer ->
          Bamboo_crypto.Sig.sign registry ~signer
            (Bamboo_types.Qc.signed_payload ~block:b.hash ~view))
    in
    let qc =
      Bamboo_types.Qc.{ block = b.hash; view; height = b.height; sigs }
    in
    Hashtbl.add certified b.hash qc;
    List.iter
      (fun (p : Safety.t) ->
        match p.Safety.on_qc qc with
        | Some target ->
            let prev =
              match Hashtbl.find_opt commits p.Safety.name with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace commits p.Safety.name
              ((view, Bamboo_types.Ids.short target) :: prev)
        | None -> ())
      protos;
    parent := b
  done;
  List.iter
    (fun (p : Safety.t) ->
      let fired =
        match Hashtbl.find_opt commits p.Safety.name with
        | Some l -> List.rev l
        | None -> []
      in
      Printf.printf "%-16s %s\n" p.Safety.name
        (String.concat ", "
           (List.map
              (fun (v, target) -> Printf.sprintf "QC(v%d)->commit %s" v target)
              fired)))
    protos;
  print_newline ();
  print_endline
    "one-chain commits immediately on certification (fast, fork-unsafe); \
     four-chain waits three extra certifications (slow, conservative). The \
     shipped protocols sit in between: 2CHS at two, HotStuff at three.";
  (* Finally, demonstrate the same trade-off end-to-end with the shipped
     protocols under the simulator. *)
  print_newline ();
  List.iter
    (fun protocol ->
      let config =
        { Config.default with protocol; runtime = 2.0; warmup = 0.5 }
      in
      let r =
        Bamboo.Runtime.run ~config
          ~workload:(Bamboo.Workload.open_loop ~rate:5000.0 ())
          ()
      in
      Printf.printf "%-14s latency %.2f ms, BI %.2f\n"
        (Config.protocol_name protocol)
        (r.summary.latency_mean *. 1000.0)
        r.summary.block_interval)
    Config.[ Twochain; Hotstuff ]
