(* Compare HotStuff, two-chain HotStuff and Streamlet under the paper's two
   Byzantine strategies (Section IV-A) at a small scale: 8 replicas, 2 of
   them Byzantine. Prints the four metrics of Figs. 13-14: throughput,
   latency, chain growth rate and block interval. *)

module Config = Bamboo.Config
module Table = Bamboo_util.Table

let run ~protocol ~strategy ~timeout =
  let config =
    {
      Config.default with
      protocol;
      n = 8;
      byz_no = 2;
      strategy;
      timeout;
      runtime = 4.0;
      warmup = 0.5;
      seed = 3;
    }
  in
  let workload = Bamboo.Workload.open_loop ~rate:8000.0 () in
  (Bamboo.Runtime.run ~config ~workload ()).summary

let () =
  let protocols = Config.[ Hotstuff; Twochain; Streamlet ] in
  List.iter
    (fun (title, strategy, timeout) ->
      Printf.printf "\n== %s attack (8 replicas, 2 Byzantine) ==\n" title;
      let rows =
        List.map
          (fun protocol ->
            let s = run ~protocol ~strategy ~timeout in
            [
              Config.protocol_name protocol;
              Printf.sprintf "%.0f" s.Bamboo.Metrics.throughput;
              Printf.sprintf "%.2f" (s.latency_mean *. 1000.0);
              Printf.sprintf "%.3f" s.cgr;
              Printf.sprintf "%.2f" s.block_interval;
              string_of_int s.forked_blocks;
            ])
          protocols
      in
      Table.print
        ~header:[ "protocol"; "tx/s"; "lat(ms)"; "CGR"; "BI"; "forked" ]
        ~rows)
    [
      ("forking", Config.Fork, 0.1);
      ("silence", Config.Silence, 0.05);
    ];
  print_newline ();
  print_endline
    "Expected shapes (paper Figs. 13-14): Streamlet's CGR stays at 1.0 under \
     both attacks; under forking, two-chain HotStuff loses one block per \
     Byzantine leader where HotStuff loses two; under silence, HotStuff and \
     2CHS degrade identically in CGR while block intervals grow fastest for \
     HotStuff's three-chain rule."
