(* Section V analytic model next to the simulator, on one configuration —
   a single-panel version of the paper's Fig. 8. *)

module Config = Bamboo.Config
module Model = Bamboo.Model
module Table = Bamboo_util.Table

let () =
  let config =
    { Config.default with protocol = Config.Hotstuff; n = 4; bsize = 400;
      runtime = 4.0; warmup = 0.5 }
  in
  let m = Model.build ~config in
  Printf.printf
    "model building blocks: t_L=%.2fms t_NIC=%.2fms t_Q=%.2fms t_s=%.2fms \
     t_commit=%.2fms, saturation %.0f tx/s\n\n"
    (m.t_l *. 1e3) (m.t_nic *. 1e3) (m.t_q *. 1e3) (m.t_s *. 1e3)
    (m.t_commit *. 1e3) m.saturation_rate;
  let rows =
    List.map
      (fun f ->
        let rate = f *. m.saturation_rate in
        let r =
          Bamboo.Runtime.run ~config
            ~workload:(Bamboo.Workload.open_loop ~rate ())
            ()
        in
        let model_latency =
          match Model.latency m ~rate with
          | Some l -> Printf.sprintf "%.2f" (l *. 1e3)
          | None -> "saturated"
        in
        [
          Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.0f" r.summary.throughput;
          Printf.sprintf "%.2f" (r.summary.latency_mean *. 1e3);
          model_latency;
        ])
      [ 0.2; 0.4; 0.6; 0.8; 0.9; 0.95 ]
  in
  Table.print
    ~header:[ "arrival tx/s"; "sim thr"; "sim lat(ms)"; "model lat(ms)" ]
    ~rows;
  print_newline ();
  print_endline
    "As in the paper's Fig. 8, the model under-predicts at low load (it \
     omits the wait for the submitting replica's leadership turn) and \
     over-predicts near saturation (the M/D/1 queue diverges first); the \
     curves share the L shape and the saturation point."
