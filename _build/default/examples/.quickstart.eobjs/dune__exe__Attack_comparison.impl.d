examples/attack_comparison.ml: Bamboo Bamboo_util List Printf
