examples/custom_protocol.ml: Bamboo Bamboo_crypto Bamboo_forest Bamboo_types Hashtbl List Printf String
