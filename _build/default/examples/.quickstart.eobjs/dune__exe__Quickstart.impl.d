examples/quickstart.ml: Array Bamboo Format String
