examples/quickstart.mli:
