examples/threaded_deployment.mli:
