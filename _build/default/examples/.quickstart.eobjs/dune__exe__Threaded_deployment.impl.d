examples/threaded_deployment.ml: Array Bamboo Bamboo_network List Printf String
