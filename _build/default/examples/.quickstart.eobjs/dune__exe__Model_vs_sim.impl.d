examples/model_vs_sim.ml: Bamboo Bamboo_util List Printf
