(* Run a real 4-replica HotStuff cluster — OS threads, real HMAC signature
   verification, wall-clock timers — over the in-process channel transport
   and then over TCP loopback sockets. This is the deployment path of the
   framework (Bamboo's "TCP and Go channel" transports); all paper
   experiments use the deterministic simulator instead. *)

module Config = Bamboo.Config
module Chan = Bamboo_network.Chan_transport
module Tcp = Bamboo_network.Tcp_transport
module Chan_runtime = Bamboo.Threaded_runtime.Make (Bamboo_network.Chan_transport)
module Tcp_runtime = Bamboo.Threaded_runtime.Make_batched (Bamboo_network.Tcp_transport)

let config =
  { Config.default with n = 4; bsize = 100; timeout = 0.2; memsize = 50_000 }

let describe label (r : Bamboo.Threaded_runtime.report) =
  Printf.printf
    "%s: %.1fs wall clock, %d txs committed (%.0f tx/s), mean latency %.1f \
     ms, blocks per replica: %s, consistent: %b, violations: %b\n%!"
    label r.duration r.committed_txs r.throughput (r.latency_mean *. 1000.0)
    (String.concat "/" (Array.to_list (Array.map string_of_int r.committed_blocks)))
    r.consistent r.any_violation

let () =
  print_endline "Channel transport (single process, 4 replica threads):";
  let cluster = Chan.create_cluster ~n:4 in
  let endpoints = Array.init 4 (Chan.endpoint cluster) in
  let report = Chan_runtime.run ~config ~endpoints ~duration:3.0 ~rate:500.0 () in
  describe "  channel" report;
  print_endline "TCP transport (loopback sockets):";
  let addresses = Tcp.loopback_addresses ~n:4 ~base_port:29700 in
  let endpoints =
    Array.of_list
      (List.map (fun (self, _) -> Tcp.create ~self ~addresses ()) addresses)
  in
  let report = Tcp_runtime.run ~config ~endpoints ~duration:3.0 ~rate:500.0 () in
  describe "  tcp" report
