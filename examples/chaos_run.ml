(* Fault injection: script a partition (with heal) and a slow-leader
   window against a 4-replica HotStuff simulation, watch the commit time
   series stall and recover, and read the fault timeline back from the
   trace. The same schedule can be loaded from JSON with
   [bamboo_cli run --faults file.json]; see README "Fault injection". *)

module Schedule = Bamboo_faults.Schedule
module Trace = Bamboo_obs.Trace
module Json = Bamboo_util.Json

let () =
  (* From t=2s to t=3.5s split the cluster 2|2: no side holds a quorum
     of 3, so commits must stall until the heal. From t=5s to t=6.5s
     give replica 0's outbound links 20 ms of extra delay: every view
     it leads slows down, the others stay fast. *)
  let faults =
    [
      {
        Schedule.at = 2.0;
        until = Some 3.5;
        spec = Schedule.Partition { a = [ 0; 1 ]; b = [] };
      };
      {
        Schedule.at = 5.0;
        until = Some 6.5;
        spec =
          Schedule.Link_delay
            {
              src = Schedule.Nodes [ 0 ];
              dst = Schedule.All;
              mu = 0.020;
              sigma = 0.002;
            };
      };
    ]
  in
  let config =
    {
      Bamboo.Config.default with
      protocol = Bamboo.Config.Hotstuff;
      n = 4;
      runtime = 8.0;
      warmup = 0.5;
      seed = 7;
      faults;
    }
  in
  let workload = Bamboo.Workload.open_loop ~rate:10_000.0 () in
  let trace = Trace.ring ~capacity:2_000_000 in
  Format.printf "Chaos run: %a@." Bamboo.Config.pp config;
  let result =
    Bamboo.Runtime.run ~config ~workload ~trace ~bucket:0.5 ()
  in
  Format.printf "%a@." Bamboo.Metrics.pp_summary result.summary;
  (* The commit time series, annotated with the active faults. *)
  let active t =
    List.filter_map
      (fun (e : Schedule.entry) ->
        let until = match e.until with Some u -> u | None -> infinity in
        if e.at <= t && t < until then Some (Schedule.spec_name e.spec)
        else None)
      faults
  in
  print_endline "bucket      throughput  active faults";
  List.iter
    (fun (t, thr) ->
      Printf.printf "t=%4.1fs  %9.0f tx/s  %s\n" t thr
        (String.concat " " (active t)))
    result.series;
  (* The fault timeline as recorded in the trace. *)
  print_endline "fault events:";
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Fault_inject | Trace.Fault_heal ->
          let name =
            match List.assoc_opt "fault" e.args with
            | Some (Json.String s) -> s
            | _ -> "?"
          in
          Printf.printf "  t=%.2fs  %-12s %s\n" e.ts
            (Trace.kind_name e.kind) name
      | _ -> ())
    (Trace.events trace)
