(* Tracing a run: attach a Chrome trace_event sink and a resource probe to
   a 4-replica HotStuff simulation, then print where each transaction's
   latency went. The produced trace.json opens directly in
   chrome://tracing or https://ui.perfetto.dev — one "process" per
   replica, one "thread" per machine queue (consensus / cpu / nic_out /
   nic_in), counter tracks for the probed queue depths. *)

module Trace = Bamboo_obs.Trace
module Probe = Bamboo_obs.Probe
module Latency = Bamboo_obs.Latency

let () =
  let config =
    {
      Bamboo.Config.default with
      protocol = Bamboo.Config.Hotstuff;
      n = 4;
      runtime = 3.0;
      warmup = 0.5;
      seed = 7;
      probe_interval = 0.01 (* sample queues every 10 virtual ms *);
    }
  in
  let workload = Bamboo.Workload.open_loop ~rate:20_000.0 () in
  let path = "trace.json" in
  let oc = open_out path in
  let trace = Trace.chrome oc in
  Format.printf "Tracing %a to %s...@." Bamboo.Config.pp config path;
  let result = Bamboo.Runtime.run ~config ~workload ~trace () in
  Trace.close trace;
  close_out oc;
  Format.printf "%a@." Bamboo.Metrics.pp_summary result.summary;
  Format.printf "simulator events: %d@." result.sim_events;
  (* Where did the latency go? The components sum to the measured mean. *)
  Format.printf "%a@." Latency.pp_summary result.decomposition;
  (* What were the machines doing? *)
  List.iter
    (fun (s : Probe.summary) ->
      if s.name = "cpu_utilization" || s.name = "event_heap" then
        Format.printf "%a@." Probe.pp_summary s)
    result.probe;
  Format.printf "open %s in chrome://tracing or ui.perfetto.dev@." path
