(* Benchmark harness.

   Three parts:
   1. Bechamel microbenchmarks of the hot data-structure and crypto paths
      (SHA-256 hashing, HMAC signing, block construction, forest insertion,
      mempool batching, QC aggregation, event-queue throughput, codec).
   2. The paper-reproduction experiments: one per table/figure (Table II,
      Figs. 8-15) plus the Section V-E ablations, printed as the same
      rows/series the paper reports. Wall-clock per experiment and the
      simulator's events/second are measured along the way.
   3. A parallel-driver anchor: the same reduced Table II sweep at
      --jobs 1 and --jobs N, recording the speedup and checking the rows
      are identical (the determinism contract of Bamboo_util.Pool).

   Usage:
     dune exec bench/main.exe                 -- micro + all experiments, quick scale
     dune exec bench/main.exe -- micro        -- microbenchmarks only
     dune exec bench/main.exe -- fig13 fig14  -- selected experiments
     dune exec bench/main.exe -- --full all   -- paper-scale everything
     dune exec bench/main.exe -- --jobs 4 all -- 4 worker domains
     dune exec bench/main.exe -- --json BENCH_ci.json --label ci micro
                                              -- machine-readable results
     dune exec bench/main.exe -- compare BENCH_seed.json BENCH_ci.json \
         --tolerance 0.25 --normalize sha256_1KiB
                                              -- perf-regression gate *)

open Bechamel
open Bamboo_types
module Json = Bamboo_util.Json
module Mreg = Bamboo_metrics.Registry
module Snapshot = Bamboo_metrics.Snapshot

let reg = Bamboo_crypto.Sig.setup ~n:4 ~master:"bench"

let sample_txs = List.init 400 (fun seq -> Tx.make ~client:0 ~seq ~payload_len:128)

let sample_block =
  Block.create ~view:1 ~parent:Block.genesis
    ~justify:(Qc.genesis ~block:Block.genesis_hash)
    ~proposer:0 ~txs:sample_txs ()

let sample_payload = String.make 1024 'x'

(* Ring vs mutex/condvar queue: the message-plane tentpole. Each op moves
   one batch through a pre-created structure (push_all then drain — the
   transport's send/recv_batch shape), so ns/op divided by the batch size
   is the per-message handoff cost and batch scaling shows the bchan
   effect: amortizing the producer claim and consumer sync over a batch.
   Batch sizes follow bchan's methodology (1/4/16/64/256). *)
let bench_ring : int Bamboo_util.Ring.t = Bamboo_util.Ring.create ~capacity:1024 ()

let ring_batches =
  List.map (fun k -> (k, List.init k Fun.id)) [ 4; 16; 64; 256 ]

let bench_queue : int Queue.t = Queue.create ()
let bench_queue_mutex = Mutex.create ()
let bench_queue_cond = Condition.create ()

let ring_micro_tests =
  Test.make ~name:"ring_push_pop_batch_1" (Staged.stage (fun () ->
      ignore (Bamboo_util.Ring.push bench_ring 0 : Bamboo_util.Ring.push_result);
      ignore (Bamboo_util.Ring.pop bench_ring : int option)))
  :: List.map
       (fun (k, batch) ->
         Test.make ~name:(Printf.sprintf "ring_push_pop_batch_%d" k)
           (Staged.stage (fun () ->
                ignore (Bamboo_util.Ring.push_all bench_ring batch : int);
                ignore (Bamboo_util.Ring.drain bench_ring (fun _ -> ()) : int))))
       ring_batches
  @ [
      (* The baseline this PR replaces: per-message mutex lock/unlock on
         both sides plus a condvar signal, exactly chan_transport's
         send/recv handoff. *)
      Test.make ~name:"mutex_queue_push_pop_batch_1" (Staged.stage (fun () ->
          Mutex.lock bench_queue_mutex;
          Queue.push 0 bench_queue;
          Condition.signal bench_queue_cond;
          Mutex.unlock bench_queue_mutex;
          Mutex.lock bench_queue_mutex;
          ignore (Queue.pop bench_queue : int);
          Mutex.unlock bench_queue_mutex));
    ]

let micro_tests =
  ring_micro_tests
  @ [
    Test.make ~name:"sha256_1KiB" (Staged.stage (fun () ->
        ignore (Bamboo_crypto.Sha256.digest sample_payload)));
    Test.make ~name:"hmac_sign_64B" (Staged.stage (fun () ->
        ignore (Bamboo_crypto.Hmac.mac ~key:"benchkey" "payload-to-authenticate")));
    Test.make ~name:"block_create_400tx_merkle" (Staged.stage (fun () ->
        ignore
          (Block.create ~view:1 ~parent:Block.genesis
             ~justify:(Qc.genesis ~block:Block.genesis_hash)
             ~proposer:0 ~txs:sample_txs ())));
    Test.make ~name:"block_create_400tx_flat" (Staged.stage (fun () ->
        ignore
          (Block.create ~root:`Flat ~view:1 ~parent:Block.genesis
             ~justify:(Qc.genesis ~block:Block.genesis_hash)
             ~proposer:0 ~txs:sample_txs ())));
    Test.make ~name:"codec_encode_block" (Staged.stage (fun () ->
        ignore (Codec.encode (Message.Proposal { block = sample_block; tc = None }))));
    Test.make ~name:"forest_insert_100" (Staged.stage (fun () ->
        let f = Bamboo_forest.Forest.create () in
        let parent = ref Block.genesis in
        for view = 1 to 100 do
          let b =
            Block.create ~root:`Flat ~view ~parent:!parent
              ~justify:(Qc.genesis ~block:!parent.Block.hash)
              ~proposer:0 ~txs:[] ()
          in
          ignore (Bamboo_forest.Forest.add f b);
          parent := b
        done));
    Test.make ~name:"mempool_add_batch_1000" (Staged.stage (fun () ->
        let p = Bamboo_mempool.Mempool.create ~capacity:2000 () in
        for seq = 0 to 999 do
          ignore (Bamboo_mempool.Mempool.add p (Tx.make ~client:0 ~seq ~payload_len:0))
        done;
        ignore (Bamboo_mempool.Mempool.batch p ~max:1000)));
    Test.make ~name:"quorum_aggregate_qc" (Staged.stage (fun () ->
        let q = Bamboo_quorum.Quorum.create ~n:4 in
        for voter = 0 to 2 do
          ignore
            (Bamboo_quorum.Quorum.voted q
               (Vote.create reg ~voter ~block:sample_block.Block.hash ~view:1
                  ~height:1))
        done));
    Test.make ~name:"eventq_push_pop_1000" (Staged.stage (fun () ->
        let sim = Bamboo_sim.Sim.create () in
        for i = 1 to 1000 do
          Bamboo_sim.Sim.schedule sim ~delay:(float_of_int i) (fun () -> ())
        done;
        Bamboo_sim.Sim.run_to_completion sim));
    Test.make ~name:"sim_hotstuff_100ms_virtual" (Staged.stage (fun () ->
        let config =
          { Bamboo.Config.default with runtime = 0.1; warmup = 0.01 }
        in
        ignore
          (Bamboo.Runtime.run ~config
             ~workload:(Bamboo.Workload.open_loop ~rate:10_000.0 ())
             ())));
  ]

(* Runs the microbenchmarks, printing as before; returns (name, ns/op)
   pairs for the JSON report. *)
let run_micro () =
  print_endline "=== Microbenchmarks (Bechamel) ===";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      let acc = ref [] in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some (ns :: _) ->
              if ns >= 1_000_000.0 then
                Printf.printf "  %-32s %10.2f ms/op\n%!" name (ns /. 1e6)
              else if ns >= 1_000.0 then
                Printf.printf "  %-32s %10.2f us/op\n%!" name (ns /. 1e3)
              else Printf.printf "  %-32s %10.1f ns/op\n%!" name ns;
              acc := (name, ns) :: !acc
          | Some [] | None ->
              Printf.printf "  %-32s (no estimate)\n%!" name)
        analyzed;
      List.rev !acc)
    micro_tests

(* Simulator throughput in real events/second: one virtual second of the
   default HotStuff configuration near saturation, timed on the wall
   clock. This is the headline number for the sim-core hot paths (event
   queue, size-once broadcast, QC cache). *)
let measure_events_per_sec ?(metrics = Mreg.null) () =
  let config =
    { Bamboo.Config.default with runtime = 1.0; warmup = 0.1 }
  in
  let rate = 0.8 *. Bamboo.Model.((build ~config).saturation_rate) in
  let workload = Bamboo.Workload.open_loop ~rate () in
  (* warm-up run stays unmetered so the counters cover the timed run only *)
  ignore (Bamboo.Runtime.run ~config ~workload () : Bamboo.Runtime.result);
  let t0 = Unix.gettimeofday () in
  let r = Bamboo.Runtime.run ~config ~workload ~metrics () in
  let wall = Unix.gettimeofday () -. t0 in
  (* The event count is sourced from the metrics registry when one is
     attached; the runtime's own sim_events field must agree exactly. *)
  let events =
    if Mreg.enabled metrics then begin
      let n = Mreg.Counter.value (Mreg.counter metrics "sim_events_fired") in
      if n <> r.Bamboo.Runtime.sim_events then begin
        Printf.eprintf
          "bench: metrics registry (%d events) disagrees with runtime (%d)\n" n
          r.Bamboo.Runtime.sim_events;
        exit 1
      end;
      n
    end
    else r.Bamboo.Runtime.sim_events
  in
  let eps = float_of_int events /. wall in
  Printf.printf "\nsimulator: %d events in %.2f s wall = %.0f events/s\n%!"
    events wall eps;
  (events, wall, eps)

(* The model-checker anchor: an exhaustive DFS over the small honest
   HotStuff cell, with and without partial-order reduction, timed on the
   wall clock. [states_per_sec] is the exploration throughput in the
   production configuration (POR on); [pruned_ratio] is the brute-force
   state count over the reduced one — a machine-independent measure of
   how much the sleep sets and state hashing prune, which must stay
   well above 1. *)
let measure_explore ~jobs =
  let s =
    Bamboo_explore.Scheduler.scenario ~protocol:Bamboo.Config.Hotstuff ~n:4
      ~byz_no:0 ~strategy:Bamboo.Config.Honest ~horizon:0.6 ~timeout:0.05 ()
  in
  let dfs ~por =
    let t0 = Unix.gettimeofday () in
    let stats, _ =
      Bamboo_explore.Strategy.dfs ~por ~window:1e-4 ~max_decisions:4
        ~max_runs:500 ~jobs s
    in
    (stats, Unix.gettimeofday () -. t0)
  in
  let on, wall = dfs ~por:true in
  let off, _ = dfs ~por:false in
  let states_per_sec = float_of_int on.Bamboo_explore.Strategy.states /. wall in
  let pruned_ratio =
    float_of_int off.Bamboo_explore.Strategy.states
    /. float_of_int (max 1 on.Bamboo_explore.Strategy.states)
  in
  Printf.printf
    "\nexplore: %d runs, %d states in %.2f s wall = %.1f states/s, POR \
     pruned-ratio %.1fx (%d states brute-force)\n%!"
    on.Bamboo_explore.Strategy.runs on.Bamboo_explore.Strategy.states wall
    states_per_sec pruned_ratio off.Bamboo_explore.Strategy.states;
  (on.Bamboo_explore.Strategy.runs, on.Bamboo_explore.Strategy.states, wall,
   states_per_sec, pruned_ratio)

(* The parallel anchor: a reduced Table II sweep at jobs=1 vs jobs=N.
   [rows_match] must always be true (Pool.map returns results in
   submission order); [speedup] approaches min(N, cores, cells) on
   multicore hardware and ~1.0 on a single core. *)
let measure_parallel_anchor ~jobs =
  let base =
    { Bamboo.Config.default with runtime = 1.5; warmup = 0.25 }
  in
  let timed j =
    Bamboo.Experiments.set_jobs j;
    let t0 = Unix.gettimeofday () in
    let rows = Bamboo.Experiments.table2_rows ~base Bamboo.Experiments.Quick in
    (rows, Unix.gettimeofday () -. t0)
  in
  let rows_seq, wall_seq = timed 1 in
  let rows_par, wall_par = timed jobs in
  Bamboo.Experiments.set_jobs jobs;
  let cells = List.length rows_seq in
  let speedup = wall_seq /. wall_par in
  let rows_match = rows_seq = rows_par in
  Printf.printf
    "\nparallel anchor (reduced table2, %d cells): jobs=1 %.2f s, jobs=%d \
     %.2f s, speedup %.2fx, rows %s\n%!"
    cells wall_seq jobs wall_par speedup
    (if rows_match then "identical" else "DIFFER");
  (cells, wall_seq, wall_par, speedup, rows_match)

let usage () =
  prerr_endline
    "usage: main.exe [--full] [--jobs N] [--json PATH] [--label NAME] \
     [micro|all|<experiment>...]\n\
    \       main.exe compare OLD.json NEW.json [--tolerance T] \
     [--normalize MICRO_NAME]";
  exit 2

(* ------------------------------------------------------------------ *)
(* [compare OLD NEW]: the perf-regression gate over two --json reports.

   A micro benchmark regresses when its ns/op grows beyond (1 + T) times
   the old value; the simulator regresses when events/sec falls below
   (1 - T) times the old value. --normalize divides each report's ns/op
   values by that report's own measurement of the named micro benchmark
   (and multiplies events/sec by it), turning every comparison into a
   machine-relative ratio — the CI runners are not the machine that wrote
   BENCH_seed.json. Exits 1 naming every regressed metric. *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error e ->
      Printf.eprintf "bench compare: %s\n" e;
      exit 2
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

let run_compare args =
  let tolerance = ref 0.25 in
  let normalize = ref None in
  let paths = ref [] in
  let rec go = function
    | [] -> ()
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t >= 0.0 ->
            tolerance := t;
            go rest
        | _ ->
            Printf.eprintf
              "bench compare: --tolerance must be a float >= 0 (got %S)\n" v;
            exit 2)
    | "--normalize" :: name :: rest ->
        normalize := Some name;
        go rest
    | [ ("--tolerance" | "--normalize") ] -> usage ()
    | p :: rest when String.length p > 0 && p.[0] <> '-' ->
        paths := !paths @ [ p ];
        go rest
    | p :: _ ->
        Printf.eprintf "bench compare: unknown option %s\n" p;
        usage ()
  in
  go args;
  let old_path, new_path =
    match !paths with [ a; b ] -> (a, b) | _ -> usage ()
  in
  let load path =
    match Json.of_string (read_file path) with
    | j -> j
    | exception Json.Parse_error e ->
        Printf.eprintf "bench compare: %s: %s\n" path e;
        exit 2
  in
  let old_j = load old_path and new_j = load new_path in
  let micro j =
    match Json.member "micro" j with
    | Json.Null -> []
    | m ->
        List.map
          (fun o ->
            ( Json.get_string (Json.member "name" o),
              Json.to_float (Json.member "ns_per_op" o) ))
          (Json.to_list m)
  in
  let eps j =
    match Json.member "simulator" j with
    | Json.Null -> None
    | s -> (
        match Json.member "events_per_sec" s with
        | Json.Null -> None
        | v -> Some (Json.to_float v))
  in
  let old_micro = micro old_j and new_micro = micro new_j in
  let scale_of path m =
    match !normalize with
    | None -> 1.0
    | Some anchor -> (
        match List.assoc_opt anchor m with
        | Some ns when ns > 0.0 -> ns
        | Some _ | None ->
            Printf.eprintf "bench compare: anchor %S missing from %s\n" anchor
              path;
            exit 2)
  in
  let scale_old = scale_of old_path old_micro in
  let scale_new = scale_of new_path new_micro in
  Printf.printf "bench compare: %s -> %s (tolerance %.0f%%%s)\n" old_path
    new_path
    (!tolerance *. 100.0)
    (match !normalize with
    | None -> ""
    | Some a -> Printf.sprintf ", normalized to %s" a);
  let regressions = ref [] in
  let compared = ref 0 in
  List.iter
    (fun (name, old_ns) ->
      if !normalize <> Some name then
        match List.assoc_opt name new_micro with
        | None ->
            Printf.printf "  micro/%-32s missing from new report, skipped\n"
              name
        | Some new_ns ->
            incr compared;
            let ratio = new_ns /. scale_new /. (old_ns /. scale_old) in
            let bad = ratio > 1.0 +. !tolerance in
            if bad then
              regressions :=
                Printf.sprintf
                  "micro/%s: %.1f -> %.1f ns/op (%.2fx, allowed %.2fx)" name
                  old_ns new_ns ratio
                  (1.0 +. !tolerance)
                :: !regressions;
            Printf.printf "  micro/%-32s %10.1f -> %10.1f ns/op  %.2fx %s\n"
              name old_ns new_ns ratio
              (if bad then "REGRESSION" else "ok"))
    old_micro;
  (match (eps old_j, eps new_j) with
  | Some old_eps, Some new_eps ->
      incr compared;
      (* normalized events/sec: multiplying by the report's own anchor
         ns/op cancels the machine's absolute speed *)
      let ratio = new_eps *. scale_new /. (old_eps *. scale_old) in
      let bad = ratio < 1.0 -. !tolerance in
      if bad then
        regressions :=
          Printf.sprintf
            "simulator/events_per_sec: %.0f -> %.0f (%.2fx, allowed %.2fx)"
            old_eps new_eps ratio
            (1.0 -. !tolerance)
          :: !regressions;
      Printf.printf "  simulator/%-32s %10.0f -> %10.0f ev/s   %.2fx %s\n"
        "events_per_sec" old_eps new_eps ratio
        (if bad then "REGRESSION" else "ok")
  | None, _ | Some _, None ->
      Printf.printf "  simulator/events_per_sec absent, skipped\n");
  (* explore/pruned_ratio is a pure state-count ratio — machine-independent,
     so it is compared unnormalized; throughput would need the anchor but
     state counts are part of the determinism contract, so the ratio gate
     is the one that catches a POR regression. *)
  let explore_ratio j =
    match Json.member "explore" j with
    | Json.Null -> None
    | e -> (
        match Json.member "pruned_ratio" e with
        | Json.Null -> None
        | v -> Some (Json.to_float v))
  in
  (match (explore_ratio old_j, explore_ratio new_j) with
  | Some old_r, Some new_r ->
      incr compared;
      let ratio = new_r /. old_r in
      let bad = ratio < 1.0 -. !tolerance in
      if bad then
        regressions :=
          Printf.sprintf
            "explore/pruned_ratio: %.1fx -> %.1fx (%.2fx, allowed %.2fx)"
            old_r new_r ratio
            (1.0 -. !tolerance)
          :: !regressions;
      Printf.printf "  explore/%-32s %10.1f -> %10.1f x      %.2fx %s\n"
        "pruned_ratio" old_r new_r ratio
        (if bad then "REGRESSION" else "ok")
  | None, _ | Some _, None ->
      Printf.printf "  explore/pruned_ratio absent, skipped\n");
  match List.rev !regressions with
  | [] ->
      Printf.printf "bench compare: OK (%d metrics within tolerance)\n%!"
        !compared;
      exit 0
  | regs ->
      List.iter
        (fun r -> Printf.printf "bench compare: REGRESSION %s\n" r)
        regs;
      exit 1

type opts = {
  mutable full : bool;
  mutable jobs : int option;
  mutable json : string option;
  mutable label : string;
  mutable names : string list;
}

let parse_args () =
  let o =
    { full = false; jobs = None; json = None; label = "local"; names = [] }
  in
  let rec go = function
    | [] -> ()
    | "--full" :: rest -> o.full <- true; go rest
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 -> o.jobs <- Some j; go rest
        | _ ->
            Printf.eprintf "bench: --jobs must be an integer >= 1 (got %S)\n" v;
            exit 2)
    | "--json" :: path :: rest -> o.json <- Some path; go rest
    | "--label" :: l :: rest -> o.label <- l; go rest
    | ("--jobs" | "--json" | "--label") :: [] -> usage ()
    | name :: _ when String.length name > 1 && name.[0] = '-' ->
        Printf.eprintf "bench: unknown option %s\n" name;
        usage ()
    | name :: rest -> o.names <- o.names @ [ name ]; go rest
  in
  go (Array.to_list Sys.argv |> List.tl);
  o

let main () =
  let o = parse_args () in
  let scale =
    if o.full then Bamboo.Experiments.Full else Bamboo.Experiments.Quick
  in
  let jobs =
    match o.jobs with
    | Some j -> j
    | None -> Bamboo_util.Pool.recommended_jobs ()
  in
  Bamboo.Experiments.set_jobs jobs;
  let micro_results = ref [] in
  let experiment_walls = ref [] in
  let run_experiment name =
    let t0 = Unix.gettimeofday () in
    (match Bamboo.Experiments.run_one ~scale name with
    | Ok () -> ()
    | Error e ->
        prerr_endline e;
        exit 2);
    experiment_walls := !experiment_walls @ [ (name, Unix.gettimeofday () -. t0) ]
  in
  let run_all_experiments () =
    List.iter run_experiment Bamboo.Experiments.names
  in
  let want_micro, want_experiments =
    match o.names with
    | [] -> (true, `All)
    | names ->
        ( List.mem "micro" names,
          match List.filter (fun n -> n <> "micro") names with
          | [] -> `None
          | [ "all" ] -> `All
          | names -> `Some names )
  in
  if want_micro then micro_results := run_micro ();
  (match want_experiments with
  | `All -> run_all_experiments ()
  | `Some names -> List.iter run_experiment names
  | `None -> ());
  (* The measurement sections only run when a JSON report is requested:
     plain invocations keep the original fast path. *)
  match o.json with
  | None -> ()
  | Some path ->
      (* The report embeds a metrics snapshot: the simulator run feeds the
         registry directly, the parallel anchor's cells feed the pool-task
         histogram through Experiments. *)
      let mreg = Mreg.create () in
      Bamboo.Experiments.set_metrics mreg;
      let sim_events, sim_wall, eps = measure_events_per_sec ~metrics:mreg () in
      let explore_runs, explore_states, explore_wall, states_per_sec,
          pruned_ratio =
        measure_explore ~jobs
      in
      let anchor_cells, wall_seq, wall_par, speedup, rows_match =
        measure_parallel_anchor ~jobs
      in
      Bamboo.Experiments.set_metrics Mreg.null;
      (* Transport summary, derived from the ring micro entries (which the
         compare gate already covers individually): per-message handoff
         throughput at each batch size, plus the ring-vs-mutex ratio at
         batch 1 — the tentpole claim, < 1.0 means the lock-free ring
         beats the locked queue on this machine. *)
      let transport_entries =
        List.filter_map
          (fun k ->
            match
              List.assoc_opt
                (Printf.sprintf "ring_push_pop_batch_%d" k)
                !micro_results
            with
            | Some ns when ns > 0.0 ->
                Some (k, ns, float_of_int k *. 1e9 /. ns)
            | Some _ | None -> None)
          [ 1; 4; 16; 64; 256 ]
      in
      let ring_vs_mutex =
        match
          ( List.assoc_opt "ring_push_pop_batch_1" !micro_results,
            List.assoc_opt "mutex_queue_push_pop_batch_1" !micro_results )
        with
        | Some ring_ns, Some mutex_ns when mutex_ns > 0.0 ->
            Some (ring_ns /. mutex_ns)
        | _ -> None
      in
      List.iter
        (fun (k, ns, msgs) ->
          Printf.printf "transport: ring batch %3d  %8.1f ns/op = %12.0f msgs/s\n%!"
            k ns msgs)
        transport_entries;
      (match ring_vs_mutex with
      | Some r ->
          Printf.printf
            "transport: ring/mutex ns-per-msg ratio %.2fx (<1 = ring wins)\n%!" r
      | None -> ());
      let json =
        Json.Obj
          [
            ("label", Json.String o.label);
            ("scale", Json.String (if o.full then "full" else "quick"));
            ("jobs", Json.Int jobs);
            ( "micro",
              Json.List
                (List.map
                   (fun (name, ns) ->
                     Json.Obj
                       [
                         ("name", Json.String name);
                         ("ns_per_op", Json.Float ns);
                       ])
                   !micro_results) );
            ( "experiments",
              Json.List
                (List.map
                   (fun (name, wall) ->
                     Json.Obj
                       [
                         ("name", Json.String name);
                         ("wall_s", Json.Float wall);
                       ])
                   !experiment_walls) );
            ( "simulator",
              Json.Obj
                [
                  ("events", Json.Int sim_events);
                  ("wall_s", Json.Float sim_wall);
                  ("events_per_sec", Json.Float eps);
                ] );
            ( "explore",
              Json.Obj
                [
                  ("runs", Json.Int explore_runs);
                  ("states", Json.Int explore_states);
                  ("wall_s", Json.Float explore_wall);
                  ("states_per_sec", Json.Float states_per_sec);
                  ("pruned_ratio", Json.Float pruned_ratio);
                ] );
            ( "transport",
              Json.Obj
                [
                  ( "ring_batches",
                    Json.List
                      (List.map
                         (fun (k, ns, msgs) ->
                           Json.Obj
                             [
                               ("batch", Json.Int k);
                               ("ns_per_op", Json.Float ns);
                               ("msgs_per_sec", Json.Float msgs);
                             ])
                         transport_entries) );
                  ( "ring_vs_mutex_batch1",
                    match ring_vs_mutex with
                    | Some r -> Json.Float r
                    | None -> Json.Null );
                ] );
            ( "parallel",
              Json.Obj
                [
                  ("cells", Json.Int anchor_cells);
                  ("jobs", Json.Int jobs);
                  ("wall_s_jobs1", Json.Float wall_seq);
                  ("wall_s_jobsN", Json.Float wall_par);
                  ("speedup", Json.Float speedup);
                  ("rows_match", Json.Bool rows_match);
                ] );
            ("metrics", Snapshot.to_json (Snapshot.of_registry mreg));
          ]
      in
      let oc = open_out path in
      output_string oc (Json.to_string ~indent:true json);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n%!" path;
      if not rows_match then exit 1

let () =
  match Array.to_list Sys.argv with
  | _ :: "compare" :: rest -> run_compare rest
  | _ -> main ()
