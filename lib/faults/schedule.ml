module Json = Bamboo_util.Json

type node_set = All | Nodes of int list

type spec =
  | Link_delay of { src : node_set; dst : node_set; mu : float; sigma : float }
  | Link_spike of { src : node_set; dst : node_set; lo : float; hi : float }
  | Link_loss of { src : node_set; dst : node_set; rate : float }
  | Link_dup of { src : node_set; dst : node_set; prob : float }
  | Link_reorder of {
      src : node_set;
      dst : node_set;
      prob : float;
      jitter : float;
    }
  | Partition of { a : int list; b : int list }
  | Crash of { node : int }
  | Cpu_slow of { node : int; factor : float }
  | Clock_skew of { node : int; factor : float }
  | Fluctuation of { lo : float; hi : float }

type entry = { at : float; until : float option; spec : spec }

type t = entry list

let empty = []

let spec_name = function
  | Link_delay _ -> "delay"
  | Link_spike _ -> "spike"
  | Link_loss _ -> "loss"
  | Link_dup _ -> "duplicate"
  | Link_reorder _ -> "reorder"
  | Partition _ -> "partition"
  | Crash _ -> "crash"
  | Cpu_slow _ -> "slow"
  | Clock_skew _ -> "clock_skew"
  | Fluctuation _ -> "fluctuation"

let node_of = function
  | Crash { node } | Cpu_slow { node; _ } | Clock_skew { node; _ } -> node
  | Link_delay _ | Link_spike _ | Link_loss _ | Link_dup _ | Link_reorder _
  | Partition _ | Fluctuation _ ->
      -1

(* --- validation --- *)

let check_set ~n name = function
  | All -> Ok ()
  | Nodes ids ->
      if ids = [] then Error (Printf.sprintf "%s: empty node set" name)
      else if List.exists (fun i -> i < 0 || i >= n) ids then
        Error (Printf.sprintf "%s: replica id out of range [0, %d)" name n)
      else Ok ()

let check_prob name p =
  if p < 0.0 || p >= 1.0 then
    Error (Printf.sprintf "%s must be in [0, 1)" name)
  else Ok ()

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let validate_spec ~n = function
  | Link_delay { src; dst; mu; sigma } ->
      let* () = check_set ~n "delay src" src in
      let* () = check_set ~n "delay dst" dst in
      if mu < 0.0 || sigma < 0.0 then Error "delay mu/sigma must be non-negative"
      else Ok ()
  | Link_spike { src; dst; lo; hi } ->
      let* () = check_set ~n "spike src" src in
      let* () = check_set ~n "spike dst" dst in
      if lo < 0.0 || hi < lo then Error "spike requires 0 <= lo <= hi"
      else Ok ()
  | Link_loss { src; dst; rate } ->
      let* () = check_set ~n "loss src" src in
      let* () = check_set ~n "loss dst" dst in
      check_prob "loss rate" rate
  | Link_dup { src; dst; prob } ->
      let* () = check_set ~n "duplicate src" src in
      let* () = check_set ~n "duplicate dst" dst in
      check_prob "duplicate prob" prob
  | Link_reorder { src; dst; prob; jitter } ->
      let* () = check_set ~n "reorder src" src in
      let* () = check_set ~n "reorder dst" dst in
      let* () = check_prob "reorder prob" prob in
      if jitter < 0.0 then Error "reorder jitter must be non-negative" else Ok ()
  | Partition { a; b } ->
      let* () = check_set ~n "partition a" (Nodes a) in
      let* () =
        match b with [] -> Ok () | b -> check_set ~n "partition b" (Nodes b)
      in
      if List.exists (fun i -> List.mem i b) a then
        Error "partition sets must be disjoint"
      else if b = [] && List.length a >= n then
        Error "partition isolates the whole cluster from nothing"
      else Ok ()
  | Crash { node } | Cpu_slow { node; _ } | Clock_skew { node; _ }
    when node < 0 || node >= n ->
      Error (Printf.sprintf "fault replica id out of range [0, %d)" n)
  | Crash _ -> Ok ()
  | Cpu_slow { factor; _ } | Clock_skew { factor; _ } ->
      if factor <= 0.0 then Error "fault factor must be positive" else Ok ()
  | Fluctuation { lo; hi } ->
      if lo < 0.0 || hi < lo then Error "fluctuation requires 0 <= lo <= hi"
      else Ok ()

let validate ~n schedule =
  let rec loop = function
    | [] -> Ok schedule
    | e :: rest ->
        if e.at < 0.0 then Error "fault time must be non-negative"
        else
          let* () =
            match e.until with
            | Some u when u <= e.at -> Error "fault heal time must be after at"
            | Some _ | None -> Ok ()
          in
          let* () = validate_spec ~n e.spec in
          loop rest
  in
  loop schedule

(* --- JSON --- *)

let ms v = Json.Float (v *. 1000.0)

let set_to_json = function
  | All -> Json.String "all"
  | Nodes ids -> Json.List (List.map (fun i -> Json.Int i) ids)

let spec_fields = function
  | Link_delay { src; dst; mu; sigma } ->
      [
        ("src", set_to_json src); ("dst", set_to_json dst);
        ("mu", ms mu); ("sigma", ms sigma);
      ]
  | Link_spike { src; dst; lo; hi } ->
      [
        ("src", set_to_json src); ("dst", set_to_json dst);
        ("lo", ms lo); ("hi", ms hi);
      ]
  | Link_loss { src; dst; rate } ->
      [
        ("src", set_to_json src); ("dst", set_to_json dst);
        ("rate", Json.Float rate);
      ]
  | Link_dup { src; dst; prob } ->
      [
        ("src", set_to_json src); ("dst", set_to_json dst);
        ("prob", Json.Float prob);
      ]
  | Link_reorder { src; dst; prob; jitter } ->
      [
        ("src", set_to_json src); ("dst", set_to_json dst);
        ("prob", Json.Float prob); ("jitter", ms jitter);
      ]
  | Partition { a; b } ->
      ("a", Json.List (List.map (fun i -> Json.Int i) a))
      ::
      (match b with
      | [] -> []
      | b -> [ ("b", Json.List (List.map (fun i -> Json.Int i) b)) ])
  | Crash { node } -> [ ("node", Json.Int node) ]
  | Cpu_slow { node; factor } ->
      [ ("node", Json.Int node); ("factor", Json.Float factor) ]
  | Clock_skew { node; factor } ->
      [ ("node", Json.Int node); ("factor", Json.Float factor) ]
  | Fluctuation { lo; hi } -> [ ("lo", ms lo); ("hi", ms hi) ]

let entry_to_json e =
  Json.Obj
    (("kind", Json.String (spec_name e.spec))
    :: ("at", Json.Float e.at)
    :: (match e.until with
       | None -> []
       | Some u -> [ ("until", Json.Float u) ])
    @ spec_fields e.spec)

let to_json schedule = Json.List (List.map entry_to_json schedule)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* Compact rendering of the offending value for error messages, truncated
   so a pasted megabyte of JSON cannot flood the terminal. *)
let show json =
  let s = Json.to_string json in
  if String.length s <= 40 then s else String.sub s 0 37 ^ "..."

let parse_set ~path name json =
  match json with
  | Json.Null -> All
  | Json.String "all" -> All
  | Json.List l ->
      Nodes
        (List.map
           (function
             | Json.Int i -> i
             | v ->
                 fail "%s.%s: node set must list replica ids, got %s" path
                   name (show v))
           l)
  | v ->
      fail "%s.%s: node set must be \"all\" or a list of ids, got %s" path
        name (show v)

let parse_ids ~path name json =
  match json with
  | Json.List l ->
      List.map
        (function
          | Json.Int i -> i
          | v ->
              fail "%s.%s: must list replica ids, got %s" path name (show v))
        l
  | v -> fail "%s.%s: must be a list of replica ids, got %s" path name (show v)

let parse_num ~path ?unit name json =
  match json with
  | Json.Null -> fail "%s: missing required key %S" path name
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | v ->
      fail "%s.%s: expected a number%s, got %s" path name
        (match unit with None -> "" | Some u -> " (" ^ u ^ ")")
        (show v)

let parse_ms ~path name json = parse_num ~path ~unit:"milliseconds" name json /. 1000.0

let parse_ms_default ~path name default json =
  match json with Json.Null -> default | _ -> parse_ms ~path name json

(* Keys common to every entry; [kind] selects the per-kind extras. *)
let base_keys = [ "kind"; "at"; "until" ]

let keys_of_kind = function
  | "delay" -> Some [ "src"; "dst"; "mu"; "sigma" ]
  | "spike" -> Some [ "src"; "dst"; "lo"; "hi" ]
  | "loss" -> Some [ "src"; "dst"; "rate" ]
  | "duplicate" -> Some [ "src"; "dst"; "prob" ]
  | "reorder" -> Some [ "src"; "dst"; "prob"; "jitter" ]
  | "partition" -> Some [ "a"; "b" ]
  | "crash" -> Some [ "node" ]
  | "slow" -> Some [ "node"; "factor" ]
  | "clock_skew" -> Some [ "node"; "factor" ]
  | "fluctuation" -> Some [ "lo"; "hi" ]
  | _ -> None

let entry_of_json ~path json =
  match json with
  | Json.Obj fields -> (
      let kind =
        match Json.member "kind" json with
        | Json.String k -> k
        | Json.Null ->
            fail "%s: missing required key \"kind\" (one of delay, spike, \
                  loss, duplicate, reorder, partition, crash, slow, \
                  clock_skew, fluctuation)"
              path
        | v -> fail "%s.kind: expected a string, got %s" path (show v)
      in
      let allowed =
        match keys_of_kind kind with
        | Some keys -> base_keys @ keys
        | None ->
            fail "%s.kind: unknown fault kind %S (expected one of delay, \
                  spike, loss, duplicate, reorder, partition, crash, slow, \
                  clock_skew, fluctuation)"
              path kind
      in
      (match
         List.find_opt (fun (k, _) -> not (List.mem k allowed)) fields
       with
      | Some (k, v) ->
          fail "%s: unknown key %S (value %s) for fault kind %S; valid keys \
                are %s"
            path k (show v) kind
            (String.concat ", " allowed)
      | None -> ());
      let mem k = Json.member k json in
      let at =
        match mem "at" with
        | Json.Null -> 0.0
        | v -> parse_num ~path ~unit:"seconds" "at" v
      in
      let until =
        match mem "until" with
        | Json.Null -> None
        | v -> Some (parse_num ~path ~unit:"seconds" "until" v)
      in
      let node () =
        match mem "node" with
        | Json.Int i -> i
        | Json.Null -> fail "%s: missing required key \"node\"" path
        | v -> fail "%s.node: expected a replica id, got %s" path (show v)
      in
      let factor () = parse_num ~path "factor" (mem "factor") in
      let src = parse_set ~path "src" (mem "src") in
      let dst = parse_set ~path "dst" (mem "dst") in
      let num name = parse_num ~path name (mem name) in
      let ms name = parse_ms ~path name (mem name) in
      let spec =
        match kind with
        | "delay" ->
            Link_delay
              {
                src;
                dst;
                mu = ms "mu";
                sigma = parse_ms_default ~path "sigma" 0.0 (mem "sigma");
              }
        | "spike" -> Link_spike { src; dst; lo = ms "lo"; hi = ms "hi" }
        | "loss" -> Link_loss { src; dst; rate = num "rate" }
        | "duplicate" -> Link_dup { src; dst; prob = num "prob" }
        | "reorder" ->
            Link_reorder { src; dst; prob = num "prob"; jitter = ms "jitter" }
        | "partition" ->
            Partition
              {
                a = parse_ids ~path "a" (mem "a");
                b =
                  (match mem "b" with
                  | Json.Null -> []
                  | v -> parse_ids ~path "b" v);
              }
        | "crash" -> Crash { node = node () }
        | "slow" -> Cpu_slow { node = node (); factor = factor () }
        | "clock_skew" -> Clock_skew { node = node (); factor = factor () }
        | "fluctuation" -> Fluctuation { lo = ms "lo"; hi = ms "hi" }
        | _ -> assert false (* keys_of_kind already filtered *)
      in
      { at; until; spec })
  | v -> fail "%s: fault entry must be a JSON object, got %s" path (show v)

let of_json json =
  match json with
  | Json.List entries -> (
      try
        Ok
          (List.mapi
             (fun i e ->
               entry_of_json ~path:(Printf.sprintf "faults[%d]" i) e)
             entries)
      with
      | Bad msg -> Error msg
      | Invalid_argument msg -> Error msg)
  | Json.Null -> Ok []
  | v ->
      Error
        (Printf.sprintf "faults must be a JSON list of fault entries, got %s"
           (show v))
