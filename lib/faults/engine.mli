(** Fault-schedule execution engine.

    {!create} allocates the per-run fault state; {!install} compiles every
    {!Schedule.entry} into begin/heal simulator events against the run's
    network model, machines and trace. Each entry draws a dedicated RNG
    stream (split from the engine's stream at install time, in entry
    order), so stochastic faults never advance the base network or
    workload streams: with an empty schedule, [install] schedules nothing
    and the run is bit-identical to one without the subsystem.

    The engine owns the node-level fault state that the runtime polls:
    {!node_down} (crash-stop windows) and {!clock_factor} (pacemaker timer
    scaling). Link-level faults act directly on the {!Bamboo_sim.Netmodel}
    fault plane and need no polling.

    Every injection and heal is emitted as a [Fault_inject] /
    [Fault_heal] trace event (node = targeted replica, or -1 for
    link/cluster faults) carrying the fault kind and its full JSON spec,
    so Perfetto timelines show fault windows against protocol activity. *)

type t

val create : n:int -> rng:Bamboo_util.Rng.t -> schedule:Schedule.t -> t
(** [n] is the cluster size. The schedule should already have passed
    {!Schedule.validate}. *)

val schedule : t -> Schedule.t

val node_down : t -> int -> bool
(** True while replica [i] is inside a crash window. *)

val clock_factor : t -> int -> float
(** Product of the clock-skew factors currently active on replica [i];
    exactly [1.0] when none are. The runtime multiplies pacemaker timer
    durations by it. *)

val install :
  t ->
  sim:Bamboo_sim.Sim.t ->
  net:Bamboo_sim.Netmodel.t ->
  machines:Bamboo_sim.Machine.t array ->
  trace:Bamboo_obs.Trace.t ->
  on_recover:(int -> unit) ->
  unit
(** Schedules all fault begin/heal events. [on_recover node] is invoked
    when a crash-recovery window heals, after the replica is marked up
    again — the runtime uses it to kick the replica's rejoin path.
    Call at most once, before the simulation starts. *)
