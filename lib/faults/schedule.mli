(** Declarative fault schedules.

    A schedule is a list of timed entries, each injecting one
    infrastructure fault at virtual time [at] and (optionally) healing it
    at [until]. Entries are compiled by {!Engine} into simulator events;
    the schedule itself is pure data and round-trips through JSON (the
    [faults] section of the configuration file, or a standalone file given
    to the CLI's [--faults] flag).

    Conventions, matching the configuration's JSON units: times ([at],
    [until]) are virtual {e seconds}; delay parameters ([mu], [sigma],
    [lo], [hi], [jitter]) are {e milliseconds} in JSON and seconds in the
    OCaml representation; rates, probabilities and factors are unitless.

    Link faults select {e ordered} (src, dst) pairs, so asymmetric faults
    (e.g. delaying only a leader's outbound links) are expressed directly;
    self-pairs are ignored. *)

type node_set = All | Nodes of int list
(** Selector for link endpoints. In JSON: the string ["all"] or a list of
    replica ids. *)

type spec =
  | Link_delay of { src : node_set; dst : node_set; mu : float; sigma : float }
      (** Additive normally-distributed delay on matching links. *)
  | Link_spike of { src : node_set; dst : node_set; lo : float; hi : float }
      (** Additive delay drawn uniformly from [lo, hi) per message. *)
  | Link_loss of { src : node_set; dst : node_set; rate : float }
      (** Independent per-message drop probability, composed with (on top
          of) the run-wide [loss] setting. *)
  | Link_dup of { src : node_set; dst : node_set; prob : float }
      (** With probability [prob], deliver one extra copy of the message
          with an independently sampled delay (copies may overtake the
          original). *)
  | Link_reorder of { src : node_set; dst : node_set; prob : float; jitter : float }
      (** With probability [prob], add uniform extra delay in [0, jitter)
          so that later messages overtake this one. *)
  | Partition of { a : int list; b : int list }
      (** Blocks all traffic between the two node sets, both directions,
          until healed. An empty [b] means "the complement of [a]". *)
  | Crash of { node : int }
      (** Crash-stop while active. With an [until] time this is
          crash-recovery: the replica rejoins with its pre-crash state and
          catches up through the block-synchronization path. *)
  | Cpu_slow of { node : int; factor : float }
      (** Divides the replica's modelled CPU speed by [factor] (> 1 slows
          it down) while active. *)
  | Clock_skew of { node : int; factor : float }
      (** Multiplies the replica's pacemaker timer durations by [factor]
          while active ([< 1] = fast clock that fires timeouts early). *)
  | Fluctuation of { lo : float; hi : float }
      (** Cluster-wide delay-fluctuation window (the Fig. 15 experiment):
          every one-way delay is drawn uniformly from [lo, hi) instead of
          the base distribution while active. *)

type entry = { at : float; until : float option; spec : spec }

type t = entry list

val empty : t

val spec_name : spec -> string
(** The JSON [kind] tag: ["delay"], ["spike"], ["loss"], ["duplicate"],
    ["reorder"], ["partition"], ["crash"], ["slow"], ["clock_skew"] or
    ["fluctuation"]. *)

val node_of : spec -> int
(** The replica a node-level fault targets, or [-1] for link/cluster
    faults; used as the [node] of trace events. *)

val validate : n:int -> t -> (t, string) result
(** Checks entry invariants against a cluster of [n] replicas: ids in
    range, [0 <= rate/prob < 1], positive factors, [lo <= hi],
    [at >= 0], [until > at]. *)

val to_json : t -> Bamboo_util.Json.t

val entry_to_json : entry -> Bamboo_util.Json.t

val of_json : Bamboo_util.Json.t -> (t, string) result
(** Parses a JSON list of entries. Unknown [kind] tags and unknown keys
    within an entry are rejected (a typo'd key must not silently disable a
    fault). *)
