module Rng = Bamboo_util.Rng
module Json = Bamboo_util.Json
module Sim = Bamboo_sim.Sim
module Netmodel = Bamboo_sim.Netmodel
module Machine = Bamboo_sim.Machine
module Trace = Bamboo_obs.Trace

type t = {
  n : int;
  rng : Rng.t;
  sched : Schedule.t;
  down : bool array;
  clock : float list array; (* active clock-skew factors, per replica *)
  slow : float list array; (* active CPU-slowdown factors, per replica *)
}

let create ~n ~rng ~schedule =
  if n <= 0 then invalid_arg "Engine.create: n must be positive";
  {
    n;
    rng;
    sched = schedule;
    down = Array.make n false;
    clock = Array.make n [];
    slow = Array.make n [];
  }

let schedule t = t.sched

let node_down t i = t.down.(i)

(* Folding over an empty stack yields exactly 1.0, and the runtime's
   [*. 1.0] is a bit-exact identity, so unfaulted timers are unchanged. *)
let product l = List.fold_left ( *. ) 1.0 l

let clock_factor t i = product t.clock.(i)

let remove_one x l =
  let rec go = function
    | [] -> []
    | y :: tl -> if y = x then tl else y :: go tl
  in
  go l

let expand t = function
  | Schedule.All -> List.init t.n Fun.id
  | Schedule.Nodes ids -> List.filter (fun i -> i >= 0 && i < t.n) ids

(* Ordered (src, dst) pairs selected by a link fault; self-pairs dropped. *)
let pairs t ~src ~dst =
  let dsts = expand t dst in
  List.concat_map
    (fun s -> List.filter_map (fun d -> if s = d then None else Some (s, d)) dsts)
    (expand t src)

let effect_kind_of_spec = function
  | Schedule.Link_delay { mu; sigma; _ } ->
      Some (Netmodel.Extra_delay { mu; sigma })
  | Schedule.Link_spike { lo; hi; _ } -> Some (Netmodel.Spike { lo; hi })
  | Schedule.Link_loss { rate; _ } -> Some (Netmodel.Drop rate)
  | Schedule.Link_dup { prob; _ } -> Some (Netmodel.Duplicate prob)
  | Schedule.Link_reorder { prob; jitter; _ } ->
      Some (Netmodel.Reorder { prob; jitter })
  | Schedule.Partition _ | Schedule.Crash _ | Schedule.Cpu_slow _
  | Schedule.Clock_skew _ | Schedule.Fluctuation _ ->
      None

(* Begin/heal actions for one schedule entry. The entry's RNG stream is
   threaded into the network-level effect so its sampling never touches
   the model's base stream. *)
let compile t ~net ~machines ~on_recover (e : Schedule.entry) ~rng =
  match e.spec with
  | Schedule.Link_delay { src; dst; _ }
  | Schedule.Link_spike { src; dst; _ }
  | Schedule.Link_loss { src; dst; _ }
  | Schedule.Link_dup { src; dst; _ }
  | Schedule.Link_reorder { src; dst; _ } ->
      let kind = Option.get (effect_kind_of_spec e.spec) in
      (* One shared handle: a single fault source = a single RNG stream,
         even when it covers many links. *)
      let eff = Netmodel.effect ~rng kind in
      let links = pairs t ~src ~dst in
      ( (fun () ->
          List.iter (fun (src, dst) -> Netmodel.attach net ~src ~dst eff) links),
        fun () ->
          List.iter (fun (src, dst) -> Netmodel.detach net ~src ~dst eff) links
      )
  | Schedule.Partition { a; b } ->
      let b = if b = [] then List.filter (fun i -> not (List.mem i a)) (expand t All) else b in
      let cross =
        List.concat_map (fun x -> List.map (fun y -> (x, y)) b) a
      in
      ( (fun () ->
          List.iter
            (fun (x, y) ->
              Netmodel.block net ~src:x ~dst:y;
              Netmodel.block net ~src:y ~dst:x)
            cross),
        fun () ->
          List.iter
            (fun (x, y) ->
              Netmodel.unblock net ~src:x ~dst:y;
              Netmodel.unblock net ~src:y ~dst:x)
            cross )
  | Schedule.Crash { node } ->
      ( (fun () -> t.down.(node) <- true),
        fun () ->
          t.down.(node) <- false;
          on_recover node )
  | Schedule.Cpu_slow { node; factor } ->
      let apply () = Machine.set_speed machines.(node) (1.0 /. product t.slow.(node)) in
      ( (fun () ->
          t.slow.(node) <- factor :: t.slow.(node);
          apply ()),
        fun () ->
          t.slow.(node) <- remove_one factor t.slow.(node);
          apply () )
  | Schedule.Clock_skew { node; factor } ->
      ( (fun () -> t.clock.(node) <- factor :: t.clock.(node)),
        fun () -> t.clock.(node) <- remove_one factor t.clock.(node) )
  | Schedule.Fluctuation { lo; hi } ->
      let until_t = match e.until with Some u -> u | None -> infinity in
      ( (fun () ->
          Netmodel.set_fluctuation net ~from_t:e.at ~until_t ~lo ~hi),
        (* The window self-expires at [until_t]; the heal event only
           marks the timeline. *)
        fun () -> () )

let install t ~sim ~net ~machines ~trace ~on_recover =
  List.iter
    (fun (e : Schedule.entry) ->
      let rng = Rng.split t.rng in
      let begin_fault, heal_fault = compile t ~net ~machines ~on_recover e ~rng in
      let emit kind ~ts =
        Trace.emit trace ~ts ~node:(Schedule.node_of e.spec)
          ~args:
            [
              ("fault", Json.String (Schedule.spec_name e.spec));
              ("spec", Schedule.entry_to_json e);
            ]
          kind
      in
      Sim.schedule_at sim ~at:e.at (fun () ->
          emit Trace.Fault_inject ~ts:e.at;
          begin_fault ());
      match e.until with
      | None -> ()
      | Some u ->
          Sim.schedule_at sim ~at:u (fun () ->
              emit Trace.Fault_heal ~ts:u;
              heal_fault ()))
    t.sched
