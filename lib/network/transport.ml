module type S = sig
  type t

  val self : t -> int
  val n : t -> int
  val send : t -> dst:int -> Bamboo_types.Message.t -> unit
  val broadcast : t -> Bamboo_types.Message.t -> unit
  val recv : t -> timeout_s:float -> Bamboo_types.Message.t option
  val close : t -> unit
end

module type S_batched = sig
  include S

  val recv_batch : t -> timeout_s:float -> max:int -> Bamboo_types.Message.t list
end
