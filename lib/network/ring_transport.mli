(** Lock-free ring transport: the bchan-style message plane.

    Each endpoint's inbox is one bounded MPSC {!Bamboo_util.Ring}: all
    peers produce into it lock-free (an atomic slot claim + a publish
    store per message), and the owning replica thread is the single
    consumer. [recv_batch] drains a whole wakeup's worth of messages in
    one O(1)-per-element pass, which is what
    {!Threaded_runtime.Make_batched} runs on.

    Blocking uses a {!Wakeup.doorbell} per endpoint: senders touch it with
    one atomic load when the receiver is awake, and receive timeouts are
    bounded by the cluster's 1 ms ticker (same latency floor as
    {!Chan_transport}, same immediate wakeup on arrival/close).

    Backpressure: the inbox is bounded ([?capacity], default 4096,
    rounded to a power of two). A sender finding it full yields and
    retries a bounded number of times, then drops the message and counts
    it ([ring_transport_dropped_full]) — chained-BFT protocols treat
    message loss as silence, so overload degrades like a lossy link
    instead of growing an unbounded queue. *)

type cluster

type t

val create_cluster : ?capacity:int -> n:int -> unit -> cluster
(** Endpoints for replicas [0 .. n-1], each with a [capacity]-slot inbox
    ring; starts the cluster ticker thread (exits when all endpoints are
    closed). *)

val endpoint : cluster -> int -> t

val publish_metrics : cluster -> Bamboo_metrics.Registry.t -> unit
(** Publishes the cluster's observe-only tallies (per-endpoint send/drop
    counters, received message/batch counts, drained batch-size histogram,
    peak inbox depth) into [reg], once, after the cluster has stopped. The
    hot paths themselves only bump plain ints and atomics. *)

include Transport.S_batched with type t := t
