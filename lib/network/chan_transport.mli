(** In-process channel transport: every replica endpoint is a thread-safe
    queue, so a whole cluster runs inside one process with real OS threads.
    This is the analogue of Bamboo's Go-channel transport for
    "single-machine simulation" (paper §III-E).

    Latency floor: [recv] waits on the endpoint's condition variable, so a
    message arrival or a [close] wakes it immediately (no polling sleep on
    the hot path). Only the {e timeout} path is quantized: the stdlib's
    [Condition] has no timed wait, so a per-cluster ticker thread
    broadcasts every 1 ms and an idle [recv] observes its deadline within
    one tick. The ticker exits once all endpoints are closed. *)

type cluster

type t

val create_cluster : n:int -> cluster
(** Endpoints for replicas [0 .. n-1]. Also starts the cluster's ticker
    thread (see the latency-floor note above). *)

val endpoint : cluster -> int -> t

include Transport.S with type t := t
