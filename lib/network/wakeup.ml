(* Wall-clock reads and real sleeps implement receive timeouts for the
   threaded transports; determinism claims only cover the simulator path. *)
[@@@lint.allow "no-ambient-nondeterminism"]

type doorbell = {
  mutex : Mutex.t;
  cond : Condition.t;
  parked : bool Atomic.t;
}

let doorbell () =
  { mutex = Mutex.create (); cond = Condition.create (); parked = Atomic.make false }

let ring db =
  (* Producer fast path: one atomic load. The parked flag is set under the
     doorbell mutex before the consumer re-checks readiness, so with SC
     atomics either this load sees [parked] (and we broadcast under the
     mutex, after the consumer committed to waiting) or the consumer's
     readiness check sees our already-published data — never a lost
     wakeup. *)
  if Atomic.get db.parked then begin
    Mutex.lock db.mutex;
    Condition.broadcast db.cond;
    Mutex.unlock db.mutex
  end

let park db ~deadline ~ready =
  Mutex.lock db.mutex;
  Atomic.set db.parked true;
  let rec loop () =
    if ready () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Condition.wait db.cond db.mutex;
      loop ()
    end
  in
  let r = loop () in
  Atomic.set db.parked false;
  Mutex.unlock db.mutex;
  r

type ticker = Thread.t

let start_ticker ~period_s ~live ~wake =
  Thread.create
    (fun () ->
      while live () do
        Thread.delay period_s;
        wake ()
      done)
    ()
