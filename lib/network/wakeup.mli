(** Consumer wakeup for lock-free transports.

    The ring buffer ([Bamboo_util.Ring]) never blocks, so a receiver that
    finds it empty needs somewhere to sleep and producers need a cheap way
    to wake it. A {!doorbell} provides that: the consumer {!park}s on it,
    producers {!ring} it after publishing. The producer fast path is a
    single atomic load — the mutex is only touched when the consumer is
    actually parked, so an actively-draining consumer costs senders
    nothing.

    The stdlib's [Condition] has no timed wait, so bounded timeouts are
    implemented by a cluster-wide {!ticker} thread that rings every parked
    doorbell at a fixed period. Consequently a [park] deadline (and any
    transport [recv] timeout built on it) is honored within one tick
    (default 1 ms) — the same latency floor the old polling loop had, but
    paid only when idle and with immediate (sub-tick) wakeup on message
    arrival or close. *)

type doorbell

val doorbell : unit -> doorbell

val ring : doorbell -> unit
(** Wakes the parked consumer, if any. Call after the readiness change is
    already visible (e.g. after the ring-buffer publish): one atomic load
    when nobody is parked. Safe from any thread or domain. *)

val park : doorbell -> deadline:float -> ready:(unit -> bool) -> bool
(** [park db ~deadline ~ready] blocks the calling thread until [ready ()]
    is true (returns [true]) or [Unix.gettimeofday () >= deadline]
    (returns [false], within one ticker period when a {!ticker} covers
    this doorbell). [ready] is re-evaluated on every wakeup and must be
    cheap and lock-free. At most one thread may park a given doorbell at
    a time. *)

type ticker

val start_ticker : period_s:float -> live:(unit -> bool) -> wake:(unit -> unit) -> ticker
(** Background thread calling [wake ()] every [period_s] while [live ()]
    holds; exits (and is collected) the first time [live] is false. Used
    one-per-cluster to bound park deadlines and condvar waits. *)
