(** TCP socket transport: length-prefixed {!Bamboo_types.Codec} frames over
    persistent connections, one listener per replica. This is the
    "large-scale deployment" transport of the paper's network module,
    exercised on loopback by the integration tests and for real by the
    multi-process [bamboo cluster] harness.

    Built for fault survival rather than demos:

    - Senders never touch the network. Each peer has a bounded
      {!Bamboo_util.Ring} outbox drained by a dedicated writer thread;
      a full outbox drops the message and counts it
      ([tcp_transport_dropped_full]), like a saturated NIC.
    - Writers reconnect after failures with capped exponential backoff
      (50 ms doubling to 2 s) multiplied by deterministic jitter derived
      from [(self, dst, attempt)] — no PRNG, reconnect storms spread out
      identically across runs. Messages queued while a peer is down are
      delivered after it comes back.
    - Inbound frames land in a bounded inbox; {!recv} and {!recv_batch}
      park on a doorbell ({!Wakeup}) instead of polling.
    - {!close} is graceful: it joins the accept loop, every reader and
      every writer thread, unblocking them via [shutdown] on their fds.

    [create] ignores [SIGPIPE] process-wide so writer threads see
    [EPIPE] as an exception instead of dying. *)

type t

val create :
  ?outbox_capacity:int ->
  ?inbox_capacity:int ->
  self:int ->
  addresses:(int * Unix.sockaddr) list ->
  unit ->
  t
(** [create ~self ~addresses ()] binds the listener for [self] and starts
    one writer thread per peer; connections are dialed on first send and
    re-dialed with backoff after failures. [addresses] maps every replica
    id (including [self]) to its address. [outbox_capacity] bounds each
    per-peer send queue (default 4096); [inbox_capacity] bounds the
    shared receive queue (default 8192) — both are rounded up to powers
    of two. Raises [Unix.Unix_error] if the listen address is
    unavailable. *)

val loopback_addresses : n:int -> base_port:int -> (int * Unix.sockaddr) list
(** Convenience: [127.0.0.1:base_port+i] for each replica. *)

type stats = {
  sends : int;  (** Messages accepted into a peer outbox. *)
  dropped_full : int;  (** Messages dropped because an outbox was full. *)
  reconnects : int;
      (** Connections established after a disconnect or failed attempts. *)
  conn_failures : int;  (** Failed [connect] attempts. *)
  recv_msgs : int;  (** Messages drained by the consumer. *)
  recv_dropped : int;  (** Inbound messages dropped on a full inbox. *)
  peak_depth : int;  (** Highest observed inbox occupancy. *)
}

val stats : t -> stats
(** Snapshot of the endpoint's tallies. Producer-side counters are exact;
    consumer-side ones ([recv_msgs], [peak_depth]) are owned by the
    receiving thread and racy to read elsewhere. *)

val publish_metrics : t -> Bamboo_metrics.Registry.t -> unit
(** Copies {!stats} into [tcp_transport_*] registry metrics labelled with
    this endpoint's node id. *)

include Transport.S_batched with type t := t
