open Bamboo_types

(* Wall-clock reads here time out socket polls on a real deployment
   transport; determinism claims only cover the simulator path. *)
[@@@lint.allow "no-ambient-nondeterminism"]

type t = {
  self : int;
  addresses : (int * Unix.sockaddr) list;
  listener : Unix.file_descr;
  queue : Message.t Queue.t;
  mutex : Mutex.t;
  mutable peers : (int * out_channel) list; (* lazily opened send channels *)
  mutable closed : bool;
  mutable threads : Thread.t list;
}

let read_exact ic buf off len =
  let rec loop off len =
    if len > 0 then begin
      let k = input ic buf off len in
      if k = 0 then raise End_of_file;
      loop (off + k) (len - k)
    end
  in
  loop off len

let reader_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  try
    while not t.closed do
      let hdr = Bytes.create 4 in
      read_exact ic hdr 0 4;
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > 64 * 1024 * 1024 then raise End_of_file;
      let body = Bytes.create len in
      read_exact ic body 0 len;
      let msg = Codec.decode (Bytes.unsafe_to_string body) in
      Mutex.lock t.mutex;
      Queue.push msg t.queue;
      Mutex.unlock t.mutex
    done
  with End_of_file | Sys_error _ | Unix.Unix_error _ | Codec.Decode_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ())

let accept_loop t =
  try
    while not t.closed do
      let fd, _ = Unix.accept t.listener in
      let th = Thread.create (reader_loop t) fd in
      Mutex.lock t.mutex;
      t.threads <- th :: t.threads;
      Mutex.unlock t.mutex
    done
  with Unix.Unix_error _ -> ()

let create ~self ~addresses =
  let addr = List.assoc self addresses in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener addr;
  Unix.listen listener 64;
  let t =
    {
      self;
      addresses;
      listener;
      queue = Queue.create ();
      mutex = Mutex.create ();
      peers = [];
      closed = false;
      threads = [];
    }
  in
  let th = Thread.create accept_loop t in
  t.threads <- [ th ];
  t

let loopback_addresses ~n ~base_port =
  List.init n (fun i ->
      (i, Unix.ADDR_INET (Unix.inet_addr_loopback, base_port + i)))

let self t = t.self
let n t = List.length t.addresses

let peer_channel t dst =
  match List.assoc_opt dst t.peers with
  | Some oc -> Some oc
  | None -> (
      match List.assoc_opt dst t.addresses with
      | None -> None
      | Some addr -> (
          try
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect fd addr;
            let oc = Unix.out_channel_of_descr fd in
            t.peers <- (dst, oc) :: t.peers;
            Some oc
          with Unix.Unix_error _ -> None))

let send t ~dst msg =
  if dst = t.self then begin
    Mutex.lock t.mutex;
    Queue.push msg t.queue;
    Mutex.unlock t.mutex
  end
  else begin
    Mutex.lock t.mutex;
    (match peer_channel t dst with
    | None -> () (* unreachable peer: crash faults look like silence *)
    | Some oc -> (
        try
          let body = Codec.encode msg in
          let hdr = Bytes.create 4 in
          Bytes.set_int32_be hdr 0 (Int32.of_int (String.length body));
          output_bytes oc hdr;
          output_string oc body;
          flush oc
        with Sys_error _ | Unix.Unix_error _ ->
          t.peers <- List.remove_assoc dst t.peers));
    Mutex.unlock t.mutex
  end

let broadcast t msg =
  List.iter
    (fun (id, _) -> if id <> t.self then send t ~dst:id msg)
    t.addresses

let recv t ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    Mutex.lock t.mutex;
    let item =
      if t.closed then `Closed
      else if Queue.is_empty t.queue then `Empty
      else `Msg (Queue.pop t.queue)
    in
    Mutex.unlock t.mutex;
    match item with
    | `Closed -> None
    | `Msg m -> Some m
    | `Empty ->
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then None
        else begin
          Thread.delay (Float.min remaining 0.001);
          wait ()
        end
  in
  wait ()

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  List.iter (fun (_, oc) -> try close_out oc with Sys_error _ -> ()) t.peers;
  t.peers <- [];
  Mutex.unlock t.mutex;
  (try Unix.close t.listener with Unix.Unix_error _ -> ())
