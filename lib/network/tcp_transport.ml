open Bamboo_types

(* Wall-clock reads time out socket parks and pace reconnect backoff on a
   real deployment transport; determinism claims only cover the simulator
   path. *)
[@@@lint.allow "no-ambient-nondeterminism"]

module Ring = Bamboo_util.Ring
module Registry = Bamboo_metrics.Registry

let tick_period_s = 0.001
let default_outbox_capacity = 4096
let default_inbox_capacity = 8192
let inbox_retries = 64
let writer_drain_max = 256
let backoff_base_s = 0.05
let backoff_cap_s = 2.0
let backoff_max_exp = 8
let max_frame = 64 * 1024 * 1024

(* One outgoing connection per peer, owned by a dedicated writer thread.
   Senders never block on the network: they enqueue into the bounded
   [outbox] (counted drop-on-full, like a saturated NIC) and ring the
   writer's bell. *)
type peer = {
  dst : int;
  addr : Unix.sockaddr;
  outbox : Message.t Ring.t;
  bell : Wakeup.doorbell;
  mutable writer : Thread.t option;
}

type t = {
  self : int;
  addresses : (int * Unix.sockaddr) list;
  listener : Unix.file_descr;
  inbox : Message.t Ring.t;
  inbox_bell : Wakeup.doorbell;
  peers : peer option array; [@lint.allow "guarded-by"]
      (* indexed by replica id; [None] at [self]; layout fixed before the
         accept/writer/ticker threads start, never written afterwards *)
  closed : bool Atomic.t;
  reader_mutex : Mutex.t;
  mutable reader_fds : Unix.file_descr list; [@guarded_by "reader_mutex"]
  mutable readers : Thread.t list; [@guarded_by "reader_mutex"]
  mutable accepter : Thread.t option; [@lint.allow "guarded-by"]
      (* written once by [create] on the spawning thread, read by [close] *)
  (* Producer-side tallies: bumped from any thread. *)
  sends : int Atomic.t;
  dropped_full : int Atomic.t;
  reconnects : int Atomic.t;
  conn_failures : int Atomic.t;
  recv_dropped : int Atomic.t;
  (* Consumer-side tallies: owned by the single receiver thread. *)
  mutable recv_msgs : int; [@lint.allow "guarded-by"]
  mutable peak_depth : int; [@lint.allow "guarded-by"]
}

type stats = {
  sends : int;
  dropped_full : int;
  reconnects : int;
  conn_failures : int;
  recv_msgs : int;
  recv_dropped : int;
  peak_depth : int;
}

let shutting_down t = Atomic.get t.closed

(* --- inbound path: reader threads -> bounded inbox -> recv/recv_batch --- *)

let inbox_push t msg =
  let rec push tries =
    match Ring.push t.inbox msg with
    | Ring.Pushed -> Wakeup.ring t.inbox_bell
    | Ring.Closed -> () (* crash faults look like silence *)
    | Ring.Full ->
        if tries >= inbox_retries then Atomic.incr t.recv_dropped
        else begin
          (* Bounded backpressure: give the consumer a chance to drain,
             then drop — overload degrades like a lossy link. *)
          Thread.yield ();
          push (tries + 1)
        end
  in
  push 0

let read_exact fd buf off len =
  let rec loop off len =
    if len > 0 then begin
      let k = Unix.read fd buf off len in
      if k = 0 then raise End_of_file;
      loop (off + k) (len - k)
    end
  in
  loop off len

let reader_loop t fd =
  (try
     while not (shutting_down t) do
       let hdr = Bytes.create 4 in
       read_exact fd hdr 0 4;
       let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
       if len < 0 || len > max_frame then raise End_of_file;
       let body = Bytes.create len in
       read_exact fd body 0 len;
       inbox_push t (Codec.decode (Bytes.unsafe_to_string body))
     done
   with End_of_file | Sys_error _ | Unix.Unix_error _ | Codec.Decode_error _ ->
     ());
  Mutex.lock t.reader_mutex;
  t.reader_fds <- List.filter (fun d -> d != fd) t.reader_fds;
  Mutex.unlock t.reader_mutex;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  try
    while not (shutting_down t) do
      let fd, _ = Unix.accept t.listener in
      if shutting_down t then (
        try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        Mutex.lock t.reader_mutex;
        t.reader_fds <- fd :: t.reader_fds;
        t.readers <- Thread.create (reader_loop t) fd :: t.readers;
        Mutex.unlock t.reader_mutex
      end
    done
  with Unix.Unix_error _ | Sys_error _ -> ()

(* --- outbound path: per-peer writer thread with reconnect/backoff --- *)

let write_frame fd msg =
  let body = Codec.encode msg in
  let len = String.length body in
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string body 0 buf 4 len;
  let rec loop off remaining =
    if remaining > 0 then begin
      let k = Unix.write fd buf off remaining in
      loop (off + k) (remaining - k)
    end
  in
  loop 0 (4 + len)

(* Deterministic jitter in [0.75, 1.25): a fixed mix of (self, dst,
   attempt) spreads simultaneous reconnect storms without a PRNG, and
   replays identically across runs. *)
let jitter ~self ~dst ~attempt =
  let mix = ((((self * 31) + dst) * 31) + attempt) land 0xFF in
  0.75 +. (float_of_int mix /. 512.0)

let backoff_delay ~self ~dst ~attempt =
  let base = backoff_base_s *. (2.0 ** float_of_int (min attempt backoff_max_exp)) in
  Float.min backoff_cap_s base *. jitter ~self ~dst ~attempt

let writer_loop t peer =
  let fd = ref None in
  let attempt = ref 0 in
  let was_connected = ref false in
  let pending = ref [] in
  let close_fd () =
    match !fd with
    | None -> ()
    | Some d ->
        fd := None;
        (try Unix.shutdown d Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        (try Unix.close d with Unix.Unix_error _ -> ())
  in
  let give_up () = Atomic.get t.closed || Ring.is_closed peer.outbox in
  let backoff_sleep () =
    let delay = backoff_delay ~self:t.self ~dst:peer.dst ~attempt:!attempt in
    let deadline = Unix.gettimeofday () +. delay in
    ignore (Wakeup.park peer.bell ~deadline ~ready:give_up : bool)
  in
  let ensure_connected () =
    match !fd with
    | Some d -> Some d
    | None -> (
        let d = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        try
          Unix.connect d peer.addr;
          (try Unix.setsockopt d Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          fd := Some d;
          (* A connection established after a disconnect or after failed
             attempts is the observable "came back with backoff" signal. *)
          if !was_connected || !attempt > 0 then Atomic.incr t.reconnects;
          was_connected := true;
          attempt := 0;
          Some d
        with Unix.Unix_error _ | Sys_error _ ->
          (* Close the socket fd on the failed-connect path — it would
             otherwise leak one descriptor per attempt. *)
          (try Unix.close d with Unix.Unix_error _ -> ());
          Atomic.incr t.conn_failures;
          incr attempt;
          None)
  in
  let rec loop () =
    if !pending = [] then begin
      let acc = ref [] in
      ignore
        (Ring.drain peer.outbox ~max:writer_drain_max (fun m ->
             acc := m :: !acc)
          : int);
      pending := List.rev !acc
    end;
    match !pending with
    | [] ->
        if give_up () then close_fd ()
        else begin
          let deadline = Unix.gettimeofday () +. 0.05 in
          ignore
            (Wakeup.park peer.bell ~deadline ~ready:(fun () ->
                 give_up () || not (Ring.is_empty peer.outbox))
              : bool);
          loop ()
        end
    | msgs -> (
        match ensure_connected () with
        | None ->
            if give_up () then close_fd () (* unreachable at close: drop *)
            else begin
              backoff_sleep ();
              loop ()
            end
        | Some d ->
            let rec send_all = function
              | [] -> pending := []
              | m :: rest -> (
                  match write_frame d m with
                  | () -> send_all rest
                  | exception (Unix.Unix_error _ | Sys_error _) ->
                      (* Connection died mid-batch: keep the unsent suffix
                         and re-deliver it after reconnecting. *)
                      pending := m :: rest;
                      close_fd ();
                      incr attempt)
            in
            send_all msgs;
            loop ())
  in
  loop ()

(* --- lifecycle --- *)

let create ?(outbox_capacity = default_outbox_capacity)
    ?(inbox_capacity = default_inbox_capacity) ~self ~addresses () =
  (* Writers hit EPIPE (an exception we handle) instead of dying on the
     default SIGPIPE disposition when a peer's socket is torn down. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let addr = List.assoc self addresses in
  let n = List.length addresses in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener addr;
  Unix.listen listener 64;
  let peers = Array.make n None in
  List.iter
    (fun (id, addr) ->
      if id <> self then
        peers.(id) <-
          Some
            {
              dst = id;
              addr;
              outbox = Ring.create ~capacity:outbox_capacity ();
              bell = Wakeup.doorbell ();
              writer = None;
            })
    addresses;
  let t =
    {
      self;
      addresses;
      listener;
      inbox = Ring.create ~capacity:inbox_capacity ();
      inbox_bell = Wakeup.doorbell ();
      peers;
      closed = Atomic.make false;
      reader_mutex = Mutex.create ();
      reader_fds = [];
      readers = [];
      accepter = None;
      sends = Atomic.make 0;
      dropped_full = Atomic.make 0;
      reconnects = Atomic.make 0;
      conn_failures = Atomic.make 0;
      recv_dropped = Atomic.make 0;
      recv_msgs = 0;
      peak_depth = 0;
    }
  in
  t.accepter <- Some (Thread.create accept_loop t);
  Array.iter
    (function
      | None -> ()
      | Some peer -> peer.writer <- Some (Thread.create (writer_loop t) peer))
    peers;
  (* Bounded park deadlines: the stdlib Condition has no timed wait, so a
     per-endpoint ticker rings every bell each period (see Wakeup). *)
  ignore
    (Wakeup.start_ticker ~period_s:tick_period_s
       ~live:(fun () -> not (shutting_down t))
       ~wake:(fun () ->
         Wakeup.ring t.inbox_bell;
         Array.iter
           (function None -> () | Some p -> Wakeup.ring p.bell)
           t.peers)
      : Wakeup.ticker);
  t

let loopback_addresses ~n ~base_port =
  List.init n (fun i ->
      (i, Unix.ADDR_INET (Unix.inet_addr_loopback, base_port + i)))

let self t = t.self
let n t = List.length t.addresses

let send t ~dst msg =
  if dst < 0 || dst >= Array.length t.peers then
    invalid_arg "Tcp_transport.send: bad destination";
  if dst = t.self then inbox_push t msg
  else
    match t.peers.(dst) with
    | None -> ()
    | Some peer -> (
        match Ring.push peer.outbox msg with
        | Ring.Pushed ->
            Atomic.incr t.sends;
            Wakeup.ring peer.bell
        | Ring.Closed -> () (* closing endpoint: silence *)
        | Ring.Full ->
            (* Saturated NIC semantics: no blocking, no retry — count the
               drop so overload is observable. *)
            Atomic.incr t.dropped_full)

let broadcast t msg =
  List.iter (fun (id, _) -> if id <> t.self then send t ~dst:id msg) t.addresses

(* Drain up to [max] published messages; single consumer. *)
let take t ~max =
  let depth = Ring.length t.inbox in
  if depth > t.peak_depth then t.peak_depth <- depth;
  let acc = ref [] in
  let taken = Ring.drain t.inbox ~max (fun m -> acc := m :: !acc) in
  if taken > 0 then t.recv_msgs <- t.recv_msgs + taken;
  List.rev !acc

let recv_batch t ~timeout_s ~max =
  if Ring.is_closed t.inbox then []
  else
    match take t ~max with
    | _ :: _ as msgs -> msgs
    | [] ->
        let deadline = Unix.gettimeofday () +. timeout_s in
        let ready () =
          Ring.is_closed t.inbox || not (Ring.is_empty t.inbox)
        in
        if Wakeup.park t.inbox_bell ~deadline ~ready
           && not (Ring.is_closed t.inbox)
        then take t ~max
        else []

let recv t ~timeout_s =
  match recv_batch t ~timeout_s ~max:1 with m :: _ -> Some m | [] -> None

let close t =
  if Atomic.compare_and_set t.closed false true then begin
    (* Unblock the accepter: shutdown works on Linux listening sockets; a
       self-connect covers platforms where it does not. *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try
       let d = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect d (List.assoc t.self t.addresses)
        with Unix.Unix_error _ | Not_found -> ());
       Unix.close d
     with Unix.Unix_error _ -> ());
    (match t.accepter with None -> () | Some th -> Thread.join th);
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (* Writers: close their outboxes, ring them out of any park (idle or
       backoff), and join. *)
    Array.iter
      (function
        | None -> ()
        | Some peer ->
            ignore (Ring.close peer.outbox : bool);
            Wakeup.ring peer.bell)
      t.peers;
    Array.iter
      (function
        | None -> ()
        | Some peer -> (
            match peer.writer with None -> () | Some th -> Thread.join th))
      t.peers;
    (* Readers: shutdown unblocks a thread stuck in [read]; then join. *)
    Mutex.lock t.reader_mutex;
    let fds = t.reader_fds in
    Mutex.unlock t.reader_mutex;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      fds;
    let readers =
      Mutex.lock t.reader_mutex;
      let r = t.readers in
      t.readers <- [];
      Mutex.unlock t.reader_mutex;
      r
    in
    List.iter Thread.join readers;
    ignore (Ring.close t.inbox : bool);
    Wakeup.ring t.inbox_bell
  end

let stats (t : t) =
  {
    sends = Atomic.get t.sends;
    dropped_full = Atomic.get t.dropped_full;
    reconnects = Atomic.get t.reconnects;
    conn_failures = Atomic.get t.conn_failures;
    recv_msgs = t.recv_msgs;
    recv_dropped = Atomic.get t.recv_dropped;
    peak_depth = t.peak_depth;
  }

let publish_metrics t reg =
  if Registry.enabled reg then begin
    let labels = [ ("node", string_of_int t.self) ] in
    let s = stats t in
    Registry.Counter.add
      (Registry.counter reg ~labels "tcp_transport_sends")
      s.sends;
    Registry.Counter.add
      (Registry.counter reg ~labels "tcp_transport_dropped_full")
      s.dropped_full;
    Registry.Counter.add
      (Registry.counter reg ~labels "tcp_transport_reconnects")
      s.reconnects;
    Registry.Counter.add
      (Registry.counter reg ~labels "tcp_transport_conn_failures")
      s.conn_failures;
    Registry.Counter.add
      (Registry.counter reg ~labels "tcp_transport_recv_msgs")
      s.recv_msgs;
    Registry.Counter.add
      (Registry.counter reg ~labels "tcp_transport_recv_dropped")
      s.recv_dropped;
    Registry.Gauge.set
      (Registry.gauge reg ~labels "tcp_transport_peak_depth")
      (float_of_int s.peak_depth)
  end
