type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

type response = { status : int; body : string }

type server = {
  listener : Unix.file_descr;
  port_ : int;
  closed : bool Atomic.t; (* written by [stop], read by the accept thread *)
}

let reason_phrase = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let read_line_crlf ic =
  (* input_line strips '\n'; trim a trailing '\r'. *)
  let line = input_line ic in
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let read_headers ic =
  let rec loop acc =
    let line = read_line_crlf ic in
    if line = "" then List.rev acc
    else
      match String.index_opt line ':' with
      | None -> loop acc (* tolerate malformed header lines *)
      | Some i ->
          let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
          let value =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          loop ((name, value) :: acc)
  in
  loop []

let read_exact ic n =
  let buf = Bytes.create n in
  really_input ic buf 0 n;
  Bytes.unsafe_to_string buf

let parse_request ic =
  let request_line = read_line_crlf ic in
  match String.split_on_char ' ' request_line with
  | meth :: path :: _ ->
      let headers = read_headers ic in
      let body =
        match List.assoc_opt "content-length" headers with
        | Some v -> (
            match int_of_string_opt (String.trim v) with
            | Some n when n >= 0 && n <= 64 * 1024 * 1024 -> read_exact ic n
            | Some _ | None -> "")
        | None -> ""
      in
      Some { meth = String.uppercase_ascii meth; path; headers; body }
  | _ -> None

let write_response oc { status; body } =
  Printf.fprintf oc
    "HTTP/1.1 %d %s\r\nContent-Length: %d\r\nContent-Type: \
     application/json\r\nConnection: close\r\n\r\n%s"
    status (reason_phrase status) (String.length body) body;
  flush oc

let serve_connection handler fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     match parse_request ic with
     | Some req ->
         let resp =
           try handler req
           with e -> { status = 500; body = Printexc.to_string e }
         in
         write_response oc resp
     | None -> write_response oc { status = 400; body = "malformed request" }
   with End_of_file | Sys_error _ | Sys_blocked_io | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let start ~port ~handler =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listener 64;
  let actual_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let server = { listener; port_ = actual_port; closed = Atomic.make false } in
  let accept_loop () =
    try
      while not (Atomic.get server.closed) do
        let fd, _ = Unix.accept listener in
        ignore (Thread.create (serve_connection handler) fd)
      done
    with Unix.Unix_error _ -> ()
  in
  ignore (Thread.create accept_loop ());
  server

let port s = s.port_

let stop s =
  Atomic.set s.closed true;
  try Unix.close s.listener with Unix.Unix_error _ -> ()

let request ?(body = "") ?(timeout_s = 5.0) ~host ~port ~meth ~path () =
  match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> Error "host not found"
  | { Unix.ai_addr; _ } :: _ -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
        Unix.connect fd ai_addr;
        let oc = Unix.out_channel_of_descr fd in
        let ic = Unix.in_channel_of_descr fd in
        Printf.fprintf oc
          "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Length: %d\r\nConnection: \
           close\r\n\r\n%s"
          (String.uppercase_ascii meth)
          path host (String.length body) body;
        flush oc;
        let status_line = read_line_crlf ic in
        let status =
          match String.split_on_char ' ' status_line with
          | _ :: code :: _ -> int_of_string_opt code
          | _ -> None
        in
        match status with
        | None ->
            Unix.close fd;
            Error "malformed status line"
        | Some status ->
            let headers = read_headers ic in
            let body =
              match List.assoc_opt "content-length" headers with
              | Some v -> (
                  match int_of_string_opt (String.trim v) with
                  | Some n when n >= 0 -> read_exact ic n
                  | Some _ | None -> "")
              | None -> ""
            in
            Unix.close fd;
            Ok { status; body }
      with
      | Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Unix.error_message e)
      | End_of_file | Sys_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error "connection closed early"
      | Sys_blocked_io ->
          (* The buffered-channel layer surfaces an SO_RCVTIMEO/SO_SNDTIMEO
             socket timeout as [Sys_blocked_io], not [Unix_error EAGAIN]. *)
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error "request timed out")
