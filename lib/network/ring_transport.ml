(* Wall-clock reads implement receive timeouts on a real threaded
   transport; determinism claims only cover the simulator path. *)
[@@@lint.allow "no-ambient-nondeterminism"]

module Ring = Bamboo_util.Ring
module Registry = Bamboo_metrics.Registry

let tick_period_s = 0.001
let default_capacity = 4096
let send_retries = 64
let hist_buckets = 12 (* log2 buckets: batch sizes 1 .. 2048+ *)

type endpoint_state = {
  id : int;
  inbox : Bamboo_types.Message.t Ring.t;
  bell : Wakeup.doorbell;
  (* Producer-side tallies: bumped from any sender thread. *)
  sends : int Atomic.t;
  drops : int Atomic.t;
  (* Consumer-side tallies: owned by the single receiver thread. *)
  mutable recv_msgs : int;
  mutable recv_batches : int;
  mutable peak_depth : int;
  batch_hist : int array; (* drained batch size, log2-bucketed *)
}

type cluster = {
  endpoints : endpoint_state array; [@lint.allow "domain-escape"]
      (* layout fixed at construction; per-endpoint state is consumer-owned
         or atomic (see the field comments above) *)
  live : int Atomic.t;
}

type t = { state : endpoint_state; cluster : cluster }

let create_cluster ?(capacity = default_capacity) ~n () =
  if n <= 0 then invalid_arg "Ring_transport.create_cluster: n must be positive";
  let cluster =
    {
      endpoints =
        Array.init n (fun id ->
            {
              id;
              inbox = Ring.create ~capacity ();
              bell = Wakeup.doorbell ();
              sends = Atomic.make 0;
              drops = Atomic.make 0;
              recv_msgs = 0;
              recv_batches = 0;
              peak_depth = 0;
              batch_hist = Array.make hist_buckets 0;
            });
      live = Atomic.make n;
    }
  in
  (* Bounded receive timeouts: the ticker rings every parked doorbell each
     period (see Wakeup); it exits once every endpoint is closed. *)
  ignore
    (Wakeup.start_ticker ~period_s:tick_period_s
       ~live:(fun () -> Atomic.get cluster.live > 0)
       ~wake:(fun () ->
         Array.iter (fun ep -> Wakeup.ring ep.bell) cluster.endpoints)
      : Wakeup.ticker);
  cluster

let endpoint cluster id =
  if id < 0 || id >= Array.length cluster.endpoints then
    invalid_arg "Ring_transport.endpoint: id out of range";
  { state = cluster.endpoints.(id); cluster }

let self t = t.state.id
let n t = Array.length t.cluster.endpoints

let send t ~dst msg =
  if dst < 0 || dst >= n t then invalid_arg "Ring_transport.send: bad destination";
  let ep = t.cluster.endpoints.(dst) in
  let rec push tries =
    match Ring.push ep.inbox msg with
    | Ring.Pushed ->
        Atomic.incr ep.sends;
        Wakeup.ring ep.bell
    | Ring.Closed -> () (* crash faults look like silence *)
    | Ring.Full ->
        if tries >= send_retries then Atomic.incr ep.drops
        else begin
          (* Bounded backpressure: give the consumer a chance to drain,
             then drop — overload degrades like a lossy link. *)
          Thread.yield ();
          push (tries + 1)
        end
  in
  push 0

let broadcast t msg =
  Array.iter
    (fun ep -> if ep.id <> t.state.id then send t ~dst:ep.id msg)
    t.cluster.endpoints

let log2_bucket k =
  let rec go b k = if k <= 1 || b = hist_buckets - 1 then b else go (b + 1) (k lsr 1) in
  go 0 k

(* Drain up to [max] published messages; single consumer. *)
let take ep ~max =
  let depth = Ring.length ep.inbox in
  if depth > ep.peak_depth then ep.peak_depth <- depth;
  let acc = ref [] in
  let taken = Ring.drain ep.inbox ~max (fun m -> acc := m :: !acc) in
  if taken > 0 then begin
    ep.recv_msgs <- ep.recv_msgs + taken;
    ep.recv_batches <- ep.recv_batches + 1;
    let b = log2_bucket taken in
    ep.batch_hist.(b) <- ep.batch_hist.(b) + 1
  end;
  List.rev !acc

let recv_batch t ~timeout_s ~max =
  let ep = t.state in
  if Ring.is_closed ep.inbox then []
  else
    match take ep ~max with
    | _ :: _ as msgs -> msgs
    | [] ->
        let deadline = Unix.gettimeofday () +. timeout_s in
        let ready () =
          Ring.is_closed ep.inbox || not (Ring.is_empty ep.inbox)
        in
        if Wakeup.park ep.bell ~deadline ~ready && not (Ring.is_closed ep.inbox)
        then take ep ~max
        else []

let recv t ~timeout_s =
  match recv_batch t ~timeout_s ~max:1 with m :: _ -> Some m | [] -> None

let close t =
  let ep = t.state in
  if Ring.close ep.inbox then begin
    Wakeup.ring ep.bell;
    Atomic.decr t.cluster.live
  end

let publish_metrics cluster reg =
  if Registry.enabled reg then
    Array.iter
      (fun ep ->
        let labels = [ ("node", string_of_int ep.id) ] in
        Registry.Counter.add
          (Registry.counter reg ~labels "ring_transport_sends")
          (Atomic.get ep.sends);
        Registry.Counter.add
          (Registry.counter reg ~labels "ring_transport_dropped_full")
          (Atomic.get ep.drops);
        Registry.Counter.add
          (Registry.counter reg ~labels "ring_transport_recv_msgs")
          ep.recv_msgs;
        Registry.Counter.add
          (Registry.counter reg ~labels "ring_transport_recv_batches")
          ep.recv_batches;
        Registry.Gauge.set
          (Registry.gauge reg ~labels "ring_transport_peak_depth")
          (float_of_int ep.peak_depth);
        let h = Registry.histogram reg ~labels "ring_transport_recv_batch_size" in
        Array.iteri
          (fun b count ->
            for _ = 1 to count do
              Registry.Histogram.observe h (1 lsl b)
            done)
          ep.batch_hist)
      cluster.endpoints
