(** Transport abstraction for the non-simulated runtimes.

    Mirrors Bamboo's network module (adopted from Paxi): a simple
    message-passing model whose backends are an in-process channel transport
    (single-machine deployment, {!Chan_transport}), the lock-free ring
    transport ({!Ring_transport}) and TCP sockets ({!Tcp_transport}). The
    simulator does not go through this signature — it models NIC/link
    queues explicitly. *)

module type S = sig
  type t

  val self : t -> int
  (** This endpoint's replica id. *)

  val n : t -> int
  (** Cluster size. *)

  val send : t -> dst:int -> Bamboo_types.Message.t -> unit
  (** Best-effort asynchronous send; messages to closed endpoints are
      dropped silently (crash faults look like silence). *)

  val broadcast : t -> Bamboo_types.Message.t -> unit
  (** Sends to every replica except [self]. *)

  val recv : t -> timeout_s:float -> Bamboo_types.Message.t option
  (** Blocking receive with timeout; [None] on timeout or when the
      endpoint is closed. *)

  val close : t -> unit
end

module type S_batched = sig
  include S

  val recv_batch : t -> timeout_s:float -> max:int -> Bamboo_types.Message.t list
  (** [recv_batch t ~timeout_s ~max] blocks like {!recv} until at least
      one message is available (or timeout/close: [[]]), then returns up
      to [max] already-queued messages in receive order in one pass —
      consumers drain a whole wakeup's worth of traffic per call instead
      of paying one synchronization round per message. *)
end
