(* Wall-clock reads implement receive timeouts on a real threaded
   transport; determinism claims only cover the simulator path. *)
[@@@lint.allow "no-ambient-nondeterminism"]

let tick_period_s = 0.001

type endpoint_state = {
  id : int;
  queue : Bamboo_types.Message.t Queue.t; [@guarded_by "mutex"]
  mutex : Mutex.t;
  cond : Condition.t;
  mutable closed : bool; [@guarded_by "mutex"]
}

type cluster = {
  endpoints : endpoint_state array; [@lint.allow "domain-escape"]
      (* layout fixed at construction; element state has its own mutex *)
  live : int Atomic.t;
}

type t = { state : endpoint_state; cluster : cluster }

let create_cluster ~n =
  if n <= 0 then invalid_arg "Chan_transport.create_cluster: n must be positive";
  let cluster =
    {
      endpoints =
        Array.init n (fun id ->
            {
              id;
              queue = Queue.create ();
              mutex = Mutex.create ();
              cond = Condition.create ();
              closed = false;
            });
      live = Atomic.make n;
    }
  in
  (* The stdlib's [Condition] has no timed wait, so receive timeouts are
     bounded by a cluster ticker that broadcasts every endpoint's condvar
     each period; it exits once every endpoint is closed. *)
  ignore
    (Wakeup.start_ticker ~period_s:tick_period_s
       ~live:(fun () -> Atomic.get cluster.live > 0)
       ~wake:(fun () ->
         Array.iter
           (fun ep ->
             Mutex.lock ep.mutex;
             Condition.broadcast ep.cond;
             Mutex.unlock ep.mutex)
           cluster.endpoints)
      : Wakeup.ticker);
  cluster

let endpoint cluster id =
  if id < 0 || id >= Array.length cluster.endpoints then
    invalid_arg "Chan_transport.endpoint: id out of range";
  { state = cluster.endpoints.(id); cluster }

let self t = t.state.id
let n t = Array.length t.cluster.endpoints

let send t ~dst msg =
  if dst < 0 || dst >= n t then invalid_arg "Chan_transport.send: bad destination";
  let ep = t.cluster.endpoints.(dst) in
  Mutex.lock ep.mutex;
  if not ep.closed then begin
    Queue.push msg ep.queue;
    Condition.signal ep.cond
  end;
  Mutex.unlock ep.mutex

let broadcast t msg =
  Array.iter
    (fun ep -> if ep.id <> t.state.id then send t ~dst:ep.id msg)
    t.cluster.endpoints

let recv t ~timeout_s =
  let ep = t.state in
  let deadline = Unix.gettimeofday () +. timeout_s in
  Mutex.lock ep.mutex;
  let rec wait () =
    if ep.closed then None
    else if not (Queue.is_empty ep.queue) then Some (Queue.pop ep.queue)
    else if Unix.gettimeofday () >= deadline then None
    else begin
      (* Pushes and close signal this condvar directly (sub-tick wakeup);
         the cluster ticker broadcasts every [tick_period_s] so the
         deadline is honored even with no traffic. *)
      Condition.wait ep.cond ep.mutex;
      wait ()
    end
  in
  let result = wait () in
  Mutex.unlock ep.mutex;
  result

let close t =
  let ep = t.state in
  Mutex.lock ep.mutex;
  let was_closed = ep.closed in
  ep.closed <- true;
  Condition.broadcast ep.cond;
  Mutex.unlock ep.mutex;
  if not was_closed then Atomic.decr t.cluster.live
