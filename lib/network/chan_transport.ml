(* Wall-clock reads implement receive timeouts on a real threaded
   transport; determinism claims only cover the simulator path. *)
[@@@lint.allow "no-ambient-nondeterminism"]

type endpoint_state = {
  id : int;
  queue : Bamboo_types.Message.t Queue.t;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable closed : bool;
}

type cluster = { endpoints : endpoint_state array }

type t = { state : endpoint_state; cluster : cluster }

let create_cluster ~n =
  if n <= 0 then invalid_arg "Chan_transport.create_cluster: n must be positive";
  {
    endpoints =
      Array.init n (fun id ->
          {
            id;
            queue = Queue.create ();
            mutex = Mutex.create ();
            cond = Condition.create ();
            closed = false;
          });
  }

let endpoint cluster id =
  if id < 0 || id >= Array.length cluster.endpoints then
    invalid_arg "Chan_transport.endpoint: id out of range";
  { state = cluster.endpoints.(id); cluster }

let self t = t.state.id
let n t = Array.length t.cluster.endpoints

let send t ~dst msg =
  if dst < 0 || dst >= n t then invalid_arg "Chan_transport.send: bad destination";
  let ep = t.cluster.endpoints.(dst) in
  Mutex.lock ep.mutex;
  if not ep.closed then begin
    Queue.push msg ep.queue;
    Condition.signal ep.cond
  end;
  Mutex.unlock ep.mutex

let broadcast t msg =
  Array.iter
    (fun ep -> if ep.id <> t.state.id then send t ~dst:ep.id msg)
    t.cluster.endpoints

let recv t ~timeout_s =
  let ep = t.state in
  let deadline = Unix.gettimeofday () +. timeout_s in
  Mutex.lock ep.mutex;
  let rec wait () =
    if ep.closed then None
    else if not (Queue.is_empty ep.queue) then Some (Queue.pop ep.queue)
    else begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then None
      else begin
        (* Condition variables lack timed wait in the stdlib; poll at a
           granularity fine enough for protocol timers. *)
        Mutex.unlock ep.mutex;
        Thread.delay (Float.min remaining 0.001);
        Mutex.lock ep.mutex;
        wait ()
      end
    end
  in
  let result = wait () in
  Mutex.unlock ep.mutex;
  result

let close t =
  let ep = t.state in
  Mutex.lock ep.mutex;
  ep.closed <- true;
  Condition.broadcast ep.cond;
  Mutex.unlock ep.mutex
