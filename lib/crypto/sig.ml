type registry = {
  keys : string array;
  n_signs : int Atomic.t;
  n_verifies : int Atomic.t;
}

type t = { signer : int; tag : string }

let wire_size = 64

let setup ~n ~master =
  if n <= 0 then invalid_arg "Sig.setup: n must be positive";
  let derive i = Hmac.mac ~key:master (Printf.sprintf "bamboo-replica-key-%d" i) in
  { keys = Array.init n derive; n_signs = Atomic.make 0; n_verifies = Atomic.make 0 }

let size reg = Array.length reg.keys

let sign reg ~signer msg =
  if signer < 0 || signer >= Array.length reg.keys then
    invalid_arg "Sig.sign: signer out of range";
  Atomic.incr reg.n_signs;
  { signer; tag = Hmac.mac ~key:reg.keys.(signer) msg }

let verify reg s msg =
  if s.signer < 0 || s.signer >= Array.length reg.keys then false
  else begin
    Atomic.incr reg.n_verifies;
    Hmac.verify ~key:reg.keys.(s.signer) ~tag:s.tag msg
  end

let signs reg = Atomic.get reg.n_signs
let verifies reg = Atomic.get reg.n_verifies
