type registry = {
  keys : string array;
  mutable n_signs : int;
  mutable n_verifies : int;
}

type t = { signer : int; tag : string }

let wire_size = 64

let setup ~n ~master =
  if n <= 0 then invalid_arg "Sig.setup: n must be positive";
  let derive i = Hmac.mac ~key:master (Printf.sprintf "bamboo-replica-key-%d" i) in
  { keys = Array.init n derive; n_signs = 0; n_verifies = 0 }

let size reg = Array.length reg.keys

let sign reg ~signer msg =
  if signer < 0 || signer >= Array.length reg.keys then
    invalid_arg "Sig.sign: signer out of range";
  reg.n_signs <- reg.n_signs + 1;
  { signer; tag = Hmac.mac ~key:reg.keys.(signer) msg }

let verify reg s msg =
  if s.signer < 0 || s.signer >= Array.length reg.keys then false
  else begin
    reg.n_verifies <- reg.n_verifies + 1;
    Hmac.verify ~key:reg.keys.(s.signer) ~tag:s.tag msg
  end

let signs reg = reg.n_signs
let verifies reg = reg.n_verifies
