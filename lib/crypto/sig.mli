(** Authentication for protocol messages.

    The paper's Bamboo uses secp256k1 signatures. This reproduction
    substitutes an HMAC-based scheme (documented in DESIGN.md): each replica
    holds a secret key derived from a shared master seed; a signature is the
    HMAC-SHA256 tag of the message under the signer's key, and verification
    recomputes it from the registry. Signing/verification CPU cost and the
    64-byte wire size of a secp256k1 signature are charged explicitly by the
    simulator's cost model, so performance behaviour is preserved.

    This scheme authenticates honest traffic and detects corruption, but it
    is not unforgeable against a Byzantine signer that leaks its key; the
    attacks studied in the paper (forking, silence) never forge messages, so
    this does not affect any experiment. *)

type registry
(** Public registry of per-replica keys for a cluster of [n] replicas. *)

type t = { signer : int; tag : string }
(** A signature: the signing replica id and its 32-byte tag. *)

val wire_size : int
(** Bytes a signature occupies on the wire (64, matching secp256k1). *)

val setup : n:int -> master:string -> registry
(** [setup ~n ~master] derives [n] replica keys from [master]. All replicas
    are given the same registry out of band. *)

val size : registry -> int
(** Number of replicas in the registry. *)

val sign : registry -> signer:int -> string -> t
(** [sign reg ~signer msg] signs [msg]. Raises [Invalid_argument] if
    [signer] is out of range. *)

val verify : registry -> t -> string -> bool
(** [verify reg s msg] checks that [s.tag] is valid for [msg] under
    [s.signer]'s key. False (not an exception) for out-of-range signers. *)

val signs : registry -> int
(** HMAC computations performed by {!sign} on this registry. The registry
    is a per-run value, so the tally is per run. The counters are atomic,
    so the registry may be shared across threads and Pool worker domains
    (threaded runtime, parallel verification) without losing counts. *)

val verifies : registry -> int
(** HMAC recomputations performed by {!verify} on this registry
    (out-of-range signers return false without computing and are not
    counted). *)
