(* The [bamboo cluster] command group: [run] orchestrates an n-process
   TCP deployment with chaos, [node] is the (internal) child entry
   point. Kept in the library so the single [bamboo] binary can act as
   both parent and child — the parent re-executes its own binary with
   [cluster node] arguments. *)

module Config = Bamboo.Config
module Schedule = Bamboo_faults.Schedule
module Monitor = Bamboo_check.Monitor
module Json = Bamboo_util.Json
open Cmdliner

let read_file path =
  match open_in_bin path with
  | exception Sys_error e ->
      prerr_endline e;
      exit 2
  | ic ->
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      close_in ic;
      raw

let parse_json ~path raw =
  match Json.of_string raw with
  | j -> j
  | exception Json.Parse_error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 2

(* --- cluster node (internal child entry point) --- *)

let node_run self config_path base_port client_port epoch trace summary =
  let config =
    match Config.of_json (parse_json ~path:config_path (read_file config_path))
    with
    | Ok c -> c
    | Error e ->
        Printf.eprintf "%s: %s\n" config_path e;
        exit 2
  in
  Harness.run_node ~config ~self ~base_port ~client_port ~epoch
    ~trace_path:trace ~summary_path:summary

let node_cmd =
  let self =
    Arg.(
      required
      & opt (some int) None
      & info [ "self" ] ~docv:"ID" ~doc:"Replica id of this process.")
  in
  let config =
    Arg.(
      required
      & opt (some string) None
      & info [ "config" ] ~docv:"FILE" ~doc:"Configuration JSON.")
  in
  let base_port =
    Arg.(
      value
      & opt int Harness.default_base_port
      & info [ "base-port" ] ~docv:"PORT"
          ~doc:"Consensus TCP port of replica 0; replica $(i,i) uses PORT+i.")
  in
  let client_port =
    Arg.(
      required
      & opt (some int) None
      & info [ "client-port" ] ~docv:"PORT" ~doc:"HTTP ingest port.")
  in
  let epoch =
    Arg.(
      required
      & opt (some float) None
      & info [ "epoch" ] ~docv:"UNIX_TS"
          ~doc:"Shared trace epoch (Unix seconds).")
  in
  let trace =
    Arg.(
      required
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"JSONL trace output path.")
  in
  let summary =
    Arg.(
      required
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE" ~doc:"JSON summary output path.")
  in
  Cmd.v
    (Cmd.info "node"
       ~doc:
         "(internal) Run one replica process; spawned by $(b,bamboo cluster \
          run).")
    Term.(
      const node_run $ self $ config $ base_port $ client_port $ epoch $ trace
      $ summary)

(* --- cluster run (parent orchestrator) --- *)

let cluster_run n protocol bsize memsize timeout duration rate base_port
    client_port_base faults_path outdir seed health_timeout =
  let protocol =
    match Config.protocol_of_name protocol with
    | Ok p -> p
    | Error e ->
        prerr_endline e;
        exit 2
  in
  let faults =
    match faults_path with
    | None -> Schedule.empty
    | Some path -> (
        match Schedule.of_json (parse_json ~path (read_file path)) with
        | Ok s -> s
        | Error e ->
            Printf.eprintf "%s: %s\n" path e;
            exit 2)
  in
  let config =
    {
      Config.default with
      protocol;
      n;
      bsize;
      memsize;
      timeout = timeout /. 1000.0;
      seed;
      runtime = duration;
    }
  in
  let config =
    match Config.validate config with
    | Ok c -> c
    | Error e ->
        prerr_endline e;
        exit 2
  in
  let client_port_base =
    match client_port_base with
    | Some p -> p
    | None -> base_port + Harness.client_port_offset
  in
  let log msg = Printf.printf "cluster: %s\n%!" msg in
  match
    Harness.run_cluster ~config ~faults ~duration ~rate ~base_port
      ~client_port_base ~outdir ~health_timeout_s:health_timeout ~log
  with
  | Error e ->
      prerr_endline e;
      exit 2
  | Ok o ->
      Printf.printf
        "cluster: %d commits, %d txs committed, swarm %d sent / %d accepted \
         / %d shed / %d failed\n"
        o.Harness.o_commits o.Harness.o_committed_txs o.Harness.o_swarm_sent
        o.Harness.o_swarm_accepted o.Harness.o_swarm_shed
        o.Harness.o_swarm_failed;
      if o.Harness.o_kills > 0 then
        Printf.printf
          "cluster: %d kills, %d restarts, %d transport reconnects, \
           catchup_ok=%b\n"
          o.Harness.o_kills o.Harness.o_restarts o.Harness.o_reconnects
          o.Harness.o_catchup_ok;
      if o.Harness.o_skipped_lines > 0 then
        Printf.printf "cluster: skipped %d torn/unparseable trace lines\n"
          o.Harness.o_skipped_lines;
      List.iter
        (fun (v : Monitor.violation) ->
          Printf.printf "  FAIL %s: %s\n"
            (Monitor.invariant_name v.Monitor.invariant)
            v.Monitor.detail)
        o.Harness.o_report.Monitor.violations;
      Printf.printf "cluster: summary %s\ncluster: merged trace %s\n%!"
        o.Harness.o_summary_path o.Harness.o_merged_path;
      if Harness.outcome_pass o then print_endline "cluster: PASS"
      else begin
        print_endline "cluster: FAIL";
        exit 1
      end

let run_cmd =
  let n =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let protocol =
    Arg.(
      value
      & opt string "hotstuff"
      & info [ "protocol" ] ~docv:"NAME"
          ~doc:"hotstuff|twochain|streamlet|fasthotstuff.")
  in
  let bsize =
    Arg.(
      value & opt int 100
      & info [ "bsize" ] ~docv:"TXS" ~doc:"Transactions per block.")
  in
  let memsize =
    Arg.(
      value & opt int 20000
      & info [ "memsize" ] ~docv:"TXS"
          ~doc:"Mempool capacity (admission control sheds above this).")
  in
  let timeout =
    Arg.(
      value & opt float 200.0
      & info [ "timeout" ] ~docv:"MS" ~doc:"View timeout, milliseconds.")
  in
  let duration =
    Arg.(
      value & opt float 20.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Wall-clock run length.")
  in
  let rate =
    Arg.(
      value & opt float 500.0
      & info [ "rate" ] ~docv:"TX/S"
          ~doc:"Aggregate open-loop client rate across all nodes.")
  in
  let base_port =
    Arg.(
      value
      & opt int Harness.default_base_port
      & info [ "base-port" ] ~docv:"PORT"
          ~doc:"Consensus TCP port of replica 0; replica $(i,i) uses PORT+i.")
  in
  let client_port_base =
    Arg.(
      value
      & opt (some int) None
      & info [ "client-port-base" ] ~docv:"PORT"
          ~doc:
            "HTTP ingest port of replica 0 (default: base-port + 1000); \
             replica $(i,i) uses PORT+i.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"FILE"
          ~doc:
            "Fault schedule JSON (crash entries only): $(b,at) kills the \
             node's process with SIGKILL, $(b,until) restarts it.")
  in
  let outdir =
    Arg.(
      value
      & opt string "cluster-out"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Output directory: traces, logs, summaries, merged trace.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Client seed.")
  in
  let health_timeout =
    Arg.(
      value & opt float 15.0
      & info [ "health-timeout" ] ~docv:"SECONDS"
          ~doc:"Startup health-check deadline.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Deploy an n-process TCP cluster on loopback, drive it with an \
          open-loop client swarm, execute a process-level fault schedule, \
          and check the merged trace. Exits 0 when all invariants hold and \
          the cluster survived the chaos, 1 otherwise, 2 on setup errors.")
    Term.(
      const cluster_run $ n $ protocol $ bsize $ memsize $ timeout $ duration
      $ rate $ base_port $ client_port_base $ faults $ outdir $ seed
      $ health_timeout)

let cmd =
  Cmd.group
    (Cmd.info "cluster"
       ~doc:
         "Multi-process TCP cluster deployment: spawn, load, kill, restart, \
          verify.")
    [ run_cmd; node_cmd ]
