(* Multi-process cluster deployment harness (the chaos-survivable
   "cluster plane" of the resilient-TCP work).

   Two halves, both reached through the [bamboo cluster] CLI:

   - {!run_node} is the child-process entry point: one replica over the
     TCP transport, a per-node HTTP ingest endpoint with admission
     control (503 on mempool rejection), a JSONL consensus trace with a
     shared epoch, and a JSON summary written on graceful SIGTERM.

   - {!run_cluster} is the parent orchestrator: it spawns n node
     processes on loopback, drives them with an open-loop client swarm,
     executes a process-level fault schedule (SIGKILL, then restart
     reusing the [bamboo_faults] Crash JSON shape), merges the per-node
     traces post-hoc, and runs the {!Bamboo_check.Monitor.check_trace}
     invariants over the merged stream. *)

(* The whole module is wall-clock territory: it exists to exercise real
   sockets, real processes and real signals, so ambient time, process
   ids and the filesystem are the point, not an accident. *)
[@@@lint.allow "no-ambient-nondeterminism"]

module Config = Bamboo.Config
module Trace = Bamboo_obs.Trace
module Monitor = Bamboo_check.Monitor
module Schedule = Bamboo_faults.Schedule
module Json = Bamboo_util.Json
module Http = Bamboo_network.Http
module Tcp = Bamboo_network.Tcp_transport
module Registry = Bamboo_metrics.Registry
module Snapshot = Bamboo_metrics.Snapshot
module Runtime = Bamboo.Threaded_runtime.Make_batched (Tcp)
open Bamboo_types

let default_base_port = 7400

let client_port_offset = 1000
(* Client HTTP endpoint of node [i] defaults to [base_port +
   client_port_offset + i]; consensus TCP is at [base_port + i]. *)

let swarm_client_base = 1000
(* Client ids used by the swarm: node [i]'s generator submits as client
   [swarm_client_base + i], so tx ids never collide across nodes. *)

let local_client_base = 2000
(* Client id for requests that arrive without explicit [client]/[seq]
   query parameters (e.g. a human with curl). *)

(* ------------------------------------------------------------------ *)
(* Small shared helpers                                               *)
(* ------------------------------------------------------------------ *)

let mkdir_p path =
  let rec go p =
    if String.length p > 0 && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let query_params path =
  match String.index_opt path '?' with
  | None -> (path, [])
  | Some i ->
      let base = String.sub path 0 i in
      let query = String.sub path (i + 1) (String.length path - i - 1) in
      let params =
        String.split_on_char '&' query
        |> List.filter_map (fun kv ->
               match String.index_opt kv '=' with
               | Some j ->
                   Some
                     ( String.sub kv 0 j,
                       String.sub kv (j + 1) (String.length kv - j - 1) )
               | None -> Some (kv, ""))
      in
      (base, params)

let write_json_file path json =
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:true json);
  output_char oc '\n';
  close_out oc

(** Tolerant JSONL trace reader: a SIGKILLed node leaves a torn final
    line, which must not poison the merge. Returns the parsed events in
    file order plus the number of lines skipped as unparseable. *)
let read_trace_file path =
  match open_in path with
  | exception Sys_error _ -> ([], 0)
  | ic ->
      let events = ref [] and skipped = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if not (String.equal (String.trim line) "") then
             match Json.of_string line with
             | exception Json.Parse_error _ -> incr skipped
             | j -> (
                 match Trace.event_of_json j with
                 | Ok e -> events := e :: !events
                 | Error _ -> incr skipped)
         done
       with End_of_file -> close_in ic);
      (List.rev !events, !skipped)

(* ------------------------------------------------------------------ *)
(* Child: one replica process                                         *)
(* ------------------------------------------------------------------ *)

let run_node ~config ~self ~base_port ~client_port ~epoch ~trace_path
    ~summary_path =
  let n = config.Config.n in
  if self < 0 || self >= n then invalid_arg "run_node: self out of range";
  let addresses = Tcp.loopback_addresses ~n ~base_port in
  let endpoint = Tcp.create ~self ~addresses () in
  let trace_oc = open_out trace_path in
  let trace = Trace.jsonl trace_oc in
  let cluster =
    Runtime.start ~owned:[| self |] ~traces:[| trace |] ~epoch ~config
      ~endpoints:[| endpoint |] ()
  in
  let accepted = Atomic.make 0 in
  let shed = Atomic.make 0 in
  let local_seq = Atomic.make 0 in
  let stop_requested = Atomic.make false in
  let handler (req : Http.request) =
    let path, params = query_params req.path in
    match (req.meth, path) with
    | "POST", "/tx" -> (
        let client, seq =
          match
            (List.assoc_opt "client" params, List.assoc_opt "seq" params)
          with
          | Some c, Some s -> (
              match (int_of_string_opt c, int_of_string_opt s) with
              | Some c, Some s -> (c, s)
              | _ ->
                  (local_client_base + self, Atomic.fetch_and_add local_seq 1))
          | _ -> (local_client_base + self, Atomic.fetch_and_add local_seq 1)
        in
        let tx = Tx.make_with_data ~client ~seq ~data:req.body in
        match Runtime.submit_admission cluster ~replica:self [ tx ] with
        | 0 ->
            Atomic.incr shed;
            {
              Http.status = 503;
              body =
                Printf.sprintf
                  {|{"error": "overloaded", "client": %d, "seq": %d}|} client
                  seq;
            }
        | _ ->
            Atomic.incr accepted;
            {
              Http.status = 200;
              body =
                Printf.sprintf {|{"client": %d, "seq": %d, "node": %d}|}
                  client seq self;
            })
    | "GET", "/health" ->
        {
          Http.status = 200;
          body = Printf.sprintf {|{"status": "up", "node": %d}|} self;
        }
    | "GET", "/metrics" ->
        let reg = Registry.create () in
        Tcp.publish_metrics endpoint reg;
        Registry.Counter.add
          (Registry.counter reg
             ~labels:[ ("node", string_of_int self) ]
             "cluster_ingest_accepted")
          (Atomic.get accepted);
        Registry.Counter.add
          (Registry.counter reg
             ~labels:[ ("node", string_of_int self) ]
             "cluster_ingest_shed")
          (Atomic.get shed);
        Registry.Counter.add
          (Registry.counter reg
             ~labels:[ ("node", string_of_int self) ]
             "cluster_committed_txs")
          (Runtime.committed_txs cluster);
        let snap = Snapshot.of_registry reg in
        let body =
          match List.assoc_opt "format" params with
          | Some "json" -> Json.to_string (Snapshot.to_json snap)
          | _ -> Snapshot.to_prometheus snap
        in
        { Http.status = 200; body }
    | _ -> { Http.status = 404; body = "unknown route" }
  in
  let server = Http.start ~port:client_port ~handler in
  let request_stop _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  while not (Atomic.get stop_requested) do
    Thread.delay 0.05
  done;
  Http.stop server;
  let report = Runtime.stop cluster in
  close_out trace_oc;
  let st = Tcp.stats endpoint in
  let summary =
    Json.Obj
      [
        ("node", Json.Int self);
        ("duration", Json.Float report.duration);
        ("committed_txs", Json.Int report.committed_txs);
        ("throughput", Json.Float report.throughput);
        ("ingest_accepted", Json.Int (Atomic.get accepted));
        ("ingest_shed", Json.Int (Atomic.get shed));
        ( "transport",
          Json.Obj
            [
              ("sends", Json.Int st.Tcp.sends);
              ("dropped_full", Json.Int st.Tcp.dropped_full);
              ("reconnects", Json.Int st.Tcp.reconnects);
              ("conn_failures", Json.Int st.Tcp.conn_failures);
              ("recv_msgs", Json.Int st.Tcp.recv_msgs);
              ("recv_dropped", Json.Int st.Tcp.recv_dropped);
              ("peak_depth", Json.Int st.Tcp.peak_depth);
            ] );
      ]
  in
  write_json_file summary_path summary

(* ------------------------------------------------------------------ *)
(* Parent: orchestration                                              *)
(* ------------------------------------------------------------------ *)

type child = { node : int; mutable pid : int; mutable segment : int }

type fault_action = { fa_ts : float; fa_node : int; fa_restart : bool }
(** One step of the compiled process-fault timeline, [fa_ts] seconds
    after the epoch. [fa_restart = false] is a SIGKILL. *)

type outcome = {
  o_report : Monitor.report;
  o_commits : int;  (** Commit events in the merged trace. *)
  o_committed_txs : int;  (** Max committed-tx count over node summaries. *)
  o_reconnects : int;  (** Summed over node summaries. *)
  o_kills : int;
  o_restarts : int;
  o_catchup_ok : bool;
      (** Every restarted node logged a commit after its restart. *)
  o_swarm_sent : int;
  o_swarm_accepted : int;
  o_swarm_shed : int;
  o_swarm_failed : int;
  o_skipped_lines : int;
  o_merged_path : string;
  o_summary_path : string;
}

let spawn_node ~outdir ~config_path ~base_port ~client_port_base ~epoch ~node
    ~segment =
  let trace =
    Filename.concat outdir (Printf.sprintf "trace-%d-%d.jsonl" node segment)
  in
  let summary = Filename.concat outdir (Printf.sprintf "summary-%d.json" node) in
  let log = Filename.concat outdir (Printf.sprintf "node-%d.log" node) in
  let log_fd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let exe = Sys.executable_name in
  let args =
    [|
      exe;
      "cluster";
      "node";
      "--self";
      string_of_int node;
      "--config";
      config_path;
      "--base-port";
      string_of_int base_port;
      "--client-port";
      string_of_int (client_port_base + node);
      "--epoch";
      Printf.sprintf "%.6f" epoch;
      "--trace";
      trace;
      "--summary";
      summary;
    |]
  in
  let pid = Unix.create_process exe args devnull log_fd log_fd in
  Unix.close log_fd;
  Unix.close devnull;
  pid

let wait_healthy ~client_port_base ~n ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll node =
    if node >= n then true
    else
      let up =
        match
          Http.request ~timeout_s:0.5 ~host:"127.0.0.1"
            ~port:(client_port_base + node) ~meth:"GET" ~path:"/health" ()
        with
        | Ok { Http.status = 200; _ } -> true
        | Ok _ | Error _ -> false
      in
      if up then poll (node + 1)
      else if Unix.gettimeofday () > deadline then false
      else begin
        Thread.delay 0.1;
        poll node
      end
  in
  poll 0

(** Compile a [bamboo_faults] schedule into the process-fault timeline.
    Only [Crash] entries are meaningful at the process level; anything
    else is an error (the simulator handles those). *)
let compile_faults ~n ~duration (schedule : Schedule.t) :
    (fault_action list, string) result =
  let rec go acc = function
    | [] ->
        Ok
          (List.stable_sort
             (fun a b -> Float.compare a.fa_ts b.fa_ts)
             (List.rev acc))
    | { Schedule.at; until; spec = Schedule.Crash { node } } :: rest ->
        if node < 0 || node >= n then
          Error (Printf.sprintf "fault schedule: node %d out of range" node)
        else if at >= duration then
          Error
            (Printf.sprintf "fault schedule: kill at %.1fs is past the %.1fs run"
               at duration)
        else
          let acc = { fa_ts = at; fa_node = node; fa_restart = false } :: acc in
          let acc =
            match until with
            | Some u when u < duration ->
                { fa_ts = u; fa_node = node; fa_restart = true } :: acc
            | Some _ | None -> acc
          in
          go acc rest
    | { Schedule.spec; _ } :: _ ->
        Error
          (Printf.sprintf
             "fault schedule: %s is not a process-level fault; only crash \
              entries apply to bamboo cluster"
             (Schedule.spec_name spec))
  in
  go [] schedule

let reap pid =
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let terminate_children children ~grace_s =
  Array.iter
    (fun c -> try Unix.kill c.pid Sys.sigterm with Unix.Unix_error _ -> ())
    children;
  let deadline = Unix.gettimeofday () +. grace_s in
  let pending = ref (Array.to_list (Array.map (fun c -> c.pid) children)) in
  while
    (match !pending with [] -> false | _ -> true)
    && Unix.gettimeofday () < deadline
  do
    pending :=
      List.filter
        (fun pid ->
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> true
          | _ -> false
          | exception Unix.Unix_error _ -> false)
        !pending;
    match !pending with [] -> () | _ -> Thread.delay 0.05
  done;
  List.iter
    (fun pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap pid)
    !pending

(* Merge per-node JSONL traces: tolerant parse, synthetic
   Fault_inject/Fault_heal markers at the observed kill/restart times,
   then a stable (ts, node, seq) sort and a global re-sequencing. *)
let merge_traces ~outdir ~timeline =
  let files =
    Sys.readdir outdir
    |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.equal (String.sub f 0 6) "trace-"
           && Filename.check_suffix f ".jsonl")
    |> List.sort String.compare
  in
  let skipped = ref 0 in
  let events =
    List.concat_map
      (fun f ->
        let evs, sk = read_trace_file (Filename.concat outdir f) in
        skipped := !skipped + sk;
        evs)
      files
  in
  let synthetic =
    List.map
      (fun a ->
        {
          Trace.seq = 0;
          ts = a.fa_ts;
          node = a.fa_node;
          view = 0;
          kind = (if a.fa_restart then Trace.Fault_heal else Trace.Fault_inject);
          span = 0;
          args = [ ("fault", Json.String "crash") ];
        })
      timeline
  in
  let by_time (a : Trace.event) (b : Trace.event) =
    match Float.compare a.ts b.ts with
    | 0 -> (
        match Int.compare a.node b.node with
        | 0 -> Int.compare a.seq b.seq
        | c -> c)
    | c -> c
  in
  let merged = List.stable_sort by_time (events @ synthetic) in
  let merged = List.mapi (fun i e -> { e with Trace.seq = i }) merged in
  (merged, !skipped)

let summary_reconnects ~outdir ~n =
  let total = ref 0 in
  let committed = ref 0 in
  for node = 0 to n - 1 do
    let path = Filename.concat outdir (Printf.sprintf "summary-%d.json" node) in
    if Sys.file_exists path then begin
      let ic = open_in path in
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      close_in ic;
      match Json.of_string raw with
      | exception Json.Parse_error _ -> ()
      | j -> (
          (try
             total :=
               !total
               + Json.to_int (Json.member "reconnects" (Json.member "transport" j))
           with Invalid_argument _ -> ());
          try
            let c = Json.to_int (Json.member "committed_txs" j) in
            if c > !committed then committed := c
          with Invalid_argument _ -> ())
    end
  done;
  (!total, !committed)

let run_cluster ~config ~faults ~duration ~rate ~base_port ~client_port_base
    ~outdir ~health_timeout_s ~log =
  let n = config.Config.n in
  match compile_faults ~n ~duration faults with
  | Error e -> Error e
  | Ok timeline_plan ->
      mkdir_p outdir;
      let config_path = Filename.concat outdir "config.json" in
      write_json_file config_path
        (Config.to_json { config with Config.faults = Schedule.empty });
      let epoch = Unix.gettimeofday () in
      let children =
        Array.init n (fun node ->
            {
              node;
              segment = 0;
              pid =
                spawn_node ~outdir ~config_path ~base_port ~client_port_base
                  ~epoch ~node ~segment:0;
            })
      in
      if not (wait_healthy ~client_port_base ~n ~timeout_s:health_timeout_s)
      then begin
        terminate_children children ~grace_s:2.0;
        Error "cluster failed to become healthy within the startup timeout"
      end
      else begin
        log (Printf.sprintf "all %d nodes healthy; driving %.0f tx/s for %.0fs"
               n rate duration);
        let stop = Atomic.make false in
        let sent = Atomic.make 0 in
        let ok = Atomic.make 0 in
        let shed = Atomic.make 0 in
        let failed = Atomic.make 0 in
        let swarm_worker node =
          let rng = Bamboo_util.Rng.create ~seed:(config.Config.seed + node) in
          let per_node_rate = rate /. float_of_int n in
          let seq = ref 0 in
          let next = ref (Unix.gettimeofday ()) in
          while not (Atomic.get stop) do
            let now = Unix.gettimeofday () in
            if now < !next then Thread.delay (Float.min 0.01 (!next -. now))
            else begin
              (* Open-loop Poisson arrivals: exponential gaps, never
                 paused by slow or dead servers. *)
              let gap =
                -.Stdlib.log (1.0 -. Bamboo_util.Rng.float rng 1.0)
                /. per_node_rate
              in
              next := !next +. gap;
              let s = !seq in
              incr seq;
              let key = Printf.sprintf "k%d-%d" node (s mod 64) in
              let value = Printf.sprintf "v%d" s in
              let body =
                Printf.sprintf "P%d:%s%s" (String.length key) key value
              in
              let path =
                Printf.sprintf "/tx?client=%d&seq=%d" (swarm_client_base + node)
                  s
              in
              Atomic.incr sent;
              match
                Http.request ~body ~timeout_s:0.5 ~host:"127.0.0.1"
                  ~port:(client_port_base + node) ~meth:"POST" ~path ()
              with
              | Ok { Http.status = 200; _ } -> Atomic.incr ok
              | Ok { Http.status = 503; _ } -> Atomic.incr shed
              | Ok _ | Error _ -> Atomic.incr failed
            end
          done
        in
        let swarm = List.init n (fun i -> Thread.create swarm_worker i) in
        let timeline = ref [] in
        (* The fault thread is the only writer of [c.segment]/[c.pid] and
           [timeline] while it runs; the main thread reads them only after
           [Thread.join fault_thread] below. *)
        let[@lint.allow "domain-escape"] fault_thread =
          Thread.create
            (fun () ->
              List.iter
                (fun a ->
                  let due = epoch +. a.fa_ts in
                  let rec wait () =
                    let now = Unix.gettimeofday () in
                    if now < due && not (Atomic.get stop) then begin
                      Thread.delay (Float.min 0.05 (due -. now));
                      wait ()
                    end
                  in
                  wait ();
                  if not (Atomic.get stop) then begin
                    let c = children.(a.fa_node) in
                    let ts = Unix.gettimeofday () -. epoch in
                    if a.fa_restart then begin
                      c.segment <- c.segment + 1;
                      c.pid <-
                        spawn_node ~outdir ~config_path ~base_port
                          ~client_port_base ~epoch ~node:a.fa_node
                          ~segment:c.segment;
                      log
                        (Printf.sprintf "t=%.1fs restarted node %d (pid %d)" ts
                           a.fa_node c.pid)
                    end
                    else begin
                      (try Unix.kill c.pid Sys.sigkill
                       with Unix.Unix_error _ -> ());
                      reap c.pid;
                      log
                        (Printf.sprintf "t=%.1fs SIGKILLed node %d (pid %d)" ts
                           a.fa_node c.pid)
                    end;
                    timeline := { a with fa_ts = ts } :: !timeline
                  end)
                timeline_plan)
            ()
        in
        let finish = epoch +. duration in
        let rec sleep_to t =
          let now = Unix.gettimeofday () in
          if now < t then begin
            Thread.delay (Float.min 0.2 (t -. now));
            sleep_to t
          end
        in
        sleep_to finish;
        Atomic.set stop true;
        List.iter Thread.join swarm;
        Thread.join fault_thread;
        terminate_children children ~grace_s:5.0;
        let timeline = List.rev !timeline in
        let kills =
          List.length (List.filter (fun a -> not a.fa_restart) timeline)
        in
        let restarts =
          List.length (List.filter (fun a -> a.fa_restart) timeline)
        in
        let merged, skipped = merge_traces ~outdir ~timeline in
        let merged_path = Filename.concat outdir "merged.jsonl" in
        let oc = open_out merged_path in
        List.iter
          (fun e ->
            output_string oc (Json.to_string (Trace.event_to_json e));
            output_char oc '\n')
          merged;
        close_out oc;
        let expect_commit_after =
          List.fold_left (fun acc a -> Float.max acc a.fa_ts) 0.0 timeline
        in
        let report =
          Monitor.check_trace ~byz_no:config.Config.byz_no
            ~expect_commit_after merged
        in
        let commits =
          List.length
            (List.filter
               (fun (e : Trace.event) ->
                 match e.kind with Trace.Commit -> true | _ -> false)
               merged)
        in
        let catchup_ok =
          List.for_all
            (fun a ->
              List.exists
                (fun (e : Trace.event) ->
                  (match e.kind with Trace.Commit -> true | _ -> false)
                  && e.node = a.fa_node
                  && e.ts > a.fa_ts)
                merged)
            (List.filter (fun a -> a.fa_restart) timeline)
        in
        let reconnects, committed_txs = summary_reconnects ~outdir ~n in
        let summary_path = Filename.concat outdir "cluster-summary.json" in
        let outcome =
          {
            o_report = report;
            o_commits = commits;
            o_committed_txs = committed_txs;
            o_reconnects = reconnects;
            o_kills = kills;
            o_restarts = restarts;
            o_catchup_ok = catchup_ok;
            o_swarm_sent = Atomic.get sent;
            o_swarm_accepted = Atomic.get ok;
            o_swarm_shed = Atomic.get shed;
            o_swarm_failed = Atomic.get failed;
            o_skipped_lines = skipped;
            o_merged_path = merged_path;
            o_summary_path = summary_path;
          }
        in
        let violations =
          List.map
            (fun (v : Monitor.violation) ->
              Json.Obj
                [
                  ( "invariant",
                    Json.String (Monitor.invariant_name v.Monitor.invariant) );
                  ("detail", Json.String v.Monitor.detail);
                ])
            report.Monitor.violations
        in
        write_json_file summary_path
          (Json.Obj
             [
               ("n", Json.Int n);
               ("duration", Json.Float duration);
               ("rate", Json.Float rate);
               ("commits", Json.Int commits);
               ("committed_txs", Json.Int committed_txs);
               ("reconnects", Json.Int reconnects);
               ("kills", Json.Int kills);
               ("restarts", Json.Int restarts);
               ("catchup_ok", Json.Bool catchup_ok);
               ("swarm_sent", Json.Int (Atomic.get sent));
               ("swarm_accepted", Json.Int (Atomic.get ok));
               ("swarm_shed", Json.Int (Atomic.get shed));
               ("swarm_failed", Json.Int (Atomic.get failed));
               ("skipped_trace_lines", Json.Int skipped);
               ("violations", Json.List violations);
             ]);
        Ok outcome
      end

(** Pass criteria for a chaos run: no invariant violations, commits
    landed, and — when the schedule actually killed processes — the
    transport reconnected and every restarted node committed again. *)
let outcome_pass o =
  Monitor.pass o.o_report && o.o_commits > 0
  && (o.o_kills = 0 || (o.o_reconnects > 0 && o.o_catchup_ok))
