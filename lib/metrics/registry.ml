(* Aggregate metrics registry: monotonic counters, gauges and log-bucketed
   histograms, sharded per domain so Pool workers never contend on a cache
   line. Writers touch only their own domain's shard; readers merge all
   shards on demand ([read]). The fast path is allocation-free: a disabled
   registry costs one load and one branch per record, and an enabled one
   costs a shard scan (the shard array has one entry per domain, so the scan
   is a handful of compares) plus an array store.

   Metrics are observe-only by construction: nothing in this module feeds
   back into simulation state, and the registry is a per-run value (like
   Trace.t), never ambient global state. *)

type kind = K_counter | K_gauge | K_hist

type def = {
  d_name : string;
  d_labels : (string * string) list; (* sorted by key *)
  d_kind : kind;
}

(* All-float record: gets the flat float-array representation, so mutating a
   field stores an unboxed float. A mixed int/float record would box on
   every [Gauge.set]. The sample count is therefore carried as a float. *)
type gcell = {
  mutable g_last : float;
  mutable g_min : float;
  mutable g_max : float;
  mutable g_sum : float;
  mutable g_count : float;
}

type hcell = {
  mutable h_sum : int;
  mutable h_count : int;
  mutable h_max : int;
  h_buckets : int array;
}

type shard = {
  s_dom : int; (* Domain.id of the owning domain *)
  mutable s_counters : int array; (* indexed by def id; 0 for other kinds *)
  mutable s_gauges : gcell option array; (* cell allocated on first set *)
  mutable s_hists : hcell option array; (* cell allocated on first observe *)
}

type t = {
  enabled : bool;
  lock : Mutex.t; (* guards registration and shard creation *)
  mutable defs : def array; [@guarded_by "lock"] (* slots [0, n_defs) live *)
  mutable n_defs : int; [@guarded_by "lock"]
  by_key : (string, int) Hashtbl.t; [@guarded_by "lock"]
      (* "name{k=v,...}" -> def id *)
  shards : shard array Atomic.t; (* append-only *)
}

let no_def = { d_name = ""; d_labels = []; d_kind = K_counter }

let create ?(enabled = true) () =
  {
    enabled;
    lock = Mutex.create ();
    defs = Array.make 16 no_def;
    n_defs = 0;
    by_key = Hashtbl.create 32;
    shards = Atomic.make [||];
  }

let null = create ~enabled:false ()
let enabled t = t.enabled

(* ---------------------------------------------------------------- naming *)

let valid_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (fun ch ->
         match ch with 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let label_key labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let def_key name labels = name ^ "{" ^ label_key labels ^ "}"

(* ----------------------------------------------------------- histograms *)

(* HDR-style log buckets with 16 sub-buckets per octave: values below 32 get
   one bucket each (exact), and every value >= 32 lands in a bucket whose
   width is 1/16 of its octave, bounding the relative quantile error at
   ~6%. With 63-bit ints the largest index is (61-3)*16 + 15 = 943. *)
let sub_bits = 4
let first_log = 32 (* 1 lsl (sub_bits + 1): below this, one bucket per value *)
let n_buckets = 960

(* Index of the highest set bit of [v] > 0. Stepped shifts rather than a
   loop with a [ref]: a ref cell would allocate. *)
let msb v =
  let k1 = if v lsr 32 <> 0 then 32 else 0 in
  let v1 = v lsr k1 in
  let k2 = if v1 lsr 16 <> 0 then 16 else 0 in
  let v2 = v1 lsr k2 in
  let k3 = if v2 lsr 8 <> 0 then 8 else 0 in
  let v3 = v2 lsr k3 in
  let k4 = if v3 lsr 4 <> 0 then 4 else 0 in
  let v4 = v3 lsr k4 in
  let k5 = if v4 lsr 2 <> 0 then 2 else 0 in
  let v5 = v4 lsr k5 in
  let k6 = if v5 lsr 1 <> 0 then 1 else 0 in
  k1 + k2 + k3 + k4 + k5 + k6

let bucket_index v =
  let v = if v < 0 then 0 else v in
  if v < first_log then v
  else
    let k = msb v in
    (((k - sub_bits + 1) * 16) + ((v lsr (k - sub_bits)) land 15))

let bucket_lower idx =
  if idx < first_log then idx
  else (16 + (idx land 15)) lsl ((idx lsr sub_bits) - 1)

(* ------------------------------------------------------------- sharding *)

let rec shard_slot arr dom i n =
  if i = n then -1
  else if (Array.unsafe_get arr i).s_dom = dom then i
  else shard_slot arr dom (i + 1) n

let new_shard t dom =
  let n = max 8 t.n_defs in
  {
    s_dom = dom;
    s_counters = Array.make n 0;
    s_gauges = Array.make n None;
    s_hists = Array.make n None;
  }

(* Cold path: first record from this domain (or, under systhreads, a racing
   thread of the same domain — the lock plus re-check keeps the shard list
   one-entry-per-domain). *)
let add_shard t dom =
  Mutex.lock t.lock;
  let arr = Atomic.get t.shards in
  let n = Array.length arr in
  let s =
    let i = shard_slot arr dom 0 n in
    if i >= 0 then Array.unsafe_get arr i
    else begin
      let s = new_shard t dom in
      let arr' = Array.make (n + 1) s in
      Array.blit arr 0 arr' 0 n;
      Atomic.set t.shards arr';
      s
    end
  in
  Mutex.unlock t.lock;
  s

let my_shard t =
  let dom = (Domain.self () :> int) in
  let arr = Atomic.get t.shards in
  let n = Array.length arr in
  let i = shard_slot arr dom 0 n in
  if i >= 0 then Array.unsafe_get arr i else add_shard t dom

(* Shard arrays grow only when a metric was registered after the shard was
   created; the owning domain performs the copy, readers see either array. *)
let grow len need =
  let cap = max need (max 8 (2 * len)) in
  cap

let grow_counters s need =
  let old = s.s_counters in
  let len = Array.length old in
  let a = Array.make (grow len need) 0 in
  Array.blit old 0 a 0 len;
  s.s_counters <- a

let grow_gauges s need =
  let old = s.s_gauges in
  let len = Array.length old in
  let a = Array.make (grow len need) None in
  Array.blit old 0 a 0 len;
  s.s_gauges <- a

let grow_hists s need =
  let old = s.s_hists in
  let len = Array.length old in
  let a = Array.make (grow len need) None in
  Array.blit old 0 a 0 len;
  s.s_hists <- a

(* -------------------------------------------------------------- handles *)

module Counter = struct
  type nonrec t = { reg : t; id : int }

  let add h v =
    if h.reg.enabled then begin
      let s = my_shard h.reg in
      if h.id >= Array.length s.s_counters then grow_counters s (h.id + 1);
      let a = s.s_counters in
      Array.unsafe_set a h.id (Array.unsafe_get a h.id + v)
    end

  let incr h = add h 1

  let value h =
    if not h.reg.enabled then 0
    else begin
      let arr = Atomic.get h.reg.shards in
      let total = Array.fold_left
          (fun acc s ->
            if h.id < Array.length s.s_counters then acc + s.s_counters.(h.id)
            else acc)
          0 arr
      in
      total
    end
end

module Gauge = struct
  type nonrec t = { reg : t; id : int }

  let cell s id =
    match s.s_gauges.(id) with
    | Some c -> c
    | None ->
        let c =
          {
            g_last = 0.0;
            g_min = infinity;
            g_max = neg_infinity;
            g_sum = 0.0;
            g_count = 0.0;
          }
        in
        s.s_gauges.(id) <- Some c;
        c

  let set h v =
    if h.reg.enabled then begin
      let s = my_shard h.reg in
      if h.id >= Array.length s.s_gauges then grow_gauges s (h.id + 1);
      let c = cell s h.id in
      c.g_last <- v;
      if v < c.g_min then c.g_min <- v;
      if v > c.g_max then c.g_max <- v;
      c.g_sum <- c.g_sum +. v;
      c.g_count <- c.g_count +. 1.0
    end

  let samples h =
    if not h.reg.enabled then 0
    else
      Array.fold_left
        (fun acc s ->
          if h.id < Array.length s.s_gauges then
            match s.s_gauges.(h.id) with
            | Some c -> acc + int_of_float c.g_count
            | None -> acc
          else acc)
        0
        (Atomic.get h.reg.shards)
end

module Histogram = struct
  type nonrec t = { reg : t; id : int }

  let cell s id =
    match s.s_hists.(id) with
    | Some c -> c
    | None ->
        let c =
          { h_sum = 0; h_count = 0; h_max = 0; h_buckets = Array.make n_buckets 0 }
        in
        s.s_hists.(id) <- Some c;
        c

  let observe h v =
    if h.reg.enabled then begin
      let v = if v < 0 then 0 else v in
      let s = my_shard h.reg in
      if h.id >= Array.length s.s_hists then grow_hists s (h.id + 1);
      let c = cell s h.id in
      c.h_sum <- c.h_sum + v;
      c.h_count <- c.h_count + 1;
      if v > c.h_max then c.h_max <- v;
      let b = c.h_buckets in
      let i = bucket_index v in
      Array.unsafe_set b i (Array.unsafe_get b i + 1)
    end

  (* Seconds -> nanoseconds, the unit every *_ns histogram records. *)
  let observe_s h secs = observe h (int_of_float (secs *. 1e9))

  let count h =
    if not h.reg.enabled then 0
    else
      Array.fold_left
        (fun acc s ->
          if h.id < Array.length s.s_hists then
            match s.s_hists.(h.id) with
            | Some c -> acc + c.h_count
            | None -> acc
          else acc)
        0
        (Atomic.get h.reg.shards)
end

(* --------------------------------------------------------- registration *)

let register t kind labels name =
  if not (valid_name name) then
    invalid_arg ("Registry: metric name must be snake_case: " ^ name);
  if not t.enabled then -1
  else begin
    Mutex.lock t.lock;
    let labels = canon_labels labels in
    let key = def_key name labels in
    let id, err =
      match Hashtbl.find_opt t.by_key key with
      | Some id ->
          if t.defs.(id).d_kind <> kind then (-1, true) else (id, false)
      | None ->
          let id = t.n_defs in
          if id = Array.length t.defs then begin
            let a = Array.make (2 * id) no_def in
            Array.blit t.defs 0 a 0 id;
            t.defs <- a
          end;
          t.defs.(id) <- { d_name = name; d_labels = labels; d_kind = kind };
          t.n_defs <- id + 1;
          Hashtbl.add t.by_key key id;
          (id, false)
    in
    Mutex.unlock t.lock;
    if err then
      invalid_arg ("Registry: " ^ name ^ " re-registered with a different kind");
    id
  end

let counter t ?(labels = []) name : Counter.t =
  { Counter.reg = t; id = register t K_counter labels name }

let gauge t ?(labels = []) name : Gauge.t =
  { Gauge.reg = t; id = register t K_gauge labels name }

let histogram t ?(labels = []) name : Histogram.t =
  { Histogram.reg = t; id = register t K_hist labels name }

(* --------------------------------------------------------------- reading *)

type merged =
  | M_counter of int
  | M_gauge of {
      last : float;
      min_v : float;
      max_v : float;
      sum : float;
      samples : int;
    }
  | M_hist of {
      count : int;
      sum : int;
      max_v : int;
      buckets : (int * int) list; (* (bucket lower bound, count), ascending *)
    }

let merge_counter shards id =
  Array.fold_left
    (fun acc s ->
      if id < Array.length s.s_counters then acc + s.s_counters.(id) else acc)
    0 shards

let merge_gauge shards id =
  let last = ref 0.0
  and min_v = ref infinity
  and max_v = ref neg_infinity
  and sum = ref 0.0
  and count = ref 0.0 in
  Array.iter
    (fun s ->
      if id < Array.length s.s_gauges then
        match s.s_gauges.(id) with
        | Some c ->
            (* [last] is only meaningful for single-domain writers; with
               several writing shards we keep the last of the first shard
               that saw a sample, deterministically (shard order is
               creation order, which registration makes deterministic for
               the single-writer runs that read [last]). *)
            if !count = 0.0 then last := c.g_last;
            if c.g_min < !min_v then min_v := c.g_min;
            if c.g_max > !max_v then max_v := c.g_max;
            sum := !sum +. c.g_sum;
            count := !count +. c.g_count
        | None -> ())
    shards;
  M_gauge
    {
      last = !last;
      min_v = (if !count = 0.0 then 0.0 else !min_v);
      max_v = (if !count = 0.0 then 0.0 else !max_v);
      sum = !sum;
      samples = int_of_float !count;
    }

let merge_hist shards id =
  let sum = ref 0 and count = ref 0 and max_v = ref 0 in
  let buckets = Array.make n_buckets 0 in
  Array.iter
    (fun s ->
      if id < Array.length s.s_hists then
        match s.s_hists.(id) with
        | Some c ->
            sum := !sum + c.h_sum;
            count := !count + c.h_count;
            if c.h_max > !max_v then max_v := c.h_max;
            for i = 0 to n_buckets - 1 do
              buckets.(i) <- buckets.(i) + c.h_buckets.(i)
            done
        | None -> ())
    shards;
  let present = ref [] in
  for i = n_buckets - 1 downto 0 do
    if buckets.(i) > 0 then present := (bucket_lower i, buckets.(i)) :: !present
  done;
  M_hist { count = !count; sum = !sum; max_v = !max_v; buckets = !present }

let read t =
  if not t.enabled then []
  else begin
    Mutex.lock t.lock;
    let n = t.n_defs in
    let defs = Array.sub t.defs 0 n in
    Mutex.unlock t.lock;
    let shards = Atomic.get t.shards in
    let rows = ref [] in
    for id = n - 1 downto 0 do
      let d = defs.(id) in
      let m =
        match d.d_kind with
        | K_counter -> M_counter (merge_counter shards id)
        | K_gauge -> merge_gauge shards id
        | K_hist -> merge_hist shards id
      in
      rows := (d.d_name, d.d_labels, m) :: !rows
    done;
    List.sort
      (fun (n1, l1, _) (n2, l2, _) ->
        match String.compare n1 n2 with
        | 0 -> String.compare (label_key l1) (label_key l2)
        | c -> c)
      !rows
  end
