(* Immutable merged view of a registry, with the two export formats the
   tooling speaks: Prometheus text exposition and the repo's Json module. *)

module Json = Bamboo_util.Json

type value =
  | Counter of int
  | Gauge of { last : float; min_v : float; max_v : float; mean : float; samples : int }
  | Histogram of {
      count : int;
      sum : int;
      max_v : int;
      buckets : (int * int) list; (* (lower bound, count), ascending *)
    }

type metric = {
  name : string;
  labels : (string * string) list;
  value : value;
}

type t = { metrics : metric list }

let empty = { metrics = [] }
let is_empty t = t.metrics = []

let of_registry reg =
  let metrics =
    List.map
      (fun (name, labels, m) ->
        let value =
          match m with
          | Registry.M_counter v -> Counter v
          | Registry.M_gauge { last; min_v; max_v; sum; samples } ->
              let mean =
                if samples = 0 then 0.0 else sum /. float_of_int samples
              in
              Gauge { last; min_v; max_v; mean; samples }
          | Registry.M_hist { count; sum; max_v; buckets } ->
              Histogram { count; sum; max_v; buckets }
        in
        { name; labels; value })
      (Registry.read reg)
  in
  { metrics }

let find t ?(labels = []) name =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  List.find_opt (fun m -> m.name = name && m.labels = labels) t.metrics

(* Sum of every counter sharing [name], across label sets — e.g. total
   commits over all [replica_commits{node=...}]. *)
let counter_value t name =
  List.fold_left
    (fun acc m ->
      match m.value with
      | Counter v when m.name = name -> acc + v
      | _ -> acc)
    0 t.metrics

(* Percentile over merged buckets: the lower bound of the bucket where the
   cumulative count crosses the rank, except p100 which reports the exact
   maximum. Deterministic and merge-stable. *)
let percentile ~buckets ~count ~max_v p =
  if count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int count)) in
      if r < 1 then 1 else if r > count then count else r
    in
    if rank = count then max_v
    else begin
      let rec walk cum = function
        | [] -> max_v
        | (lower, n) :: rest ->
            let cum = cum + n in
            if cum >= rank then lower else walk cum rest
      in
      walk 0 buckets
    end
  end

(* ------------------------------------------------------------------ JSON *)

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let metric_json m =
  let base = [ ("name", Json.String m.name) ] in
  let base =
    if m.labels = [] then base else base @ [ ("labels", labels_json m.labels) ]
  in
  let rest =
    match m.value with
    | Counter v -> [ ("type", Json.String "counter"); ("value", Json.Int v) ]
    | Gauge { last; min_v; max_v; mean; samples } ->
        [
          ("type", Json.String "gauge");
          ("last", Json.Float last);
          ("min", Json.Float min_v);
          ("max", Json.Float max_v);
          ("mean", Json.Float mean);
          ("samples", Json.Int samples);
        ]
    | Histogram { count; sum; max_v; buckets } ->
        let p q = Json.Int (percentile ~buckets ~count ~max_v q) in
        [
          ("type", Json.String "histogram");
          ("count", Json.Int count);
          ("sum", Json.Int sum);
          ("max", Json.Int max_v);
          ("p50", p 50.0);
          ("p95", p 95.0);
          ("p99", p 99.0);
          ( "buckets",
            Json.List
              (List.map
                 (fun (lower, n) -> Json.List [ Json.Int lower; Json.Int n ])
                 buckets) );
        ]
  in
  Json.Obj (base @ rest)

let to_json t = Json.Obj [ ("metrics", Json.List (List.map metric_json t.metrics)) ]

(* ------------------------------------------------------------ Prometheus *)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let float_str v =
  (* Prometheus wants plain decimal; %.17g round-trips doubles but emits
     noise for simple values, so prefer the shortest exact form. *)
  let s = Printf.sprintf "%.12g" v in
  if float_of_string s = v then s else Printf.sprintf "%.17g" v

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun m ->
      match m.value with
      | Counter v ->
          type_line m.name "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" m.name (render_labels m.labels) v)
      | Gauge { last; _ } ->
          type_line m.name "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.name
               (render_labels m.labels)
               (float_str last))
      | Histogram { count; sum; max_v = _; buckets } ->
          type_line m.name "histogram";
          let cum = ref 0 in
          List.iter
            (fun (lower, n) ->
              cum := !cum + n;
              (* our buckets are [lower, next_lower); Prometheus "le" is an
                 inclusive upper bound, so emit the last value the bucket
                 can hold *)
              let le =
                let idx = Registry.bucket_index lower in
                Registry.bucket_lower (idx + 1) - 1
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.name
                   (render_labels (m.labels @ [ ("le", string_of_int le) ]))
                   !cum))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" m.name
               (render_labels (m.labels @ [ ("le", "+Inf") ]))
               count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %d\n" m.name (render_labels m.labels) sum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.name
               (render_labels m.labels)
               count))
    t.metrics;
  Buffer.contents buf
