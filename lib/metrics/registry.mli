(** Aggregate metrics: counters, gauges and HDR-style log-bucketed
    histograms behind a per-domain sharded registry.

    The registry is a per-run value (like [Trace.t]) — create one per
    simulation or benchmark run and pass it down; there is no ambient
    global. Writers record into their own domain's shard without taking any
    lock, so Pool workers never contend; readers merge all shards on demand.

    Recording is allocation-free on the hot path: against a disabled
    registry (e.g. {!null}) every record operation is one load and one
    branch, and against an enabled one it is a shard scan (one entry per
    domain) plus an array store. Counters are exact under parallel domains;
    under systhreads sharing a domain, concurrent increments may coalesce
    (counts are then best-effort, never a crash).

    Metrics are observe-only: nothing recorded here feeds back into
    simulation state, so enabling metrics cannot change simulation output. *)

type t

val create : ?enabled:bool -> unit -> t
(** [create ()] makes an enabled registry. [create ~enabled:false ()] makes
    a registry whose record operations are no-ops and whose {!read} is
    empty. *)

val null : t
(** A shared disabled registry: the default everywhere metrics are
    optional. Registration against it returns inert handles. *)

val enabled : t -> bool

(** {1 Handles}

    Registration (see {!counter}, {!gauge}, {!histogram}) is idempotent on
    (name, labels) and intended for setup paths; handles are cheap records
    made for the hot path. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  (** Merged value across all shards. *)
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  (** Records a sample: updates last/min/max/sum/count. *)

  val samples : t -> int
  (** Merged sample count across all shards. *)
end

module Histogram : sig
  type t

  val observe : t -> int -> unit
  (** Records a non-negative integer value (negatives clamp to 0). The unit
      is the caller's contract — by convention [*_ns] metrics record
      nanoseconds. *)

  val observe_s : t -> float -> unit
  (** [observe_s h secs] records [secs] converted to nanoseconds. *)

  val count : t -> int
  (** Merged observation count across all shards. *)
end

(** {1 Registration}

    Names must be snake_case (a lowercase letter, then lowercase letters,
    digits or underscores) — enforced here at runtime
    and by the [exhaustive-metric-names] lint at the source level (the lint
    additionally requires literal names to be unique across [lib/]).
    Optional [labels] distinguish instances of one logical metric (e.g.
    [("node", "3")]); label order is canonicalised. Registering the same
    (name, labels) twice returns a handle to the same metric; re-registering
    under a different kind raises [Invalid_argument]. *)

val counter : t -> ?labels:(string * string) list -> string -> Counter.t
val gauge : t -> ?labels:(string * string) list -> string -> Gauge.t
val histogram : t -> ?labels:(string * string) list -> string -> Histogram.t

(** {1 Reading} *)

type merged =
  | M_counter of int
  | M_gauge of {
      last : float;  (** last sample; meaningful for single-writer gauges *)
      min_v : float;
      max_v : float;
      sum : float;
      samples : int;
    }
  | M_hist of {
      count : int;
      sum : int;
      max_v : int;
      buckets : (int * int) list;
          (** (bucket lower bound, count) for non-empty buckets, ascending *)
    }

val read : t -> (string * (string * string) list * merged) list
(** Merge-on-read view of every registered metric, sorted by (name, labels)
    so output is deterministic. Intended to be taken after parallel writers
    have joined; a snapshot raced with live writers is best-effort. *)

(** {1 Histogram bucket maths} (exposed for tests and exporters) *)

val bucket_index : int -> int
(** Bucket for a value: exact (identity) below 32, then 16 sub-buckets per
    octave, bounding relative error at ~6%. *)

val bucket_lower : int -> int
(** Inclusive lower bound of a bucket; [bucket_lower (bucket_index v) <= v]
    and [v < bucket_lower (bucket_index v + 1)]. *)

val n_buckets : int
