(** Immutable merged view of a {!Registry.t}, plus the two export formats:
    Prometheus text exposition and the repo's [Json] module. *)

type value =
  | Counter of int
  | Gauge of {
      last : float;
      min_v : float;
      max_v : float;
      mean : float;
      samples : int;
    }
  | Histogram of {
      count : int;
      sum : int;
      max_v : int;
      buckets : (int * int) list;
          (** (bucket lower bound, count), non-empty buckets ascending *)
    }

type metric = { name : string; labels : (string * string) list; value : value }

type t = { metrics : metric list }
(** Sorted by (name, labels) — deterministic for golden tests. *)

val empty : t
val is_empty : t -> bool

val of_registry : Registry.t -> t
(** Merge-on-read snapshot; empty for a disabled registry. *)

val find : t -> ?labels:(string * string) list -> string -> metric option

val counter_value : t -> string -> int
(** Sum of every counter sharing the name, across label sets (0 if none). *)

val percentile :
  buckets:(int * int) list -> count:int -> max_v:int -> float -> int
(** Bucket-resolution percentile: lower bound of the bucket where the
    cumulative count crosses the rank; p100 reports the exact maximum. *)

val to_json : t -> Bamboo_util.Json.t
(** [{"metrics": [{"name", "labels"?, "type", ...}]}] — histograms carry
    count/sum/max, p50/p95/p99 and their non-empty buckets. *)

val to_prometheus : t -> string
(** Prometheus text exposition: one [# TYPE] line per metric name, counters
    and gauges as single samples (gauges export their last value),
    histograms as cumulative [_bucket{le=...}] series plus [_sum] and
    [_count]. *)
