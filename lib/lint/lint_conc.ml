(* Concurrency analysis pass: lock discipline, thread escape, atomicity.

   Where {!Lint_rules} checks one expression at a time, this module runs
   a per-file dataflow analysis over whole implementations and feeds
   four rules:

   - [guarded-by]: a mutable record field or ref annotated
     [[@guarded_by "m"]] may only be touched while mutex [m] (named by
     the last path segment of the [Mutex.lock] argument) is held. A
     lock-set walk tracks [Mutex.lock]/[unlock]/[protect] through
     sequencing, with branch joins by intersection. Helpers called
     under a lock are handled by per-function summaries: a guarded
     access without the lock becomes a *requirement* of the enclosing
     function, discharged at call sites that hold the lock and
     propagated otherwise; requirements that survive to a function no
     in-file caller references are reported at the original access.
     A completeness check also demands that every mutable/container
     field of a record that carries a [Mutex.t] is either annotated,
     [Atomic.t]-typed, or exempted with a label-level
     [[@lint.allow "guarded-by"]].

   - [domain-escape]: closures and functions handed to [Domain.spawn],
     [Thread.create], [Pool.map]/[Pool.run], [Wakeup.start_ticker] or
     [Http.start] run on another thread; any unguarded mutable state
     they touch (captured refs, unannotated mutable fields, Hashtbl /
     Buffer / Queue / array / Rng mutation) with no lock held is
     reported — unless the state is created inside the spawned body,
     [Atomic.t], [[@guarded_by]]-annotated, or suppressed.

   - [atomic-rmw]: [Atomic.get p] followed by [Atomic.set p] in the
     same function with no lock held at the set is a lost-update
     window; use [fetch_and_add]/[compare_and_set] (or keep the set
     under the mutex that serializes it).

   - [condvar-recheck]: [Condition.wait] must sit inside a
     predicate-rechecking loop (a [while] body or a [let rec]
     function), the lost-wakeup discipline [Wakeup] is built around.

   Everything here is syntactic (parsetree, no typing), so the analysis
   is deliberately name-based: fields are matched by field name against
   the cross-file table in {!Lint_engine.field_info} (same-file
   declarations take precedence), locks by the last segment of the
   mutex path. Closures stored in records and run later are analyzed
   with the lock set at their definition site; inter-file calls are
   opaque. The goal is the same as PR 5's rules: make the common race
   shapes impossible to land silently, not to re-implement a typer. *)

open Parsetree
module E = Lint_engine
module SS = Set.Make (String)
module SM = Map.Make (String)

let sprintf = Printf.sprintf

type finding = { cf_rule : string; cf_loc : Location.t; cf_msg : string }

(* --- function summaries --- *)

type req = { rq_lock : string; rq_loc : Location.t; rq_desc : string }
(* A guarded access performed without its lock: the enclosing function
   requires [rq_lock] from its callers. *)

type raw = { ra_loc : Location.t; ra_desc : string; ra_var : string option }
(* An access to unguarded, non-atomic, non-local mutable state with no
   lock held: harmless on the owning thread, reported if the function
   ends up running on a spawned one. [ra_var] names the variable for
   variable accesses (None for record fields), so a caller that owns the
   variable as [Local_mutable] can discharge it: a spawned function's
   own frame — including refs its inner helper closures capture — is
   thread-local. *)

type summary = { mutable sm_reqs : req list; mutable sm_raw : raw list }

let fresh_summary () = { sm_reqs = []; sm_raw = [] }

let add_req sum r =
  if
    not
      (List.exists
         (fun x -> String.equal x.rq_lock r.rq_lock && x.rq_loc = r.rq_loc)
         sum.sm_reqs)
  then sum.sm_reqs <- sum.sm_reqs @ [ r ]

let add_raw sum r =
  if not (List.exists (fun x -> x.ra_loc = r.ra_loc) sum.sm_raw) then
    sum.sm_raw <- sum.sm_raw @ [ r ]

(* --- binding kinds --- *)

type kind =
  | Plain  (* known binding with no concurrency relevance (params) *)
  | Local_mutable of string  (* ref/container created in this scope *)
  | Captured_mutable of string  (* same, but from an enclosing scope *)
  | Atomic_val
  | Guarded_ref of string  (* [let[@guarded_by "m"] r = ref ...] *)
  | Func of summary

let capture_env env =
  SM.map (function Local_mutable w -> Captured_mutable w | k -> k) env

(* --- per-file analysis state --- *)

type state = {
  st_file : string;
  st_local_fields : E.field_info list;
  st_all_fields : E.field_info list;
  st_funcs : (string, summary) Hashtbl.t;  (* top-level, by bare name *)
  st_called : (string, unit) Hashtbl.t;
  mutable st_report : bool;  (* final fixpoint round: emit findings *)
  mutable st_out : finding list;
}

(* Analysis context for one function body. *)
type wctx = {
  w_sum : summary;
  w_self : string option;  (* enclosing function name, for recursion *)
  w_got : (string, unit) Hashtbl.t;  (* Atomic.get paths seen so far *)
}

let emit st rule loc msg =
  if st.st_report then
    st.st_out <- { cf_rule = rule; cf_loc = loc; cf_msg = msg } :: st.st_out

(* --- small syntactic helpers --- *)

let flatten lid = Longident.flatten lid

let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e) ->
      strip e
  | _ -> e

let head_rev e =
  match (strip e).pexp_desc with
  | Pexp_ident { txt; _ } -> List.rev (flatten txt)
  | _ -> []

let positional args =
  List.filter_map
    (function Asttypes.Nolabel, a -> Some a | _ -> None)
    args

let rec path_str e =
  match (strip e).pexp_desc with
  | Pexp_ident { txt; _ } -> String.concat "." (flatten txt)
  | Pexp_field (b, { txt; _ }) -> (
      match List.rev (flatten txt) with
      | f :: _ -> path_str b ^ "." ^ f
      | [] -> path_str b)
  | Pexp_apply (f, args) -> (
      match (head_rev f, positional args) with
      | ("get" | "unsafe_get") :: ("Array" | "Bytes") :: _, base :: _ ->
          path_str base ^ ".(_)"
      | _ -> "_")
  | _ -> "_"

(* The lock name of a mutex expression: its last path segment, the
   convention [@guarded_by "m"] annotations name. *)
let lock_name e =
  match List.rev (String.split_on_char '.' (path_str e)) with
  | s :: _ -> s
  | [] -> "_"

let container_module m =
  List.mem m [ "Hashtbl"; "Buffer"; "Queue"; "Stack"; "Heap"; "Deque"; "Tbl" ]
  || String.ends_with ~suffix:"_tbl" m
  || String.ends_with ~suffix:"_Tbl" m

(* Functions of container-like modules that mutate their first
   positional argument. [Rng] is stateful on every draw. *)
let mutator m fn =
  match m with
  | "Hashtbl" | "Tbl" ->
      List.mem fn
        [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]
  | "Buffer" ->
      String.starts_with ~prefix:"add_" fn
      || List.mem fn [ "clear"; "reset"; "truncate" ]
  | "Queue" -> List.mem fn [ "add"; "push"; "pop"; "take"; "clear"; "transfer" ]
  | "Stack" -> List.mem fn [ "push"; "pop"; "clear" ]
  | "Heap" | "Deque" ->
      List.mem fn
        [
          "add"; "insert"; "push"; "pop"; "take"; "push_front"; "push_back";
          "pop_front"; "pop_back"; "remove"; "clear";
        ]
  | "Rng" -> true
  | _ ->
      (String.ends_with ~suffix:"_tbl" m || String.ends_with ~suffix:"_Tbl" m)
      && List.mem fn
           [ "add"; "replace"; "remove"; "reset"; "clear"; "set"; "update" ]

(* [let x = <creator> ...] introducing thread-private mutable state. *)
let mutable_creation e =
  let go e =
    match (strip e).pexp_desc with
    | Pexp_apply (f, _) -> (
        match head_rev f with
        | "ref" :: _ -> Some "ref"
        | ("make" | "get" as fn) :: "Atomic" :: _ ->
            if String.equal fn "make" then Some "atomic" else None
        | ("create" | "make" | "init" | "create_float" | "copy" | "of_list") :: m :: _
          when container_module m
               || List.mem m [ "Array"; "Bytes"; "Rng"; "Random" ] ->
            Some (String.lowercase_ascii m)
        | _ -> None)
    | Pexp_array _ -> Some "array"
    | _ -> None
  in
  go e

let binding_guard (vb : value_binding) =
  List.find_map E.guard_payload vb.pvb_attributes

let rec pat_vars acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pat_vars (txt :: acc) p
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p) | Ppat_exception p
    ->
      pat_vars acc p
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pat_vars acc ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) ->
      pat_vars acc p
  | Ppat_record (fs, _) ->
      List.fold_left (fun acc (_, p) -> pat_vars acc p) acc fs
  | Ppat_or (a, b) -> pat_vars (pat_vars acc a) b
  | _ -> acc

let add_pat env p = List.fold_left (fun env v -> SM.add v Plain env) env (pat_vars [] p)

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> is_function e
  | _ -> false

(* --- field classification --- *)

(* Same-file declarations win; among candidates prefer an annotated or
   atomic one (the annotation is the author's statement of intent when
   two types share a field name). *)
let field_info st name =
  let pick l =
    match
      List.find_opt
        (fun (fi : E.field_info) ->
          String.equal fi.fi_name name
          && (fi.fi_guard <> None || fi.fi_atomic || fi.fi_allowed <> []))
        l
    with
    | Some fi -> Some fi
    | None ->
        List.find_opt (fun (fi : E.field_info) -> String.equal fi.fi_name name) l
  in
  match pick st.st_local_fields with
  | Some fi -> Some fi
  | None -> pick st.st_all_fields

let field_name lid =
  match List.rev (flatten lid) with f :: _ -> f | [] -> "_"

(* --- access checks --- *)

let check_field_access st w lockset loc desc name =
  match field_info st name with
  | None -> ()
  | Some fi ->
      if List.mem "guarded-by" fi.E.fi_allowed then ()
      else (
        match fi.E.fi_guard with
        | Some m ->
            if not (SS.mem m lockset) then
              add_req w.w_sum { rq_lock = m; rq_loc = loc; rq_desc = desc }
        | None ->
            if
              (fi.E.fi_mutable || fi.E.fi_container)
              && (not fi.E.fi_atomic)
              && (not fi.E.fi_mutex)
              && (not (List.mem "domain-escape" fi.E.fi_allowed))
              && SS.is_empty lockset
            then add_raw w.w_sum { ra_loc = loc; ra_desc = desc; ra_var = None })

let check_var_access st w env lockset loc name what =
  match SM.find_opt name env with
  | Some (Local_mutable _) | Some Atomic_val | Some (Func _) -> ()
  | Some (Guarded_ref m) ->
      if not (SS.mem m lockset) then
        add_req w.w_sum { rq_lock = m; rq_loc = loc; rq_desc = name }
  | Some (Captured_mutable _) | Some Plain | None ->
      ignore st;
      if SS.is_empty lockset then
        add_raw w.w_sum
          { ra_loc = loc; ra_desc = sprintf "%s (%s)" name what;
            ra_var = Some name }

(* --- spawn-site handling --- *)

let spawn_api rev =
  match rev with
  | "spawn" :: "Domain" :: _ -> Some "Domain.spawn"
  | "create" :: "Thread" :: _ -> Some "Thread.create"
  | ("map" | "run") :: "Pool" :: _ -> Some "Pool.map"
  | ("map_parallel" | "run_parallel") :: _ -> Some "Pool.map"
  | "start_ticker" :: "Wakeup" :: _ -> Some "Wakeup.start_ticker"
  | "start" :: "Http" :: _ -> Some "Http.start"
  | _ -> None

let escape_msg api desc =
  sprintf
    "unguarded mutable state (%s) reaches a thread spawned via %s with no \
     lock held; make it Atomic.t, guard it with a mutex and [@guarded_by], \
     or suppress with a justified [@lint.allow \"domain-escape\"]"
    desc api

let spawn_req_msg api desc lock =
  sprintf
    "%s is [@guarded_by %S] but the body spawned via %s reaches it without \
     holding %s (a spawned thread cannot rely on its spawner's locks)"
    desc lock api lock

(* Emit a spawned function/closure summary at its spawn site. *)
let emit_spawn st api (sum : summary) =
  List.iter
    (fun r -> emit st "guarded-by" r.rq_loc (spawn_req_msg api r.rq_desc r.rq_lock))
    sum.sm_reqs;
  List.iter
    (fun r -> emit st "domain-escape" r.ra_loc (escape_msg api r.ra_desc))
    sum.sm_raw

let mark_called st w name =
  if not (match w.w_self with Some s -> String.equal s name | None -> false)
  then Hashtbl.replace st.st_called name ()

let resolve_fn st env name =
  match SM.find_opt name env with
  | Some (Func sum) -> Some sum
  | Some _ -> None
  | None -> Hashtbl.find_opt st.st_funcs name

(* Discharge a callee's requirements against the locks held at the call
   site; what is not discharged (and raw accesses, when no lock covers
   the call) propagates into the caller's own summary. A raw access to a
   variable the caller owns as [Local_mutable] is discharged too: the
   callee is an inner helper touching the caller's own frame, which
   stays thread-local even if the caller is later spawned. (This keys on
   the name, so a local shadowing an unrelated callee capture would be
   discharged wrongly — acceptable for a lint.) *)
let propagate w env lockset (callee : summary) =
  List.iter
    (fun r -> if not (SS.mem r.rq_lock lockset) then add_req w.w_sum r)
    callee.sm_reqs;
  if SS.is_empty lockset then
    List.iter
      (fun r ->
        let owned =
          match r.ra_var with
          | Some v -> (
              match SM.find_opt v env with
              | Some (Local_mutable _) -> true
              | _ -> false)
          | None -> false
        in
        if not owned then add_raw w.w_sum r)
      callee.sm_raw

(* --- the walker --- *)

(* [walk st w env ~loop lockset e] returns the lock set held after [e].
   [loop] is true inside a predicate-rechecking context (a [while] body
   or a [let rec] function), for the condvar rule. *)
let rec walk st w env ~loop lockset e =
  let desc = (strip e).pexp_desc in
  match desc with
  | Pexp_ident { txt; _ } -> (
      match flatten txt with
      | [ name ] -> (
          match SM.find_opt name env with
          | Some (Guarded_ref m) ->
              if not (SS.mem m lockset) then
                add_req w.w_sum
                  { rq_lock = m; rq_loc = e.pexp_loc; rq_desc = name };
              lockset
          | Some _ -> lockset
          | None ->
              if Hashtbl.mem st.st_funcs name then mark_called st w name;
              lockset)
      | _ -> lockset)
  | Pexp_field (base, lid) ->
      let lockset = walk st w env ~loop lockset base in
      check_field_access st w lockset e.pexp_loc
        (path_str e) (field_name lid.txt);
      lockset
  | Pexp_setfield (base, lid, v) ->
      let lockset = walk st w env ~loop lockset base in
      let lockset = walk st w env ~loop lockset v in
      check_field_access st w lockset e.pexp_loc
        (path_str base ^ "." ^ field_name lid.txt)
        (field_name lid.txt);
      lockset
  | Pexp_apply (f, args) -> walk_apply st w env ~loop lockset e f args
  | Pexp_let (rf, vbs, body) ->
      let recursive = rf = Asttypes.Recursive in
      let env', lockset =
        List.fold_left
          (fun (env', lockset) vb ->
            let names = pat_vars [] vb.pvb_pat in
            match (names, binding_guard vb) with
            | [ n ], Some m when not (is_function vb.pvb_expr) ->
                ignore (walk st w env ~loop lockset vb.pvb_expr);
                (SM.add n (Guarded_ref m) env', lockset)
            | [ n ], _ when is_function vb.pvb_expr ->
                let sum =
                  analyze_fn st env ~self:(Some n) ~recursive ~spawned:false
                    vb.pvb_expr
                in
                (SM.add n (Func sum) env', lockset)
            | [ n ], None -> (
                match mutable_creation vb.pvb_expr with
                | Some "atomic" ->
                    ignore (walk st w env ~loop lockset vb.pvb_expr);
                    (SM.add n Atomic_val env', lockset)
                | Some what ->
                    ignore (walk st w env ~loop lockset vb.pvb_expr);
                    (SM.add n (Local_mutable what) env', lockset)
                | None ->
                    let lockset = walk st w env ~loop lockset vb.pvb_expr in
                    (SM.add n Plain env', lockset))
            | _ ->
                let lockset = walk st w env ~loop lockset vb.pvb_expr in
                (add_pat env' vb.pvb_pat, lockset))
          (env, lockset) vbs
      in
      walk st w env' ~loop lockset body
  | Pexp_sequence (a, b) ->
      let lockset = walk st w env ~loop lockset a in
      walk st w env ~loop lockset b
  | Pexp_ifthenelse (c, t, e_opt) ->
      let lockset = walk st w env ~loop lockset c in
      let lt = walk st w env ~loop lockset t in
      let le =
        match e_opt with
        | Some e -> walk st w env ~loop lockset e
        | None -> lockset
      in
      SS.inter lt le
  | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
      let lockset = walk st w env ~loop lockset scr in
      walk_cases st w env ~loop lockset cases
  | Pexp_while (c, body) ->
      let lockset = walk st w env ~loop lockset c in
      ignore (walk st w env ~loop:true lockset body);
      lockset
  | Pexp_for (p, lo, hi, _, body) ->
      let lockset = walk st w env ~loop lockset lo in
      let lockset = walk st w env ~loop lockset hi in
      ignore (walk st w (add_pat env p) ~loop:true lockset body);
      lockset
  | Pexp_fun (_, default, pat, body) ->
      (* A closure not in binding/spawn position (an iteration callback,
         a stored callback): analyzed with the ambient lock set — right
         for synchronous higher-order calls, a documented approximation
         for stored-and-deferred closures. *)
      Option.iter (fun d -> ignore (walk st w env ~loop lockset d)) default;
      ignore (walk st w (add_pat env pat) ~loop lockset body);
      lockset
  | Pexp_function cases -> walk_cases st w env ~loop lockset cases
  | Pexp_lazy e | Pexp_assert e | Pexp_open (_, e) | Pexp_letexception (_, e)
    ->
      walk st w env ~loop lockset e
  | Pexp_letmodule (_, _, e) -> walk st w env ~loop lockset e
  | _ ->
      (* Generic fallback: walk direct sub-expressions with the current
         lock set (tuples, records, constructors, arrays, ...). *)
      List.iter
        (fun c -> ignore (walk st w env ~loop lockset c))
        (children e);
      lockset

and children e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      Ast_iterator.expr = (fun _ c -> acc := c :: !acc);
    }
  in
  Ast_iterator.default_iterator.Ast_iterator.expr it e;
  List.rev !acc

and walk_cases st w env ~loop lockset cases =
  match cases with
  | [] -> lockset
  | _ ->
      List.fold_left
        (fun acc (c : case) ->
          let env = add_pat env c.pc_lhs in
          let lockset =
            match c.pc_guard with
            | Some g -> walk st w env ~loop lockset g
            | None -> lockset
          in
          let out = walk st w env ~loop lockset c.pc_rhs in
          match acc with None -> Some out | Some a -> Some (SS.inter a out))
        None cases
      |> Option.value ~default:lockset

and walk_apply st w env ~loop lockset e f args =
  let walk_args lockset =
    List.fold_left
      (fun lockset (_, a) ->
        match (strip a).pexp_desc with
        | Pexp_fun _ | Pexp_function _ ->
            ignore (walk st w env ~loop lockset a);
            lockset
        | _ -> walk st w env ~loop lockset a)
      lockset args
  in
  match head_rev f with
  | "lock" :: "Mutex" :: _ -> (
      match positional args with
      | m :: _ ->
          let lockset = walk_args lockset in
          SS.add (lock_name m) lockset
      | [] -> walk_args lockset)
  | "unlock" :: "Mutex" :: _ -> (
      match positional args with
      | m :: _ ->
          let lockset = walk_args lockset in
          SS.remove (lock_name m) lockset
      | [] -> walk_args lockset)
  | "protect" :: "Mutex" :: _ -> (
      match positional args with
      | m :: thunk :: _ -> (
          let inner = SS.add (lock_name m) lockset in
          ignore (walk st w env ~loop lockset m);
          (match (strip thunk).pexp_desc with
          | Pexp_fun (_, _, pat, body) ->
              ignore (walk st w (add_pat env pat) ~loop inner body)
          | Pexp_ident { txt; _ } -> (
              match flatten txt with
              | [ name ] -> (
                  mark_called st w name;
                  match resolve_fn st env name with
                  | Some sum -> propagate w env inner sum
                  | None -> ())
              | _ -> ())
          | _ -> ignore (walk st w env ~loop lockset thunk));
          lockset)
      | _ -> walk_args lockset)
  | "wait" :: "Condition" :: _ ->
      if not loop then
        emit st "condvar-recheck" e.pexp_loc
          "Condition.wait outside a predicate-rechecking loop misses \
           wakeups that fire before the wait (and spurious wakeups break \
           it); re-test the predicate in a while/let-rec loop around the \
           wait, as Wakeup.park does";
      walk_args lockset
  | "get" :: "Atomic" :: _ ->
      (match positional args with
      | p :: _ -> Hashtbl.replace w.w_got (path_str p) ()
      | [] -> ());
      walk_args lockset
  | "set" :: "Atomic" :: _ ->
      (match positional args with
      | p :: _ ->
          let path = path_str p in
          if SS.is_empty lockset && Hashtbl.mem w.w_got path then
            emit st "atomic-rmw" e.pexp_loc
              (sprintf
                 "Atomic.get of %s earlier in this function followed by \
                  Atomic.set is a read-modify-write with a lost-update \
                  window; use Atomic.fetch_and_add/compare_and_set, or \
                  serialize the set under the mutex"
                 path)
      | [] -> ());
      walk_args lockset
  | ("!" | ":=" | "incr" | "decr" as op) :: rest
    when rest = [] || rest = [ "Stdlib" ] -> (
      match positional args with
      | r :: tl ->
          let what = if String.equal op "!" then "read" else "write" in
          (match (strip r).pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match flatten txt with
              | [ name ] ->
                  check_var_access st w env lockset e.pexp_loc name
                    (sprintf "ref %s" what)
              | _ -> ())
          | _ -> ignore (walk st w env ~loop lockset r));
          List.fold_left (fun ls a -> walk st w env ~loop ls a) lockset tl
      | [] -> lockset)
  | ("set" | "unsafe_set" | "fill" | "blit") :: ("Array" | "Bytes") :: _ -> (
      match positional args with
      | base :: _ ->
          (match (strip base).pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match flatten txt with
              | [ name ] ->
                  check_var_access st w env lockset e.pexp_loc name
                    "array write"
              | _ -> ())
          | _ -> ());
          walk_args lockset
      | [] -> walk_args lockset)
  | fn :: m :: _ when container_module m || String.equal m "Rng" -> (
      if mutator m fn then
        match positional args with
        | base :: _ -> (
            match (strip base).pexp_desc with
            | Pexp_ident { txt; _ } -> (
                match flatten txt with
                | [ name ] ->
                    check_var_access st w env lockset e.pexp_loc name
                      (sprintf "%s.%s" m fn)
                | _ -> ())
            | _ -> ())
        | [] -> ());
      walk_args lockset
  | rev -> (
      match spawn_api rev with
      | Some api ->
          walk_spawn st w env ~loop lockset api args;
          lockset
      | None -> (
          match head_rev f with
          | [ name ] when resolve_fn st env name <> None ->
              mark_called st w name;
              (match resolve_fn st env name with
              | Some sum -> propagate w env lockset sum
              | None -> ());
              walk_args lockset
          | _ ->
              let lockset = walk st w env ~loop lockset f in
              walk_args lockset))

(* At a spawn site every function-valued argument escapes to another
   thread: closure literals are re-analyzed in a spawned context with
   an empty lock set; named local functions contribute their fixpoint
   summaries; partial applications do both, and additionally flag
   thread-private mutable bindings handed over as arguments. *)
and walk_spawn st w env ~loop lockset api args =
  List.iter
    (fun (_, (a : expression)) ->
      match (strip a).pexp_desc with
      | Pexp_fun _ | Pexp_function _ ->
          let sum =
            analyze_fn st env ~self:None ~recursive:false ~spawned:true a
          in
          emit_spawn st api sum
      | Pexp_ident { txt; _ } -> (
          match flatten txt with
          | [ name ] -> (
              match SM.find_opt name env with
              | Some (Local_mutable what) | Some (Captured_mutable what) ->
                  emit st "domain-escape" a.pexp_loc
                    (escape_msg api (sprintf "%s, a %s" name what))
              | _ -> (
                  mark_called st w name;
                  match resolve_fn st env name with
                  | Some sum -> emit_spawn st api sum
                  | None -> ()))
          | _ -> ())
      | Pexp_apply (h, inner) -> (
          (* Only a partial application of a known local function builds
             a closure over its arguments; anything else ([!r],
             [sprintf ...]) evaluates to a value on the spawning thread
             and is walked as ordinary code. *)
          match head_rev h with
          | [ name ] when resolve_fn st env name <> None ->
              mark_called st w name;
              (match resolve_fn st env name with
              | Some sum -> emit_spawn st api sum
              | None -> ());
              List.iter
                (fun (_, (ia : expression)) ->
                  match (strip ia).pexp_desc with
                  | Pexp_ident { txt; _ } -> (
                      match flatten txt with
                      | [ n ] -> (
                          match SM.find_opt n env with
                          | Some (Local_mutable what)
                          | Some (Captured_mutable what) ->
                              emit st "domain-escape" ia.pexp_loc
                                (escape_msg api (sprintf "%s, a %s" n what))
                          | _ -> ())
                      | _ -> ())
                  | _ -> ignore (walk st w env ~loop lockset ia))
                inner
          | _ -> ignore (walk st w env ~loop lockset a))
      | _ -> ignore (walk st w env ~loop lockset a))
    args

(* Analyze one function (a [fun]/[function] chain): parameters shadow,
   enclosing thread-private state is seen as captured, the body starts
   with no locks held. Returns the function's summary. *)
and analyze_fn st env ~self ~recursive ~spawned expr =
  ignore spawned;
  let sum = fresh_summary () in
  let w = { w_sum = sum; w_self = self; w_got = Hashtbl.create 4 } in
  let env = capture_env env in
  let env =
    match self with Some n -> SM.add n Plain env | None -> env
  in
  let rec go env e =
    match (strip e).pexp_desc with
    | Pexp_fun (_, default, pat, body) ->
        Option.iter
          (fun d -> ignore (walk st w env ~loop:recursive SS.empty d))
          default;
        go (add_pat env pat) body
    | Pexp_function cases ->
        List.iter
          (fun (c : case) ->
            let env = add_pat env c.pc_lhs in
            Option.iter
              (fun g -> ignore (walk st w env ~loop:recursive SS.empty g))
              c.pc_guard;
            ignore (walk st w env ~loop:recursive SS.empty c.pc_rhs))
          cases
    | _ -> ignore (walk st w env ~loop:recursive SS.empty e)
  in
  go env expr;
  sum

(* --- per-file driver --- *)

(* Top-level bindings, flattened through (possibly functor) submodule
   structures in declaration order. *)
type top = {
  tp_name : string option;  (* None for [let () = ...] / Pstr_eval *)
  tp_expr : expression;
  tp_recursive : bool;
  tp_guard : string option;
  tp_loc : Location.t;
}

let rec collect_tops acc (items : structure) =
  List.fold_left
    (fun acc (si : structure_item) ->
      match si.pstr_desc with
      | Pstr_value (rf, vbs) ->
          List.fold_left
            (fun acc vb ->
              let name =
                match pat_vars [] vb.pvb_pat with [ n ] -> Some n | _ -> None
              in
              {
                tp_name = name;
                tp_expr = vb.pvb_expr;
                tp_recursive = rf = Asttypes.Recursive;
                tp_guard = binding_guard vb;
                tp_loc = vb.pvb_loc;
              }
              :: acc)
            acc vbs
      | Pstr_eval (e, _) ->
          {
            tp_name = None;
            tp_expr = e;
            tp_recursive = false;
            tp_guard = None;
            tp_loc = si.pstr_loc;
          }
          :: acc
      | Pstr_module mb -> collect_tops_mod acc mb.pmb_expr
      | Pstr_recmodule mbs ->
          List.fold_left (fun acc mb -> collect_tops_mod acc mb.pmb_expr) acc
            mbs
      | _ -> acc)
    acc items

and collect_tops_mod acc (me : module_expr) =
  match me.pmod_desc with
  | Pmod_structure items -> collect_tops acc items
  | Pmod_functor (_, body) -> collect_tops_mod acc body
  | Pmod_constraint (me, _) -> collect_tops_mod acc me
  | _ -> acc

(* The completeness half of [guarded-by]: a record that carries a
   [Mutex.t] field declares a locking story; every mutable or container
   sibling must then say which lock covers it (or why none does). *)
let check_record_completeness st =
  let by_type = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (fi : E.field_info) ->
      match Hashtbl.find_opt by_type fi.fi_type with
      | None ->
          order := fi.fi_type :: !order;
          Hashtbl.add by_type fi.fi_type [ fi ]
      | Some l -> Hashtbl.replace by_type fi.fi_type (fi :: l))
    st.st_local_fields;
  List.iter
    (fun ty ->
      let fields = List.rev (Hashtbl.find by_type ty) in
      if List.exists (fun (fi : E.field_info) -> fi.fi_mutex) fields then
        List.iter
          (fun (fi : E.field_info) ->
            if
              (fi.fi_mutable || fi.fi_container)
              && (not fi.fi_atomic) && (not fi.fi_mutex)
              && fi.fi_guard = None
              && not (List.mem "guarded-by" fi.fi_allowed)
            then
              emit st "guarded-by" fi.fi_loc
                (sprintf
                   "mutable field %s of record %s, which carries a Mutex.t, \
                    has no locking story: annotate it [@guarded_by \
                    \"<mutex-field>\"], make it Atomic.t, or exempt it with \
                    a label-level [@lint.allow \"guarded-by\"] stating the \
                    single-writer/pre-publication invariant"
                   fi.fi_name ty))
          fields)
    (List.rev !order)

(* Build the top-level environment a round sees: value bindings become
   Captured_mutable (top-level mutable state is shared from birth),
   Atomic_val, or Guarded_ref; functions resolve via [st_funcs]. *)
let top_env_entry env (t : top) =
  match t.tp_name with
  | None -> env
  | Some n ->
      if is_function t.tp_expr then env
      else (
        match t.tp_guard with
        | Some m -> SM.add n (Guarded_ref m) env
        | None -> (
            match mutable_creation t.tp_expr with
            | Some "atomic" -> SM.add n Atomic_val env
            | Some what -> SM.add n (Captured_mutable what) env
            | None -> SM.add n Plain env))

let analyze_structure ~fields ~file (str : structure) =
  let st =
    {
      st_file = file;
      st_local_fields =
        List.filter (fun (fi : E.field_info) -> String.equal fi.fi_file file) fields;
      st_all_fields = fields;
      st_funcs = Hashtbl.create 16;
      st_called = Hashtbl.create 16;
      st_report = false;
      st_out = [];
    }
  in
  let tops = List.rev (collect_tops [] str) in
  (* Three rounds: round 1 seeds summaries in declaration order, rounds
     2..3 re-run with callee summaries available so requirements and raw
     accesses propagate through [let rec ... and] back-references and
     helper chains; findings are only emitted in the final round. *)
  let rounds = 3 in
  for round = 1 to rounds do
    st.st_report <- round = rounds;
    Hashtbl.reset st.st_called;
    ignore
      (List.fold_left
         (fun env t ->
           (if is_function t.tp_expr then
              let sum =
                analyze_fn st env
                  ~self:t.tp_name ~recursive:t.tp_recursive ~spawned:false
                  t.tp_expr
              in
              match t.tp_name with
              | Some n -> Hashtbl.replace st.st_funcs n sum
              | None -> ()
            else
              (* Module-initialization code runs unlocked on the loading
                 thread: its guarded-access requirements are violations
                 outright. *)
              let sum =
                analyze_fn st env ~self:None ~recursive:false ~spawned:false
                  t.tp_expr
              in
              if st.st_report then
                List.iter
                  (fun r ->
                    emit st "guarded-by" r.rq_loc
                      (sprintf
                         "%s is [@guarded_by %S] but module-initialization \
                          code reaches it without holding %s"
                         r.rq_desc r.rq_lock r.rq_lock))
                  sum.sm_reqs);
           top_env_entry env t)
         SM.empty tops)
  done;
  (* Entry points: a top-level function nobody in this file references
     must satisfy its own lock requirements — exported helpers that
     lean on a caller's lock need a suppression stating the contract. *)
  List.iter
    (fun t ->
      match t.tp_name with
      | Some n when is_function t.tp_expr && not (Hashtbl.mem st.st_called n)
        -> (
          match Hashtbl.find_opt st.st_funcs n with
          | Some sum ->
              List.iter
                (fun r ->
                  emit st "guarded-by" r.rq_loc
                    (sprintf
                       "%s is [@guarded_by %S] but %s (no in-file caller \
                        holds the lock for it) reaches this access without \
                        holding %s"
                       r.rq_desc r.rq_lock n r.rq_lock))
                sum.sm_reqs
          | None -> ())
      | _ -> ())
    tops;
  check_record_completeness st;
  (* Deduplicate (a function spawned at several sites reports each
     access once) and restore walk order. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun f ->
      let key =
        (f.cf_rule, f.cf_loc.Location.loc_start.Lexing.pos_lnum,
         f.cf_loc.Location.loc_start.Lexing.pos_cnum, f.cf_msg)
      in
      if Hashtbl.mem seen key then false
      else (
        Hashtbl.add seen key ();
        true))
    (List.rev st.st_out)

(* --- memoized entry point --- *)

(* Four registered rules share one analysis; memoize per (file,
   structure) so the engine's four [on_file] hooks pay for one walk.
   Keyed by physical equality of the parsetree: a re-parse of the same
   path invalidates naturally. *)
(* The linter is strictly single-threaded (the CLI and the test suite
   drive it from one thread; nothing here ever meets Pool), so a shared
   memo table cannot race. *)
let[@lint.allow "domain-safety"] memo :
    (string, structure * finding list) Hashtbl.t =
  Hashtbl.create 16

let analyze ~fields ~file str =
  match Hashtbl.find_opt memo file with
  | Some (s, fs) when s == str -> fs
  | _ ->
      let fs = analyze_structure ~fields ~file str in
      Hashtbl.replace memo file (str, fs);
      fs

let findings_for ~rule ctx str =
  List.iter
    (fun f -> if String.equal f.cf_rule rule then ctx.E.add f.cf_loc f.cf_msg)
    (analyze ~fields:ctx.E.fields ~file:ctx.E.file str)

