(** The rule registry. Each rule documents the determinism claim it
    protects ({!Lint_engine.rule.protects}); the README's "Static
    analysis" table is generated from the same metadata via
    [bamboo lint --rules]. *)

val all : Lint_engine.rule list
(** Registry order is presentation order; findings are sorted by
    location regardless. *)

val no_ambient_nondeterminism : Lint_engine.rule
val no_polymorphic_compare : Lint_engine.rule
val no_poly_minmax : Lint_engine.rule
val no_order_leak : Lint_engine.rule
val domain_safety : Lint_engine.rule
val exhaustive_trace_match : Lint_engine.rule
val exhaustive_metric_names : Lint_engine.rule
