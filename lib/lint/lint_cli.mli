(** Cmdliner front end for the linter; see README "Static analysis". *)

val cmd : unit Cmdliner.Cmd.t
(** The [lint] subcommand, grouped into the main [bamboo] CLI. *)

val main : unit -> int
(** Entry point for the standalone [bamboo_lint] executable. Returns the
    process exit code: 0 clean, 1 error-severity findings, 2 usage
    error. *)
