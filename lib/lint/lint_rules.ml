(* The rule registry: every determinism and domain-safety rule this
   repository enforces, with the claim each one protects. The engine
   ({!Lint_engine}) walks every parsetree once per hook kind and calls
   the applicable rules; rules never see files outside their scope.

   All checks are purely syntactic (parsetree-level, no typing), so each
   one targets patterns that are unambiguous at the AST: a bare
   [compare], a literal tuple used as a Hashtbl key, a top-level [ref].
   Anything the rules cannot see (e.g. a polymorphic compare reached
   through a functor) is out of scope by design — the goal is to make
   the common regressions impossible, not to re-implement the typer. *)

open Parsetree
module E = Lint_engine

let sprintf = Printf.sprintf

(* --- scopes --- *)

let in_lib segs = E.under [ "lib" ] segs

(* Modules on the simulator's hot path, where a polymorphic compare or
   hash is both a cost and a determinism hazard. This is the PR 1
   [Float.compare] / PR 3 monomorphic-heap class of bug. *)
let hot_dirs =
  [
    [ "lib"; "sim" ];
    [ "lib"; "core" ];
    [ "lib"; "forest" ];
    [ "lib"; "quorum" ];
    [ "lib"; "util" ];
    [ "lib"; "mempool" ];
    [ "lib"; "types" ];
  ]

let in_hot segs = E.under_any hot_dirs segs

(* Everything reachable from [Pool.map] worker domains. lib/network is
   excluded: the threaded deployment transports run on system threads
   behind mutexes and are never entered from the domain pool. *)
let in_domain_scope segs = in_lib segs && not (E.under [ "lib"; "network" ] segs)

let in_check segs = E.under [ "lib"; "check" ] segs

(* --- helpers --- *)

let flatten lid = Longident.flatten lid

let rec strip e =
  match e.pexp_desc with Pexp_constraint (e, _) -> strip e | _ -> e

let positional args =
  List.filter_map
    (function Asttypes.Nolabel, a -> Some a | _ -> None)
    args

(* --- rule 1: no-ambient-nondeterminism --- *)

let check_ambient ctx e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match flatten txt with
      | [ "Random"; fn ] ->
          ctx.E.add e.pexp_loc
            (sprintf
               "Random.%s draws from the ambient global RNG; use a per-stream \
                Rng.t (or an explicit Random.State.t) owned by the scenario"
               fn)
      | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
          ctx.E.add e.pexp_loc
            "wall-clock read in lib/; use virtual time (Sim.now) so runs are \
             reproducible"
      | _ -> ())
  | _ -> ()

let no_ambient_nondeterminism =
  {
    E.id = "no-ambient-nondeterminism";
    severity = E.Error;
    summary =
      "ban global Random.*, Unix.gettimeofday/time and Sys.time in lib/ \
       (virtual sim time and per-stream RNGs only)";
    protects =
      "seed-reproducible runs: the same (config, seed) always produces the \
       same trace";
    scope = in_lib;
    on_expr = Some check_ambient;
    on_structure_item = None;
    on_typ = None;
    on_file = None;
  }

(* --- rule 2: no-polymorphic-compare --- *)

let compare_idents =
  [ [ "compare" ]; [ "Stdlib"; "compare" ]; [ "Pervasives"; "compare" ] ]

let hash_idents =
  [
    [ "Hashtbl"; "hash" ];
    [ "Stdlib"; "Hashtbl"; "hash" ];
    [ "Hashtbl"; "seeded_hash" ];
  ]

let cmp_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

let hashtbl_key_fns = [ "add"; "replace"; "find"; "find_opt"; "mem"; "remove" ]

(* A syntactically structured (boxed, multi-word) value: comparing or
   hashing one goes through the generic runtime walk. *)
let structured e =
  match (strip e).pexp_desc with
  | Pexp_tuple _ | Pexp_record _
  | Pexp_construct (_, Some _)
  | Pexp_variant (_, Some _)
  | Pexp_array _ ->
      true
  | _ -> false

let check_poly ctx e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } when List.mem (flatten txt) compare_idents ->
      ctx.E.add e.pexp_loc
        "polymorphic compare walks the generic runtime representation; use \
         Int.compare / Float.compare / String.compare or a dedicated \
         comparator"
  | Pexp_ident { txt; _ } when List.mem (flatten txt) hash_idents ->
      ctx.E.add e.pexp_loc
        "polymorphic Hashtbl.hash on a structured value is a determinism and \
         performance hazard; hash a canonical immediate (or use \
         Hashtbl.Make with a monomorphic hash)"
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let pos = positional args in
      match flatten txt with
      | [ op ] when List.mem op cmp_ops && List.exists structured pos ->
          ctx.E.add e.pexp_loc
            (sprintf
               "polymorphic (%s) applied to a tuple/record/constructor \
                literal compares structurally at runtime; compare the \
                fields explicitly"
               op)
      | [ "Hashtbl"; fn ] when List.mem fn hashtbl_key_fns -> (
          match pos with
          | _tbl :: key :: _ when structured key ->
              ctx.E.add e.pexp_loc
                (sprintf
                   "Hashtbl.%s with a composite literal key hashes a boxed \
                    value with the polymorphic hash; pack the key into an \
                    immediate or use Hashtbl.Make with a monomorphic \
                    hash/equal"
                   fn)
          | _ -> ())
      | _ -> ())
  | _ -> ()

let check_poly_typ ctx t =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, key :: _)
    when (match flatten txt with
         | [ "Hashtbl"; "t" ] | [ "Stdlib"; "Hashtbl"; "t" ] -> true
         | _ -> false) -> (
      match key.ptyp_desc with
      | Ptyp_tuple _ ->
          ctx.E.add t.ptyp_loc
            "tuple-keyed Hashtbl.t hashes and compares boxed keys with the \
             polymorphic primitives on every operation; pack the key into \
             an immediate or use Hashtbl.Make with a monomorphic key module"
      | _ -> ())
  | _ -> ()

let no_polymorphic_compare =
  {
    E.id = "no-polymorphic-compare";
    severity = E.Error;
    summary =
      "flag bare compare, Hashtbl.hash, structural (=)/(<)/... on composite \
       literals and composite Hashtbl keys in hot-path modules";
    protects =
      "hot-path cost and representation-independence: results must not \
       depend on the generic compare's walk over boxed values";
    scope = in_hot;
    on_expr = Some check_poly;
    on_structure_item = None;
    on_typ = Some check_poly_typ;
    on_file = None;
  }

(* --- rule 2b (warn): no-poly-minmax --- *)

let minmax_idents = [ [ "min" ]; [ "max" ]; [ "Stdlib"; "min" ]; [ "Stdlib"; "max" ] ]

let is_float_lit e =
  match (strip e).pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

let check_minmax ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when List.mem (flatten txt) minmax_idents
         && List.exists is_float_lit (positional args) ->
      ctx.E.add e.pexp_loc
        "polymorphic min/max on floats funnels through the generic compare \
         (it is not specialized as a function call); use Float.min/Float.max"
  | _ -> ()

let no_poly_minmax =
  {
    E.id = "no-poly-minmax";
    severity = E.Warn;
    summary =
      "flag polymorphic min/max applied to float literals in hot-path \
       modules (use Float.min/Float.max)";
    protects = "hot-path cost: generic compare per call on the float path";
    scope = in_hot;
    on_expr = Some check_minmax;
    on_structure_item = None;
    on_typ = None;
    on_file = None;
  }

(* --- rule 3: no-order-leak --- *)

let order_fns = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let hashtbl_module m =
  String.equal m "Hashtbl" || String.equal m "Tbl"
  || String.ends_with ~suffix:"_tbl" m
  || String.ends_with ~suffix:"_Tbl" m

let check_order ctx e =
  match e.pexp_desc with
  | Pexp_ident { txt; loc = _ } -> (
      match List.rev (flatten txt) with
      | fn :: m :: _ when hashtbl_module m && List.mem fn order_fns ->
          ctx.E.add e.pexp_loc
            (sprintf
               "%s.%s visits bindings in unspecified bucket order; sort \
                first (Tbl.sorted_bindings) before the result can reach a \
                trace sink, ledger or rendered row — or suppress with a \
                justification if the accumulation is order-insensitive"
               m fn)
      | _ -> ())
  | _ -> ()

let no_order_leak =
  {
    E.id = "no-order-leak";
    severity = E.Error;
    summary =
      "flag Hashtbl.iter/fold/to_seq (and any *_tbl module's) in lib/: \
       bucket order must never reach output";
    protects =
      "byte-identical output at any --jobs value: no rendered row, trace \
       event or ledger may depend on hash-bucket layout";
    scope = in_lib;
    on_expr = Some check_order;
    on_structure_item = None;
    on_typ = None;
    on_file = None;
  }

(* --- rule 4: domain-safety --- *)

let mutable_creator e =
  let rec go e =
    match e.pexp_desc with
    | Pexp_constraint (e, _) -> go e
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
        match flatten txt with
        | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "a ref cell"
        | [ "Hashtbl"; "create" ] -> Some "a Hashtbl"
        | [ "Buffer"; "create" ] -> Some "a Buffer"
        | [ "Queue"; "create" ] -> Some "a Queue"
        | [ "Stack"; "create" ] -> Some "a Stack"
        | [ "Array"; ("make" | "init" | "create_float") ] ->
            Some "a mutable array"
        | [ "Bytes"; ("create" | "make") ] -> Some "mutable bytes"
        | _ -> None)
    | Pexp_tuple es -> List.find_map go es
    | _ -> None
  in
  go e

let check_domain ctx si =
  match si.pstr_desc with
  | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match mutable_creator vb.pvb_expr with
          | Some what ->
              ctx.E.add vb.pvb_expr.pexp_loc
                (sprintf
                   "top-level binding creates %s shared by every domain; \
                    Pool workers may race on it — make it per-run state, \
                    use Atomic, or suppress with a justification that it is \
                    only touched before workers start"
                   what)
          | None -> ())
        vbs
  | _ -> ()

let domain_safety =
  {
    E.id = "domain-safety";
    severity = E.Error;
    summary =
      "flag top-level refs/Hashtbls/Buffers/arrays in modules reachable \
       from Pool.map worker domains";
    protects =
      "data-race freedom of the domain-parallel experiment driver \
       (OCaml 5 domains share the heap; top-level state is shared state)";
    scope = in_domain_scope;
    on_expr = None;
    on_structure_item = Some check_domain;
    on_typ = None;
    on_file = None;
  }

(* --- rule 5: exhaustive-trace-match --- *)

let rec pat_ctors acc p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) -> (
      let acc =
        match List.rev (flatten txt) with c :: _ -> c :: acc | [] -> acc
      in
      match arg with Some (_, p) -> pat_ctors acc p | None -> acc)
  | Ppat_or (a, b) -> pat_ctors (pat_ctors acc a) b
  | Ppat_alias (p, _)
  | Ppat_constraint (p, _)
  | Ppat_exception p
  | Ppat_open (_, p)
  | Ppat_lazy p ->
      pat_ctors acc p
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pat_ctors acc ps
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, p) -> pat_ctors acc p) acc fields
  | Ppat_variant (_, Some p) -> pat_ctors acc p
  | _ -> acc

let rec catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> catch_all p
  | Ppat_or (a, b) -> catch_all a || catch_all b
  | _ -> false

let check_trace_match ctx e =
  match e.pexp_desc with
  | Pexp_match (_, cases) | Pexp_function cases ->
      let ctors =
        List.concat_map (fun c -> pat_ctors [] c.pc_lhs) cases
      in
      if List.exists (fun c -> List.mem c ctx.E.trace_kinds) ctors then
        List.iter
          (fun c ->
            if Option.is_none c.pc_guard && catch_all c.pc_lhs then
              ctx.E.add c.pc_lhs.ppat_loc
                "catch-all branch in a match over Trace.kind silently \
                 ignores newly added event kinds; enumerate the kinds this \
                 monitor deliberately skips")
          cases
  | _ -> ()

let exhaustive_trace_match =
  {
    E.id = "exhaustive-trace-match";
    severity = E.Error;
    summary =
      "forbid catch-all _ branches on Trace event-kind matches inside \
       lib/check monitors";
    protects =
      "oracle completeness: a new trace kind must be classified by every \
       invariant monitor, not silently dropped";
    scope = in_check;
    on_expr = Some check_trace_match;
    on_structure_item = None;
    on_typ = None;
    on_file = None;
  }

(* --- rule 6: exhaustive-metric-names --- *)

let snake_case name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let check_metric_names ctx e =
  match E.metric_registration e with
  | None -> ()
  | Some (name, loc) ->
      if not (snake_case name) then
        ctx.E.add loc
          (sprintf
             "metric name %S is not snake_case ([a-z] then [a-z0-9_]); the \
              exporters and the bench compare gate key on exact names"
             name);
      (match List.assoc_opt name ctx.E.metric_names with
      | Some count when count >= 2 ->
          ctx.E.add loc
            (sprintf
               "metric name %S is registered at %d sites in lib/; a second \
                registration silently merges into the first handle's cells \
                — rename one, or share one registration"
               name count)
      | Some _ | None -> ())

let exhaustive_metric_names =
  {
    E.id = "exhaustive-metric-names";
    severity = E.Error;
    summary =
      "require every literal metric name registered in lib/ to be \
       snake_case and registered at exactly one site";
    protects =
      "metric-namespace integrity: exporters, dashboards and the bench \
       regression gate address metrics by exact name";
    scope = in_lib;
    on_expr = Some check_metric_names;
    on_structure_item = None;
    on_typ = None;
    on_file = None;
  }

(* --- rules 7-10: the concurrency pass (Lint_conc) --- *)

(* Four rule ids over one shared per-file dataflow analysis; the
   [on_file] hooks pull from a memoized walk (see {!Lint_conc}). The
   pass applies everywhere the linter looks — lib/, bin/ and examples/
   all contain threads or domain pools. *)

let conc_rule ~id ~summary ~protects =
  {
    E.id;
    severity = E.Error;
    summary;
    protects;
    scope = (fun _ -> true);
    on_expr = None;
    on_structure_item = None;
    on_typ = None;
    on_file = Some (fun ctx str -> Lint_conc.findings_for ~rule:id ctx str);
  }

let guarded_by =
  conc_rule ~id:"guarded-by"
    ~summary:
      "lock-set dataflow: fields/refs annotated [@guarded_by \"m\"] may \
       only be touched with mutex m held (per-function summaries discharge \
       helpers called under the lock); records carrying a Mutex.t must \
       annotate every mutable field"
    ~protects:
      "the threaded plane's locking discipline: every shared mutable field \
       names the mutex that serializes it, and the checker proves the name \
       is honored"

let domain_escape =
  conc_rule ~id:"domain-escape"
    ~summary:
      "closures/functions passed to Domain.spawn, Thread.create, \
       Pool.map/run, Wakeup.start_ticker or Http.start must not touch \
       unguarded mutable state (captured refs, unannotated mutable fields, \
       Hashtbl/Buffer/Queue/array/Rng mutation) without a lock"
    ~protects:
      "data-race freedom at thread boundaries: state crossing a spawn is \
       Atomic, lock-guarded, thread-private, or carries a written-down \
       justification"

let atomic_rmw =
  conc_rule ~id:"atomic-rmw"
    ~summary:
      "flag Atomic.get followed by Atomic.set of the same path in one \
       function with no lock held (use fetch_and_add/compare_and_set)"
    ~protects:
      "lost-update freedom on lock-free counters and cursors (the Ring \
       single-consumer protocol is the one audited exception)"

let condvar_recheck =
  conc_rule ~id:"condvar-recheck"
    ~summary:
      "require Condition.wait to sit inside a predicate-rechecking loop \
       (while body or let-rec function)"
    ~protects:
      "lost-wakeup freedom: the parked-flag doorbell protocol Wakeup \
       documents only works when waiters re-test their predicate"

(* --- registry --- *)

let all =
  [
    no_ambient_nondeterminism;
    no_polymorphic_compare;
    no_poly_minmax;
    no_order_leak;
    domain_safety;
    exhaustive_trace_match;
    exhaustive_metric_names;
    guarded_by;
    domain_escape;
    atomic_rmw;
    condvar_recheck;
  ]
