(** AST-level linter infrastructure.

    Parses .ml/.mli sources with the compiler's own parser
    (compiler-libs) and runs a registry of syntactic rules over the
    parsetrees. The rules themselves live in {!Lint_rules}; this module
    owns parsing, scoping, suppression handling, reporting and the JSON
    encoding of reports.

    Suppression syntax (all payloads are a single string-literal rule
    id; a suppression that matches no finding is an error):

    - [let[@lint.allow "rule-id"] x = ...] — covers the binding,
    - [(expr [@lint.allow "rule-id"])] — covers the expression,
    - [[@@@lint.allow "rule-id"]] — floating, covers the whole file. *)

type severity = Error | Warn

val severity_name : severity -> string

type finding = {
  file : string;
  line : int;  (** 1-based. *)
  col : int;  (** 0-based character offset, like the compiler's output. *)
  rule : string;
  severity : severity;
  message : string;
}

(** {2 Path scoping}

    Rules scope themselves with predicates over the ['/']-separated
    segments of a file's path, so ["lib/sim/sim.ml"] and
    ["../lib/sim/sim.ml"] land in the same scope. *)

val segments : string -> string list

val under : string list -> string list -> bool
(** [under ["lib"; "sim"] segs] holds when the consecutive segment
    sequence [lib/sim] occurs anywhere in [segs]. *)

val under_any : string list list -> string list -> bool

(** {2 Rules} *)

(** Record-field metadata collected by a pre-pass over every linted .ml
    source, for the concurrency rules in {!Lint_conc}. *)
type field_info = {
  fi_file : string;  (** File declaring the record type. *)
  fi_type : string;  (** Record type name. *)
  fi_name : string;  (** Field name. *)
  fi_loc : Location.t;  (** Label declaration site. *)
  fi_mutable : bool;
  fi_atomic : bool;  (** Declared type is [Atomic.t]. *)
  fi_container : bool;
      (** Hashtbl/Buffer/Queue/Stack/Heap/array-like declared type. *)
  fi_mutex : bool;  (** Declared type is [Mutex.t]. *)
  fi_guard : string option;  (** [[@guarded_by "m"]] annotation. *)
  fi_allowed : string list;
      (** Rule ids from label-level [[@lint.allow "id"]] exemptions
          (declarative: no orphan tracking, unlike expression/binding
          suppressions). *)
}

type rule_ctx = {
  add : Location.t -> string -> unit;
  file : string;  (** Path of the file being linted. *)
  trace_kinds : string list;
      (** Constructor names of [Bamboo_obs.Trace.kind], parsed from
          [lib/obs/trace.mli] when it is among the linted sources, else
          a built-in fallback. *)
  metric_names : (string * int) list;
      (** Literal metric names at [Registry.counter/gauge/histogram]
          registration sites across the linted lib/ sources, with how
          many times each name occurs; collected by a pre-pass (or
          supplied via [?metric_names]). *)
  fields : field_info list;
      (** Record-field metadata across every linted .ml source,
          collected by a pre-pass. *)
}

type rule = {
  id : string;
  severity : severity;
  summary : string;  (** One line for [--rules] and the README table. *)
  protects : string;  (** The determinism claim the rule defends. *)
  scope : string list -> bool;  (** Applied to the path's segments. *)
  on_expr : (rule_ctx -> Parsetree.expression -> unit) option;
  on_structure_item : (rule_ctx -> Parsetree.structure_item -> unit) option;
  on_typ : (rule_ctx -> Parsetree.core_type -> unit) option;
  on_file : (rule_ctx -> Parsetree.structure -> unit) option;
      (** Whole-file hook for dataflow passes that need every function
          of an implementation at once; never called for .mli files. *)
}

val default_trace_kinds : string list

val guard_payload : Parsetree.attribute -> string option
(** [Some "m"] for a well-formed [[@guarded_by "m"]] attribute, [None]
    otherwise; shared with {!Lint_conc} for value-binding annotations. *)

val metric_registration :
  Parsetree.expression -> (string * Location.t) option
(** Recognizes a [Registry.counter]/[Registry.gauge]/[Registry.histogram]
    application (any module-path prefix ending in [Registry]) whose
    unlabelled name argument is a string literal, returning the literal
    and its location. Computed names are not matched. *)

(** {2 Running the linter} *)

val lint_sources :
  ?trace_kinds:string list ->
  ?metric_names:(string * int) list ->
  ?only:(string -> bool) ->
  rules:rule list ->
  (string * string) list ->
  finding list
(** [lint_sources ~rules [(path, contents); ...]] lints in-memory
    sources (used by the test fixtures). Findings are sorted by
    [(file, line, col, rule)]. Unparseable sources produce a
    [parse-error] finding instead of aborting. [?only] restricts which
    files are linted and reported; cross-file pre-passes (trace kinds,
    metric names, record fields) always see every source. *)

val collect_files : string list -> (string list, string) result
(** Expand files and directories (recursively, skipping [_build],
    [.git] and [_opam]) into a sorted list of .ml/.mli files. *)

val lint_paths :
  ?trace_kinds:string list ->
  ?metric_names:(string * int) list ->
  ?only:(string -> bool) ->
  rules:rule list ->
  string list ->
  (int * finding list, string) result
(** [lint_paths ~rules paths] is [Ok (files_scanned, findings)], or
    [Error msg] when a path cannot be read (a usage error: exit 2).
    With [?only], [files_scanned] counts only the files that passed the
    filter (pre-passes still parse the whole tree). *)

(** {2 Reporting} *)

val errors : finding list -> int
val warnings : finding list -> int

val exit_code : finding list -> int
(** 0 when no error-severity findings remain, 1 otherwise (warnings do
    not fail the run). *)

val render : finding -> string
(** [file:line:col [rule-id] severity: message]. *)

val finding_to_json : finding -> Bamboo_util.Json.t

val report_to_json : files:int -> finding list -> Bamboo_util.Json.t
