(** Concurrency analysis pass behind the [guarded-by], [domain-escape],
    [atomic-rmw] and [condvar-recheck] rules.

    A per-file, summary-based dataflow analysis: a lock-set walk tracks
    [Mutex.lock]/[unlock]/[protect] regions (branch joins by
    intersection), per-function summaries carry lock requirements and
    unguarded mutable accesses through helper calls, and spawn sites
    ([Domain.spawn], [Thread.create], [Pool.map]/[run],
    [Wakeup.start_ticker], [Http.start]) check what the spawned body
    reaches. See the implementation header for the precise rule
    semantics and the deliberate syntactic approximations. *)

type finding = {
  cf_rule : string;  (** One of the four rule ids above. *)
  cf_loc : Location.t;
  cf_msg : string;
}

val analyze :
  fields:Lint_engine.field_info list ->
  file:string ->
  Parsetree.structure ->
  finding list
(** Run (or fetch the memoized result of) the shared analysis for one
    implementation file. Deterministic: findings come back in walk
    order, deduplicated by (rule, location, message). *)

val findings_for :
  rule:string -> Lint_engine.rule_ctx -> Parsetree.structure -> unit
(** [on_file] adapter: report the memoized findings carrying [rule]
    through [ctx.add]. The four registered rules share one walk. *)
