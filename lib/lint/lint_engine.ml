(* AST-level linter infrastructure.

   Every headline property of this reproduction — byte-identical
   experiment output at any job count, seed-reproducible fuzzing,
   trace-validated latency decomposition — rests on coding rules (no
   ambient randomness, no wall-clock reads, no unordered Hashtbl
   iteration reaching output, no shared mutable top-level state) that
   used to live only in review comments. This module turns them into a
   compiled checker: it parses every .ml/.mli under the given roots with
   the compiler's own parser (compiler-libs) and runs a registry of
   syntactic rules (see {!Lint_rules}) over the parsetrees.

   Findings are reported as [file:line:col [rule-id] severity: message]
   and can be suppressed inline:

   - [let[@lint.allow "rule-id"] x = ...] on a value binding,
   - [(expr [@lint.allow "rule-id"])] on an expression,
   - [[@@@lint.allow "rule-id"]] floating at the top of a file.

   A suppression that matches no finding is itself an error-severity
   finding ([orphan-suppression]), so stale allowances cannot linger. *)

type severity = Error | Warn

let severity_name = function Error -> "error" | Warn -> "warn"

type finding = {
  file : string;
  line : int;  (** 1-based. *)
  col : int;  (** 0-based character offset, like the compiler's output. *)
  rule : string;
  severity : severity;
  message : string;
}

(* --- path scoping --- *)

let segments path =
  String.map (function '\\' -> '/' | c -> c) path
  |> String.split_on_char '/'
  |> List.filter (fun s -> s <> "" && s <> ".")

let under dirs segs =
  let rec starts_with prefix l =
    match (prefix, l) with
    | [], _ -> true
    | _, [] -> false
    | p :: ps, x :: xs -> String.equal p x && starts_with ps xs
  in
  let rec scan = function
    | [] -> false
    | _ :: rest as l -> starts_with dirs l || scan rest
  in
  scan segs

let under_any dirss segs = List.exists (fun dirs -> under dirs segs) dirss

(* --- rules --- *)

(* Record-field metadata collected by a pre-pass over every linted .ml
   source, so the concurrency rules can classify a [t.field] access in
   one file against a type declared in another. Lookups go by field
   name with same-file declarations taking precedence (see
   {!Lint_conc}). *)
type field_info = {
  fi_file : string;  (* file declaring the record type *)
  fi_type : string;  (* record type name *)
  fi_name : string;  (* field name *)
  fi_loc : Location.t;  (* label declaration site *)
  fi_mutable : bool;
  fi_atomic : bool;  (* declared type is Atomic.t *)
  fi_container : bool;  (* Hashtbl/Buffer/Queue/Stack/Heap/array/... *)
  fi_mutex : bool;  (* declared type is Mutex.t *)
  fi_guard : string option;  (* [@guarded_by "m"] annotation *)
  fi_allowed : string list;  (* rule ids from label-level [@lint.allow] *)
}

type rule_ctx = {
  add : Location.t -> string -> unit;
  file : string;  (** Path of the file being linted. *)
  trace_kinds : string list;
      (** Constructor names of [Bamboo_obs.Trace.kind], parsed from
          [lib/obs/trace.mli] when it is among the linted sources. *)
  metric_names : (string * int) list;
      (** Literal metric names at [Registry.counter/gauge/histogram]
          registration sites across the linted lib/ sources, with how
          many times each name occurs. *)
  fields : field_info list;
      (** Record-field metadata across every linted .ml source. *)
}

type rule = {
  id : string;
  severity : severity;
  summary : string;  (** One line for [--rules] and the README table. *)
  protects : string;  (** The determinism claim the rule defends. *)
  scope : string list -> bool;  (** Applied to the path's segments. *)
  on_expr : (rule_ctx -> Parsetree.expression -> unit) option;
  on_structure_item : (rule_ctx -> Parsetree.structure_item -> unit) option;
  on_typ : (rule_ctx -> Parsetree.core_type -> unit) option;
  on_file : (rule_ctx -> Parsetree.structure -> unit) option;
      (** Whole-file hook for dataflow passes that need every function
          of an implementation at once; never called for .mli files. *)
}

(* Fallback when lib/obs/trace.mli is not among the linted sources (for
   instance when linting a single file); kept in sync by the fixture in
   test_lint.ml that compares it against the parsed list. *)
let default_trace_kinds =
  [
    "Proposal_sent";
    "Proposal_received";
    "Vote_sent";
    "Vote_received";
    "Qc_formed";
    "Timeout_fired";
    "Timeout_received";
    "View_change";
    "Commit";
    "Fork_prune";
    "Tx_enqueue";
    "Tx_dequeue";
    "Service";
    "Gauge";
    "Fault_inject";
    "Fault_heal";
  ]

(* --- metric-registration recognition --- *)

(* A call whose head identifier flattens to [... Registry.counter],
   [... Registry.gauge] or [... Registry.histogram] and that passes a
   string literal as its unlabelled name argument. Instrumented modules
   alias [module Registry = Bamboo_metrics.Registry] precisely so these
   sites stay recognizable; calls forwarding a computed name (e.g. the
   probe's gauge registration) are intentionally not matched. *)
let metric_registration (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      match List.rev (Longident.flatten txt) with
      | fn :: "Registry" :: _
        when String.equal fn "counter" || String.equal fn "gauge"
             || String.equal fn "histogram" ->
          List.find_map
            (fun (label, (arg : Parsetree.expression)) ->
              match (label, arg.Parsetree.pexp_desc) with
              | Asttypes.Nolabel, Pexp_constant (Pconst_string (name, _, _))
                ->
                  Some (name, arg.Parsetree.pexp_loc)
              | _ -> None)
            args
      | _ -> None)
  | _ -> None

(* --- parsing --- *)

type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

let pos_pair (p : Lexing.position) = (p.pos_lnum, p.pos_cnum - p.pos_bol)

let parse ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  try
    if Filename.check_suffix path ".mli" then Ok (Intf (Parse.interface lexbuf))
    else Ok (Impl (Parse.implementation lexbuf))
  with exn ->
    let line, col, message =
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
          let msg = report.Location.main in
          let line, col = pos_pair msg.Location.loc.Location.loc_start in
          (line, col, Format.asprintf "%t" msg.Location.txt)
      | Some `Already_displayed | None -> (1, 0, Printexc.to_string exn)
    in
    Error { file = path; line; col; rule = "parse-error"; severity = Error; message }

(* --- raw findings --- *)

let raw_findings ~rules ~trace_kinds ~metric_names ~fields ~path ~segs ast =
  let out = ref [] in
  let active = List.filter (fun r -> r.scope segs) rules in
  let hooks select =
    List.filter_map
      (fun r ->
        match select r with
        | None -> None
        | Some check ->
            let ctx =
              {
                add =
                  (fun (loc : Location.t) message ->
                    let line, col = pos_pair loc.Location.loc_start in
                    out :=
                      {
                        file = path;
                        line;
                        col;
                        rule = r.id;
                        severity = r.severity;
                        message;
                      }
                      :: !out);
                file = path;
                trace_kinds;
                metric_names;
                fields;
              }
            in
            Some (check ctx))
      active
  in
  let expr_hooks = hooks (fun r -> r.on_expr) in
  let str_hooks = hooks (fun r -> r.on_structure_item) in
  let typ_hooks = hooks (fun r -> r.on_typ) in
  let file_hooks = hooks (fun r -> r.on_file) in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      Ast_iterator.expr =
        (fun it e ->
          List.iter (fun f -> f e) expr_hooks;
          default.Ast_iterator.expr it e);
      structure_item =
        (fun it si ->
          List.iter (fun f -> f si) str_hooks;
          default.Ast_iterator.structure_item it si);
      typ =
        (fun it t ->
          List.iter (fun f -> f t) typ_hooks;
          default.Ast_iterator.typ it t);
    }
  in
  (match ast with
  | Impl str ->
      List.iter (fun f -> f str) file_hooks;
      it.Ast_iterator.structure it str
  | Intf sg -> it.Ast_iterator.signature it sg);
  List.rev !out

(* --- suppressions --- *)

type suppression = {
  sup_rule : string;
  sup_line : int;
  sup_col : int;  (* where to report orphans *)
  sup_from : int * int;
  sup_to : int * int;  (* inclusive span the suppression covers *)
  mutable sup_used : bool;
}

let allow_name = "lint.allow"

(* [Some (Ok id)] for a well-formed [@lint.allow "id"], [Some (Error _)]
   for a malformed payload, [None] for unrelated attributes. *)
let allow_payload (attr : Parsetree.attribute) =
  if not (String.equal attr.Parsetree.attr_name.txt allow_name) then None
  else
    match attr.Parsetree.attr_payload with
    | Parsetree.PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ( { pexp_desc = Pexp_constant (Pconst_string (id, _, _)); _ },
                  _ );
            _;
          };
        ] ->
        Some (Ok id)
    | _ -> Some (Error "[@lint.allow] expects a single string-literal rule id")

let whole_file_span = ((1, 0), (max_int, max_int))

let collect_suppressions ~path ast =
  let sups = ref [] and errs = ref [] in
  let record ~span (attr : Parsetree.attribute) =
    match allow_payload attr with
    | None -> ()
    | Some (Error message) ->
        let line, col = pos_pair attr.Parsetree.attr_loc.Location.loc_start in
        errs :=
          {
            file = path;
            line;
            col;
            rule = "orphan-suppression";
            severity = Error;
            message;
          }
          :: !errs
    | Some (Ok id) ->
        let line, col = pos_pair attr.Parsetree.attr_loc.Location.loc_start in
        let sup_from, sup_to = span in
        sups :=
          {
            sup_rule = id;
            sup_line = line;
            sup_col = col;
            sup_from;
            sup_to;
            sup_used = false;
          }
          :: !sups
  in
  let span_of (loc : Location.t) =
    (pos_pair loc.Location.loc_start, pos_pair loc.Location.loc_end)
  in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      Ast_iterator.expr =
        (fun it e ->
          List.iter
            (record ~span:(span_of e.Parsetree.pexp_loc))
            e.Parsetree.pexp_attributes;
          default.Ast_iterator.expr it e);
      value_binding =
        (fun it vb ->
          List.iter
            (record ~span:(span_of vb.Parsetree.pvb_loc))
            vb.Parsetree.pvb_attributes;
          default.Ast_iterator.value_binding it vb);
      structure_item =
        (fun it si ->
          (match si.Parsetree.pstr_desc with
          | Pstr_attribute attr -> record ~span:whole_file_span attr
          | Pstr_eval (_, attrs) ->
              List.iter (record ~span:(span_of si.Parsetree.pstr_loc)) attrs
          | _ -> ());
          default.Ast_iterator.structure_item it si);
      signature_item =
        (fun it si ->
          (match si.Parsetree.psig_desc with
          | Psig_attribute attr -> record ~span:whole_file_span attr
          | _ -> ());
          default.Ast_iterator.signature_item it si);
    }
  in
  (match ast with
  | Impl str -> it.Ast_iterator.structure it str
  | Intf sg -> it.Ast_iterator.signature it sg);
  (List.rev !sups, List.rev !errs)

let within (l, c) (fl, fc) (tl, tc) =
  (l > fl || (l = fl && c >= fc)) && (l < tl || (l = tl && c <= tc))

(* --- per-file pipeline --- *)

let lint_file ~rules ~trace_kinds ~metric_names ~fields path ast =
  let segs = segments path in
  let raw =
    raw_findings ~rules ~trace_kinds ~metric_names ~fields ~path ~segs ast
  in
  let sups, malformed = collect_suppressions ~path ast in
  let known = List.map (fun r -> r.id) rules in
  let sups, unknown =
    List.partition (fun s -> List.mem s.sup_rule known) sups
  in
  let unknown_findings =
    List.map
      (fun s ->
        {
          file = path;
          line = s.sup_line;
          col = s.sup_col;
          rule = "orphan-suppression";
          severity = Error;
          message =
            Printf.sprintf "unknown rule id %S in [@lint.allow]" s.sup_rule;
        })
      unknown
  in
  let kept =
    List.filter
      (fun f ->
        match
          List.find_opt
            (fun s ->
              String.equal s.sup_rule f.rule
              && within (f.line, f.col) s.sup_from s.sup_to)
            sups
        with
        | Some s ->
            s.sup_used <- true;
            false
        | None -> true)
      raw
  in
  let orphans =
    List.filter_map
      (fun s ->
        if s.sup_used then None
        else
          Some
            {
              file = path;
              line = s.sup_line;
              col = s.sup_col;
              rule = "orphan-suppression";
              severity = Error;
              message =
                Printf.sprintf
                  "suppression of %S matched no finding; remove it (or fix \
                   the rule id)"
                  s.sup_rule;
            })
      sups
  in
  kept @ malformed @ unknown_findings @ orphans

(* --- trace-kind discovery --- *)

let rec ends_with suffix segs =
  let ls = List.length suffix and lg = List.length segs in
  if lg < ls then false
  else if lg = ls then List.for_all2 String.equal suffix segs
  else match segs with [] -> false | _ :: rest -> ends_with suffix rest

let kind_constructors (d : Parsetree.type_declaration) =
  if String.equal d.ptype_name.txt "kind" then
    match d.ptype_kind with
    | Ptype_variant ctors ->
        Some (List.map (fun (c : Parsetree.constructor_declaration) -> c.pcd_name.txt) ctors)
    | _ -> None
  else None

let trace_kinds_of parsed =
  List.find_map
    (fun (path, ast) ->
      if not (ends_with [ "obs"; "trace.mli" ] (segments path)) then None
      else
        match ast with
        | Intf sg ->
            List.find_map
              (fun (item : Parsetree.signature_item) ->
                match item.psig_desc with
                | Psig_type (_, decls) -> List.find_map kind_constructors decls
                | _ -> None)
              sg
        | Impl _ -> None)
    parsed

(* --- metric-name discovery --- *)

(* Counts every literal metric name registered across the lib/ sources
   (the library code owns the metric namespace; bench and test files may
   re-register names for their own registries). The counts let the
   exhaustive-metric-names rule flag duplicate registrations at their
   own sites while each file is linted independently. *)
let metric_names_of parsed =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (path, ast) ->
      match ast with
      | Intf _ -> ()
      | Impl str ->
          if under [ "lib" ] (segments path) then
            let default = Ast_iterator.default_iterator in
            let it =
              {
                default with
                Ast_iterator.expr =
                  (fun it e ->
                    (match metric_registration e with
                    | Some (name, _) ->
                        Hashtbl.replace tbl name
                          (1 + Option.value (Hashtbl.find_opt tbl name) ~default:0)
                    | None -> ());
                    default.Ast_iterator.expr it e);
              }
            in
            it.Ast_iterator.structure it str)
    parsed;
  (* bucket order is washed out by the sort *)
  (Hashtbl.fold [@lint.allow "no-order-leak"])
    (fun name count acc -> (name, count) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- record-field discovery --- *)

(* [[@guarded_by "m"]] on a mutable record field names the mutex (by its
   last path segment: [Mutex.lock t.m] locks ["m"]) that must be held
   around every access. Parsed here so the concurrency rules in
   {!Lint_conc} can consult annotations across file boundaries. *)
let guard_payload (attr : Parsetree.attribute) =
  if not (String.equal attr.Parsetree.attr_name.txt "guarded_by") then None
  else
    match attr.Parsetree.attr_payload with
    | Parsetree.PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ( { pexp_desc = Pexp_constant (Pconst_string (m, _, _)); _ },
                  _ );
            _;
          };
        ] ->
        Some m
    | _ -> None

(* Rule ids from [[@lint.allow "id"]] attributes on a record label.
   Unlike expression/binding suppressions these are declarative
   exemptions consumed by the field table (no orphan tracking): they
   state an invariant ("single-consumer field", "set once before
   spawn") rather than silence one specific finding. *)
let label_allows attrs =
  List.filter_map
    (fun attr ->
      match allow_payload attr with Some (Ok id) -> Some id | _ -> None)
    attrs

let container_module m =
  List.mem m [ "Hashtbl"; "Buffer"; "Queue"; "Stack"; "Heap"; "Deque"; "Tbl" ]
  || String.ends_with ~suffix:"_tbl" m
  || String.ends_with ~suffix:"_Tbl" m

let rec type_path (t : Parsetree.core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> Longident.flatten txt
  | Ptyp_poly (_, t) | Ptyp_alias (t, _) -> type_path t
  | _ -> []

let classify_field_type t =
  match List.rev (type_path t) with
  | "t" :: "Atomic" :: _ -> (true, false, false)
  | "t" :: "Mutex" :: _ -> (false, false, true)
  | "t" :: m :: _ when container_module m -> (false, true, false)
  | ("array" | "bytes") :: _ -> (false, true, false)
  | _ -> (false, false, false)

let fields_of parsed =
  let out = ref [] in
  List.iter
    (fun (path, ast) ->
      match ast with
      | Intf _ -> ()
      | Impl str ->
          let default = Ast_iterator.default_iterator in
          let it =
            {
              default with
              Ast_iterator.type_declaration =
                (fun it (d : Parsetree.type_declaration) ->
                  (match d.ptype_kind with
                  | Ptype_record labels ->
                      List.iter
                        (fun (l : Parsetree.label_declaration) ->
                          let atomic, container, mutex =
                            classify_field_type l.pld_type
                          in
                          out :=
                            {
                              fi_file = path;
                              fi_type = d.ptype_name.txt;
                              fi_name = l.pld_name.txt;
                              fi_loc = l.pld_loc;
                              fi_mutable = l.pld_mutable = Asttypes.Mutable;
                              fi_atomic = atomic;
                              fi_container = container;
                              fi_mutex = mutex;
                              fi_guard =
                                List.find_map guard_payload l.pld_attributes;
                              fi_allowed = label_allows l.pld_attributes;
                            }
                            :: !out)
                        labels
                  | _ -> ());
                  default.Ast_iterator.type_declaration it d);
            }
          in
          it.Ast_iterator.structure it str)
    parsed;
  List.rev !out

(* --- entry points --- *)

let compare_findings (a : finding) (b : finding) =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let lint_sources ?trace_kinds ?metric_names ?(only = fun _ -> true) ~rules
    sources =
  let parsed, parse_errors =
    List.fold_left
      (fun (parsed, errs) (path, contents) ->
        match parse ~path contents with
        | Ok ast -> ((path, ast) :: parsed, errs)
        | Error f -> (parsed, f :: errs))
      ([], []) sources
  in
  let parsed = List.rev parsed and parse_errors = List.rev parse_errors in
  let trace_kinds =
    match trace_kinds with
    | Some k -> k
    | None ->
        Option.value (trace_kinds_of parsed) ~default:default_trace_kinds
  in
  let metric_names =
    match metric_names with Some m -> m | None -> metric_names_of parsed
  in
  (* Pre-passes above see every source so cross-file tables stay whole;
     [only] restricts which files are actually linted and reported
     (the [--since REF] incremental mode). *)
  let fields = fields_of parsed in
  let parse_errors =
    List.filter (fun (f : finding) -> only f.file) parse_errors
  in
  let findings =
    List.concat_map
      (fun (path, ast) ->
        if only path then
          lint_file ~rules ~trace_kinds ~metric_names ~fields path ast
        else [])
      parsed
  in
  List.sort compare_findings (parse_errors @ findings)

let skip_dir name =
  String.equal name "_build" || String.equal name ".git"
  || String.equal name "_opam"

let collect_files paths =
  let files = ref [] in
  let rec go path : (unit, string) result =
    match Sys.is_directory path with
    | exception Sys_error e -> Error e
    | true ->
        let entries =
          List.sort String.compare (Array.to_list (Sys.readdir path))
        in
        List.fold_left
          (fun (r : (unit, string) result) name ->
            match r with
            | Error _ -> r
            | Ok () ->
                if skip_dir name then Ok ()
                else go (Filename.concat path name))
          (Ok ()) entries
    | false ->
        if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
        then files := path :: !files;
        Ok ()
  in
  let rec all : string list -> (string list, string) result = function
    | [] -> Ok (List.sort String.compare !files)
    | p :: rest -> ( match go p with Ok () -> all rest | Error e -> Error e)
  in
  all paths

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_paths ?trace_kinds ?metric_names ?(only = fun _ -> true) ~rules paths
    : (int * finding list, string) result =
  match collect_files paths with
  | Error e -> Error e
  | Ok files -> (
      let rec read_all acc : string list -> ((string * string) list, string) result
          = function
        | [] -> Ok (List.rev acc)
        | f :: rest -> (
            match read_file f with
            | contents -> read_all ((f, contents) :: acc) rest
            | exception Sys_error e -> Error e)
      in
      match read_all [] files with
      | Error e -> Error e
      | Ok sources ->
          Ok
            ( List.length (List.filter only files),
              lint_sources ?trace_kinds ?metric_names ~only ~rules sources ))

(* --- reporting --- *)

let errors (findings : finding list) =
  List.length (List.filter (fun (f : finding) -> f.severity = Error) findings)

let warnings (findings : finding list) =
  List.length (List.filter (fun (f : finding) -> f.severity = Warn) findings)

let exit_code findings = if errors findings > 0 then 1 else 0

let render (f : finding) =
  Printf.sprintf "%s:%d:%d [%s] %s: %s" f.file f.line f.col f.rule
    (severity_name f.severity) f.message

module Json = Bamboo_util.Json

let finding_to_json (f : finding) =
  Json.Obj
    [
      ("file", Json.String f.file);
      ("line", Json.Int f.line);
      ("col", Json.Int f.col);
      ("rule", Json.String f.rule);
      ("severity", Json.String (severity_name f.severity));
      ("message", Json.String f.message);
    ]

let report_to_json ~files findings =
  Json.Obj
    [
      ("files", Json.Int files);
      ("errors", Json.Int (errors findings));
      ("warnings", Json.Int (warnings findings));
      ("findings", Json.List (List.map finding_to_json findings));
    ]
