(* Command-line front end, shared by the standalone [bamboo_lint]
   executable and the [bamboo lint] subcommand.

   Exit codes follow the repository-wide contract (README "Exit
   codes"): 0 = clean (warnings allowed), 1 = at least one
   error-severity finding (including orphan suppressions), 2 = usage or
   I/O error. *)

open Cmdliner
module E = Lint_engine
module Json = Bamboo_util.Json

let default_paths = [ "lib"; "bin"; "examples" ]

let paths_t =
  Arg.(
    value
    & pos_all string default_paths
    & info [] ~docv:"PATH"
        ~doc:
          "Files or directories to lint (default: $(b,lib) $(b,bin) \
           $(b,examples)).")

let json_t =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the machine-readable report as JSON on stdout.")

let out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:
          "Also write the JSON report to $(docv) (written even when \
           findings fail the run, so CI can upload it as an artifact).")

let rules_t =
  Arg.(
    value & flag
    & info [ "rules" ] ~doc:"List the registered rules and exit.")

let since_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "since" ] ~docv:"REF"
        ~doc:
          "Incremental mode: lint only the files changed relative to git \
           $(docv) (per $(b,git diff --name-only)). Cross-file pre-passes \
           still read the whole tree, so findings match a full run's on \
           the changed files.")

(* Files changed vs [ref_], as repo-relative paths. *)
let changed_since ref_ =
  let cmd = Printf.sprintf "git diff --name-only %s" (Filename.quote ref_) in
  let ic = Unix.open_process_in cmd in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> Ok lines
  | Unix.WEXITED n ->
      Error (Printf.sprintf "git diff --name-only %s failed with exit %d" ref_ n)
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
      Error (Printf.sprintf "git diff --name-only %s was interrupted" ref_)

(* The linter sees paths as given on the command line ("lib/a/b.ml", or
   absolute when the caller passed one); git prints repo-relative paths.
   Match on segment suffixes so both spellings of the same file agree. *)
let since_filter changed path =
  let suffix_of short long =
    let rec go l =
      l = short || match l with [] -> false | _ :: tl -> go tl
    in
    go long
  in
  let segs = E.segments path in
  List.exists
    (fun c ->
      let csegs = E.segments c in
      suffix_of csegs segs || suffix_of segs csegs)
    changed

let list_rules () =
  List.iter
    (fun (r : E.rule) ->
      Printf.printf "%-26s %-5s %s\n    protects: %s\n" r.E.id
        (E.severity_name r.E.severity)
        r.E.summary r.E.protects)
    Lint_rules.all

let run rules_flag json out since paths =
  if rules_flag then begin
    list_rules ();
    exit 0
  end;
  let only =
    match since with
    | None -> None
    | Some ref_ -> (
        match changed_since ref_ with
        | Error msg ->
            Printf.eprintf "bamboo-lint: %s\n" msg;
            exit 2
        | Ok changed -> Some (since_filter changed))
  in
  match E.lint_paths ?only ~rules:Lint_rules.all paths with
  | Error msg ->
      Printf.eprintf "bamboo-lint: %s\n" msg;
      exit 2
  | Ok (files, findings) ->
      let report = E.report_to_json ~files findings in
      (match out with
      | None -> ()
      | Some path -> (
          match open_out path with
          | exception Sys_error e ->
              Printf.eprintf "bamboo-lint: cannot write report: %s\n" e;
              exit 2
          | oc ->
              output_string oc (Json.to_string ~indent:true report);
              output_char oc '\n';
              close_out oc));
      if json then print_endline (Json.to_string ~indent:true report)
      else begin
        List.iter (fun f -> print_endline (E.render f)) findings;
        Printf.printf "bamboo-lint: %d error(s), %d warning(s) in %d file(s)\n"
          (E.errors findings) (E.warnings findings) files
      end;
      exit (E.exit_code findings)

let term = Term.(const run $ rules_t $ json_t $ out_t $ since_t $ paths_t)

let doc =
  "AST-level determinism and domain-safety linter over the OCaml sources"

let cmd = Cmd.v (Cmd.info "lint" ~doc) term

let main () =
  match Cmd.eval_value (Cmd.v (Cmd.info "bamboo-lint" ~version:"1.0.0" ~doc) term) with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> 0
  | Error _ -> 2
