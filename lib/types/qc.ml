type t = {
  block : Ids.hash;
  view : Ids.view;
  height : Ids.height;
  sigs : Bamboo_crypto.Sig.t list;
}

let genesis ~block = { block; view = 0; height = 0; sigs = [] }

let is_genesis qc = qc.view = 0 && qc.sigs = []

let compare_by_view a b = Int.compare a.view b.view

let max_by_view a b = if compare_by_view a b >= 0 then a else b

let wire_size qc =
  44 + (List.length qc.sigs * Bamboo_crypto.Sig.wire_size)

let signed_payload ~block ~view = Printf.sprintf "vote|%d|%s" view block

(* A key that pins down the certificate's entire content — block, view,
   height and every (signer, tag) pair — so a verification cache keyed on
   it can never confuse a tampered certificate with a previously verified
   one. Plain string equality, no lossy hashing: no collision can launder
   a forged QC through the cache. *)
let cache_key qc =
  let b = Buffer.create (64 + (List.length qc.sigs * 80)) in
  Buffer.add_string b qc.block;
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int qc.view);
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int qc.height);
  List.iter
    (fun (s : Bamboo_crypto.Sig.t) ->
      Buffer.add_char b '|';
      Buffer.add_string b (string_of_int s.signer);
      Buffer.add_char b ':';
      Buffer.add_string b s.tag)
    qc.sigs;
  Buffer.contents b

let verify reg ~quorum qc =
  if is_genesis qc then true
  else begin
    let payload = signed_payload ~block:qc.block ~view:qc.view in
    let distinct_valid =
      List.fold_left
        (fun acc (s : Bamboo_crypto.Sig.t) ->
          if List.mem s.signer acc then acc
          else if Bamboo_crypto.Sig.verify reg s payload then s.signer :: acc
          else acc)
        [] qc.sigs
    in
    List.length distinct_valid >= quorum
  end

let pp fmt qc =
  Format.fprintf fmt "QC<v%d,h%d,%a,%d sigs>" qc.view qc.height Ids.pp_hash
    qc.block (List.length qc.sigs)
