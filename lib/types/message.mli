(** Protocol messages exchanged between replicas.

    The unifying Propose-Vote scheme of cBFT needs only three replica
    message types: proposals, votes, and pacemaker timeouts. Streamlet's
    echoing re-sends received proposals/votes verbatim, so no extra
    constructor is needed — the node engine de-duplicates by {!key}. *)

type t =
  | Proposal of { block : Block.t; tc : Tcert.t option }
      (** A new block; [tc] justifies entering the block's view after a
          timeout (carried by the first proposal of the new view). Also
          reused as the reply to a {!Request_block} — blocks are
          content-addressed, so a forwarded proposal is self-validating. *)
  | Vote of Vote.t
  | Timeout of Timeout_msg.t
  | Request_block of { hash : Ids.hash; requester : Ids.replica }
      (** Block synchronization: ask a peer that demonstrably holds the
          block (it extended it) to re-send it. Unsigned — a bogus request
          costs the responder one message and nothing else. *)

val view : t -> Ids.view
(** The protocol view the message belongs to; 0 for block requests. *)

val wire_size : t -> int

val key : t -> string
(** A stable identity for de-duplication (echo suppression): proposals by
    block hash, votes by (block, voter), timeouts by (view, sender). *)

val verify : Bamboo_crypto.Sig.registry -> quorum:int -> t -> bool
(** Checks every signature the message carries: a proposal's justify QC
    (and TC + its high-QC when present), a vote's signature, a timeout's
    signature and high-QC. Block requests are unsigned and verify
    trivially. Safe to call from Pool worker domains. *)

val type_label : t -> string
(** ["proposal"], ["vote"] or ["timeout"]; used by trace output and the
    cost model. *)

val pp : Format.formatter -> t -> unit
