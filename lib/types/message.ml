type t =
  | Proposal of { block : Block.t; tc : Tcert.t option }
  | Vote of Vote.t
  | Timeout of Timeout_msg.t
  | Request_block of { hash : Ids.hash; requester : Ids.replica }

let view = function
  | Proposal { block; _ } -> block.Block.view
  | Vote v -> v.Vote.view
  | Timeout t -> t.Timeout_msg.view
  | Request_block _ -> 0

let wire_size = function
  | Proposal { block; tc } ->
      let tc_size = match tc with None -> 1 | Some tc -> 1 + Tcert.wire_size tc in
      Block.wire_size block + tc_size
  | Vote _ -> Vote.wire_size
  | Timeout t -> Timeout_msg.wire_size t
  | Request_block _ -> 48

let key = function
  | Proposal { block; _ } -> "p|" ^ block.Block.hash
  | Vote v -> Printf.sprintf "v|%s|%d" v.Vote.block v.Vote.voter
  | Timeout t -> Printf.sprintf "t|%d|%d" t.Timeout_msg.view t.Timeout_msg.sender
  | Request_block { hash; requester } -> Printf.sprintf "r|%s|%d" hash requester

(* Full signature audit of a received message: every certificate and
   signature it carries, checked against the registry. Used by the
   runtime's parallel-verification path; pure, so it can run on any Pool
   worker domain (the registry's tallies are atomic). *)
let verify reg ~quorum = function
  | Proposal { block; tc } -> (
      Qc.verify reg ~quorum block.Block.justify
      &&
      match tc with
      | None -> true
      | Some tc ->
          Tcert.verify reg ~quorum tc && Qc.verify reg ~quorum tc.Tcert.high_qc)
  | Vote v -> Vote.verify reg v
  | Timeout t ->
      Timeout_msg.verify reg t && Qc.verify reg ~quorum t.Timeout_msg.high_qc
  | Request_block _ -> true (* unsigned by design *)

let type_label = function
  | Proposal _ -> "proposal"
  | Vote _ -> "vote"
  | Timeout _ -> "timeout"
  | Request_block _ -> "request"

let pp fmt = function
  | Proposal { block; tc } ->
      Format.fprintf fmt "Proposal(%a%s)" Block.pp block
        (match tc with None -> "" | Some _ -> ",+TC")
  | Vote v -> Format.fprintf fmt "Vote(%a)" Vote.pp v
  | Timeout t -> Format.fprintf fmt "Timeout(%a)" Timeout_msg.pp t
  | Request_block { hash; requester } ->
      Format.fprintf fmt "Request(%a by %d)" Ids.pp_hash hash requester
