(** Quorum certificates.

    A QC certifies one block: it aggregates votes from a quorum (2f+1 of
    n = 3f+1 replicas). Following the paper, QCs are recorded on-chain as a
    block's [justify] pointer, and "a block with a valid QC is considered
    certified". *)

type t = {
  block : Ids.hash;  (** Hash of the certified block. *)
  view : Ids.view;  (** View of the certified block. *)
  height : Ids.height;  (** Height of the certified block. *)
  sigs : Bamboo_crypto.Sig.t list;
      (** Vote signatures; empty only for the genesis QC. *)
}

val genesis : block:Ids.hash -> t
(** Certificate for the genesis block: view 0, height 0, no signatures.
    All replicas accept it axiomatically. *)

val is_genesis : t -> bool

val compare_by_view : t -> t -> int

val max_by_view : t -> t -> t

val wire_size : t -> int
(** Bytes on the wire: 44-byte header plus one signature per voter. *)

val signed_payload : block:Ids.hash -> view:Ids.view -> string
(** The byte string replicas sign when voting for a block; shared between
    vote creation and QC verification. *)

val cache_key : t -> string
(** A key capturing the certificate's entire content (block, view, height
    and every signer/tag pair), for verification caches. Two QCs share a
    key iff they are byte-identical, so a cache keyed on it cannot accept
    a tampered certificate on the strength of a previously verified
    one. *)

val verify : Bamboo_crypto.Sig.registry -> quorum:int -> t -> bool
(** [verify reg ~quorum qc] checks that [qc] carries at least [quorum]
    valid signatures from distinct replicas over {!signed_payload}.
    The genesis QC always verifies. *)

val pp : Format.formatter -> t -> unit
