(** Client transactions.

    A transaction is identified by the issuing client and a per-client
    sequence number; the payload is opaque bytes whose length is the
    [psize] parameter of Table I. Issue and commit timestamps are recorded
    by the runtime to measure client latency. *)

type id = { client : int; seq : int }

type t = {
  id : id;
  payload_len : int;
      (** Wire length of the payload. In simulation the bytes are never
          inspected, so only the length is materialized; the deployment
          path carries real bytes in [data]. *)
  data : string;
      (** Actual payload bytes (e.g. a key-value command for the execution
          layer). Empty in simulation workloads. When non-empty its length
          is the effective payload length. *)
}

val make : client:int -> seq:int -> payload_len:int -> t
(** An opaque benchmark transaction: [payload_len] filler bytes, no data. *)

val make_with_data : client:int -> seq:int -> data:string -> t
(** A real command for the execution layer; the payload length is the data
    length. *)

val id_to_string : id -> string
(** Stable textual form, used for hashing and wire encoding. *)

val compare_id : id -> id -> int

val wire_size : t -> int
(** Bytes on the wire: 16-byte id header plus the payload. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

module Id_set : Set.S with type elt = id
module Id_map : Map.S with type key = id

module Id_tbl : Hashtbl.S with type key = id
(** Hash table keyed by {!id} with a monomorphic hash/equal, so lookups
    never fall back to the polymorphic primitives on the boxed record. *)
