type id = { client : int; seq : int }

type t = { id : id; payload_len : int; data : string }

let make ~client ~seq ~payload_len =
  if payload_len < 0 then invalid_arg "Tx.make: negative payload length";
  { id = { client; seq }; payload_len; data = "" }

let make_with_data ~client ~seq ~data =
  { id = { client; seq }; payload_len = String.length data; data }

let id_to_string id = Printf.sprintf "%d:%d" id.client id.seq

let compare_id a b =
  let c = Int.compare a.client b.client in
  if c <> 0 then c else Int.compare a.seq b.seq

let wire_size t = 16 + t.payload_len

let equal a b =
  compare_id a.id b.id = 0
  && a.payload_len = b.payload_len
  && String.equal a.data b.data

let pp fmt t = Format.fprintf fmt "tx<%s,%dB>" (id_to_string t.id) t.payload_len

module Id_ord = struct
  type t = id

  let compare = compare_id
end

module Id_set = Set.Make (Id_ord)
module Id_map = Map.Make (Id_ord)

module Id_tbl = Hashtbl.Make (struct
  type t = id

  let equal a b = Int.equal a.client b.client && Int.equal a.seq b.seq

  (* FNV-style mix keeps distinct (client, seq) pairs well spread without
     touching the polymorphic hash on a boxed record. *)
  let hash i = (i.client * 0x01000193) lxor i.seq
end)
