(** Per-transaction latency decomposition.

    Each committed transaction's client-observed latency is split into the
    stages of the paper's queuing pipeline, all measured at the replica
    the client submitted to:

    - [client_wire]: client-to-replica submission plus the commit
      response, both over the (possibly fluctuating) client link;
    - [cpu_queue]: time the transaction's CPU charges (ingest batch,
      block creation) spent waiting behind earlier work in the replica's
      CPU queue;
    - [cpu_service]: the CPU charges themselves;
    - [mempool_wait]: residency in the mempool until batched into a
      proposal;
    - [nic_serialization]: outbound NIC backlog created by broadcasting
      the proposal carrying the transaction (the paper's [t_NIC] term,
      times the fan-out);
    - [consensus_wait]: the remainder — wire propagation, remote
      processing, vote aggregation, and the chained certifications the
      commit rule requires (the paper's [t_L + t_commit]).

    The components sum to the measured latency by construction; the mean
    of each component over a run is compared against the analytic model's
    terms. *)

type components = {
  client_wire : float;
  cpu_queue : float;
  cpu_service : float;
  mempool_wait : float;
  nic_serialization : float;
  consensus_wait : float;
}

type t

type summary = {
  samples : int;
  client_wire : float;
  cpu_queue : float;
  cpu_service : float;
  mempool_wait : float;
  nic_serialization : float;
  consensus_wait : float;
  total : float;  (** Mean measured client latency of the decomposed txs. *)
}

val create : unit -> t

val record : t -> components -> total:float -> unit

val summarize : t -> summary
(** Mean of every component, in seconds. *)

val components_sum : summary -> float
(** Sum of the component means; equals [total] up to float rounding. *)

val to_json : summary -> Bamboo_util.Json.t

val pp_summary : Format.formatter -> summary -> unit
