(** Structured tracing for simulator and protocol runs.

    A trace is a stream of typed events, each carrying the replica id, the
    view, the virtual timestamp, and a span id that correlates all events
    of one block's lifetime (proposal, votes, certification, commit).

    Three sinks are provided:
    - {!ring}: a bounded in-memory ring buffer (tests, post-mortem
      inspection) that keeps the most recent [capacity] events;
    - {!jsonl}: one JSON object per line, schema
      [{"seq","ts","node","view","kind","span","args"}], timestamps in
      virtual seconds;
    - {!chrome}: the Chrome [trace_event] format — one "process" per
      replica, one "thread" per machine queue (consensus / cpu / nic_out /
      nic_in) — so a run opens directly in [chrome://tracing] or
      {{:https://ui.perfetto.dev}Perfetto}.

    The disabled trace {!null} reduces every emission to a single tag
    check with no allocation, so instrumented code paths cost nothing
    measurable when tracing is off. Emission never schedules simulator
    events: enabling a trace cannot perturb a run. *)

type kind =
  | Proposal_sent
  | Proposal_received
  | Vote_sent
  | Vote_received
  | Qc_formed  (** A vote quorum was assembled locally. *)
  | Timeout_fired  (** Local view timer expired; timeout broadcast. *)
  | Timeout_received
  | View_change  (** The pacemaker entered a new view. *)
  | Commit
  | Fork_prune  (** Blocks overwritten by a commit. *)
  | Tx_enqueue  (** Transactions accepted into the mempool. *)
  | Tx_dequeue  (** Transactions batched into a proposal. *)
  | Service  (** A machine-queue service span (ring/jsonl sinks). *)
  | Gauge  (** A probe sample (ring/jsonl sinks). *)
  | Fault_inject  (** A scheduled fault became active ([bamboo_faults]). *)
  | Fault_heal  (** A scheduled fault healed. *)

type event = {
  seq : int;  (** Emission order, 0-based. *)
  ts : float;  (** Virtual time, seconds. *)
  node : int;  (** Replica id; -1 for cluster-level events. *)
  view : int;
  kind : kind;
  span : int;  (** 0 when the event belongs to no span. *)
  args : (string * Bamboo_util.Json.t) list;
}

type t

val null : t
(** The disabled trace: every operation is a no-op. *)

val ring : capacity:int -> t
(** In-memory sink retaining the last [capacity] events. *)

val jsonl : out_channel -> t
(** Streaming JSONL sink. The caller owns the channel; call {!close}
    before closing it. *)

val chrome : out_channel -> t
(** Chrome trace_event sink. Writes the container opening immediately;
    {!close} must be called to produce valid JSON. *)

val enabled : t -> bool

val fresh_span : t -> int
(** Allocates a new nonzero span id. *)

val emit :
  t ->
  ts:float ->
  node:int ->
  ?view:int ->
  ?span:int ->
  ?args:(string * Bamboo_util.Json.t) list ->
  kind ->
  unit

val service :
  t ->
  node:int ->
  queue:[ `Cpu | `Nic_out | `Nic_in ] ->
  start:float ->
  duration:float ->
  unit
(** A service span on one of the machine queues; rendered as a duration
    event on the queue's thread in the Chrome sink. *)

val gauge : t -> ts:float -> node:int -> name:string -> float -> unit
(** A sampled gauge value; rendered as a counter event in the Chrome
    sink. *)

val events : t -> event list
(** Buffered events, oldest first. Empty for non-ring sinks. *)

val close : t -> unit
(** Finalizes file sinks (writes the Chrome container close, flushes).
    No-op for [null] and ring sinks. *)

val kind_name : kind -> string

val kind_of_name : string -> (kind, string) result
(** Inverse of {!kind_name}. *)

val event_to_json : event -> Bamboo_util.Json.t
(** The JSONL schema of one event. *)

val event_of_json : Bamboo_util.Json.t -> (event, string) result
(** Inverse of {!event_to_json}, for re-reading JSONL traces (e.g. when
    merging per-node cluster traces). Tolerates a missing or null [args]
    member; any other shape mismatch is an [Error]. *)
