module Stats = Bamboo_util.Stats
module Json = Bamboo_util.Json

type components = {
  client_wire : float;
  cpu_queue : float;
  cpu_service : float;
  mempool_wait : float;
  nic_serialization : float;
  consensus_wait : float;
}

type t = {
  client_wire : Stats.t;
  cpu_queue : Stats.t;
  cpu_service : Stats.t;
  mempool_wait : Stats.t;
  nic_serialization : Stats.t;
  consensus_wait : Stats.t;
  total : Stats.t;
}

type summary = {
  samples : int;
  client_wire : float;
  cpu_queue : float;
  cpu_service : float;
  mempool_wait : float;
  nic_serialization : float;
  consensus_wait : float;
  total : float;
}

let create () =
  {
    client_wire = Stats.create ();
    cpu_queue = Stats.create ();
    cpu_service = Stats.create ();
    mempool_wait = Stats.create ();
    nic_serialization = Stats.create ();
    consensus_wait = Stats.create ();
    total = Stats.create ();
  }

let record (t : t) (c : components) ~total =
  Stats.add t.client_wire c.client_wire;
  Stats.add t.cpu_queue c.cpu_queue;
  Stats.add t.cpu_service c.cpu_service;
  Stats.add t.mempool_wait c.mempool_wait;
  Stats.add t.nic_serialization c.nic_serialization;
  Stats.add t.consensus_wait c.consensus_wait;
  Stats.add t.total total

let summarize (t : t) =
  {
    samples = Stats.count t.total;
    client_wire = Stats.mean t.client_wire;
    cpu_queue = Stats.mean t.cpu_queue;
    cpu_service = Stats.mean t.cpu_service;
    mempool_wait = Stats.mean t.mempool_wait;
    nic_serialization = Stats.mean t.nic_serialization;
    consensus_wait = Stats.mean t.consensus_wait;
    total = Stats.mean t.total;
  }

let components_sum (s : summary) =
  s.client_wire +. s.cpu_queue +. s.cpu_service +. s.mempool_wait
  +. s.nic_serialization +. s.consensus_wait

let to_json (s : summary) =
  Json.Obj
    [
      ("samples", Json.Int s.samples);
      ("clientWire", Json.Float s.client_wire);
      ("cpuQueue", Json.Float s.cpu_queue);
      ("cpuService", Json.Float s.cpu_service);
      ("mempoolWait", Json.Float s.mempool_wait);
      ("nicSerialization", Json.Float s.nic_serialization);
      ("consensusWait", Json.Float s.consensus_wait);
      ("total", Json.Float s.total);
    ]

let pp_summary fmt (s : summary) =
  let ms v = v *. 1000.0 in
  Format.fprintf fmt
    "latency decomposition (%d txs, ms): client wire %.3f | cpu queue %.3f | \
     cpu service %.3f | mempool %.3f | nic %.3f | consensus %.3f | total %.3f"
    s.samples (ms s.client_wire) (ms s.cpu_queue) (ms s.cpu_service)
    (ms s.mempool_wait) (ms s.nic_serialization) (ms s.consensus_wait)
    (ms s.total)
