module Stats = Bamboo_util.Stats
module Json = Bamboo_util.Json
module Registry = Bamboo_metrics.Registry

type gauge = {
  node : int;
  name : string;
  read : unit -> float;
  stats : Stats.t;
  metric : Registry.Gauge.t;
      (* the same sample feeds the Stats collector, the trace sink and the
         metrics registry, so probes and metrics report one number *)
}

type t = {
  interval : float;
  trace : Trace.t;
  registry : Registry.t;
  mutable gauges : gauge list; (* reverse insertion order *)
  mutable ticks : int;
}

type summary = {
  node : int;
  name : string;
  samples : int;
  mean : float;
  max : float;
}

let create ?(trace = Trace.null) ?(registry = Registry.null) ~interval () =
  if interval <= 0.0 then invalid_arg "Probe.create: interval must be positive";
  { interval; trace; registry; gauges = []; ticks = 0 }

let interval t = t.interval

let add_gauge t ~node ~name read =
  let labels = if node >= 0 then [ ("node", string_of_int node) ] else [] in
  let metric = Registry.gauge t.registry ~labels name in
  t.gauges <- { node; name; read; stats = Stats.create (); metric } :: t.gauges

let sample t ~now =
  t.ticks <- t.ticks + 1;
  List.iter
    (fun g ->
      let v = g.read () in
      Stats.add g.stats v;
      Trace.gauge t.trace ~ts:now ~node:g.node ~name:g.name v;
      Registry.Gauge.set g.metric v)
    (List.rev t.gauges)

let samples t = t.ticks

let summaries t =
  List.rev_map
    (fun (g : gauge) ->
      {
        node = g.node;
        name = g.name;
        samples = Stats.count g.stats;
        mean = Stats.mean g.stats;
        max = Stats.max_value g.stats;
      })
    t.gauges

let find_summary summaries ~node ~name =
  List.find_opt
    (fun (s : summary) -> s.node = node && s.name = name)
    summaries

let find t ~node ~name = find_summary (summaries t) ~node ~name

let summary_to_json (s : summary) =
  Json.Obj
    [
      ("node", Json.Int s.node);
      ("name", Json.String s.name);
      ("samples", Json.Int s.samples);
      ("mean", Json.Float s.mean);
      ("max", Json.Float s.max);
    ]

let to_json t = Json.List (List.map summary_to_json (summaries t))

let pp_summary fmt (s : summary) =
  Format.fprintf fmt "node %d %-20s mean %10.3f  max %10.3f  (%d samples)"
    s.node s.name s.mean s.max s.samples
