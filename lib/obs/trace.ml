module Json = Bamboo_util.Json

type kind =
  | Proposal_sent
  | Proposal_received
  | Vote_sent
  | Vote_received
  | Qc_formed
  | Timeout_fired
  | Timeout_received
  | View_change
  | Commit
  | Fork_prune
  | Tx_enqueue
  | Tx_dequeue
  | Service
  | Gauge
  | Fault_inject
  | Fault_heal

let kind_name = function
  | Proposal_sent -> "proposal_sent"
  | Proposal_received -> "proposal_received"
  | Vote_sent -> "vote_sent"
  | Vote_received -> "vote_received"
  | Qc_formed -> "qc_formed"
  | Timeout_fired -> "timeout_fired"
  | Timeout_received -> "timeout_received"
  | View_change -> "view_change"
  | Commit -> "commit"
  | Fork_prune -> "fork_prune"
  | Tx_enqueue -> "tx_enqueue"
  | Tx_dequeue -> "tx_dequeue"
  | Service -> "service"
  | Gauge -> "gauge"
  | Fault_inject -> "fault_inject"
  | Fault_heal -> "fault_heal"

let kind_of_name = function
  | "proposal_sent" -> Ok Proposal_sent
  | "proposal_received" -> Ok Proposal_received
  | "vote_sent" -> Ok Vote_sent
  | "vote_received" -> Ok Vote_received
  | "qc_formed" -> Ok Qc_formed
  | "timeout_fired" -> Ok Timeout_fired
  | "timeout_received" -> Ok Timeout_received
  | "view_change" -> Ok View_change
  | "commit" -> Ok Commit
  | "fork_prune" -> Ok Fork_prune
  | "tx_enqueue" -> Ok Tx_enqueue
  | "tx_dequeue" -> Ok Tx_dequeue
  | "service" -> Ok Service
  | "gauge" -> Ok Gauge
  | "fault_inject" -> Ok Fault_inject
  | "fault_heal" -> Ok Fault_heal
  | s -> Error (Printf.sprintf "unknown trace kind %S" s)

type event = {
  seq : int;
  ts : float;
  node : int;
  view : int;
  kind : kind;
  span : int;
  args : (string * Json.t) list;
}

let dummy_event =
  { seq = 0; ts = 0.0; node = 0; view = 0; kind = Gauge; span = 0; args = [] }

type ring_state = {
  buf : event array;
  capacity : int;
  mutable count : int; (* total events ever emitted *)
}

type chrome_state = {
  c_oc : out_channel;
  mutable first : bool;
  named : (int * int, unit) Hashtbl.t;
      (* (pid, tid) pairs whose metadata has been written; tid -1 keys the
         process_name record *)
}

type sink =
  | Null
  | Ring of ring_state
  | Jsonl of out_channel
  | Chrome of chrome_state

type t = { sink : sink; mutable next_seq : int; mutable next_span : int }

let null = { sink = Null; next_seq = 0; next_span = 0 }

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity must be positive";
  {
    sink = Ring { buf = Array.make capacity dummy_event; capacity; count = 0 };
    next_seq = 0;
    next_span = 0;
  }

let jsonl oc = { sink = Jsonl oc; next_seq = 0; next_span = 0 }

let chrome oc =
  output_string oc "{\"traceEvents\":[";
  {
    sink = Chrome { c_oc = oc; first = true; named = Hashtbl.create 64 };
    next_seq = 0;
    next_span = 0;
  }

let enabled t = match t.sink with Null -> false | _ -> true

let fresh_span t =
  t.next_span <- t.next_span + 1;
  t.next_span

let event_to_json ev =
  Json.Obj
    [
      ("seq", Json.Int ev.seq);
      ("ts", Json.Float ev.ts);
      ("node", Json.Int ev.node);
      ("view", Json.Int ev.view);
      ("kind", Json.String (kind_name ev.kind));
      ("span", Json.Int ev.span);
      ("args", Json.Obj ev.args);
    ]

let event_of_json json =
  match json with
  | Json.Obj _ -> (
      try
        let kind_str = Json.get_string (Json.member "kind" json) in
        match kind_of_name kind_str with
        | Error _ as e -> e
        | Ok kind ->
            let args =
              match Json.member "args" json with
              | Json.Obj kvs -> kvs
              | Json.Null -> []
              | _ -> invalid_arg "args"
            in
            Ok
              {
                seq = Json.to_int (Json.member "seq" json);
                ts = Json.to_float (Json.member "ts" json);
                node = Json.to_int (Json.member "node" json);
                view = Json.to_int (Json.member "view" json);
                kind;
                span = Json.to_int (Json.member "span" json);
                args;
              }
      with Invalid_argument msg ->
        Error (Printf.sprintf "malformed trace event: %s" msg))
  | _ -> Error "trace event is not a JSON object"

(* --- Chrome trace_event output ---

   One "process" per replica and one "thread" per logical resource:
   tid 0 = consensus engine, 1 = CPU queue, 2 = outbound NIC, 3 = inbound
   NIC. Timestamps are microseconds as the format requires. *)

let tid_name = function
  | 0 -> "consensus"
  | 1 -> "cpu"
  | 2 -> "nic_out"
  | 3 -> "nic_in"
  | _ -> "other"

let chrome_write st json =
  if st.first then st.first <- false else output_char st.c_oc ',';
  output_char st.c_oc '\n';
  output_string st.c_oc (Json.to_string json)

let chrome_ensure_named st ~pid ~tid =
  if not (Hashtbl.mem st.named (pid, -1)) then begin
    Hashtbl.add st.named (pid, -1) ();
    let pname =
      if pid >= 0 then Printf.sprintf "replica %d" pid else "cluster"
    in
    chrome_write st
      (Json.Obj
         [
           ("name", Json.String "process_name");
           ("ph", Json.String "M");
           ("pid", Json.Int pid);
           ("tid", Json.Int 0);
           ("args", Json.Obj [ ("name", Json.String pname) ]);
         ])
  end;
  if not (Hashtbl.mem st.named (pid, tid)) then begin
    Hashtbl.add st.named (pid, tid) ();
    chrome_write st
      (Json.Obj
         [
           ("name", Json.String "thread_name");
           ("ph", Json.String "M");
           ("pid", Json.Int pid);
           ("tid", Json.Int tid);
           ("args", Json.Obj [ ("name", Json.String (tid_name tid)) ]);
         ])
  end

let us s = s *. 1e6

let chrome_instant st ev =
  chrome_ensure_named st ~pid:ev.node ~tid:0;
  chrome_write st
    (Json.Obj
       [
         ("name", Json.String (kind_name ev.kind));
         ("cat", Json.String "consensus");
         ("ph", Json.String "i");
         ("s", Json.String "t");
         ("ts", Json.Float (us ev.ts));
         ("pid", Json.Int ev.node);
         ("tid", Json.Int 0);
         ( "args",
           Json.Obj
             (("view", Json.Int ev.view) :: ("span", Json.Int ev.span)
             :: ev.args) );
       ])

let record t ~ts ~node ~view ~span ~args kind =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let ev = { seq; ts; node; view; kind; span; args } in
  match t.sink with
  | Null -> ()
  | Ring r ->
      r.buf.(r.count mod r.capacity) <- ev;
      r.count <- r.count + 1
  | Jsonl oc ->
      output_string oc (Json.to_string (event_to_json ev));
      output_char oc '\n'
  | Chrome st -> chrome_instant st ev

let emit t ~ts ~node ?(view = 0) ?(span = 0) ?(args = []) kind =
  match t.sink with
  | Null -> ()
  | _ -> record t ~ts ~node ~view ~span ~args kind

let queue_tid = function `Cpu -> 1 | `Nic_out -> 2 | `Nic_in -> 3
let queue_name = function
  | `Cpu -> "cpu"
  | `Nic_out -> "nic_out"
  | `Nic_in -> "nic_in"

let service t ~node ~queue ~start ~duration =
  match t.sink with
  | Null -> ()
  | Chrome st ->
      let tid = queue_tid queue in
      chrome_ensure_named st ~pid:node ~tid;
      chrome_write st
        (Json.Obj
           [
             ("name", Json.String (queue_name queue));
             ("cat", Json.String "machine");
             ("ph", Json.String "X");
             ("ts", Json.Float (us start));
             ("dur", Json.Float (us duration));
             ("pid", Json.Int node);
             ("tid", Json.Int tid);
           ])
  | Ring _ | Jsonl _ ->
      record t ~ts:start ~node ~view:0 ~span:0
        ~args:
          [
            ("queue", Json.String (queue_name queue));
            ("duration", Json.Float duration);
          ]
        Service

let gauge t ~ts ~node ~name value =
  match t.sink with
  | Null -> ()
  | Chrome st ->
      chrome_ensure_named st ~pid:node ~tid:0;
      chrome_write st
        (Json.Obj
           [
             ("name", Json.String name);
             ("cat", Json.String "probe");
             ("ph", Json.String "C");
             ("ts", Json.Float (us ts));
             ("pid", Json.Int node);
             ("tid", Json.Int 0);
             ("args", Json.Obj [ ("value", Json.Float value) ]);
           ])
  | Ring _ | Jsonl _ ->
      record t ~ts ~node ~view:0 ~span:0
        ~args:[ ("name", Json.String name); ("value", Json.Float value) ]
        Gauge

let events t =
  match t.sink with
  | Ring r ->
      let n = min r.count r.capacity in
      let start = r.count - n in
      List.init n (fun i -> r.buf.((start + i) mod r.capacity))
  | Null | Jsonl _ | Chrome _ -> []

let close t =
  match t.sink with
  | Null | Ring _ -> ()
  | Jsonl oc -> flush oc
  | Chrome st ->
      output_string st.c_oc "\n],\"displayTimeUnit\":\"ms\"}\n";
      flush st.c_oc
