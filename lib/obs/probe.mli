(** Periodic sampling of simulator resource gauges.

    A probe holds a set of named gauges (per-node CPU/NIC queue depths,
    busy fractions, the simulator's event-heap size, ...) registered by
    the runtime. {!sample} reads every gauge, accumulates the value into a
    {!Bamboo_util.Stats} collector, and — when a trace is attached — emits
    a counter event so queue dynamics are visible on the timeline.

    The probe never schedules simulator events itself; the runtime drives
    it on its configured virtual-time interval. *)

type t

type summary = {
  node : int;  (** Replica id; -1 for cluster-level gauges. *)
  name : string;
  samples : int;
  mean : float;
  max : float;
}

val create :
  ?trace:Trace.t ->
  ?registry:Bamboo_metrics.Registry.t ->
  interval:float ->
  unit ->
  t
(** [interval] is the sampling period in virtual seconds (must be
    positive); it is informational here — the caller schedules the
    samples. When [registry] is given (and enabled), every {!sample} also
    records into a registry gauge of the same name (labelled
    [node=<id>] for node-scoped gauges), so probe summaries and metrics
    exports report one consistent number. *)

val interval : t -> float

val add_gauge : t -> node:int -> name:string -> (unit -> float) -> unit
(** Gauge names must be snake_case (the metrics registry enforces it). *)

val sample : t -> now:float -> unit
(** Reads every gauge once, tagging trace counter events with [now]. *)

val samples : t -> int
(** Number of [sample] calls so far. *)

val summaries : t -> summary list
(** One summary per gauge, in registration order. *)

val find : t -> node:int -> name:string -> summary option

val find_summary : summary list -> node:int -> name:string -> summary option
(** Lookup in an already-extracted summary list (e.g. a run result). *)

val to_json : t -> Bamboo_util.Json.t

val pp_summary : Format.formatter -> summary -> unit
