module Config = Bamboo.Config
module Schedule = Bamboo_faults.Schedule
module Rng = Bamboo_util.Rng
module Json = Bamboo_util.Json

type t = { label : string; rate : float; config : Config.t }

let pick rng arr = arr.(Rng.int rng (Array.length arr))

(* A random nonempty proper subset of [0, n), sorted. *)
let random_subset rng n =
  let ids = Array.init n Fun.id in
  Rng.shuffle rng ids;
  let k = 1 + Rng.int rng (n - 1) in
  List.sort compare (Array.to_list (Array.sub ids 0 k))

(* One random fault entry. [can_crash_forever node] limits permanent
   crashes to the fault budget; every other fault kind heals within the
   run so the bounded-liveness monitor stays applicable. *)
let random_entry rng ~n ~timeout ~can_crash_forever =
  let at = 0.3 +. Rng.float rng 1.0 in
  let until = Some (at +. 0.2 +. Rng.float rng 0.6) in
  let node () = Rng.int rng n in
  let one_src () = Schedule.Nodes [ node () ] in
  match Rng.int rng 10 with
  | 0 ->
      let a = random_subset rng n in
      { Schedule.at; until; spec = Schedule.Partition { a; b = [] } }
  | 1 ->
      let target = node () in
      let until = if can_crash_forever target && Rng.bool rng then None else until in
      { Schedule.at; until; spec = Schedule.Crash { node = target } }
  | 2 ->
      let mu = Rng.float rng (1.5 *. timeout) in
      {
        Schedule.at;
        until;
        spec =
          Schedule.Link_delay
            { src = one_src (); dst = Schedule.All; mu; sigma = mu /. 5.0 };
      }
  | 3 ->
      let lo = Rng.float rng timeout in
      let hi = lo +. Rng.float rng timeout in
      {
        Schedule.at;
        until;
        spec = Schedule.Link_spike { src = one_src (); dst = Schedule.All; lo; hi };
      }
  | 4 ->
      {
        Schedule.at;
        until;
        spec =
          Schedule.Link_loss
            {
              src = one_src ();
              dst = Schedule.All;
              rate = Rng.float rng 0.3;
            };
      }
  | 5 ->
      {
        Schedule.at;
        until;
        spec =
          Schedule.Link_dup
            { src = one_src (); dst = Schedule.All; prob = Rng.float rng 0.5 };
      }
  | 6 ->
      {
        Schedule.at;
        until;
        spec =
          Schedule.Link_reorder
            {
              src = one_src ();
              dst = Schedule.All;
              prob = Rng.float rng 0.5;
              jitter = Rng.float rng timeout;
            };
      }
  | 7 ->
      {
        Schedule.at;
        until;
        spec =
          Schedule.Cpu_slow { node = node (); factor = 1.5 +. Rng.float rng 6.5 };
      }
  | 8 ->
      {
        Schedule.at;
        until;
        spec =
          Schedule.Clock_skew
            { node = node (); factor = 0.5 +. Rng.float rng 1.5 };
      }
  | _ ->
      let lo = Rng.float rng timeout in
      let hi = lo +. Rng.float rng (0.5 *. timeout) in
      { Schedule.at; until; spec = Schedule.Fluctuation { lo; hi } }

let generate ~root_seed ~index ~protocols =
  if protocols = [] then invalid_arg "Scenario.generate: no protocols";
  (* Per-index stream: scenario [i] must not depend on scenarios [< i], so
     a parallel sweep samples the same space in any execution order. *)
  let rng = Rng.create ~seed:((root_seed * 1_000_003) + (index * 7919)) in
  let protocol = pick rng (Array.of_list protocols) in
  let n = pick rng [| 4; 4; 5; 7 |] in
  let f = (n - 1) / 3 in
  let byz_no = Rng.int rng (f + 1) in
  let strategy =
    if byz_no = 0 then Config.Honest
    else pick rng [| Config.Honest; Config.Silence; Config.Fork |]
  in
  let timeout = pick rng [| 0.03; 0.05; 0.1 |] in
  let mu = (0.5 +. Rng.float rng 3.0) /. 1000.0 in
  let bsize = pick rng [| 100; 400 |] in
  let rate = float_of_int (500 + (500 * Rng.int rng 5)) in
  let nfaults = Rng.int rng 5 in
  let crashed_forever = ref [] in
  let faults =
    List.init nfaults (fun _ ->
        let can_crash_forever node =
          let would =
            List.sort_uniq compare (node :: !crashed_forever)
          in
          byz_no + List.length would <= f
        in
        let e = random_entry rng ~n ~timeout ~can_crash_forever in
        (match e.Schedule.spec, e.Schedule.until with
        | Schedule.Crash { node }, None ->
            crashed_forever := List.sort_uniq compare (node :: !crashed_forever)
        | _ -> ());
        e)
  in
  (* Size the horizon so the liveness monitor's recovery budget fits after
     the last heal, including the clock-skew stretch it applies. *)
  let heal =
    List.fold_left
      (fun acc (e : Schedule.entry) ->
        Float.max acc (match e.until with Some u -> u | None -> e.at))
      0.0 faults
  in
  let skew =
    List.fold_left
      (fun acc (e : Schedule.entry) ->
        match e.spec with
        | Schedule.Clock_skew { factor; _ } -> Float.max acc factor
        | _ -> acc)
      1.0 faults
  in
  let budget =
    float_of_int Monitor.default_opts.Monitor.recover_views *. timeout *. skew
  in
  let runtime = Float.max 1.5 (heal +. budget +. 0.3) in
  let config =
    {
      Config.default with
      Config.protocol;
      n;
      byz_no;
      strategy;
      bsize;
      timeout;
      mu;
      sigma = mu /. 5.0;
      tc_adopt_qc = protocol = Config.Fasthotstuff;
      runtime;
      warmup = 0.25;
      seed = Rng.int rng 1_000_000;
      jobs = 1;
      faults;
    }
  in
  (match Config.validate config with
  | Ok _ -> ()
  | Error e ->
      invalid_arg
        (Printf.sprintf "Scenario.generate: invalid scenario %d: %s" index e));
  { label = Printf.sprintf "s%03d" index; rate; config }

let describe t =
  let c = t.config in
  let strategy =
    match c.Config.strategy with
    | Config.Honest -> "honest"
    | Config.Silence -> "silence"
    | Config.Fork -> "fork"
  in
  Printf.sprintf
    "%s %-12s n=%d byz=%d/%-7s timeout=%3.0fms faults=%d rate=%4.0f \
     runtime=%.2fs seed=%d"
    t.label
    (Config.protocol_name c.Config.protocol)
    c.Config.n c.Config.byz_no strategy
    (c.Config.timeout *. 1000.0)
    (List.length c.Config.faults)
    t.rate c.Config.runtime c.Config.seed

let to_json t =
  Json.Obj
    [
      ("label", Json.String t.label);
      ("rate", Json.Float t.rate);
      ("config", Config.to_json t.config);
    ]

let of_json json =
  match json with
  | Json.Obj _ -> (
      let label =
        match Json.member "label" json with
        | Json.String s -> Ok s
        | Json.Null -> Error "scenario: missing \"label\""
        | _ -> Error "scenario: \"label\" must be a string"
      in
      let rate =
        match Json.member "rate" json with
        | Json.Null -> Error "scenario: missing \"rate\""
        | v -> (
            try Ok (Json.to_float v)
            with Invalid_argument _ -> Error "scenario: \"rate\" must be a number")
      in
      match (label, rate) with
      | Error e, _ | _, Error e -> Error e
      | Ok label, Ok rate -> (
          match Config.of_json (Json.member "config" json) with
          | Error e -> Error ("scenario config: " ^ e)
          | Ok config -> (
              match Config.validate config with
              | Error e -> Error ("scenario config: " ^ e)
              | Ok config -> Ok { label; rate; config })))
  | _ -> Error "scenario must be a JSON object"
