(** Deterministic chaos scenarios for the fuzzer.

    A scenario is one complete, self-contained simulation cell: a full
    {!Bamboo.Config.t} (protocol, cluster size, Byzantine strategy, network
    parameters, seed and a generated {!Bamboo_faults.Schedule}) plus the
    open-loop arrival rate. [generate ~root_seed ~index] is a pure function
    of its arguments — scenario [i] never depends on scenarios [< i], so a
    fuzz sweep explores the same scenarios whatever the job count or
    execution order.

    Scenarios round-trip through JSON (the [config] member is the ordinary
    configuration-file schema, so its [faults] section can also be fed
    straight back to [--faults]). *)

type t = {
  label : string;  (** ["s<index>"], stable across runs. *)
  rate : float;  (** Open-loop arrival rate, tx/s. *)
  config : Bamboo.Config.t;
}

val generate :
  root_seed:int -> index:int -> protocols:Bamboo.Config.protocol list -> t
(** Samples protocol, cluster size, Byzantine count/strategy, timeout,
    network delay parameters and a random fault schedule, all from an RNG
    stream derived from [(root_seed, index)] alone. The generated
    configuration always validates, keeps at most [f] replicas permanently
    faulty, and sizes the runtime so the bounded-liveness monitor has its
    full recovery budget after the last heal. *)

val describe : t -> string
(** One deterministic summary line (protocol, n, byz, faults, rate). *)

val to_json : t -> Bamboo_util.Json.t

val of_json : Bamboo_util.Json.t -> (t, string) result
