module Config = Bamboo.Config
module Runtime = Bamboo.Runtime
module Workload = Bamboo.Workload
module Schedule = Bamboo_faults.Schedule
module Trace = Bamboo_obs.Trace
module Pool = Bamboo_util.Pool
module Json = Bamboo_util.Json

type verdict = { scenario : Scenario.t; report : Monitor.report }

let failed v = not (Monitor.pass v.report)

(* Generous enough that a fuzz-sized run never wraps: protocol events for
   a few virtual seconds at n <= 7 are well under a million. *)
let trace_capacity = 1 lsl 20

let run_scenario ?wrap ?opts (s : Scenario.t) =
  let trace = Trace.ring ~capacity:trace_capacity in
  let result =
    Runtime.run ~config:s.Scenario.config
      ~workload:(Workload.open_loop ~rate:s.Scenario.rate ())
      ~trace ?wrap_safety:wrap ()
  in
  let events = Trace.events trace in
  let report =
    Monitor.evaluate ?opts ~config:s.Scenario.config ~result ~events ()
  in
  { scenario = s; report }

let fuzz ?wrap ?opts ~root_seed ~budget ~jobs ~protocols () =
  if budget < 0 then invalid_arg "Fuzz.fuzz: budget must be non-negative";
  Pool.map ~jobs
    (fun index ->
      run_scenario ?wrap ?opts
        (Scenario.generate ~root_seed ~index ~protocols))
    (List.init budget Fun.id)

(* A voting rule that forgets the lock: it keeps only the once-per-view
   restriction, so a replica happily votes for a fork branch it should be
   locked against. Exists purely to prove the oracle catches real safety
   violations; never part of any measured protocol. *)
let broken_voting_rule _self (base : Bamboo.Safety.t) =
  {
    base with
    Bamboo.Safety.should_vote =
      (fun ~block ~tc:_ ->
        block.Bamboo_types.Block.view > base.Bamboo.Safety.last_voted_view ());
  }

(* --- shrinking --- *)

type minimized = {
  scenario : Scenario.t;
  invariant : Monitor.invariant;
  detail : string;
  runs : int;
}

(* The largest replica id an entry references; -1 for cluster-wide
   faults. Used to decide whether the entry survives an [n] reduction. *)
let max_node_ref (e : Schedule.entry) =
  let of_set = function
    | Schedule.All -> -1
    | Schedule.Nodes ids -> List.fold_left max (-1) ids
  in
  match e.spec with
  | Schedule.Partition { a; b } ->
      List.fold_left max (-1) (a @ b)
  | Schedule.Crash { node }
  | Schedule.Cpu_slow { node; _ }
  | Schedule.Clock_skew { node; _ } ->
      node
  | Schedule.Link_delay { src; dst; _ }
  | Schedule.Link_spike { src; dst; _ }
  | Schedule.Link_loss { src; dst; _ }
  | Schedule.Link_dup { src; dst; _ }
  | Schedule.Link_reorder { src; dst; _ } ->
      max (of_set src) (of_set dst)
  | Schedule.Fluctuation _ -> -1

let with_config (s : Scenario.t) config = { s with Scenario.config }

let shrink ?wrap ?opts (v : verdict) =
  let target =
    match v.report.Monitor.violations with
    | [] -> invalid_arg "Fuzz.shrink: verdict has no violation"
    | viol :: _ -> viol.Monitor.invariant
  in
  let runs = ref 0 in
  (* [fails s] re-runs [s] and keeps it only if the target invariant is
     still violated; returns the matching detail. *)
  let fails s =
    incr runs;
    let v = run_scenario ?wrap ?opts s in
    List.find_opt
      (fun (viol : Monitor.violation) -> viol.Monitor.invariant = target)
      v.report.Monitor.violations
  in
  let valid (s : Scenario.t) =
    match Config.validate s.Scenario.config with Ok _ -> true | Error _ -> false
  in
  let try_candidate cand =
    if valid cand then
      match fails cand with Some _ -> Some cand | None -> None
    else None
  in
  let keep_if_fails s cand =
    match try_candidate cand with Some c -> c | None -> s
  in
  (* Pass 1: drop fault entries one at a time, greedily to a fixpoint. *)
  let drop_entries s =
    let rec go i (s : Scenario.t) =
      let faults = s.Scenario.config.Config.faults in
      if i >= List.length faults then s
      else
        let cand =
          with_config s
            {
              s.Scenario.config with
              Config.faults = List.filteri (fun j _ -> j <> i) faults;
            }
        in
        match try_candidate cand with
        | Some c -> go i c (* entry i is gone; index i is now the next one *)
        | None -> go (i + 1) s
    in
    go 0 s
  in
  (* Pass 2: shorten the horizon. *)
  let shorten s =
    let rec go (s : Scenario.t) =
      let c = s.Scenario.config in
      let floor = c.Config.warmup +. 0.5 in
      let runtime = Float.max floor (c.Config.runtime *. 0.6) in
      if runtime >= c.Config.runtime then s
      else
        match
          try_candidate (with_config s { c with Config.runtime = runtime })
        with
        | Some c -> go c
        | None -> s
    in
    go s
  in
  (* Pass 3: step the cluster size down the generator's ladder, when no
     fault entry references a dropped replica. *)
  let reduce_n s =
    List.fold_left
      (fun (s : Scenario.t) n' ->
        let c = s.Scenario.config in
        if n' >= c.Config.n then s
        else if
          List.exists (fun e -> max_node_ref e >= n') c.Config.faults
        then s
        else
          let f' = (n' - 1) / 3 in
          let cand =
            with_config s
              {
                c with
                Config.n = n';
                byz_no = min c.Config.byz_no f';
              }
          in
          keep_if_fails s cand)
      s [ 7; 5; 4 ]
  in
  (* Pass 4: fewer Byzantine replicas. *)
  let reduce_byz s =
    let rec go (s : Scenario.t) =
      let c = s.Scenario.config in
      if c.Config.byz_no = 0 then s
      else
        match
          try_candidate
            (with_config s { c with Config.byz_no = c.Config.byz_no - 1 })
        with
        | Some c -> go c
        | None -> s
    in
    go s
  in
  let round s = reduce_byz (reduce_n (shorten (drop_entries s))) in
  let rec fixpoint i s =
    let s' = round s in
    if i >= 3 || s' = s then s' else fixpoint (i + 1) s'
  in
  let minimized = fixpoint 0 v.scenario in
  (* One final run pins the detail reported by the minimized scenario. *)
  let detail =
    match fails minimized with
    | Some viol -> viol.Monitor.detail
    | None -> assert false (* every kept candidate fails by construction *)
  in
  { scenario = minimized; invariant = target; detail; runs = !runs }

(* --- reproducer artifacts --- *)

let artifact_to_json (m : minimized) =
  Json.Obj
    [
      ("invariant", Json.String (Monitor.invariant_name m.invariant));
      ("detail", Json.String m.detail);
      ("scenario", Scenario.to_json m.scenario);
    ]

let artifact_of_json json =
  match json with
  | Json.Obj _ -> (
      let invariant =
        match Json.member "invariant" json with
        | Json.String s -> Monitor.invariant_of_name s
        | Json.Null -> Error "reproducer: missing \"invariant\""
        | _ -> Error "reproducer: \"invariant\" must be a string"
      in
      match invariant with
      | Error e -> Error e
      | Ok invariant -> (
          match Scenario.of_json (Json.member "scenario" json) with
          | Error e -> Error e
          | Ok scenario -> Ok (scenario, invariant)))
  | _ -> Error "reproducer must be a JSON object"
