module Trace = Bamboo_obs.Trace
module Schedule = Bamboo_faults.Schedule
module Runtime = Bamboo.Runtime
module Config = Bamboo.Config
module Ids = Bamboo_types.Ids
module Tx = Bamboo_types.Tx

type invariant = Agreement | Cert_unique | Vote_safety | Liveness

let invariant_name = function
  | Agreement -> "agreement"
  | Cert_unique -> "cert_unique"
  | Vote_safety -> "vote_safety"
  | Liveness -> "liveness"

let invariant_of_name = function
  | "agreement" -> Ok Agreement
  | "cert_unique" -> Ok Cert_unique
  | "vote_safety" -> Ok Vote_safety
  | "liveness" -> Ok Liveness
  | s -> Error (Printf.sprintf "unknown invariant %S" s)

type violation = { invariant : invariant; detail : string }

type report = {
  violations : violation list;
  skipped : (invariant * string) list;
}

let pass r = r.violations = []

type opts = { recover_views : int }

let default_opts = { recover_views = 10 }

(* --- agreement --- *)

let check_agreement ~(ledgers : Runtime.ledger array) ~local_conflicts =
  let out = ref [] in
  let add detail = out := { invariant = Agreement; detail } :: !out in
  Array.iteri
    (fun i conflicted ->
      if conflicted then
        add
          (Printf.sprintf
             "replica %d saw a commit conflict with its finalized prefix" i))
    local_conflicts;
  let n = Array.length ledgers in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let li = ledgers.(i) and lj = ledgers.(j) in
      let common = min (Array.length li) (Array.length lj) in
      (* First height where the committed chains disagree, if any. *)
      let divergence = ref None in
      (try
         for h = 0 to common - 1 do
           if not (String.equal li.(h).Runtime.l_hash lj.(h).Runtime.l_hash)
           then begin
             divergence := Some h;
             raise Exit
           end
         done
       with Exit -> ());
      match !divergence with
      | Some h ->
          add
            (Printf.sprintf
               "replicas %d and %d committed different blocks at height %d \
                (%s vs %s)"
               i j (h + 1)
               (Ids.short li.(h).Runtime.l_hash)
               (Ids.short lj.(h).Runtime.l_hash))
      | None ->
          (* Hashes agree on the whole common prefix; the committed tx
             order must then be identical too (independent of hashing). *)
          let txs_of (l : Runtime.ledger) =
            List.concat_map
              (fun (b : Runtime.ledger_block) -> b.Runtime.l_txs)
              (Array.to_list (Array.sub l 0 common))
          in
          if txs_of li <> txs_of lj then
            add
              (Printf.sprintf
                 "replicas %d and %d agree on block hashes but diverge in \
                  committed tx order over heights 1..%d"
                 i j common)
    done
  done;
  List.rev !out

(* --- certification uniqueness --- *)

let check_certification events =
  let by_view : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let out = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      if e.kind = Trace.Qc_formed && e.span <> 0 then
        match Hashtbl.find_opt by_view e.view with
        | None -> Hashtbl.add by_view e.view e.span
        | Some span when span = e.span -> ()
        | Some span ->
            Hashtbl.replace by_view e.view e.span;
            out :=
              {
                invariant = Cert_unique;
                detail =
                  Printf.sprintf
                    "two different blocks certified in view %d (spans %d \
                     and %d)"
                    e.view span e.span;
              }
              :: !out)
    events;
  List.rev !out

(* --- vote safety --- *)

let check_vote_safety ~byz_no events =
  let voted : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let abandoned : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  let add detail = out := { invariant = Vote_safety; detail } :: !out in
  List.iter
    (fun (e : Trace.event) ->
      if e.node >= byz_no then
        match e.kind with
        | Trace.Timeout_fired ->
            let prev =
              match Hashtbl.find_opt abandoned e.node with
              | None -> 0
              | Some v -> v
            in
            Hashtbl.replace abandoned e.node (max prev e.view)
        | Trace.Vote_sent ->
            (match Hashtbl.find_opt abandoned e.node with
            | Some av when e.view <= av ->
                add
                  (Printf.sprintf
                     "replica %d voted in view %d after abandoning view %d"
                     e.node e.view av)
            | Some _ | None -> ());
            if Hashtbl.mem voted (e.node, e.view) then
              add
                (Printf.sprintf "replica %d voted twice in view %d" e.node
                   e.view)
            else Hashtbl.add voted (e.node, e.view) ()
        (* Enumerated so that adding a Trace.kind forces a decision about
           whether vote safety must observe it. *)
        | Trace.Proposal_sent | Trace.Proposal_received | Trace.Vote_received
        | Trace.Qc_formed | Trace.Timeout_received | Trace.View_change
        | Trace.Commit | Trace.Fork_prune | Trace.Tx_enqueue
        | Trace.Tx_dequeue | Trace.Service | Trace.Gauge | Trace.Fault_inject
        | Trace.Fault_heal ->
            ())
    events;
  List.rev !out

(* --- bounded liveness --- *)

(* Whether the scenario leaves the bounded-liveness guarantee meaningful:
   partial synchrony only promises progress once at most f replicas are
   faulty and message delays fall back under the timeout. Each disqualifier
   returns a reason so reports say why the check was vacuous. *)
let liveness_applicability ~(config : Config.t) =
  let n = config.Config.n in
  let f = (n - 1) / 3 in
  let runtime = config.Config.runtime in
  let timeout = config.Config.timeout in
  (* A fault that never heals inside the horizon is permanent for this
     run's purposes. *)
  let permanent (e : Schedule.entry) =
    match e.until with Some u -> u >= runtime | None -> true
  in
  let heal_of (e : Schedule.entry) =
    match e.until with Some u when u < runtime -> u | _ -> e.at
  in
  let crashed_forever =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun (e : Schedule.entry) ->
           match e.spec with
           | Schedule.Crash { node } when permanent e -> Some node
           | _ -> None)
         config.Config.faults)
  in
  let rec scan = function
    | [] -> Ok ()
    | (e : Schedule.entry) :: rest ->
        let bad reason = Error reason in
        if not (permanent e) then scan rest
        else begin
          match e.spec with
          | Schedule.Partition _ -> bad "permanent partition"
          | Schedule.Fluctuation { hi; _ } when hi >= 0.5 *. timeout ->
              bad "permanent delay fluctuation at the timeout scale"
          | Schedule.Link_delay { mu; _ } when mu >= 0.5 *. timeout ->
              bad "permanent link delay at the timeout scale"
          | Schedule.Link_spike { hi; _ } when hi >= 0.5 *. timeout ->
              bad "permanent delay spikes at the timeout scale"
          | Schedule.Link_loss { rate; _ } when rate > 0.3 ->
              bad "permanent heavy link loss"
          | _ -> scan rest
        end
  in
  if config.Config.byz_no + List.length crashed_forever > f then
    Error
      (Printf.sprintf "more than f=%d replicas permanently faulty (%d)" f
         (config.Config.byz_no + List.length crashed_forever))
  else if config.Config.backoff > 1.0 && config.Config.faults <> [] then
    Error "backoff timers make the view budget unbounded under faults"
  else
    match scan config.Config.faults with
    | Error _ as e -> e
    | Ok () ->
        let heal =
          List.fold_left
            (fun acc e -> Float.max acc (heal_of e))
            0.0 config.Config.faults
        in
        (* Clock skew stretches one replica's timers; scale the budget by
           the largest factor so a slow clock cannot fake a violation. *)
        let skew =
          List.fold_left
            (fun acc (e : Schedule.entry) ->
              match e.spec with
              | Schedule.Clock_skew { factor; _ } -> Float.max acc factor
              | _ -> acc)
            1.0 config.Config.faults
        in
        Ok (heal, skew)

let check_liveness ?(opts = default_opts) ~(config : Config.t) events =
  match liveness_applicability ~config with
  | Error reason -> Error reason
  | Ok (heal, skew) ->
      let budget =
        float_of_int opts.recover_views *. config.Config.timeout *. skew
      in
      let deadline = heal +. budget in
      if deadline > config.Config.runtime then
        Error
          (Printf.sprintf
             "horizon too short: last heal at %.2fs + %d-view budget ends \
              at %.2fs, past the %.2fs runtime"
             heal opts.recover_views deadline config.Config.runtime)
      else if
        List.exists
          (fun (e : Trace.event) ->
            e.kind = Trace.Commit && e.ts > heal && e.ts <= deadline)
          events
      then Ok []
      else
        Ok
          [
            {
              invariant = Liveness;
              detail =
                Printf.sprintf
                  "no commit within %d views (%.2fs) of the last heal at \
                   %.2fs"
                  opts.recover_views budget heal;
            };
          ]

(* --- deployment traces (merged multi-process JSONL) --- *)

(* Cluster traces have no shared span counter and no end-of-run ledger
   extraction, so these checks key on the block hash carried in event
   [args] instead. Events lacking the expected args (e.g. simulator
   traces) are skipped rather than misread. *)

module Json = Bamboo_util.Json

let arg_string key (e : Trace.event) =
  match List.assoc_opt key e.args with
  | Some (Json.String s) -> Some s
  | Some _ | None -> None

let arg_int key (e : Trace.event) =
  match List.assoc_opt key e.args with
  | Some (Json.Int i) -> Some i
  | Some _ | None -> None

let by_time (a : Trace.event) (b : Trace.event) =
  let c = Float.compare a.ts b.ts in
  if c <> 0 then c
  else
    let c = Int.compare a.node b.node in
    if c <> 0 then c else Int.compare a.seq b.seq

let check_trace ?(byz_no = 0) ?expect_commit_after events =
  let events = List.sort by_time events in
  let out = ref [] in
  let add invariant detail = out := { invariant; detail } :: !out in
  (* agreement: per-node height -> hash from Commit events; conflicts
     within a node or across nodes at the same height are violations.
     [at_height] keeps per-height (node, hash) pairs in trace order so
     cross-node comparison is deterministic. *)
  let commits : (int * int, string) Hashtbl.t = Hashtbl.create 1024 in
  let at_height : (int, (int * string) list) Hashtbl.t = Hashtbl.create 1024 in
  (* cert uniqueness: view -> certified hash from Qc_formed events. *)
  let certified : (int, string) Hashtbl.t = Hashtbl.create 256 in
  (* vote safety: (node, view) -> voted hash; node -> highest abandoned
     view. A [Fault_heal] event for a node marks its crash-recovery
     restart and resets that node's vote state: a recovered replica
     re-votes benignly while it catches up. *)
  let voted : (int * int, string) Hashtbl.t = Hashtbl.create 1024 in
  let abandoned : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let heal node =
    Hashtbl.remove abandoned node;
    (* Collecting dead keys into a list is order-insensitive: the same
       set is removed whatever order the buckets are visited in. *)
    let[@lint.allow "no-order-leak"] stale =
      Hashtbl.fold
        (fun (n, v) _ acc -> if n = node then (n, v) :: acc else acc)
        voted []
    in
    List.iter (Hashtbl.remove voted) stale
  in
  let saw_commit_after = ref false in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Commit -> (
          (match expect_commit_after with
          | Some t when e.ts > t -> saw_commit_after := true
          | Some _ | None -> ());
          match (arg_string "hash" e, arg_int "height" e) with
          | Some hash, Some height -> (
              (match Hashtbl.find_opt commits (e.node, height) with
              | Some prev when not (String.equal prev hash) ->
                  add Agreement
                    (Printf.sprintf
                       "replica %d re-committed height %d with a different \
                        block (%s then %s)"
                       e.node height prev hash)
              | Some _ | None -> ());
              Hashtbl.replace commits (e.node, height) hash;
              (* Cross-node: compare against every other node's commit at
                 this height seen so far (trace order). *)
              let seen =
                match Hashtbl.find_opt at_height height with
                | Some l -> l
                | None -> []
              in
              List.iter
                (fun (n, other) ->
                  if n <> e.node && not (String.equal other hash) then
                    add Agreement
                      (Printf.sprintf
                         "replicas %d and %d committed different blocks at \
                          height %d (%s vs %s)"
                         (min n e.node) (max n e.node) height
                         (if n < e.node then other else hash)
                         (if n < e.node then hash else other)))
                seen;
              if
                not
                  (List.exists
                     (fun (n, h) -> n = e.node && String.equal h hash)
                     seen)
              then Hashtbl.replace at_height height ((e.node, hash) :: seen))
          | _ -> ())
      | Trace.Qc_formed -> (
          match arg_string "hash" e with
          | None -> ()
          | Some hash -> (
              match Hashtbl.find_opt certified e.view with
              | None -> Hashtbl.add certified e.view hash
              | Some prev when String.equal prev hash -> ()
              | Some prev ->
                  Hashtbl.replace certified e.view hash;
                  add Cert_unique
                    (Printf.sprintf
                       "two different blocks certified in view %d (%s and %s)"
                       e.view prev hash)))
      | Trace.Timeout_fired ->
          if e.node >= byz_no then begin
            let prev =
              match Hashtbl.find_opt abandoned e.node with
              | None -> 0
              | Some v -> v
            in
            Hashtbl.replace abandoned e.node (max prev e.view)
          end
      | Trace.Vote_sent ->
          if e.node >= byz_no then begin
            (match Hashtbl.find_opt abandoned e.node with
            | Some av when e.view <= av ->
                add Vote_safety
                  (Printf.sprintf
                     "replica %d voted in view %d after abandoning view %d"
                     e.node e.view av)
            | Some _ | None -> ());
            match arg_string "hash" e with
            | None -> ()
            | Some hash -> (
                match Hashtbl.find_opt voted (e.node, e.view) with
                | None -> Hashtbl.add voted (e.node, e.view) hash
                | Some prev when String.equal prev hash ->
                    () (* benign re-send (retransmit or restart catch-up) *)
                | Some prev ->
                    add Vote_safety
                      (Printf.sprintf
                         "replica %d voted for two blocks in view %d (%s \
                          and %s)"
                         e.node e.view prev hash))
          end
      | Trace.Fault_heal -> heal e.node
      (* Enumerated so that adding a Trace.kind forces a decision about
         whether the deployment checks must observe it. *)
      | Trace.Proposal_sent | Trace.Proposal_received | Trace.Vote_received
      | Trace.Timeout_received | Trace.View_change | Trace.Fork_prune
      | Trace.Tx_enqueue | Trace.Tx_dequeue | Trace.Service | Trace.Gauge
      | Trace.Fault_inject ->
          ())
    events;
  (match expect_commit_after with
  | Some t when not !saw_commit_after ->
      add Liveness
        (Printf.sprintf "no commit after t=%.2fs (expected the cluster to \
                         keep committing)" t)
  | Some _ | None -> ());
  { violations = List.rev !out; skipped = [] }

(* --- full evaluation --- *)

let evaluate ?(opts = default_opts) ~config ~(result : Runtime.result) ~events
    () =
  let agreement =
    check_agreement ~ledgers:result.Runtime.ledgers
      ~local_conflicts:result.Runtime.violations
  in
  let certification = check_certification events in
  let votes = check_vote_safety ~byz_no:config.Config.byz_no events in
  let liveness, skipped =
    match check_liveness ~opts ~config events with
    | Ok v -> (v, [])
    | Error reason -> ([], [ (Liveness, reason) ])
  in
  { violations = agreement @ certification @ votes @ liveness; skipped }
