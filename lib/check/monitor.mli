(** The global invariant oracle (paper §III-C, checked rather than
    assumed).

    The paper's forking and silence attacks "degrade performance without
    violating safety" — which is only meaningful if safety actually holds
    in the implementation. These monitors verify it after a run, consuming
    two zero-cost-when-disabled sources: the {!Bamboo_obs.Trace} event
    stream (a ring sink attached only when checking) and the per-replica
    end-of-run ledgers that {!Bamboo.Runtime} extracts from the block
    forests. Nothing here runs inside the simulation, so an unchecked run
    is bit-identical to a checked one.

    Four invariants:
    - {e agreement}: every pair of replicas' committed chains are
      prefix-compatible (same block hash at every common height) and the
      committed transaction order over the common prefix is identical; no
      replica ever saw a commit conflict with its finalized prefix.
    - {e certification uniqueness}: at most one block is certified per
      view — two QCs for different blocks in one view require an honest
      quorum overlap to have double-voted.
    - {e vote safety}: no honest replica votes twice in a view, and no
      honest replica votes in a view it abandoned by broadcasting a
      timeout.
    - {e bounded liveness}: with at most [f] permanently faulty or
      Byzantine replicas and a healed network, commits resume within a
      configurable number of views of the last heal. *)

type invariant = Agreement | Cert_unique | Vote_safety | Liveness

val invariant_name : invariant -> string
(** ["agreement"], ["cert_unique"], ["vote_safety"], ["liveness"]. *)

val invariant_of_name : string -> (invariant, string) result

type violation = { invariant : invariant; detail : string }

type report = {
  violations : violation list;
  skipped : (invariant * string) list;
      (** Checks that were not applicable to this scenario (e.g. liveness
          under a permanent partition), with the reason. *)
}

val pass : report -> bool

type opts = {
  recover_views : int;
      (** Bounded-liveness budget: commits must resume within this many
          view-timeout periods of the last fault heal. *)
}

val default_opts : opts
(** [recover_views = 10]. *)

(** {2 Individual monitors} *)

val check_agreement :
  ledgers:Bamboo.Runtime.ledger array ->
  local_conflicts:bool array ->
  violation list
(** Pairwise prefix compatibility and committed-tx-order identity across
    all replica ledgers, plus any replica's local commit-conflict flag. *)

val check_certification : Bamboo_obs.Trace.event list -> violation list
(** At most one certified block (trace span) per view across all
    [Qc_formed] events. *)

val check_vote_safety :
  byz_no:int -> Bamboo_obs.Trace.event list -> violation list
(** Double votes and votes in abandoned views, from [Vote_sent] /
    [Timeout_fired] events of honest replicas (ids [>= byz_no]). *)

val check_liveness :
  ?opts:opts ->
  config:Bamboo.Config.t ->
  Bamboo_obs.Trace.event list ->
  (violation list, string) result
(** [Ok violations] when the bounded-liveness check applies; [Error
    reason] when the scenario makes it vacuous (more than [f] replicas
    permanently faulty, a never-healed partition, permanent delays at the
    timeout scale, backoff timers under faults, or a horizon too short to
    contain the recovery budget). *)

val evaluate :
  ?opts:opts ->
  config:Bamboo.Config.t ->
  result:Bamboo.Runtime.result ->
  events:Bamboo_obs.Trace.event list ->
  unit ->
  report
(** Runs all four monitors over one finished run. *)

val check_trace :
  ?byz_no:int ->
  ?expect_commit_after:float ->
  Bamboo_obs.Trace.event list ->
  report
(** Deployment-trace variant of the monitors, for merged multi-process
    JSONL traces ([bamboo cluster]) where span ids are per-process
    counters and no ledger extraction exists. Events are keyed by the
    block hash carried in their [args]:

    - {e agreement}: no replica re-commits a height with a different
      block, and no two replicas commit different blocks at the same
      height ([Commit] events);
    - {e certification uniqueness}: one certified block per view
      ([Qc_formed] events carrying a ["hash"] arg);
    - {e vote safety}: no honest replica (id [>= byz_no]) votes for two
      different blocks in one view or votes in a view it abandoned.
      Re-sending the same vote is benign (retransmits, restart
      catch-up), and a [Fault_heal] event for a node — injected by the
      trace merge at process restart — resets that node's vote state,
      since a recovered replica legitimately re-votes while catching up;
    - {e liveness}: when [expect_commit_after] is given, at least one
      commit must land after that timestamp (e.g. after the last
      restart in a chaos schedule).

    Events lacking the expected args (simulator traces) are skipped, not
    misread; events are sorted by [(ts, node, seq)] before checking. *)
