(** The deterministic chaos fuzzer: samples {!Scenario}s from a root seed,
    runs them on the worker-domain pool, evaluates every {!Monitor}
    invariant, and shrinks failures to minimal reproducers.

    Determinism contract: [fuzz] with the same [root_seed], [budget] and
    [protocols] produces the same verdict list — structurally equal, in
    the same order — at any [jobs] value and across repeated runs.
    Shrinking and replay are single-threaded and equally deterministic, so
    a dumped reproducer re-runs to the same verdict anywhere. *)

type verdict = { scenario : Scenario.t; report : Monitor.report }

val failed : verdict -> bool

val run_scenario :
  ?wrap:(Bamboo_types.Ids.replica -> Bamboo.Safety.t -> Bamboo.Safety.t) ->
  ?opts:Monitor.opts ->
  Scenario.t ->
  verdict
(** One simulation with a ring trace attached, evaluated against all
    monitors. [wrap] (test-only) plants broken protocol rules via
    {!Bamboo.Runtime.run}'s [wrap_safety]. *)

val fuzz :
  ?wrap:(Bamboo_types.Ids.replica -> Bamboo.Safety.t -> Bamboo.Safety.t) ->
  ?opts:Monitor.opts ->
  root_seed:int ->
  budget:int ->
  jobs:int ->
  protocols:Bamboo.Config.protocol list ->
  unit ->
  verdict list
(** [budget] scenarios, indices [0 .. budget-1], run on up to [jobs]
    worker domains; verdicts are returned in index order. *)

val broken_voting_rule :
  Bamboo_types.Ids.replica -> Bamboo.Safety.t -> Bamboo.Safety.t
(** A deliberately unsafe voting rule — it drops the lock check and keeps
    only once-per-view — used as [wrap] to validate that the oracle
    catches genuine safety violations (the agreement monitor must flag
    runs where a fork attacker exploits it). Test/self-check only. *)

type minimized = {
  scenario : Scenario.t;  (** The shrunk scenario; still fails. *)
  invariant : Monitor.invariant;  (** The invariant it still violates. *)
  detail : string;  (** The violation detail of the minimized run. *)
  runs : int;  (** Simulations spent shrinking. *)
}

val shrink :
  ?wrap:(Bamboo_types.Ids.replica -> Bamboo.Safety.t -> Bamboo.Safety.t) ->
  ?opts:Monitor.opts ->
  verdict ->
  minimized
(** Greedy deterministic minimization of a failing verdict, preserving the
    first violated invariant: drops fault-schedule entries one by one,
    shortens the horizon, steps the cluster size down and reduces the
    Byzantine count, keeping each reduction only if the scenario still
    violates the same invariant. Raises [Invalid_argument] on a passing
    verdict. *)

(** {2 Reproducer artifacts} *)

val artifact_to_json : minimized -> Bamboo_util.Json.t
(** Self-contained reproducer: the scenario (whose [config.faults] section
    is [--faults]-compatible) plus the violated invariant and detail. *)

val artifact_of_json :
  Bamboo_util.Json.t -> (Scenario.t * Monitor.invariant, string) result
