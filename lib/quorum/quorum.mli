(** The quorum system (paper §III-E): accumulates votes into quorum
    certificates via the [voted]/[certified] pair of interfaces, and
    timeout messages into timeout certificates.

    For [n = 3f+1] replicas the quorum size is [2f+1]; for other [n] it is
    [ceil(2n/3)] rounded to tolerate [f = floor((n-1)/3)] faults. Duplicate
    votes from the same replica are ignored. Aggregation state below the
    current prune view can be garbage-collected with {!gc}. *)

open Bamboo_types

type t

val create : n:int -> t
(** [create ~n] for a cluster of [n] replicas. *)

val n : t -> int

val quorum_size : t -> int
(** [2f+1] where [f = (n-1)/3]. *)

val fault_bound : t -> int
(** [f = (n-1)/3]. *)

val voted : t -> Vote.t -> Qc.t option
(** [voted t v] records the vote. Returns [Some qc] exactly once: at the
    moment the quorum threshold for [(v.block, v.view)] is reached. Later
    votes for an already-certified block return [None]. *)

val certified : t -> block:Ids.hash -> view:Ids.view -> Qc.t option
(** The QC for the given block/view if the threshold has been reached
    (also after {!voted} returned it). *)

val vote_count : t -> block:Ids.hash -> view:Ids.view -> int

val timed_out : t -> Timeout_msg.t -> Tcert.t option
(** Analogue of {!voted} for timeout messages: returns the TC exactly once
    when the quorum of timeouts for the view is assembled. *)

val tc_for : t -> view:Ids.view -> Tcert.t option

val timeout_count : t -> view:Ids.view -> int
(** Distinct replicas whose timeout for the view has been recorded. *)

val gc : t -> below_view:Ids.view -> unit
(** Drops all aggregation state for views strictly below [below_view]. *)

val fingerprint : t -> Buffer.t -> unit
(** Appends a canonical digest of the aggregation state (sorted slots,
    sorted voter/sender sets, certificate presence) to [buf]; independent
    of vote/timeout arrival order. Used by the [bamboo_explore] model
    checker's state hashing. *)
