open Bamboo_types

type vote_slot = {
  mutable votes : Vote.t list; (* newest first, distinct voters *)
  mutable voters : int list;
  mutable qc : Qc.t option;
}

type timeout_slot = {
  mutable timeouts : Timeout_msg.t list;
  mutable senders : int list;
  mutable tc : Tcert.t option;
}

(* Vote slots are keyed by (block hash, view). A functorial table with a
   monomorphic hash/equal keeps the per-vote hot path off the polymorphic
   primitives that would otherwise walk the boxed pair on every probe. *)
module Vote_key = struct
  type t = Ids.hash * Ids.view

  let equal (h1, v1) (h2, v2) = Int.equal v1 v2 && String.equal h1 h2
  let hash (h, v) = String.hash h lxor (v * 0x9e3779b1)
end

module Vote_tbl = Hashtbl.Make (Vote_key)

type t = {
  n : int;
  quorum : int;
  vote_slots : vote_slot Vote_tbl.t;
  timeout_slots : (Ids.view, timeout_slot) Hashtbl.t;
}

let create ~n =
  if n <= 0 then invalid_arg "Quorum.create: n must be positive";
  let f = (n - 1) / 3 in
  { n; quorum = (2 * f) + 1; vote_slots = Vote_tbl.create 64; timeout_slots = Hashtbl.create 16 }

let n t = t.n
let quorum_size t = t.quorum
let fault_bound t = (t.n - 1) / 3

let vote_slot t key =
  match Vote_tbl.find_opt t.vote_slots key with
  | Some s -> s
  | None ->
      let s = { votes = []; voters = []; qc = None } in
      Vote_tbl.add t.vote_slots key s;
      s

let voted t (v : Vote.t) =
  let key = (v.block, v.view) in
  let slot = vote_slot t key in
  if List.mem v.voter slot.voters then None
  else begin
    slot.votes <- v :: slot.votes;
    slot.voters <- v.voter :: slot.voters;
    match slot.qc with
    | Some _ -> None (* already certified; QC was reported once *)
    | None ->
        if List.length slot.voters >= t.quorum then begin
          let qc =
            Qc.
              {
                block = v.block;
                view = v.view;
                height = v.height;
                sigs = List.map (fun (vt : Vote.t) -> vt.signature) slot.votes;
              }
          in
          slot.qc <- Some qc;
          Some qc
        end
        else None
  end

let certified t ~block ~view =
  match Vote_tbl.find_opt t.vote_slots (block, view) with
  | Some slot -> slot.qc
  | None -> None

let vote_count t ~block ~view =
  match Vote_tbl.find_opt t.vote_slots (block, view) with
  | Some slot -> List.length slot.voters
  | None -> 0

let timeout_slot t view =
  match Hashtbl.find_opt t.timeout_slots view with
  | Some s -> s
  | None ->
      let s = { timeouts = []; senders = []; tc = None } in
      Hashtbl.add t.timeout_slots view s;
      s

let timed_out t (tm : Timeout_msg.t) =
  let slot = timeout_slot t tm.view in
  if List.mem tm.sender slot.senders then None
  else begin
    slot.timeouts <- tm :: slot.timeouts;
    slot.senders <- tm.sender :: slot.senders;
    match slot.tc with
    | Some _ -> None
    | None ->
        if List.length slot.senders >= t.quorum then begin
          let tc = Tcert.of_timeouts slot.timeouts in
          slot.tc <- Some tc;
          Some tc
        end
        else None
  end

let timeout_count t ~view =
  match Hashtbl.find_opt t.timeout_slots view with
  | Some slot -> List.length slot.senders
  | None -> 0

let tc_for t ~view =
  match Hashtbl.find_opt t.timeout_slots view with
  | Some slot -> slot.tc
  | None -> None

(* Canonical digest of the aggregation state, for the model checker's
   replica-state fingerprints. Vote and timeout slots are emitted in
   sorted key order with sorted member lists, so two quorum systems that
   accumulated the same sets in different orders digest identically
   (certificate signature lists are deliberately excluded for the same
   reason — only presence matters for future behavior). *)
let fingerprint t buf =
  let add_i i =
    Buffer.add_string buf (string_of_int i);
    Buffer.add_char buf ';'
  in
  let add_s s =
    add_i (String.length s);
    Buffer.add_string buf s
  in
  (* Collecting into a list before sorting is order-insensitive. *)
  let[@lint.allow "no-order-leak"] votes =
    Vote_tbl.fold
      (fun (h, view) slot acc ->
        (h, view, List.sort Int.compare slot.voters, Option.is_some slot.qc)
        :: acc)
      t.vote_slots []
  in
  let votes =
    List.sort
      (fun (h1, v1, _, _) (h2, v2, _, _) ->
        match String.compare h1 h2 with 0 -> Int.compare v1 v2 | c -> c)
      votes
  in
  List.iter
    (fun (h, view, voters, certified) ->
      add_s h;
      add_i view;
      List.iter add_i voters;
      add_i (if certified then 1 else 0))
    votes;
  Buffer.add_char buf '|';
  List.iter
    (fun (view, slot) ->
      add_i view;
      List.iter add_i (List.sort Int.compare slot.senders);
      add_i (if Option.is_some slot.tc then 1 else 0))
    (Bamboo_util.Tbl.sorted_bindings ~compare:Int.compare t.timeout_slots)

let gc t ~below_view =
  (* Collecting dead keys into a list is order-insensitive: the same set
     is removed whatever order the buckets are visited in. *)
  let[@lint.allow "no-order-leak"] dead_votes =
    Vote_tbl.fold
      (fun ((_, view) as key) _ acc -> if view < below_view then key :: acc else acc)
      t.vote_slots []
  in
  List.iter (Vote_tbl.remove t.vote_slots) dead_votes;
  let[@lint.allow "no-order-leak"] dead_timeouts =
    Hashtbl.fold
      (fun view _ acc -> if view < below_view then view :: acc else acc)
      t.timeout_slots []
  in
  List.iter (Hashtbl.remove t.timeout_slots) dead_timeouts
