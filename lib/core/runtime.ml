open Bamboo_types
module Sim = Bamboo_sim.Sim
module Machine = Bamboo_sim.Machine
module Netmodel = Bamboo_sim.Netmodel
module Rng = Bamboo_util.Rng
module Dist = Bamboo_util.Dist
module Json = Bamboo_util.Json
module Forest = Bamboo_forest.Forest
module Trace = Bamboo_obs.Trace
module Probe = Bamboo_obs.Probe
module Latency = Bamboo_obs.Latency
module Fault_engine = Bamboo_faults.Engine
module Registry = Bamboo_metrics.Registry
module Snapshot = Bamboo_metrics.Snapshot

type ledger_block = {
  l_height : int;
  l_hash : Ids.hash;
  l_view : int;
  l_txs : Tx.id list;
}

type ledger = ledger_block array

(* The committed chain as a flat, genesis-free array: one entry per height
   1..committed_height, lowest first. The committed prefix is contiguous
   by construction (prefix finalization), so every height is present. *)
let ledger_of_forest forest =
  Array.init (Forest.committed_height forest) (fun i ->
      match Forest.committed_at forest (i + 1) with
      | Some (b : Block.t) ->
          {
            l_height = b.height;
            l_hash = b.hash;
            l_view = b.view;
            l_txs = List.map (fun (tx : Tx.t) -> tx.Tx.id) b.txs;
          }
      | None -> assert false)

type result = {
  summary : Metrics.summary;
  series : (float * float) list;
  final_views : int array;
  committed_heights : int array;
  cpu_utilization : float array;
  consistent : bool;
  any_violation : bool;
  violations : bool array;
  ledgers : ledger array;
  decomposition : Latency.summary;
  probe : Probe.summary list;
  sim_events : int;
  metrics : Snapshot.t;
      (* merged aggregate metrics; [Snapshot.empty] unless the run was
         given an enabled registry *)
}

type tx_record = {
  target : int; (* replica the client sent the tx to; -1 = broadcast *)
  issued_at : float;
  client : int; (* logical client; 0 = open-loop *)
  mutable completed : bool;
  mutable counted : bool;
      (* already counted in the observer's committed-tx metrics; under
         broadcast submission a tx can legitimately appear in two
         committed blocks, but must be counted once *)
  (* Latency-decomposition stages, all measured at the target replica and
     only for single-target submissions; negative = not reached yet. *)
  mutable submit_wire : float; (* client -> replica one-way *)
  mutable ingest_wait : float; (* CPU-queue wait of the ingest charge *)
  mutable ingest_service : float;
  mutable arrived_at : float; (* entered the mempool *)
  mutable batched_at : float; (* batched into a proposal *)
  mutable propose_wait : float; (* CPU-queue wait of block creation *)
  mutable propose_service : float;
  mutable nic_ser : float; (* outbound NIC backlog of the broadcast *)
}

(* --- controlled scheduling (the bamboo_explore model checker) --- *)

type exec =
  | Exec_deliver of { src : int; dst : int; note : string }
  | Exec_timer of { replica : int }

type sched_view = {
  sv_nodes : Node.t array;
  sv_sim : Sim.t;
  sv_timers : unit -> (int * int * float) list;
}

type sched_hooks = {
  sh_controller : Sim.controller;
  sh_on_exec : exec -> unit;
}

(* Canonical order for the armed-timer snapshot handed to schedulers. *)
let compare_timers (r1, c1, a1) (r2, c2, a2) =
  match Int.compare r1 r2 with
  | 0 -> ( match Int.compare c1 c2 with 0 -> Float.compare a1 a2 | c -> c)
  | c -> c

(* --- intra-cell parallel signature verification --- *)

(* The simulator models verification cost (nodes run [verify_sigs:false];
   the receiver is charged t_CPU per message) without executing it. The
   parallel-verify path re-adds the execution as a post-hoc audit: fresh
   deliveries are buffered per delivery window and their full signature
   checks ([Message.verify]) are fanned out over the domain Pool. Nothing
   feeds back into the simulation — handlers already ran at delivery time —
   so output is byte-identical with the audit on or off and at any job
   count; batches are built in delivery order and [Pool.map] joins results
   in submission order, so the tallies are deterministic too. *)
type pverify = {
  pv_jobs : int;
  pv_registry : Bamboo_crypto.Sig.registry;
  pv_quorum : int;
  mutable pv_buf : Message.t list; (* buffered window, reversed *)
  mutable pv_len : int;
  mutable pv_window_start : float; (* sim time of the first buffered item *)
  (* Plain per-run tallies (hot path observe-only, published once). *)
  mutable pv_batches : int;
  mutable pv_checked : int;
  mutable pv_failed : int;
  mutable pv_max_batch : int;
}

(* Deliveries within one virtual millisecond are audited as one batch;
   bounded so a hot window cannot defer the audit indefinitely. *)
let pverify_window_s = 1e-3
let pverify_batch_cap = 256

type st = {
  config : Config.t;
  sim : Sim.t;
  net : Netmodel.t;
  machines : Machine.t array;
  nodes : Node.t array;
  metrics : Metrics.t;
  observer : int;
  records : (Tx.id, tx_record) Hashtbl.t;
  workload_rng : Rng.t;
  eng : Fault_engine.t;
  trace : Trace.t;
  spans : (Ids.hash, int) Hashtbl.t; (* block hash -> trace span id *)
  decomp : Latency.t;
  mutable next_seq : int;
  mutable reissue : client:int -> after:float -> unit;
      (* closed-loop continuation, installed by [run] *)
  armed : (int, int * int * float) Hashtbl.t;
      (* controlled mode: outstanding replica timers, timer id ->
         (replica, timer code, absolute expiry); feeds the state hash *)
  mutable next_timer : int;
  mutable notify : (exec -> unit) option;
      (* [Some f] switches the runtime into controlled-scheduling mode *)
  pverify : pverify option;
}

let flush_pverify st =
  match st.pverify with
  | None -> ()
  | Some pv when pv.pv_len = 0 -> ()
  | Some pv ->
      let batch = List.rev pv.pv_buf in
      let len = pv.pv_len in
      pv.pv_buf <- [];
      pv.pv_len <- 0;
      let results =
        Bamboo_util.Pool.map ~jobs:pv.pv_jobs
          (fun msg -> Message.verify pv.pv_registry ~quorum:pv.pv_quorum msg)
          batch
      in
      pv.pv_batches <- pv.pv_batches + 1;
      if len > pv.pv_max_batch then pv.pv_max_batch <- len;
      List.iter
        (fun ok ->
          pv.pv_checked <- pv.pv_checked + 1;
          if not ok then pv.pv_failed <- pv.pv_failed + 1)
        results

(* Buffer a freshly delivered (non-duplicate) message for the audit. *)
let audit_verify st msg =
  match st.pverify with
  | None -> ()
  | Some pv -> (
      match msg with
      | Message.Request_block _ -> () (* unsigned *)
      | Message.Proposal _ | Message.Vote _ | Message.Timeout _ ->
          let now = Sim.now st.sim in
          if
            pv.pv_len > 0
            && (pv.pv_len >= pverify_batch_cap
               || now -. pv.pv_window_start > pverify_window_s)
          then flush_pverify st;
          if pv.pv_len = 0 then pv.pv_window_start <- now;
          pv.pv_buf <- msg :: pv.pv_buf;
          pv.pv_len <- pv.pv_len + 1)

let crashed st id = Fault_engine.node_down st.eng id

let span_of st hash =
  match Hashtbl.find_opt st.spans hash with
  | Some s -> s
  | None ->
      let s = Trace.fresh_span st.trace in
      Hashtbl.add st.spans hash s;
      s

(* CPU cost of validating an incoming message (charged at the receiver):
   a signature/QC check per the paper's t_CPU, plus per-transaction work
   for proposals. *)
let duplicate_cost = 1e-6 (* hash lookup to discard an echoed copy *)

let input_cost (cfg : Config.t) = function
  | Message.Proposal { block; _ } ->
      (2.0 *. cfg.cpu_op)
      +. (float_of_int (List.length block.Block.txs) *. cfg.cpu_per_tx)
  | Message.Vote _ -> cfg.cpu_op
  | Message.Timeout _ -> cfg.cpu_op
  | Message.Request_block _ -> duplicate_cost (* a hash lookup *)

(* CPU cost of producing an outgoing message (charged at the sender).
   Echo relays (Streamlet) re-send received bytes without signing: no
   CPU beyond the NIC time. *)
let output_cost (cfg : Config.t) ~self = function
  | Message.Proposal { block; _ } when block.Block.proposer = self ->
      cfg.cpu_op
      +. (float_of_int (List.length block.Block.txs) *. cfg.cpu_per_tx)
  | Message.Proposal _ -> 0.0
  | Message.Vote v -> if v.Vote.voter = self then cfg.cpu_op else 0.0
  | Message.Timeout tm ->
      if tm.Timeout_msg.sender = self then cfg.cpu_op else 0.0
  | Message.Request_block _ -> 0.0

let trace_receive st ~dst msg =
  let ts = Sim.now st.sim in
  match msg with
  | Message.Proposal { block; _ } ->
      Trace.emit st.trace ~ts ~node:dst ~view:block.Block.view
        ~span:(span_of st block.Block.hash)
        ~args:[ ("proposer", Json.Int block.Block.proposer) ]
        Trace.Proposal_received
  | Message.Vote v ->
      Trace.emit st.trace ~ts ~node:dst ~view:v.Vote.view
        ~span:(span_of st v.Vote.block)
        ~args:[ ("voter", Json.Int v.Vote.voter) ]
        Trace.Vote_received
  | Message.Timeout tm ->
      Trace.emit st.trace ~ts ~node:dst ~view:tm.Timeout_msg.view
        ~args:[ ("sender", Json.Int tm.Timeout_msg.sender) ]
        Trace.Timeout_received
  | Message.Request_block _ -> ()

let trace_sent st ~src msg =
  let ts = Sim.now st.sim in
  match msg with
  | Message.Vote v when v.Vote.voter = src ->
      Trace.emit st.trace ~ts ~node:src ~view:v.Vote.view
        ~span:(span_of st v.Vote.block) Trace.Vote_sent
  | Message.Timeout tm when tm.Timeout_msg.sender = src ->
      Trace.emit st.trace ~ts ~node:src ~view:tm.Timeout_msg.view
        Trace.Timeout_fired
  | Message.Proposal _ | Message.Vote _ | Message.Timeout _
  | Message.Request_block _ ->
      () (* original proposals are traced via the Proposed output *)

(* [bytes] is the precomputed wire size of [msg]: a broadcast serializes
   the same message to every peer, so the caller sizes it once and shares
   the result across all n-1 transmissions instead of re-walking the
   transaction list per recipient. *)
let rec transmit st ~src ~dst ~bytes msg =
  match st.notify with
  | Some notify -> transmit_controlled st notify ~src ~dst msg
  | None -> transmit_modeled st ~src ~dst ~bytes msg

(* Controlled-scheduling transmission: the model checker abstracts away
   the machine pipelines (NIC/CPU queues) — a delivery executes its
   receive handler synchronously at the instant the scheduler fires it.
   Pipeline contents would be invisible to the replica-state fingerprint,
   so keeping them would make distinct states hash-collide; the network
   delay distribution is still applied, and the message identity
   ({!Bamboo_types.Message.key}) tags the event for reordering. *)
and transmit_controlled st notify ~src ~dst msg =
  if not (crashed st src) then begin
    let now = Sim.now st.sim in
    if not (Netmodel.blocked st.net ~src ~dst) then begin
      let deliver delay =
        Sim.schedule_delivery st.sim ~delay ~src ~dst ~note:(Message.key msg)
          (fun () ->
            if not (crashed st dst) then begin
              notify (Exec_deliver { src; dst; note = Message.key msg });
              if Trace.enabled st.trace then trace_receive st ~dst msg;
              let outs = Node.handle st.nodes.(dst) (Receive msg) in
              process_outputs st dst outs
            end)
      in
      let base_drop = Netmodel.drops st.net ~now in
      let fault_drop = Netmodel.link_drops st.net ~src ~dst in
      if not (base_drop || fault_drop) then
        deliver (Netmodel.one_way st.net ~now ~src ~dst);
      List.iter deliver (Netmodel.link_copies st.net ~src ~dst)
    end
  end

and transmit_modeled st ~src ~dst ~bytes msg =
  if not (crashed st src) then begin
    Machine.nic_out st.machines.(src) ~bytes (fun () ->
        let now = Sim.now st.sim in
        (* Partitioned links eat the message after the sender has paid its
           NIC time — the bytes left the host and died on the wire. *)
        if not (Netmodel.blocked st.net ~src ~dst) then begin
          let deliver delay =
            Sim.schedule st.sim ~delay (fun () ->
                Machine.nic_in st.machines.(dst) ~bytes (fun () ->
                    if not (crashed st dst) then
                      let cost =
                        if Node.seen_before st.nodes.(dst) msg then
                          duplicate_cost
                        else begin
                          audit_verify st msg;
                          input_cost st.config msg
                        end
                      in
                      Machine.cpu st.machines.(dst) ~duration:cost (fun () ->
                          if not (crashed st dst) then begin
                            if Trace.enabled st.trace then
                              trace_receive st ~dst msg;
                            let outs =
                              Node.handle st.nodes.(dst) (Receive msg)
                            in
                            process_outputs st dst outs
                          end)))
          in
          let base_drop = Netmodel.drops st.net ~now in
          let fault_drop = Netmodel.link_drops st.net ~src ~dst in
          if not (base_drop || fault_drop) then
            deliver (Netmodel.one_way st.net ~now ~src ~dst);
          (* Duplication faults deliver extra copies with independent
             delays; receivers discard them as echoed duplicates. *)
          List.iter deliver (Netmodel.link_copies st.net ~src ~dst)
        end)
  end

and complete_tx st replica (tx : Tx.t) =
  match Hashtbl.find_opt st.records tx.Tx.id with
  | Some rec_
    when (rec_.target = replica || rec_.target = -1) && not rec_.completed ->
      rec_.completed <- true;
      let response = Netmodel.client_rtt st.net ~now:(Sim.now st.sim) /. 2.0 in
      let done_at = Sim.now st.sim +. response in
      Metrics.record_latency st.metrics ~now:done_at ~issued_at:rec_.issued_at
        ~latency:(done_at -. rec_.issued_at);
      (* Stage decomposition, over the same measurement window as
         [record_latency]; only single-target submissions have a
         well-defined path (the target replica batches, proposes and
         commits the transaction itself). *)
      if
        rec_.target = replica
        && rec_.arrived_at >= 0.0
        && rec_.batched_at >= 0.0
        && rec_.issued_at >= st.config.Config.warmup
        && done_at < st.config.Config.runtime
      then begin
        let total = done_at -. rec_.issued_at in
        let client_wire = rec_.submit_wire +. response in
        let cpu_queue = rec_.ingest_wait +. rec_.propose_wait in
        let cpu_service = rec_.ingest_service +. rec_.propose_service in
        let mempool_wait = rec_.batched_at -. rec_.arrived_at in
        let nic_serialization = rec_.nic_ser in
        let consensus_wait =
          total -. client_wire -. cpu_queue -. cpu_service -. mempool_wait
          -. nic_serialization
        in
        Latency.record st.decomp
          {
            client_wire;
            cpu_queue;
            cpu_service;
            mempool_wait;
            nic_serialization;
            consensus_wait;
          }
          ~total
      end;
      if rec_.client > 0 then st.reissue ~client:rec_.client ~after:response
  | Some _ | None -> ()

and process_outputs st id outs =
  let sends = ref [] in
  let creation = ref 0.0 in
  let proposed = ref [] in
  let tracing = Trace.enabled st.trace in
  let now = Sim.now st.sim in
  List.iter
    (fun out ->
      match out with
      | Node.Send { dst; msg } ->
          creation := !creation +. output_cost st.config ~self:id msg;
          sends := (dst, msg, Message.wire_size msg) :: !sends;
          if tracing then trace_sent st ~src:id msg
      | Node.Broadcast msg ->
          creation := !creation +. output_cost st.config ~self:id msg;
          (* Encode/size once, share across all n-1 recipients. *)
          let bytes = Message.wire_size msg in
          for dst = 0 to st.config.n - 1 do
            if dst <> id then sends := (dst, msg, bytes) :: !sends
          done;
          if tracing then trace_sent st ~src:id msg
      | Node.Set_timer { timer; after } -> (
          (* Clock-skew faults stretch or shrink the replica's local timer
             durations; the factor is exactly 1.0 when no skew is active. *)
          let after = after *. Fault_engine.clock_factor st.eng id in
          match st.notify with
          | None ->
              Sim.schedule st.sim ~delay:after (fun () ->
                  if not (crashed st id) then
                    let outs = Node.handle st.nodes.(id) (Timer timer) in
                    process_outputs st id outs)
          | Some notify ->
              (* Controlled mode tracks armed timers so the model checker
                 can fold them into its state fingerprint; the code packs
                 the timer kind with its view. *)
              let code =
                match timer with
                | Node.View_timeout v -> 2 * v
                | Node.Propose_at v -> (2 * v) + 1
              in
              let tid = st.next_timer in
              st.next_timer <- tid + 1;
              Hashtbl.replace st.armed tid (id, code, now +. after);
              Sim.schedule st.sim ~delay:after (fun () ->
                  Hashtbl.remove st.armed tid;
                  if not (crashed st id) then begin
                    notify (Exec_timer { replica = id });
                    let outs = Node.handle st.nodes.(id) (Timer timer) in
                    process_outputs st id outs
                  end))
      | Node.Committed { blocks; trigger_view } ->
          if tracing then
            List.iter
              (fun (b : Block.t) ->
                Trace.emit st.trace ~ts:now ~node:id ~view:b.view
                  ~span:(span_of st b.hash)
                  ~args:
                    [
                      ("hash", Json.String (Ids.short b.hash));
                      ("height", Json.Int b.height);
                      ("txs", Json.Int (List.length b.txs));
                      ("triggerView", Json.Int trigger_view);
                    ]
                  Trace.Commit)
              blocks;
          List.iter
            (fun (b : Block.t) -> List.iter (complete_tx st id) b.txs)
            blocks;
          if id = st.observer then begin
            let count_fresh acc (tx : Tx.t) =
              match Hashtbl.find_opt st.records tx.Tx.id with
              | Some r when not r.counted ->
                  r.counted <- true;
                  acc + 1
              | Some _ -> acc
              | None -> acc + 1
            in
            let ntxs =
              List.fold_left
                (fun acc (b : Block.t) -> List.fold_left count_fresh acc b.txs)
                0 blocks
            in
            Metrics.record_commit st.metrics ~now:(Sim.now st.sim) ~ntxs
              ~nblocks:(List.length blocks)
              ~hashes:(List.map (fun (b : Block.t) -> b.hash) blocks);
            List.iter
              (fun (b : Block.t) ->
                Metrics.record_block_interval st.metrics ~now:(Sim.now st.sim)
                  ~views:(trigger_view - b.view + 1))
              blocks
          end
      | Node.Forked blocks ->
          if tracing then
            List.iter
              (fun (b : Block.t) ->
                Trace.emit st.trace ~ts:now ~node:id ~view:b.view
                  ~span:(span_of st b.hash)
                  ~args:
                    [
                      ("hash", Json.String (Ids.short b.hash));
                      ("height", Json.Int b.height);
                    ]
                  Trace.Fork_prune)
              blocks;
          if id = st.observer then
            Metrics.record_fork st.metrics ~now:(Sim.now st.sim)
              ~nblocks:(List.length blocks)
              ~hashes:(List.map (fun (b : Block.t) -> b.hash) blocks)
      | Node.Voted b ->
          if id = st.observer then
            Metrics.record_append st.metrics ~now:(Sim.now st.sim)
              ~hash:b.Block.hash
      | Node.Proposed b ->
          proposed := b :: !proposed;
          if tracing then begin
            let span = span_of st b.Block.hash in
            Trace.emit st.trace ~ts:now ~node:id ~view:b.Block.view ~span
              ~args:
                [
                  ("hash", Json.String (Ids.short b.Block.hash));
                  ("height", Json.Int b.Block.height);
                  ("txs", Json.Int (List.length b.Block.txs));
                ]
              Trace.Proposal_sent;
            if b.Block.txs <> [] then
              Trace.emit st.trace ~ts:now ~node:id ~view:b.Block.view ~span
                ~args:[ ("count", Json.Int (List.length b.Block.txs)) ]
                Trace.Tx_dequeue
          end
      | Node.Qc_formed qc ->
          if tracing then
            Trace.emit st.trace ~ts:now ~node:id ~view:qc.Qc.view
              ~span:(span_of st qc.Qc.block)
              ~args:[ ("height", Json.Int qc.Qc.height) ]
              Trace.Qc_formed
      | Node.Entered_view { view; reason } ->
          if tracing then
            Trace.emit st.trace ~ts:now ~node:id ~view
              ~args:[ ("reason", Json.String reason) ]
              Trace.View_change)
    outs;
  let sends = List.rev !sends in
  if Option.is_some st.notify then
    (* Controlled mode: no CPU charge, no NIC bookkeeping — outgoing
       messages go straight to the tagged delivery queue (see
       [transmit_controlled] for why pipelines are abstracted away). *)
    List.iter (fun (dst, msg, bytes) -> transmit st ~src:id ~dst ~bytes msg) sends
  else if sends <> [] || !creation > 0.0 then begin
    (* Stage bookkeeping for freshly batched transactions: they experience
       the whole of this flush's CPU charge (queueing plus service). *)
    (if !proposed <> [] then
       let cpu_wait =
         Float.max 0.0 (Machine.cpu_busy_until st.machines.(id) -. now)
       in
       List.iter
         (fun (b : Block.t) ->
           List.iter
             (fun (tx : Tx.t) ->
               match Hashtbl.find_opt st.records tx.Tx.id with
               | Some r when r.target = id ->
                   r.batched_at <- now;
                   r.propose_wait <- cpu_wait;
                   r.propose_service <- !creation;
                   r.nic_ser <- 0.0
               | Some _ | None -> ())
             b.txs)
         !proposed);
    Machine.cpu st.machines.(id) ~duration:!creation (fun () ->
        let nic_before =
          Float.max (Sim.now st.sim)
            (Machine.nic_out_busy_until st.machines.(id))
        in
        List.iter (fun (dst, msg, bytes) -> transmit st ~src:id ~dst ~bytes msg) sends;
        (if !proposed <> [] then
           let ser =
             Float.max 0.0
               (Machine.nic_out_busy_until st.machines.(id) -. nic_before)
           in
           List.iter
             (fun (b : Block.t) ->
               List.iter
                 (fun (tx : Tx.t) ->
                   match Hashtbl.find_opt st.records tx.Tx.id with
                   | Some r when r.target = id -> r.nic_ser <- ser
                   | Some _ | None -> ())
                 b.txs)
             !proposed))
  end

(* --- client-side transaction issue --- *)

(* [record_target = -1] means any replica's commit completes the tx
   (broadcast submission). *)
let record_tx st ~client ~record_target (tx : Tx.t) =
  Hashtbl.replace st.records tx.Tx.id
    {
      target = record_target;
      issued_at = Sim.now st.sim;
      client;
      completed = false;
      counted = false;
      submit_wire = 0.0;
      ingest_wait = 0.0;
      ingest_service = 0.0;
      arrived_at = -1.0;
      batched_at = -1.0;
      propose_wait = 0.0;
      propose_service = 0.0;
      nic_ser = 0.0;
    }

let send_batch st ~target txs =
  let now = Sim.now st.sim in
  let one_way = Netmodel.client_rtt st.net ~now /. 2.0 in
  Sim.schedule st.sim ~delay:one_way (fun () ->
      if not (crashed st target) then begin
        let arrival = Sim.now st.sim in
        let cost = float_of_int (List.length txs) *. st.config.cpu_per_tx in
        let wait =
          Float.max 0.0 (Machine.cpu_busy_until st.machines.(target) -. arrival)
        in
        Machine.cpu st.machines.(target) ~duration:cost (fun () ->
            if not (crashed st target) then begin
              let entered = Sim.now st.sim in
              List.iter
                (fun (tx : Tx.t) ->
                  match Hashtbl.find_opt st.records tx.Tx.id with
                  | Some r when r.target = target ->
                      r.submit_wire <- one_way;
                      r.ingest_wait <- wait;
                      r.ingest_service <- cost;
                      r.arrived_at <- entered
                  | Some _ | None -> ())
                txs;
              if Trace.enabled st.trace then
                Trace.emit st.trace ~ts:entered ~node:target
                  ~args:[ ("count", Json.Int (List.length txs)) ]
                  Trace.Tx_enqueue;
              let outs = Node.handle st.nodes.(target) (Submit txs) in
              process_outputs st target outs
            end)
      end)

let issue_txs st ~client txs_by_target =
  List.iter
    (fun (target, txs) ->
      List.iter (record_tx st ~client ~record_target:target) txs;
      send_batch st ~target txs)
    txs_by_target

let fresh_tx st ~client =
  let seq = st.next_seq in
  st.next_seq <- seq + 1;
  Tx.make ~client ~seq ~payload_len:st.config.psize

(* Open-loop Poisson arrivals, generated in 0.5 ms ticks to bound event
   count at high rates; all transactions of a tick share its timestamp. *)
let start_open_loop st ~rate ~broadcast =
  let tick = 0.0005 in
  let rec tick_fn () =
    if Sim.now st.sim < st.config.runtime then begin
      let k = Dist.poisson st.workload_rng ~mean:(rate *. tick) in
      if k > 0 then begin
        if broadcast then begin
          (* Every transaction goes to every replica; any replica's commit
             completes it. *)
          let txs = List.init k (fun _ -> fresh_tx st ~client:0) in
          List.iter (record_tx st ~client:0 ~record_target:(-1)) txs;
          for target = 0 to st.config.n - 1 do
            send_batch st ~target txs
          done
        end
        else begin
          let by_target = Hashtbl.create 8 in
          for _ = 1 to k do
            let target = Rng.int st.workload_rng st.config.n in
            let tx = fresh_tx st ~client:0 in
            let prev =
              match Hashtbl.find_opt by_target target with
              | None -> []
              | Some l -> l
            in
            Hashtbl.replace by_target target (tx :: prev)
          done;
          (* Walk targets in replica order rather than folding the table:
             the batch list's order reaches the trace sink via issue_txs,
             so it must not depend on bucket layout. *)
          issue_txs st ~client:0
            (List.filter_map
               (fun tgt ->
                 Option.map
                   (fun txs -> (tgt, txs))
                   (Hashtbl.find_opt by_target tgt))
               (List.init st.config.n Fun.id))
        end
      end;
      Sim.schedule st.sim ~delay:tick tick_fn
    end
  in
  Sim.schedule st.sim ~delay:0.0 tick_fn

let issue_one st ~client =
  if Sim.now st.sim < st.config.runtime then begin
    let target = Rng.int st.workload_rng st.config.n in
    let tx = fresh_tx st ~client in
    issue_txs st ~client [ (target, [ tx ]) ]
  end

let start_closed_loop st ~clients =
  st.reissue <-
    (fun ~client ~after ->
      Sim.schedule st.sim ~delay:after (fun () -> issue_one st ~client));
  for client = 1 to clients do
    (* Stagger initial issues across one millisecond. *)
    let jitter = Rng.float st.workload_rng 0.001 in
    Sim.schedule st.sim ~delay:jitter (fun () -> issue_one st ~client)
  done

(* --- observability wiring --- *)

let install_probe ~config ~sim ~machines ~trace ~registry =
  let interval = config.Config.probe_interval in
  if interval <= 0.0 then None
  else begin
    let p = Probe.create ~trace ~registry ~interval () in
    Array.iteri
      (fun i m ->
        Probe.add_gauge p ~node:i ~name:"cpu_queue_depth" (fun () ->
            float_of_int (Machine.queue_depth m `Cpu));
        Probe.add_gauge p ~node:i ~name:"nic_out_queue_depth" (fun () ->
            float_of_int (Machine.queue_depth m `Nic_out));
        Probe.add_gauge p ~node:i ~name:"nic_in_queue_depth" (fun () ->
            float_of_int (Machine.queue_depth m `Nic_in));
        (* Busy fraction per sampling window: seconds of work admitted to
           the queue since the last sample, over the window. Exceeds 1.0
           while a backlog builds — exactly the saturation signal the
           paper's L-shaped latency knee corresponds to. *)
        let last_cpu = ref 0.0 in
        Probe.add_gauge p ~node:i ~name:"cpu_utilization" (fun () ->
            let b = Machine.cpu_busy_seconds m in
            let d = b -. !last_cpu in
            last_cpu := b;
            d /. interval);
        let last_nic = ref 0.0 in
        Probe.add_gauge p ~node:i ~name:"nic_out_utilization" (fun () ->
            let b = Machine.nic_out_busy_seconds m in
            let d = b -. !last_nic in
            last_nic := b;
            d /. interval))
      machines;
    Probe.add_gauge p ~node:(-1) ~name:"event_heap" (fun () ->
        float_of_int (Sim.pending sim));
    let rec tick () =
      Probe.sample p ~now:(Sim.now sim);
      if Sim.now sim +. interval <= config.Config.runtime then
        Sim.schedule sim ~delay:interval tick
    in
    Sim.schedule sim ~delay:interval tick;
    Some p
  end

(* Publish the run's tallies into the metrics registry. The hot paths
   update plain per-run ints (always on, a few instructions each); the
   sharded registry is only written here, once per run, so enabling
   metrics costs nothing measurable on the simulation itself and the
   registry stays the single export surface. Skipped entirely for a
   disabled registry. *)
let publish_metrics reg ~sim ~net ~machines ~nodes ~sig_registry ~pverify =
  if Registry.enabled reg then begin
    (match pverify with
    | None -> ()
    | Some pv ->
        Registry.Counter.add
          (Registry.counter reg "parallel_verify_batches")
          pv.pv_batches;
        Registry.Counter.add
          (Registry.counter reg "parallel_verify_msgs")
          pv.pv_checked;
        Registry.Counter.add
          (Registry.counter reg "parallel_verify_failures")
          pv.pv_failed;
        Registry.Gauge.set
          (Registry.gauge reg "parallel_verify_max_batch")
          (float_of_int pv.pv_max_batch));
    Registry.Counter.add (Registry.counter reg "sim_events_pushed")
      (Sim.pushed sim);
    Registry.Counter.add (Registry.counter reg "sim_events_fired")
      (Sim.fired sim);
    Registry.Gauge.set
      (Registry.gauge reg "sim_queue_peak_depth")
      (float_of_int (Sim.peak_depth sim));
    let ns = Netmodel.stats net in
    Registry.Counter.add (Registry.counter reg "net_sends") ns.Netmodel.sends;
    Registry.Counter.add
      (Registry.counter reg "net_base_drops")
      ns.Netmodel.base_drops;
    Registry.Counter.add
      (Registry.counter reg "net_fault_drops")
      ns.Netmodel.fault_drops;
    Registry.Counter.add
      (Registry.counter reg "net_duplicates")
      ns.Netmodel.duplicates;
    Registry.Counter.add
      (Registry.counter reg "net_fault_activations")
      ns.Netmodel.fault_activations;
    Registry.Counter.add (Registry.counter reg "crypto_signs")
      (Bamboo_crypto.Sig.signs sig_registry);
    Registry.Counter.add
      (Registry.counter reg "crypto_verifies")
      (Bamboo_crypto.Sig.verifies sig_registry);
    Array.iteri
      (fun i m ->
        let labels = [ ("node", string_of_int i) ] in
        Registry.Counter.add
          (Registry.counter reg ~labels "machine_cpu_ops")
          (Machine.ops m `Cpu);
        Registry.Counter.add
          (Registry.counter reg ~labels "machine_nic_out_ops")
          (Machine.ops m `Nic_out);
        Registry.Counter.add
          (Registry.counter reg ~labels "machine_nic_in_ops")
          (Machine.ops m `Nic_in);
        Registry.Gauge.set
          (Registry.gauge reg ~labels "machine_cpu_peak_depth")
          (float_of_int (Machine.peak_depth m `Cpu));
        Registry.Gauge.set
          (Registry.gauge reg ~labels "machine_nic_out_peak_depth")
          (float_of_int (Machine.peak_depth m `Nic_out));
        Registry.Gauge.set
          (Registry.gauge reg ~labels "machine_nic_in_peak_depth")
          (float_of_int (Machine.peak_depth m `Nic_in)))
      machines;
    Array.iteri
      (fun i n ->
        let labels = [ ("node", string_of_int i) ] in
        Registry.Counter.add
          (Registry.counter reg ~labels "replica_commits")
          (Node.committed_count n);
        Registry.Counter.add
          (Registry.counter reg ~labels "replica_view_changes")
          (Node.view_changes n);
        Registry.Counter.add
          (Registry.counter reg ~labels "replica_timeouts_fired")
          (Node.timeouts_fired n);
        Registry.Counter.add
          (Registry.counter reg ~labels "replica_rejected_txs")
          (Node.rejected_txs n);
        Registry.Counter.add
          (Registry.counter reg ~labels "crypto_qc_cache_hits")
          (Node.qc_cache_hits n);
        Registry.Counter.add
          (Registry.counter reg ~labels "crypto_qc_cache_misses")
          (Node.qc_cache_misses n);
        let ms = Node.mempool_stats n in
        Registry.Counter.add
          (Registry.counter reg ~labels "mempool_batches")
          ms.Bamboo_mempool.Mempool.batches;
        Registry.Counter.add
          (Registry.counter reg ~labels "mempool_batched_txs")
          ms.Bamboo_mempool.Mempool.batched_txs;
        Registry.Counter.add
          (Registry.counter reg ~labels "mempool_rejected_full")
          ms.Bamboo_mempool.Mempool.rejected_full;
        Registry.Counter.add
          (Registry.counter reg ~labels "mempool_rejected_dup")
          ms.Bamboo_mempool.Mempool.rejected_dup;
        Registry.Gauge.set
          (Registry.gauge reg ~labels "mempool_peak_occupancy")
          (float_of_int ms.Bamboo_mempool.Mempool.peak_occupancy))
      nodes
  end

let run ~config ~workload ?(bucket = 0.5) ?observer ?(trace = Trace.null)
    ?(metrics = Registry.null) ?wrap_safety ?scheduler ?verify_jobs () =
  let mreg = metrics in
  (match Config.validate config with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Runtime.run: " ^ e));
  let observer =
    match observer with
    | Some o -> o
    | None -> min config.Config.byz_no (config.Config.n - 1)
  in
  let master = Rng.create ~seed:config.Config.seed in
  let net_rng = Rng.split master in
  let workload_rng = Rng.split master in
  (* Split after the streams that predate the fault subsystem, so those
     streams (and hence an empty-schedule run) are unchanged. *)
  let fault_rng = Rng.split master in
  let sim = Sim.create () in
  let net =
    Netmodel.create ~rng:net_rng ~mu:config.Config.mu ~sigma:config.Config.sigma
      ~extra_mu:config.Config.extra_delay_mu
      ~extra_sigma:config.Config.extra_delay_sigma ()
  in
  if config.Config.loss > 0.0 then
    Netmodel.set_loss net ~rate:config.Config.loss;
  let registry =
    Bamboo_crypto.Sig.setup ~n:config.Config.n ~master:"bamboo-sim"
  in
  let machines =
    Array.init config.Config.n (fun _ ->
        Machine.create ~sim ~bandwidth:config.Config.bandwidth)
  in
  (* Machine service spans feed the trace's per-queue timeline threads;
     the hook stays uninstalled when tracing is off. *)
  if Trace.enabled trace then
    Array.iteri
      (fun i m ->
        Machine.set_service_hook m
          (Some
             (fun ~queue ~start ~duration ->
               Trace.service trace ~node:i ~queue ~start ~duration)))
      machines;
  let probe = install_probe ~config ~sim ~machines ~trace ~registry:mreg in
  let nodes =
    Array.init config.Config.n (fun self ->
        Node.create ~config ~self ~registry ~verify_sigs:false ~root:`Flat
          ?wrap_safety:
            (match wrap_safety with
            | None -> None
            | Some wrap -> Some (wrap self))
          ())
  in
  let metrics =
    Metrics.create ~warmup:config.Config.warmup ~horizon:config.Config.runtime
      ~bucket
  in
  let st =
    {
      config;
      sim;
      net;
      machines;
      nodes;
      metrics;
      observer;
      records = Hashtbl.create 4096;
      workload_rng;
      eng =
        Fault_engine.create ~n:config.Config.n ~rng:fault_rng
          ~schedule:config.Config.faults;
      trace;
      spans = Hashtbl.create 1024;
      decomp = Latency.create ();
      next_seq = 0;
      reissue = (fun ~client:_ ~after:_ -> ());
      armed = Hashtbl.create 64;
      next_timer = 0;
      notify = None;
      pverify =
        (match verify_jobs with
        | None -> None
        | Some jobs ->
            if jobs < 1 then invalid_arg "Runtime.run: verify_jobs must be >= 1";
            Some
              {
                pv_jobs = jobs;
                pv_registry = registry;
                pv_quorum = Config.quorum_size config;
                pv_buf = [];
                pv_len = 0;
                pv_window_start = 0.0;
                pv_batches = 0;
                pv_checked = 0;
                pv_failed = 0;
                pv_max_batch = 0;
              });
    }
  in
  (* Controlled scheduling must be live before any replica boots so the
     very first proposal broadcast is already tagged and reorderable. *)
  (match scheduler with
  | None -> ()
  | Some mk ->
      let view =
        {
          sv_nodes = nodes;
          sv_sim = sim;
          sv_timers =
            (fun () ->
              List.sort compare_timers
                (List.map snd
                   (Bamboo_util.Tbl.sorted_bindings ~compare:Int.compare
                      st.armed)));
        }
      in
      let hooks = mk view in
      Sim.set_controller sim (Some hooks.sh_controller);
      st.notify <- Some hooks.sh_on_exec);
  (* Compile the fault schedule into simulator events. A recovering
     replica kept its pre-crash state but slept through its view timer;
     firing the timeout for its (stale) current view re-arms the
     pacemaker, broadcasts a timeout, and re-requests any blocks it was
     missing — from there the ordinary chain-sync path catches it up. *)
  Fault_engine.install st.eng ~sim ~net ~machines ~trace
    ~on_recover:(fun id ->
      let view = Node.current_view st.nodes.(id) in
      let outs = Node.handle st.nodes.(id) (Timer (Node.View_timeout view)) in
      process_outputs st id outs);
  (* Boot all replicas. *)
  Array.iteri (fun id node -> process_outputs st id (Node.start node)) nodes;
  (* Start the workload. *)
  (match workload with
  | Workload.Open_loop { rate; broadcast } ->
      start_open_loop st ~rate ~broadcast
  | Workload.Closed_loop { clients } -> start_closed_loop st ~clients);
  (* Record the observer's view at the warmup boundary. *)
  let first_view = ref 0 in
  Sim.schedule st.sim ~delay:config.Config.warmup (fun () ->
      first_view := Node.current_view nodes.(observer));
  Sim.run_until sim config.Config.runtime;
  Metrics.set_view_span metrics ~first:!first_view
    ~last:(Node.current_view nodes.(observer));
  let summary =
    Metrics.summarize metrics
      ~protocol:(Node.protocol_name nodes.(observer))
      ~rejected_txs:
        (Array.fold_left (fun acc n -> acc + Node.rejected_txs n) 0 nodes)
      ~safety_violation:(Node.safety_violation nodes.(observer))
  in
  let final_views = Array.map Node.current_view nodes in
  let committed_heights =
    Array.map (fun n -> Forest.committed_height (Node.forest n)) nodes
  in
  let cpu_utilization =
    Array.map
      (fun m -> Machine.cpu_busy_seconds m /. config.Config.runtime)
      machines
  in
  (* Cross-replica consistency: all committed chains must agree on the
     common prefix, checked hash-by-hash at each height (paper §III-A).
     The per-replica ledgers double as the [bamboo_check] oracle's input
     for the full agreement check (prefix compatibility + tx order). *)
  let ledgers = Array.map (fun n -> ledger_of_forest (Node.forest n)) nodes in
  let min_height =
    Array.fold_left (fun acc l -> min acc (Array.length l)) max_int ledgers
  in
  let consistent = ref true in
  for h = 0 to min_height - 1 do
    let reference = ledgers.(0).(h).l_hash in
    for i = 1 to config.Config.n - 1 do
      if not (String.equal ledgers.(i).(h).l_hash reference) then
        consistent := false
    done
  done;
  let violations = Array.map Node.safety_violation nodes in
  let any_violation = Array.exists Fun.id violations in
  (* Audit any tail still buffered when the horizon was reached. *)
  flush_pverify st;
  publish_metrics mreg ~sim ~net ~machines ~nodes ~sig_registry:registry
    ~pverify:st.pverify;
  {
    summary;
    series = Metrics.throughput_series metrics;
    final_views;
    committed_heights;
    cpu_utilization;
    consistent = !consistent;
    any_violation;
    violations;
    ledgers;
    decomposition = Latency.summarize st.decomp;
    probe = (match probe with None -> [] | Some p -> Probe.summaries p);
    sim_events = Sim.fired sim;
    metrics = Snapshot.of_registry mreg;
  }
