type t =
  | Open_loop of { rate : float; broadcast : bool }
  | Closed_loop of { clients : int }

let open_loop ?(broadcast = false) ~rate () =
  if rate < 0.0 then invalid_arg "Workload.open_loop: rate must be >= 0";
  Open_loop { rate; broadcast }

let closed_loop ~clients =
  if clients <= 0 then
    invalid_arg "Workload.closed_loop: clients must be positive";
  Closed_loop { clients }

let describe = function
  | Open_loop { rate; broadcast } ->
      Printf.sprintf "open-loop %.0f tx/s%s" rate
        (if broadcast then " (broadcast)" else "")
  | Closed_loop { clients } -> Printf.sprintf "closed-loop %d clients" clients
