type command =
  | Put of { key : string; value : string }
  | Get of string
  | Delete of string

type outcome = Stored | Found of string | Missing

type t = (string, string) Hashtbl.t

let create () : t = Hashtbl.create 256

(* Length-prefixed textual encoding, unambiguous for arbitrary bytes:
   "P<klen>:<key><value>", "G<klen>:<key>", "D<klen>:<key>". *)
let encode_command = function
  | Put { key; value } -> Printf.sprintf "P%d:%s%s" (String.length key) key value
  | Get key -> Printf.sprintf "G%d:%s" (String.length key) key
  | Delete key -> Printf.sprintf "D%d:%s" (String.length key) key

let decode_command s =
  if String.length s < 2 then Error "command too short"
  else
    match String.index_opt s ':' with
    | None -> Error "missing length separator"
    | Some colon -> (
        match int_of_string_opt (String.sub s 1 (colon - 1)) with
        | None -> Error "bad key length"
        | Some klen ->
            if klen < 0 || colon + 1 + klen > String.length s then
              Error "key length out of range"
            else
              let key = String.sub s (colon + 1) klen in
              let rest_pos = colon + 1 + klen in
              let rest = String.sub s rest_pos (String.length s - rest_pos) in
              (match s.[0] with
              | 'P' -> Ok (Put { key; value = rest })
              | 'G' -> if rest = "" then Ok (Get key) else Error "trailing bytes"
              | 'D' ->
                  if rest = "" then Ok (Delete key) else Error "trailing bytes"
              | c -> Error (Printf.sprintf "unknown command '%c'" c)))

let apply t = function
  | Put { key; value } ->
      Hashtbl.replace t key value;
      Stored
  | Get key -> (
      match Hashtbl.find_opt t key with
      | Some v -> Found v
      | None -> Missing)
  | Delete key ->
      if Hashtbl.mem t key then begin
        Hashtbl.remove t key;
        Stored
      end
      else Missing

let apply_tx t (tx : Bamboo_types.Tx.t) =
  if tx.data = "" then None
  else
    match decode_command tx.data with
    | Ok cmd -> Some (apply t cmd)
    | Error _ -> None

let size = Hashtbl.length

let get t key = Hashtbl.find_opt t key

let state_hash t =
  let entries = Bamboo_util.Tbl.sorted_bindings ~compare:String.compare t in
  let ctx = Bamboo_crypto.Sha256.init () in
  List.iter
    (fun (k, v) ->
      Bamboo_crypto.Sha256.feed ctx (Printf.sprintf "%d:%s%d:%s" (String.length k) k (String.length v) v))
    entries;
  Bamboo_crypto.Sha256.finalize ctx
