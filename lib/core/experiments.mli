(** The paper's evaluation, one experiment per table/figure (Section VI),
    plus the ablations of design choices called out in Section V-E. Each
    experiment runs the simulator at the appropriate parameters and prints
    the same rows/series the paper reports; DESIGN.md maps experiments to
    modules, EXPERIMENTS.md records paper-vs-measured shape agreement.

    [Quick] (the default) uses short virtual runs so the full suite
    finishes in minutes; [Full] uses paper-scale view counts.

    Every experiment is a grid of independent simulation cells whose
    parameters never depend on another cell's result, so the driver runs
    cells on a fixed-size pool of worker domains ({!Bamboo_util.Pool}) and
    renders results in submission order: the printed tables are
    byte-identical at any job count. *)

type scale = Quick | Full

val names : string list
(** All experiment identifiers: ["table2"], ["fig8"] ... ["fig15"],
    ["ablation_broadcast"], ["ablation_election"], ["ablation_echo"],
    ["ablation_fhs"], ["ablation_backoff"], plus the fault-injection
    scenarios ["chaos_leader_delay"] (targeted delay on one replica's
    outbound links, per-protocol responsiveness) and
    ["chaos_partition_heal"] (quorum-blocking partition, then
    time-to-first-commit after the heal). *)

val run_one : ?jobs:int -> scale:scale -> string -> (unit, string) result
(** Runs one experiment by name, printing its tables to stdout. [jobs]
    (if given) sets the worker-domain count first, as {!set_jobs}. *)

val run_all : ?jobs:int -> scale:scale -> unit -> unit

(** {2 Parallelism} *)

val set_jobs : int -> unit
(** Sets the number of worker domains used for subsequent experiment
    cells. Affects wall-clock time only, never output. Raises
    [Invalid_argument] if the count is [< 1]. *)

val set_metrics : Bamboo_metrics.Registry.t -> unit
(** Installs a metrics registry for subsequent experiment cells: each
    cell's wall-clock latency feeds the [pool_task_latency_ns] histogram
    and [pool_tasks] counter, recorded from the worker domain that ran the
    cell. Call on the main domain before launching experiments (like
    {!set_jobs}). Observe-only: never affects cell output. *)

val metrics : unit -> Bamboo_metrics.Registry.t

val jobs : unit -> int
(** Current worker-domain count (initially
    [Domain.recommended_domain_count ()]). *)

(** {2 Exposed pieces, for the CLI and tests} *)

val sweep :
  config:Config.t ->
  rates:float list ->
  (float * Metrics.summary) list
(** One simulator run per arrival rate (cells run on the pool). *)

val saturation_sweep_rates : config:Config.t -> scale:scale -> float list
(** Rate grid up to (and slightly beyond) the model's saturation point. *)

val table2_rows : ?base:Config.t -> scale -> string list list
(** The formatted rows of Table II (arrival rate, throughput), without
    printing — the determinism tests compare these across job counts.
    [base] overrides the scale's base configuration (e.g. a shorter
    runtime). *)

val fig8_panel_rows :
  ?base:Config.t ->
  n:int ->
  bsize:int ->
  scale ->
  (string * string list list) list
(** One Fig. 8 panel's formatted rows, per protocol (protocol name, rows),
    without printing. *)
