(** The paper's evaluation, one experiment per table/figure (Section VI),
    plus the ablations of design choices called out in Section V-E. Each
    experiment runs the simulator at the appropriate parameters and prints
    the same rows/series the paper reports; DESIGN.md maps experiments to
    modules, EXPERIMENTS.md records paper-vs-measured shape agreement.

    [Quick] (the default) uses short virtual runs so the full suite
    finishes in minutes; [Full] uses paper-scale view counts. *)

type scale = Quick | Full

val names : string list
(** All experiment identifiers: ["table2"], ["fig8"] ... ["fig15"],
    ["ablation_broadcast"], ["ablation_election"], ["ablation_echo"],
    ["ablation_fhs"], ["ablation_backoff"], plus the fault-injection
    scenarios ["chaos_leader_delay"] (targeted delay on one replica's
    outbound links, per-protocol responsiveness) and
    ["chaos_partition_heal"] (quorum-blocking partition, then
    time-to-first-commit after the heal). *)

val run_one : scale:scale -> string -> (unit, string) result
(** Runs one experiment by name, printing its tables to stdout. *)

val run_all : scale:scale -> unit

(** {2 Exposed pieces, for the CLI and tests} *)

val sweep :
  config:Config.t ->
  rates:float list ->
  (float * Metrics.summary) list
(** One simulator run per arrival rate. *)

val saturation_sweep_rates : config:Config.t -> scale:scale -> float list
(** Rate grid up to (and slightly beyond) the model's saturation point. *)
