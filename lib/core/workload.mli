(** Client workload descriptors (the benchmarker of paper §III-D).

    Two generation modes:
    - {e open loop}: transactions arrive in a Poisson process with a fixed
      aggregate rate, each sent to a uniformly random replica — the
      arrival model of the paper's Section V analysis;
    - {e closed loop}: a fixed number of concurrent clients (Table I
      [concurrency]) each keep exactly one transaction outstanding,
      matching how the paper's benchmark raises load "by increasing the
      concurrency level of the clients until the system is saturated". *)

type t =
  | Open_loop of { rate : float; broadcast : bool }
      (** Aggregate arrivals, tx/s; with [broadcast], clients send each
          transaction to {e every} replica instead of one (the design
          choice of paper §V-E), relying on mempool deduplication. *)
  | Closed_loop of { clients : int }

val open_loop : ?broadcast:bool -> rate:float -> unit -> t
(** Rate 0 is allowed and means no client arrivals at all — consensus on
    empty blocks only, the load model of the [bamboo_explore] cells.
    Raises [Invalid_argument] on negative rates. *)

val closed_loop : clients:int -> t

val describe : t -> string
