module Json = Bamboo_util.Json

type protocol = Hotstuff | Twochain | Streamlet | Fasthotstuff

type strategy = Honest | Silence | Fork

type election = Rotation | Static of int | Hashed

type propose_policy = Immediate | Wait_timeout

type trace_format = Jsonl | Chrome

type t = {
  protocol : protocol;
  n : int;
  byz_no : int;
  strategy : strategy;
  election : election;
  bsize : int;
  memsize : int;
  psize : int;
  timeout : float;
  backoff : float;
  propose_policy : propose_policy;
  tc_adopt_qc : bool;
  echo : bool option;
  runtime : float;
  warmup : float;
  mu : float;
  sigma : float;
  extra_delay_mu : float;
  extra_delay_sigma : float;
  loss : float;
  bandwidth : float;
  cpu_op : float;
  cpu_per_tx : float;
  seed : int;
  jobs : int;
  trace_file : string option;
  trace_format : trace_format;
  probe_interval : float; (* seconds; 0 = probing disabled *)
  faults : Bamboo_faults.Schedule.t;
}

let default =
  {
    protocol = Hotstuff;
    n = 4;
    byz_no = 0;
    strategy = Honest;
    election = Rotation;
    bsize = 400;
    memsize = 100_000;
    psize = 0;
    timeout = 0.1;
    backoff = 1.0;
    propose_policy = Immediate;
    tc_adopt_qc = false;
    echo = None;
    runtime = 10.0;
    warmup = 1.0;
    mu = 0.0005;
    sigma = 0.0001;
    extra_delay_mu = 0.0;
    extra_delay_sigma = 0.0;
    loss = 0.0;
    bandwidth = 125_000_000.0 (* 1 Gbit/s *);
    cpu_op = 0.00015 (* 150 us per sign/verify, a secp256k1 op in Go *);
    cpu_per_tx = 0.0000005 (* 0.5 us per tx *);
    seed = 42;
    jobs = Domain.recommended_domain_count ();
    trace_file = None;
    trace_format = Jsonl;
    probe_interval = 0.0;
    faults = Bamboo_faults.Schedule.empty;
  }

let quorum_size t = (2 * ((t.n - 1) / 3)) + 1

let protocol_name = function
  | Hotstuff -> "hotstuff"
  | Twochain -> "twochain"
  | Streamlet -> "streamlet"
  | Fasthotstuff -> "fasthotstuff"

let protocol_of_name = function
  | "hotstuff" | "hs" -> Ok Hotstuff
  | "twochain" | "2chs" -> Ok Twochain
  | "streamlet" | "sl" -> Ok Streamlet
  | "fasthotstuff" | "fhs" -> Ok Fasthotstuff
  | s -> Error (Printf.sprintf "unknown protocol %S" s)

let strategy_name = function
  | Honest -> "honest"
  | Silence -> "silence"
  | Fork -> "fork"

let strategy_of_name = function
  | "honest" -> Ok Honest
  | "silence" -> Ok Silence
  | "fork" | "forking" -> Ok Fork
  | s -> Error (Printf.sprintf "unknown strategy %S" s)

let trace_format_name = function Jsonl -> "jsonl" | Chrome -> "chrome"

let trace_format_of_name = function
  | "jsonl" -> Ok Jsonl
  | "chrome" -> Ok Chrome
  | s -> Error (Printf.sprintf "unknown trace format %S" s)

let validate t =
  let f = (t.n - 1) / 3 in
  if t.n <= 0 then Error "n must be positive"
  else if t.byz_no < 0 then Error "byzNo must be non-negative"
  else if t.byz_no > f then
    Error (Printf.sprintf "byzNo %d exceeds fault bound f = %d" t.byz_no f)
  else if t.bsize <= 0 then Error "bsize must be positive"
  else if t.memsize <= 0 then Error "memsize must be positive"
  else if t.psize < 0 then Error "psize must be non-negative"
  else if t.timeout <= 0.0 then Error "timeout must be positive"
  else if t.backoff < 1.0 then Error "backoff must be >= 1"
  else if t.runtime <= 0.0 then Error "runtime must be positive"
  else if t.warmup < 0.0 then Error "warmup must be non-negative"
  else if t.runtime <= t.warmup then
    Error
      (Printf.sprintf
         "runtime %gs must exceed the warmup %gs (no measurement window)"
         t.runtime t.warmup)
  else if t.mu < 0.0 || t.sigma < 0.0 then Error "network delay must be non-negative"
  else if t.loss < 0.0 || t.loss >= 1.0 then Error "loss must be in [0, 1)"
  else if t.bandwidth <= 0.0 then Error "bandwidth must be positive"
  else if t.cpu_op < 0.0 || t.cpu_per_tx < 0.0 then Error "CPU costs must be non-negative"
  else if t.probe_interval < 0.0 then Error "probe interval must be non-negative"
  else if t.jobs < 1 then
    Error "jobs must be >= 1 (number of parallel experiment workers)"
  else
    match t.election with
    | Static i when i < 0 || i >= t.n -> Error "static leader out of range"
    | Static _ | Rotation | Hashed -> (
        match Bamboo_faults.Schedule.validate ~n:t.n t.faults with
        | Ok _ -> Ok t
        | Error e -> Error ("faults: " ^ e))

let to_json t =
  let election =
    match t.election with
    | Rotation -> Json.Int 0
    | Static i -> Json.Int (i + 1) (* Table I: master id, 0 = rotating *)
    | Hashed -> Json.String "hashed"
  in
  Json.Obj
    [
      ("protocol", Json.String (protocol_name t.protocol));
      ("n", Json.Int t.n);
      ("byzNo", Json.Int t.byz_no);
      ("strategy", Json.String (strategy_name t.strategy));
      ("master", election);
      ("bsize", Json.Int t.bsize);
      ("memsize", Json.Int t.memsize);
      ("psize", Json.Int t.psize);
      ("timeout", Json.Float (t.timeout *. 1000.0));
      ("backoff", Json.Float t.backoff);
      ( "proposePolicy",
        Json.String
          (match t.propose_policy with
          | Immediate -> "immediate"
          | Wait_timeout -> "wait_timeout") );
      ("tcAdoptQc", Json.Bool t.tc_adopt_qc);
      ( "echo",
        match t.echo with None -> Json.Null | Some b -> Json.Bool b );
      ("runtime", Json.Float t.runtime);
      ("warmup", Json.Float t.warmup);
      ("mu", Json.Float (t.mu *. 1000.0));
      ("sigma", Json.Float (t.sigma *. 1000.0));
      ("delay", Json.Float (t.extra_delay_mu *. 1000.0));
      ("delaySigma", Json.Float (t.extra_delay_sigma *. 1000.0));
      ("loss", Json.Float t.loss);
      ("bandwidth", Json.Float t.bandwidth);
      ("cpuOp", Json.Float (t.cpu_op *. 1e6));
      ("cpuPerTx", Json.Float (t.cpu_per_tx *. 1e6));
      ("seed", Json.Int t.seed);
      ("jobs", Json.Int t.jobs);
      ( "trace",
        match t.trace_file with None -> Json.Null | Some f -> Json.String f );
      ("traceFormat", Json.String (trace_format_name t.trace_format));
      ("probeInterval", Json.Float (t.probe_interval *. 1000.0));
      ("faults", Bamboo_faults.Schedule.to_json t.faults);
    ]

let known_fields =
  [
    "protocol"; "n"; "byzNo"; "strategy"; "master"; "bsize"; "memsize";
    "psize"; "timeout"; "backoff"; "proposePolicy"; "tcAdoptQc"; "echo"; "runtime";
    "warmup";
    "mu"; "sigma"; "delay"; "delaySigma"; "loss"; "bandwidth"; "cpuOp"; "cpuPerTx";
    "seed"; "jobs"; "trace"; "traceFormat"; "probeInterval"; "faults";
  ]

let of_json json =
  match json with
  | Json.Obj fields -> (
      match
        List.find_opt (fun (k, _) -> not (List.mem k known_fields)) fields
      with
      | Some (k, _) -> Error (Printf.sprintf "unknown configuration field %S" k)
      | None -> (
          let get name f default_v =
            match Json.member name json with Json.Null -> default_v | v -> f v
          in
          try
            let protocol =
              match Json.member "protocol" json with
              | Json.Null -> Ok default.protocol
              | v -> protocol_of_name (Json.get_string v)
            in
            let strategy =
              match Json.member "strategy" json with
              | Json.Null -> Ok default.strategy
              | v -> strategy_of_name (Json.get_string v)
            in
            let election =
              match Json.member "master" json with
              | Json.Null -> Ok default.election
              | Json.Int 0 -> Ok Rotation
              | Json.Int i -> Ok (Static (i - 1))
              | Json.String "hashed" -> Ok Hashed
              | _ -> Error "master must be an id or \"hashed\""
            in
            let propose_policy =
              match Json.member "proposePolicy" json with
              | Json.Null -> Ok default.propose_policy
              | Json.String "immediate" -> Ok Immediate
              | Json.String "wait_timeout" -> Ok Wait_timeout
              | _ -> Error "bad proposePolicy"
            in
            let trace_format =
              match Json.member "traceFormat" json with
              | Json.Null -> default.trace_format
              | v -> (
                  match trace_format_of_name (Json.get_string v) with
                  | Ok f -> f
                  | Error e -> raise (Invalid_argument e))
            in
            match (protocol, strategy, election, propose_policy) with
            | Ok protocol, Ok strategy, Ok election, Ok propose_policy ->
                validate
                  {
                    protocol;
                    strategy;
                    election;
                    propose_policy;
                    tc_adopt_qc =
                      get "tcAdoptQc" Json.to_bool default.tc_adopt_qc;
                    echo =
                      (match Json.member "echo" json with
                      | Json.Null -> default.echo
                      | v -> Some (Json.to_bool v));
                    n = get "n" Json.to_int default.n;
                    byz_no = get "byzNo" Json.to_int default.byz_no;
                    bsize = get "bsize" Json.to_int default.bsize;
                    memsize = get "memsize" Json.to_int default.memsize;
                    psize = get "psize" Json.to_int default.psize;
                    timeout =
                      get "timeout" (fun v -> Json.to_float v /. 1000.0)
                        default.timeout;
                    backoff = get "backoff" Json.to_float default.backoff;
                    runtime = get "runtime" Json.to_float default.runtime;
                    warmup = get "warmup" Json.to_float default.warmup;
                    mu = get "mu" (fun v -> Json.to_float v /. 1000.0) default.mu;
                    sigma =
                      get "sigma" (fun v -> Json.to_float v /. 1000.0)
                        default.sigma;
                    extra_delay_mu =
                      get "delay" (fun v -> Json.to_float v /. 1000.0)
                        default.extra_delay_mu;
                    extra_delay_sigma =
                      get "delaySigma" (fun v -> Json.to_float v /. 1000.0)
                        default.extra_delay_sigma;
                    loss = get "loss" Json.to_float default.loss;
                    bandwidth = get "bandwidth" Json.to_float default.bandwidth;
                    cpu_op =
                      get "cpuOp" (fun v -> Json.to_float v /. 1e6) default.cpu_op;
                    cpu_per_tx =
                      get "cpuPerTx" (fun v -> Json.to_float v /. 1e6)
                        default.cpu_per_tx;
                    seed = get "seed" Json.to_int default.seed;
                    jobs = get "jobs" Json.to_int default.jobs;
                    trace_file =
                      (match Json.member "trace" json with
                      | Json.Null -> default.trace_file
                      | v -> Some (Json.get_string v));
                    trace_format;
                    probe_interval =
                      get "probeInterval"
                        (fun v -> Json.to_float v /. 1000.0)
                        default.probe_interval;
                    faults =
                      (match
                         Bamboo_faults.Schedule.of_json
                           (Json.member "faults" json)
                       with
                      | Ok s -> s
                      | Error e -> raise (Invalid_argument e));
                  }
            | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e
              ->
                Error e
          with Invalid_argument msg -> Error msg))
  | _ -> Error "configuration must be a JSON object"

let pp fmt t =
  Format.fprintf fmt
    "%s n=%d byz=%d/%s bsize=%d psize=%d timeout=%.0fms mu=%.2fms"
    (protocol_name t.protocol) t.n t.byz_no (strategy_name t.strategy) t.bsize
    t.psize (t.timeout *. 1000.0) (t.mu *. 1000.0)
