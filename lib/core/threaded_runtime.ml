open Bamboo_types
module Forest = Bamboo_forest.Forest
module Heap = Bamboo_util.Heap

(* This runtime drives real system threads over real sockets/channels, so
   wall-clock reads are its time base by design; reproducibility is the
   simulator's job (lib/sim + runtime.ml), not this deployment path's. *)
[@@@lint.allow "no-ambient-nondeterminism"]

type report = {
  duration : float;
  committed_txs : int;
  committed_blocks : int array;
  throughput : float;
  latency_mean : float;
  latency_count : int;
  consistent : bool;
  kv_consistent : bool;
  any_violation : bool;
}

type shared = {
  mutex : Mutex.t;
  issue_times : float Tx.Id_tbl.t;
  mutable latency_total : float;
  mutable latency_count : int;
  mutable committed : Tx.Id_set.t;
  mutable stop : bool;
}

module type RUNTIME = sig
  type endpoint
  type cluster

  val start : config:Config.t -> endpoints:endpoint array -> cluster
  val submit : cluster -> replica:int -> Bamboo_types.Tx.t list -> unit
  val committed_txs : cluster -> int
  val tx_committed : cluster -> Bamboo_types.Tx.id -> bool
  val kv_get : cluster -> replica:int -> string -> string option
  val kv_state_hash : cluster -> replica:int -> string
  val wait_committed : cluster -> count:int -> timeout_s:float -> bool
  val stop : cluster -> report

  val run :
    config:Config.t ->
    endpoints:endpoint array ->
    duration:float ->
    rate:float ->
    unit ->
    report
end

(* How many queued messages a replica takes per transport pass. Bounds the
   time the node mutex is held while a big backlog drains. *)
let recv_batch_max = 256

module Make_batched (T : Bamboo_network.Transport.S_batched) = struct
  type endpoint = T.t

  type replica_ctx = {
    node : Node.t;
    endpoint : T.t;
    node_mutex : Mutex.t;
    kv : Kvstore.t;
    timers : (float * Node.timer) Heap.t; (* min-heap on deadline *)
  }

  type cluster = {
    config : Config.t;
    shared : shared;
    replicas : replica_ctx array;
    threads : Thread.t list;
    started_at : float;
  }

  let timer_cmp (a, _) (b, _) = Float.compare a b

  (* Apply node outputs: transmit messages, arm timers, record commits and
     execute committed transactions. Called with [ctx.node_mutex] held. *)
  let apply_outputs shared ctx outs =
    List.iter
      (fun out ->
        match out with
        | Node.Send { dst; msg } -> T.send ctx.endpoint ~dst msg
        | Node.Broadcast msg -> T.broadcast ctx.endpoint msg
        | Node.Set_timer { timer; after } ->
            Heap.push ctx.timers (Unix.gettimeofday () +. after, timer)
        | Node.Committed { blocks; _ } ->
            let now = Unix.gettimeofday () in
            List.iter
              (fun (b : Block.t) ->
                List.iter
                  (fun (tx : Tx.t) -> ignore (Kvstore.apply_tx ctx.kv tx))
                  b.txs)
              blocks;
            Mutex.lock shared.mutex;
            List.iter
              (fun (b : Block.t) ->
                List.iter
                  (fun (tx : Tx.t) ->
                    if not (Tx.Id_set.mem tx.id shared.committed) then begin
                      shared.committed <- Tx.Id_set.add tx.id shared.committed;
                      match Tx.Id_tbl.find_opt shared.issue_times tx.id with
                      | Some t0 ->
                          shared.latency_total <-
                            shared.latency_total +. (now -. t0);
                          shared.latency_count <- shared.latency_count + 1
                      | None -> ()
                    end)
                  b.txs)
              blocks;
            Mutex.unlock shared.mutex
        | Node.Forked _ | Node.Proposed _ | Node.Voted _ -> ()
        | Node.Qc_formed _ | Node.Entered_view _ -> ())
      outs

  (* Fire every due timer, including timers armed by the handlers of
     timers fired in this same pass. *)
  let rec fire_due shared ctx =
    match Heap.peek ctx.timers with
    | Some (at, _) when at <= Unix.gettimeofday () -> (
        match Heap.pop ctx.timers with
        | Some (_, timer) ->
            apply_outputs shared ctx (Node.handle ctx.node (Timer timer));
            fire_due shared ctx
        | None -> ())
    | Some _ | None -> ()

  let apply shared ctx outs =
    apply_outputs shared ctx outs;
    fire_due shared ctx

  let replica_loop shared ctx =
    Mutex.lock ctx.node_mutex;
    apply shared ctx (Node.start ctx.node);
    Mutex.unlock ctx.node_mutex;
    while not shared.stop do
      let now = Unix.gettimeofday () in
      let timeout_s =
        match Heap.peek ctx.timers with
        | Some (at, _) -> Float.max 0.0 (Float.min 0.02 (at -. now))
        | None -> 0.02
      in
      let msgs = T.recv_batch ctx.endpoint ~timeout_s ~max:recv_batch_max in
      Mutex.lock ctx.node_mutex;
      (match msgs with
      | [] -> fire_due shared ctx
      | msgs ->
          List.iter
            (fun m -> apply_outputs shared ctx (Node.handle ctx.node (Receive m)))
            msgs;
          fire_due shared ctx);
      Mutex.unlock ctx.node_mutex
    done

  let start ~config ~endpoints =
    if Array.length endpoints <> config.Config.n then
      invalid_arg "Threaded_runtime.start: endpoint count mismatch";
    let registry =
      Bamboo_crypto.Sig.setup ~n:config.Config.n ~master:"bamboo-threaded"
    in
    let shared =
      {
        mutex = Mutex.create ();
        issue_times = Tx.Id_tbl.create 1024;
        latency_total = 0.0;
        latency_count = 0;
        committed = Tx.Id_set.empty;
        stop = false;
      }
    in
    let replicas =
      Array.init config.Config.n (fun self ->
          {
            node = Node.create ~config ~self ~registry ();
            endpoint = endpoints.(self);
            node_mutex = Mutex.create ();
            kv = Kvstore.create ();
            timers = Heap.create ~cmp:timer_cmp ();
          })
    in
    let threads =
      Array.to_list
        (Array.map
           (fun ctx -> Thread.create (replica_loop shared) ctx)
           replicas)
    in
    {
      config;
      shared;
      replicas;
      threads;
      started_at = Unix.gettimeofday ();
    }

  let submit cluster ~replica txs =
    if replica < 0 || replica >= Array.length cluster.replicas then
      invalid_arg "Threaded_runtime.submit: replica out of range";
    let now = Unix.gettimeofday () in
    Mutex.lock cluster.shared.mutex;
    List.iter
      (fun (tx : Tx.t) ->
        Tx.Id_tbl.replace cluster.shared.issue_times tx.id now)
      txs;
    Mutex.unlock cluster.shared.mutex;
    let ctx = cluster.replicas.(replica) in
    Mutex.lock ctx.node_mutex;
    apply cluster.shared ctx (Node.handle ctx.node (Submit txs));
    Mutex.unlock ctx.node_mutex

  let tx_committed cluster id =
    Mutex.lock cluster.shared.mutex;
    let c = Tx.Id_set.mem id cluster.shared.committed in
    Mutex.unlock cluster.shared.mutex;
    c

  let committed_txs cluster =
    Mutex.lock cluster.shared.mutex;
    let n = Tx.Id_set.cardinal cluster.shared.committed in
    Mutex.unlock cluster.shared.mutex;
    n

  let kv_get cluster ~replica key =
    let ctx = cluster.replicas.(replica) in
    Mutex.lock ctx.node_mutex;
    let v = Kvstore.get ctx.kv key in
    Mutex.unlock ctx.node_mutex;
    v

  let kv_state_hash cluster ~replica =
    let ctx = cluster.replicas.(replica) in
    Mutex.lock ctx.node_mutex;
    let h = Kvstore.state_hash ctx.kv in
    Mutex.unlock ctx.node_mutex;
    h

  let wait_committed cluster ~count ~timeout_s =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec loop () =
      if committed_txs cluster >= count then true
      else if Unix.gettimeofday () > deadline then false
      else begin
        Thread.delay 0.005;
        loop ()
      end
    in
    loop ()

  let stop cluster =
    cluster.shared.stop <- true;
    Array.iter (fun ctx -> T.close ctx.endpoint) cluster.replicas;
    List.iter Thread.join cluster.threads;
    let elapsed = Unix.gettimeofday () -. cluster.started_at in
    let shared = cluster.shared in
    let replicas = cluster.replicas in
    let committed_blocks =
      Array.map (fun ctx -> Node.committed_count ctx.node) replicas
    in
    (* Consistency: committed chains agree on the common prefix. *)
    let heights =
      Array.map
        (fun ctx -> Forest.committed_height (Node.forest ctx.node))
        replicas
    in
    let min_height = Array.fold_left min max_int heights in
    let consistent = ref true in
    for h = 0 to min_height do
      match Forest.committed_at (Node.forest replicas.(0).node) h with
      | None -> consistent := false
      | Some reference ->
          Array.iter
            (fun ctx ->
              match Forest.committed_at (Node.forest ctx.node) h with
              | Some b when Block.equal b reference -> ()
              | Some _ | None -> consistent := false)
            replicas
    done;
    (* Execution-layer agreement: replicas at the same committed height
       must hold byte-identical stores. *)
    let kv_consistent = ref true in
    let reference_height = heights.(0) in
    let reference_hash = Kvstore.state_hash replicas.(0).kv in
    Array.iteri
      (fun i ctx ->
        if i > 0 && heights.(i) = reference_height then
          if not (String.equal (Kvstore.state_hash ctx.kv) reference_hash) then
            kv_consistent := false)
      replicas;
    {
      duration = elapsed;
      committed_txs = Tx.Id_set.cardinal shared.committed;
      committed_blocks;
      throughput = float_of_int (Tx.Id_set.cardinal shared.committed) /. elapsed;
      latency_mean =
        (if shared.latency_count = 0 then 0.0
         else shared.latency_total /. float_of_int shared.latency_count);
      latency_count = shared.latency_count;
      consistent = !consistent;
      kv_consistent = !kv_consistent;
      any_violation =
        Array.exists (fun ctx -> Node.safety_violation ctx.node) replicas;
    }

  let run ~config ~endpoints ~duration ~rate () =
    let cluster = start ~config ~endpoints in
    let rng = Bamboo_util.Rng.create ~seed:(config.Config.seed + 1000) in
    let seq = ref 0 in
    let batch_interval = 0.002 in
    let deadline = Unix.gettimeofday () +. duration in
    while Unix.gettimeofday () < deadline do
      let k = Bamboo_util.Dist.poisson rng ~mean:(rate *. batch_interval) in
      if k > 0 then begin
        let target = Bamboo_util.Rng.int rng config.Config.n in
        let txs =
          List.init k (fun _ ->
              incr seq;
              Tx.make ~client:1 ~seq:!seq ~payload_len:config.Config.psize)
        in
        submit cluster ~replica:target txs
      end;
      Thread.delay batch_interval
    done;
    stop cluster
end

module Make (T : Bamboo_network.Transport.S) = Make_batched (struct
  include T

  let recv_batch t ~timeout_s ~max:_ =
    match T.recv t ~timeout_s with None -> [] | Some m -> [ m ]
end)
