open Bamboo_types
module Forest = Bamboo_forest.Forest
module Heap = Bamboo_util.Heap
module Trace = Bamboo_obs.Trace
module Json = Bamboo_util.Json

(* This runtime drives real system threads over real sockets/channels, so
   wall-clock reads are its time base by design; reproducibility is the
   simulator's job (lib/sim + runtime.ml), not this deployment path's. *)
[@@@lint.allow "no-ambient-nondeterminism"]

type report = {
  duration : float;
  committed_txs : int;
  committed_blocks : int array;
  throughput : float;
  latency_mean : float;
  latency_count : int;
  consistent : bool;
  kv_consistent : bool;
  any_violation : bool;
}

type shared = {
  mutex : Mutex.t;
  issue_times : float Tx.Id_tbl.t; [@guarded_by "mutex"]
  mutable latency_total : float; [@guarded_by "mutex"]
  mutable latency_count : int; [@guarded_by "mutex"]
  mutable committed : Tx.Id_set.t; [@guarded_by "mutex"]
  stop : bool Atomic.t;
}

module type RUNTIME = sig
  type endpoint
  type cluster

  val start :
    ?owned:int array ->
    ?traces:Bamboo_obs.Trace.t array ->
    ?epoch:float ->
    config:Config.t ->
    endpoints:endpoint array ->
    unit ->
    cluster

  val submit : cluster -> replica:int -> Bamboo_types.Tx.t list -> unit
  val submit_admission : cluster -> replica:int -> Bamboo_types.Tx.t list -> int
  val committed_txs : cluster -> int
  val rejected_txs : cluster -> int
  val tx_committed : cluster -> Bamboo_types.Tx.id -> bool
  val kv_get : cluster -> replica:int -> string -> string option
  val kv_state_hash : cluster -> replica:int -> string
  val wait_committed : cluster -> count:int -> timeout_s:float -> bool
  val stop : cluster -> report

  val run :
    ?owned:int array ->
    ?traces:Bamboo_obs.Trace.t array ->
    ?epoch:float ->
    config:Config.t ->
    endpoints:endpoint array ->
    duration:float ->
    rate:float ->
    unit ->
    report
end

(* How many queued messages a replica takes per transport pass. Bounds the
   time the node mutex is held while a big backlog drains. *)
let recv_batch_max = 256

module Make_batched (T : Bamboo_network.Transport.S_batched) = struct
  type endpoint = T.t

  type replica_ctx = {
    id : int; (* global replica id; equals Node.self *)
    node : Node.t;
    endpoint : T.t;
    node_mutex : Mutex.t;
    kv : Kvstore.t;
    timers : (float * Node.timer) Heap.t; [@guarded_by "node_mutex"]
        (* min-heap on deadline *)
    trace : Trace.t;
    epoch : float;
  }

  type cluster = {
    config : Config.t;
    shared : shared;
    replicas : replica_ctx array;
    local : int array; (* global id -> index into [replicas], or -1 *)
    threads : Thread.t list;
    started_at : float;
  }

  let timer_cmp (a, _) (b, _) = Float.compare a b

  (* Trace the consensus-level meaning of an outgoing message. Events
     carry the block hash in [args] so that monitors over a merged
     multi-process trace can correlate by block identity (span ids are
     per-process counters and meaningless across traces). *)
  let trace_sent ctx ~ts msg =
    match msg with
    | Message.Vote v when v.Vote.voter = ctx.id ->
        Trace.emit ctx.trace ~ts ~node:ctx.id ~view:v.Vote.view
          ~args:[ ("hash", Json.String (Ids.short v.Vote.block)) ]
          Trace.Vote_sent
    | Message.Timeout tm when tm.Timeout_msg.sender = ctx.id ->
        Trace.emit ctx.trace ~ts ~node:ctx.id ~view:tm.Timeout_msg.view
          Trace.Timeout_fired
    | Message.Proposal _ | Message.Vote _ | Message.Timeout _
    | Message.Request_block _ ->
        () (* original proposals are traced via the Proposed output *)

  (* Apply node outputs: transmit messages, arm timers, record commits and
     execute committed transactions. Called with [ctx.node_mutex] held. *)
  let apply_outputs shared ctx outs =
    let tracing = Trace.enabled ctx.trace in
    List.iter
      (fun out ->
        match out with
        | Node.Send { dst; msg } ->
            if tracing then
              trace_sent ctx ~ts:(Unix.gettimeofday () -. ctx.epoch) msg;
            T.send ctx.endpoint ~dst msg
        | Node.Broadcast msg ->
            if tracing then
              trace_sent ctx ~ts:(Unix.gettimeofday () -. ctx.epoch) msg;
            T.broadcast ctx.endpoint msg
        | Node.Set_timer { timer; after } ->
            Heap.push ctx.timers (Unix.gettimeofday () +. after, timer)
        | Node.Committed { blocks; trigger_view } ->
            let now = Unix.gettimeofday () in
            if tracing then
              List.iter
                (fun (b : Block.t) ->
                  Trace.emit ctx.trace ~ts:(now -. ctx.epoch) ~node:ctx.id
                    ~view:b.Block.view
                    ~args:
                      [
                        ("hash", Json.String (Ids.short b.Block.hash));
                        ("height", Json.Int b.Block.height);
                        ("txs", Json.Int (List.length b.Block.txs));
                        ("triggerView", Json.Int trigger_view);
                      ]
                    Trace.Commit)
                blocks;
            List.iter
              (fun (b : Block.t) ->
                List.iter
                  (fun (tx : Tx.t) -> ignore (Kvstore.apply_tx ctx.kv tx))
                  b.txs)
              blocks;
            Mutex.lock shared.mutex;
            List.iter
              (fun (b : Block.t) ->
                List.iter
                  (fun (tx : Tx.t) ->
                    if not (Tx.Id_set.mem tx.id shared.committed) then begin
                      shared.committed <- Tx.Id_set.add tx.id shared.committed;
                      match Tx.Id_tbl.find_opt shared.issue_times tx.id with
                      | Some t0 ->
                          shared.latency_total <-
                            shared.latency_total +. (now -. t0);
                          shared.latency_count <- shared.latency_count + 1
                      | None -> ()
                    end)
                  b.txs)
              blocks;
            Mutex.unlock shared.mutex
        | Node.Proposed b ->
            if tracing then
              Trace.emit ctx.trace
                ~ts:(Unix.gettimeofday () -. ctx.epoch)
                ~node:ctx.id ~view:b.Block.view
                ~args:
                  [
                    ("hash", Json.String (Ids.short b.Block.hash));
                    ("height", Json.Int b.Block.height);
                    ("txs", Json.Int (List.length b.Block.txs));
                  ]
                Trace.Proposal_sent
        | Node.Qc_formed qc ->
            if tracing then
              Trace.emit ctx.trace
                ~ts:(Unix.gettimeofday () -. ctx.epoch)
                ~node:ctx.id ~view:qc.Qc.view
                ~args:
                  [
                    ("hash", Json.String (Ids.short qc.Qc.block));
                    ("height", Json.Int qc.Qc.height);
                  ]
                Trace.Qc_formed
        | Node.Entered_view { view; reason } ->
            if tracing then
              Trace.emit ctx.trace
                ~ts:(Unix.gettimeofday () -. ctx.epoch)
                ~node:ctx.id ~view
                ~args:[ ("reason", Json.String reason) ]
                Trace.View_change
        | Node.Forked _ | Node.Voted _ -> ())
      outs

  (* Fire every due timer, including timers armed by the handlers of
     timers fired in this same pass. *)
  let rec fire_due shared ctx =
    match Heap.peek ctx.timers with
    | Some (at, _) when at <= Unix.gettimeofday () -> (
        match Heap.pop ctx.timers with
        | Some (_, timer) ->
            apply_outputs shared ctx (Node.handle ctx.node (Timer timer));
            fire_due shared ctx
        | None -> ())
    | Some _ | None -> ()

  let apply shared ctx outs =
    apply_outputs shared ctx outs;
    fire_due shared ctx

  let replica_loop shared ctx =
    Mutex.lock ctx.node_mutex;
    apply shared ctx (Node.start ctx.node);
    Mutex.unlock ctx.node_mutex;
    while not (Atomic.get shared.stop) do
      let now = Unix.gettimeofday () in
      let timeout_s =
        (* Peek under the node mutex: [submit] pushes timers from client
           threads, and a concurrent [Heap.push] can tear the peek. *)
        Mutex.lock ctx.node_mutex;
        let t =
          match Heap.peek ctx.timers with
          | Some (at, _) -> Float.max 0.0 (Float.min 0.02 (at -. now))
          | None -> 0.02
        in
        Mutex.unlock ctx.node_mutex;
        t
      in
      let msgs = T.recv_batch ctx.endpoint ~timeout_s ~max:recv_batch_max in
      Mutex.lock ctx.node_mutex;
      (match msgs with
      | [] -> fire_due shared ctx
      | msgs ->
          List.iter
            (fun m -> apply_outputs shared ctx (Node.handle ctx.node (Receive m)))
            msgs;
          fire_due shared ctx);
      Mutex.unlock ctx.node_mutex
    done

  let start ?owned ?traces ?epoch ~config ~endpoints () =
    let owned =
      match owned with
      | Some o -> o
      | None -> Array.init config.Config.n (fun i -> i)
    in
    if Array.length endpoints <> Array.length owned then
      invalid_arg "Threaded_runtime.start: endpoint count mismatch";
    Array.iter
      (fun id ->
        if id < 0 || id >= config.Config.n then
          invalid_arg "Threaded_runtime.start: owned replica out of range")
      owned;
    let traces =
      match traces with
      | Some ts ->
          if Array.length ts <> Array.length owned then
            invalid_arg "Threaded_runtime.start: trace count mismatch";
          ts
      | None -> Array.map (fun _ -> Trace.null) owned
    in
    let epoch = match epoch with Some e -> e | None -> Unix.gettimeofday () in
    (* The signature registry derives every replica's key from (n, master),
       so independently-started processes agree on all keys. *)
    let registry =
      Bamboo_crypto.Sig.setup ~n:config.Config.n ~master:"bamboo-threaded"
    in
    let shared =
      {
        mutex = Mutex.create ();
        issue_times = Tx.Id_tbl.create 1024;
        latency_total = 0.0;
        latency_count = 0;
        committed = Tx.Id_set.empty;
        stop = Atomic.make false;
      }
    in
    let replicas =
      Array.mapi
        (fun i self ->
          {
            id = self;
            node = Node.create ~config ~self ~registry ();
            endpoint = endpoints.(i);
            node_mutex = Mutex.create ();
            kv = Kvstore.create ();
            timers = Heap.create ~cmp:timer_cmp ();
            trace = traces.(i);
            epoch;
          })
        owned
    in
    let local = Array.make config.Config.n (-1) in
    Array.iteri (fun i self -> local.(self) <- i) owned;
    let threads =
      Array.to_list
        (Array.map
           (fun ctx -> Thread.create (replica_loop shared) ctx)
           replicas)
    in
    {
      config;
      shared;
      replicas;
      local;
      threads;
      started_at = Unix.gettimeofday ();
    }

  let ctx_of cluster ~replica =
    if replica < 0 || replica >= Array.length cluster.local then
      invalid_arg "Threaded_runtime: replica out of range";
    match cluster.local.(replica) with
    | -1 -> invalid_arg "Threaded_runtime: replica not owned by this cluster"
    | i -> cluster.replicas.(i)

  let submit_admission cluster ~replica txs =
    let ctx = ctx_of cluster ~replica in
    let now = Unix.gettimeofday () in
    Mutex.lock cluster.shared.mutex;
    List.iter
      (fun (tx : Tx.t) ->
        Tx.Id_tbl.replace cluster.shared.issue_times tx.id now)
      txs;
    Mutex.unlock cluster.shared.mutex;
    Mutex.lock ctx.node_mutex;
    let rejected_before = Node.rejected_txs ctx.node in
    apply cluster.shared ctx (Node.handle ctx.node (Submit txs));
    let rejected_after = Node.rejected_txs ctx.node in
    Mutex.unlock ctx.node_mutex;
    List.length txs - (rejected_after - rejected_before)

  let submit cluster ~replica txs =
    ignore (submit_admission cluster ~replica txs : int)

  let rejected_txs cluster =
    Array.fold_left
      (fun acc ctx ->
        Mutex.lock ctx.node_mutex;
        let r = Node.rejected_txs ctx.node in
        Mutex.unlock ctx.node_mutex;
        acc + r)
      0 cluster.replicas

  let tx_committed cluster id =
    Mutex.lock cluster.shared.mutex;
    let c = Tx.Id_set.mem id cluster.shared.committed in
    Mutex.unlock cluster.shared.mutex;
    c

  let committed_txs cluster =
    Mutex.lock cluster.shared.mutex;
    let n = Tx.Id_set.cardinal cluster.shared.committed in
    Mutex.unlock cluster.shared.mutex;
    n

  let kv_get cluster ~replica key =
    let ctx = ctx_of cluster ~replica in
    Mutex.lock ctx.node_mutex;
    let v = Kvstore.get ctx.kv key in
    Mutex.unlock ctx.node_mutex;
    v

  let kv_state_hash cluster ~replica =
    let ctx = ctx_of cluster ~replica in
    Mutex.lock ctx.node_mutex;
    let h = Kvstore.state_hash ctx.kv in
    Mutex.unlock ctx.node_mutex;
    h

  let wait_committed cluster ~count ~timeout_s =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec loop () =
      if committed_txs cluster >= count then true
      else if Unix.gettimeofday () > deadline then false
      else begin
        Thread.delay 0.005;
        loop ()
      end
    in
    loop ()

  let stop cluster =
    Atomic.set cluster.shared.stop true;
    Array.iter (fun ctx -> T.close ctx.endpoint) cluster.replicas;
    List.iter Thread.join cluster.threads;
    Array.iter (fun ctx -> Trace.close ctx.trace) cluster.replicas;
    let elapsed = Unix.gettimeofday () -. cluster.started_at in
    let shared = cluster.shared in
    let replicas = cluster.replicas in
    let committed_blocks =
      Array.map (fun ctx -> Node.committed_count ctx.node) replicas
    in
    (* Consistency: committed chains agree on the common prefix (across
       the replicas this cluster owns). *)
    let heights =
      Array.map
        (fun ctx -> Forest.committed_height (Node.forest ctx.node))
        replicas
    in
    let min_height = Array.fold_left min max_int heights in
    let consistent = ref true in
    for h = 0 to min_height do
      match Forest.committed_at (Node.forest replicas.(0).node) h with
      | None -> consistent := false
      | Some reference ->
          Array.iter
            (fun ctx ->
              match Forest.committed_at (Node.forest ctx.node) h with
              | Some b when Block.equal b reference -> ()
              | Some _ | None -> consistent := false)
            replicas
    done;
    (* Execution-layer agreement: replicas at the same committed height
       must hold byte-identical stores. *)
    let kv_consistent = ref true in
    let reference_height = heights.(0) in
    let reference_hash = Kvstore.state_hash replicas.(0).kv in
    Array.iteri
      (fun i ctx ->
        if i > 0 && heights.(i) = reference_height then
          if not (String.equal (Kvstore.state_hash ctx.kv) reference_hash) then
            kv_consistent := false)
      replicas;
    (* The replica threads are joined, but take the mutex anyway so the
       locking story stays uniform (and checkable) for these fields. *)
    let committed_txs, latency_mean, latency_count =
      Mutex.lock shared.mutex;
      let committed_txs = Tx.Id_set.cardinal shared.committed in
      let latency_mean =
        if shared.latency_count = 0 then 0.0
        else shared.latency_total /. float_of_int shared.latency_count
      in
      let latency_count = shared.latency_count in
      Mutex.unlock shared.mutex;
      (committed_txs, latency_mean, latency_count)
    in
    {
      duration = elapsed;
      committed_txs;
      committed_blocks;
      throughput = float_of_int committed_txs /. elapsed;
      latency_mean;
      latency_count;
      consistent = !consistent;
      kv_consistent = !kv_consistent;
      any_violation =
        Array.exists (fun ctx -> Node.safety_violation ctx.node) replicas;
    }

  let run ?owned ?traces ?epoch ~config ~endpoints ~duration ~rate () =
    let cluster = start ?owned ?traces ?epoch ~config ~endpoints () in
    let targets = Array.map (fun ctx -> ctx.id) cluster.replicas in
    let rng = Bamboo_util.Rng.create ~seed:(config.Config.seed + 1000) in
    let seq = ref 0 in
    let batch_interval = 0.002 in
    let deadline = Unix.gettimeofday () +. duration in
    while Unix.gettimeofday () < deadline do
      let k = Bamboo_util.Dist.poisson rng ~mean:(rate *. batch_interval) in
      if k > 0 then begin
        let target = targets.(Bamboo_util.Rng.int rng (Array.length targets)) in
        let txs =
          List.init k (fun _ ->
              incr seq;
              Tx.make ~client:1 ~seq:!seq ~payload_len:config.Config.psize)
        in
        submit cluster ~replica:target txs
      end;
      Thread.delay batch_interval
    done;
    stop cluster
end

module Make (T : Bamboo_network.Transport.S) = Make_batched (struct
  include T

  let recv_batch t ~timeout_s ~max:_ =
    match T.recv t ~timeout_s with None -> [] | Some m -> [ m ]
end)
