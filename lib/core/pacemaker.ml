open Bamboo_types

type entry_reason = Via_qc of Qc.t | Via_tc of Tcert.t | Startup

type t = {
  timeout : float;
  backoff : float;
  mutable view : Ids.view;
  mutable reason : entry_reason;
  mutable highest_timeout_sent : Ids.view;
  mutable consecutive : int; (* TC-entered views since the last QC *)
}

let create ?(backoff = 1.0) ~timeout () =
  if timeout <= 0.0 then invalid_arg "Pacemaker.create: timeout must be positive";
  if backoff < 1.0 then invalid_arg "Pacemaker.create: backoff must be >= 1";
  {
    timeout;
    backoff;
    view = 1;
    reason = Startup;
    highest_timeout_sent = 0;
    consecutive = 0;
  }

let current_view t = t.view

let entry_reason t = t.reason

let reason_label = function
  | Via_qc _ -> "qc"
  | Via_tc _ -> "tc"
  | Startup -> "startup"

let base_timeout t = t.timeout

let consecutive_timeouts t = t.consecutive

let timer_duration t =
  t.timeout *. (t.backoff ** float_of_int (min t.consecutive 16))

let advance t ~to_view ~reason =
  if to_view > t.view then begin
    t.view <- to_view;
    t.reason <- reason;
    (match reason with
    | Via_qc _ -> t.consecutive <- 0
    | Via_tc _ -> t.consecutive <- t.consecutive + 1
    | Startup -> ());
    true
  end
  else false

let note_timer_fired t view =
  if view = t.view then begin
    (* Re-broadcast on every expiry while stuck in the view: a single
       timeout message can be lost, and the TC needs a quorum of them. *)
    t.highest_timeout_sent <- max t.highest_timeout_sent view;
    `Broadcast_timeout
  end
  else `Stale

let timed_out t view = t.highest_timeout_sent >= view
