open Bamboo_types
module Forest = Bamboo_forest.Forest
module Mempool = Bamboo_mempool.Mempool
module Quorum = Bamboo_quorum.Quorum

type timer = View_timeout of Ids.view | Propose_at of Ids.view

type input =
  | Receive of Message.t
  | Timer of timer
  | Submit of Tx.t list

type output =
  | Send of { dst : Ids.replica; msg : Message.t }
  | Broadcast of Message.t
  | Set_timer of { timer : timer; after : float }
  | Committed of { blocks : Block.t list; trigger_view : Ids.view }
  | Forked of Block.t list
  | Proposed of Block.t
  | Voted of Block.t
  | Qc_formed of Qc.t
  | Entered_view of { view : Ids.view; reason : string }

type t = {
  config : Config.t;
  self : Ids.replica;
  registry : Bamboo_crypto.Sig.registry;
  verify_sigs : bool;
  root : [ `Merkle | `Flat ];
  byzantine : bool;
  forest : Forest.t;
  mempool : Mempool.t;
  quorum : Quorum.t;
  pacemaker : Pacemaker.t;
  election : Election.t;
  safety : Safety.t;
  certified : (Ids.hash, Qc.t) Hashtbl.t;
  verified_qcs : (string, unit) Hashtbl.t;
      (* successful [Qc.verify] results, keyed by {!Qc.cache_key} (full
         content, not view): the same certificate arrives many times —
         embedded in proposals, timeout messages and vote quorums — and
         each verification is a whole HMAC batch. Failures are never
         cached, and a tampered copy has a different key. *)
  pending_blocks : (Ids.hash, (Block.t * Tcert.t option) list) Hashtbl.t;
      (* children waiting for a missing parent, keyed by parent hash *)
  pending_qcs : (Ids.hash, Qc.t) Hashtbl.t; (* QCs for not-yet-seen blocks *)
  seen : (string, unit) Hashtbl.t; (* message de-duplication / echo *)
  requested : (Ids.hash, Ids.replica) Hashtbl.t;
      (* blocks asked for, with the peer last tried; retried on view
         timeout against the next peer in case request or reply was lost *)
  mutable proposed_through : Ids.view; (* highest view we proposed in *)
  mutable rejected_txs : int;
  mutable violation : bool;
  (* observe-only tallies for the metrics layer *)
  mutable qc_cache_hits : int;
  mutable qc_cache_misses : int;
  mutable view_changes : int;
  mutable timeouts_fired : int;
}

let src = Logs.Src.create "bamboo.node" ~doc:"Bamboo replica engine"

module Log = (val Logs.src_log src : Logs.LOG)

let create ~config ~self ~registry ?(verify_sigs = true) ?(root = `Merkle)
    ?wrap_safety () =
  (match Config.validate config with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Node.create: " ^ e));
  if self < 0 || self >= config.Config.n then
    invalid_arg "Node.create: self out of range";
  let forest = Forest.create () in
  let certified = Hashtbl.create 256 in
  Hashtbl.add certified Block.genesis_hash Safety.genesis_qc;
  let chain =
    Safety.{ forest; qc_of = (fun h -> Hashtbl.find_opt certified h) }
  in
  let ctx =
    Safety.
      {
        n = config.Config.n;
        self;
        registry;
        quorum = Config.quorum_size config;
      }
  in
  let base =
    match config.Config.protocol with
    | Config.Hotstuff -> Hotstuff.make ctx chain
    | Config.Twochain -> Twochain.make ctx chain
    | Config.Streamlet -> Streamlet.make ctx chain
    | Config.Fasthotstuff -> Fasthotstuff.make ctx chain
  in
  let base =
    match config.Config.echo with
    | None -> base
    | Some echo -> { base with Safety.echo }
  in
  let byzantine = self < config.Config.byz_no in
  let safety =
    if byzantine then
      Byzantine.apply config.Config.strategy config.Config.protocol ~chain base
    else base
  in
  let safety =
    match wrap_safety with None -> safety | Some wrap -> wrap safety
  in
  {
    config;
    self;
    registry;
    verify_sigs;
    root;
    byzantine;
    forest;
    mempool = Mempool.create ~capacity:config.Config.memsize ();
    quorum = Quorum.create ~n:config.Config.n;
    pacemaker =
      Pacemaker.create ~backoff:config.Config.backoff
        ~timeout:config.Config.timeout ();
    election = Election.create config.Config.election ~n:config.Config.n;
    safety;
    certified;
    verified_qcs = Hashtbl.create 64;
    pending_blocks = Hashtbl.create 16;
    pending_qcs = Hashtbl.create 16;
    seen = Hashtbl.create 1024;
    requested = Hashtbl.create 16;
    proposed_through = 0;
    rejected_txs = 0;
    violation = false;
    qc_cache_hits = 0;
    qc_cache_misses = 0;
    view_changes = 0;
    timeouts_fired = 0;
  }

(* Outputs are accumulated in reverse and flipped once per [handle]. *)
let emit out o = out := o :: !out

let first_seen t key =
  if Hashtbl.mem t.seen key then false
  else begin
    Hashtbl.add t.seen key ();
    true
  end

(* Cached certificate verification. Byzantine-forged QCs still fail: only
   successful verifications enter the cache, under a key covering the
   certificate's full content, so a tampered QC (same block and view,
   different signatures) always reaches [Qc.verify] and is rejected. *)
let verify_qc t qc =
  (not t.verify_sigs)
  || Qc.is_genesis qc
  ||
  let key = Qc.cache_key qc in
  if Hashtbl.mem t.verified_qcs key then begin
    t.qc_cache_hits <- t.qc_cache_hits + 1;
    true
  end
  else begin
    t.qc_cache_misses <- t.qc_cache_misses + 1;
    if Qc.verify t.registry ~quorum:(Quorum.quorum_size t.quorum) qc then begin
      Hashtbl.add t.verified_qcs key ();
      true
    end
    else false
  end

let do_commit t out target ~trigger_view =
  match Forest.commit t.forest target with
  | Ok (newly, forked) ->
      List.iter (fun (b : Block.t) -> Mempool.forget t.mempool b.txs) newly;
      List.iter
        (fun (b : Block.t) ->
          ignore (Mempool.requeue_front t.mempool b.txs : int))
        forked;
      Quorum.gc t.quorum ~below_view:(Forest.last_committed t.forest).Block.view;
      emit out (Committed { blocks = newly; trigger_view });
      if forked <> [] then emit out (Forked forked)
  | Error Forest.Already_committed -> ()
  | Error Forest.Unknown_block ->
      (* The commit rule only designates blocks reachable in the forest. *)
      assert false
  | Error Forest.Conflicts_with_committed ->
      t.violation <- true;
      Log.err (fun m ->
          m "replica %d: commit target %a conflicts with finalized prefix"
            t.self Ids.pp_hash target)

let rec do_propose t out view =
  (* If a quorum certified a block we have not received yet (votes are
     small and overtake the block broadcast), proposing now would build on
     a stale parent and fork the chain; wait for the block — its arrival
     re-triggers the proposal, and the view timer backstops the wait. *)
  (* Bucket order is irrelevant here: the fold computes a commutative OR
     over the pending QCs, so any visit order yields the same boolean. *)
  let[@lint.allow "no-order-leak"] blind_qc =
    Hashtbl.fold
      (fun _ (qc : Qc.t) acc -> acc || qc.view >= view - 1)
      t.pending_qcs false
  in
  if (not blind_qc) && t.proposed_through < view then begin
    t.proposed_through <- view;
    let tc =
      match Pacemaker.entry_reason t.pacemaker with
      | Pacemaker.Via_tc tc when tc.Tcert.view = view - 1 -> Some tc
      | Pacemaker.Via_tc _ | Pacemaker.Via_qc _ | Pacemaker.Startup -> None
    in
    match t.safety.Safety.propose ~view ~tc with
    | None -> () (* silence strategy, or nothing to build on *)
    | Some Safety.{ parent; justify } ->
        let txs = Mempool.batch t.mempool ~max:t.config.Config.bsize in
        let block =
          Block.create ~root:t.root ~view ~parent ~justify ~proposer:t.self
            ~txs ()
        in
        let msg = Message.Proposal { block; tc } in
        emit out (Broadcast msg);
        emit out (Proposed block);
        (* Deliver our own proposal locally (transports skip self). *)
        handle_proposal t out block tc
  end

and try_advance t out ~to_view ~reason =
  if Pacemaker.advance t.pacemaker ~to_view ~reason then begin
    t.view_changes <- t.view_changes + 1;
    emit out
      (Entered_view { view = to_view; reason = Pacemaker.reason_label reason });
    emit out
      (Set_timer
         {
           timer = View_timeout to_view;
           after = Pacemaker.timer_duration t.pacemaker;
         });
    if Election.is_leader t.election ~view:to_view ~self:t.self then begin
      let defer =
        match (t.config.Config.propose_policy, reason) with
        | Config.Wait_timeout, Pacemaker.Via_tc _ -> true
        | Config.Wait_timeout, (Pacemaker.Via_qc _ | Pacemaker.Startup)
        | Config.Immediate, _ ->
            false
      in
      if defer then
        (* Non-responsive protocols wait out the maximal network delay
           after a view change before proposing. The wait is kept inside
           the view timer (80%) so the proposal reaches replicas before
           their timers expire — a deployment sets the view timer with
           margin above the assumed maximal delay. *)
        emit out
          (Set_timer
             {
               timer = Propose_at to_view;
               after = 0.8 *. Pacemaker.timer_duration t.pacemaker;
             })
      else do_propose t out to_view
    end
  end

and register_qc t out (qc : Qc.t) =
  if not (Hashtbl.mem t.certified qc.block) then begin
    if not (verify_qc t qc) then ()
    else if Forest.mem t.forest qc.block then begin
      Hashtbl.add t.certified qc.block qc;
      (match t.safety.Safety.on_qc qc with
      | Some target -> do_commit t out target ~trigger_view:qc.view
      | None -> ());
      try_advance t out ~to_view:(qc.view + 1) ~reason:(Pacemaker.Via_qc qc)
    end
    else begin
      (* Certificate for a block we have not received yet: stash it and
         apply it when the block arrives; fetch the block from one of its
         voters (who must hold it). Advancing is still safe — the QC is
         evidence that its view completed. *)
      if not (Hashtbl.mem t.pending_qcs qc.block) then begin
        Hashtbl.add t.pending_qcs qc.block qc;
        if not (Hashtbl.mem t.requested qc.block) then begin
          let voter =
            List.find_map
              (fun (s : Bamboo_crypto.Sig.t) ->
                if s.signer <> t.self then Some s.signer else None)
              qc.sigs
          in
          match voter with
          | Some dst ->
              Hashtbl.replace t.requested qc.block dst;
              emit out
                (Send
                   {
                     dst;
                     msg =
                       Message.Request_block
                         { hash = qc.block; requester = t.self };
                   })
          | None -> ()
        end
      end;
      try_advance t out ~to_view:(qc.view + 1) ~reason:(Pacemaker.Via_qc qc)
    end
  end
  else try_advance t out ~to_view:(qc.view + 1) ~reason:(Pacemaker.Via_qc qc)

and handle_tc t out (tc : Tcert.t) =
  if t.config.Config.tc_adopt_qc then register_qc t out tc.high_qc;
  try_advance t out ~to_view:(tc.view + 1) ~reason:(Pacemaker.Via_tc tc)

and structurally_valid t (block : Block.t) =
  String.equal block.justify.block block.parent
  && block.view > 0
  && Election.leader t.election ~view:block.view = block.proposer

and handle_proposal t out (block : Block.t) tc =
  let msg = Message.Proposal { block; tc } in
  if first_seen t (Message.key msg) then begin
    if t.safety.Safety.echo && block.proposer <> t.self then
      emit out (Broadcast msg);
    if structurally_valid t block then begin
      register_qc t out block.justify;
      (match tc with Some tc -> handle_tc t out tc | None -> ());
      match Forest.add t.forest block with
      | Forest.Added -> after_block_added t out block tc
      | Forest.Missing_parent ->
          let waiting =
            match Hashtbl.find_opt t.pending_blocks block.parent with
            | None -> []
            | Some l -> l
          in
          Hashtbl.replace t.pending_blocks block.parent ((block, tc) :: waiting);
          (* Block synchronization: fetch the missing ancestor from this
             block's proposer, which demonstrably holds it. Lost requests
             or replies are retried on view timeout. *)
          if
            block.proposer <> t.self
            && not (Hashtbl.mem t.requested block.parent)
          then begin
            Hashtbl.replace t.requested block.parent block.proposer;
            emit out
              (Send
                 {
                   dst = block.proposer;
                   msg =
                     Message.Request_block
                       { hash = block.parent; requester = t.self };
                 })
          end
      | Forest.Duplicate | Forest.Below_prune_horizon -> ()
    end
  end

and after_block_added t out (block : Block.t) tc =
  Hashtbl.remove t.requested block.hash;
  (* A stashed QC for this block can now take effect. *)
  (match Hashtbl.find_opt t.pending_qcs block.hash with
  | Some qc ->
      Hashtbl.remove t.pending_qcs block.hash;
      Hashtbl.remove t.certified block.hash;
      (* remove guard so register_qc re-runs *)
      register_qc t out qc;
      (* The arrival may unblock a proposal deferred on the blind QC. *)
      let view = Pacemaker.current_view t.pacemaker in
      if
        Election.is_leader t.election ~view ~self:t.self
        && t.proposed_through < view
      then do_propose t out view
  | None -> ());
  (* Voting rule: the protocol's own [should_vote] (and its last-voted-view
     state) fully governs voting — chained-BFT replicas vote on the first
     valid proposal of any view beyond their last voted/abandoned one, even
     before their pacemaker catches up. *)
  if
    (not (Pacemaker.timed_out t.pacemaker block.view))
    && t.safety.Safety.should_vote ~block ~tc
  then begin
    emit out (Voted block);
    let vote =
      Vote.create t.registry ~voter:t.self ~block:block.hash ~view:block.view
        ~height:block.height
    in
    t.safety.Safety.on_vote_sent block;
    if t.safety.Safety.vote_broadcast then begin
      emit out (Broadcast (Message.Vote vote));
      handle_vote t out vote (* count our own broadcast vote *)
    end
    else begin
      let dst = Election.leader t.election ~view:(block.view + 1) in
      if dst = t.self then handle_vote t out vote
      else emit out (Send { dst; msg = Message.Vote vote })
    end
  end;
  (* Unblock any children that were waiting for this block. *)
  match Hashtbl.find_opt t.pending_blocks block.hash with
  | None -> ()
  | Some waiting ->
      Hashtbl.remove t.pending_blocks block.hash;
      List.iter
        (fun (child, child_tc) ->
          match Forest.add t.forest child with
          | Forest.Added -> after_block_added t out child child_tc
          | Forest.Duplicate | Forest.Below_prune_horizon
          | Forest.Missing_parent ->
              ())
        (List.rev waiting)

and handle_vote t out (vote : Vote.t) =
  let msg = Message.Vote vote in
  if first_seen t (Message.key msg) then begin
    if t.safety.Safety.echo && vote.voter <> t.self then
      emit out (Broadcast msg);
    if t.verify_sigs && not (Vote.verify t.registry vote) then ()
    else
      match Quorum.voted t.quorum vote with
      | Some qc ->
          emit out (Qc_formed qc);
          register_qc t out qc
      | None -> ()
  end

and handle_timeout_msg t out (tm : Timeout_msg.t) =
  let msg = Message.Timeout tm in
  if first_seen t (Message.key msg) then begin
    if t.verify_sigs && not (Timeout_msg.verify t.registry tm) then ()
    else begin
      if t.config.Config.tc_adopt_qc then register_qc t out tm.high_qc;
      (match Quorum.timed_out t.quorum tm with
      | Some tc -> handle_tc t out tc
      | None -> ());
      (* View-synchronization jump: f+1 distinct replicas timing out of a
         higher view prove at least one honest replica is there; join it.
         Without this, a cluster split across two views by message loss
         (neither side holding a timeout quorum alone) deadlocks. *)
      if
        tm.view > Pacemaker.current_view t.pacemaker
        && Quorum.timeout_count t.quorum ~view:tm.view
           >= Quorum.fault_bound t.quorum + 1
      then
        try_advance t out ~to_view:tm.view ~reason:Pacemaker.Startup
    end
  end

let handle_timer t out = function
  | View_timeout view -> (
      match Pacemaker.note_timer_fired t.pacemaker view with
      | `Stale -> ()
      | `Broadcast_timeout ->
          t.timeouts_fired <- t.timeouts_fired + 1;
          t.safety.Safety.note_view_abandoned view;
          let tm =
            Timeout_msg.create t.registry ~sender:t.self ~view
              ~high_qc:(t.safety.Safety.timeout_high_qc ())
          in
          emit out (Broadcast (Message.Timeout tm));
          (* Re-arm: while stuck in this view, keep re-broadcasting so that
             lost timeout messages cannot prevent the TC from forming. *)
          emit out
            (Set_timer
               {
                 timer = View_timeout view;
                 after = Pacemaker.timer_duration t.pacemaker;
               });
          (* Retry outstanding block fetches against the next peer — the
             earlier request or its reply may have been lost. The snapshot
             is sorted by hash so the emitted Send sequence (and hence the
             trace) does not depend on bucket order. *)
          List.iter
            (fun (hash, last_dst) ->
              if not (Forest.mem t.forest hash) then begin
                let dst = ref ((last_dst + 1) mod t.config.Config.n) in
                if !dst = t.self then
                  dst := (!dst + 1) mod t.config.Config.n;
                if !dst <> t.self then begin
                  Hashtbl.replace t.requested hash !dst;
                  emit out
                    (Send
                       {
                         dst = !dst;
                         msg =
                           Message.Request_block { hash; requester = t.self };
                       })
                end
              end)
            (Bamboo_util.Tbl.sorted_bindings ~compare:String.compare
               t.requested);
          handle_timeout_msg t out tm)
  | Propose_at view ->
      if Pacemaker.current_view t.pacemaker = view then do_propose t out view

let handle_submit t txs =
  List.iter
    (fun tx ->
      if not (Mempool.add t.mempool tx) then
        t.rejected_txs <- t.rejected_txs + 1)
    txs

let seen_before t msg = Hashtbl.mem t.seen (Message.key msg)

let handle_request t out ~hash ~requester =
  if requester >= 0 && requester < t.config.Config.n && requester <> t.self
  then
    match Forest.find t.forest hash with
    | Some block ->
        emit out
          (Send
             { dst = requester; msg = Message.Proposal { block; tc = None } })
    | None -> ()

let handle t input =
  let out = ref [] in
  (match input with
  | Receive (Message.Proposal { block; tc }) -> handle_proposal t out block tc
  | Receive (Message.Vote v) -> handle_vote t out v
  | Receive (Message.Timeout tm) -> handle_timeout_msg t out tm
  | Receive (Message.Request_block { hash; requester }) ->
      handle_request t out ~hash ~requester
  | Timer timer -> handle_timer t out timer
  | Submit txs -> handle_submit t txs);
  List.rev !out

let start t =
  let out = ref [] in
  emit out
    (Set_timer
       {
         timer = View_timeout 1;
         after = Pacemaker.timer_duration t.pacemaker;
       });
  if Election.is_leader t.election ~view:1 ~self:t.self then
    do_propose t out 1;
  List.rev !out

let self t = t.self
let protocol_name t = t.safety.Safety.name
let is_byzantine t = t.byzantine
let current_view t = Pacemaker.current_view t.pacemaker
let forest t = t.forest
let mempool_size t = Mempool.length t.mempool
let high_qc t = t.safety.Safety.high_qc ()
let locked t = t.safety.Safety.locked ()
let committed_count t = Forest.committed_count t.forest - 1
let rejected_txs t = t.rejected_txs
let safety_violation t = t.violation
let qc_cache_hits t = t.qc_cache_hits
let qc_cache_misses t = t.qc_cache_misses
let view_changes t = t.view_changes
let timeouts_fired t = t.timeouts_fired
let mempool_stats t = Mempool.stats t.mempool
let last_voted_view t = t.safety.Safety.last_voted_view ()

(* Canonical digest of everything that can influence this replica's future
   behavior, for the model checker's state hashing. All hashtable-backed
   components are emitted in sorted key order so two replicas that reached
   the same abstract state through different delivery orders digest
   identically. Deliberately excluded: the verified-QC cache (performance
   memo only; empty when [verify_sigs] is off, as in the simulator),
   observe-only tallies, and mempool *contents* (length only — the explore
   scenarios run without client load, and batch composition is not part of
   the safety/liveness state space being checked). *)
let fingerprint t buf =
  let add_i i =
    Buffer.add_string buf (string_of_int i);
    Buffer.add_char buf ';'
  in
  let add_s s =
    add_i (String.length s);
    Buffer.add_string buf s
  in
  let add_qc (qc : Qc.t) =
    add_s qc.block;
    add_i qc.view;
    add_i qc.height
  in
  add_i t.self;
  (* Pacemaker: view, entry reason (its embedded certificate view governs
     TC attachment on the next proposal), backoff state, timeout high-water
     mark (the [timed_out] voting guard). *)
  add_i (Pacemaker.current_view t.pacemaker);
  (match Pacemaker.entry_reason t.pacemaker with
  | Pacemaker.Startup -> add_i 0
  | Pacemaker.Via_qc qc ->
      add_i 1;
      add_qc qc
  | Pacemaker.Via_tc tc ->
      add_i 2;
      add_i tc.Tcert.view;
      add_qc tc.Tcert.high_qc);
  add_i (Pacemaker.consecutive_timeouts t.pacemaker);
  let rec highest_timed_out v =
    if v <= 0 then 0
    else if Pacemaker.timed_out t.pacemaker v then v
    else highest_timed_out (v - 1)
  in
  add_i (highest_timed_out (Pacemaker.current_view t.pacemaker));
  (* Safety-module state. *)
  add_i (t.safety.Safety.last_voted_view ());
  (match t.safety.Safety.locked () with
  | None -> add_i 0
  | Some (h, v) ->
      add_i 1;
      add_s h;
      add_i v);
  add_qc (t.safety.Safety.high_qc ());
  add_qc (t.safety.Safety.timeout_high_qc ());
  (* Forest: committed prefix plus the uncommitted block set. *)
  add_i (Forest.committed_height t.forest);
  add_s (Forest.last_committed t.forest).Block.hash;
  let uncommitted =
    Forest.fold_uncommitted t.forest (fun acc (b : Block.t) -> b.hash :: acc) []
  in
  List.iter add_s (List.sort String.compare uncommitted);
  Buffer.add_char buf '|';
  Quorum.fingerprint t.quorum buf;
  Buffer.add_char buf '|';
  (* Certified QCs, stashed QCs/blocks, outstanding fetches, dedup set. *)
  List.iter
    (fun (h, qc) ->
      add_s h;
      add_qc qc)
    (Bamboo_util.Tbl.sorted_bindings ~compare:String.compare t.certified);
  List.iter
    (fun (h, qc) ->
      add_s h;
      add_qc qc)
    (Bamboo_util.Tbl.sorted_bindings ~compare:String.compare t.pending_qcs);
  List.iter
    (fun (parent, waiting) ->
      add_s parent;
      List.iter
        (fun ((b : Block.t), _) -> add_s b.hash)
        (List.sort
           (fun ((b1 : Block.t), _) ((b2 : Block.t), _) ->
             String.compare b1.hash b2.hash)
           waiting))
    (Bamboo_util.Tbl.sorted_bindings ~compare:String.compare t.pending_blocks);
  List.iter
    (fun (h, dst) ->
      add_s h;
      add_i dst)
    (Bamboo_util.Tbl.sorted_bindings ~compare:String.compare t.requested);
  List.iter add_s
    (Bamboo_util.Tbl.sorted_keys ~compare:String.compare t.seen);
  add_i t.proposed_through;
  add_i (Mempool.length t.mempool);
  add_i (if t.violation then 1 else 0)
