(** Wall-clock runtime: drives a cluster of {!Node}s over a real
    {!Bamboo_network.Transport} backend (in-process channels, lock-free
    rings or TCP sockets) with OS threads and real timers.

    This is the deployment counterpart of the simulator — same engine, no
    modelling: real SHA-256 hashing, real HMAC signature verification, real
    sockets when the TCP transport is used, and the {!Kvstore} execution
    layer applied to every committed transaction. Used by the integration
    tests, the deployment example and the REST server; the paper's
    experiments use {!Runtime}. *)

type report = {
  duration : float;  (** Wall-clock seconds measured. *)
  committed_txs : int;  (** Distinct transactions committed. *)
  committed_blocks : int array;  (** Per replica. *)
  throughput : float;
  latency_mean : float;  (** Seconds, across completed transactions. *)
  latency_count : int;
  consistent : bool;  (** Cross-replica committed-prefix agreement. *)
  kv_consistent : bool;
      (** All replicas' key-value stores hash identically (for equal
          committed heights this must hold; replicas still catching up are
          compared on the common prefix count only when equal). *)
  any_violation : bool;
}

(** Interface of an instantiated runtime; [endpoint] is the transport's
    endpoint type. *)
module type RUNTIME = sig
  type endpoint

  type cluster

  val start :
    ?owned:int array ->
    ?traces:Bamboo_obs.Trace.t array ->
    ?epoch:float ->
    config:Config.t ->
    endpoints:endpoint array ->
    unit ->
    cluster
  (** Spawns one thread per owned replica; nodes begin proposing
      immediately. [owned] (default: all of [0..config.n-1]) names the
      replica ids this process hosts — a multi-process deployment runs
      [start ~owned:[|self|]] in each OS process, with the transport
      carrying messages between them. [endpoints] and [traces] are
      indexed positionally against [owned]; [traces.(i)] (default
      {!Bamboo_obs.Trace.null}) receives that replica's consensus events
      with timestamps relative to [epoch] (default: now) — pass the same
      epoch to every process so merged traces share a clock. *)

  val submit : cluster -> replica:int -> Bamboo_types.Tx.t list -> unit
  (** Injects client transactions at an owned replica (thread-safe).
      Transactions are tracked for latency from this call until their
      commit. Raises [Invalid_argument] for a replica this cluster does
      not own. *)

  val submit_admission :
    cluster -> replica:int -> Bamboo_types.Tx.t list -> int
  (** Like {!submit}, but returns how many of the transactions the
      replica's mempool actually admitted — the ingest path's
      backpressure signal: a short count means the pool is full (or the
      txs are duplicates) and the client should be shed, not silently
      dropped. *)

  val committed_txs : cluster -> int

  val rejected_txs : cluster -> int
  (** Total mempool rejections across this cluster's owned replicas. *)

  val tx_committed : cluster -> Bamboo_types.Tx.id -> bool

  val kv_get : cluster -> replica:int -> string -> string option
  (** Reads the replica's executed key-value state. *)

  val kv_state_hash : cluster -> replica:int -> string

  val wait_committed : cluster -> count:int -> timeout_s:float -> bool
  (** Blocks until at least [count] distinct transactions have committed,
      or the timeout elapses; returns whether the count was reached. *)

  val stop : cluster -> report
  (** Stops all threads, closes the endpoints, and reports. *)

  val run :
    ?owned:int array ->
    ?traces:Bamboo_obs.Trace.t array ->
    ?epoch:float ->
    config:Config.t ->
    endpoints:endpoint array ->
    duration:float ->
    rate:float ->
    unit ->
    report
  (** Convenience: [start], drive a Poisson open-loop client at [rate]
      tx/s for [duration] wall-clock seconds (submitting to owned
      replicas only), [stop]. *)
end

module Make_batched (T : Bamboo_network.Transport.S_batched) :
  RUNTIME with type endpoint = T.t
(** Preferred instantiation: each replica thread drains a whole batch of
    messages per wakeup via [recv_batch] (one synchronization round per
    batch, not per message) and fires all due timers from a min-heap
    per pass. *)

module Make (T : Bamboo_network.Transport.S) : RUNTIME with type endpoint = T.t
(** Instantiation over a plain transport; [recv] is adapted to
    one-message batches. *)
