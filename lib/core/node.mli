(** The replica engine: wires the block forest, mempool, quorum system,
    pacemaker and a Safety module into a pure event-driven state machine.

    A node consumes {!input}s (messages, timer expiries, client
    transactions) and produces {!output}s (messages to transmit, timers to
    arm, commit/fork notifications). It performs no I/O and never reads a
    clock, so the same engine runs unchanged under the discrete-event
    simulator, the threaded channel transport and the TCP transport. *)

open Bamboo_types

type timer =
  | View_timeout of Ids.view  (** Pacemaker timer for the view. *)
  | Propose_at of Ids.view
      (** Deferred proposal under the [Wait_timeout] policy. *)

type input =
  | Receive of Message.t
  | Timer of timer
  | Submit of Tx.t list  (** Client transactions for this replica's pool. *)

type output =
  | Send of { dst : Ids.replica; msg : Message.t }
  | Broadcast of Message.t  (** To every replica except this one. *)
  | Set_timer of { timer : timer; after : float }
  | Committed of { blocks : Block.t list; trigger_view : Ids.view }
      (** Newly finalized blocks, by increasing height. [trigger_view] is
          the view of the QC that satisfied the commit rule; the paper's
          block-interval metric for block [b] is
          [trigger_view - b.view + 1]. *)
  | Forked of Block.t list
      (** Blocks overwritten (pruned) by the latest commit; their
          transactions have already been returned to this node's mempool
          where applicable. *)
  | Proposed of Block.t  (** This node proposed a block (for metrics). *)
  | Voted of Block.t
      (** This node accepted the block as a valid chain extension and voted
          for it. The paper's chain-growth-rate metric divides committed
          blocks by blocks appended to the chain, i.e. accepted ones. *)
  | Qc_formed of Qc.t
      (** This node assembled a vote quorum locally (for observability;
          QCs learned from proposals or timeouts are not re-announced). *)
  | Entered_view of { view : Ids.view; reason : string }
      (** The pacemaker advanced; [reason] is ["qc"], ["tc"] or
          ["startup"] (for observability). *)

type t

val create :
  config:Config.t ->
  self:Ids.replica ->
  registry:Bamboo_crypto.Sig.registry ->
  ?verify_sigs:bool ->
  ?root:[ `Merkle | `Flat ] ->
  ?wrap_safety:(Safety.t -> Safety.t) ->
  unit ->
  t
(** [verify_sigs] (default true) controls cryptographic verification of
    incoming votes/QCs/timeouts: the simulator disables it and charges the
    cost virtually; the transport runtimes keep it on. [root] is passed to
    {!Bamboo_types.Block.create}. The node's protocol and Byzantine
    wrapping are taken from [config] ([self < config.byz_no] makes this
    node Byzantine).

    [wrap_safety] (test-only) post-processes the assembled Safety module —
    after any Byzantine wrapping — so the test suite can install
    deliberately broken rules (e.g. a voting rule that votes across a
    lock) and verify that the [bamboo_check] invariant oracle catches the
    resulting divergence. Production paths never pass it. *)

val start : t -> output list
(** Enter view 1: arms the first view timer and, if this node leads view 1,
    proposes. Must be called exactly once, before any [handle]. *)

val handle : t -> input -> output list

val seen_before : t -> Bamboo_types.Message.t -> bool
(** Whether an arriving message duplicates one already processed (echoed
    copies). Read-only; used by runtimes to charge a hash-lookup cost
    instead of full verification for duplicates. *)

val verify_qc : t -> Qc.t -> bool
(** The node's cached certificate check: true if the QC is
    cryptographically valid (or [verify_sigs] is off / the QC is
    genesis). Successful verifications are memoized under the QC's full
    content key ({!Bamboo_types.Qc.cache_key}), so re-presenting a
    verified certificate skips the HMAC batch while any tampered variant
    — same view, different content — is still verified and rejected.
    Exposed for the cache's unit tests. *)

(** {2 Introspection} *)

val self : t -> Ids.replica

val protocol_name : t -> string

val is_byzantine : t -> bool

val current_view : t -> Ids.view

val forest : t -> Bamboo_forest.Forest.t

val mempool_size : t -> int

val high_qc : t -> Qc.t

val locked : t -> (Ids.hash * Ids.view) option

val committed_count : t -> int
(** Committed blocks excluding genesis. *)

val rejected_txs : t -> int
(** Transactions refused because the mempool was full. *)

val safety_violation : t -> bool
(** True if a commit ever conflicted with the finalized prefix — this must
    never happen while at most [f] replicas are Byzantine; checked by the
    property tests. *)

(** {2 Observe-only tallies} (surfaced by the metrics layer) *)

val qc_cache_hits : t -> int
(** Certificate verifications answered from the verified-QC cache. Only
    populated when [verify_sigs] is on (the simulator charges verification
    virtually and never consults the cache). *)

val qc_cache_misses : t -> int
(** Certificate verifications that had to run [Qc.verify]. *)

val view_changes : t -> int
(** Successful pacemaker advances (views entered, any reason). *)

val timeouts_fired : t -> int
(** View timeouts that fired and broadcast a timeout message. *)

val mempool_stats : t -> Bamboo_mempool.Mempool.stats
(** Peak occupancy and batch tallies of this replica's mempool. *)

val last_voted_view : t -> Ids.view
(** The safety module's last voted (or abandoned) view. *)

val fingerprint : t -> Buffer.t -> unit
(** Appends a canonical digest of this replica's behavior-relevant state
    — pacemaker, safety rule, forest, quorum aggregation, stashed
    blocks/QCs, dedup set — to [buf]. Order-insensitive: replicas that
    reached the same abstract state through different delivery orders
    digest identically. Used by the [bamboo_explore] model checker;
    excludes performance-only caches and observe-only tallies. *)
