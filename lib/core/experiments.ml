module Table = Bamboo_util.Table
module Stats = Bamboo_util.Stats
module Pool = Bamboo_util.Pool
module Schedule = Bamboo_faults.Schedule
module Registry = Bamboo_metrics.Registry

type scale = Quick | Full

let runtime_of = function Quick -> 3.0 | Full -> 12.0
let warmup_of = function Quick -> 0.5 | Full -> 2.0

let protocols = [ Config.Hotstuff; Config.Twochain; Config.Streamlet ]

let base_config scale =
  { Config.default with runtime = runtime_of scale; warmup = warmup_of scale }

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let ms v = Table.fmt_float ~decimals:2 (v *. 1000.0)
let ktx v = Table.fmt_float ~decimals:1 (v /. 1000.0)

(* ------------------------------------------------------------------ *)
(* The parallel cell driver.

   Every experiment is a grid of independent simulation cells — one
   [Runtime.run] with its own [Sim.t], RNG streams, machines and nodes —
   whose parameters never depend on another cell's result. Each
   experiment therefore splits into a plan phase (build the flat list of
   cells), an execute phase (run them on a fixed-size domain pool) and a
   render phase (format rows from the results). [Pool.map] returns
   results in submission order, so the rendered tables are byte-identical
   to a sequential run at any job count. *)

(* Written only by [set_jobs] on the main domain before any Pool worker
   starts; workers never touch it, so the shared ref cannot race. *)
let[@lint.allow "domain-safety"] jobs_ref = ref (Pool.recommended_jobs ())

let set_jobs n =
  if n < 1 then invalid_arg "Experiments.set_jobs: jobs must be >= 1";
  jobs_ref := n

let jobs () = !jobs_ref

(* Like [jobs_ref]: set once on the main domain before any experiment
   runs. Pool workers only record through the registry's sharded,
   domain-safe handles. *)
let[@lint.allow "domain-safety"] metrics_ref = ref Registry.null

let set_metrics reg = metrics_ref := reg
let metrics () = !metrics_ref

(* One independent simulation cell: configuration, workload, and the
   optional metrics bucket width. *)
type cell = Config.t * Workload.t * float option

let run_cells (cells : cell list) : Runtime.result list =
  let reg = !metrics_ref in
  let probe =
    (* Per-cell wall-clock latency, recorded from the worker domain that
       ran the cell — the one multi-domain writer, exercising the
       registry's sharded path for real. *)
    if Registry.enabled reg then begin
      let tasks = Registry.counter reg "pool_tasks" in
      let lat = Registry.histogram reg "pool_task_latency_ns" in
      Some
        (fun _i secs ->
          Registry.Counter.incr tasks;
          Registry.Histogram.observe_s lat secs)
    end
    else None
  in
  Pool.map ~jobs:!jobs_ref ?probe
    (fun (config, workload, bucket) ->
      match bucket with
      | None -> Runtime.run ~config ~workload ()
      | Some bucket -> Runtime.run ~config ~workload ~bucket ())
    cells

(* Split [xs] into consecutive chunks whose sizes follow [counts]. *)
let chunks counts xs =
  let rec take n acc xs =
    if n = 0 then (List.rev acc, xs)
    else
      match xs with
      | x :: tl -> take (n - 1) (x :: acc) tl
      | [] -> invalid_arg "Experiments.chunks: too few results"
  in
  let rec go counts xs =
    match counts with
    | [] -> ( match xs with [] -> [] | _ :: _ -> invalid_arg "Experiments.chunks: leftover results")
    | c :: rest ->
        let chunk, xs = take c [] xs in
        chunk :: go rest xs
  in
  go counts xs

(* Run one simulation per (config, rate) over all groups in a single
   parallel batch; per-group summary lists come back in submission
   order. *)
let sweep_groups groups =
  let cells =
    List.concat_map
      (fun (config, rates) ->
        List.map
          (fun rate -> (config, Workload.open_loop ~rate (), None))
          rates)
      groups
  in
  let results = run_cells cells in
  chunks
    (List.map (fun (_, rates) -> List.length rates) groups)
    (List.map (fun (r : Runtime.result) -> r.Runtime.summary) results)

let sweep ~config ~rates =
  match sweep_groups [ (config, rates) ] with
  | [ summaries ] -> List.combine rates summaries
  | _ -> assert false

(* True capacity of a configuration: the paper's Eq. 4 saturation bound
   capped by the implementation-aware estimate (leader NIC fan-out,
   per-vote verification, echo traffic). *)
let capacity config =
  let m = Model.build ~config in
  Float.min m.Model.saturation_rate (Model.sim_saturation_rate ~config)

(* Streamlet's echoing makes view times grow linearly with n; its
   consecutive-view commit rule starves when the view timer sits below the
   actual view time, so scale the timeout with the cluster (an operator
   would do the same; the paper calls its large-n Streamlet results
   "meaningless"). *)
let tune_timeout (config : Config.t) =
  if config.protocol = Config.Streamlet && config.n >= 16 then begin
    let config =
      {
        config with
        timeout =
          Float.max config.timeout (0.0125 *. float_of_int config.n);
      }
    in
    (* Steady state also needs several full leader rotations: with view
       times ~ bsize/capacity, make the run at least three rotations long
       and the warmup at least one. *)
    let view_time =
      float_of_int config.bsize /. Model.sim_saturation_rate ~config
    in
    let rotation = float_of_int config.n *. view_time in
    {
      config with
      runtime = Float.max config.runtime (3.0 *. rotation);
      warmup = Float.max config.warmup rotation;
    }
  end
  else config

let saturation_sweep_rates ~config ~scale =
  let cap = capacity config in
  let fractions =
    match scale with
    | Quick -> [ 0.2; 0.5; 0.8; 0.95; 1.1 ]
    | Full -> [ 0.15; 0.3; 0.5; 0.7; 0.85; 0.95; 1.05; 1.2 ]
  in
  List.map (fun f -> f *. cap) fractions

(* ------------------------------------------------------------------ *)
(* Table II: arrival rate vs committed throughput (HotStuff, n=4,
   bsize=400).                                                         *)

let table2_rows ?base scale =
  let base = match base with Some b -> b | None -> base_config scale in
  let config = { base with Config.protocol = Config.Hotstuff } in
  let cap = capacity config in
  let fractions = [ 0.15; 0.3; 0.45; 0.6; 0.75; 0.9; 0.98 ] in
  let rates = List.map (fun f -> f *. cap) fractions in
  List.map
    (fun (rate, (s : Metrics.summary)) ->
      [
        Printf.sprintf "%.0f" rate;
        Printf.sprintf "%.0f" s.Metrics.throughput;
      ])
    (sweep ~config ~rates)

let table2 scale =
  section
    "Table II: transaction arrival rate vs transaction throughput \
     (HotStuff, bsize 400, 4 replicas)";
  Table.print
    ~header:[ "Arrival rate (Tx/s)"; "Throughput (Tx/s)" ]
    ~rows:(table2_rows scale)

(* ------------------------------------------------------------------ *)
(* Fig. 8: model vs implementation, four (n, bsize) panels.            *)

let fig8_group_rows ~config ~rates summaries =
  let m = Model.build ~config in
  List.map2
    (fun rate (s : Metrics.summary) ->
      let model_lat =
        match Model.latency m ~rate with
        | Some l -> ms l
        | None -> "sat"
      in
      [ ktx rate; ktx s.throughput; ms s.latency_mean; model_lat ])
    rates summaries

let fig8_panel_groups ~base ~scale ~panels =
  List.concat_map
    (fun (n, bsize) ->
      List.map
        (fun protocol ->
          let config = { base with Config.protocol; n; bsize } in
          ((n, bsize, protocol, config), saturation_sweep_rates ~config ~scale))
        protocols)
    panels

let fig8_panel_rows ?base ~n ~bsize scale =
  let base = match base with Some b -> b | None -> base_config scale in
  let groups = fig8_panel_groups ~base ~scale ~panels:[ (n, bsize) ] in
  let summaries =
    sweep_groups
      (List.map (fun ((_, _, _, config), rates) -> (config, rates)) groups)
  in
  List.map2
    (fun ((_, _, protocol, config), rates) s ->
      (Config.protocol_name protocol, fig8_group_rows ~config ~rates s))
    groups summaries

let fig8 scale =
  section
    "Fig. 8: model vs implementation, throughput (k tx/s) vs latency (ms)";
  let panels = [ (4, 100); (8, 100); (4, 400); (8, 400) ] in
  let groups = fig8_panel_groups ~base:(base_config scale) ~scale ~panels in
  let summaries =
    sweep_groups
      (List.map (fun ((_, _, _, config), rates) -> (config, rates)) groups)
  in
  List.iter2
    (fun ((n, bsize, protocol, config), rates) s ->
      if protocol = List.hd protocols then
        Printf.printf "\n-- panel n=%d, bsize=%d --\n" n bsize;
      Printf.printf "%s:\n" (Config.protocol_name protocol);
      Table.print
        ~header:[ "rate(k)"; "thr(k)"; "sim lat(ms)"; "model lat(ms)" ]
        ~rows:(fig8_group_rows ~config ~rates s))
    groups summaries

(* ------------------------------------------------------------------ *)
(* Fig. 9: block sizes 100/400/800 plus the OHS-like baseline.         *)

(* The original C++ libhotstuff baseline: clients over raw TCP rather than
   a REST layer and a slightly cheaper crypto path. Modelled as documented
   in DESIGN.md (substitutions table). *)
let ohs_like (config : Config.t) =
  { config with cpu_op = config.cpu_op *. 0.85; mu = config.mu *. 0.9 }

let fig9 scale =
  section "Fig. 9: throughput vs latency with block sizes 100, 400, 800";
  let series =
    List.concat_map
      (fun bsize ->
        List.map
          (fun protocol ->
            let config = { (base_config scale) with protocol; bsize } in
            ( Printf.sprintf "%s-b%d" (Config.protocol_name protocol) bsize,
              config ))
          protocols)
      [ 100; 400; 800 ]
    @ List.map
        (fun bsize ->
          let config =
            ohs_like
              { (base_config scale) with protocol = Config.Hotstuff; bsize }
          in
          (Printf.sprintf "OHS-b%d" bsize, config))
        [ 100; 800 ]
  in
  let with_rates =
    List.map
      (fun (name, config) ->
        (name, config, saturation_sweep_rates ~config ~scale))
      series
  in
  let summaries =
    sweep_groups (List.map (fun (_, config, rates) -> (config, rates)) with_rates)
  in
  let rows =
    List.concat
      (List.map2
         (fun (name, _, _) sums ->
           List.map
             (fun (s : Metrics.summary) ->
               [ name; ktx s.throughput; ms s.latency_mean; ms s.latency_p99 ])
             sums)
         with_rates summaries)
  in
  Table.print ~header:[ "series"; "thr(k)"; "lat(ms)"; "p99(ms)" ] ~rows

(* ------------------------------------------------------------------ *)
(* Fig. 10: payload sizes 0/128/1024 bytes.                            *)

let labelled_saturation_table ~scale ~header series =
  let with_rates =
    List.map
      (fun (name, config) ->
        (name, config, saturation_sweep_rates ~config ~scale))
      series
  in
  let summaries =
    sweep_groups (List.map (fun (_, config, rates) -> (config, rates)) with_rates)
  in
  let rows =
    List.concat
      (List.map2
         (fun (name, _, _) sums ->
           List.map
             (fun (s : Metrics.summary) ->
               [ name; ktx s.throughput; ms s.latency_mean ])
             sums)
         with_rates summaries)
  in
  Table.print ~header ~rows

let fig10 scale =
  section
    "Fig. 10: throughput vs latency with payload sizes 0, 128, 1024 bytes";
  let series =
    List.concat_map
      (fun psize ->
        List.map
          (fun protocol ->
            ( Printf.sprintf "%s-p%d" (Config.protocol_name protocol) psize,
              { (base_config scale) with protocol; psize } ))
          protocols)
      [ 0; 128; 1024 ]
  in
  labelled_saturation_table ~scale
    ~header:[ "series"; "thr(k)"; "lat(ms)" ]
    series

(* ------------------------------------------------------------------ *)
(* Fig. 11: added network delays 0 / 5+-1 / 10+-2 ms.                  *)

let fig11 scale =
  section
    "Fig. 11: throughput vs latency with added network delay 0, 5(+-1), \
     10(+-2) ms";
  let delays = [ (0.0, 0.0); (0.005, 0.001); (0.010, 0.002) ] in
  let series =
    List.concat_map
      (fun (d_mu, d_sigma) ->
        List.map
          (fun protocol ->
            ( Printf.sprintf "%s-d%.0f" (Config.protocol_name protocol)
                (d_mu *. 1000.0),
              {
                (base_config scale) with
                protocol;
                psize = 128;
                extra_delay_mu = d_mu;
                extra_delay_sigma = d_sigma;
              } ))
          protocols)
      delays
  in
  labelled_saturation_table ~scale
    ~header:[ "series"; "thr(k)"; "lat(ms)" ]
    series

(* ------------------------------------------------------------------ *)
(* Fig. 12: scalability.                                               *)

let fig12 scale =
  section
    "Fig. 12: scalability (128-byte payload, block size 400): throughput \
     and latency vs cluster size";
  let sizes, seeds =
    match scale with
    | Quick -> ([ 4; 8; 16; 32 ], [ 42; 43 ])
    | Full -> ([ 4; 8; 16; 32; 64; 128 ], [ 42; 43; 44 ])
  in
  let sl_cap = match scale with Quick -> 16 | Full -> 32 in
  let combos =
    List.concat_map
      (fun protocol ->
        List.filter_map
          (fun n ->
            if protocol = Config.Streamlet && n > sl_cap then None
            else begin
              let config =
                tune_timeout
                  { (base_config scale) with protocol; n; psize = 128 }
              in
              let rate = 0.8 *. capacity config in
              Some (protocol, n, config, rate)
            end)
          sizes)
      protocols
  in
  let cells =
    List.concat_map
      (fun (_, _, config, rate) ->
        List.map
          (fun seed ->
            (({ config with Config.seed } : Config.t),
             Workload.open_loop ~rate (),
             None))
          seeds)
      combos
  in
  let grouped =
    chunks (List.map (fun _ -> List.length seeds) combos) (run_cells cells)
  in
  let rows =
    List.map2
      (fun (protocol, n, _, _) results ->
        (* Reverse order matches the sequential driver's fold, which
           prepended each seed's result: statistics are computed over the
           identical float list, so stddev rounding is unchanged. *)
        let thrs =
          List.rev_map
            (fun (r : Runtime.result) -> r.Runtime.summary.Metrics.throughput)
            results
        in
        let lats =
          List.rev_map
            (fun (r : Runtime.result) -> r.Runtime.summary.Metrics.latency_mean)
            results
        in
        [
          Config.protocol_name protocol;
          string_of_int n;
          ktx (Stats.mean_of thrs);
          ktx (Stats.stddev_of thrs);
          ms (Stats.mean_of lats);
          ms (Stats.stddev_of lats);
        ])
      combos grouped
  in
  Table.print
    ~header:
      [ "protocol"; "n"; "thr(k)"; "+-"; "lat(ms)"; "+-" ]
    ~rows

(* ------------------------------------------------------------------ *)
(* Figs. 13 and 14: Byzantine attacks at n=32.                         *)

let byzantine_experiment scale ~strategy ~timeout ~title =
  section title;
  let byz_counts = [ 0; 1; 2; 4; 8 ] in
  let n = 32 in
  let combos =
    List.concat_map
      (fun protocol ->
        List.map
          (fun byz_no ->
            let config =
              tune_timeout
                {
                  (base_config scale) with
                  protocol;
                  n;
                  psize = 128;
                  byz_no;
                  strategy;
                  timeout;
                }
            in
            let rate = 0.4 *. capacity config in
            (protocol, byz_no, config, rate))
          byz_counts)
      protocols
  in
  let results =
    run_cells
      (List.map
         (fun (_, _, config, rate) ->
           (config, Workload.open_loop ~rate (), None))
         combos)
  in
  let rows =
    List.map2
      (fun (protocol, byz_no, _, _) (r : Runtime.result) ->
        let s = r.Runtime.summary in
        [
          Config.protocol_name protocol;
          string_of_int byz_no;
          ktx s.Metrics.throughput;
          ms s.Metrics.latency_mean;
          Table.fmt_float ~decimals:3 s.Metrics.cgr;
          Table.fmt_float ~decimals:2 s.Metrics.block_interval;
          string_of_int s.Metrics.forked_blocks;
        ])
      combos results
  in
  Table.print
    ~header:[ "protocol"; "byz"; "thr(k)"; "lat(ms)"; "CGR"; "BI"; "forked" ]
    ~rows

let fig13 scale =
  byzantine_experiment scale ~strategy:Config.Fork ~timeout:0.1
    ~title:
      "Fig. 13: forking attack, 32 nodes, increasing Byzantine nodes \
       (throughput, latency, CGR, BI)"

let fig14 scale =
  byzantine_experiment scale ~strategy:Config.Silence ~timeout:0.05
    ~title:
      "Fig. 14: silence attack, 32 nodes, increasing Byzantine nodes \
       (timeout 50 ms)"

(* ------------------------------------------------------------------ *)
(* Fig. 15: responsiveness under network fluctuation + crash.          *)

let fig15 scale =
  section
    "Fig. 15: responsiveness test; 10 s of 10-100 ms delay fluctuation \
     from t=5s, one replica silent from t=17s; committed throughput \
     (k tx/s) per second";
  ignore scale;
  let runtime = 26.0 in
  let settings =
    [
      ("t10", 0.010, Config.Immediate);
      ("t100", 0.100, Config.Wait_timeout);
    ]
  in
  let setting_cells (_, timeout, propose_policy) =
    List.map
      (fun protocol ->
        let config =
          {
            (base_config Quick) with
            protocol;
            n = 4;
            timeout;
            propose_policy;
            runtime;
            warmup = 1.0;
            faults =
              [
                {
                  Schedule.at = 5.0;
                  until = Some 15.0;
                  spec = Schedule.Fluctuation { lo = 0.010; hi = 0.100 };
                };
                {
                  Schedule.at = 17.0;
                  until = None;
                  spec = Schedule.Crash { node = 3 };
                };
              ];
          }
        in
        let rate = 0.7 *. capacity config in
        (config, Workload.open_loop ~rate (), Some 1.0))
      protocols
  in
  let grouped =
    chunks
      (List.map (fun _ -> List.length protocols) settings)
      (run_cells (List.concat_map setting_cells settings))
  in
  List.iter2
    (fun (label, _, _) results ->
      Printf.printf "\n-- setting %s --\n" label;
      let series_per_protocol =
        List.map2
          (fun protocol (r : Runtime.result) ->
            (Config.protocol_name protocol, r.Runtime.series))
          protocols results
      in
      let buckets =
        match series_per_protocol with
        | (_, first) :: _ -> List.map fst first
        | [] -> []
      in
      let rows =
        List.map
          (fun t ->
            Printf.sprintf "%.0f" t
            :: List.map
                 (fun (_, series) ->
                   match List.assoc_opt t series with
                   | Some thr -> ktx thr
                   | None -> "")
                 series_per_protocol)
          buckets
      in
      Table.print
        ~header:
          ("t(s)"
          :: List.map (fun (name, _) -> name) series_per_protocol)
        ~rows)
    settings grouped

(* ------------------------------------------------------------------ *)
(* Ablations (Section V-E design choices).                             *)

let ablation_broadcast scale =
  section
    "Ablation: clients broadcast transactions to all replicas vs sending \
     to one (HotStuff, n=4)";
  let config = base_config scale in
  let cap = capacity config in
  let combos =
    List.concat_map
      (fun frac -> List.map (fun broadcast -> (frac, broadcast)) [ false; true ])
      [ 0.3; 0.8 ]
  in
  let results =
    run_cells
      (List.map
         (fun (frac, broadcast) ->
           (config, Workload.open_loop ~broadcast ~rate:(frac *. cap) (), None))
         combos)
  in
  let rows =
    List.map2
      (fun (frac, broadcast) (r : Runtime.result) ->
        let s = r.Runtime.summary in
        [
          Printf.sprintf "%.0f%% load" (100.0 *. frac);
          (if broadcast then "broadcast" else "single");
          ktx s.Metrics.throughput;
          ms s.Metrics.latency_mean;
          ms s.Metrics.latency_p95;
        ])
      combos results
  in
  Table.print ~header:[ "load"; "mode"; "thr(k)"; "lat(ms)"; "p95(ms)" ] ~rows;
  print_endline
    "broadcast submission removes the wait for the submitting replica's\n\
     leadership turn (lower latency at light load) but fills blocks with\n\
     duplicates, cutting usable capacity at high load."

let ablation_election scale =
  section
    "Ablation: leader election scheme (HotStuff, n=4): round-robin vs \
     hash-based vs static leader";
  let config = base_config scale in
  let rate = 0.5 *. capacity config in
  let schemes =
    [
      ("rotation", Config.Rotation);
      ("hashed", Config.Hashed);
      ("static(0)", Config.Static 0);
    ]
  in
  let results =
    run_cells
      (List.map
         (fun (_, election) ->
           ({ config with Config.election }, Workload.open_loop ~rate (), None))
         schemes)
  in
  let rows =
    List.map2
      (fun (name, _) (r : Runtime.result) ->
        let s = r.Runtime.summary in
        [ name; ktx s.Metrics.throughput; ms s.Metrics.latency_mean ])
      schemes results
  in
  Table.print ~header:[ "election"; "thr(k)"; "lat(ms)" ] ~rows;
  print_endline
    "note: clients submit to uniformly random replicas, so under a static\n\
     leader only the leader's own mempool ever drains (~1/n of the load\n\
     commits) - static deployments must redirect clients to the leader."

let ablation_echo scale =
  section
    "Ablation: Streamlet with and without message echoing (n=8): the cost \
     of O(n^3) communication in isolation";
  let config =
    { (base_config scale) with protocol = Config.Streamlet; n = 8 }
  in
  let rate = 0.5 *. capacity config in
  let modes = [ true; false ] in
  let results =
    run_cells
      (List.map
         (fun echo ->
           ( { config with Config.echo = Some echo },
             Workload.open_loop ~rate (),
             None ))
         modes)
  in
  let rows =
    List.map2
      (fun echo (r : Runtime.result) ->
        let s = r.Runtime.summary in
        [
          (if echo then "echo on" else "echo off");
          ktx s.Metrics.throughput;
          ms s.Metrics.latency_mean;
        ])
      modes results
  in
  Table.print ~header:[ "mode"; "thr(k)"; "lat(ms)" ] ~rows

let ablation_fhs scale =
  section
    "Ablation: Fast-HotStuff vs two-chain HotStuff vs HotStuff, happy \
     path and under silence attack (n=8)";
  let variants =
    [ Config.Hotstuff; Config.Twochain; Config.Fasthotstuff ]
  in
  let combos =
    List.concat_map
      (fun (label, byz_no, strategy, timeout) ->
        List.map
          (fun protocol ->
            let config =
              {
                (base_config scale) with
                protocol;
                n = 8;
                byz_no;
                strategy;
                timeout;
                tc_adopt_qc = (protocol = Config.Fasthotstuff);
              }
            in
            let rate = 0.4 *. capacity config in
            (label, protocol, config, rate))
          variants)
      [
        ("happy", 0, Config.Honest, 0.1);
        ("silence-2", 2, Config.Silence, 0.05);
      ]
  in
  let results =
    run_cells
      (List.map
         (fun (_, _, config, rate) ->
           (config, Workload.open_loop ~rate (), None))
         combos)
  in
  let rows =
    List.map2
      (fun (label, protocol, _, _) (r : Runtime.result) ->
        let s = r.Runtime.summary in
        [
          label;
          Config.protocol_name protocol;
          ktx s.Metrics.throughput;
          ms s.Metrics.latency_mean;
          Table.fmt_float ~decimals:2 s.Metrics.block_interval;
        ])
      combos results
  in
  Table.print
    ~header:[ "scenario"; "protocol"; "thr(k)"; "lat(ms)"; "BI" ]
    ~rows

let ablation_backoff scale =
  section
    "Ablation: pacemaker timer backoff under mis-set timeouts (HotStuff,      n=4, view timeout 10 ms, added network delay 10 ms)";
  let config =
    {
      (base_config scale) with
      timeout = 0.010;
      extra_delay_mu = 0.010;
      extra_delay_sigma = 0.0;
    }
  in
  let rate = 0.1 *. capacity config in
  let backoffs = [ 1.0; 1.5; 2.0 ] in
  let results =
    run_cells
      (List.map
         (fun backoff ->
           ({ config with Config.backoff }, Workload.open_loop ~rate (), None))
         backoffs)
  in
  let rows =
    List.map2
      (fun backoff (r : Runtime.result) ->
        let s = r.Runtime.summary in
        [
          Printf.sprintf "backoff x%.1f" backoff;
          ktx s.Metrics.throughput;
          ms s.Metrics.latency_mean;
          Table.fmt_float ~decimals:3 s.Metrics.cgr;
          string_of_int s.Metrics.views;
        ])
      backoffs results
  in
  Table.print ~header:[ "pacemaker"; "thr(k)"; "lat(ms)"; "CGR"; "views" ] ~rows;
  print_endline
    "with the view timer below the actual network round trip, fixed timers\n\
     keep expiring before proposals land: views churn, accepted blocks get\n\
     overwritten (CGR well below 1) and at higher request rates progress\n\
     stops entirely; geometric backoff stretches the timers until proposals\n\
     fit, and resets them on every QC, restoring CGR = 1."

(* ------------------------------------------------------------------ *)
(* Chaos experiments (bamboo_faults): the scenarios PAPERS.md's
   "Unraveling Responsiveness" line of work studies — delay that targets
   a leader slot rather than the whole network — and partition-heal
   liveness recovery.                                                  *)

let chaos_leader_delay scale =
  section
    "Chaos: extra delay on replica 0's outbound links only; rotating \
     leadership meets a slow leader every n-th view (timeout 100 ms)";
  let delays = [ 0.0; 0.020; 0.150 ] in
  let combos =
    List.concat_map
      (fun protocol ->
        List.map
          (fun d ->
            let faults =
              if d = 0.0 then []
              else
                [
                  {
                    Schedule.at = 0.0;
                    until = None;
                    spec =
                      Schedule.Link_delay
                        {
                          src = Schedule.Nodes [ 0 ];
                          dst = Schedule.All;
                          mu = d;
                          sigma = 0.1 *. d;
                        };
                  };
                ]
            in
            let config = { (base_config scale) with protocol; faults } in
            let rate = 0.5 *. capacity config in
            (protocol, d, config, rate))
          delays)
      protocols
  in
  let results =
    run_cells
      (List.map
         (fun (_, _, config, rate) ->
           (config, Workload.open_loop ~rate (), None))
         combos)
  in
  let rows =
    List.map2
      (fun (protocol, d, _, _) (r : Runtime.result) ->
        let s = r.Runtime.summary in
        (* A saturated run commits only backlog issued during warmup, so
           no latency sample exists: the latency is divergent, not zero. *)
        let lat x =
          if s.Metrics.latency_mean = 0.0 && s.Metrics.throughput > 0.0 then
            "div."
          else ms x
        in
        [
          Config.protocol_name protocol;
          Printf.sprintf "%.0f" (d *. 1000.0);
          ktx s.Metrics.throughput;
          lat s.Metrics.latency_mean;
          lat s.Metrics.latency_p95;
          Table.fmt_float ~decimals:3 s.Metrics.cgr;
          string_of_int s.Metrics.views;
        ])
      combos results
  in
  Table.print
    ~header:
      [ "protocol"; "delay(ms)"; "thr(k)"; "lat(ms)"; "p95(ms)"; "CGR"; "views" ]
    ~rows;
  print_endline
    "a sub-timeout delay (20 ms) taxes only the slow replica's own views;\n\
     a super-timeout delay (150 ms > 100 ms) makes every one of its views\n\
     expire, so each rotation pays a timeout: the view rate collapses by\n\
     an order of magnitude and committed throughput falls below the\n\
     arrival rate, at which point the backlog grows without bound and\n\
     commit latency diverges (`div.`: no transaction issued after warmup\n\
     ever committed)."

let chaos_partition_heal scale =
  section
    "Chaos: partition {0,1} | {2,3} from t=3s to t=6s; no quorum of 3 \
     exists, commits stall, and liveness must return after the heal";
  ignore scale;
  let t0 = 3.0 and t1 = 6.0 in
  let bucket = 0.25 in
  let cell_of protocol =
    let config =
      {
        (base_config Quick) with
        protocol;
        runtime = 10.0;
        warmup = 0.5;
        faults =
          [
            {
              Schedule.at = t0;
              until = Some t1;
              spec = Schedule.Partition { a = [ 0; 1 ]; b = [ 2; 3 ] };
            };
          ];
      }
    in
    let rate = 0.5 *. capacity config in
    (config, Workload.open_loop ~rate (), Some bucket)
  in
  let results = run_cells (List.map cell_of protocols) in
  let rows =
    List.map2
      (fun protocol (r : Runtime.result) ->
        (* Messages already on the wire when the links go down can still
           complete a commit; they all land in the first bucket after the
           cut, so report that drain separately from the steady state. *)
        let straggler_txs =
          List.fold_left
            (fun acc (t, thr) ->
              if t >= t0 && t < t0 +. bucket then acc +. (thr *. bucket)
              else acc)
            0.0 r.Runtime.series
        in
        let txs_during =
          List.fold_left
            (fun acc (t, thr) ->
              if t >= t0 +. bucket && t < t1 then acc +. (thr *. bucket)
              else acc)
            0.0 r.Runtime.series
        in
        let first_commit_after =
          List.find_opt (fun (t, thr) -> t >= t1 && thr > 0.0) r.Runtime.series
        in
        let ttfc =
          match first_commit_after with
          | Some (t, _) -> Printf.sprintf "< %.0f" ((t -. t1 +. bucket) *. 1000.0)
          | None -> "never"
        in
        let tail =
          List.filter_map
            (fun (t, thr) -> if t >= 8.0 then Some thr else None)
            r.Runtime.series
        in
        let tail_mean =
          List.fold_left ( +. ) 0.0 tail /. float_of_int (List.length tail)
        in
        [
          Config.protocol_name protocol;
          Printf.sprintf "%.0f" straggler_txs;
          Printf.sprintf "%.0f" txs_during;
          ttfc;
          ktx tail_mean;
        ])
      protocols results
  in
  Table.print
    ~header:
      [ "protocol"; "in-flight drain(tx)"; "txs committed in partition";
        "first commit after heal (ms)"; "tail thr(k)" ]
    ~rows;
  print_endline
    "during the partition neither side holds a quorum (2 of 4 < 3): once\n\
     messages that were already on the wire drain (first 250 ms bucket),\n\
     views churn on timeouts and nothing commits; when the partition\n\
     heals the first timeout re-synchronizes the halves and committed\n\
     throughput returns to the arrival rate."

(* ------------------------------------------------------------------ *)

let registry =
  [
    ("table2", table2);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("ablation_broadcast", ablation_broadcast);
    ("ablation_election", ablation_election);
    ("ablation_echo", ablation_echo);
    ("ablation_fhs", ablation_fhs);
    ("ablation_backoff", ablation_backoff);
    ("chaos_leader_delay", chaos_leader_delay);
    ("chaos_partition_heal", chaos_partition_heal);
  ]

let names = List.map fst registry

let run_one ?jobs ~scale name =
  (match jobs with Some j -> set_jobs j | None -> ());
  match List.assoc_opt name registry with
  | Some f ->
      f scale;
      Ok ()
  | None ->
      Error
        (Printf.sprintf "unknown experiment %S (known: %s)" name
           (String.concat ", " names))

let run_all ?jobs ~scale () =
  (match jobs with Some j -> set_jobs j | None -> ());
  List.iter (fun (_, f) -> f scale) registry
